// Table 1 of [1] (reprinted in the survey) + Figure 5 — Gnutella message
// counts by type under unbiased vs oracle-biased neighbor selection with
// candidate-list sizes 100 and 1000, plus the overlay-clustering metric
// that Figure 5 visualizes.
//
// Expected shape (the paper's absolute counts came from a 100k-node
// simulation; ours is a 360-node lab, so magnitudes differ):
//   * every message type shrinks under the oracle,
//   * cache 1000 <= cache 100,
//   * Pong >> Ping >> QueryHit ordering preserved,
//   * no search that succeeded unbiased fails biased,
//   * the biased overlay clusters by AS (Fig 5 right panel).
#include "bench_common.hpp"

using namespace uap2p;
using namespace uap2p::overlay::gnutella;

namespace {

struct RunResult {
  MessageCounts counts;
  double intra_as_edges = 0.0;
  std::size_t inter_as_edges = 0;
  std::size_t successes = 0;
  std::size_t searches = 0;
};

RunResult run(std::shared_ptr<const underlay::SharedRouting> routing,
              NeighborSelection selection, std::size_t cache,
              std::uint64_t seed) {
  Config config;
  config.selection = selection;
  config.hostcache_size = cache;
  bench::GnutellaLab lab(std::move(routing), 360, config, seed);
  RunResult result;
  const std::size_t as_count = lab.topology().as_count();
  result.searches = as_count * 4;
  result.successes =
      lab.run_locality_workload(/*copies=*/4, /*searches_per_as=*/4,
                                /*download=*/false);
  // Two more keepalive cycles, as a long-lived network would run.
  lab.system->ping_cycle();
  lab.system->ping_cycle();
  result.counts = lab.system->counts();
  result.intra_as_edges = lab.system->intra_as_edge_fraction();
  result.inter_as_edges = lab.system->inter_as_edge_count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header(
      "bench_table1_gnutella",
      "[1] Table 1 (message counts) + Figure 5 (overlay clustering)");

  // The three columns share one trial seed so they differ only in the
  // configuration under test, exactly as a serial loop would have run them.
  struct Column {
    NeighborSelection selection;
    std::size_t cache;
  };
  const Column columns[] = {{NeighborSelection::kRandom, 1000},
                            {NeighborSelection::kOracleBiased, 100},
                            {NeighborSelection::kOracleBiased, 1000}};
  // Every column runs over the same topology, so the trials borrow one
  // warmed routing snapshot instead of each re-running all Dijkstras.
  // With --snapshot-dir= the snapshot persists across runs too.
  const auto routing = bench::shared_routing_cached(
      "transit-stub", "t3-s5-p0.3", /*seed=*/1,
      underlay::AsTopology::transit_stub(3, 5, 0.3));
  const auto results = bench::run_trials(
      std::size(columns), /*base_seed=*/7,
      [&](std::size_t i, std::uint64_t) {
        // All columns share a fixed lab seed: the comparison is between
        // selection policies over the *same* network and workload.
        return run(routing, columns[i].selection, columns[i].cache, /*seed=*/7);
      });
  const RunResult& unbiased = results[0];
  const RunResult& biased100 = results[1];
  const RunResult& biased1000 = results[2];

  TablePrinter table({"Gnutella message type", "Unbiased Gnutella",
                      "Biased, cache 100", "Biased, cache 1000"});
  auto add = [&](const char* name, auto member) {
    table.add_row({name, std::to_string(unbiased.counts.*member),
                   std::to_string(biased100.counts.*member),
                   std::to_string(biased1000.counts.*member)});
  };
  add("Ping", &MessageCounts::ping);
  add("Pong", &MessageCounts::pong);
  add("Query", &MessageCounts::query);
  add("QueryHit", &MessageCounts::query_hit);
  table.add_row({"total", std::to_string(unbiased.counts.total()),
                 std::to_string(biased100.counts.total()),
                 std::to_string(biased1000.counts.total())});
  table.print("Table 1 of [1]: number of exchanged Gnutella message types");
  std::printf(
      "\npaper's rows (100k-node sim): Ping 7.6M/6.1M/4.0M  Pong "
      "75.5M/59.0M/39.1M  Query 6.3M/4.0M/2.3M  QueryHit 3.5M/2.9M/1.9M\n");

  TablePrinter fig5({"metric", "unbiased", "biased c100", "biased c1000"});
  {
    auto row = fig5.row();
    row.cell("intra-AS overlay edge fraction")
        .cell(unbiased.intra_as_edges, 3)
        .cell(biased100.intra_as_edges, 3)
        .cell(biased1000.intra_as_edges, 3);
  }
  {
    auto row = fig5.row();
    row.cell("inter-AS overlay edges")
        .cell(std::uint64_t(unbiased.inter_as_edges))
        .cell(std::uint64_t(biased100.inter_as_edges))
        .cell(std::uint64_t(biased1000.inter_as_edges));
  }
  {
    auto row = fig5.row();
    row.cell("successful searches")
        .cell(std::uint64_t(unbiased.successes))
        .cell(std::uint64_t(biased100.successes))
        .cell(std::uint64_t(biased1000.successes));
  }
  fig5.print("Figure 5: clustering of the overlay by AS under the oracle");

  const bool shape_ok =
      biased1000.counts.total() <= biased100.counts.total() &&
      biased100.counts.total() < unbiased.counts.total() &&
      unbiased.counts.pong > unbiased.counts.ping &&
      biased1000.intra_as_edges > unbiased.intra_as_edges &&
      biased100.successes == unbiased.successes &&
      biased1000.successes == unbiased.successes;
  std::printf("\nshape check vs paper: %s\n", shape_ok ? "OK" : "MISMATCH");
  const int obs_rc = bench::dump_observability();
  return shape_ok && obs_rc == 0 ? 0 : 1;
}
