// Ablation — latency-prediction design choices (DESIGN.md ablation list):
//   * Vivaldi dimensionality and the height vector on/off,
//   * ICS beacon count and variation threshold,
//   * measurement (probe) budget vs accuracy.
// Substantiates the §3.2 trade-off quantitatively.
//
// Every table row is one independent trial (own engine/network, fixed
// historical seeds, so the numbers match the old serial sweep exactly)
// dispatched through bench::run_trials.
#include "bench_common.hpp"
#include "netinfo/ics.hpp"
#include "netinfo/pinger.hpp"
#include "netinfo/vivaldi.hpp"

using namespace uap2p;
using namespace uap2p::netinfo;

namespace {

struct Env {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net{engine, topo, 71};
  std::vector<PeerId> peers = net.populate(120);
};

Samples vivaldi_errors(Env& env, VivaldiConfig config, unsigned rounds) {
  VivaldiSystem system(env.peers.size(), config, Rng(5));
  Rng rng(7);
  for (unsigned round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < env.peers.size(); ++i) {
      const std::size_t j = rng.uniform(env.peers.size());
      if (i == j) continue;
      system.update(PeerId(std::uint32_t(i)), PeerId(std::uint32_t(j)),
                    env.net.rtt_ms(env.peers[i], env.peers[j]));
    }
  }
  Rng eval(9);
  return relative_error_samples(system, eval, 1500, [&](PeerId a, PeerId b) {
    return env.net.rtt_ms(a, b);
  });
}

struct ErrorRow {
  std::uint64_t dims_chosen = 0;  // ICS only.
  double median_err = 0.0;
  double p90_err = 0.0;
};

ErrorRow run_vivaldi(VivaldiConfig config, unsigned rounds) {
  Env env;
  const Samples errors = vivaldi_errors(env, config, rounds);
  return {0, errors.median(), errors.percentile(90)};
}

ErrorRow run_ics(std::size_t beacons, double threshold) {
  Env env;
  PingerConfig ping_config;
  ping_config.jitter_sigma = 0.0;
  Pinger pinger(env.net, Rng(11), ping_config);
  Matrix rtts(beacons, beacons);
  for (std::size_t i = 0; i < beacons; ++i)
    for (std::size_t j = i + 1; j < beacons; ++j) {
      const double rtt = pinger.measure_rtt(env.peers[i], env.peers[j]);
      rtts(i, j) = rtt;
      rtts(j, i) = rtt;
    }
  IcsConfig config;
  config.variation_threshold = threshold;
  const IcsModel model = IcsModel::build(rtts, config);
  std::vector<std::vector<double>> coords(env.peers.size());
  for (std::size_t h = beacons; h < env.peers.size(); ++h) {
    std::vector<double> to_beacons(beacons);
    for (std::size_t b = 0; b < beacons; ++b)
      to_beacons[b] = pinger.measure_rtt(env.peers[h], env.peers[b]);
    coords[h] = model.embed(to_beacons);
  }
  Samples errors;
  Rng rng(13);
  for (int pair = 0; pair < 1500; ++pair) {
    const std::size_t a = beacons + rng.uniform(env.peers.size() - beacons);
    const std::size_t b = beacons + rng.uniform(env.peers.size() - beacons);
    if (a == b) continue;
    const double truth = env.net.rtt_ms(env.peers[a], env.peers[b]);
    errors.add(std::abs(IcsModel::estimate_rtt(coords[a], coords[b]) - truth) /
               truth);
  }
  return {model.dimensions(), errors.median(), errors.percentile(90)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header("bench_ablation_coords",
                      "ablation: coordinate-system design choices (§3.2)");

  constexpr std::size_t kDims[] = {2, 3, 5};
  constexpr bool kHeights[] = {false, true};
  constexpr unsigned kBudgets[] = {4, 8, 16, 32, 64};
  constexpr std::size_t kBeacons[] = {6, 12, 24};
  constexpr double kThresholds[] = {0.80, 0.95, 0.999};

  const std::size_t kVivaldiCount = std::size(kDims) * std::size(kHeights);
  const std::size_t kBudgetAt = kVivaldiCount;
  const std::size_t kIcsAt = kBudgetAt + std::size(kBudgets);
  const std::size_t kTrials =
      kIcsAt + std::size(kBeacons) * std::size(kThresholds);

  const auto rows = bench::run_trials(
      kTrials, /*base_seed=*/71, [&](std::size_t trial, std::uint64_t) {
        if (trial < kBudgetAt) {
          VivaldiConfig config;
          config.dimensions = kDims[trial / std::size(kHeights)];
          config.use_height = kHeights[trial % std::size(kHeights)];
          return run_vivaldi(config, 48);
        }
        if (trial < kIcsAt) {
          // Budget sweep keeps the default Vivaldi configuration.
          return run_vivaldi(VivaldiConfig{}, kBudgets[trial - kBudgetAt]);
        }
        const std::size_t i = trial - kIcsAt;
        return run_ics(kBeacons[i / std::size(kThresholds)],
                       kThresholds[i % std::size(kThresholds)]);
      });

  TablePrinter vivaldi_table(
      {"dims", "height", "rounds", "median_err", "p90_err"});
  for (std::size_t i = 0; i < kVivaldiCount; ++i) {
    auto row = vivaldi_table.row();
    row.cell(std::uint64_t(kDims[i / std::size(kHeights)]))
        .cell(kHeights[i % std::size(kHeights)] ? "yes" : "no")
        .cell(std::uint64_t(48))
        .cell(rows[i].median_err, 3)
        .cell(rows[i].p90_err, 3);
  }
  vivaldi_table.print("Vivaldi: dimensionality x height vector");

  TablePrinter budget_table({"rounds", "median_err"});
  for (std::size_t i = 0; i < std::size(kBudgets); ++i) {
    auto row = budget_table.row();
    row.cell(std::uint64_t(kBudgets[i])).cell(rows[kBudgetAt + i].median_err, 3);
  }
  budget_table.print("Vivaldi: accuracy vs sampling budget");

  TablePrinter ics_table(
      {"beacons", "threshold", "dims_chosen", "median_err", "p90_err"});
  for (std::size_t i = kIcsAt; i < kTrials; ++i) {
    const std::size_t cell = i - kIcsAt;
    auto row = ics_table.row();
    row.cell(std::uint64_t(kBeacons[cell / std::size(kThresholds)]))
        .cell(kThresholds[cell % std::size(kThresholds)], 3)
        .cell(rows[i].dims_chosen)
        .cell(rows[i].median_err, 3)
        .cell(rows[i].p90_err, 3);
  }
  ics_table.print("ICS: beacon count x variation threshold");
  return 0;
}
