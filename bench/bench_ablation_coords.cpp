// Ablation — latency-prediction design choices (DESIGN.md ablation list):
//   * Vivaldi dimensionality and the height vector on/off,
//   * ICS beacon count and variation threshold,
//   * measurement (probe) budget vs accuracy.
// Substantiates the §3.2 trade-off quantitatively.
#include "bench_common.hpp"
#include "netinfo/ics.hpp"
#include "netinfo/pinger.hpp"
#include "netinfo/vivaldi.hpp"

using namespace uap2p;
using namespace uap2p::netinfo;

namespace {

struct Env {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net{engine, topo, 71};
  std::vector<PeerId> peers = net.populate(120);
};

Samples vivaldi_errors(Env& env, VivaldiConfig config, unsigned rounds) {
  VivaldiSystem system(env.peers.size(), config, Rng(5));
  Rng rng(7);
  for (unsigned round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < env.peers.size(); ++i) {
      const std::size_t j = rng.uniform(env.peers.size());
      if (i == j) continue;
      system.update(PeerId(std::uint32_t(i)), PeerId(std::uint32_t(j)),
                    env.net.rtt_ms(env.peers[i], env.peers[j]));
    }
  }
  Rng eval(9);
  return relative_error_samples(system, eval, 1500, [&](PeerId a, PeerId b) {
    return env.net.rtt_ms(a, b);
  });
}

}  // namespace

int main() {
  bench::print_header("bench_ablation_coords",
                      "ablation: coordinate-system design choices (§3.2)");
  Env env;

  TablePrinter vivaldi_table(
      {"dims", "height", "rounds", "median_err", "p90_err"});
  for (const std::size_t dims : {2u, 3u, 5u}) {
    for (const bool height : {false, true}) {
      VivaldiConfig config;
      config.dimensions = dims;
      config.use_height = height;
      const Samples errors = vivaldi_errors(env, config, 48);
      auto row = vivaldi_table.row();
      row.cell(std::uint64_t(dims))
          .cell(height ? "yes" : "no")
          .cell(std::uint64_t(48))
          .cell(errors.median(), 3)
          .cell(errors.percentile(90), 3);
    }
  }
  vivaldi_table.print("Vivaldi: dimensionality x height vector");

  TablePrinter budget_table({"rounds", "median_err"});
  for (const unsigned rounds : {4u, 8u, 16u, 32u, 64u}) {
    const Samples errors = vivaldi_errors(env, {}, rounds);
    auto row = budget_table.row();
    row.cell(std::uint64_t(rounds)).cell(errors.median(), 3);
  }
  budget_table.print("Vivaldi: accuracy vs sampling budget");

  // ICS: beacons x threshold.
  PingerConfig ping_config;
  ping_config.jitter_sigma = 0.0;
  Pinger pinger(env.net, Rng(11), ping_config);
  TablePrinter ics_table(
      {"beacons", "threshold", "dims_chosen", "median_err", "p90_err"});
  for (const std::size_t beacons : {6u, 12u, 24u}) {
    for (const double threshold : {0.80, 0.95, 0.999}) {
      Matrix rtts(beacons, beacons);
      for (std::size_t i = 0; i < beacons; ++i)
        for (std::size_t j = i + 1; j < beacons; ++j) {
          const double rtt =
              pinger.measure_rtt(env.peers[i], env.peers[j]);
          rtts(i, j) = rtt;
          rtts(j, i) = rtt;
        }
      IcsConfig config;
      config.variation_threshold = threshold;
      const IcsModel model = IcsModel::build(rtts, config);
      std::vector<std::vector<double>> coords(env.peers.size());
      for (std::size_t h = beacons; h < env.peers.size(); ++h) {
        std::vector<double> to_beacons(beacons);
        for (std::size_t b = 0; b < beacons; ++b)
          to_beacons[b] = pinger.measure_rtt(env.peers[h], env.peers[b]);
        coords[h] = model.embed(to_beacons);
      }
      Samples errors;
      Rng rng(13);
      for (int pair = 0; pair < 1500; ++pair) {
        const std::size_t a =
            beacons + rng.uniform(env.peers.size() - beacons);
        const std::size_t b =
            beacons + rng.uniform(env.peers.size() - beacons);
        if (a == b) continue;
        const double truth = env.net.rtt_ms(env.peers[a], env.peers[b]);
        errors.add(std::abs(IcsModel::estimate_rtt(coords[a], coords[b]) -
                            truth) /
                   truth);
      }
      auto row = ics_table.row();
      row.cell(std::uint64_t(beacons))
          .cell(threshold, 3)
          .cell(std::uint64_t(model.dimensions()))
          .cell(errors.median(), 3)
          .cell(errors.percentile(90), 3);
    }
  }
  ics_table.print("ICS: beacon count x variation threshold");
  return 0;
}
