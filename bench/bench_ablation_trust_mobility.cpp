// Ablation — the remaining §6 challenges:
//   * "ISP Internal Information": what happens to peers when the oracle
//     is not trustworthy (dishonesty-rate sweep),
//   * "Mobile Support": how cached underlay information decays for mobile
//     peers (staleness sweep under a random-waypoint model).
//
// Each sweep point is an independent trial (its own engine + network with
// the historical fixed seed) run through bench::run_trials; the honest-RTT
// ratio column is derived after the gather from the rate-0 row.
#include "bench_common.hpp"
#include "netinfo/ipmap.hpp"
#include "netinfo/vivaldi.hpp"
#include "underlay/mobility.hpp"

using namespace uap2p;

namespace {

struct TrustRow {
  double mean_as_hops = 0.0;
  double mean_rtt = 0.0;
};

TrustRow run_trust(double dishonest_rate) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 4, 0.3);
  underlay::Network net(engine, topo, 139);
  const auto peers = net.populate(120);
  netinfo::OracleConfig config;
  config.dishonest_rate = dishonest_rate;
  netinfo::Oracle oracle(net, config);
  RunningStats hops, rtt;
  for (std::size_t i = 0; i < peers.size(); i += 2) {
    const auto ranked = oracle.rank(peers[i], peers);
    for (std::size_t k = 0; k < 5 && k < ranked.size(); ++k) {
      hops.add(double(oracle.as_hops(peers[i], ranked[k])));
      rtt.add(net.rtt_ms(peers[i], ranked[k]));
    }
  }
  bench::submit_engine_metrics(engine, net);
  return {hops.mean(), rtt.mean()};
}

struct MobilityRow {
  double moves_per_hour = 0.0;
  double stale_isp_pct = 0.0;
  double vivaldi_median_err = 0.0;
  double geo_error_km_p90 = 0.0;
};

MobilityRow run_mobility(double speed_kmh) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 5, 0.3);
  underlay::Network net(engine, topo, 149);
  const auto peers = net.populate(100);

  // Collect everything while peers are static...
  netinfo::IpMappingService ip_db(topo, {});
  std::vector<AsId> cached_isp(peers.size());
  std::vector<underlay::GeoPoint> cached_location(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    cached_isp[i] = *ip_db.lookup_isp(net.host(peers[i]).ip);
    cached_location[i] = net.host(peers[i]).location;
  }
  netinfo::VivaldiSystem vivaldi(peers.size(), {}, Rng(3));
  Rng gossip(5);
  for (int round = 0; round < 32; ++round) {
    for (std::size_t i = 0; i < peers.size(); ++i) {
      const std::size_t j = gossip.uniform(peers.size());
      if (i == j) continue;
      vivaldi.update(PeerId(std::uint32_t(i)), PeerId(std::uint32_t(j)),
                     net.rtt_ms(peers[i], peers[j]));
    }
  }

  // ...then let them move for 4 simulated hours.
  underlay::MobilityConfig mobility_config;
  mobility_config.speed_kmh = speed_kmh;
  mobility_config.mean_pause_ms = sim::minutes(2);
  underlay::MobilityProcess mobility(engine, net, mobility_config);
  if (speed_kmh > 0) {
    for (const PeerId peer : peers) mobility.add_peer(peer);
  }
  engine.run_until(sim::hours(4));
  mobility.stop();

  // How much of the cached information still holds?
  std::size_t stale_isp = 0;
  Samples geo_error;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (net.host(peers[i]).as != cached_isp[i]) ++stale_isp;
    geo_error.add(underlay::haversine_km(cached_location[i],
                                         net.host(peers[i]).location));
  }
  Rng eval(7);
  const Samples vivaldi_error = netinfo::relative_error_samples(
      vivaldi, eval, 800, [&](PeerId a, PeerId b) { return net.rtt_ms(a, b); });

  bench::submit_engine_metrics(engine, net);
  return {mobility.completed_moves() / 4.0,
          100.0 * double(stale_isp) / double(peers.size()),
          vivaldi_error.median(), geo_error.percentile(90)};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header("bench_ablation_trust_mobility",
                      "§6 challenges: ISP trust and mobile support");

  constexpr double kRates[] = {0.0, 0.25, 0.5, 1.0};
  constexpr double kSpeeds[] = {0.0, 60.0, 300.0, 900.0};
  const std::size_t kMobilityAt = std::size(kRates);
  const std::size_t kTrials = kMobilityAt + std::size(kSpeeds);

  struct TrialResult {
    TrustRow trust;
    MobilityRow mobility;
  };
  const auto results = bench::run_trials(
      kTrials, /*base_seed=*/139, [&](std::size_t trial, std::uint64_t) {
        TrialResult result;
        if (trial < kMobilityAt) {
          result.trust = run_trust(kRates[trial]);
        } else {
          result.mobility = run_mobility(kSpeeds[trial - kMobilityAt]);
        }
        return result;
      });

  {
    TablePrinter table({"dishonest_rate", "mean_neighbor_as_hops",
                        "mean_neighbor_rtt_ms", "vs honest rtt"});
    const double honest_rtt = results[0].trust.mean_rtt;
    for (std::size_t i = 0; i < std::size(kRates); ++i) {
      const TrustRow& trust = results[i].trust;
      auto row = table.row();
      row.cell(kRates[i], 2)
          .cell(trust.mean_as_hops, 2)
          .cell(trust.mean_rtt, 1)
          .cell(honest_rtt > 0 ? trust.mean_rtt / honest_rtt : 1.0, 2);
    }
    table.print("trusting a dishonest ISP oracle (peer-side damage)");
    std::printf(
        "the paper's point: peers must be able to verify or bound ISP\n"
        "advice; a fully adversarial oracle more than doubles neighbor\n"
        "latency while looking exactly like a helpful one.\n");
  }

  {
    TablePrinter table({"mobility", "moves/h", "stale_isp_mapping_%",
                        "vivaldi_median_err", "geo_error_km_p90"});
    for (std::size_t i = 0; i < std::size(kSpeeds); ++i) {
      const MobilityRow& mob = results[kMobilityAt + i].mobility;
      const double speed_kmh = kSpeeds[i];
      auto row = table.row();
      row.cell(speed_kmh == 0 ? "static"
                              : TablePrinter::fmt(speed_kmh, 0) + " km/h")
          .cell(mob.moves_per_hour, 1)
          .cell(mob.stale_isp_pct, 1)
          .cell(mob.vivaldi_median_err, 3)
          .cell(mob.geo_error_km_p90, 1);
    }
    table.print("mobility: decay of cached underlay information (4 h)");
    std::printf(
        "the paper's point (§6): for mobile peers, ISP-location and\n"
        "latency coordinates 'no longer apply because of continuous\n"
        "variation' — collectors need refresh schedules tied to mobility.\n");
  }
  return bench::dump_observability();
}
