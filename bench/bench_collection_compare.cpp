// §3 head-to-head — every proximity-collection technique the survey
// classifies, applied to the same task: rank 60 candidate neighbors for
// each querier, keep the top 6. Reported per technique: locality quality
// (intra-AS share and mean RTT of chosen neighbors), what it costs
// (probes / queries), and who must cooperate (the §5 trust discussion).
//
// Each technique runs as one independent trial over its own copy of the
// *same* network (fixed net seed): the comparison column-to-column is
// across identical underlays, and the trials parallelize freely.
#include "bench_common.hpp"
#include "netinfo/binning.hpp"
#include "netinfo/cdn.hpp"
#include "netinfo/gmeasure.hpp"
#include "netinfo/p4p.hpp"
#include "netinfo/vivaldi.hpp"

using namespace uap2p;

namespace {

/// The shared experiment substrate; every technique trial wires an
/// identical one (net seed fixed at 131, as the serial bench always did)
/// around the group-wide immutable routing snapshot.
struct Env {
  explicit Env(std::shared_ptr<const underlay::SharedRouting> routing)
      : net(engine, std::move(routing), 131), peers(net.populate(180)) {}
  sim::Engine engine;
  underlay::Network net;
  std::vector<PeerId> peers;
};

constexpr std::size_t kKeep = 6;

struct Outcome {
  const char* technique = "";
  const char* cooperator = "";
  double intra_as = 0.0;
  double mean_rtt = 0.0;
  std::uint64_t cost_messages = 0;
};

template <typename RankFn>
Outcome evaluate(Env& env, const char* name, const char* cooperator,
                 RankFn&& rank_fn) {
  Outcome outcome;
  outcome.technique = name;
  outcome.cooperator = cooperator;
  RunningStats rtt;
  std::size_t intra = 0, total = 0;
  for (std::size_t i = 0; i < env.peers.size(); i += 3) {
    std::vector<PeerId> ranked = rank_fn(env.peers[i]);
    for (std::size_t k = 0; k < kKeep && k < ranked.size(); ++k) {
      rtt.add(env.net.rtt_ms(env.peers[i], ranked[k]));
      ++total;
      intra += env.net.host(env.peers[i]).as == env.net.host(ranked[k]).as;
    }
  }
  outcome.intra_as = total ? double(intra) / total : 0.0;
  outcome.mean_rtt = rtt.mean();
  return outcome;
}

template <typename System>
std::vector<PeerId> rank_by_estimate(Env& env, PeerId self,
                                     const System& estimate) {
  struct Scored {
    PeerId peer;
    double score;
  };
  std::vector<Scored> scored;
  for (const PeerId other : env.peers) {
    if (other == self) continue;
    scored.push_back({other, estimate(self, other)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  std::vector<PeerId> result;
  for (const Scored& s : scored) result.push_back(s.peer);
  return result;
}

Outcome run_technique(Env& env, std::size_t technique) {
  const auto& peers = env.peers;
  switch (technique) {
    case 0: {  // Baseline: random.
      Rng rng(1);
      return evaluate(env, "random (baseline)", "nobody", [&](PeerId self) {
        std::vector<PeerId> shuffled = peers;
        std::erase(shuffled, self);
        for (std::size_t i = shuffled.size(); i > 1; --i)
          std::swap(shuffled[i - 1], shuffled[rng.uniform(i)]);
        return shuffled;
      });
    }
    case 1: {  // Oracle ([1]).
      netinfo::Oracle oracle(env.net);
      Outcome outcome =
          evaluate(env, "ISP oracle [1]", "ISP (per-query)",
                   [&](PeerId self) { return oracle.rank(self, peers); });
      outcome.cost_messages = oracle.query_count();
      return outcome;
    }
    case 2: {  // P4P ([29]).
      netinfo::ITracker itracker(env.net);
      netinfo::P4pSelector selector(itracker);
      Outcome outcome =
          evaluate(env, "P4P iTracker [29]", "ISP (one-off view)",
                   [&](PeerId self) { return selector.rank(self, peers); });
      outcome.cost_messages = itracker.view_fetches();
      return outcome;
    }
    case 3: {  // Ono ([5]).
      netinfo::CdnConfig cdn_config;
      cdn_config.replica_count = 12;
      netinfo::SimulatedCdn cdn(env.net, cdn_config);
      netinfo::CdnInference inference(cdn, env.net.host_count());
      inference.warm_up(peers);
      Outcome outcome =
          evaluate(env, "Ono / CDN inference [5]", "none (parasitic on CDN)",
                   [&](PeerId self) { return inference.rank(self, peers); });
      outcome.cost_messages = cdn.redirect_count();
      return outcome;
    }
    case 4: {  // Landmark binning ([26]).
      netinfo::BinningSystem binning(
          env.net, {peers[0], peers[1], peers[2], peers[3], peers[4],
                    peers[5]});
      Outcome outcome =
          evaluate(env, "landmark binning [26]", "landmark hosts",
                   [&](PeerId self) { return binning.rank(self, peers); });
      outcome.cost_messages = binning.pinger().probes_sent();
      return outcome;
    }
    case 5: {  // gMeasure ([34]): group-cached explicit measurement.
      netinfo::PingerConfig ping_config;
      ping_config.jitter_sigma = 0.0;
      netinfo::Pinger pinger(env.net, Rng(9), ping_config);
      netinfo::GroupMeasure gm(env.net, pinger, peers);
      Outcome outcome = evaluate(
          env, "gMeasure groups [34]", "group heads", [&](PeerId self) {
            return rank_by_estimate(env, self, [&](PeerId a, PeerId b) {
              const double rtt = gm.estimate_rtt(a, b);
              return rtt <= 0 ? 1e12 : rtt;
            });
          });
      outcome.cost_messages = pinger.probes_sent();
      return outcome;
    }
    default: {  // Vivaldi ([7]).
      netinfo::VivaldiSystem vivaldi(peers.size(), {}, Rng(3));
      netinfo::Pinger pinger(env.net, Rng(5), {});
      Rng rng(7);
      for (int round = 0; round < 48; ++round) {
        for (std::size_t i = 0; i < peers.size(); ++i) {
          const std::size_t j = rng.uniform(peers.size());
          if (i == j) continue;
          const double rtt = pinger.measure_rtt(peers[i], peers[j]);
          if (rtt > 0) vivaldi.update(PeerId(std::uint32_t(i)),
                                      PeerId(std::uint32_t(j)), rtt);
        }
      }
      Outcome outcome = evaluate(
          env, "Vivaldi coordinates [7]", "nobody", [&](PeerId self) {
            return rank_by_estimate(env, self, [&](PeerId a, PeerId b) {
              return vivaldi.estimate_rtt(a, b);
            });
          });
      outcome.cost_messages = pinger.probes_sent();
      return outcome;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header("bench_collection_compare",
                      "§3 collection techniques on one neighbor-selection task");

  constexpr std::size_t kTechniques = 7;
  // One warmed routing snapshot for the whole group; trials only read it.
  // With --snapshot-dir= the snapshot persists across runs too.
  const auto routing = bench::shared_routing_cached(
      "transit-stub", "t3-s5-p0.3", /*seed=*/1,
      underlay::AsTopology::transit_stub(3, 5, 0.3));
  const std::vector<Outcome> outcomes = bench::run_trials(
      kTechniques, /*base_seed=*/131,
      [&](std::size_t technique, std::uint64_t) {
        // Techniques keep their historical fixed internal seeds; the trial
        // seed is unused so every column sees the identical underlay.
        Env env(routing);
        Outcome outcome = run_technique(env, technique);
        bench::submit_engine_metrics(env.engine, env.net);
        return outcome;
      });

  TablePrinter table({"technique", "who cooperates", "intra-AS top-6",
                      "mean RTT (ms)", "collection msgs"});
  for (const Outcome& outcome : outcomes) {
    auto row = table.row();
    row.cell(outcome.technique)
        .cell(outcome.cooperator)
        .cell(outcome.intra_as, 3)
        .cell(outcome.mean_rtt, 1)
        .cell(outcome.cost_messages);
  }
  table.print("collection technique comparison (180 peers, 18 ASes)");
  std::printf(
      "\nshape notes (paper §3/§5): ISP-backed methods (oracle, P4P) give\n"
      "the best locality at near-zero peer-side measurement cost but need\n"
      "ISP cooperation; Ono approaches them with no cooperation at all;\n"
      "coordinates/binning trade accuracy for generality.\n");
  return bench::dump_observability();
}
