// §3 head-to-head — every proximity-collection technique the survey
// classifies, applied to the same task: rank 60 candidate neighbors for
// each querier, keep the top 6. Reported per technique: locality quality
// (intra-AS share and mean RTT of chosen neighbors), what it costs
// (probes / queries), and who must cooperate (the §5 trust discussion).
#include "bench_common.hpp"
#include "netinfo/binning.hpp"
#include "netinfo/cdn.hpp"
#include "netinfo/gmeasure.hpp"
#include "netinfo/p4p.hpp"
#include "netinfo/vivaldi.hpp"

using namespace uap2p;

int main() {
  bench::print_header("bench_collection_compare",
                      "§3 collection techniques on one neighbor-selection task");

  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 131);
  const auto peers = net.populate(180);
  constexpr std::size_t kKeep = 6;

  struct Outcome {
    const char* technique;
    const char* cooperator;
    double intra_as = 0.0;
    double mean_rtt = 0.0;
    std::uint64_t cost_messages = 0;
  };
  std::vector<Outcome> outcomes;

  auto evaluate = [&](const char* name, const char* cooperator,
                      auto&& rank_fn, std::uint64_t cost) {
    Outcome outcome{name, cooperator};
    RunningStats rtt;
    std::size_t intra = 0, total = 0;
    for (std::size_t i = 0; i < peers.size(); i += 3) {
      std::vector<PeerId> ranked = rank_fn(peers[i]);
      for (std::size_t k = 0; k < kKeep && k < ranked.size(); ++k) {
        rtt.add(net.rtt_ms(peers[i], ranked[k]));
        ++total;
        intra += net.host(peers[i]).as == net.host(ranked[k]).as;
      }
    }
    outcome.intra_as = total ? double(intra) / total : 0.0;
    outcome.mean_rtt = rtt.mean();
    outcome.cost_messages = cost;
    outcomes.push_back(outcome);
  };

  // Baseline: random.
  {
    Rng rng(1);
    evaluate("random (baseline)", "nobody",
             [&](PeerId self) {
               std::vector<PeerId> shuffled = peers;
               std::erase(shuffled, self);
               for (std::size_t i = shuffled.size(); i > 1; --i)
                 std::swap(shuffled[i - 1], shuffled[rng.uniform(i)]);
               return shuffled;
             },
             0);
  }
  // Oracle ([1]).
  {
    netinfo::Oracle oracle(net);
    evaluate("ISP oracle [1]", "ISP (per-query)",
             [&](PeerId self) { return oracle.rank(self, peers); },
             0);
    outcomes.back().cost_messages = oracle.query_count();
  }
  // P4P ([29]).
  {
    netinfo::ITracker itracker(net);
    netinfo::P4pSelector selector(itracker);
    evaluate("P4P iTracker [29]", "ISP (one-off view)",
             [&](PeerId self) { return selector.rank(self, peers); },
             0);
    outcomes.back().cost_messages = itracker.view_fetches();
  }
  // Ono ([5]).
  {
    netinfo::CdnConfig cdn_config;
    cdn_config.replica_count = 12;
    netinfo::SimulatedCdn cdn(net, cdn_config);
    netinfo::CdnInference inference(cdn, net.host_count());
    inference.warm_up(peers);
    evaluate("Ono / CDN inference [5]", "none (parasitic on CDN)",
             [&](PeerId self) { return inference.rank(self, peers); },
             cdn.redirect_count());
  }
  // Landmark binning ([26]).
  {
    netinfo::BinningSystem binning(
        net, {peers[0], peers[1], peers[2], peers[3], peers[4], peers[5]});
    evaluate("landmark binning [26]", "landmark hosts",
             [&](PeerId self) { return binning.rank(self, peers); },
             0);
    outcomes.back().cost_messages = binning.pinger().probes_sent();
  }
  // gMeasure ([34]): group-cached explicit measurement.
  {
    netinfo::PingerConfig ping_config;
    ping_config.jitter_sigma = 0.0;
    netinfo::Pinger pinger(net, Rng(9), ping_config);
    netinfo::GroupMeasure gm(net, pinger, peers);
    evaluate("gMeasure groups [34]", "group heads",
             [&](PeerId self) {
               struct Scored {
                 PeerId peer;
                 double estimate;
               };
               std::vector<Scored> scored;
               for (const PeerId other : peers) {
                 if (other == self) continue;
                 const double rtt = gm.estimate_rtt(self, other);
                 scored.push_back({other, rtt <= 0 ? 1e12 : rtt});
               }
               std::stable_sort(scored.begin(), scored.end(),
                                [](const Scored& a, const Scored& b) {
                                  return a.estimate < b.estimate;
                                });
               std::vector<PeerId> result;
               for (const Scored& s : scored) result.push_back(s.peer);
               return result;
             },
             0);
    outcomes.back().cost_messages = pinger.probes_sent();
  }
  // Vivaldi ([7]).
  {
    netinfo::VivaldiSystem vivaldi(peers.size(), {}, Rng(3));
    netinfo::Pinger pinger(net, Rng(5), {});
    Rng rng(7);
    for (int round = 0; round < 48; ++round) {
      for (std::size_t i = 0; i < peers.size(); ++i) {
        const std::size_t j = rng.uniform(peers.size());
        if (i == j) continue;
        const double rtt = pinger.measure_rtt(peers[i], peers[j]);
        if (rtt > 0) vivaldi.update(PeerId(std::uint32_t(i)),
                                    PeerId(std::uint32_t(j)), rtt);
      }
    }
    evaluate("Vivaldi coordinates [7]", "nobody",
             [&](PeerId self) {
               struct Scored {
                 PeerId peer;
                 double estimate;
               };
               std::vector<Scored> scored;
               for (const PeerId other : peers) {
                 if (other == self) continue;
                 scored.push_back({other, vivaldi.estimate_rtt(self, other)});
               }
               std::stable_sort(scored.begin(), scored.end(),
                                [](const Scored& a, const Scored& b) {
                                  return a.estimate < b.estimate;
                                });
               std::vector<PeerId> result;
               for (const Scored& s : scored) result.push_back(s.peer);
               return result;
             },
             pinger.probes_sent());
  }

  TablePrinter table({"technique", "who cooperates", "intra-AS top-6",
                      "mean RTT (ms)", "collection msgs"});
  for (const Outcome& outcome : outcomes) {
    auto row = table.row();
    row.cell(outcome.technique)
        .cell(outcome.cooperator)
        .cell(outcome.intra_as, 3)
        .cell(outcome.mean_rtt, 1)
        .cell(outcome.cost_messages);
  }
  table.print("collection technique comparison (180 peers, 18 ASes)");
  std::printf(
      "\nshape notes (paper §3/§5): ISP-backed methods (oracle, P4P) give\n"
      "the best locality at near-zero peer-side measurement cost but need\n"
      "ISP cooperation; Ono approaches them with no cooperation at all;\n"
      "coordinates/binning trade accuracy for generality.\n");
  return 0;
}
