// Validates a --trace JSONL file through the shared obs::TraceReader (the
// same parser uap2p_tracediff and uap2p_traceprof use): every line must be
// a complete trace record, and the "t" timestamps must be monotone
// non-decreasing — all records come from one engine, stamped at its
// now(). Used by the obs-validate-trace CTest gate so the trace path
// can't silently rot.
//
// Usage: validate_trace <trace.jsonl>
#include <cstdio>

#include "obs/jsonl.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>\n", argv[0]);
    return 2;
  }
  uap2p::obs::TraceReader reader(argv[1]);
  if (!reader.ok()) {
    std::fprintf(stderr, "error: %s\n", reader.error().c_str());
    return 1;
  }

  unsigned long long records = 0;
  double previous_t = -1.0;
  uap2p::obs::TraceRecord rec;
  for (;;) {
    const uap2p::obs::TraceReader::Status status = reader.next(rec);
    if (status == uap2p::obs::TraceReader::Status::kEof) break;
    if (status != uap2p::obs::TraceReader::Status::kRecord) {
      // The validator is strict: a truncated tail means the producing
      // bench did not shut its sink down cleanly, which IS a bug here.
      std::fprintf(stderr, "line %llu: %s\n",
                   static_cast<unsigned long long>(reader.line_number()),
                   reader.error().c_str());
      return 1;
    }
    if (rec.t < previous_t) {
      std::fprintf(stderr,
                   "line %llu: timestamp %.6f goes backwards (previous "
                   "%.6f)\n",
                   static_cast<unsigned long long>(reader.line_number()),
                   rec.t, previous_t);
      return 1;
    }
    previous_t = rec.t;
    ++records;
  }

  if (records == 0) {
    std::fprintf(stderr, "error: trace is empty\n");
    return 1;
  }
  std::printf("ok: %llu trace records, timestamps monotone\n", records);
  return 0;
}
