// Validates a --trace JSONL file (see obs::JsonlTraceSink): every line
// must be a one-object JSON record with a "kind" field, and the "t"
// timestamps must be monotone non-decreasing — all records come from one
// engine, stamped at its now(). Used by the obs-validate-trace CTest gate
// (src/obs/validate_trace.cmake) so the trace path can't silently rot.
//
// Usage: validate_trace <trace.jsonl>
#include <cstdio>
#include <cstdlib>
#include <cstring>

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.jsonl>\n", argv[0]);
    return 2;
  }
  std::FILE* file = std::fopen(argv[1], "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }

  char line[1024];
  unsigned long long line_no = 0;
  double previous_t = -1.0;
  int rc = 0;
  while (std::fgets(line, sizeof line, file) != nullptr) {
    ++line_no;
    std::size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) {
      std::fprintf(stderr, "line %llu: empty\n", line_no);
      rc = 1;
      break;
    }
    if (line[0] != '{' || line[len - 1] != '}') {
      std::fprintf(stderr, "line %llu: not a JSON object: %s\n", line_no,
                   line);
      rc = 1;
      break;
    }
    if (std::strstr(line, "\"kind\"") == nullptr) {
      std::fprintf(stderr, "line %llu: missing \"kind\" field\n", line_no);
      rc = 1;
      break;
    }
    const char* t_field = std::strstr(line, "\"t\":");
    if (t_field == nullptr) {
      std::fprintf(stderr, "line %llu: missing \"t\" field\n", line_no);
      rc = 1;
      break;
    }
    char* end = nullptr;
    const double t = std::strtod(t_field + 4, &end);
    if (end == t_field + 4) {
      std::fprintf(stderr, "line %llu: unparsable \"t\" value\n", line_no);
      rc = 1;
      break;
    }
    if (t < previous_t) {
      std::fprintf(stderr,
                   "line %llu: timestamp %.6f goes backwards (previous "
                   "%.6f)\n",
                   line_no, t, previous_t);
      rc = 1;
      break;
    }
    previous_t = t;
  }
  std::fclose(file);

  if (rc == 0 && line_no == 0) {
    std::fprintf(stderr, "error: trace is empty\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("ok: %llu trace records, timestamps monotone\n", line_no);
  }
  return rc;
}
