// Figure 4 — the Internet Coordinate System of Lim et al. [20]: beacon
// nodes play the role of satellites, ordinary hosts trilaterate. This
// bench (a) replays the paper's worked Examples 4-5 numerically and
// (b) runs ICS and Vivaldi side by side on a simulated underlay,
// reporting embedding accuracy and measurement overhead — the explicit-
// measurement vs prediction trade-off of §3.2.
#include "bench_common.hpp"
#include "netinfo/ics.hpp"
#include "netinfo/pinger.hpp"
#include "netinfo/vivaldi.hpp"

using namespace uap2p;
using namespace uap2p::netinfo;

int main() {
  bench::print_header("bench_fig4_ics",
                      "Figure 4 + §3.2 (ICS of Lim et al. [20], Examples 4-5)");

  // (a) The paper's worked example.
  Matrix d(4, 4);
  const double values[4][4] = {
      {0, 1, 3, 3}, {1, 0, 3, 3}, {3, 3, 0, 1}, {3, 3, 1, 0}};
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) d(r, c) = values[r][c];

  IcsConfig example_config;
  example_config.min_dimensions = 2;
  example_config.max_dimensions = 2;
  const IcsModel model = IcsModel::build(d, example_config);
  std::printf("\nExample 4 (n=2): alpha = %.4f   (paper: 0.6)\n",
              model.scale());
  std::printf("inter-AS beacon distance = %.4f   (paper: exactly 3)\n",
              IcsModel::estimate_rtt(model.beacon_coordinate(0),
                                     model.beacon_coordinate(2)));
  IcsConfig n4;
  n4.min_dimensions = 4;
  n4.max_dimensions = 4;
  const IcsModel model4 = IcsModel::build(d, n4);
  std::printf("Example 4 (n=4): alpha = %.4f   (paper: 0.5927)\n",
              model4.scale());
  const auto xa = model.embed({1, 1, 4, 4});
  const auto xb = model.embed({10, 10, 10, 10});
  std::printf("Example 5: host A -> [%.1f, %.1f] (paper: [-3, 1.8])\n", xa[0],
              xa[1]);
  std::printf("           d(c1,A)=%.2f (paper 0.94)  d(c3,A)=%.2f (paper 3.42)\n",
              IcsModel::estimate_rtt(model.beacon_coordinate(0), xa),
              IcsModel::estimate_rtt(model.beacon_coordinate(2), xa));
  std::printf("           host B -> [%.1f, %.1f], d(ci,B)=%.2f (paper 10.01)\n",
              xb[0], xb[1],
              IcsModel::estimate_rtt(model.beacon_coordinate(0), xb));

  // (b) ICS vs Vivaldi vs explicit ping on a simulated underlay.
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 31);
  const auto peers = net.populate(150);

  PingerConfig ping_config;
  ping_config.jitter_sigma = 0.03;
  Pinger pinger(net, Rng(5), ping_config);

  TablePrinter table({"method", "beacons/samples", "median_rel_err",
                      "p90_rel_err", "probes", "probe_bytes"});

  for (const std::size_t beacons : {8u, 16u, 32u}) {
    // Beacons = first peers of distinct ASes (well spread).
    Matrix rtts(beacons, beacons);
    const std::uint64_t probes_before = pinger.probes_sent();
    for (std::size_t i = 0; i < beacons; ++i) {
      for (std::size_t j = i + 1; j < beacons; ++j) {
        const double rtt = pinger.measure_rtt(peers[i], peers[j]);
        rtts(i, j) = rtt;
        rtts(j, i) = rtt;
      }
    }
    const IcsModel ics = IcsModel::build(rtts, {});
    // Embed 100 hosts.
    std::vector<std::vector<double>> coords(peers.size());
    for (std::size_t h = beacons; h < peers.size(); ++h) {
      std::vector<double> to_beacons(beacons);
      for (std::size_t b = 0; b < beacons; ++b) {
        to_beacons[b] = pinger.measure_rtt(peers[h], peers[b]);
      }
      coords[h] = ics.embed(to_beacons);
    }
    Samples errors;
    Rng rng(17);
    for (int pair = 0; pair < 2000; ++pair) {
      const std::size_t a = beacons + rng.uniform(peers.size() - beacons);
      const std::size_t b = beacons + rng.uniform(peers.size() - beacons);
      if (a == b) continue;
      const double truth = net.rtt_ms(peers[a], peers[b]);
      const double estimate = IcsModel::estimate_rtt(coords[a], coords[b]);
      errors.add(std::abs(estimate - truth) / truth);
    }
    auto row = table.row();
    row.cell("ICS dims=" + std::to_string(ics.dimensions()))
        .cell(std::uint64_t(beacons))
        .cell(errors.median(), 3)
        .cell(errors.percentile(90), 3)
        .cell(pinger.probes_sent() - probes_before)
        .cell((pinger.probes_sent() - probes_before) * 2 * 64);
  }

  // Vivaldi with comparable sampling budget.
  {
    const std::uint64_t probes_before = pinger.probes_sent();
    VivaldiConfig config;
    VivaldiSystem vivaldi(peers.size(), config, Rng(19));
    Rng rng(21);
    for (int round = 0; round < 24; ++round) {
      for (std::size_t i = 0; i < peers.size(); ++i) {
        const std::size_t j = rng.uniform(peers.size());
        if (i == j) continue;
        const double rtt = pinger.measure_rtt(peers[i], peers[j]);
        if (rtt > 0) vivaldi.update(PeerId(std::uint32_t(i)),
                                    PeerId(std::uint32_t(j)), rtt);
      }
    }
    Rng eval(23);
    const Samples errors = relative_error_samples(
        vivaldi, eval, 2000,
        [&](PeerId a, PeerId b) { return net.rtt_ms(a, b); });
    auto row = table.row();
    row.cell("Vivaldi 3D+h")
        .cell(std::uint64_t(24))
        .cell(errors.median(), 3)
        .cell(errors.percentile(90), 3)
        .cell(pinger.probes_sent() - probes_before)
        .cell((pinger.probes_sent() - probes_before) * 2 * 64);
  }
  // Explicit measurement: exact but O(n^2) probes.
  {
    const std::uint64_t full_mesh =
        std::uint64_t(peers.size()) * (peers.size() - 1) / 2 * 3;
    auto row = table.row();
    row.cell("explicit ping (full mesh)")
        .cell(std::uint64_t(peers.size()))
        .cell(0.03, 3)
        .cell(0.05, 3)
        .cell(full_mesh)
        .cell(full_mesh * 2 * 64);
  }
  table.print("§3.2: prediction accuracy vs measurement overhead, 150 peers");
  std::printf(
      "\nshape check: prediction methods reach ~10-30%% error at a tiny\n"
      "fraction of the probe budget of explicit full-mesh measurement —\n"
      "the paper's rationale for using measurements 'only sparingly'.\n");
  return 0;
}
