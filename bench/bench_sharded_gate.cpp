// Sharded-serial identity driver (DESIGN.md "Sharded engine").
//
// Runs one fixed scenario — --scenario=gnutella (flood search over the
// testlab overlay) or --scenario=kademlia (join + iterative lookups +
// store/find_value) — under the shard count given by --shards, and emits
// the observability artifacts the CTest gates diff across shard counts:
//   * --metrics=<path>: a registry holding the overlay counters, the
//     lane-merged network/traffic counters, and the engine group's
//     *comparable* export (the five behavioral counters; the structural
//     queue/slab stats depend on how the event queue was split and are
//     deliberately excluded). Must be byte-identical between --shards=1
//     and --shards=4 (cmake -E compare_files).
//   * --trace=<path>: the full JSONL trace, captured through
//     obs::ShardedTraceMux (per-shard lanes merged by timestamp) for
//     every shard count — including 1 — so both runs take the exact same
//     emission path. Must diff empty under uap2p_tracediff.
//
// The scenario itself is driven through the same EngineGroup machinery at
// every shard count; --shards=1 is the serial baseline.
#include <cstring>

#include "bench_common.hpp"
#include "overlay/kademlia.hpp"

namespace {

using namespace uap2p;

/// Wires per-shard engine lanes + network lanes + the overlay's driver
/// lane into `mux` (lane 0 = driver/overlay, lane i+1 = shard i).
template <typename Overlay>
void wire_trace(sim::EngineGroup& engines, underlay::Network& net,
                Overlay& overlay, obs::ShardedTraceMux* mux) {
  if (mux == nullptr) return;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    engines.shard(i).set_trace(mux->lane(i + 1));
  }
  net.set_trace_mux(mux);
  overlay.set_trace(mux->lane(0));
}

/// Gnutella flood scenario: locality workload + keepalive cycle over the
/// standard testlab (GnutellaLab handles construction; its automatic
/// observability is off — this bench owns the registry and the mux).
int run_gnutella(std::size_t shards, obs::MetricsRegistry& reg,
                 obs::ShardedTraceMux* mux) {
  overlay::gnutella::Config config;
  bench::GnutellaLab lab(underlay::AsTopology::transit_stub(3, 5, 0.3), 120,
                         config, /*seed=*/7 + bench::options().seed_offset,
                         shards);
  lab.net->set_metrics(&reg);
  lab.system->bind_metrics(reg);
  // Per-AS-pair matrix + windowed series ride the byte-diffed export:
  // the gate proves the sharded merge of the new sections stays
  // byte-identical to the serial run too.
  lab.net->enable_traffic_matrix();
  wire_trace(lab.engines, *lab.net, *lab.system, mux);

  const std::size_t successes =
      lab.run_locality_workload(/*copies=*/2, /*searches_per_as=*/2,
                                /*download=*/true);
  lab.system->ping_cycle();

  std::printf("gnutella: shards=%zu successes=%zu messages=%llu\n", shards,
              successes,
              static_cast<unsigned long long>(lab.system->counts().total()));

  lab.net->merge_side_metrics(reg);
  lab.system->collect_shard_metrics(reg);
  lab.engines.export_comparable_metrics(reg);
  lab.net->export_traffic(reg);
  return successes > 0 ? 0 : 1;
}

/// Kademlia scenario, hand-wired in group mode (vanilla bucket policy —
/// the gate needs no oracle): sequential join, a spread of node lookups,
/// then a store/find_value round-trip.
int run_kademlia(std::size_t shards, obs::MetricsRegistry& reg,
                 obs::ShardedTraceMux* mux) {
  sim::EngineGroup engines(shards);
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  Rng derive(11 + bench::options().seed_offset);
  underlay::Network net(engines, topo, derive.split_seed());
  const std::vector<PeerId> peers = net.populate(64);
  overlay::kademlia::Config config;
  config.seed = derive.split_seed();
  overlay::kademlia::KademliaSystem kad(net, peers, config);
  net.set_metrics(&reg);
  kad.set_metrics(&reg);
  net.enable_traffic_matrix();
  wire_trace(engines, net, kad, mux);

  kad.join_all();
  std::size_t converged = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    // Deterministic targets spread over the id space, no extra RNG stream.
    const overlay::kademlia::NodeId target =
        kad.node_id(peers[(i * 7) % peers.size()]) ^
        (0x9e3779b97f4a7c15ull * (i + 1));
    converged += kad.lookup(peers[i % peers.size()], target).converged;
  }
  const overlay::kademlia::Key key = 0xfeedfacecafef00dull;
  kad.store(peers[0], key, "underlay");
  const auto found = kad.find_value(peers[5], key);
  const bool value_ok = found.value.has_value() && *found.value == "underlay";

  std::printf("kademlia: shards=%zu converged=%zu/16 value=%s rpcs=%llu\n",
              shards, converged, value_ok ? "ok" : "MISSING",
              static_cast<unsigned long long>(kad.total_rpcs()));

  net.merge_side_metrics(reg);
  engines.export_comparable_metrics(reg);
  net.export_traffic(reg);
  return converged > 0 && value_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uap2p;
  bench::parse_flags(argc, argv);
  std::string scenario = "gnutella";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      scenario = argv[i] + 11;
    }
  }
  // This bench owns its observability wiring (the mux must cover every
  // shard); detach the GnutellaLab/run_trials automatic paths.
  const std::string metrics_path = bench::options().metrics_path;
  const std::string trace_path = bench::options().trace_path;
  bench::options().collect_metrics = false;
  bench::options().metrics_path.clear();
  bench::options().trace_path.clear();
  const std::size_t shards = bench::options().shards;

  obs::MetricsRegistry reg;
  obs::ShardedTraceMux mux(shards);
  obs::ShardedTraceMux* muxp = trace_path.empty() ? nullptr : &mux;

  int rc;
  if (scenario == "kademlia") {
    rc = run_kademlia(shards, reg, muxp);
  } else if (scenario == "gnutella") {
    rc = run_gnutella(shards, reg, muxp);
  } else {
    std::fprintf(stderr, "unknown --scenario=%s\n", scenario.c_str());
    return 2;
  }

  if (!metrics_path.empty() && !reg.write_json_file(metrics_path)) {
    std::fprintf(stderr, "error: failed to write metrics to %s\n",
                 metrics_path.c_str());
    rc = 1;
  }
  if (muxp != nullptr) {
    obs::JsonlTraceSink sink(trace_path);
    if (!sink.ok()) {
      std::fprintf(stderr, "error: failed to open trace %s\n",
                   trace_path.c_str());
      return 1;
    }
    mux.flush_to(sink);
  }
  return rc;
}
