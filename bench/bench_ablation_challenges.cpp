// Ablation — the §6 "Open Issues and Challenges" made measurable:
//   * asymmetric node selection: how often is "closest" not mutual,
//   * the long-hop problem: hop-count ranking vs latency ranking mismatch,
//   * oracle candidate-list size sweep (100 / 1000 / full),
//   * Kademlia proximity policy: lookup traffic locality vs correctness,
//   * churn: search success as mean session length shrinks.
#include <algorithm>

#include "bench_common.hpp"
#include "overlay/kademlia.hpp"
#include "sim/churn.hpp"

using namespace uap2p;

int main() {
  bench::print_header("bench_ablation_challenges",
                      "ablation: the paper's §6 challenges, quantified");

  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 91);
  const auto peers = net.populate(120);

  // -- Asymmetric node selection ------------------------------------
  // For each peer, find its latency-closest peer; count pairs where the
  // relation is not mutual.
  {
    std::vector<std::size_t> closest(peers.size());
    for (std::size_t i = 0; i < peers.size(); ++i) {
      double best = 1e300;
      for (std::size_t j = 0; j < peers.size(); ++j) {
        if (i == j) continue;
        const double rtt = net.rtt_ms(peers[i], peers[j]);
        if (rtt < best) {
          best = rtt;
          closest[i] = j;
        }
      }
    }
    std::size_t asymmetric = 0;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      if (closest[closest[i]] != i) ++asymmetric;
    }
    std::printf(
        "\nasymmetric node selection: %zu/%zu peers (%.0f%%) have a\n"
        "closest-peer relation that is not mutual — the §6 asymmetry\n"
        "problem exists even with symmetric link latencies.\n",
        asymmetric, peers.size(), 100.0 * asymmetric / peers.size());
  }

  // -- Long hop problem ----------------------------------------------
  // Rank all candidate peers for a querier by router-hop count and by
  // latency; report Kendall-style pair disagreement.
  {
    RunningStats disagreement;
    for (std::size_t q = 0; q < 12; ++q) {
      std::size_t discordant = 0, pairs = 0;
      for (std::size_t a = 0; a < peers.size(); a += 4) {
        for (std::size_t b = a + 4; b < peers.size(); b += 4) {
          if (a == q || b == q) continue;
          const auto& path_a = net.path_between(peers[q], peers[a]);
          const auto& path_b = net.path_between(peers[q], peers[b]);
          const double lat_a = net.rtt_ms(peers[q], peers[a]);
          const double lat_b = net.rtt_ms(peers[q], peers[b]);
          if (path_a.router_hops == path_b.router_hops) continue;
          ++pairs;
          const bool hops_say_a = path_a.router_hops < path_b.router_hops;
          const bool latency_says_a = lat_a < lat_b;
          if (hops_say_a != latency_says_a) ++discordant;
        }
      }
      if (pairs > 0) disagreement.add(double(discordant) / double(pairs));
    }
    std::printf(
        "long hop problem: hop-count ranking disagrees with latency\n"
        "ranking on %.0f%% of comparable pairs (one hop can hide a long\n"
        "physical distance).\n",
        100.0 * disagreement.mean());
  }

  // -- Oracle list size sweep ------------------------------------------
  {
    TablePrinter table({"oracle list size", "intra_as_edge_frac",
                        "transit_bytes", "msg_total"});
    for (const std::size_t cache : {20ul, 100ul, 1000ul}) {
      overlay::gnutella::Config config;
      config.selection = overlay::gnutella::NeighborSelection::kOracleBiased;
      config.hostcache_size = cache;
      config.oracle_at_file_exchange = true;
      bench::GnutellaLab lab(underlay::AsTopology::transit_stub(3, 5, 0.3),
                             240, config);
      lab.run_locality_workload(4, 3, /*download=*/true);
      auto row = table.row();
      row.cell(std::uint64_t(cache))
          .cell(lab.system->intra_as_edge_fraction(), 3)
          .cell(lab.net->traffic().transit_link_bytes())
          .cell(lab.system->counts().total());
    }
    table.print("oracle candidate-list size (the 100-vs-1000 knob of [1])");
  }

  // -- Kademlia proximity ------------------------------------------------
  {
    TablePrinter table({"bucket policy", "intra_as_contacts", "lookup_msgs",
                        "mean_rpc_as_hops", "lookup_ms", "transit_bytes"});
    for (const auto policy : {overlay::kademlia::BucketPolicy::kVanilla,
                              overlay::kademlia::BucketPolicy::kProximity}) {
      sim::Engine dht_engine;
      underlay::AsTopology dht_topo =
          underlay::AsTopology::transit_stub(3, 5, 0.3);
      underlay::Network dht_net(dht_engine, dht_topo, 93);
      const auto dht_peers = dht_net.populate(100);
      netinfo::Oracle oracle(dht_net);
      overlay::kademlia::Config config;
      config.policy = policy;
      overlay::kademlia::KademliaSystem dht(dht_net, dht_peers, config,
                                            &oracle);
      dht.join_all();
      dht_net.traffic().reset();
      Rng rng(95);
      RunningStats messages, duration, rpc_hops;
      for (int i = 0; i < 40; ++i) {
        const auto result =
            dht.lookup(dht_peers[rng.uniform(dht_peers.size())], rng());
        messages.add(double(result.messages_sent));
        duration.add(result.duration_ms);
        rpc_hops.add(result.mean_rpc_as_hops);
      }
      auto row = table.row();
      row.cell(policy == overlay::kademlia::BucketPolicy::kVanilla
                   ? "vanilla"
                   : "proximity (Kaune [17])")
          .cell(dht.intra_as_contact_fraction(), 3)
          .cell(messages.mean(), 1)
          .cell(rpc_hops.mean(), 2)
          .cell(duration.mean(), 1)
          .cell(dht_net.traffic().transit_link_bytes());
    }
    table.print("Kademlia: proximity neighbor selection (§4, [17])");
  }

  // -- Churn sweep ---------------------------------------------------
  {
    TablePrinter table({"mean session", "search success_%", "online_%"});
    for (const double session_minutes : {120.0, 30.0, 10.0, 3.0}) {
      sim::Engine churn_engine;
      underlay::AsTopology churn_topo = underlay::AsTopology::ring(5);
      underlay::Network churn_net(churn_engine, churn_topo, 97);
      const auto churn_peers = churn_net.populate(60);
      overlay::gnutella::Config config;
      overlay::gnutella::GnutellaSystem system(
          churn_net, churn_peers,
          overlay::gnutella::testlab_roles(churn_peers.size()), config);
      system.bootstrap();
      // Scarce content: only 3 replicas, so churn genuinely threatens
      // search completeness.
      for (std::size_t i = 0; i < 3; ++i) {
        system.share(churn_peers[i * 7 + 2], ContentId(1));
      }
      sim::ChurnConfig churn_config;
      churn_config.model = sim::SessionModel::kExponential;
      churn_config.mean_session = sim::minutes(session_minutes);
      churn_config.mean_downtime = sim::minutes(session_minutes / 3.0);
      sim::ChurnProcess churn(churn_engine, Rng(99), churn_config);
      churn.on_leave([&](PeerId p) { churn_net.set_online(p, false); });
      churn.on_join([&](PeerId p) { churn_net.set_online(p, true); });
      for (const PeerId peer : churn_peers) churn.add_peer(peer, true);

      int success = 0, attempts = 0;
      for (int round = 0; round < 12; ++round) {
        churn_engine.run_until(churn_engine.now() + sim::minutes(4));
        const PeerId origin =
            churn_peers[(std::size_t(round) * 5 + 1) % churn_peers.size()];
        if (!churn_net.is_online(origin)) continue;
        ++attempts;
        success += system.search(origin, ContentId(1), false).found;
      }
      auto row = table.row();
      row.cell(TablePrinter::fmt(session_minutes, 0) + " min")
          .cell(attempts ? 100.0 * success / attempts : 0.0, 1)
          .cell(100.0 * churn.online_count() / churn_peers.size(), 1);
    }
    table.print("churn: search success vs session length (§5.4 open issue)");
  }
  return 0;
}
