// Ablation — the §6 "Open Issues and Challenges" made measurable:
//   * asymmetric node selection: how often is "closest" not mutual,
//   * the long-hop problem: hop-count ranking vs latency ranking mismatch,
//   * oracle candidate-list size sweep (100 / 1000 / full),
//   * Kademlia proximity policy: lookup traffic locality vs correctness,
//   * churn: search success as mean session length shrinks.
//
// Every section is a set of independent trials over bench::run_trials;
// sections that compare policies over "the same network" keep their
// historical fixed seeds inside the trial so the comparison is unchanged.
#include <algorithm>

#include "bench_common.hpp"
#include "overlay/kademlia.hpp"
#include "sim/churn.hpp"

using namespace uap2p;

namespace {

/// §6 asymmetry + long-hop sections share one 120-peer network (seed 91).
struct GeometryResult {
  std::size_t asymmetric = 0;
  std::size_t peer_count = 0;
  double hop_latency_disagreement = 0.0;
};

GeometryResult run_geometry() {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 91);
  const auto peers = net.populate(120);
  GeometryResult result;
  result.peer_count = peers.size();

  // Asymmetric node selection: for each peer, find its latency-closest
  // peer; count pairs where the relation is not mutual.
  std::vector<std::size_t> closest(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < peers.size(); ++j) {
      if (i == j) continue;
      const double rtt = net.rtt_ms(peers[i], peers[j]);
      if (rtt < best) {
        best = rtt;
        closest[i] = j;
      }
    }
  }
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (closest[closest[i]] != i) ++result.asymmetric;
  }

  // Long hop problem: rank all candidate peers for a querier by router-hop
  // count and by latency; report Kendall-style pair disagreement.
  RunningStats disagreement;
  for (std::size_t q = 0; q < 12; ++q) {
    std::size_t discordant = 0, pairs = 0;
    for (std::size_t a = 0; a < peers.size(); a += 4) {
      for (std::size_t b = a + 4; b < peers.size(); b += 4) {
        if (a == q || b == q) continue;
        const auto& path_a = net.path_between(peers[q], peers[a]);
        const auto& path_b = net.path_between(peers[q], peers[b]);
        const double lat_a = net.rtt_ms(peers[q], peers[a]);
        const double lat_b = net.rtt_ms(peers[q], peers[b]);
        if (path_a.router_hops == path_b.router_hops) continue;
        ++pairs;
        const bool hops_say_a = path_a.router_hops < path_b.router_hops;
        const bool latency_says_a = lat_a < lat_b;
        if (hops_say_a != latency_says_a) ++discordant;
      }
    }
    if (pairs > 0) disagreement.add(double(discordant) / double(pairs));
  }
  result.hop_latency_disagreement = disagreement.mean();
  return result;
}

struct OracleSweepRow {
  double intra_as_edge_frac = 0.0;
  std::uint64_t transit_bytes = 0;
  std::uint64_t msg_total = 0;
};

OracleSweepRow run_oracle_sweep(std::size_t cache) {
  overlay::gnutella::Config config;
  config.selection = overlay::gnutella::NeighborSelection::kOracleBiased;
  config.hostcache_size = cache;
  config.oracle_at_file_exchange = true;
  // All list sizes share one lab seed: the sweep varies only the knob.
  bench::GnutellaLab lab(underlay::AsTopology::transit_stub(3, 5, 0.3), 240,
                         config, /*seed=*/7);
  lab.run_locality_workload(4, 3, /*download=*/true);
  return {lab.system->intra_as_edge_fraction(),
          lab.net->traffic().transit_link_bytes(),
          lab.system->counts().total()};
}

struct KademliaRow {
  double intra_as_contacts = 0.0;
  double lookup_msgs = 0.0;
  double mean_rpc_as_hops = 0.0;
  double lookup_ms = 0.0;
  std::uint64_t transit_bytes = 0;
};

KademliaRow run_kademlia(overlay::kademlia::BucketPolicy policy) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 93);
  const auto peers = net.populate(100);
  netinfo::Oracle oracle(net);
  overlay::kademlia::Config config;
  config.policy = policy;
  overlay::kademlia::KademliaSystem dht(net, peers, config, &oracle);
  dht.join_all();
  net.traffic().reset();
  Rng rng(95);
  RunningStats messages, duration, rpc_hops;
  for (int i = 0; i < 40; ++i) {
    const auto result = dht.lookup(peers[rng.uniform(peers.size())], rng());
    messages.add(double(result.messages_sent));
    duration.add(result.duration_ms);
    rpc_hops.add(result.mean_rpc_as_hops);
  }
  return {dht.intra_as_contact_fraction(), messages.mean(), rpc_hops.mean(),
          duration.mean(), net.traffic().transit_link_bytes()};
}

struct ChurnRow {
  double success_pct = 0.0;
  double online_pct = 0.0;
};

ChurnRow run_churn(double session_minutes) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::ring(5);
  underlay::Network net(engine, topo, 97);
  const auto peers = net.populate(60);
  overlay::gnutella::Config config;
  overlay::gnutella::GnutellaSystem system(
      net, peers, overlay::gnutella::testlab_roles(peers.size()), config);
  system.bootstrap();
  // Scarce content: only 3 replicas, so churn genuinely threatens search
  // completeness.
  for (std::size_t i = 0; i < 3; ++i) {
    system.share(peers[i * 7 + 2], ContentId(1));
  }
  sim::ChurnConfig churn_config;
  churn_config.model = sim::SessionModel::kExponential;
  churn_config.mean_session = sim::minutes(session_minutes);
  churn_config.mean_downtime = sim::minutes(session_minutes / 3.0);
  sim::ChurnProcess churn(engine, Rng(99), churn_config);
  churn.on_leave([&](PeerId p) { net.set_online(p, false); });
  churn.on_join([&](PeerId p) { net.set_online(p, true); });
  for (const PeerId peer : peers) churn.add_peer(peer, true);

  int success = 0, attempts = 0;
  for (int round = 0; round < 12; ++round) {
    engine.run_until(engine.now() + sim::minutes(4));
    const PeerId origin = peers[(std::size_t(round) * 5 + 1) % peers.size()];
    if (!net.is_online(origin)) continue;
    ++attempts;
    success += system.search(origin, ContentId(1), false).found;
  }
  return {attempts ? 100.0 * success / attempts : 0.0,
          100.0 * churn.online_count() / peers.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header("bench_ablation_challenges",
                      "ablation: the paper's §6 challenges, quantified");

  // One flat trial list covering every section; indices partition it.
  constexpr std::size_t kCaches[] = {20, 100, 1000};
  constexpr overlay::kademlia::BucketPolicy kPolicies[] = {
      overlay::kademlia::BucketPolicy::kVanilla,
      overlay::kademlia::BucketPolicy::kProximity};
  constexpr double kSessions[] = {120.0, 30.0, 10.0, 3.0};

  struct TrialResult {
    GeometryResult geometry;
    OracleSweepRow oracle;
    KademliaRow kademlia;
    ChurnRow churn;
  };
  const std::size_t kGeometryAt = 0;
  const std::size_t kOracleAt = 1;
  const std::size_t kKademliaAt = kOracleAt + std::size(kCaches);
  const std::size_t kChurnAt = kKademliaAt + std::size(kPolicies);
  const std::size_t kTrials = kChurnAt + std::size(kSessions);

  const auto results = bench::run_trials(
      kTrials, /*base_seed=*/91, [&](std::size_t trial, std::uint64_t) {
        TrialResult result;
        if (trial == kGeometryAt) {
          result.geometry = run_geometry();
        } else if (trial < kKademliaAt) {
          result.oracle = run_oracle_sweep(kCaches[trial - kOracleAt]);
        } else if (trial < kChurnAt) {
          result.kademlia = run_kademlia(kPolicies[trial - kKademliaAt]);
        } else {
          result.churn = run_churn(kSessions[trial - kChurnAt]);
        }
        return result;
      });

  const GeometryResult& geometry = results[kGeometryAt].geometry;
  std::printf(
      "\nasymmetric node selection: %zu/%zu peers (%.0f%%) have a\n"
      "closest-peer relation that is not mutual — the §6 asymmetry\n"
      "problem exists even with symmetric link latencies.\n",
      geometry.asymmetric, geometry.peer_count,
      100.0 * geometry.asymmetric / geometry.peer_count);
  std::printf(
      "long hop problem: hop-count ranking disagrees with latency\n"
      "ranking on %.0f%% of comparable pairs (one hop can hide a long\n"
      "physical distance).\n",
      100.0 * geometry.hop_latency_disagreement);

  {
    TablePrinter table({"oracle list size", "intra_as_edge_frac",
                        "transit_bytes", "msg_total"});
    for (std::size_t i = 0; i < std::size(kCaches); ++i) {
      const OracleSweepRow& sweep = results[kOracleAt + i].oracle;
      auto row = table.row();
      row.cell(std::uint64_t(kCaches[i]))
          .cell(sweep.intra_as_edge_frac, 3)
          .cell(sweep.transit_bytes)
          .cell(sweep.msg_total);
    }
    table.print("oracle candidate-list size (the 100-vs-1000 knob of [1])");
  }

  {
    TablePrinter table({"bucket policy", "intra_as_contacts", "lookup_msgs",
                        "mean_rpc_as_hops", "lookup_ms", "transit_bytes"});
    for (std::size_t i = 0; i < std::size(kPolicies); ++i) {
      const KademliaRow& dht = results[kKademliaAt + i].kademlia;
      auto row = table.row();
      row.cell(kPolicies[i] == overlay::kademlia::BucketPolicy::kVanilla
                   ? "vanilla"
                   : "proximity (Kaune [17])")
          .cell(dht.intra_as_contacts, 3)
          .cell(dht.lookup_msgs, 1)
          .cell(dht.mean_rpc_as_hops, 2)
          .cell(dht.lookup_ms, 1)
          .cell(dht.transit_bytes);
    }
    table.print("Kademlia: proximity neighbor selection (§4, [17])");
  }

  {
    TablePrinter table({"mean session", "search success_%", "online_%"});
    for (std::size_t i = 0; i < std::size(kSessions); ++i) {
      const ChurnRow& churn = results[kChurnAt + i].churn;
      auto row = table.row();
      row.cell(TablePrinter::fmt(kSessions[i], 0) + " min")
          .cell(churn.success_pct, 1)
          .cell(churn.online_pct, 1);
    }
    table.print("churn: search success vs session length (§5.4 open issue)");
  }
  return 0;
}
