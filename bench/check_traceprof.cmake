# traceprof-smoke: folds the obs-trace-gen fixture's trace with
# uap2p_traceprof and checks the output contract end-to-end:
#  * folded stdout is non-empty and every line is flamegraph.pl's folded
#    format ("frame;frame... <integer weight>");
#  * at least one origin tag beyond the root frame is present;
#  * --self-check passes (positive weights, percentages sum to ~100).
#
# Usage: cmake -DTRACEPROF=<uap2p_traceprof> -DTRACE=<trace.jsonl>
#        -P check_traceprof.cmake
foreach(var TRACEPROF TRACE)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

execute_process(COMMAND "${TRACEPROF}" --self-check "${TRACE}"
  OUTPUT_VARIABLE folded ERROR_VARIABLE summary
  RESULT_VARIABLE prof_rc)
if(NOT prof_rc EQUAL 0)
  message(FATAL_ERROR
    "uap2p_traceprof --self-check exited with ${prof_rc}:\n${summary}")
endif()
if("${folded}" STREQUAL "")
  message(FATAL_ERROR "folded output is empty")
endif()

# Folded stacks contain literal semicolons, which CMake lists would eat —
# validate by deleting every well-formed line and requiring nothing left.
string(REGEX REPLACE "[a-z_]+(;[a-z_]+)* [0-9]+\n" "" leftover "${folded}")
if(NOT "${leftover}" STREQUAL "")
  message(FATAL_ERROR "non-folded-format output: '${leftover}'")
endif()
if(NOT "${folded}" MATCHES "sim;[a-z_]+ ")
  message(FATAL_ERROR
    "no origin-tagged stack (sim;<origin> ...) in folded output:\n${folded}")
endif()
if(NOT "${summary}" MATCHES "self-check ok")
  message(FATAL_ERROR "self-check did not report ok:\n${summary}")
endif()
message(STATUS "traceprof smoke ok:\n${summary}")
