// bench_oracled — load generator for the oracle query service
// (src/oracle/service.hpp; DESIGN.md "Oracle service").
//
// Drives an in-process OracleService with a configurable client fleet and
// reports sustained throughput plus p50/p99/p99.9 end-to-end latency from
// per-client obs::LatencyHistogram recorders (submit stamp to completion
// stamp, queueing included).
//
//   bench_oracled [--clients=N] [--workers=N] [--candidates=K]
//     [--requests=N per client] [--window=W] [--arrival=closed|poisson]
//     [--rate=R total req/s] [--deadline-us=D] [--ring=N] [--batch=N]
//     [--swap-every-ms=M] [--seed=S] [--metrics=FILE]
//
// Arrival processes:
//   closed  (default) — each client keeps --window requests in flight and
//           refills on completion: the service runs at its capacity and
//           the measured rate IS the capacity (acceptance: >= 1M
//           rank-requests/s single-node).
//   poisson — exponential inter-arrival open loop at --rate req/s split
//           across clients; overload sheds at admission/deadline instead
//           of queueing without bound, which is the contract this mode
//           exists to demonstrate (run with --rate above capacity and
//           watch shed counters, not latency, absorb the excess).
//
// --swap-every-ms republishes an identically-built snapshot from a side
// thread while load runs, so the swap path is exercised at full load.
// --metrics writes an obs::MetricsRegistry JSON snapshot (service
// counters + bench.oracled.* summary) for validate_bench_json --metrics.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "oracle/service.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

using namespace uap2p;
using namespace uap2p::oracled;

namespace {

struct Args {
  std::size_t clients = 2;
  std::size_t workers = 1;
  std::size_t candidates = 8;
  std::size_t requests = 200000;  ///< Completions per client before exit.
  std::size_t window = 256;       ///< In-flight per client (closed loop).
  std::string arrival = "closed";
  double rate = 1e6;              ///< Total offered req/s (poisson).
  std::uint64_t deadline_us = 0;
  std::size_t ring = 4096;
  std::size_t batch = 256;
  std::uint64_t swap_every_ms = 0;
  std::uint64_t seed = 42;
  std::string metrics;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto value = [&](std::string_view prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? argv[i] + prefix.size() : nullptr;
    };
    if (const char* v = value("--clients=")) args.clients = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--workers=")) args.workers = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--candidates=")) args.candidates = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--requests=")) args.requests = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--window=")) args.window = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--arrival=")) args.arrival = v;
    else if (const char* v = value("--rate=")) args.rate = std::strtod(v, nullptr);
    else if (const char* v = value("--deadline-us=")) args.deadline_us = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--ring=")) args.ring = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--batch=")) args.batch = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--swap-every-ms=")) args.swap_every_ms = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--seed=")) args.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--metrics=")) args.metrics = v;
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  if (args.arrival != "closed" && args.arrival != "poisson") {
    std::fprintf(stderr, "--arrival must be closed or poisson\n");
    return false;
  }
  if (args.window == 0) args.window = 1;
  if (args.candidates == 0) args.candidates = 1;
  if (args.candidates > kMaxCandidates) args.candidates = kMaxCandidates;
  return true;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One load-generating client: a window of request slots over a private
/// candidate arena, recycled as completions are observed.
struct Client {
  std::unique_ptr<RankRequest[]> slots;
  std::vector<Candidate> candidates;  ///< window * K, slot i at i*K.
  std::vector<std::uint32_t> ranked;
  obs::LatencyHistogram latency;
  std::uint64_t done = 0;
  std::uint64_t shed = 0;
  std::uint64_t submit_fail = 0;  ///< Admission sheds seen by this client.
  std::thread thread;
};

void fill_slot(Client& client, std::size_t slot, std::size_t k,
               std::uint32_t routers, std::uint64_t& rng) {
  RankRequest& req = client.slots[slot];
  req.client_router = std::uint32_t(splitmix64(rng) % routers);
  req.candidate_count = std::uint32_t(k);
  Candidate* cands = client.candidates.data() + slot * k;
  for (std::size_t c = 0; c < k; ++c) {
    cands[c].peer = std::uint32_t(splitmix64(rng) % 65536);
    cands[c].router = std::uint32_t(splitmix64(rng) % routers);
  }
}

/// Observes a terminal slot: records latency, recycles it to kFree.
/// Returns false if the slot is still in flight.
bool harvest(Client& client, std::size_t slot) {
  RankRequest& req = client.slots[slot];
  const RequestState state = req.state.load(std::memory_order_acquire);
  if (state == RequestState::kQueued) return false;
  if (state == RequestState::kDone) {
    client.latency.record(req.done_ns - req.enqueue_ns);
    ++client.done;
  } else if (state == RequestState::kShed) {
    ++client.shed;
  } else {
    return true;  // kFree: nothing in flight here yet
  }
  req.state.store(RequestState::kFree, std::memory_order_relaxed);
  return true;
}

void run_closed_loop(OracleService& service, Client& client, const Args& args,
                     std::uint32_t routers, std::uint64_t rng) {
  const std::size_t window = args.window;
  std::size_t cursor = 0;
  // Total terminal observations this client must make before exiting.
  while (client.done + client.shed < args.requests) {
    RankRequest& req = client.slots[cursor];
    if (req.state.load(std::memory_order_acquire) == RequestState::kFree) {
      fill_slot(client, cursor, args.candidates, routers, rng);
      if (!service.submit(&req)) {
        ++client.submit_fail;
        std::this_thread::yield();
      }
    } else {
      if (!harvest(client, cursor) && cursor == 0) {
        // A full sweep found nothing terminal; let the workers run.
        std::this_thread::yield();
      }
    }
    cursor = (cursor + 1) % window;
  }
}

void run_poisson(OracleService& service, Client& client, const Args& args,
                 std::uint32_t routers, std::uint64_t rng) {
  const std::size_t window = args.window;
  const double rate_per_client = args.rate / double(args.clients);
  const double ns_per_req = 1e9 / rate_per_client;
  std::uint64_t next_arrival = now_ns();
  std::size_t submitted = 0;
  std::size_t cursor = 0;
  while (submitted < args.requests) {
    // Drain completions opportunistically.
    for (std::size_t i = 0; i < window; ++i) harvest(client, i);
    if (now_ns() < next_arrival) {
      // Donate the timeslice while waiting: on a single-core host a pure
      // busy-wait would starve the very workers being measured.
      std::this_thread::yield();
      continue;
    }
    // Find a free slot; if the whole window is in flight the *client* is
    // saturated and the arrival is dropped on the floor (counted like an
    // admission shed: the open loop must not turn into a closed one).
    std::size_t free_slot = window;
    for (std::size_t i = 0; i < window; ++i) {
      const std::size_t idx = (cursor + i) % window;
      if (client.slots[idx].state.load(std::memory_order_acquire) ==
          RequestState::kFree) {
        free_slot = idx;
        break;
      }
    }
    // Exponential inter-arrival: u in (0,1], -ln(u)/rate.
    const double u =
        (double(splitmix64(rng) >> 11) + 1.0) / 9007199254740993.0;
    next_arrival += std::uint64_t(-std::log(u) * ns_per_req);
    ++submitted;
    if (free_slot == window) {
      ++client.submit_fail;
      continue;
    }
    cursor = free_slot;
    fill_slot(client, free_slot, args.candidates, routers, rng);
    if (!service.submit(&client.slots[free_slot])) ++client.submit_fail;
  }
  // Drain the tail.
  for (std::size_t i = 0; i < window; ++i) {
    while (client.slots[i].state.load(std::memory_order_acquire) ==
           RequestState::kQueued) {
      std::this_thread::yield();
    }
    harvest(client, i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;

  // The 204-router transit-stub underlay of the snapshot-roundtrip gate:
  // big enough that DestEntry rows (204 * 32 B) dwarf the request, small
  // enough to warm in moments.
  underlay::TopologyConfig topo_config;
  topo_config.seed = 7;
  auto snapshot = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(4, 16, 0.3, topo_config), 0);
  std::shared_ptr<const underlay::SharedRouting> alternate;
  if (args.swap_every_ms != 0) {
    alternate = underlay::SharedRouting::build(
        underlay::AsTopology::transit_stub(4, 16, 0.3, topo_config), 0);
  }
  const auto routers =
      std::uint32_t(snapshot->topology().router_count());

  ServiceConfig config;
  config.workers = args.workers;
  config.ring_capacity = args.ring;
  config.max_batch = args.batch;
  config.deadline_ns = args.deadline_us * 1000;
  OracleService service(snapshot, config);

  std::vector<Client> clients(args.clients);
  for (std::size_t i = 0; i < args.clients; ++i) {
    Client& client = clients[i];
    client.slots = std::make_unique<RankRequest[]>(args.window);
    client.candidates.resize(args.window * args.candidates);
    client.ranked.resize(args.window * args.candidates);
    for (std::size_t s = 0; s < args.window; ++s) {
      client.slots[s].candidates =
          client.candidates.data() + s * args.candidates;
      client.slots[s].ranked = client.ranked.data() + s * args.candidates;
    }
  }

  std::atomic<bool> swapper_stop{false};
  std::thread swapper;
  std::uint64_t swaps_published = 0;
  if (args.swap_every_ms != 0) {
    swapper = std::thread([&] {
      std::uint64_t ticks = 0;
      while (!swapper_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(args.swap_every_ms));
        service.publish((++ticks % 2 != 0) ? alternate : snapshot);
        ++swaps_published;
      }
    });
  }

  const std::uint64_t start_ns = now_ns();
  for (std::size_t i = 0; i < args.clients; ++i) {
    Client& client = clients[i];
    std::uint64_t rng = args.seed * 0x9e3779b97f4a7c15ull + i;
    client.thread = std::thread([&, rng] {
      if (args.arrival == "closed") {
        run_closed_loop(service, client, args, routers, rng);
      } else {
        run_poisson(service, client, args, routers, rng);
      }
    });
  }
  for (Client& client : clients) client.thread.join();
  const std::uint64_t elapsed_ns = now_ns() - start_ns;
  if (swapper.joinable()) {
    swapper_stop.store(true, std::memory_order_release);
    swapper.join();
  }
  service.stop();

  obs::LatencyHistogram merged;
  std::uint64_t done = 0, shed = 0, submit_fail = 0;
  for (Client& client : clients) {
    merged.merge(client.latency);
    done += client.done;
    shed += client.shed;
    submit_fail += client.submit_fail;
  }
  const double seconds = double(elapsed_ns) / 1e9;
  const double rate = seconds > 0.0 ? double(done) / seconds : 0.0;

  std::printf("arrival=%s clients=%zu workers=%zu candidates=%zu\n",
              args.arrival.c_str(), args.clients, args.workers,
              args.candidates);
  std::printf(
      "completed %llu requests in %.3f s -> %.0f rank-requests/s\n",
      (unsigned long long)done, seconds, rate);
  std::printf("shed: deadline=%llu admission(client)=%llu service=%llu\n",
              (unsigned long long)shed, (unsigned long long)submit_fail,
              (unsigned long long)service.shed_admission());
  std::printf(
      "latency p50=%llu ns  p99=%llu ns  p99.9=%llu ns  max=%llu ns\n",
      (unsigned long long)merged.p50_ns(), (unsigned long long)merged.p99_ns(),
      (unsigned long long)merged.p999_ns(), (unsigned long long)merged.max_ns());
  if (swaps_published != 0) {
    std::printf("snapshot swaps published=%llu observed=%llu\n",
                (unsigned long long)swaps_published,
                (unsigned long long)service.swaps_observed());
  }

  if (!args.metrics.empty()) {
    obs::MetricsRegistry registry;
    service.export_metrics(registry);
    registry.counter("bench.oracled.completed").set(done);
    registry.counter("bench.oracled.shed_observed").set(shed);
    registry.counter("bench.oracled.client_admission_fail").set(submit_fail);
    registry.gauge("bench.oracled.rank_requests_per_sec").set(rate);
    registry.gauge("bench.oracled.p50_ns").set(double(merged.p50_ns()));
    registry.gauge("bench.oracled.p99_ns").set(double(merged.p99_ns()));
    registry.gauge("bench.oracled.p999_ns").set(double(merged.p999_ns()));
    registry.gauge("bench.oracled.elapsed_sec").set(seconds);
    if (!registry.write_json_file(args.metrics)) {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   args.metrics.c_str());
      return 1;
    }
  }
  return done != 0 ? 0 : 1;
}
