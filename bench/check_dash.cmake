# dash-smoke: the cost-observatory pipeline end to end, in two halves.
#
# 1. Renderer determinism: uap2p_dash over the committed fixture snapshot
#    must byte-reproduce the pinned golden dash.html/dash.json. The goldens
#    depend only on renderer code, so this diff catches any nondeterminism
#    (or unreviewed output change) in the dashboard itself.
# 2. Live pipeline: run the Figure-2 bench with --metrics-every into a
#    scratch --dash dir, validate every periodic snapshot's time-series
#    schema with validate_bench_json --metrics, render the dashboard over
#    the sequence, and check dash.json carries the expected sections.
#
# Expects: DASH_TOOL, BENCH, VALIDATOR, FIXTURE, GOLDEN_DIR, WORKDIR.

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    string(JOIN " " cmdline ${ARGV})
    message(FATAL_ERROR "command failed (${rc}): ${cmdline}")
  endif()
endfunction()

# --- 1. golden byte-diff --------------------------------------------------
set(golden_out "${WORKDIR}/dash_golden_out")
file(REMOVE_RECURSE "${golden_out}")
file(MAKE_DIRECTORY "${golden_out}")
run_checked("${DASH_TOOL}" "--out=${golden_out}"
            "--title=uap2p cost observatory (pinned fixture)" "${FIXTURE}")
foreach(artifact dash.html dash.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${golden_out}/${artifact}" "${GOLDEN_DIR}/${artifact}"
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
      "${artifact} differs from the pinned golden. If the renderer change "
      "is intentional, regenerate bench/golden/ with uap2p_dash over "
      "bench/fixtures/dash_fixture_metrics.json and commit the new bytes.")
  endif()
endforeach()
message(STATUS "dash-smoke: golden render byte-identical")

# --- 2. live --metrics-every pipeline -------------------------------------
set(live_dir "${WORKDIR}/dash_live")
file(REMOVE_RECURSE "${live_dir}")
run_checked("${BENCH}" "--metrics-every=300000" "--dash=${live_dir}")

file(GLOB snapshots "${live_dir}/metrics_*.json")
list(LENGTH snapshots snapshot_count)
if(snapshot_count LESS 2)
  message(FATAL_ERROR
    "expected >= 2 periodic snapshots in ${live_dir}, got ${snapshot_count}")
endif()
list(SORT snapshots)
foreach(snapshot ${snapshots})
  run_checked("${VALIDATOR}" --metrics "${snapshot}")
endforeach()

run_checked("${DASH_TOOL}" "--out=${live_dir}" ${snapshots})
file(READ "${live_dir}/dash.json" dash_json)
foreach(key schema_version pricing summary as_bills pairs series
        billed_transit_mbps closed_form_crossover_mbps)
  string(FIND "${dash_json}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "live dash.json is missing \"${key}\"")
  endif()
endforeach()
message(STATUS
  "dash-smoke: live pipeline ok (${snapshot_count} snapshots rendered)")
