// Schema validator for BENCH_micro.json, run by the bench-smoke CTest
// check so the machine-readable perf baseline can't silently rot.
//
// Validates, with a small self-contained JSON parser (no dependencies):
//   - the document parses as a JSON object,
//   - schema_version == 1 and suite == "bench_micro",
//   - benchmarks is a non-empty array of objects, each carrying a
//     non-empty unique name, iterations > 0, real_time_ns_per_iter >= 0
//     and items_per_second > 0,
//   - the hot-path benchmarks guarded by this PR's perf targets are
//     present.
//
// Usage: validate_bench_json <path-to-BENCH_micro.json>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal JSON value + recursive-descent parser -----------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_whitespace();
    if (!parse_value(out)) return false;
    skip_whitespace();
    return position_ == text_.size();  // no trailing garbage
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const std::string& message) {
    if (error_.empty()) {
      std::ostringstream out;
      out << message << " at offset " << position_;
      error_ = out.str();
    }
    return false;
  }

  void skip_whitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  bool consume(char expected) {
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool parse_value(JsonValue& out) {
    skip_whitespace();
    if (position_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[position_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') return parse_literal(out);
    if (c == 'n') return parse_literal(out);
    return parse_number(out);
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == '}') {
      ++position_;
      return true;
    }
    for (;;) {
      skip_whitespace();
      std::string key;
      if (!parse_string(key)) return false;
      skip_whitespace();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      skip_whitespace();
      if (position_ < text_.size() && text_[position_] == ',') {
        ++position_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skip_whitespace();
    if (position_ < text_.size() && text_[position_] == ']') {
      ++position_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_whitespace();
      if (position_ < text_.size() && text_[position_] == ',') {
        ++position_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (position_ < text_.size()) {
      const char c = text_[position_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (position_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[position_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u':
            // Benchmark names are ASCII; accept and skip the 4 hex digits.
            if (position_ + 4 > text_.size()) return fail("bad \\u escape");
            position_ += 4;
            out.push_back('?');
            break;
          default: return fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_literal(JsonValue& out) {
    auto match = [&](const char* literal) {
      const std::size_t len = std::string(literal).size();
      if (text_.compare(position_, len, literal) == 0) {
        position_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return true;
    }
    return fail("unknown literal");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            std::strchr("+-.eE", text_[position_]) != nullptr)) {
      ++position_;
    }
    if (position_ == start) return fail("expected a number");
    try {
      out.number = std::stod(text_.substr(start, position_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  const std::string& text_;
  std::size_t position_ = 0;
  std::string error_;
};

// --- Schema checks -------------------------------------------------------

int complain(const std::string& message) {
  std::fprintf(stderr, "validate_bench_json: %s\n", message.c_str());
  return 1;
}

const JsonValue* field(const JsonValue& object, const std::string& key,
                       JsonValue::Type type) {
  const auto it = object.object.find(key);
  if (it == object.object.end() || it->second.type != type) return nullptr;
  return &it->second;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) return complain("usage: validate_bench_json <file.json>");
  std::ifstream input(argv[1]);
  if (!input) return complain(std::string("cannot read ") + argv[1]);
  std::ostringstream buffer;
  buffer << input.rdbuf();
  const std::string text = buffer.str();

  JsonValue root;
  Parser parser(text);
  if (!parser.parse(root)) {
    return complain("JSON parse error: " + parser.error());
  }
  if (root.type != JsonValue::Type::kObject) {
    return complain("top level is not an object");
  }

  const JsonValue* version =
      field(root, "schema_version", JsonValue::Type::kNumber);
  if (version == nullptr || version->number != 1.0) {
    return complain("schema_version missing or != 1");
  }
  const JsonValue* suite = field(root, "suite", JsonValue::Type::kString);
  if (suite == nullptr || suite->string != "bench_micro") {
    return complain("suite missing or != \"bench_micro\"");
  }
  const JsonValue* benchmarks =
      field(root, "benchmarks", JsonValue::Type::kArray);
  if (benchmarks == nullptr || benchmarks->array.empty()) {
    return complain("benchmarks missing or empty");
  }

  std::set<std::string> seen;
  for (const JsonValue& entry : benchmarks->array) {
    if (entry.type != JsonValue::Type::kObject) {
      return complain("benchmark entry is not an object");
    }
    const JsonValue* name = field(entry, "name", JsonValue::Type::kString);
    if (name == nullptr || name->string.empty()) {
      return complain("benchmark entry without a name");
    }
    if (!seen.insert(name->string).second) {
      return complain("duplicate benchmark name: " + name->string);
    }
    const JsonValue* iterations =
        field(entry, "iterations", JsonValue::Type::kNumber);
    if (iterations == nullptr || iterations->number <= 0) {
      return complain(name->string + ": iterations missing or <= 0");
    }
    const JsonValue* time =
        field(entry, "real_time_ns_per_iter", JsonValue::Type::kNumber);
    if (time == nullptr || time->number < 0) {
      return complain(name->string + ": real_time_ns_per_iter missing or < 0");
    }
    const JsonValue* items =
        field(entry, "items_per_second", JsonValue::Type::kNumber);
    if (items == nullptr || items->number <= 0) {
      return complain(name->string + ": items_per_second missing or <= 0");
    }
  }

  // The hot paths this baseline tracks across PRs must be present.
  for (const char* required :
       {"BM_EngineScheduleRun", "BM_EngineSteadyStateChurn",
        "BM_EngineCancelHeavy", "BM_RoutingCachedPath",
        "BM_RoutingMixedCachedPaths", "BM_ParallelForDispatch"}) {
    if (seen.count(required) == 0) {
      return complain(std::string("required benchmark missing: ") + required);
    }
  }

  std::printf("validate_bench_json: %s ok (%zu benchmarks)\n", argv[1],
              seen.size());
  return 0;
}
