// Schema validator for the machine-readable bench artifacts, run by the
// bench-smoke and dash-smoke CTest checks so the JSON baselines can't
// silently rot. Two modes over the shared obs::json parser:
//
//   validate_bench_json <BENCH_micro.json>
//     - the document parses as a JSON object,
//     - schema_version == 1 and suite == "bench_micro",
//     - benchmarks is a non-empty array of objects, each carrying a
//       non-empty unique name, iterations > 0, real_time_ns_per_iter >= 0
//       and items_per_second > 0,
//     - the hot-path benchmarks guarded by the perf targets are present.
//
//   validate_bench_json --metrics <metrics.json>
//     - a MetricsRegistry snapshot (--metrics / --metrics-every output):
//       schema_version == 2, all five sections present as arrays,
//     - every entry carries a non-empty name, unique within its section,
//     - histograms: lo < hi, bucket_width > 0, per-bucket bounds chain
//       (bucket[i].hi == bucket[i+1].lo) and counts are >= 0,
//     - time_series: window_ms > 0, window starts monotone from 0 with
//       start[i+1] == start[i] + window_ms, end == start + window_ms,
//       values >= 0 (they are byte/message totals, never negative).
//
//   validate_bench_json --compare=<baseline.json> --tolerance=<pct> <fresh.json>
//     - the CI perf-regression gate: both files must pass the bench
//       schema, every baseline benchmark must still exist in the fresh
//       run, and neither items/s (lower = worse) nor ns/op (higher =
//       worse) are tabulated, and items/s may not drop by more than <pct>
//       percent (the gate metric — bounded, so <pct> reads as "fell below
//       (100-pct)% of baseline"; ns/op is context only). Benchmarks new
//       in the fresh run are listed and ignored, as are rows measured
//       with < 3 iterations on either side (one-shot samples of multi-ms
//       benchmarks under the smoke run's tiny min_time are noise). A
//       markdown delta table goes to stdout (CI tees it into
//       $GITHUB_STEP_SUMMARY); on failure the worst offender is named on
//       stderr.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "obs/json.hpp"

namespace {

using uap2p::obs::json::Value;
using uap2p::obs::json::field;

int complain(const std::string& message) {
  std::fprintf(stderr, "validate_bench_json: %s\n", message.c_str());
  return 1;
}

// --- BENCH_micro.json ----------------------------------------------------

int validate_bench(const char* path, const Value& root) {
  const Value* version = field(root, "schema_version", Value::Type::kNumber);
  if (version == nullptr || version->number != 1.0) {
    return complain("schema_version missing or != 1");
  }
  const Value* suite = field(root, "suite", Value::Type::kString);
  if (suite == nullptr || suite->string != "bench_micro") {
    return complain("suite missing or != \"bench_micro\"");
  }
  const Value* benchmarks = field(root, "benchmarks", Value::Type::kArray);
  if (benchmarks == nullptr || benchmarks->array.empty()) {
    return complain("benchmarks missing or empty");
  }

  std::set<std::string> seen;
  for (const Value& entry : benchmarks->array) {
    if (entry.type != Value::Type::kObject) {
      return complain("benchmark entry is not an object");
    }
    const Value* name = field(entry, "name", Value::Type::kString);
    if (name == nullptr || name->string.empty()) {
      return complain("benchmark entry without a name");
    }
    if (!seen.insert(name->string).second) {
      return complain("duplicate benchmark name: " + name->string);
    }
    const Value* iterations = field(entry, "iterations", Value::Type::kNumber);
    if (iterations == nullptr || iterations->number <= 0) {
      return complain(name->string + ": iterations missing or <= 0");
    }
    const Value* time =
        field(entry, "real_time_ns_per_iter", Value::Type::kNumber);
    if (time == nullptr || time->number < 0) {
      return complain(name->string + ": real_time_ns_per_iter missing or < 0");
    }
    const Value* items =
        field(entry, "items_per_second", Value::Type::kNumber);
    if (items == nullptr || items->number <= 0) {
      return complain(name->string + ": items_per_second missing or <= 0");
    }
    // Latency tails are optional (service-tier rows), but when present
    // they must come as a complete, ordered triple.
    const Value* p50 = field(entry, "p50_ns", Value::Type::kNumber);
    const Value* p99 = field(entry, "p99_ns", Value::Type::kNumber);
    const Value* p999 = field(entry, "p999_ns", Value::Type::kNumber);
    if (p50 != nullptr || p99 != nullptr || p999 != nullptr) {
      if (p50 == nullptr || p99 == nullptr || p999 == nullptr) {
        return complain(name->string + ": partial latency triple");
      }
      if (!(p50->number > 0 && p50->number <= p99->number &&
            p99->number <= p999->number)) {
        return complain(name->string + ": latency percentiles not ordered");
      }
    }
  }

  // The hot paths this baseline tracks across PRs must be present.
  for (const char* required :
       {"BM_EngineScheduleRun", "BM_EngineSteadyStateChurn",
        "BM_EngineCancelHeavy", "BM_RoutingCachedPath",
        "BM_RoutingMixedCachedPaths", "BM_ParallelForDispatch",
        "BM_OracledRankBatch/8", "BM_OracledClosedLoop/1/real_time"}) {
    if (seen.count(required) == 0) {
      return complain(std::string("required benchmark missing: ") + required);
    }
  }

  std::printf("validate_bench_json: %s ok (%zu benchmarks)\n", path,
              seen.size());
  return 0;
}

// --- baseline comparison (CI perf-regression gate) -----------------------

struct BenchRow {
  double items_per_second = 0.0;
  double ns_per_iter = 0.0;
  double iterations = 0.0;
};

/// A row measured with fewer iterations than this on either side is
/// excluded from the gate: a 1-iteration sample of a multi-ms benchmark
/// under the smoke run's tiny --benchmark_min_time is first-touch noise
/// (page faults, cold caches), not a signal.
constexpr double kMinIterationsToGate = 3.0;

/// Extracts name -> row after the file passed validate_bench.
std::map<std::string, BenchRow> extract_rows(const Value& root) {
  std::map<std::string, BenchRow> rows;
  const Value* benchmarks = field(root, "benchmarks", Value::Type::kArray);
  for (const Value& entry : benchmarks->array) {
    const Value* name = field(entry, "name", Value::Type::kString);
    BenchRow row;
    row.items_per_second =
        field(entry, "items_per_second", Value::Type::kNumber)->number;
    row.ns_per_iter =
        field(entry, "real_time_ns_per_iter", Value::Type::kNumber)->number;
    row.iterations = field(entry, "iterations", Value::Type::kNumber)->number;
    rows[name->string] = row;
  }
  return rows;
}

/// Regression in percent: positive when `fresh` is worse than `base`.
/// `higher_is_better` picks the direction (items/s vs ns/op).
double regression_pct(double base, double fresh, bool higher_is_better) {
  if (base <= 0.0) return 0.0;
  const double delta = higher_is_better ? (base - fresh) : (fresh - base);
  return delta / base * 100.0;
}

int compare_bench(const char* fresh_path, const Value& fresh_root,
                  const char* baseline_path, const Value& baseline_root,
                  double tolerance_pct) {
  // Both sides must be schema-clean before numbers are trusted.
  if (validate_bench(baseline_path, baseline_root) != 0) return 1;
  if (validate_bench(fresh_path, fresh_root) != 0) return 1;

  const auto baseline = extract_rows(baseline_root);
  const auto fresh = extract_rows(fresh_root);

  std::string worst_name;
  double worst_pct = 0.0;
  std::size_t failures = 0;

  std::printf("## bench-compare: %s vs baseline %s (tolerance %.0f%%)\n\n",
              fresh_path, baseline_path, tolerance_pct);
  std::printf(
      "| benchmark | base items/s | new items/s | Δ%% | base ns/op | "
      "new ns/op | Δ%% | status |\n");
  std::printf("|---|---:|---:|---:|---:|---:|---:|---|\n");
  for (const auto& [name, base] : baseline) {
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      std::printf("| %s | %.3g | — | — | %.3g | — | — | MISSING |\n",
                  name.c_str(), base.items_per_second, base.ns_per_iter);
      ++failures;
      if (worst_name.empty()) worst_name = name + " (missing)";
      continue;
    }
    const BenchRow& now = it->second;
    const double items_reg =
        regression_pct(base.items_per_second, now.items_per_second,
                       /*higher_is_better=*/true);
    const double ns_reg = regression_pct(base.ns_per_iter, now.ns_per_iter,
                                         /*higher_is_better=*/false);
    // Gate on items/s only: it is bounded (a collapse tops out at -100%),
    // so <pct> reads directly as "dropped to less than (100-pct)% of
    // baseline". ns/op is the same slowdown on an unbounded scale (2.5x
    // slower = +150%), which makes thresholds twitchy; it stays in the
    // table as context.
    const double reg = items_reg;
    const bool gated = base.iterations >= kMinIterationsToGate &&
                       now.iterations >= kMinIterationsToGate;
    const bool ok = !gated || reg <= tolerance_pct;
    std::printf("| %s | %.4g | %.4g | %+.1f%% | %.4g | %.4g | %+.1f%% | %s |\n",
                name.c_str(), base.items_per_second, now.items_per_second,
                -items_reg, base.ns_per_iter, now.ns_per_iter, ns_reg,
                !gated ? "skipped (<3 iters)"
                       : (ok ? "ok" : "**REGRESSED**"));
    if (!ok) {
      ++failures;
      if (reg > worst_pct) {
        worst_pct = reg;
        worst_name = name;
      }
    }
  }
  std::size_t fresh_only = 0;
  for (const auto& [name, row] : fresh) {
    if (baseline.count(name) != 0) continue;
    std::printf("| %s | — | %.4g | new | — | %.4g | new | ignored |\n",
                name.c_str(), row.items_per_second, row.ns_per_iter);
    ++fresh_only;
  }
  std::printf("\n%zu compared, %zu new (ignored), %zu over tolerance\n",
              baseline.size(), fresh_only, failures);

  if (failures != 0) {
    std::fprintf(stderr,
                 "validate_bench_json: %zu benchmark(s) regressed beyond "
                 "%.0f%%; worst offender: %s (%.1f%% worse)\n",
                 failures, tolerance_pct, worst_name.c_str(), worst_pct);
    return 1;
  }
  std::printf("bench-compare ok: no regression beyond %.0f%%\n",
              tolerance_pct);
  return 0;
}

// --- metrics snapshots ---------------------------------------------------

/// Section entries must be objects with a non-empty, section-unique name.
int check_names(const Value& section, const std::string& label) {
  std::set<std::string> seen;
  for (const Value& entry : section.array) {
    if (entry.type != Value::Type::kObject) {
      return complain(label + " entry is not an object");
    }
    const Value* name = field(entry, "name", Value::Type::kString);
    if (name == nullptr || name->string.empty()) {
      return complain(label + " entry without a name");
    }
    if (!seen.insert(name->string).second) {
      return complain("duplicate " + label + " name: " + name->string);
    }
  }
  return 0;
}

int validate_metrics(const char* path, const Value& root) {
  const Value* version = field(root, "schema_version", Value::Type::kNumber);
  if (version == nullptr || version->number != 2.0) {
    return complain("schema_version missing or != 2");
  }
  const Value* sections[5] = {};
  const char* names[5] = {"counters", "gauges", "stats", "histograms",
                          "time_series"};
  for (int i = 0; i < 5; ++i) {
    sections[i] = field(root, names[i], Value::Type::kArray);
    if (sections[i] == nullptr) {
      return complain(std::string("section missing or not an array: ") +
                      names[i]);
    }
    if (const int rc = check_names(*sections[i], names[i]); rc != 0) return rc;
  }

  for (const Value& histo : sections[3]->array) {
    const std::string& name =
        field(histo, "name", Value::Type::kString)->string;
    const Value* lo = field(histo, "lo", Value::Type::kNumber);
    const Value* hi = field(histo, "hi", Value::Type::kNumber);
    const Value* width = field(histo, "bucket_width", Value::Type::kNumber);
    const Value* buckets = field(histo, "buckets", Value::Type::kArray);
    if (lo == nullptr || hi == nullptr || width == nullptr ||
        buckets == nullptr) {
      return complain(name + ": lo/hi/bucket_width/buckets missing");
    }
    if (!(lo->number < hi->number) || width->number <= 0) {
      return complain(name + ": degenerate bucket geometry");
    }
    double prev_hi = lo->number;
    for (const Value& bucket : buckets->array) {
      const Value* b_lo = field(bucket, "lo", Value::Type::kNumber);
      const Value* b_hi = field(bucket, "hi", Value::Type::kNumber);
      const Value* count = field(bucket, "count", Value::Type::kNumber);
      if (b_lo == nullptr || b_hi == nullptr || count == nullptr) {
        return complain(name + ": bucket without lo/hi/count");
      }
      if (b_lo->number != prev_hi) {
        return complain(name + ": bucket bounds do not chain");
      }
      if (!(b_lo->number < b_hi->number) || count->number < 0) {
        return complain(name + ": bad bucket bounds or negative count");
      }
      prev_hi = b_hi->number;
    }
  }

  std::size_t windows_total = 0;
  for (const Value& series : sections[4]->array) {
    const std::string& name =
        field(series, "name", Value::Type::kString)->string;
    const Value* window_ms = field(series, "window_ms", Value::Type::kNumber);
    const Value* windows = field(series, "windows", Value::Type::kArray);
    if (window_ms == nullptr || window_ms->number <= 0 || windows == nullptr) {
      return complain(name + ": window_ms missing/non-positive or no windows");
    }
    double expected_start = 0.0;
    for (const Value& window : windows->array) {
      const Value* start = field(window, "start", Value::Type::kNumber);
      const Value* end = field(window, "end", Value::Type::kNumber);
      const Value* value = field(window, "value", Value::Type::kNumber);
      if (start == nullptr || end == nullptr || value == nullptr) {
        return complain(name + ": window without start/end/value");
      }
      if (start->number != expected_start) {
        return complain(name + ": window starts not monotone from 0");
      }
      if (end->number != start->number + window_ms->number) {
        return complain(name + ": window end != start + window_ms");
      }
      if (value->number < 0) {
        return complain(name + ": negative window value");
      }
      expected_start += window_ms->number;
      ++windows_total;
    }
  }

  std::printf(
      "validate_bench_json: %s ok (metrics: %zu counters, %zu gauges, "
      "%zu series, %zu windows)\n",
      path, sections[0]->array.size(), sections[1]->array.size(),
      sections[4]->array.size(), windows_total);
  return 0;
}

}  // namespace

namespace {

bool load_json(const char* path, Value& root) {
  std::string text;
  std::string error;
  if (!uap2p::obs::json::read_file(path, text, &error)) {
    complain(error);
    return false;
  }
  if (!uap2p::obs::json::parse(text, root, &error)) {
    complain(std::string(path) + ": JSON parse error: " + error);
    return false;
  }
  if (root.type != Value::Type::kObject) {
    complain(std::string(path) + ": top level is not an object");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_mode = false;
  const char* baseline_path = nullptr;
  double tolerance_pct = 25.0;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_mode = true;
    } else if (std::strncmp(argv[i], "--compare=", 10) == 0) {
      baseline_path = argv[i] + 10;
    } else if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance_pct = std::strtod(argv[i] + 12, nullptr);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr || (metrics_mode && baseline_path != nullptr)) {
    return complain(
        "usage: validate_bench_json [--metrics] "
        "[--compare=<baseline.json> [--tolerance=<pct>]] <file.json>");
  }

  Value root;
  if (!load_json(path, root)) return 1;
  if (metrics_mode) return validate_metrics(path, root);
  if (baseline_path != nullptr) {
    Value baseline_root;
    if (!load_json(baseline_path, baseline_root)) return 1;
    return compare_bench(path, root, baseline_path, baseline_root,
                         tolerance_pct);
  }
  return validate_bench(path, root);
}
