// Schema validator for the machine-readable bench artifacts, run by the
// bench-smoke and dash-smoke CTest checks so the JSON baselines can't
// silently rot. Two modes over the shared obs::json parser:
//
//   validate_bench_json <BENCH_micro.json>
//     - the document parses as a JSON object,
//     - schema_version == 1 and suite == "bench_micro",
//     - benchmarks is a non-empty array of objects, each carrying a
//       non-empty unique name, iterations > 0, real_time_ns_per_iter >= 0
//       and items_per_second > 0,
//     - the hot-path benchmarks guarded by the perf targets are present.
//
//   validate_bench_json --metrics <metrics.json>
//     - a MetricsRegistry snapshot (--metrics / --metrics-every output):
//       schema_version == 2, all five sections present as arrays,
//     - every entry carries a non-empty name, unique within its section,
//     - histograms: lo < hi, bucket_width > 0, per-bucket bounds chain
//       (bucket[i].hi == bucket[i+1].lo) and counts are >= 0,
//     - time_series: window_ms > 0, window starts monotone from 0 with
//       start[i+1] == start[i] + window_ms, end == start + window_ms,
//       values >= 0 (they are byte/message totals, never negative).
#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "obs/json.hpp"

namespace {

using uap2p::obs::json::Value;
using uap2p::obs::json::field;

int complain(const std::string& message) {
  std::fprintf(stderr, "validate_bench_json: %s\n", message.c_str());
  return 1;
}

// --- BENCH_micro.json ----------------------------------------------------

int validate_bench(const char* path, const Value& root) {
  const Value* version = field(root, "schema_version", Value::Type::kNumber);
  if (version == nullptr || version->number != 1.0) {
    return complain("schema_version missing or != 1");
  }
  const Value* suite = field(root, "suite", Value::Type::kString);
  if (suite == nullptr || suite->string != "bench_micro") {
    return complain("suite missing or != \"bench_micro\"");
  }
  const Value* benchmarks = field(root, "benchmarks", Value::Type::kArray);
  if (benchmarks == nullptr || benchmarks->array.empty()) {
    return complain("benchmarks missing or empty");
  }

  std::set<std::string> seen;
  for (const Value& entry : benchmarks->array) {
    if (entry.type != Value::Type::kObject) {
      return complain("benchmark entry is not an object");
    }
    const Value* name = field(entry, "name", Value::Type::kString);
    if (name == nullptr || name->string.empty()) {
      return complain("benchmark entry without a name");
    }
    if (!seen.insert(name->string).second) {
      return complain("duplicate benchmark name: " + name->string);
    }
    const Value* iterations = field(entry, "iterations", Value::Type::kNumber);
    if (iterations == nullptr || iterations->number <= 0) {
      return complain(name->string + ": iterations missing or <= 0");
    }
    const Value* time =
        field(entry, "real_time_ns_per_iter", Value::Type::kNumber);
    if (time == nullptr || time->number < 0) {
      return complain(name->string + ": real_time_ns_per_iter missing or < 0");
    }
    const Value* items =
        field(entry, "items_per_second", Value::Type::kNumber);
    if (items == nullptr || items->number <= 0) {
      return complain(name->string + ": items_per_second missing or <= 0");
    }
  }

  // The hot paths this baseline tracks across PRs must be present.
  for (const char* required :
       {"BM_EngineScheduleRun", "BM_EngineSteadyStateChurn",
        "BM_EngineCancelHeavy", "BM_RoutingCachedPath",
        "BM_RoutingMixedCachedPaths", "BM_ParallelForDispatch"}) {
    if (seen.count(required) == 0) {
      return complain(std::string("required benchmark missing: ") + required);
    }
  }

  std::printf("validate_bench_json: %s ok (%zu benchmarks)\n", path,
              seen.size());
  return 0;
}

// --- metrics snapshots ---------------------------------------------------

/// Section entries must be objects with a non-empty, section-unique name.
int check_names(const Value& section, const std::string& label) {
  std::set<std::string> seen;
  for (const Value& entry : section.array) {
    if (entry.type != Value::Type::kObject) {
      return complain(label + " entry is not an object");
    }
    const Value* name = field(entry, "name", Value::Type::kString);
    if (name == nullptr || name->string.empty()) {
      return complain(label + " entry without a name");
    }
    if (!seen.insert(name->string).second) {
      return complain("duplicate " + label + " name: " + name->string);
    }
  }
  return 0;
}

int validate_metrics(const char* path, const Value& root) {
  const Value* version = field(root, "schema_version", Value::Type::kNumber);
  if (version == nullptr || version->number != 2.0) {
    return complain("schema_version missing or != 2");
  }
  const Value* sections[5] = {};
  const char* names[5] = {"counters", "gauges", "stats", "histograms",
                          "time_series"};
  for (int i = 0; i < 5; ++i) {
    sections[i] = field(root, names[i], Value::Type::kArray);
    if (sections[i] == nullptr) {
      return complain(std::string("section missing or not an array: ") +
                      names[i]);
    }
    if (const int rc = check_names(*sections[i], names[i]); rc != 0) return rc;
  }

  for (const Value& histo : sections[3]->array) {
    const std::string& name =
        field(histo, "name", Value::Type::kString)->string;
    const Value* lo = field(histo, "lo", Value::Type::kNumber);
    const Value* hi = field(histo, "hi", Value::Type::kNumber);
    const Value* width = field(histo, "bucket_width", Value::Type::kNumber);
    const Value* buckets = field(histo, "buckets", Value::Type::kArray);
    if (lo == nullptr || hi == nullptr || width == nullptr ||
        buckets == nullptr) {
      return complain(name + ": lo/hi/bucket_width/buckets missing");
    }
    if (!(lo->number < hi->number) || width->number <= 0) {
      return complain(name + ": degenerate bucket geometry");
    }
    double prev_hi = lo->number;
    for (const Value& bucket : buckets->array) {
      const Value* b_lo = field(bucket, "lo", Value::Type::kNumber);
      const Value* b_hi = field(bucket, "hi", Value::Type::kNumber);
      const Value* count = field(bucket, "count", Value::Type::kNumber);
      if (b_lo == nullptr || b_hi == nullptr || count == nullptr) {
        return complain(name + ": bucket without lo/hi/count");
      }
      if (b_lo->number != prev_hi) {
        return complain(name + ": bucket bounds do not chain");
      }
      if (!(b_lo->number < b_hi->number) || count->number < 0) {
        return complain(name + ": bad bucket bounds or negative count");
      }
      prev_hi = b_hi->number;
    }
  }

  std::size_t windows_total = 0;
  for (const Value& series : sections[4]->array) {
    const std::string& name =
        field(series, "name", Value::Type::kString)->string;
    const Value* window_ms = field(series, "window_ms", Value::Type::kNumber);
    const Value* windows = field(series, "windows", Value::Type::kArray);
    if (window_ms == nullptr || window_ms->number <= 0 || windows == nullptr) {
      return complain(name + ": window_ms missing/non-positive or no windows");
    }
    double expected_start = 0.0;
    for (const Value& window : windows->array) {
      const Value* start = field(window, "start", Value::Type::kNumber);
      const Value* end = field(window, "end", Value::Type::kNumber);
      const Value* value = field(window, "value", Value::Type::kNumber);
      if (start == nullptr || end == nullptr || value == nullptr) {
        return complain(name + ": window without start/end/value");
      }
      if (start->number != expected_start) {
        return complain(name + ": window starts not monotone from 0");
      }
      if (end->number != start->number + window_ms->number) {
        return complain(name + ": window end != start + window_ms");
      }
      if (value->number < 0) {
        return complain(name + ": negative window value");
      }
      expected_start += window_ms->number;
      ++windows_total;
    }
  }

  std::printf(
      "validate_bench_json: %s ok (metrics: %zu counters, %zu gauges, "
      "%zu series, %zu windows)\n",
      path, sections[0]->array.size(), sections[1]->array.size(),
      sections[4]->array.size(), windows_total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics_mode = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_mode = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    return complain("usage: validate_bench_json [--metrics] <file.json>");
  }

  std::string text;
  std::string error;
  if (!uap2p::obs::json::read_file(path, text, &error)) {
    return complain(error);
  }
  Value root;
  if (!uap2p::obs::json::parse(text, root, &error)) {
    return complain("JSON parse error: " + error);
  }
  if (root.type != Value::Type::kObject) {
    return complain("top level is not an object");
  }
  return metrics_mode ? validate_metrics(path, root)
                      : validate_bench(path, root);
}
