// Micro-benchmarks (google-benchmark) for the hot substrate paths:
// event-loop throughput, Dijkstra/path-cache lookups, LPM trie, Vivaldi
// updates, ICS model construction, oracle ranking. These guard the
// simulator's performance envelope rather than reproduce a paper figure.
//
// Besides the console output, the binary emits a machine-readable
// `BENCH_micro.json` (path overridable with --bench_json=PATH) holding
// per-benchmark items/sec, so perf trajectories can be compared across
// PRs and validated by the bench-smoke CTest check.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "obs/latency.hpp"
#include "oracle/service.hpp"
#include "netinfo/ics.hpp"
#include "overlay/gnutella.hpp"
#include "netinfo/ipmap.hpp"
#include "netinfo/oracle.hpp"
#include "netinfo/p4p.hpp"
#include "netinfo/vivaldi.hpp"
#include "sim/engine.hpp"
#include "underlay/geo.hpp"
#include "underlay/network.hpp"

using namespace uap2p;

// --- Event engine --------------------------------------------------------

static void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule(double(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

static void BM_EngineSteadyStateChurn(benchmark::State& state) {
  // A warm engine whose slab and queue storage are recycled each round:
  // the steady-state regime every long simulation run lives in.
  sim::Engine engine;
  auto round = [&engine] {
    for (int i = 0; i < 1000; ++i) engine.schedule(double(i % 97), [] {});
    return engine.run();
  };
  round();  // warm-up: grow slab + queue to steady-state footprint
  for (auto _ : state) {
    benchmark::DoNotOptimize(round());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineSteadyStateChurn);

static void BM_EngineCancelHeavy(benchmark::State& state) {
  // Retransmission-timer workload: most timers are disarmed before they
  // fire, exercising generation-tombstone skipping and slot recycling.
  sim::Engine engine;
  std::vector<sim::EventHandle> handles(1000);
  auto round = [&] {
    for (int i = 0; i < 1000; ++i) {
      handles[std::size_t(i)] = engine.schedule(double(i % 61), [] {});
    }
    for (int i = 0; i < 1000; ++i) {
      if (i % 10 != 0) handles[std::size_t(i)].cancel();
    }
    return engine.run();
  };
  round();  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(round());
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // timers armed
}
BENCHMARK(BM_EngineCancelHeavy);

// --- Routing -------------------------------------------------------------

static void BM_RoutingColdDijkstra(benchmark::State& state) {
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, std::size_t(state.range(0)), 0.3);
  for (auto _ : state) {
    underlay::RoutingTable routing(topo);
    benchmark::DoNotOptimize(
        routing.path(RouterId(0), RouterId(std::uint32_t(topo.router_count() - 1))));
  }
  state.SetLabel(std::to_string(topo.router_count()) + " routers");
}
BENCHMARK(BM_RoutingColdDijkstra)->Arg(5)->Arg(20)->Arg(60)->Arg(200)->Arg(1000);

// Transit-stub underlay sized to ~`routers` total routers (10 providers,
// 3 routers/AS): the topology family the hierarchical preprocessing
// contracts, shared by the flat/hier warm-all pair below so their rows —
// byte-identical by the routing property suite — are timed on identical
// inputs.
static underlay::AsTopology warm_bench_topology(std::size_t routers) {
  const std::size_t transit = 10;
  const std::size_t stubs_per_transit = (routers / 3 - transit) / transit;
  return underlay::AsTopology::transit_stub(transit, stubs_per_transit, 0.3);
}

static void BM_RoutingWarmAll(benchmark::State& state) {
  // Batch all-pairs warm-up over the process pool: the provider-side
  // precompute a P4P/oracle deployment would run per topology snapshot.
  // Arg = target router count on a 10-provider transit-stub underlay;
  // /3000 is the flat path's scale wall (quadratic state beyond it), and
  // there is deliberately no /10000 row — at that size only the
  // hierarchical warm (BM_RoutingWarmAllHier) fits the smoke budget.
  const underlay::AsTopology topo =
      warm_bench_topology(std::size_t(state.range(0)));
  (void)topo.csr();  // charge the one-off CSR build to setup, not the loop
  for (auto _ : state) {
    underlay::RoutingTable routing(topo);
    routing.warm_all();
    benchmark::DoNotOptimize(routing.cached_sources());
  }
  state.SetItemsProcessed(state.iterations() *
                          std::int64_t(topo.router_count()));  // sources
  state.SetLabel(std::to_string(topo.router_count()) + " routers");
}
BENCHMARK(BM_RoutingWarmAll)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

static void BM_RoutingWarmAllHier(benchmark::State& state) {
  // The same warm-up through the hierarchical path (DESIGN.md
  // "Hierarchical routing"): pendant + stub-group contraction, Dijkstra
  // only over the transit core, exact aggregate re-expansion. Rows are
  // byte-identical to BM_RoutingWarmAll on the same topology; /10000 is
  // the row the flat path has no entry for. The first iteration builds
  // the contraction plan (cached on the topology thereafter) and faults
  // in a fresh row arena (recycled across tables thereafter), so the
  // reported mean is the steady state an oracle deployment re-warming
  // per topology snapshot actually sees.
  const underlay::AsTopology topo =
      warm_bench_topology(std::size_t(state.range(0)));
  (void)topo.csr();
  for (auto _ : state) {
    underlay::RoutingTable routing(topo);
    routing.warm_all_hierarchical();
    benchmark::DoNotOptimize(routing.cached_sources());
  }
  state.SetItemsProcessed(state.iterations() *
                          std::int64_t(topo.router_count()));  // sources
  state.SetLabel(std::to_string(topo.router_count()) + " routers");
}
BENCHMARK(BM_RoutingWarmAllHier)
    ->Arg(1000)
    ->Arg(3000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

static void BM_AltQuery(benchmark::State& state) {
  // ALT-pruned point-to-point queries (RoutingTable::point_path) on a
  // cold table: landmark lower bounds + early exit keep a single query
  // far under a full Dijkstra row, for callers that need a handful of
  // pairs and not the all-pairs warm. Items = queries.
  const underlay::AsTopology topo = warm_bench_topology(3000);
  (void)topo.csr();
  underlay::RoutingTable routing(topo);
  (void)routing.ensure_landmarks();  // charge landmark build to setup
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // splitmix-style pair stream
  for (auto _ : state) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const auto a = RouterId(std::uint32_t(z % n));
    const auto b = RouterId(std::uint32_t((z >> 32) % n));
    benchmark::DoNotOptimize(routing.point_path(a, b));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(n) + " routers");
}
BENCHMARK(BM_AltQuery);

// Snapshot files for BM_SnapshotLoad / BM_SnapshotOpenVerify, written once
// per (router-count) arg into the snapshot dir (or a temp dir when no
// --snapshot-dir= is set) and reused across benchmark registrations.
static const std::string& snapshot_bench_file(std::size_t ases) {
  static std::map<std::size_t, std::string> files;
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  auto it = files.find(ases);
  if (it != files.end()) return it->second;
  std::filesystem::path dir = bench::options().snapshot_dir.empty()
                                  ? std::filesystem::temp_directory_path() /
                                        "uap2p_bench_snapshots"
                                  : std::filesystem::path(
                                        bench::options().snapshot_dir);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string params = "a" + std::to_string(ases) + "-bench";
  const std::string path =
      (dir / bench::snapshot_cache_name("mesh", params, 1)).string();
  std::string error;
  // Reuse an existing cache entry when it attaches cleanly; else (first
  // run, version skew, corruption) warm fresh and (re)write it.
  const underlay::AsTopology topo =
      underlay::AsTopology::mesh(ases, 8.0 / double(ases));
  if (!std::filesystem::exists(path, ec) ||
      underlay::SharedRouting::load(topo, path, 0, &error) == nullptr) {
    underlay::RoutingTable table(topo);
    table.warm_all();
    if (!underlay::snapshot::write(topo, table, path, &error)) {
      std::fprintf(stderr, "bench_micro: snapshot write failed: %s\n",
                   error.c_str());
      std::abort();
    }
  }
  return files.emplace(ases, path).first->second;
}

static void BM_SnapshotLoad(benchmark::State& state) {
  // The zero-Dijkstra counterpart of BM_RoutingWarmAll: mmap-open the
  // persistent snapshot, byte-compare its CSR against the live topology,
  // and adopt the row image into a fresh RoutingTable — the warmed-table
  // load path benches take on a --snapshot-dir= cache hit. Arg is the
  // router count (/3000 pairs with BM_RoutingWarmAll/1000, the same
  // 1000-AS mesh). Like WarmAll, the loop builds a fresh table over a
  // pre-built topology: topology generation / CSR build / AS-hop warm are
  // setup in both, so ns-per-iter compares the row-filling machinery
  // alone (Dijkstra-all-sources vs mmap+verify+adopt). Steady-state
  // regime: the one-time full content verify of the file identity is paid
  // in setup (BM_SnapshotOpenVerify prices it alone).
  const auto routers = static_cast<std::size_t>(state.range(0));
  const std::size_t ases = routers / 3;
  const std::string& path = snapshot_bench_file(ases);
  const underlay::AsTopology topo =
      underlay::AsTopology::mesh(ases, 8.0 / double(ases));
  (void)topo.csr();  // charge the one-off CSR build to setup, like WarmAll
  {
    std::string error;  // pre-verify so the loop measures steady state
    if (underlay::snapshot::MappedSnapshot::open(path, &error) == nullptr) {
      state.SkipWithError(error.c_str());
      return;
    }
  }
  for (auto _ : state) {
    std::string error;
    const auto snap = underlay::snapshot::MappedSnapshot::open(path, &error);
    if (snap == nullptr) {
      state.SkipWithError(error.c_str());
      return;
    }
    underlay::RoutingTable routing(topo);
    if (!underlay::snapshot::attach(*snap, topo, routing, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(routing.cached_sources());
  }
  state.SetItemsProcessed(state.iterations() *
                          std::int64_t(topo.router_count()));  // sources
  state.SetLabel(std::to_string(topo.router_count()) + " routers");
}
BENCHMARK(BM_SnapshotLoad)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

static void BM_SnapshotOpenVerify(benchmark::State& state) {
  // Cold-trust open: re-hash every section payload (Verify::kAlways), the
  // cost the first open of a new file identity pays. Memory-bandwidth
  // bound on the row image, so expect ~file_size / ~8 GB/s.
  const auto routers = static_cast<std::size_t>(state.range(0));
  const std::string& path = snapshot_bench_file(routers / 3);
  for (auto _ : state) {
    std::string error;
    const auto snap = underlay::snapshot::MappedSnapshot::open(
        path, &error, underlay::snapshot::MappedSnapshot::Verify::kAlways);
    if (snap == nullptr) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(snap->file_bytes());
  }
  state.SetLabel(std::to_string(routers) + " routers");
}
BENCHMARK(BM_SnapshotOpenVerify)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

static void BM_RoutingCachedPath(benchmark::State& state) {
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 20, 0.3);
  underlay::RoutingTable routing(topo);
  const auto last = RouterId(std::uint32_t(topo.router_count() - 1));
  (void)routing.path(RouterId(0), last);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.path(RouterId(0), last));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingCachedPath);

static void BM_RoutingMixedCachedPaths(benchmark::State& state) {
  // Fully warmed cache probed with a shuffled pair sequence: the realistic
  // hot regime of Network::send once a simulation has been running.
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 20, 0.3);
  underlay::RoutingTable routing(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = 0; j < n; ++j)
      (void)routing.path(RouterId(i), RouterId(j));
  Rng rng(17);
  constexpr std::size_t kProbes = 1024;
  std::vector<std::pair<RouterId, RouterId>> pairs;
  pairs.reserve(kProbes);
  for (std::size_t k = 0; k < kProbes; ++k) {
    pairs.emplace_back(RouterId(std::uint32_t(rng.uniform(n))),
                       RouterId(std::uint32_t(rng.uniform(n))));
  }
  std::size_t index = 0;
  for (auto _ : state) {
    const auto& [a, b] = pairs[index++ & (kProbes - 1)];
    benchmark::DoNotOptimize(routing.path(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingMixedCachedPaths);

// --- Overlay flooding ----------------------------------------------------

static void BM_GnutellaFloodSteadyState(benchmark::State& state) {
  // A warmed 180-peer ultrapeer/leaf overlay issuing full-TTL query floods
  // for scarce content: the regime every Table-1-style run spends its time
  // in. Items are flooded messages (Query + QueryHit transmissions).
  sim::Engine engine;
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 21);
  const auto peers = net.populate(180);
  overlay::gnutella::Config config;
  config.dynamic_querying = false;  // always flood at full TTL
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      config);
  system.bootstrap();
  for (std::size_t i = 0; i < 3; ++i) {
    system.share(peers[i * 7 + 1], ContentId(5));
  }
  system.ping_cycle();
  std::size_t origin = 0;
  auto do_search = [&] {
    origin = (origin + 37) % peers.size();
    return system.search(peers[origin], ContentId(5), /*download=*/false)
        .result_count;
  };
  for (int i = 0; i < 3; ++i) do_search();  // warm caches and scratch
  const std::uint64_t before = system.counts().total();
  for (auto _ : state) {
    benchmark::DoNotOptimize(do_search());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(system.counts().total() - before));
}
BENCHMARK(BM_GnutellaFloodSteadyState);

// --- Sharded engine ------------------------------------------------------

// One warmed routing snapshot for every BM_ShardedFlood shard count: the
// 1000-AS mesh's all-pairs warm-up is setup cost, not the thing measured,
// and sharing it keeps the four variants' setups comparable. Under
// --snapshot-dir= the warm-up is skipped entirely after the first run —
// the rows mmap-load from the persistent snapshot cache.
static const std::shared_ptr<const underlay::SharedRouting>&
sharded_flood_routing() {
  static const auto routing = bench::shared_routing_cached(
      "mesh", "a1000-e0.008", /*seed=*/1,
      underlay::AsTopology::mesh(1000, 8.0 / 1000.0));
  return routing;
}

static void BM_ShardedFlood(benchmark::State& state) {
  // The BM_GnutellaFloodSteadyState regime scaled to the paper's "large
  // underlay" shape — 1000 ASes, 4000 peers — under K per-AS engine
  // shards (sim::EngineGroup conservative windows; K=1 is the serial
  // baseline). Byte-identical results at every K (the sharded gates
  // enforce it); only wall-clock may differ. Items are flooded messages.
  process_pool();  // lazy init outside the timed region
  const auto shards = std::size_t(state.range(0));
  overlay::gnutella::Config config;
  config.dynamic_querying = false;  // always flood at full TTL
  bench::GnutellaLab lab(sharded_flood_routing(), 4000, config, /*seed=*/21,
                         shards);
  for (std::size_t i = 0; i < 3; ++i) {
    lab.system->share(lab.peers[i * 7 + 1], ContentId(5));
  }
  lab.system->ping_cycle();
  std::size_t origin = 0;
  auto do_search = [&] {
    origin = (origin + 37) % lab.peers.size();
    return lab.system->search(lab.peers[origin], ContentId(5),
                              /*download=*/false)
        .result_count;
  };
  do_search();  // warm caches and scratch
  const std::uint64_t before = lab.system->counts().total();
  for (auto _ : state) {
    benchmark::DoNotOptimize(do_search());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(lab.system->counts().total() - before));
  state.SetLabel("shards=" + std::to_string(shards));
}
BENCHMARK(BM_ShardedFlood)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

static void BM_ShardedEngineBarrier(benchmark::State& state) {
  // Pure coordination cost of one conservative window: K near-empty
  // engines each fire a single event per step(), so the time is dominated
  // by the barrier (parallel_for dispatch + join) rather than event
  // execution — the floor a sharded run pays per window. Arg 1 is the
  // no-barrier fast path for comparison.
  process_pool();  // lazy init outside the timed region
  const auto shards = std::size_t(state.range(0));
  sim::EngineGroup group(shards);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    for (std::size_t s = 0; s < shards; ++s) {
      group.shard(s).schedule_at(t, [] {});
    }
    benchmark::DoNotOptimize(group.step());
  }
  state.SetItemsProcessed(state.iterations());  // windows
  state.SetLabel("shards=" + std::to_string(shards));
}
BENCHMARK(BM_ShardedEngineBarrier)->Arg(1)->Arg(4)->Arg(8)->UseRealTime();

// --- Observability overhead ---------------------------------------------

enum class ObsMode { kOff, kCounters, kTrace, kMatrix };

static void BM_ObsOverhead(benchmark::State& state) {
  // The BM_GnutellaFloodSteadyState workload under the obs settings:
  // 0 = compiled in but disabled (the shipping default — must be within
  // noise of the PR 2 flood baseline), 1 = registry counters bound,
  // 2 = counters + full JSONL trace to /dev/null, 3 = counters + the
  // per-AS-pair traffic matrix with windowed time-series accounting (the
  // --metrics-every cost observatory regime; acceptance keeps it within
  // 5% of row 0). Items are flooded messages, so ns/item is directly
  // comparable across the rows.
  const auto mode = static_cast<ObsMode>(state.range(0));
  sim::Engine engine;
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 21);
  const auto peers = net.populate(180);
  overlay::gnutella::Config config;
  config.dynamic_querying = false;  // always flood at full TTL
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      config);
  obs::MetricsRegistry registry;
  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (mode != ObsMode::kOff) {
    net.set_metrics(&registry);
    system.bind_metrics(registry);
  }
  if (mode == ObsMode::kTrace) {
    trace = std::make_unique<obs::JsonlTraceSink>("/dev/null");
    engine.set_trace(trace.get());
    net.set_trace(trace.get());
    system.set_trace(trace.get());
  }
  if (mode == ObsMode::kMatrix) net.enable_traffic_matrix();
  system.bootstrap();
  for (std::size_t i = 0; i < 3; ++i) {
    system.share(peers[i * 7 + 1], ContentId(5));
  }
  system.ping_cycle();
  std::size_t origin = 0;
  auto do_search = [&] {
    origin = (origin + 37) % peers.size();
    return system.search(peers[origin], ContentId(5), /*download=*/false)
        .result_count;
  };
  for (int i = 0; i < 3; ++i) do_search();  // warm caches and scratch
  const std::uint64_t before = system.counts().total();
  for (auto _ : state) {
    benchmark::DoNotOptimize(do_search());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(system.counts().total() - before));
  switch (mode) {
    case ObsMode::kOff: state.SetLabel("obs=off"); break;
    case ObsMode::kCounters: state.SetLabel("obs=counters"); break;
    case ObsMode::kTrace: state.SetLabel("obs=counters+jsonl"); break;
    case ObsMode::kMatrix: state.SetLabel("obs=matrix"); break;
  }
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// --- Parallel sweep dispatch --------------------------------------------

static void BM_ParallelForDispatch(benchmark::State& state) {
  // Cost of fanning a tiny sweep out and joining it; dominated by pool
  // dispatch overhead, which used to include thread creation per call.
  process_pool();  // lazy init outside the timed region
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    parallel_for(
        8, [&](std::size_t i) { sink.fetch_add(i, std::memory_order_relaxed); },
        4);
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ParallelForDispatch);

static void BM_TrialFanout(benchmark::State& state) {
  // bench::run_trials end to end at 1 / 4 / hardware-width threads: serial
  // seed derivation, pool dispatch of self-contained trials, index-ordered
  // gather. The trial body is ~1k Rng draws, small enough that harness
  // overhead is visible, big enough that threads can genuinely overlap.
  // Items are completed trials.
  process_pool();  // lazy init outside the timed region
  const auto threads = std::size_t(state.range(0));
  constexpr std::size_t kTrials = 64;
  for (auto _ : state) {
    const auto results = bench::run_trials(
        kTrials, /*base_seed=*/42,
        [](std::size_t index, std::uint64_t seed) {
          Rng rng(seed);
          std::uint64_t acc = index;
          for (int i = 0; i < 1000; ++i) acc = acc * 31 + rng();
          return acc;
        },
        threads);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * kTrials);
}
BENCHMARK(BM_TrialFanout)->Apply([](benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(4);
  // Hardware width, deduplicated against the fixed args so the emitted
  // JSON never carries two benchmarks with the same name.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 4) b->Arg(hw);
});

// --- netinfo / geo -------------------------------------------------------

static void BM_PrefixTrieLookup(benchmark::State& state) {
  netinfo::PrefixTrie trie;
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    trie.insert(std::uint32_t(rng()) & 0xFFFFFF00, 24,
                {AsId(std::uint32_t(i)), {}});
  }
  std::uint32_t probe = 1;
  for (auto _ : state) {
    probe = probe * 1664525 + 1013904223;
    benchmark::DoNotOptimize(trie.lookup(IpAddress{probe}));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

static void BM_VivaldiUpdate(benchmark::State& state) {
  netinfo::VivaldiSystem system(256, {}, Rng(5));
  Rng rng(7);
  for (auto _ : state) {
    const auto a = PeerId(std::uint32_t(rng.uniform(256)));
    const auto b = PeerId(std::uint32_t(rng.uniform(256)));
    if (a == b) continue;
    system.update(a, b, rng.uniform_real(5.0, 200.0));
  }
}
BENCHMARK(BM_VivaldiUpdate);

static void BM_IcsBuild(benchmark::State& state) {
  const auto beacons = std::size_t(state.range(0));
  Rng rng(9);
  netinfo::Matrix d(beacons, beacons);
  for (std::size_t i = 0; i < beacons; ++i)
    for (std::size_t j = i + 1; j < beacons; ++j)
      d(i, j) = d(j, i) = rng.uniform_real(5.0, 300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netinfo::IcsModel::build(d, {}));
  }
}
BENCHMARK(BM_IcsBuild)->Arg(8)->Arg(16)->Arg(32);

static void BM_OracleRank(benchmark::State& state) {
  sim::Engine engine;
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 8, 0.3);
  underlay::Network net(engine, topo, 11);
  const auto peers = net.populate(std::size_t(state.range(0)));
  netinfo::Oracle oracle(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.rank(peers[0], peers));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OracleRank)->Arg(100)->Arg(1000);

static void BM_UtmRoundTrip(benchmark::State& state) {
  underlay::GeoPoint point{49.87, 8.65};
  for (auto _ : state) {
    benchmark::DoNotOptimize(underlay::from_utm(underlay::to_utm(point)));
  }
}
BENCHMARK(BM_UtmRoundTrip);

static void BM_P4pRank(benchmark::State& state) {
  sim::Engine engine;
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 8, 0.3);
  underlay::Network net(engine, topo, 13);
  const auto peers = net.populate(std::size_t(state.range(0)));
  netinfo::ITracker itracker(net);
  netinfo::P4pSelector selector(itracker);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.rank(peers[0], peers));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_P4pRank)->Arg(100)->Arg(1000);

// --- Oracle query service (src/oracle) -----------------------------------

namespace {

/// Warmed 204-router snapshot shared by the oracled benches (same
/// transit-stub shape as the snapshot-roundtrip gate).
const std::shared_ptr<const underlay::SharedRouting>& oracled_routing() {
  static const auto routing = bench::shared_routing_cached(
      "transit-stub", "t4-s16-p0.3", /*seed=*/7,
      underlay::AsTopology::transit_stub(4, 16, 0.3,
                                         underlay::TopologyConfig{.seed = 7}));
  return routing;
}

std::uint64_t bench_splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A reusable arena of rank requests with deterministic contents.
struct OracledWorkload {
  std::unique_ptr<oracled::RankRequest[]> requests;
  std::vector<oracled::Candidate> candidates;
  std::vector<std::uint32_t> ranked;
  std::vector<oracled::RankRequest*> pointers;

  OracledWorkload(std::size_t count, std::size_t k, std::uint32_t routers,
                  std::uint64_t seed) {
    requests = std::make_unique<oracled::RankRequest[]>(count);
    candidates.resize(count * k);
    ranked.resize(count * k);
    pointers.resize(count);
    std::uint64_t rng = seed;
    for (std::size_t i = 0; i < count; ++i) {
      oracled::RankRequest& req = requests[i];
      req.client_router = std::uint32_t(bench_splitmix64(rng) % routers);
      req.candidate_count = std::uint32_t(k);
      req.candidates = candidates.data() + i * k;
      req.ranked = ranked.data() + i * k;
      for (std::size_t c = 0; c < k; ++c) {
        candidates[i * k + c].peer =
            std::uint32_t(bench_splitmix64(rng) % 65536);
        candidates[i * k + c].router =
            std::uint32_t(bench_splitmix64(rng) % routers);
      }
      pointers[i] = &req;
    }
  }
};

}  // namespace

static void BM_OracledRankBatch(benchmark::State& state) {
  // The pure ranking kernel: rank_batch over a warmed snapshot, no
  // service threads — the per-request cost floor the closed-loop numbers
  // amortize toward. Arg = candidates per request.
  const auto& routing = oracled_routing();
  const auto routers = std::uint32_t(routing->topology().router_count());
  const std::size_t k = std::size_t(state.range(0));
  OracledWorkload workload(256, k, routers, 17);
  for (auto _ : state) {
    oracled::rank_batch(*routing, workload.pointers);
    benchmark::DoNotOptimize(workload.ranked.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 256);  // rank requests
  state.SetLabel(std::to_string(k) + " candidates");
}
BENCHMARK(BM_OracledRankBatch)->Arg(8)->Arg(32);

static void BM_OracledClosedLoop(benchmark::State& state) {
  // The full service path: submit through a worker ring, rank on a
  // worker thread, observe completion — 4096 requests in flight per
  // iteration. End-to-end latency tails (submit stamp to completion
  // stamp) are exported as p50_ns/p99_ns/p999_ns counters, which the
  // JSON tee forwards into BENCH_micro.json. Arg = worker threads.
  const auto& routing = oracled_routing();
  const auto routers = std::uint32_t(routing->topology().router_count());
  constexpr std::size_t kBatch = 4096;
  OracledWorkload workload(kBatch, 8, routers, 23);
  oracled::ServiceConfig config;
  config.workers = std::size_t(state.range(0));
  config.ring_capacity = 8192;
  config.max_batch = 256;
  oracled::OracleService service(routing, config);
  obs::LatencyHistogram latency;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      while (!service.submit(&workload.requests[i])) {
        std::this_thread::yield();
      }
    }
    for (std::size_t i = 0; i < kBatch; ++i) {
      oracled::wait_terminal(workload.requests[i]);
    }
    benchmark::ClobberMemory();
    for (std::size_t i = 0; i < kBatch; ++i) {
      oracled::RankRequest& req = workload.requests[i];
      latency.record(req.done_ns - req.enqueue_ns);
      req.state.store(oracled::RequestState::kFree,
                      std::memory_order_relaxed);
    }
  }
  state.SetItemsProcessed(state.iterations() * std::int64_t(kBatch));
  state.counters["p50_ns"] = double(latency.p50_ns());
  state.counters["p99_ns"] = double(latency.p99_ns());
  state.counters["p999_ns"] = double(latency.p999_ns());
  state.SetLabel(std::to_string(config.workers) + " workers");
}
// UseRealTime: the work happens on service workers, so wall clock — not
// the submitting thread's CPU time — is the honest rate denominator.
BENCHMARK(BM_OracledClosedLoop)->Arg(1)->Arg(2)->UseRealTime();

static void BM_OracledSnapshotSwap(benchmark::State& state) {
  // publish() cost under a live subscriber set: the slot swap plus the
  // old snapshot's refcount drop (never the rebuild, which happens off
  // to the side). This is the "topology changed" steady-state path.
  const auto& routing = oracled_routing();
  underlay::SharedRoutingSlot slot(routing);
  auto alternate = oracled_routing();
  for (auto _ : state) {
    slot.publish(alternate);
    benchmark::DoNotOptimize(slot.generation());
  }
}
BENCHMARK(BM_OracledSnapshotSwap);

// --- Machine-readable output --------------------------------------------

namespace {

struct JsonEntry {
  std::string name;
  std::int64_t iterations = 0;
  double real_time_ns_per_iter = 0.0;
  double items_per_second = 0.0;
  /// Optional latency tail counters (service-tier benches only); 0 means
  /// absent and the fields are omitted from the JSON row.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

/// Console reporter that also records every per-iteration run so main()
/// can emit BENCH_micro.json after the suite finishes. Aggregate rows
/// (mean/median/stddev under --benchmark_repetitions) are skipped to keep
/// the schema one-row-per-benchmark.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      JsonEntry entry;
      entry.name = run.benchmark_name();
      entry.iterations = run.iterations;
      if (run.iterations > 0) {
        entry.real_time_ns_per_iter =
            run.real_accumulated_time * 1e9 / double(run.iterations);
      }
      const auto counter = run.counters.find("items_per_second");
      const auto scalar = [&run](const char* name) {
        const auto it = run.counters.find(name);
        return it != run.counters.end() ? it->second.value : 0.0;
      };
      entry.p50_ns = scalar("p50_ns");
      entry.p99_ns = scalar("p99_ns");
      entry.p999_ns = scalar("p999_ns");
      if (counter != run.counters.end()) {
        entry.items_per_second = counter->second.value;
      } else if (run.real_accumulated_time > 0.0) {
        // No explicit items counter: one item per iteration.
        entry.items_per_second =
            double(run.iterations) / run.real_accumulated_time;
      }
      entries.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(report);
  }

  std::vector<JsonEntry> entries;
};

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

bool write_json(const std::string& path,
                const std::vector<JsonEntry>& entries) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_micro: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(file, "{\n  \"schema_version\": 1,\n");
  std::fprintf(file, "  \"suite\": \"bench_micro\",\n");
  std::fprintf(file, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JsonEntry& e = entries[i];
    std::fprintf(file,
                 "    {\"name\": \"%s\", \"iterations\": %lld, "
                 "\"real_time_ns_per_iter\": %.6g, "
                 "\"items_per_second\": %.6g",
                 json_escape(e.name).c_str(),
                 static_cast<long long>(e.iterations), e.real_time_ns_per_iter,
                 e.items_per_second);
    if (e.p50_ns > 0.0) {
      // Latency tails ride along on service-tier rows (schema-optional:
      // the validator checks them only when present).
      std::fprintf(file,
                   ", \"p50_ns\": %.6g, \"p99_ns\": %.6g, \"p999_ns\": %.6g",
                   e.p50_ns, e.p99_ns, e.p999_ns);
    }
    std::fprintf(file, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  // Extract our own flags before google-benchmark sees the arguments.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--bench_json=";
    constexpr const char kSnapDir[] = "--snapshot-dir=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else if (std::strncmp(argv[i], kSnapDir, sizeof(kSnapDir) - 1) == 0) {
      bench::options().snapshot_dir = argv[i] + sizeof(kSnapDir) - 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (bench::options().snapshot_dir.empty()) {
    if (const char* env = std::getenv("UAP2P_SNAPSHOT_DIR")) {
      bench::options().snapshot_dir = env;
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (reporter.entries.empty()) {
    std::fprintf(stderr, "bench_micro: no benchmark runs recorded\n");
    return 1;
  }
  return write_json(json_path, reporter.entries) ? 0 : 1;
}
