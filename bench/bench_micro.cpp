// Micro-benchmarks (google-benchmark) for the hot substrate paths:
// event-loop throughput, Dijkstra/path-cache lookups, LPM trie, Vivaldi
// updates, ICS model construction, oracle ranking. These guard the
// simulator's performance envelope rather than reproduce a paper figure.
#include <benchmark/benchmark.h>

#include "netinfo/ics.hpp"
#include "netinfo/ipmap.hpp"
#include "netinfo/oracle.hpp"
#include "netinfo/p4p.hpp"
#include "underlay/geo.hpp"
#include "netinfo/vivaldi.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;

static void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule(double(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

static void BM_RoutingColdDijkstra(benchmark::State& state) {
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, std::size_t(state.range(0)), 0.3);
  for (auto _ : state) {
    underlay::RoutingTable routing(topo);
    benchmark::DoNotOptimize(
        routing.path(RouterId(0), RouterId(std::uint32_t(topo.router_count() - 1))));
  }
  state.SetLabel(std::to_string(topo.router_count()) + " routers");
}
BENCHMARK(BM_RoutingColdDijkstra)->Arg(5)->Arg(20)->Arg(60);

static void BM_RoutingCachedPath(benchmark::State& state) {
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 20, 0.3);
  underlay::RoutingTable routing(topo);
  const auto last = RouterId(std::uint32_t(topo.router_count() - 1));
  routing.path(RouterId(0), last);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.path(RouterId(0), last));
  }
}
BENCHMARK(BM_RoutingCachedPath);

static void BM_PrefixTrieLookup(benchmark::State& state) {
  netinfo::PrefixTrie trie;
  Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    trie.insert(std::uint32_t(rng()) & 0xFFFFFF00, 24,
                {AsId(std::uint32_t(i)), {}});
  }
  std::uint32_t probe = 1;
  for (auto _ : state) {
    probe = probe * 1664525 + 1013904223;
    benchmark::DoNotOptimize(trie.lookup(IpAddress{probe}));
  }
}
BENCHMARK(BM_PrefixTrieLookup);

static void BM_VivaldiUpdate(benchmark::State& state) {
  netinfo::VivaldiSystem system(256, {}, Rng(5));
  Rng rng(7);
  for (auto _ : state) {
    const auto a = PeerId(std::uint32_t(rng.uniform(256)));
    const auto b = PeerId(std::uint32_t(rng.uniform(256)));
    if (a == b) continue;
    system.update(a, b, rng.uniform_real(5.0, 200.0));
  }
}
BENCHMARK(BM_VivaldiUpdate);

static void BM_IcsBuild(benchmark::State& state) {
  const auto beacons = std::size_t(state.range(0));
  Rng rng(9);
  netinfo::Matrix d(beacons, beacons);
  for (std::size_t i = 0; i < beacons; ++i)
    for (std::size_t j = i + 1; j < beacons; ++j)
      d(i, j) = d(j, i) = rng.uniform_real(5.0, 300.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netinfo::IcsModel::build(d, {}));
  }
}
BENCHMARK(BM_IcsBuild)->Arg(8)->Arg(16)->Arg(32);

static void BM_OracleRank(benchmark::State& state) {
  sim::Engine engine;
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 8, 0.3);
  underlay::Network net(engine, topo, 11);
  const auto peers = net.populate(std::size_t(state.range(0)));
  netinfo::Oracle oracle(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.rank(peers[0], peers));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OracleRank)->Arg(100)->Arg(1000);

static void BM_UtmRoundTrip(benchmark::State& state) {
  underlay::GeoPoint point{49.87, 8.65};
  for (auto _ : state) {
    benchmark::DoNotOptimize(underlay::from_utm(underlay::to_utm(point)));
  }
}
BENCHMARK(BM_UtmRoundTrip);

static void BM_P4pRank(benchmark::State& state) {
  sim::Engine engine;
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 8, 0.3);
  underlay::Network net(engine, topo, 13);
  const auto peers = net.populate(std::size_t(state.range(0)));
  netinfo::ITracker itracker(net);
  netinfo::P4pSelector selector(itracker);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.rank(peers[0], peers));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_P4pRank)->Arg(100)->Arg(1000);

BENCHMARK_MAIN();
