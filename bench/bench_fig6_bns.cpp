// Figure 6 — "(a) Uniform random neighbor selection and (b) biased
// neighbor selection": the overlay graph clusters along AS boundaries
// with "a minimal number of inter-AS connections necessary to keep the
// network connected". Reproduced on the BitTorrent swarm of Bindal et
// al. [3], with the download-performance and traffic-locality columns
// their paper reports alongside.
#include "bench_common.hpp"
#include "overlay/bittorrent.hpp"

using namespace uap2p;
using namespace uap2p::overlay::bittorrent;

namespace {

struct RunResult {
  double intra_edge_fraction = 0.0;
  std::size_t inter_edges = 0;
  std::size_t min_inter_edges = 0;
  bool connected = false;
  double intra_piece_fraction = 0.0;
  double median_completion = 0.0;
  double p90_completion = 0.0;
  std::uint64_t transit_bytes = 0;
};

RunResult run(NeighborPolicy policy, std::size_t externals) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 6, 0.3);
  underlay::Network net(engine, topo, 43);
  const auto peers = net.populate(200);
  Config config;
  config.policy = policy;
  config.external_neighbors = externals;
  config.piece_count = 48;
  BitTorrentSwarm swarm(net, peers, /*initial_seeds=*/4, config);
  swarm.build_neighborhoods();
  swarm.run(3000);
  RunResult result;
  result.intra_edge_fraction = swarm.intra_as_edge_fraction();
  result.inter_edges = swarm.inter_as_edge_count();
  result.min_inter_edges = swarm.min_inter_as_edges_for_connectivity();
  result.connected = swarm.overlay_connected();
  result.intra_piece_fraction = swarm.stats().intra_as_piece_fraction();
  result.median_completion = swarm.stats().completion_rounds.median();
  result.p90_completion = swarm.stats().completion_rounds.percentile(90);
  result.transit_bytes = net.traffic().transit_link_bytes();
  return result;
}

}  // namespace

int main() {
  bench::print_header("bench_fig6_bns",
                      "Figure 6 (uniform vs biased neighbor selection, [3])");

  const RunResult uniform = run(NeighborPolicy::kRandom, 0);
  const RunResult biased1 = run(NeighborPolicy::kBiased, 1);
  const RunResult biased2 = run(NeighborPolicy::kBiased, 2);

  TablePrinter table({"metric", "(a) uniform random", "(b) biased, 1 ext",
                      "(b) biased, 2 ext"});
  auto add_double = [&](const char* name, double a, double b, double c,
                        int precision) {
    table.add_row({name, TablePrinter::fmt(a, precision),
                   TablePrinter::fmt(b, precision),
                   TablePrinter::fmt(c, precision)});
  };
  add_double("intra-AS edge fraction", uniform.intra_edge_fraction,
             biased1.intra_edge_fraction, biased2.intra_edge_fraction, 3);
  table.add_row({"inter-AS edges", std::to_string(uniform.inter_edges),
                 std::to_string(biased1.inter_edges),
                 std::to_string(biased2.inter_edges)});
  table.add_row(
      {"minimum for connectivity", std::to_string(uniform.min_inter_edges),
       std::to_string(biased1.min_inter_edges),
       std::to_string(biased2.min_inter_edges)});
  table.add_row({"overlay connected", uniform.connected ? "yes" : "NO",
                 biased1.connected ? "yes" : "NO",
                 biased2.connected ? "yes" : "NO"});
  add_double("intra-AS piece traffic", uniform.intra_piece_fraction,
             biased1.intra_piece_fraction, biased2.intra_piece_fraction, 3);
  add_double("median completion (rounds)", uniform.median_completion,
             biased1.median_completion, biased2.median_completion, 1);
  add_double("p90 completion (rounds)", uniform.p90_completion,
             biased1.p90_completion, biased2.p90_completion, 1);
  table.add_row({"transit byte-crossings", std::to_string(uniform.transit_bytes),
                 std::to_string(biased1.transit_bytes),
                 std::to_string(biased2.transit_bytes)});
  table.print("Fig 6: topology clustering and its consequences");

  const bool shape_ok =
      biased1.intra_edge_fraction > uniform.intra_edge_fraction + 0.2 &&
      biased1.connected && biased2.connected &&
      biased1.inter_edges < uniform.inter_edges &&
      biased1.transit_bytes < uniform.transit_bytes &&
      biased1.median_completion < uniform.median_completion * 2.0;
  std::printf(
      "\nshape check vs paper: %s — biased clusters by AS, stays connected\n"
      "with few inter-AS links, cuts transit traffic, and download times\n"
      "stay comparable ([3]'s headline result).\n",
      shape_ok ? "OK" : "MISMATCH");
  return shape_ok ? 0 : 1;
}
