// Shared scaffolding for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper; this header provides the
// standard experiment setups so parameters stay consistent across benches.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "netinfo/oracle.hpp"
#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

namespace uap2p::bench {

/// A fully wired Gnutella experiment: engine + topology + network + oracle
/// + overlay, mirroring [1]'s testlab (peers AS-round-robin, 1 ultrapeer
/// per 2 leaves, hostcaches filled with random subsets).
struct GnutellaLab {
  sim::Engine engine;
  underlay::AsTopology topo;
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<netinfo::Oracle> oracle;
  std::unique_ptr<overlay::gnutella::GnutellaSystem> system;

  GnutellaLab(underlay::AsTopology topology, std::size_t peer_count,
              overlay::gnutella::Config config, std::uint64_t seed = 7)
      : topo(std::move(topology)) {
    net = std::make_unique<underlay::Network>(engine, topo, seed);
    peers = net->populate(peer_count);
    netinfo::OracleConfig oracle_config;
    oracle_config.max_list_size = config.hostcache_size;
    oracle = std::make_unique<netinfo::Oracle>(*net, oracle_config);
    system = std::make_unique<overlay::gnutella::GnutellaSystem>(
        *net, peers,
        overlay::gnutella::testlab_roles(peer_count, 2, topo.as_count()),
        config, oracle.get());
    system->bootstrap();
  }

  /// Locality-correlated workload ([25]): every AS has `copies` local
  /// providers of its own content; `searches_per_as` local peers search
  /// it. Returns the number of successful searches.
  std::size_t run_locality_workload(std::size_t copies,
                                    std::size_t searches_per_as,
                                    bool download) {
    const std::size_t as_count = topo.as_count();
    for (std::size_t as = 0; as < as_count; ++as) {
      for (std::size_t copy = 0; copy < copies; ++copy) {
        const std::size_t index = as + as_count * copy;
        if (index < peers.size()) {
          system->share(peers[index], ContentId(std::uint32_t(as)));
        }
      }
    }
    system->ping_cycle();
    std::size_t successes = 0;
    for (std::size_t as = 0; as < as_count; ++as) {
      for (std::size_t s = 0; s < searches_per_as; ++s) {
        const std::size_t index = as + as_count * (copies + s);
        if (index >= peers.size()) continue;
        successes +=
            system->search(peers[index], ContentId(std::uint32_t(as)), download)
                .found;
      }
    }
    return successes;
  }

  /// Replicated random-content workload: `contents` distinct files, each
  /// shared by `copies` random peers; `searches` random peers each search
  /// and download one random file. Locality here comes only from the
  /// overlay/oracle, not from the workload.
  std::size_t run_replicated_workload(std::size_t contents, std::size_t copies,
                                      std::size_t searches, bool download,
                                      std::uint64_t seed = 3) {
    Rng rng(seed);
    for (std::uint32_t c = 0; c < contents; ++c) {
      for (const std::size_t i :
           rng.sample_without_replacement(peers.size(), copies)) {
        system->share(peers[i], ContentId(c));
      }
    }
    system->ping_cycle();
    std::size_t successes = 0;
    for (std::size_t s = 0; s < searches; ++s) {
      const PeerId searcher = peers[rng.uniform(peers.size())];
      const ContentId want(std::uint32_t(rng.uniform(contents)));
      successes += system->search(searcher, want, download).found;
    }
    return successes;
  }
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace uap2p::bench
