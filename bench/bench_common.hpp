// Shared scaffolding for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper; this header provides the
// standard experiment setups so parameters stay consistent across benches.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "netinfo/oracle.hpp"
#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

namespace uap2p::bench {

/// Process-wide bench options (set once by parse_flags before any trials).
struct Options {
  /// --serial: run every trial on the calling thread. The emitted tables
  /// must be byte-identical either way; a CTest target diffs the two.
  bool serial = false;
};

inline Options& options() {
  static Options instance;
  return instance;
}

/// Parses the shared bench flags (currently just --serial); call first
/// thing in main. Unrecognized arguments are left alone.
inline void parse_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--serial") options().serial = true;
  }
}

/// Runs `count` independent trials across the process-wide thread pool and
/// returns their results in trial-index order.
///
/// Determinism contract (see DESIGN.md "Performance model"):
///  * per-trial seeds are derived *serially* from `base_seed` via
///    Rng::split_seed before any trial is dispatched, so seed assignment
///    cannot depend on scheduling;
///  * each trial must be self-contained — build its own Engine / Network /
///    overlay from `fn(trial_index, trial_seed)` and share no mutable
///    state with other trials;
///  * results are gathered by index (parallel_map), so consumers see them
///    exactly as a serial loop would have produced them.
/// Under these rules the emitted tables are bit-identical between
/// `--serial` and the default parallel run — only wall-clock differs.
///
/// `threads` caps trial concurrency (0 = hardware concurrency); the
/// --serial flag overrides it to 1.
template <typename Fn>
auto run_trials(std::size_t count, std::uint64_t base_seed, Fn&& fn,
                std::size_t threads = 0) {
  Rng master(base_seed);
  std::vector<std::uint64_t> seeds(count);
  for (std::uint64_t& seed : seeds) seed = master.split_seed();
  return parallel_map(
      count, [&](std::size_t i) { return fn(i, seeds[i]); },
      options().serial ? 1 : threads);
}

/// A fully wired Gnutella experiment: engine + topology + network + oracle
/// + overlay, mirroring [1]'s testlab (peers AS-round-robin, 1 ultrapeer
/// per 2 leaves, hostcaches filled with random subsets).
struct GnutellaLab {
  sim::Engine engine;
  underlay::AsTopology topo;
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<netinfo::Oracle> oracle;
  std::unique_ptr<overlay::gnutella::GnutellaSystem> system;

  /// `seed` is the trial seed (required — parallel trials must not share
  /// RNG streams); the network, overlay, and workload streams are derived
  /// from it via Rng::split_seed so they stay decorrelated.
  GnutellaLab(underlay::AsTopology topology, std::size_t peer_count,
              overlay::gnutella::Config config, std::uint64_t seed)
      : topo(std::move(topology)), workload_rng_(0) {
    Rng derive(seed);
    net = std::make_unique<underlay::Network>(engine, topo, derive.split_seed());
    config.seed = derive.split_seed();
    workload_rng_ = Rng(derive.split_seed());
    peers = net->populate(peer_count);
    netinfo::OracleConfig oracle_config;
    oracle_config.max_list_size = config.hostcache_size;
    oracle = std::make_unique<netinfo::Oracle>(*net, oracle_config);
    system = std::make_unique<overlay::gnutella::GnutellaSystem>(
        *net, peers,
        overlay::gnutella::testlab_roles(peer_count, 2, topo.as_count()),
        config, oracle.get());
    system->bootstrap();
  }

  /// Locality-correlated workload ([25]): every AS has `copies` local
  /// providers of its own content; `searches_per_as` local peers search
  /// it. Returns the number of successful searches.
  std::size_t run_locality_workload(std::size_t copies,
                                    std::size_t searches_per_as,
                                    bool download) {
    const std::size_t as_count = topo.as_count();
    for (std::size_t as = 0; as < as_count; ++as) {
      for (std::size_t copy = 0; copy < copies; ++copy) {
        const std::size_t index = as + as_count * copy;
        if (index < peers.size()) {
          system->share(peers[index], ContentId(std::uint32_t(as)));
        }
      }
    }
    system->ping_cycle();
    std::size_t successes = 0;
    for (std::size_t as = 0; as < as_count; ++as) {
      for (std::size_t s = 0; s < searches_per_as; ++s) {
        const std::size_t index = as + as_count * (copies + s);
        if (index >= peers.size()) continue;
        successes +=
            system->search(peers[index], ContentId(std::uint32_t(as)), download)
                .found;
      }
    }
    return successes;
  }

  /// Replicated random-content workload: `contents` distinct files, each
  /// shared by `copies` random peers; `searches` random peers each search
  /// and download one random file. Locality here comes only from the
  /// overlay/oracle, not from the workload. Draws from the lab's own
  /// seed-derived workload stream, so concurrent labs stay independent.
  std::size_t run_replicated_workload(std::size_t contents, std::size_t copies,
                                      std::size_t searches, bool download) {
    Rng& rng = workload_rng_;
    for (std::uint32_t c = 0; c < contents; ++c) {
      for (const std::size_t i :
           rng.sample_without_replacement(peers.size(), copies)) {
        system->share(peers[i], ContentId(c));
      }
    }
    system->ping_cycle();
    std::size_t successes = 0;
    for (std::size_t s = 0; s < searches; ++s) {
      const PeerId searcher = peers[rng.uniform(peers.size())];
      const ContentId want(std::uint32_t(rng.uniform(contents)));
      successes += system->search(searcher, want, download).found;
    }
    return successes;
  }

  /// Per-lab workload stream (derived from the trial seed in the ctor).
  Rng workload_rng_;
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace uap2p::bench
