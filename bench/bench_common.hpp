// Shared scaffolding for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper; this header provides the
// standard experiment setups so parameters stay consistent across benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "netinfo/oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"
#include "sim/sharded_engine.hpp"
#include "underlay/network.hpp"
#include "underlay/snapshot.hpp"

namespace uap2p::bench {

/// Process-wide bench options (set once by parse_flags before any trials).
struct Options {
  /// --serial: run every trial on the calling thread. The emitted tables
  /// must be byte-identical either way; a CTest target diffs the two.
  bool serial = false;
  /// --metrics=<path>: collect per-trial MetricsRegistry snapshots and
  /// write the deterministically merged JSON there at dump_observability.
  /// Byte-identical between --serial and parallel runs (CTest gate).
  std::string metrics_path;
  /// Collection switch (set by --metrics; tests flip it directly).
  bool collect_metrics = false;
  /// --trace=<path>: JSONL trace of the first trial of the first
  /// run_trials call (one deterministic trial keeps the file bounded and
  /// single-writer).
  std::string trace_path;
  /// --seed-offset=N: added to every run_trials base seed. 0 (the
  /// default) reproduces the canonical tables; any other value perturbs
  /// every RNG stream — the tracediff-self-check gate uses it to prove
  /// that uap2p_tracediff actually detects behavioral divergence.
  std::uint64_t seed_offset = 0;
  /// --shards=N: per-AS engine shards inside each scenario (conservative
  /// parallel sync, DESIGN.md "Sharded engine"). 1 (the default) is the
  /// serial baseline; the sharded-serial-identical gates diff trace and
  /// metrics between --shards=1 and --shards=4.
  std::size_t shards = 1;
  /// --snapshot-dir=<dir> (or UAP2P_SNAPSHOT_DIR when the flag is absent):
  /// cache of persistent warmed-routing snapshots, keyed by (generator
  /// name, generator params, topology seed). Empty (the default) disables
  /// the cache — every bench builds its routing fresh, exactly as before.
  std::string snapshot_dir;
  /// --metrics-every=<sim ms>: periodic metrics snapshots during the
  /// first trial, written as <dash dir>/metrics_NNNNNN.json every N sim
  /// milliseconds (one claimant, single-shard runs only — the same
  /// single-writer rule as --trace). 0 disables.
  double metrics_every_ms = 0.0;
  /// --dash=<dir>: output directory for the periodic snapshots (and the
  /// natural --out for a follow-up uap2p_dash run). Created on demand.
  std::string dash_dir;
};

inline Options& options() {
  static Options instance;
  return instance;
}

/// Parses the shared bench flags (--serial, --metrics=, --trace=); call
/// first thing in main. Unrecognized arguments are left alone.
inline void parse_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--serial") {
      options().serial = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      options().metrics_path = std::string(arg.substr(10));
      options().collect_metrics = !options().metrics_path.empty();
    } else if (arg.rfind("--trace=", 0) == 0) {
      options().trace_path = std::string(arg.substr(8));
    } else if (arg.rfind("--seed-offset=", 0) == 0) {
      options().seed_offset =
          std::strtoull(std::string(arg.substr(14)).c_str(), nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      options().shards = std::max<std::size_t>(
          1, std::strtoull(std::string(arg.substr(9)).c_str(), nullptr, 10));
    } else if (arg.rfind("--snapshot-dir=", 0) == 0) {
      options().snapshot_dir = std::string(arg.substr(15));
    } else if (arg.rfind("--metrics-every=", 0) == 0) {
      options().metrics_every_ms =
          std::strtod(std::string(arg.substr(16)).c_str(), nullptr);
    } else if (arg.rfind("--dash=", 0) == 0) {
      options().dash_dir = std::string(arg.substr(7));
    }
  }
  if (options().metrics_every_ms > 0.0 && !options().dash_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options().dash_dir, ec);
  }
  if (options().snapshot_dir.empty()) {
    if (const char* env = std::getenv("UAP2P_SNAPSHOT_DIR")) {
      options().snapshot_dir = env;
    }
  }
}

/// Cache filename for a (generator, params, seed) routing key:
/// "<generator>_<params>_seed<seed>_fmt<version>.uap2psnap" with every
/// character outside [A-Za-z0-9._-] mapped to '-' so arbitrary param
/// strings stay filesystem-safe. The snapshot format version is part of
/// the key: after a format bump, old cache files become clean misses
/// (first run re-warms and writes the new name) instead of load-time
/// rejections, so a stale-format cache never silently eats a full
/// re-warm on every run without the miss being visible in the dir.
inline std::string snapshot_cache_name(std::string_view generator,
                                       std::string_view params,
                                       std::uint64_t seed) {
  std::string name;
  name.reserve(generator.size() + params.size() + 40);
  name.append(generator).push_back('_');
  name.append(params);
  name += "_seed" + std::to_string(seed);
  name += "_fmt" + std::to_string(underlay::snapshot::kFormatVersion);
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '-';
  }
  return name + ".uap2psnap";
}

/// Load-else-build a SharedRouting through the --snapshot-dir cache.
///
/// With no cache dir configured this is exactly SharedRouting::build. With
/// one, the first run for a key pays the full warm-up and serializes it;
/// later runs mmap-load the rows in O(ms) with zero Dijkstra. Any mismatch
/// (corruption, version skew, a topology change that moved the CSR bytes)
/// falls back to a fresh build and rewrites the cache entry, so a stale
/// cache can cost time but never correctness: the load path byte-compares
/// the stored CSR against the topology generated *now* from the caller's
/// params, and the adopted rows were themselves byte-identical to a fresh
/// warm at write time (snapshot-roundtrip gate).
///
/// `generator`/`params`/`seed` must uniquely describe how `topology` was
/// generated — they are the cache key.
inline std::shared_ptr<const underlay::SharedRouting> shared_routing_cached(
    std::string_view generator, std::string_view params, std::uint64_t seed,
    underlay::AsTopology topology, std::size_t threads = 0) {
  const std::string& dir = options().snapshot_dir;
  if (dir.empty()) {
    return underlay::SharedRouting::build(std::move(topology), threads);
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const std::string path =
      (std::filesystem::path(dir) / snapshot_cache_name(generator, params, seed))
          .string();
  std::string error;
  if (std::filesystem::exists(path, ec)) {
    if (auto loaded = underlay::SharedRouting::load(topology, path, threads,
                                                    &error)) {
      return loaded;
    }
    std::fprintf(stderr, "snapshot cache: %s rejected (%s); rebuilding\n",
                 path.c_str(), error.c_str());
  }
  auto built = underlay::SharedRouting::build(std::move(topology), threads);
  // Cache write is best-effort: a read-only or full disk must not fail the
  // bench, it just keeps paying the warm-up.
  if (!underlay::snapshot::write(built->topology(), built->table(), path,
                                 &error)) {
    std::fprintf(stderr, "snapshot cache: write %s failed (%s)\n",
                 path.c_str(), error.c_str());
  }
  return built;
}

namespace detail {
/// Which trial the calling thread is currently executing (set by
/// run_trials around fn). Lets labs/helpers key their metric submissions
/// without threading identifiers through every bench.
struct TrialContext {
  bool in_trial = false;
  std::uint64_t group = 0;  ///< run_trials invocation, in call order
  std::size_t index = 0;    ///< trial index within the invocation
};
inline TrialContext& trial_context() {
  thread_local TrialContext ctx;
  return ctx;
}
}  // namespace detail

/// Gathers per-trial metric registries and merges them in (group, index)
/// order — the order a serial run would have produced them — so the
/// merged snapshot is byte-identical regardless of scheduling.
class TrialMetrics {
 public:
  void submit(std::uint64_t group, std::size_t index,
              obs::MetricsRegistry&& registry) {
    std::lock_guard lock(mutex_);
    entries_.push_back(Entry{group, index, std::move(registry)});
  }

  std::uint64_t next_group() {
    std::lock_guard lock(mutex_);
    return next_group_++;
  }

  /// Deterministic merge of everything submitted so far.
  [[nodiscard]] obs::MetricsRegistry merged() {
    std::lock_guard lock(mutex_);
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.group != b.group ? a.group < b.group
                                                 : a.index < b.index;
                     });
    obs::MetricsRegistry out;
    for (const Entry& entry : entries_) out.merge(entry.registry);
    return out;
  }

  void reset() {
    std::lock_guard lock(mutex_);
    entries_.clear();
    next_group_ = 0;
  }

 private:
  struct Entry {
    std::uint64_t group;
    std::size_t index;
    obs::MetricsRegistry registry;
  };
  std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t next_group_ = 0;
};

inline TrialMetrics& trial_metrics() {
  static TrialMetrics instance;
  return instance;
}

/// Submits a trial's registry keyed by the calling thread's trial
/// identity. No-op unless metrics collection is on.
inline void submit_trial_metrics(obs::MetricsRegistry&& registry) {
  if (!options().collect_metrics) return;
  const detail::TrialContext& ctx = detail::trial_context();
  trial_metrics().submit(ctx.group, ctx.in_trial ? ctx.index : 0,
                         std::move(registry));
}

/// Standard teardown submission for benches that wire Engine/Network by
/// hand instead of through GnutellaLab: exports engine + traffic counters
/// into a fresh registry and submits it. Call at the end of the trial fn.
inline void submit_engine_metrics(const sim::Engine& engine,
                                  const underlay::Network& net) {
  if (!options().collect_metrics) return;
  obs::MetricsRegistry registry;
  engine.export_metrics(registry);
  net.traffic().export_metrics(registry);
  submit_trial_metrics(std::move(registry));
}

namespace detail {
inline std::unique_ptr<obs::JsonlTraceSink>& trace_sink_storage() {
  static std::unique_ptr<obs::JsonlTraceSink> sink;
  return sink;
}
inline bool& periodic_snapshots_claimed() {
  static bool claimed = false;
  return claimed;
}
}  // namespace detail

/// Claims the --metrics-every periodic-snapshot role for the calling
/// lab/trial. True exactly once per process, for the first trial of the
/// first run_trials group (or the first lab built outside run_trials) —
/// one deterministic writer, same rule as acquire_trial_trace.
inline bool claim_periodic_snapshots() {
  if (options().metrics_every_ms <= 0.0 || options().dash_dir.empty())
    return false;
  const detail::TrialContext& ctx = detail::trial_context();
  if (ctx.in_trial && (ctx.group != 0 || ctx.index != 0)) return false;
  if (detail::periodic_snapshots_claimed()) return false;
  detail::periodic_snapshots_claimed() = true;
  return true;
}

/// Writes one numbered periodic snapshot (metrics_000000.json, ...) into
/// --dash. `seq` is the claimant's own firing counter.
inline bool write_periodic_snapshot(const obs::MetricsRegistry& registry,
                                    std::size_t seq) {
  char name[32];
  std::snprintf(name, sizeof name, "metrics_%06zu.json", seq);
  const std::string path =
      (std::filesystem::path(options().dash_dir) / name).string();
  if (registry.write_json_file(path)) return true;
  std::fprintf(stderr, "error: failed to write periodic snapshot %s\n",
               path.c_str());
  return false;
}

/// Claims the --trace JSONL sink. Non-null exactly once, for the first
/// claimant inside trial 0 of the first run_trials call — one trial, one
/// engine, one writer, so the emitted timestamps are monotone and the
/// file is identical between --serial and parallel runs. The sink stays
/// alive until dump_observability().
inline obs::TraceSink* acquire_trial_trace() {
  if (options().trace_path.empty()) return nullptr;
  const detail::TrialContext& ctx = detail::trial_context();
  if (!ctx.in_trial || ctx.group != 0 || ctx.index != 0) return nullptr;
  if (detail::trace_sink_storage() != nullptr) return nullptr;  // claimed
  detail::trace_sink_storage() =
      std::make_unique<obs::JsonlTraceSink>(options().trace_path);
  return detail::trace_sink_storage()->ok()
             ? detail::trace_sink_storage().get()
             : nullptr;
}

/// Writes the merged --metrics snapshot and closes the --trace sink.
/// Call once at the end of main; returns 0 on success (benches fold it
/// into their exit code so CI notices I/O failures).
inline int dump_observability() {
  int rc = 0;
  if (options().collect_metrics && !options().metrics_path.empty()) {
    const obs::MetricsRegistry merged = trial_metrics().merged();
    if (!merged.write_json_file(options().metrics_path)) {
      std::fprintf(stderr, "error: failed to write metrics to %s\n",
                   options().metrics_path.c_str());
      rc = 1;
    }
  }
  detail::trace_sink_storage().reset();  // flush + close
  return rc;
}

/// Runs `count` independent trials across the process-wide thread pool and
/// returns their results in trial-index order.
///
/// Determinism contract (see DESIGN.md "Performance model"):
///  * per-trial seeds are derived *serially* from `base_seed` via
///    Rng::split_seed before any trial is dispatched, so seed assignment
///    cannot depend on scheduling;
///  * each trial must be self-contained — build its own Engine / Network /
///    overlay from `fn(trial_index, trial_seed)` and share no mutable
///    state with other trials;
///  * results are gathered by index (parallel_map), so consumers see them
///    exactly as a serial loop would have produced them.
/// Under these rules the emitted tables are bit-identical between
/// `--serial` and the default parallel run — only wall-clock differs.
///
/// `threads` caps trial concurrency (0 = hardware concurrency); the
/// --serial flag overrides it to 1.
template <typename Fn>
auto run_trials(std::size_t count, std::uint64_t base_seed, Fn&& fn,
                std::size_t threads = 0) {
  Rng master(base_seed + options().seed_offset);
  std::vector<std::uint64_t> seeds(count);
  for (std::uint64_t& seed : seeds) seed = master.split_seed();
  // Group ids are handed out in call order on the calling thread, so they
  // are scheduling-independent and the metrics merge order matches a
  // serial run exactly.
  const std::uint64_t group = trial_metrics().next_group();
  return parallel_map(
      count,
      [&, group](std::size_t i) {
        struct ContextGuard {
          ContextGuard(std::uint64_t g, std::size_t idx) {
            detail::TrialContext& ctx = detail::trial_context();
            ctx.in_trial = true;
            ctx.group = g;
            ctx.index = idx;
          }
          ~ContextGuard() { detail::trial_context().in_trial = false; }
        } guard(group, i);
        return fn(i, seeds[i]);
      },
      options().serial ? 1 : threads);
}

/// A fully wired Gnutella experiment: engine + topology + network + oracle
/// + overlay, mirroring [1]'s testlab (peers AS-round-robin, 1 ultrapeer
/// per 2 leaves, hostcaches filled with random subsets).
struct GnutellaLab {
  /// Per-AS shard engines (sim::EngineGroup). One shard — the default —
  /// is the serial baseline; every pre-existing bench runs there.
  sim::EngineGroup engines;
  /// Shard 0, kept as a reference so single-engine call sites
  /// (lab.engine.now(), lab.engine.run_until(...)) read unchanged. In
  /// driver code all shard clocks agree, so shard 0 is "the" clock.
  sim::Engine& engine;
  /// Group-wide immutable routing snapshot (null in owned-topology mode).
  std::shared_ptr<const underlay::SharedRouting> shared;
  underlay::AsTopology topo;  ///< Owned-mode storage; empty in shared mode.
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<netinfo::Oracle> oracle;
  std::unique_ptr<overlay::gnutella::GnutellaSystem> system;

  /// `seed` is the trial seed (required — parallel trials must not share
  /// RNG streams); the network, overlay, and workload streams are derived
  /// from it via Rng::split_seed so they stay decorrelated. `shards` = 0
  /// (the default) takes the --shards flag.
  GnutellaLab(underlay::AsTopology topology, std::size_t peer_count,
              overlay::gnutella::Config config, std::uint64_t seed,
              std::size_t shards = 0)
      : engines(shards != 0 ? shards : options().shards),
        engine(engines.shard(0)),
        topo(std::move(topology)),
        workload_rng_(0) {
    Rng derive(seed);
    net = std::make_unique<underlay::Network>(engines, topo,
                                              derive.split_seed());
    init(peer_count, std::move(config), derive);
  }

  /// Shared-routing mode: trials of a group borrow one warmed snapshot
  /// (underlay::SharedRouting::build) instead of each re-deriving an
  /// identical topology and re-running Dijkstra. The RNG derivation order
  /// is the same as the owned ctor, so behavior is byte-identical.
  GnutellaLab(std::shared_ptr<const underlay::SharedRouting> routing,
              std::size_t peer_count, overlay::gnutella::Config config,
              std::uint64_t seed, std::size_t shards = 0)
      : engines(shards != 0 ? shards : options().shards),
        engine(engines.shard(0)),
        shared(std::move(routing)),
        workload_rng_(0) {
    Rng derive(seed);
    net = std::make_unique<underlay::Network>(engines, shared,
                                              derive.split_seed());
    init(peer_count, std::move(config), derive);
  }

  /// The lab's topology, whichever mode owns it.
  [[nodiscard]] const underlay::AsTopology& topology() const {
    return net->topology();
  }

  /// Runs before member destruction, so engine/net/system are still alive:
  /// finalize and hand the trial's registry to the process-wide collector.
  ~GnutellaLab() {
    if (!options().collect_metrics) return;
    if (engines.size() == 1) {
      // Byte-identical to the pre-sharding export: one engine, one
      // delivery lane, no side registries to fold in.
      engine.export_metrics(metrics);
      net->traffic().export_metrics(metrics);
    } else {
      engines.export_metrics(metrics);
      net->export_traffic(metrics);
      net->merge_side_metrics(metrics);
      system->collect_shard_metrics(metrics);
    }
    submit_trial_metrics(std::move(metrics));
  }

  GnutellaLab(const GnutellaLab&) = delete;
  GnutellaLab& operator=(const GnutellaLab&) = delete;

  /// Per-trial registry; counters bound at construction, engine/traffic
  /// snapshots added and the whole thing submitted at destruction.
  obs::MetricsRegistry metrics;

  /// Locality-correlated workload ([25]): every AS has `copies` local
  /// providers of its own content; `searches_per_as` local peers search
  /// it. Returns the number of successful searches.
  std::size_t run_locality_workload(std::size_t copies,
                                    std::size_t searches_per_as,
                                    bool download) {
    const std::size_t as_count = topology().as_count();
    for (std::size_t as = 0; as < as_count; ++as) {
      for (std::size_t copy = 0; copy < copies; ++copy) {
        const std::size_t index = as + as_count * copy;
        if (index < peers.size()) {
          system->share(peers[index], ContentId(std::uint32_t(as)));
        }
      }
    }
    system->ping_cycle();
    std::size_t successes = 0;
    for (std::size_t as = 0; as < as_count; ++as) {
      for (std::size_t s = 0; s < searches_per_as; ++s) {
        const std::size_t index = as + as_count * (copies + s);
        if (index >= peers.size()) continue;
        successes +=
            system->search(peers[index], ContentId(std::uint32_t(as)), download)
                .found;
      }
    }
    return successes;
  }

  /// Replicated random-content workload: `contents` distinct files, each
  /// shared by `copies` random peers; `searches` random peers each search
  /// and download one random file. Locality here comes only from the
  /// overlay/oracle, not from the workload. Draws from the lab's own
  /// seed-derived workload stream, so concurrent labs stay independent.
  std::size_t run_replicated_workload(std::size_t contents, std::size_t copies,
                                      std::size_t searches, bool download) {
    Rng& rng = workload_rng_;
    for (std::uint32_t c = 0; c < contents; ++c) {
      for (const std::size_t i :
           rng.sample_without_replacement(peers.size(), copies)) {
        system->share(peers[i], ContentId(c));
      }
    }
    system->ping_cycle();
    std::size_t successes = 0;
    for (std::size_t s = 0; s < searches; ++s) {
      const PeerId searcher = peers[rng.uniform(peers.size())];
      const ContentId want(std::uint32_t(rng.uniform(contents)));
      successes += system->search(searcher, want, download).found;
    }
    return successes;
  }

  /// Per-lab workload stream (derived from the trial seed in the ctor).
  Rng workload_rng_;

 private:
  /// Firing counter for --metrics-every snapshot filenames.
  std::size_t snapshot_seq_ = 0;
  /// Shared ctor tail; `derive` has already produced the network seed, so
  /// the split_seed draw order (net, overlay config, workload) is
  /// identical in both modes.
  void init(std::size_t peer_count, overlay::gnutella::Config config,
            Rng& derive) {
    config.seed = derive.split_seed();
    workload_rng_ = Rng(derive.split_seed());
    peers = net->populate(peer_count);
    netinfo::OracleConfig oracle_config;
    oracle_config.max_list_size = config.hostcache_size;
    oracle = std::make_unique<netinfo::Oracle>(*net, oracle_config);
    system = std::make_unique<overlay::gnutella::GnutellaSystem>(
        *net, peers,
        overlay::gnutella::testlab_roles(peer_count, 2, topology().as_count()),
        config, oracle.get());
    if (options().collect_metrics) {
      net->set_metrics(&metrics);
      system->bind_metrics(metrics);
    }
    // Per-AS-pair attribution whenever metrics leave the process: the
    // matrix rides the same export/merge paths as the scalar accountant,
    // so sharded runs stay byte-identical to serial ones.
    if (options().collect_metrics || options().metrics_every_ms > 0.0) {
      net->enable_traffic_matrix();
    }
    // --metrics-every periodic snapshots: the claiming lab exports its
    // full current state every N sim ms into --dash. Single-shard only
    // (reading other lanes' accountants mid-window would race).
    if (engines.size() == 1 && claim_periodic_snapshots()) {
      engine.schedule_every(options().metrics_every_ms, [this] {
        obs::MetricsRegistry snap;
        engine.export_metrics(snap);
        net->traffic().export_metrics(snap);
        snap.merge(metrics);
        write_periodic_snapshot(snap, snapshot_seq_++);
        return true;
      });
    }
    // A JSONL sink is single-writer; sharded runs capture traces through
    // obs::ShardedTraceMux instead (bench_sharded_gate wires it by hand).
    if (obs::TraceSink* trace = acquire_trial_trace();
        trace != nullptr && engines.size() == 1) {
      engine.set_trace(trace);
      net->set_trace(trace);
      system->set_trace(trace);
    }
    system->bootstrap();
  }
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace uap2p::bench
