// §5 of [1] (testlab experiments, quoted in the survey): 45 Gnutella
// nodes over 5-AS topologies (ring, star, tree, random mesh), 1 ultrapeer
// per 2 leaves, hostcaches filled with random subsets. Measured: the
// percentage of file-content exchanges that stay within an AS, for
//   (a) unbiased Gnutella                      (paper:  6.5%)
//   (b) oracle at bootstrap, list size 100     (paper:  7.3%)
//   (c) oracle at bootstrap, list size 1000    (paper: 10.02%)
//   (d) oracle also at the file-exchange stage (paper: 40.57%)
// The shape to reproduce: (a) < (b) < (c) << (d), with (d) a multiple.
#include "bench_common.hpp"

using namespace uap2p;
using namespace uap2p::overlay::gnutella;

namespace {

double run_scheme(underlay::AsTopology base, NeighborSelection sel,
                  std::size_t cache, bool oracle_exchange,
                  std::uint64_t seed) {
  Config config;
  config.selection = sel;
  config.hostcache_size = cache;
  config.oracle_at_file_exchange = oracle_exchange;
  bench::GnutellaLab lab(std::move(base), 45, config, seed);

  // Content catalogue after [1]'s testlab: 270 unique files spread over
  // the nodes (6 per node in the uniform scheme), with popular files
  // replicated — replication is what makes the file-exchange-stage oracle
  // matter, since a local replica must exist to be preferred.
  Rng rng(seed ^ 0x5eed);
  constexpr std::size_t kFiles = 90;
  constexpr std::size_t kReplicas = 5;
  for (std::uint32_t file = 0; file < kFiles; ++file) {
    for (const std::size_t i :
         rng.sample_without_replacement(lab.peers.size(), kReplicas)) {
      lab.system->share(lab.peers[i], ContentId(file));
    }
  }
  lab.system->ping_cycle();

  // Every node searches for uniformly random files (the testlab's
  // per-node search strings were unique, i.e. NOT locality-biased) and
  // downloads from one QueryHit provider.
  int intra = 0, downloads = 0;
  for (std::size_t round = 0; round < 3; ++round) {
    for (const PeerId searcher : lab.peers) {
      const ContentId want(std::uint32_t(rng.uniform(kFiles)));
      const SearchOutcome outcome = lab.system->search(searcher, want, true);
      if (outcome.downloaded) {
        ++downloads;
        intra += outcome.download_intra_as ? 1 : 0;
      }
    }
  }
  return downloads == 0 ? 0.0 : 100.0 * intra / downloads;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header(
      "bench_testlab_filexchange",
      "[1] §5 testlab: intra-AS file exchange percentage, 45 nodes, 5 ASes");

  TablePrinter table({"topology", "unbiased_%", "oracle_c100_%",
                      "oracle_c1000_%", "oracle_both_stages_%"});
  struct Scheme {
    NeighborSelection selection;
    std::size_t cache;
    bool oracle_exchange;
  };
  const Scheme schemes[] = {{NeighborSelection::kRandom, 1000, false},
                            {NeighborSelection::kOracleBiased, 100, false},
                            {NeighborSelection::kOracleBiased, 1000, false},
                            {NeighborSelection::kOracleBiased, 1000, true}};
  const char* const topo_names[] = {"ring", "star", "tree", "random mesh"};
  constexpr std::size_t kSchemes = std::size(schemes);
  constexpr std::size_t kTopos = std::size(topo_names);

  // One trial per (topology, scheme) cell; each builds its own topology so
  // trials share nothing. Seeds are derived serially by run_trials.
  const auto cells = bench::run_trials(
      kTopos * kSchemes, /*base_seed=*/100,
      [&](std::size_t trial, std::uint64_t seed) {
        const std::size_t t = trial / kSchemes;
        const Scheme& scheme = schemes[trial % kSchemes];
        underlay::AsTopology topo =
            t == 0   ? underlay::AsTopology::ring(5)
            : t == 1 ? underlay::AsTopology::star(5)
            : t == 2 ? underlay::AsTopology::tree(5, 2)
                     : underlay::AsTopology::mesh(5, 0.4);
        return run_scheme(std::move(topo), scheme.selection, scheme.cache,
                          scheme.oracle_exchange, seed);
      });

  double sum_unbiased = 0, sum_c100 = 0, sum_c1000 = 0, sum_both = 0;
  int rows = 0;
  for (std::size_t t = 0; t < kTopos; ++t) {
    const double unbiased = cells[t * kSchemes + 0];
    const double c100 = cells[t * kSchemes + 1];
    const double c1000 = cells[t * kSchemes + 2];
    const double both = cells[t * kSchemes + 3];
    auto row = table.row();
    row.cell(topo_names[t]).cell(unbiased, 1).cell(c100, 1).cell(c1000, 1)
        .cell(both, 1);
    sum_unbiased += unbiased;
    sum_c100 += c100;
    sum_c1000 += c1000;
    sum_both += both;
    ++rows;
  }
  {
    auto row = table.row();
    row.cell("mean")
        .cell(sum_unbiased / rows, 1)
        .cell(sum_c100 / rows, 1)
        .cell(sum_c1000 / rows, 1)
        .cell(sum_both / rows, 1);
  }
  table.print("intra-AS share of file-content exchanges");
  std::printf(
      "\npaper (Gnutella testlab): 6.5%% unbiased -> 7.3%% (oracle list 100)\n"
      "-> 10.02%% (oracle list 1000) -> 40.57%% when the oracle is also\n"
      "consulted at the file-exchange stage.\n");
  const double mean_unbiased = sum_unbiased / rows;
  const double mean_both = sum_both / rows;
  const bool shape_ok = mean_unbiased < sum_c1000 / rows &&
                        mean_both > 2.5 * mean_unbiased &&
                        mean_both > sum_c1000 / rows;
  std::printf("shape check vs paper: %s (both-stages gain: %.1fx)\n",
              shape_ok ? "OK" : "MISMATCH",
              mean_unbiased > 0 ? mean_both / mean_unbiased : 0.0);
  const int obs_rc = bench::dump_observability();
  return shape_ok && obs_rc == 0 ? 0 : 1;
}
