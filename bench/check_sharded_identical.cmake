# sharded-serial-identical gate: a scenario run under --shards=4 must be
# indistinguishable from the --shards=1 serial baseline —
#   * the --metrics snapshot byte-identical (cmake -E compare_files); the
#     bench exports only shard-count-invariant counters, so any delta is
#     a lost/duplicated/reordered event;
#   * the --trace JSONL diff-empty under uap2p_tracediff (timestamp
#     groups in order, per-group multiset equality with event tags
#     masked — tags are allocator ids, the records themselves must match).
#
# Usage: cmake -DBENCH=<bench_sharded_gate> -DTRACEDIFF=<uap2p_tracediff>
#        -DSCENARIO=<gnutella|kademlia> -DWORKDIR=<dir>
#        -P check_sharded_identical.cmake
foreach(var BENCH TRACEDIFF SCENARIO WORKDIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

set(serial_metrics "${WORKDIR}/sharded_gate.${SCENARIO}.s1.metrics.json")
set(sharded_metrics "${WORKDIR}/sharded_gate.${SCENARIO}.s4.metrics.json")
set(serial_trace "${WORKDIR}/sharded_gate.${SCENARIO}.s1.trace.jsonl")
set(sharded_trace "${WORKDIR}/sharded_gate.${SCENARIO}.s4.trace.jsonl")

execute_process(COMMAND "${BENCH}" "--scenario=${SCENARIO}" --shards=1
  "--metrics=${serial_metrics}" "--trace=${serial_trace}"
  OUTPUT_QUIET RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --shards=1 exited with ${serial_rc}")
endif()

execute_process(COMMAND "${BENCH}" "--scenario=${SCENARIO}" --shards=4
  "--metrics=${sharded_metrics}" "--trace=${sharded_trace}"
  OUTPUT_QUIET RESULT_VARIABLE sharded_rc)
if(NOT sharded_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --shards=4 exited with ${sharded_rc}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${serial_metrics}" "${sharded_metrics}"
  RESULT_VARIABLE metrics_diff)
if(NOT metrics_diff EQUAL 0)
  message(FATAL_ERROR
    "${SCENARIO}: --metrics snapshot differs between --shards=1 and "
    "--shards=4 (${serial_metrics} vs ${sharded_metrics})")
endif()

execute_process(COMMAND "${TRACEDIFF}" "${serial_trace}" "${sharded_trace}"
  OUTPUT_VARIABLE diff_out ERROR_VARIABLE diff_err
  RESULT_VARIABLE trace_rc)
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR
    "${SCENARIO}: trace differs between --shards=1 and --shards=4 "
    "(rc=${trace_rc}):\n${diff_out}${diff_err}")
endif()
if(NOT "${diff_out}${diff_err}" STREQUAL "")
  message(FATAL_ERROR
    "${SCENARIO}: tracediff of identical shard counts should be silent, "
    "got:\n${diff_out}${diff_err}")
endif()
message(STATUS
  "${SCENARIO}: --shards=1 and --shards=4 trace + metrics are identical")
