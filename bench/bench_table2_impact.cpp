// Table 2 — "Impact of underlay awareness on Internet users and ISPs",
// the survey's qualitative ++/+/o matrix, regenerated from measurements:
// the same workload runs once per awareness dimension (each a
// NeighborRankingPolicy from the core framework), and measured deltas
// against the unaware baseline are mapped back to the paper's symbols
// (++ = large improvement, + = small, o = neutral).
//
// Measured columns:
//   download time  — fetch a 4 MB file from the policy's top-ranked
//                    provider (upload bandwidth + path latency dominate)
//   delay          — mean RTT to the policy's chosen overlay neighbors
//   ISP costs      — transit byte-crossings charged for the workload
//   resilience     — 2-hop search success after churn has removed peers
#include <cmath>

#include "bench_common.hpp"
#include "core/underlay_service.hpp"
#include "sim/churn.hpp"

using namespace uap2p;

namespace {

struct Metrics {
  double download_ms = 0.0;
  double neighbor_rtt_ms = 0.0;
  double transit_mb = 0.0;
  double resilience = 0.0;  // search success fraction under churn
};

constexpr std::size_t kPeers = 120;
constexpr std::size_t kNeighbors = 6;
constexpr std::uint32_t kFileBytes = 4 << 20;

Metrics run_policy(core::NeighborRankingPolicy& policy, std::uint64_t seed) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 5, 0.3);
  underlay::Network net(engine, topo, seed);
  const auto peers = net.populate(kPeers);
  if (bench::options().collect_metrics ||
      bench::options().metrics_every_ms > 0.0) {
    net.enable_traffic_matrix();
  }
  Metrics metrics;

  // Neighbor selection: each peer ranks a hostcache-like random subset of
  // 40 candidates (as a real client would; ranking the full population
  // would make every same-AS peer pick identical neighbors) and keeps the
  // policy's top-k.
  Rng cache_rng(seed ^ 0xcace);
  std::vector<std::vector<PeerId>> hostcaches(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (const std::size_t c :
         cache_rng.sample_without_replacement(peers.size(), 40)) {
      if (c != i) hostcaches[i].push_back(peers[c]);
    }
  }
  std::vector<std::vector<PeerId>> neighbors(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    auto ranked = policy.rank(peers[i], hostcaches[i]);
    ranked.resize(std::min(ranked.size(), kNeighbors));
    neighbors[i] = std::move(ranked);
  }

  // Delay column: mean neighbor RTT.
  RunningStats rtt;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (const PeerId n : neighbors[i]) rtt.add(net.rtt_ms(peers[i], n));
  }
  metrics.neighbor_rtt_ms = rtt.mean();

  // Download column: every 4th peer fetches a file; 6 random peers hold a
  // replica; the policy ranks the replica set and the top one serves.
  net.traffic().reset();
  Rng rng(seed ^ 0xf00d);
  RunningStats download;
  for (std::size_t i = 0; i < peers.size(); i += 4) {
    std::vector<PeerId> providers;
    while (providers.size() < 6) {
      const PeerId candidate = peers[rng.uniform(peers.size())];
      if (candidate != peers[i]) providers.push_back(candidate);
    }
    const auto ranked = policy.rank(peers[i], providers);
    const PeerId provider = ranked.empty() ? providers.front() : ranked.front();
    const sim::SimTime start = engine.now();
    bool done = false;
    net.set_handler(peers[i], [&](const underlay::Message&) { done = true; });
    underlay::Message file;
    file.src = provider;
    file.dst = peers[i];
    file.size_bytes = kFileBytes;
    net.send(std::move(file));
    engine.run();
    if (done) download.add(engine.now() - start);
    net.set_handler(peers[i], nullptr);
  }
  metrics.download_ms = download.mean();
  metrics.transit_mb =
      double(net.traffic().transit_link_bytes()) / (1024.0 * 1024.0);

  // Resilience column: churn removes peers; a search succeeds if any
  // online 1- or 2-hop neighbor holds the content (10% replication,
  // placed uniformly at random). The overlay repairs at each snapshot:
  // peers re-rank and keep their best online neighbors.
  std::vector<bool> holds(peers.size(), false);
  for (const std::size_t i :
       rng.sample_without_replacement(peers.size(), peers.size() / 10)) {
    holds[i] = true;
  }
  sim::ChurnConfig churn_config;
  churn_config.model = sim::SessionModel::kPareto;
  churn_config.mean_session = sim::minutes(30);
  churn_config.mean_downtime = sim::minutes(15);
  sim::ChurnProcess churn(engine, Rng(seed ^ 0xc04), churn_config);
  churn.on_leave([&](PeerId peer) { net.set_online(peer, false); });
  churn.on_join([&](PeerId peer) { net.set_online(peer, true); });
  for (const PeerId peer : peers) churn.add_peer(peer, true);
  int successes = 0, attempts = 0;
  for (int snapshot = 0; snapshot < 8; ++snapshot) {
    engine.run_until(engine.now() + sim::minutes(10));
    // Overlay repair: drop offline neighbors, refill from the ranking.
    for (std::size_t i = 0; i < peers.size(); ++i) {
      if (!net.is_online(peers[i])) continue;
      auto ranked = policy.rank(peers[i], hostcaches[i]);
      neighbors[i].clear();
      for (const PeerId candidate : ranked) {
        if (!net.is_online(candidate)) continue;
        neighbors[i].push_back(candidate);
        if (neighbors[i].size() >= kNeighbors) break;
      }
    }
    for (std::size_t i = 0; i < peers.size(); i += 3) {
      if (!net.is_online(peers[i])) continue;
      ++attempts;
      bool found = false;
      for (const PeerId n1 : neighbors[i]) {
        if (!net.is_online(n1)) continue;
        if (holds[n1.value()]) { found = true; break; }
        for (const PeerId n2 : neighbors[n1.value()]) {
          if (net.is_online(n2) && holds[n2.value()]) { found = true; break; }
        }
        if (found) break;
      }
      successes += found;
    }
  }
  metrics.resilience = attempts == 0 ? 0.0 : double(successes) / attempts;
  bench::submit_engine_metrics(engine, net);
  return metrics;
}

/// Maps a measured improvement over baseline to the paper's symbols.
/// `higher_is_better` selects the direction.
std::string symbol(double baseline, double value, bool higher_is_better) {
  if (baseline <= 0.0) return "o";
  const double gain =
      higher_is_better ? (value - baseline) / baseline
                       : (baseline - value) / baseline;
  if (gain >= 0.30) return "++";
  if (gain >= 0.08) return "+";
  return "o";
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header("bench_table2_impact",
                      "Table 2 (impact of underlay awareness, measured)");

  // A shared service environment for the policies (same topology family
  // and seed as run_policy so rankings transfer).
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 5, 0.3);
  underlay::Network net(engine, topo, 201);
  const auto peers = net.populate(kPeers);
  core::UnderlayServiceConfig service_config;
  service_config.pinger.jitter_sigma = 0.0;
  core::UnderlayService service(net, service_config);

  struct PolicyRun {
    const char* name;
    std::unique_ptr<core::NeighborRankingPolicy> policy;
    Metrics metrics;
  };
  std::vector<PolicyRun> runs;
  runs.push_back({"none (baseline)", core::make_random_policy(3), {}});
  runs.push_back({"ISP-location", core::make_isp_policy(service), {}});
  runs.push_back(
      {"Latency",
       core::make_latency_policy(service, core::LatencyMethod::kExplicitPing),
       {}});
  runs.push_back(
      {"Geolocation",
       core::make_geo_policy(service, netinfo::GeoSource::kGps), {}});
  runs.push_back({"Peer Resources", core::make_resource_policy(service), {}});

  for (auto& run : runs) {
    run.metrics = run_policy(*run.policy, 201);
  }

  TablePrinter raw({"awareness", "download_ms", "neighbor_rtt_ms",
                    "transit_MB", "resilience"});
  for (const auto& run : runs) {
    auto row = raw.row();
    row.cell(run.name)
        .cell(run.metrics.download_ms, 1)
        .cell(run.metrics.neighbor_rtt_ms, 1)
        .cell(run.metrics.transit_mb, 2)
        .cell(run.metrics.resilience, 3);
  }
  raw.print("measured metrics per awareness dimension");

  const Metrics& base = runs[0].metrics;
  TablePrinter impact({"Impact / Parameter", "ISP-location", "Latency",
                       "Geolocation", "Peer Resources", "paper row"});
  auto render = [&](const char* name, auto get, bool higher_is_better,
                    const char* paper) {
    std::vector<std::string> cells{name};
    for (std::size_t p = 1; p < runs.size(); ++p) {
      cells.push_back(
          symbol(get(base), get(runs[p].metrics), higher_is_better));
    }
    cells.push_back(paper);
    impact.add_row(std::move(cells));
  };
  render("Users: Download time",
         [](const Metrics& m) { return m.download_ms; }, false,
         "++ / o / o / ++");
  render("Users: Delay",
         [](const Metrics& m) { return m.neighbor_rtt_ms; }, false,
         "o / ++ / + / o");
  render("ISPs: ISP costs", [](const Metrics& m) { return m.transit_mb; },
         false, "++ / o / o / +");
  render("Both: Resilience", [](const Metrics& m) { return m.resilience; },
         true, "++ / ++ / o / +");
  impact.print(
      "Table 2 (measured symbols; legend ++ big effect, + small, o neutral)");

  std::printf(
      "\nnotes: the paper's 'ISP OAM' and 'New Application Areas' rows are\n"
      "qualitative (operations management and location-based services) and\n"
      "have no counterpart metric; geolocation's '+' on new applications is\n"
      "exercised functionally by examples/geo_poi_search instead.\n");

  // Shape check on the diagonal: each dimension must win its own metric.
  const bool shape_ok =
      runs[1].metrics.transit_mb < base.transit_mb * 0.7 &&       // ISP
      runs[2].metrics.neighbor_rtt_ms < base.neighbor_rtt_ms * 0.7 &&  // lat
      runs[3].metrics.neighbor_rtt_ms < base.neighbor_rtt_ms &&   // geo helps
      runs[4].metrics.download_ms < base.download_ms * 0.7;       // resources
  std::printf("shape check vs paper: %s\n", shape_ok ? "OK" : "MISMATCH");
  const int obs_rc = bench::dump_observability();
  return shape_ok ? obs_rc : 1;
}
