# Determinism check for the parallel trial harness: a converted bench must
# emit byte-identical output with and without --serial (see the
# bench::run_trials contract in bench_common.hpp / DESIGN.md).
#
# Usage: cmake -DBENCH=<path-to-bench-binary> -P check_serial_parallel.cmake
if(NOT BENCH)
  message(FATAL_ERROR "pass -DBENCH=<bench binary>")
endif()

execute_process(COMMAND "${BENCH}"
  OUTPUT_VARIABLE parallel_out
  RESULT_VARIABLE parallel_rc)
execute_process(COMMAND "${BENCH}" --serial
  OUTPUT_VARIABLE serial_out
  RESULT_VARIABLE serial_rc)

if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (parallel) exited with ${parallel_rc}")
endif()
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --serial exited with ${serial_rc}")
endif()
if(NOT parallel_out STREQUAL serial_out)
  message(FATAL_ERROR
    "${BENCH}: parallel output differs from --serial output.\n"
    "--- parallel ---\n${parallel_out}\n--- serial ---\n${serial_out}")
endif()
message(STATUS "serial and parallel outputs are byte-identical")
