# Determinism check for the parallel trial harness: a converted bench must
# emit byte-identical output — stdout AND the --metrics JSON snapshot —
# with and without --serial (see the bench::run_trials contract in
# bench_common.hpp / DESIGN.md "Observability").
#
# Usage: cmake -DBENCH=<path-to-bench-binary> [-DWORKDIR=<dir>]
#        -P check_serial_parallel.cmake
if(NOT BENCH)
  message(FATAL_ERROR "pass -DBENCH=<bench binary>")
endif()
if(NOT WORKDIR)
  set(WORKDIR "${CMAKE_CURRENT_BINARY_DIR}")
endif()

get_filename_component(bench_name "${BENCH}" NAME)
set(parallel_metrics "${WORKDIR}/${bench_name}.metrics.parallel.json")
set(serial_metrics "${WORKDIR}/${bench_name}.metrics.serial.json")

execute_process(COMMAND "${BENCH}" "--metrics=${parallel_metrics}"
  OUTPUT_VARIABLE parallel_out
  RESULT_VARIABLE parallel_rc)
execute_process(COMMAND "${BENCH}" --serial "--metrics=${serial_metrics}"
  OUTPUT_VARIABLE serial_out
  RESULT_VARIABLE serial_rc)

if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (parallel) exited with ${parallel_rc}")
endif()
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} --serial exited with ${serial_rc}")
endif()
if(NOT parallel_out STREQUAL serial_out)
  message(FATAL_ERROR
    "${BENCH}: parallel output differs from --serial output.\n"
    "--- parallel ---\n${parallel_out}\n--- serial ---\n${serial_out}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
  "${parallel_metrics}" "${serial_metrics}"
  RESULT_VARIABLE metrics_diff)
if(NOT metrics_diff EQUAL 0)
  message(FATAL_ERROR
    "${BENCH}: --metrics snapshot differs between parallel and --serial "
    "runs (${parallel_metrics} vs ${serial_metrics})")
endif()
message(STATUS "serial and parallel outputs + metrics are byte-identical")
