# tracediff-self-check: proves uap2p_tracediff in BOTH directions against
# a live bench (the --trace round-trip driver).
#
#  1. Two runs of BENCH with the same (default) seed must produce traces
#     that uap2p_tracediff calls identical — exit 0, no output.
#  2. A run with --seed-offset=1 perturbs every RNG stream; the diff
#     against the baseline must exit nonzero and its report must name the
#     first divergent record ("first divergence at t=..." with a kind=).
#
# Usage: cmake -DBENCH=<bench binary> -DTRACEDIFF=<uap2p_tracediff>
#        [-DBASELINE=<existing baseline trace>] -DWORKDIR=<dir>
#        -P check_tracediff.cmake
# When BASELINE is given (the obs-trace-gen fixture's file), run 1 reuses
# it instead of regenerating, saving one bench execution.
foreach(var BENCH TRACEDIFF WORKDIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

get_filename_component(bench_name "${BENCH}" NAME)
set(repeat_trace "${WORKDIR}/${bench_name}.tracediff.repeat.jsonl")
set(perturbed_trace "${WORKDIR}/${bench_name}.tracediff.perturbed.jsonl")

if(BASELINE)
  set(baseline_trace "${BASELINE}")
else()
  set(baseline_trace "${WORKDIR}/${bench_name}.tracediff.baseline.jsonl")
  execute_process(COMMAND "${BENCH}" "--trace=${baseline_trace}"
    OUTPUT_QUIET RESULT_VARIABLE baseline_rc)
  if(NOT baseline_rc EQUAL 0)
    message(FATAL_ERROR "${BENCH} (baseline) exited with ${baseline_rc}")
  endif()
endif()

# Direction 1: same seed, same commit -> byte-replayable -> empty diff.
execute_process(COMMAND "${BENCH}" "--trace=${repeat_trace}"
  OUTPUT_QUIET RESULT_VARIABLE repeat_rc)
if(NOT repeat_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (repeat) exited with ${repeat_rc}")
endif()
execute_process(
  COMMAND "${TRACEDIFF}" "${baseline_trace}" "${repeat_trace}"
  OUTPUT_VARIABLE same_out ERROR_VARIABLE same_err
  RESULT_VARIABLE same_rc)
if(NOT same_rc EQUAL 0)
  message(FATAL_ERROR
    "tracediff flagged two same-seed runs as divergent (rc=${same_rc}):\n"
    "${same_out}${same_err}")
endif()
if(NOT "${same_out}${same_err}" STREQUAL "")
  message(FATAL_ERROR
    "tracediff of identical runs should be silent, got:\n"
    "${same_out}${same_err}")
endif()

# Direction 2: perturbed RNG stream -> the diff must find and name the
# first divergent record. The bench's shape check may legitimately fail
# under a perturbed seed; only the trace output matters here.
execute_process(COMMAND "${BENCH}" --seed-offset=1
  "--trace=${perturbed_trace}"
  OUTPUT_QUIET ERROR_QUIET)
if(NOT EXISTS "${perturbed_trace}")
  message(FATAL_ERROR "${BENCH} --seed-offset=1 wrote no trace")
endif()
execute_process(
  COMMAND "${TRACEDIFF}" "${baseline_trace}" "${perturbed_trace}"
  OUTPUT_VARIABLE diff_out ERROR_VARIABLE diff_err
  RESULT_VARIABLE diff_rc)
if(diff_rc EQUAL 0)
  message(FATAL_ERROR
    "tracediff failed to detect a perturbed RNG stream "
    "(${baseline_trace} vs ${perturbed_trace})")
endif()
if(NOT "${diff_err}" MATCHES "first divergence at t=[0-9.]+")
  message(FATAL_ERROR
    "tracediff divergence report does not name the first divergent "
    "record's sim-time:\n${diff_err}")
endif()
if(NOT "${diff_err}" MATCHES "kind=[a-z_]+")
  message(FATAL_ERROR
    "tracediff divergence report does not name the divergent record's "
    "kind:\n${diff_err}")
endif()
string(REGEX MATCH "first divergence at [^\n]*" first_line "${diff_err}")
message(STATUS "self-check ok: identical runs diff empty; perturbed run "
  "detected (${first_line})")
