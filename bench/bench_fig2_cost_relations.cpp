// Figure 2 — "Costs relations" [24]: monthly cost and cost-per-Mbps for
// transit vs peering as total exchanged traffic grows. The paper's shape:
// transit cost rises proportionally (flat cost/Mbps); peering cost is
// constant (cost/Mbps ~ 1/traffic); the curves cross.
#include "bench_common.hpp"
#include "underlay/cost.hpp"

using namespace uap2p;
using namespace uap2p::underlay;

int main(int argc, char** argv) {
  bench::parse_flags(argc, argv);
  bench::print_header("bench_fig2_cost_relations",
                      "Figure 2 (cost relations, after Norton [24])");

  const Pricing pricing;
  constexpr std::size_t kPeeringLinks = 1;

  TablePrinter table({"traffic_mbps", "transit_usd_mo", "peering_usd_mo",
                      "transit_usd_per_mbps", "peering_usd_per_mbps",
                      "cheaper"});
  for (double mbps : {1.0, 3.0, 10.0, 30.0, 100.0, 166.67, 300.0, 1000.0,
                      3000.0, 10000.0}) {
    const double transit = cost_curves::transit_monthly_usd(mbps, pricing);
    const double peering =
        cost_curves::peering_monthly_usd(kPeeringLinks, pricing);
    auto row = table.row();
    row.cell(mbps, 2)
        .cell(transit, 0)
        .cell(peering, 0)
        .cell(cost_curves::transit_usd_per_mbps(mbps, pricing), 2)
        .cell(cost_curves::peering_usd_per_mbps(mbps, kPeeringLinks, pricing),
              2)
        .cell(transit <= peering ? "transit" : "peering");
  }
  table.print("Fig 2: cost and cost-per-Mbps vs total exchanged traffic");

  const double crossover = cost_curves::crossover_mbps(kPeeringLinks, pricing);
  std::printf(
      "\ncrossover: peering beats transit above %.1f Mbps exchanged "
      "(paper shape: curves cross; transit cost/Mbps flat, peering ~1/x)\n",
      crossover);

  // Second panel: the same economics measured from a live simulation —
  // one ISP's P2P traffic billed through the TrafficAccountant, unbiased
  // vs locality-biased overlay.
  TablePrinter sim_table({"overlay", "intra_as_%", "billed_transit_mbps",
                          "est_transit_usd_mo"});
  for (const bool biased : {false, true}) {
    overlay::gnutella::Config config;
    config.selection = biased
                           ? overlay::gnutella::NeighborSelection::kOracleBiased
                           : overlay::gnutella::NeighborSelection::kRandom;
    config.hostcache_size = 100;
    config.oracle_at_file_exchange = biased;
    bench::GnutellaLab lab(AsTopology::transit_stub(2, 4, 0.3), 120, config,
                           /*seed=*/7);
    lab.run_replicated_workload(/*contents=*/12, /*copies=*/10,
                                /*searches=*/60, /*download=*/true);
    auto& traffic = lab.net->traffic();
    auto row = sim_table.row();
    row.cell(biased ? "oracle-biased" : "unbiased")
        .cell(100.0 * traffic.intra_as_fraction(), 1)
        .cell(traffic.billed_transit_mbps(), 3)
        .cell(traffic.estimated_transit_usd_month(), 2);
  }
  sim_table.print("Fig 2 (live): locality shifts traffic off transit links");
  return bench::dump_observability();
}
