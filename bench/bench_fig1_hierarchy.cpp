// Figure 1 — "Hierarchy in the Internet": local ISPs buy transit from
// global ISPs (monetary flow up the hierarchy), peering links are
// settlement-free. This bench builds the transit-stub hierarchy, pushes a
// P2P workload through it, and prints where bytes and money flow.
#include "bench_common.hpp"
#include "underlay/cost.hpp"

using namespace uap2p;
using namespace uap2p::underlay;

int main() {
  bench::print_header("bench_fig1_hierarchy",
                      "Figure 1 (Internet hierarchy and monetary flow)");

  AsTopology topo = AsTopology::transit_stub(3, 4, 0.4);
  sim::Engine engine;
  Network net(engine, topo, 17);
  const auto peers = net.populate(120);

  // Topology census.
  std::size_t transit_links = 0, peering_links = 0, internal_links = 0;
  for (const Link& link : topo.links()) {
    switch (link.type) {
      case LinkType::kTransit: ++transit_links; break;
      case LinkType::kPeering: ++peering_links; break;
      case LinkType::kInternal: ++internal_links; break;
    }
  }
  TablePrinter census({"entity", "count"});
  census.add_row({"transit ISPs", std::to_string(3)});
  census.add_row({"local ISPs", std::to_string(topo.as_count() - 3)});
  census.add_row({"transit links (paid, dashed in Fig 1)",
                  std::to_string(transit_links)});
  census.add_row({"peering links (free, solid in Fig 1)",
                  std::to_string(peering_links)});
  census.add_row({"internal links", std::to_string(internal_links)});
  census.print("Fig 1: hierarchy census");

  // Random unbiased P2P chatter: every peer messages random others.
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    Message msg;
    msg.src = peers[rng.uniform(peers.size())];
    msg.dst = peers[rng.uniform(peers.size())];
    if (msg.src == msg.dst) continue;
    msg.size_bytes = 1500;
    net.send(std::move(msg));
  }
  engine.run();

  const auto& traffic = net.traffic();
  TablePrinter flow({"flow", "bytes", "share_%"});
  const double total = double(traffic.total_bytes());
  auto add = [&](const char* name, std::uint64_t bytes) {
    auto row = flow.row();
    row.cell(name).cell(bytes).cell(total > 0 ? 100.0 * bytes / total : 0.0,
                                    1);
  };
  add("stays inside the local ISP", traffic.intra_as_bytes());
  add("crosses AS boundaries", traffic.inter_as_bytes());
  flow.print("Fig 1: where unbiased P2P bytes go");

  TablePrinter money({"link class", "byte-crossings", "monetary flow"});
  money.add_row({"transit (stub pays provider)",
                 std::to_string(traffic.transit_link_bytes()),
                 TablePrinter::fmt(traffic.estimated_transit_usd_month(), 2) +
                     " USD/mo (follows the solid arrows of Fig 1)"});
  money.add_row({"peering (settlement-free)",
                 std::to_string(traffic.peering_link_bytes()),
                 "flat maintenance only"});
  money.print("Fig 1: monetary flow up the hierarchy");
  return 0;
}
