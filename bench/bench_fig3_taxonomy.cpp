// Figure 3 + Table 1 (paper's own) — the taxonomy of underlay information
// and its collection, printed from the executable registry, followed by a
// functional smoke-run of one collector per collection technique to prove
// every leaf of the taxonomy is implemented and runnable.
#include "bench_common.hpp"
#include "core/taxonomy.hpp"
#include "core/underlay_service.hpp"
#include "netinfo/cdn.hpp"
#include "netinfo/ics.hpp"
#include "netinfo/skyeye.hpp"

using namespace uap2p;

int main() {
  bench::print_header("bench_fig3_taxonomy",
                      "Figure 3 (collection taxonomy) + Table 1 (systems)");

  TablePrinter table({"info class", "system", "ref", "collection technique",
                      "uap2p module"});
  for (const auto& entry : core::taxonomy()) {
    table.add_row({core::to_string(entry.info), entry.system, entry.reference,
                   core::to_string(entry.technique), entry.uap2p_module});
  }
  table.print("Table 1: underlay-aware systems by information class");
  std::printf("\n%zu/%zu surveyed techniques implemented and runnable\n",
              core::implemented_count(), core::taxonomy().size());

  // Smoke-run: one live call through each collection technique.
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 3, 0.3);
  underlay::Network net(engine, topo, 29);
  const auto peers = net.populate(40);
  core::UnderlayService service(net);

  TablePrinter smoke({"technique (Fig 3 leaf)", "live call", "result"});
  {
    const auto isp = service.isp_of(peers[0]);
    smoke.add_row({"IP-to-ISP mapping", "isp_of(peer0)",
                   isp ? "AS " + std::to_string(isp->value()) : "miss"});
  }
  {
    const auto ranked = service.oracle().rank(
        peers[0], std::vector<PeerId>(peers.begin() + 1, peers.end()));
    smoke.add_row({"ISP component in network (oracle)", "rank(39 candidates)",
                   "best=peer " + std::to_string(ranked.front().value())});
  }
  {
    netinfo::SimulatedCdn cdn(net, {});
    netinfo::CdnInference inference(cdn, net.host_count());
    inference.warm_up(std::span<const PeerId>(peers.data(), 8));
    smoke.add_row(
        {"CDN-provided information (Ono)", "similarity(p0,p1)",
         TablePrinter::fmt(inference.similarity(peers[0], peers[1]), 3)});
  }
  {
    const double rtt =
        service.rtt_ms(peers[0], peers[1], core::LatencyMethod::kExplicitPing);
    smoke.add_row({"explicit measurement (ping)", "measure_rtt(p0,p1)",
                   TablePrinter::fmt(rtt, 2) + " ms"});
  }
  {
    service.warm_up_coordinates(std::span<const PeerId>(peers.data(), 16));
    const double rtt =
        service.rtt_ms(peers[0], peers[1], core::LatencyMethod::kVivaldi);
    smoke.add_row({"prediction method (Vivaldi)", "estimate_rtt(p0,p1)",
                   TablePrinter::fmt(rtt, 2) + " ms"});
  }
  {
    const auto utm = underlay::to_utm(net.host(peers[0]).location);
    smoke.add_row({"GPS (UTM per [12])", "locate_utm(p0)", utm.to_string()});
  }
  {
    const auto loc = service.location(peers[0], netinfo::GeoSource::kIpMapping);
    smoke.add_row({"IP-to-location mapping", "location(p0)",
                   loc ? TablePrinter::fmt(loc->lat_deg, 2) + "," +
                             TablePrinter::fmt(loc->lon_deg, 2)
                       : "miss"});
  }
  {
    netinfo::SkyEyeConfig config;
    config.update_period_ms = sim::seconds(10);
    netinfo::SkyEye skyeye(net, peers, config);
    skyeye.start();
    engine.run_until(engine.now() + sim::minutes(2));
    skyeye.stop();
    smoke.add_row({"information management overlay (SkyEye)",
                   "root_view().peer_count",
                   std::to_string(skyeye.root_view().peer_count)});
  }
  smoke.print("Fig 3: one live call per collection technique");
  return 0;
}
