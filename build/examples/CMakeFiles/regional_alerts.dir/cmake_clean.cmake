file(REMOVE_RECURSE
  "CMakeFiles/regional_alerts.dir/regional_alerts.cpp.o"
  "CMakeFiles/regional_alerts.dir/regional_alerts.cpp.o.d"
  "regional_alerts"
  "regional_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
