# Empty dependencies file for regional_alerts.
# This may be replaced when dependencies are built.
