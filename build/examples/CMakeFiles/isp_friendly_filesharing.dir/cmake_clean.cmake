file(REMOVE_RECURSE
  "CMakeFiles/isp_friendly_filesharing.dir/isp_friendly_filesharing.cpp.o"
  "CMakeFiles/isp_friendly_filesharing.dir/isp_friendly_filesharing.cpp.o.d"
  "isp_friendly_filesharing"
  "isp_friendly_filesharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_friendly_filesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
