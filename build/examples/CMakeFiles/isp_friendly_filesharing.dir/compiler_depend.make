# Empty compiler generated dependencies file for isp_friendly_filesharing.
# This may be replaced when dependencies are built.
