# Empty compiler generated dependencies file for geo_poi_search.
# This may be replaced when dependencies are built.
