file(REMOVE_RECURSE
  "CMakeFiles/geo_poi_search.dir/geo_poi_search.cpp.o"
  "CMakeFiles/geo_poi_search.dir/geo_poi_search.cpp.o.d"
  "geo_poi_search"
  "geo_poi_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_poi_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
