file(REMOVE_RECURSE
  "CMakeFiles/interdomain_routing.dir/interdomain_routing.cpp.o"
  "CMakeFiles/interdomain_routing.dir/interdomain_routing.cpp.o.d"
  "interdomain_routing"
  "interdomain_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interdomain_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
