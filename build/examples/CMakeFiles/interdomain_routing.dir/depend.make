# Empty dependencies file for interdomain_routing.
# This may be replaced when dependencies are built.
