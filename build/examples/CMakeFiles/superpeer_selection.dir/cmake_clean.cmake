file(REMOVE_RECURSE
  "CMakeFiles/superpeer_selection.dir/superpeer_selection.cpp.o"
  "CMakeFiles/superpeer_selection.dir/superpeer_selection.cpp.o.d"
  "superpeer_selection"
  "superpeer_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superpeer_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
