# Empty dependencies file for superpeer_selection.
# This may be replaced when dependencies are built.
