file(REMOVE_RECURSE
  "CMakeFiles/latency_aware_streaming.dir/latency_aware_streaming.cpp.o"
  "CMakeFiles/latency_aware_streaming.dir/latency_aware_streaming.cpp.o.d"
  "latency_aware_streaming"
  "latency_aware_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_aware_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
