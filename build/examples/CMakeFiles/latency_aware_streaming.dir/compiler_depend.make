# Empty compiler generated dependencies file for latency_aware_streaming.
# This may be replaced when dependencies are built.
