# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isp_friendly_filesharing "/root/repo/build/examples/isp_friendly_filesharing")
set_tests_properties(example_isp_friendly_filesharing PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_latency_aware_streaming "/root/repo/build/examples/latency_aware_streaming")
set_tests_properties(example_latency_aware_streaming PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_geo_poi_search "/root/repo/build/examples/geo_poi_search")
set_tests_properties(example_geo_poi_search PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_superpeer_selection "/root/repo/build/examples/superpeer_selection")
set_tests_properties(example_superpeer_selection PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regional_alerts "/root/repo/build/examples/regional_alerts")
set_tests_properties(example_regional_alerts PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interdomain_routing "/root/repo/build/examples/interdomain_routing")
set_tests_properties(example_interdomain_routing PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
