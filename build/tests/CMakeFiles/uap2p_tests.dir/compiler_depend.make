# Empty compiler generated dependencies file for uap2p_tests.
# This may be replaced when dependencies are built.
