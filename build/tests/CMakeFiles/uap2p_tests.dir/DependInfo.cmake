
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alloc_probe.cpp" "tests/CMakeFiles/uap2p_tests.dir/alloc_probe.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/alloc_probe.cpp.o.d"
  "/root/repo/tests/test_binning.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_binning.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_binning.cpp.o.d"
  "/root/repo/tests/test_bittorrent.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_bittorrent.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_bittorrent.cpp.o.d"
  "/root/repo/tests/test_brocade.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_brocade.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_brocade.cpp.o.d"
  "/root/repo/tests/test_cat_policy.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_cat_policy.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_cat_policy.cpp.o.d"
  "/root/repo/tests/test_cdn.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_cdn.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_cdn.cpp.o.d"
  "/root/repo/tests/test_churn.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_churn.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_churn.cpp.o.d"
  "/root/repo/tests/test_core_service.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_core_service.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_core_service.cpp.o.d"
  "/root/repo/tests/test_cost.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_cost.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_cost.cpp.o.d"
  "/root/repo/tests/test_custom_tracker.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_custom_tracker.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_custom_tracker.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_engine_alloc.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_engine_alloc.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_engine_alloc.cpp.o.d"
  "/root/repo/tests/test_engine_stress.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_engine_stress.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_engine_stress.cpp.o.d"
  "/root/repo/tests/test_framework_e2e.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_framework_e2e.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_framework_e2e.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_geo_overlay.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_geo_overlay.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_geo_overlay.cpp.o.d"
  "/root/repo/tests/test_geocast.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_geocast.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_geocast.cpp.o.d"
  "/root/repo/tests/test_gmeasure.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_gmeasure.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_gmeasure.cpp.o.d"
  "/root/repo/tests/test_gnutella.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_gnutella.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_gnutella.cpp.o.d"
  "/root/repo/tests/test_gnutella_properties.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_gnutella_properties.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_gnutella_properties.cpp.o.d"
  "/root/repo/tests/test_gossip.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_gossip.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_gossip.cpp.o.d"
  "/root/repo/tests/test_ics.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_ics.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_ics.cpp.o.d"
  "/root/repo/tests/test_ids.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_ids.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_ids.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ipmap.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_ipmap.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_ipmap.cpp.o.d"
  "/root/repo/tests/test_kademlia.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_kademlia.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_kademlia.cpp.o.d"
  "/root/repo/tests/test_kademlia_properties.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_kademlia_properties.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_kademlia_properties.cpp.o.d"
  "/root/repo/tests/test_ltm.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_ltm.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_ltm.cpp.o.d"
  "/root/repo/tests/test_maintenance.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_maintenance.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_maintenance.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_mobility.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_mobility.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_mobility.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_oracle.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_oracle.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_oracle.cpp.o.d"
  "/root/repo/tests/test_overlay_sweeps.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_overlay_sweeps.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_overlay_sweeps.cpp.o.d"
  "/root/repo/tests/test_p4p.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_p4p.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_p4p.cpp.o.d"
  "/root/repo/tests/test_pinger.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_pinger.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_pinger.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_routing_properties.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_routing_properties.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_routing_properties.cpp.o.d"
  "/root/repo/tests/test_scoped_hashing.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_scoped_hashing.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_scoped_hashing.cpp.o.d"
  "/root/repo/tests/test_skyeye.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_skyeye.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_skyeye.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_superpeer.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_superpeer.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_superpeer.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_taxonomy.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_taxonomy.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_taxonomy.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trie_fuzz.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_trie_fuzz.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_trie_fuzz.cpp.o.d"
  "/root/repo/tests/test_vivaldi.cpp" "tests/CMakeFiles/uap2p_tests.dir/test_vivaldi.cpp.o" "gcc" "tests/CMakeFiles/uap2p_tests.dir/test_vivaldi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uap2p_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/uap2p_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/netinfo/CMakeFiles/uap2p_netinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/underlay/CMakeFiles/uap2p_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uap2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uap2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
