file(REMOVE_RECURSE
  "libuap2p_sim.a"
)
