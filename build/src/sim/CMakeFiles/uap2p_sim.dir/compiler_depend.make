# Empty compiler generated dependencies file for uap2p_sim.
# This may be replaced when dependencies are built.
