file(REMOVE_RECURSE
  "CMakeFiles/uap2p_sim.dir/churn.cpp.o"
  "CMakeFiles/uap2p_sim.dir/churn.cpp.o.d"
  "CMakeFiles/uap2p_sim.dir/engine.cpp.o"
  "CMakeFiles/uap2p_sim.dir/engine.cpp.o.d"
  "libuap2p_sim.a"
  "libuap2p_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uap2p_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
