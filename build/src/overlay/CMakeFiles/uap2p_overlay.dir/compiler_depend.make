# Empty compiler generated dependencies file for uap2p_overlay.
# This may be replaced when dependencies are built.
