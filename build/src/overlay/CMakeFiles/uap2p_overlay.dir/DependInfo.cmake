
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/bittorrent.cpp" "src/overlay/CMakeFiles/uap2p_overlay.dir/bittorrent.cpp.o" "gcc" "src/overlay/CMakeFiles/uap2p_overlay.dir/bittorrent.cpp.o.d"
  "/root/repo/src/overlay/brocade.cpp" "src/overlay/CMakeFiles/uap2p_overlay.dir/brocade.cpp.o" "gcc" "src/overlay/CMakeFiles/uap2p_overlay.dir/brocade.cpp.o.d"
  "/root/repo/src/overlay/geo_overlay.cpp" "src/overlay/CMakeFiles/uap2p_overlay.dir/geo_overlay.cpp.o" "gcc" "src/overlay/CMakeFiles/uap2p_overlay.dir/geo_overlay.cpp.o.d"
  "/root/repo/src/overlay/gnutella.cpp" "src/overlay/CMakeFiles/uap2p_overlay.dir/gnutella.cpp.o" "gcc" "src/overlay/CMakeFiles/uap2p_overlay.dir/gnutella.cpp.o.d"
  "/root/repo/src/overlay/kademlia.cpp" "src/overlay/CMakeFiles/uap2p_overlay.dir/kademlia.cpp.o" "gcc" "src/overlay/CMakeFiles/uap2p_overlay.dir/kademlia.cpp.o.d"
  "/root/repo/src/overlay/superpeer.cpp" "src/overlay/CMakeFiles/uap2p_overlay.dir/superpeer.cpp.o" "gcc" "src/overlay/CMakeFiles/uap2p_overlay.dir/superpeer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netinfo/CMakeFiles/uap2p_netinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/underlay/CMakeFiles/uap2p_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uap2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uap2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
