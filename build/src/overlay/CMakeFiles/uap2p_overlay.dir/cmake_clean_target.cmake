file(REMOVE_RECURSE
  "libuap2p_overlay.a"
)
