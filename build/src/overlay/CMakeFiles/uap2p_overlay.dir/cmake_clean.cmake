file(REMOVE_RECURSE
  "CMakeFiles/uap2p_overlay.dir/bittorrent.cpp.o"
  "CMakeFiles/uap2p_overlay.dir/bittorrent.cpp.o.d"
  "CMakeFiles/uap2p_overlay.dir/brocade.cpp.o"
  "CMakeFiles/uap2p_overlay.dir/brocade.cpp.o.d"
  "CMakeFiles/uap2p_overlay.dir/geo_overlay.cpp.o"
  "CMakeFiles/uap2p_overlay.dir/geo_overlay.cpp.o.d"
  "CMakeFiles/uap2p_overlay.dir/gnutella.cpp.o"
  "CMakeFiles/uap2p_overlay.dir/gnutella.cpp.o.d"
  "CMakeFiles/uap2p_overlay.dir/kademlia.cpp.o"
  "CMakeFiles/uap2p_overlay.dir/kademlia.cpp.o.d"
  "CMakeFiles/uap2p_overlay.dir/superpeer.cpp.o"
  "CMakeFiles/uap2p_overlay.dir/superpeer.cpp.o.d"
  "libuap2p_overlay.a"
  "libuap2p_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uap2p_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
