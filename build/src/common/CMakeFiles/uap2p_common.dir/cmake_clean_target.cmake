file(REMOVE_RECURSE
  "libuap2p_common.a"
)
