# Empty dependencies file for uap2p_common.
# This may be replaced when dependencies are built.
