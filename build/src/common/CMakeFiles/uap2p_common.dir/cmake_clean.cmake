file(REMOVE_RECURSE
  "CMakeFiles/uap2p_common.dir/ids.cpp.o"
  "CMakeFiles/uap2p_common.dir/ids.cpp.o.d"
  "CMakeFiles/uap2p_common.dir/rng.cpp.o"
  "CMakeFiles/uap2p_common.dir/rng.cpp.o.d"
  "CMakeFiles/uap2p_common.dir/stats.cpp.o"
  "CMakeFiles/uap2p_common.dir/stats.cpp.o.d"
  "CMakeFiles/uap2p_common.dir/table.cpp.o"
  "CMakeFiles/uap2p_common.dir/table.cpp.o.d"
  "CMakeFiles/uap2p_common.dir/thread_pool.cpp.o"
  "CMakeFiles/uap2p_common.dir/thread_pool.cpp.o.d"
  "libuap2p_common.a"
  "libuap2p_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uap2p_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
