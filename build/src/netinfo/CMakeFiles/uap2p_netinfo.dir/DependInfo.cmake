
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netinfo/binning.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/binning.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/binning.cpp.o.d"
  "/root/repo/src/netinfo/cdn.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/cdn.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/cdn.cpp.o.d"
  "/root/repo/src/netinfo/geoprov.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/geoprov.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/geoprov.cpp.o.d"
  "/root/repo/src/netinfo/gmeasure.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/gmeasure.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/gmeasure.cpp.o.d"
  "/root/repo/src/netinfo/gossip.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/gossip.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/gossip.cpp.o.d"
  "/root/repo/src/netinfo/ics.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/ics.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/ics.cpp.o.d"
  "/root/repo/src/netinfo/ipmap.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/ipmap.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/ipmap.cpp.o.d"
  "/root/repo/src/netinfo/matrix.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/matrix.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/matrix.cpp.o.d"
  "/root/repo/src/netinfo/oracle.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/oracle.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/oracle.cpp.o.d"
  "/root/repo/src/netinfo/p4p.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/p4p.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/p4p.cpp.o.d"
  "/root/repo/src/netinfo/pinger.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/pinger.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/pinger.cpp.o.d"
  "/root/repo/src/netinfo/skyeye.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/skyeye.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/skyeye.cpp.o.d"
  "/root/repo/src/netinfo/vivaldi.cpp" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/vivaldi.cpp.o" "gcc" "src/netinfo/CMakeFiles/uap2p_netinfo.dir/vivaldi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/underlay/CMakeFiles/uap2p_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uap2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uap2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
