# Empty compiler generated dependencies file for uap2p_netinfo.
# This may be replaced when dependencies are built.
