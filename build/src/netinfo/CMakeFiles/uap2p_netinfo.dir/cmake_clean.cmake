file(REMOVE_RECURSE
  "CMakeFiles/uap2p_netinfo.dir/binning.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/binning.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/cdn.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/cdn.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/geoprov.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/geoprov.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/gmeasure.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/gmeasure.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/gossip.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/gossip.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/ics.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/ics.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/ipmap.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/ipmap.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/matrix.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/matrix.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/oracle.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/oracle.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/p4p.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/p4p.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/pinger.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/pinger.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/skyeye.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/skyeye.cpp.o.d"
  "CMakeFiles/uap2p_netinfo.dir/vivaldi.cpp.o"
  "CMakeFiles/uap2p_netinfo.dir/vivaldi.cpp.o.d"
  "libuap2p_netinfo.a"
  "libuap2p_netinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uap2p_netinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
