file(REMOVE_RECURSE
  "libuap2p_netinfo.a"
)
