
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/underlay/cost.cpp" "src/underlay/CMakeFiles/uap2p_underlay.dir/cost.cpp.o" "gcc" "src/underlay/CMakeFiles/uap2p_underlay.dir/cost.cpp.o.d"
  "/root/repo/src/underlay/geo.cpp" "src/underlay/CMakeFiles/uap2p_underlay.dir/geo.cpp.o" "gcc" "src/underlay/CMakeFiles/uap2p_underlay.dir/geo.cpp.o.d"
  "/root/repo/src/underlay/mobility.cpp" "src/underlay/CMakeFiles/uap2p_underlay.dir/mobility.cpp.o" "gcc" "src/underlay/CMakeFiles/uap2p_underlay.dir/mobility.cpp.o.d"
  "/root/repo/src/underlay/network.cpp" "src/underlay/CMakeFiles/uap2p_underlay.dir/network.cpp.o" "gcc" "src/underlay/CMakeFiles/uap2p_underlay.dir/network.cpp.o.d"
  "/root/repo/src/underlay/routing.cpp" "src/underlay/CMakeFiles/uap2p_underlay.dir/routing.cpp.o" "gcc" "src/underlay/CMakeFiles/uap2p_underlay.dir/routing.cpp.o.d"
  "/root/repo/src/underlay/topology.cpp" "src/underlay/CMakeFiles/uap2p_underlay.dir/topology.cpp.o" "gcc" "src/underlay/CMakeFiles/uap2p_underlay.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uap2p_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uap2p_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
