file(REMOVE_RECURSE
  "CMakeFiles/uap2p_underlay.dir/cost.cpp.o"
  "CMakeFiles/uap2p_underlay.dir/cost.cpp.o.d"
  "CMakeFiles/uap2p_underlay.dir/geo.cpp.o"
  "CMakeFiles/uap2p_underlay.dir/geo.cpp.o.d"
  "CMakeFiles/uap2p_underlay.dir/mobility.cpp.o"
  "CMakeFiles/uap2p_underlay.dir/mobility.cpp.o.d"
  "CMakeFiles/uap2p_underlay.dir/network.cpp.o"
  "CMakeFiles/uap2p_underlay.dir/network.cpp.o.d"
  "CMakeFiles/uap2p_underlay.dir/routing.cpp.o"
  "CMakeFiles/uap2p_underlay.dir/routing.cpp.o.d"
  "CMakeFiles/uap2p_underlay.dir/topology.cpp.o"
  "CMakeFiles/uap2p_underlay.dir/topology.cpp.o.d"
  "libuap2p_underlay.a"
  "libuap2p_underlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uap2p_underlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
