# Empty compiler generated dependencies file for uap2p_underlay.
# This may be replaced when dependencies are built.
