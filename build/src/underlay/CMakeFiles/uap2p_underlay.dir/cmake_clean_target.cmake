file(REMOVE_RECURSE
  "libuap2p_underlay.a"
)
