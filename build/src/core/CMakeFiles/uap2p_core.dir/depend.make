# Empty dependencies file for uap2p_core.
# This may be replaced when dependencies are built.
