# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for uap2p_core.
