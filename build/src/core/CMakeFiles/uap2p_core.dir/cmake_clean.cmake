file(REMOVE_RECURSE
  "CMakeFiles/uap2p_core.dir/taxonomy.cpp.o"
  "CMakeFiles/uap2p_core.dir/taxonomy.cpp.o.d"
  "CMakeFiles/uap2p_core.dir/underlay_service.cpp.o"
  "CMakeFiles/uap2p_core.dir/underlay_service.cpp.o.d"
  "libuap2p_core.a"
  "libuap2p_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uap2p_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
