file(REMOVE_RECURSE
  "libuap2p_core.a"
)
