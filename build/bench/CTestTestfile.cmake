# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench-smoke "/root/repo/build/bench/bench_micro" "--benchmark_min_time=0.01" "--bench_json=/root/repo/build/BENCH_micro.json")
set_tests_properties(bench-smoke PROPERTIES  FIXTURES_SETUP "bench_micro_json" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench-smoke-validate "/root/repo/build/bench/validate_bench_json" "/root/repo/build/BENCH_micro.json")
set_tests_properties(bench-smoke-validate PROPERTIES  FIXTURES_REQUIRED "bench_micro_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
