file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_bns.dir/bench_fig6_bns.cpp.o"
  "CMakeFiles/bench_fig6_bns.dir/bench_fig6_bns.cpp.o.d"
  "bench_fig6_bns"
  "bench_fig6_bns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_bns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
