file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cost_relations.dir/bench_fig2_cost_relations.cpp.o"
  "CMakeFiles/bench_fig2_cost_relations.dir/bench_fig2_cost_relations.cpp.o.d"
  "bench_fig2_cost_relations"
  "bench_fig2_cost_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cost_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
