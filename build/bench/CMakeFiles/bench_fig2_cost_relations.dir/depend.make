# Empty dependencies file for bench_fig2_cost_relations.
# This may be replaced when dependencies are built.
