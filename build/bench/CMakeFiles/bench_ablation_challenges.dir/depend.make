# Empty dependencies file for bench_ablation_challenges.
# This may be replaced when dependencies are built.
