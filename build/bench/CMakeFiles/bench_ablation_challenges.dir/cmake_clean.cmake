file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_challenges.dir/bench_ablation_challenges.cpp.o"
  "CMakeFiles/bench_ablation_challenges.dir/bench_ablation_challenges.cpp.o.d"
  "bench_ablation_challenges"
  "bench_ablation_challenges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_challenges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
