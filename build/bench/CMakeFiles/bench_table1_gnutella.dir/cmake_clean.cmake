file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gnutella.dir/bench_table1_gnutella.cpp.o"
  "CMakeFiles/bench_table1_gnutella.dir/bench_table1_gnutella.cpp.o.d"
  "bench_table1_gnutella"
  "bench_table1_gnutella.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gnutella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
