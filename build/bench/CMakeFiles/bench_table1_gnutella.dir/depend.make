# Empty dependencies file for bench_table1_gnutella.
# This may be replaced when dependencies are built.
