file(REMOVE_RECURSE
  "CMakeFiles/bench_testlab_filexchange.dir/bench_testlab_filexchange.cpp.o"
  "CMakeFiles/bench_testlab_filexchange.dir/bench_testlab_filexchange.cpp.o.d"
  "bench_testlab_filexchange"
  "bench_testlab_filexchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testlab_filexchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
