# Empty compiler generated dependencies file for bench_testlab_filexchange.
# This may be replaced when dependencies are built.
