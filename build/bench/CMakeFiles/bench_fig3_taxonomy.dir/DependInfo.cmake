
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_taxonomy.cpp" "bench/CMakeFiles/bench_fig3_taxonomy.dir/bench_fig3_taxonomy.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_taxonomy.dir/bench_fig3_taxonomy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uap2p_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/uap2p_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/netinfo/CMakeFiles/uap2p_netinfo.dir/DependInfo.cmake"
  "/root/repo/build/src/underlay/CMakeFiles/uap2p_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uap2p_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uap2p_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
