# Empty dependencies file for bench_ablation_trust_mobility.
# This may be replaced when dependencies are built.
