file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trust_mobility.dir/bench_ablation_trust_mobility.cpp.o"
  "CMakeFiles/bench_ablation_trust_mobility.dir/bench_ablation_trust_mobility.cpp.o.d"
  "bench_ablation_trust_mobility"
  "bench_ablation_trust_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trust_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
