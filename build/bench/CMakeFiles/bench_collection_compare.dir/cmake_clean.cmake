file(REMOVE_RECURSE
  "CMakeFiles/bench_collection_compare.dir/bench_collection_compare.cpp.o"
  "CMakeFiles/bench_collection_compare.dir/bench_collection_compare.cpp.o.d"
  "bench_collection_compare"
  "bench_collection_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collection_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
