# Empty compiler generated dependencies file for bench_collection_compare.
# This may be replaced when dependencies are built.
