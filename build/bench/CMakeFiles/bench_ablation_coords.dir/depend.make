# Empty dependencies file for bench_ablation_coords.
# This may be replaced when dependencies are built.
