file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coords.dir/bench_ablation_coords.cpp.o"
  "CMakeFiles/bench_ablation_coords.dir/bench_ablation_coords.cpp.o.d"
  "bench_ablation_coords"
  "bench_ablation_coords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
