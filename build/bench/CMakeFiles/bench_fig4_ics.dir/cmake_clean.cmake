file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ics.dir/bench_fig4_ics.cpp.o"
  "CMakeFiles/bench_fig4_ics.dir/bench_fig4_ics.cpp.o.d"
  "bench_fig4_ics"
  "bench_fig4_ics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
