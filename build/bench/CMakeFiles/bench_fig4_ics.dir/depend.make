# Empty dependencies file for bench_fig4_ics.
# This may be replaced when dependencies are built.
