// ISP-friendly file sharing — the paper's headline scenario (§1, §2.1):
// a BitTorrent-style swarm distributing a 16 MB file across 10 local
// ISPs, first with uniform random neighbor selection, then with the
// biased neighbor selection of Bindal et al. [3]. The run prints the two
// things each side of the "P2P vs ISP" conflict cares about: download
// completion times (users) and the transit bill (ISPs).
#include <cstdio>

#include "overlay/bittorrent.hpp"
#include "sim/engine.hpp"
#include "underlay/cost.hpp"
#include "underlay/network.hpp"

using namespace uap2p;
using namespace uap2p::overlay::bittorrent;

namespace {

void run_swarm(NeighborPolicy policy, const char* label) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 5, 0.4);
  underlay::Network net(engine, topo, 2024);
  const auto peers = net.populate(150);

  Config config;
  config.policy = policy;
  config.piece_count = 64;          // 64 x 256 KiB = 16 MiB
  config.external_neighbors = 1;    // [3]'s "k internal, few external"
  BitTorrentSwarm swarm(net, peers, /*initial_seeds=*/3, config);
  swarm.build_neighborhoods();
  const std::size_t rounds = swarm.run(4000);

  const auto& stats = swarm.stats();
  std::printf("\n--- %s ---\n", label);
  std::printf("swarm finished in %zu rounds; %zu leechers completed\n",
              rounds, stats.completed);
  std::printf("completion rounds: median %.0f, p90 %.0f\n",
              stats.completion_rounds.median(),
              stats.completion_rounds.percentile(90));
  std::printf("piece traffic staying inside an ISP: %.1f%%\n",
              100.0 * stats.intra_as_piece_fraction());
  std::printf("overlay: %.0f%% intra-AS edges, %zu inter-AS links "
              "(minimum for connectivity: %zu), connected: %s\n",
              100.0 * swarm.intra_as_edge_fraction(),
              swarm.inter_as_edge_count(),
              swarm.min_inter_as_edges_for_connectivity(),
              swarm.overlay_connected() ? "yes" : "NO");
  std::printf("ISP view: billed transit rate %.2f Mbps -> ~%.0f USD/mo\n",
              net.traffic().billed_transit_mbps(),
              net.traffic().estimated_transit_usd_month());
}

}  // namespace

int main() {
  std::printf("ISP-friendly file sharing: 150 peers, 12 ASes, 16 MiB file\n");
  run_swarm(NeighborPolicy::kRandom, "uniform random neighbor selection");
  run_swarm(NeighborPolicy::kBiased,
            "biased neighbor selection (Bindal et al. [3])");
  std::printf(
      "\ntakeaway (paper §2.1): locality shifts traffic from paid transit\n"
      "links to free local links; download times stay comparable, so the\n"
      "system is ISP-friendly at no real cost to users.\n");
  return 0;
}
