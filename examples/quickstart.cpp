// Quickstart — the 60-second tour of uap2p:
//   1. build a simulated Internet (AS topology + hosts),
//   2. collect underlay information through the UnderlayService facade,
//   3. plug an awareness policy into neighbor selection,
//   4. watch the ISP's transit bill drop.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/underlay_service.hpp"
#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;

int main() {
  // 1. The underlay: 2 transit ISPs, each with 4 local ISPs buying
  //    transit, peers spread round-robin over the ASes.
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net(engine, topo, /*seed=*/42);
  const std::vector<PeerId> peers = net.populate(60);
  std::printf("underlay: %zu ASes, %zu routers, %zu links, %zu peers\n",
              topo.as_count(), topo.router_count(), topo.link_count(),
              peers.size());

  // 2. Collect underlay information (paper §3) through one facade.
  core::UnderlayService service(net);
  const auto isp = service.isp_of(peers[0]);
  std::printf("peer0: ip=%s  isp=AS%u  as-hops to peer1: %zu\n",
              net.host(peers[0]).ip.to_string().c_str(),
              isp ? isp->value() : 0, service.as_hops(peers[0], peers[1]));
  const double ping =
      service.rtt_ms(peers[0], peers[1], core::LatencyMethod::kExplicitPing);
  service.warm_up_coordinates(peers);
  const double predicted =
      service.rtt_ms(peers[0], peers[1], core::LatencyMethod::kVivaldi);
  std::printf("peer0->peer1 rtt: measured %.1f ms, Vivaldi predicts %.1f ms\n",
              ping, predicted);

  // 3. Usage (paper §4): the same Gnutella network, unbiased vs biased
  //    neighbor selection via the ISP oracle.
  for (const bool biased : {false, true}) {
    sim::Engine run_engine;
    underlay::Network run_net(run_engine, topo, 42);
    const auto run_peers = run_net.populate(60);
    netinfo::Oracle oracle(run_net);
    overlay::gnutella::Config config;
    config.selection =
        biased ? overlay::gnutella::NeighborSelection::kOracleBiased
               : overlay::gnutella::NeighborSelection::kRandom;
    config.oracle_at_file_exchange = biased;
    overlay::gnutella::GnutellaSystem gnutella(
        run_net, run_peers,
        overlay::gnutella::testlab_roles(run_peers.size(), 2, topo.as_count()),
        config, &oracle);
    gnutella.bootstrap();

    // Share one file in every AS, then everyone downloads it.
    for (std::size_t i = 0; i < topo.as_count() * 2; ++i) {
      gnutella.share(run_peers[i], ContentId(7));
    }
    int intra = 0, total = 0;
    for (std::size_t i = topo.as_count() * 2; i < run_peers.size(); ++i) {
      const auto outcome = gnutella.search(run_peers[i], ContentId(7));
      if (outcome.downloaded) {
        ++total;
        intra += outcome.download_intra_as;
      }
    }
    // 4. What the ISP sees.
    std::printf(
        "%s: %d/%d downloads intra-AS, overlay intra-edge share %.0f%%, "
        "transit bill ~%.2f USD/mo\n",
        biased ? "oracle-biased" : "unbiased     ", intra, total,
        100.0 * gnutella.intra_as_edge_fraction(),
        run_net.traffic().estimated_transit_usd_month());
  }
  std::printf("\nnext: examples/isp_friendly_filesharing, "
              "latency_aware_streaming, geo_poi_search, superpeer_selection\n");
  return 0;
}
