// Regional alerting over the geolocation overlay — the emergency-service
// scenario the paper motivates (§2.4, EchoP2P [10]): a civil-protection
// node publishes shelter information into a geographic scope (Leopard-
// style scoped hashing [33]) and later geocasts an evacuation alert to
// every peer inside the affected rectangle (GeoPeer-style dissemination
// [2]). Both operate through the zone tree: no network-wide flooding.
#include <cstdio>

#include "overlay/geo_overlay.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;
using namespace uap2p::overlay::geo;

int main() {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(8, 0.35);
  underlay::Network net(engine, topo, 404);
  const auto peers = net.populate(150);
  GeoOverlay overlay(net, peers, {});
  std::printf("regional alert service: %zu peers, %zu zones (depth %zu)\n",
              peers.size(), overlay.zone_count(), overlay.tree_depth());

  // The authority: a well-connected peer near the region of interest.
  const PeerId authority = peers[42];
  const auto center = net.host(authority).location;
  const GeoRect region{center.lat_deg - 2.0, center.lat_deg + 2.0,
                       center.lon_deg - 3.0, center.lon_deg + 3.0};
  std::printf("affected region: [%.1f..%.1f] x [%.1f..%.1f]\n", region.lat_lo,
              region.lat_hi, region.lon_lo, region.lon_hi);

  // 1. Publish shelter info into the region (scoped hashing): peers in
  //    the region can look it up locally; peers far away never see it.
  const auto put = overlay.scoped_put(authority, ContentId(911), region);
  std::printf("\nscoped_put('shelter-info') stored in %zu zones, %zu msgs\n",
              put.zones_stored, put.messages);
  std::size_t local_hits = 0, local_tries = 0;
  std::size_t remote_hits = 0, remote_tries = 0;
  for (const PeerId peer : peers) {
    const bool inside = region.contains(net.host(peer).location);
    const auto get = overlay.scoped_get(peer, ContentId(911));
    if (inside) {
      ++local_tries;
      local_hits += get.found;
    } else {
      ++remote_tries;
      remote_hits += get.found;
    }
  }
  std::printf("lookup success: %zu/%zu inside the region, %zu/%zu outside\n",
              local_hits, local_tries, remote_hits, remote_tries);

  // 2. Geocast the evacuation alert to everyone inside the region.
  const auto cast = overlay.geocast(authority, region, /*payload=*/512);
  std::printf("\ngeocast('evacuate'): %zu/%zu peers reached (%.0f%%) with "
              "%zu messages in %.1f ms\n",
              cast.delivered, cast.expected, 100.0 * cast.coverage(),
              cast.messages, cast.duration_ms);

  // 3. Compare against the naive alternative: flooding everyone.
  std::printf("naive unicast-to-all would cost %zu messages and wake %zu\n"
              "peers outside the region.\n",
              peers.size(), peers.size() - cast.expected);

  // 4. Robustness: the region's supervisors fail mid-crisis.
  const PeerId supervisor = overlay.supervisor_of(authority);
  if (supervisor != authority) {
    net.set_online(supervisor, false);
    const auto degraded = overlay.geocast(authority, region, 512);
    overlay.repair();
    const auto repaired = overlay.geocast(authority, region, 512);
    std::printf("\nsupervisor failure: coverage %.0f%% -> repair() -> %.0f%%\n",
                100.0 * degraded.coverage(), 100.0 * repaired.coverage());
  }
  std::printf(
      "\ntakeaway (paper §2.4): geolocation awareness turns region-scoped\n"
      "services (POI lookup, emergency dissemination) into a handful of\n"
      "tree messages with verifiable coverage.\n");
  return 0;
}
