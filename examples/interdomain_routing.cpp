// Inter-domain overlay routing — Brocade [36] vs flat DHT routing.
// The paper's Table 1 lists Brocade under ISP-location awareness: by
// tunneling wide-area traffic through per-AS supernodes, an overlay
// message crosses AS boundaries once instead of once per overlay hop.
#include <cstdio>

#include "common/stats.hpp"
#include "netinfo/oracle.hpp"
#include "overlay/brocade.hpp"
#include "overlay/kademlia.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;

int main() {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 4, 0.3);
  underlay::Network net(engine, topo, 505);
  const auto peers = net.populate(120);
  std::printf("inter-domain routing: %zu peers over %zu ASes\n", peers.size(),
              topo.as_count());

  netinfo::Oracle oracle(net);
  overlay::kademlia::KademliaSystem dht(net, peers, {}, &oracle);
  dht.join_all();
  overlay::brocade::BrocadeSystem brocade(net, peers);
  std::printf("brocade tier: %zu supernodes elected by capacity\n\n",
              brocade.supernode_count());

  RunningStats flat_crossings, flat_latency;
  RunningStats brocade_crossings, brocade_latency;
  Rng rng(7);
  int routed = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const PeerId src = peers[rng.uniform(peers.size())];
    PeerId dst = src;
    while (dst == src || net.host(dst).as == net.host(src).as) {
      dst = peers[rng.uniform(peers.size())];
    }
    // Flat DHT: locate the destination (RPC legs cross ASes), then send.
    const auto lookup = dht.lookup(src, dht.node_id(dst));
    flat_crossings.add(lookup.mean_rpc_as_hops * double(lookup.messages_sent) +
                       double(net.path_between(src, dst).as_hops()));
    flat_latency.add(lookup.duration_ms +
                     net.rtt_ms(src, dst) / 2.0);
    // Brocade: tunnel through the supernode tier.
    const auto route = brocade.route(src, dst, 1500);
    if (!route.delivered) continue;
    ++routed;
    brocade_crossings.add(double(route.inter_as_crossings));
    brocade_latency.add(route.latency_ms);
  }
  std::printf("flat DHT   : %.1f AS-boundary crossings, %.0f ms per message "
              "(incl. lookup)\n",
              flat_crossings.mean(), flat_latency.mean());
  std::printf("brocade    : %.1f AS-boundary crossings, %.0f ms per message "
              "(%d/30 delivered)\n",
              brocade_crossings.mean(), brocade_latency.mean(), routed);
  std::printf("reduction  : %.1fx fewer inter-domain crossings\n",
              flat_crossings.mean() /
                  std::max(1.0, brocade_crossings.mean()));

  // Supernode churn: kill the busiest supernode and repair.
  const PeerId victim = brocade.supernode_of(net.host(peers[1]).as);
  net.set_online(victim, false);
  const auto broken = brocade.route(peers[0], peers[1], 1500);
  brocade.repair();
  const auto repaired = brocade.route(peers[0], peers[1], 1500);
  std::printf("\nsupernode failure: delivered=%s -> repair() -> delivered=%s\n",
              broken.delivered ? "yes" : "no",
              repaired.delivered ? "yes" : "no");
  std::printf(
      "\ntakeaway: ISP-location awareness at the routing layer confines\n"
      "wide-area overlay traffic to a single supernode tunnel per message\n"
      "— the Brocade [36] entry of the paper's Table 1 in action.\n");
  return 0;
}
