// Latency-aware overlay for live streaming (paper §2.2): VoIP/IPTV-class
// applications need low peer-to-peer delay. A 120-peer swarm builds a
// dissemination mesh three ways — random neighbors, neighbors chosen by
// Vivaldi-predicted RTT, and neighbors chosen by explicit ping — then
// streams from a source and measures per-hop and end-to-end delays plus
// the measurement overhead each collection method cost (§3.2 trade-off).
#include <algorithm>
#include <cstdio>
#include <queue>

#include "core/underlay_service.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;

namespace {

constexpr std::size_t kDegree = 4;

/// Builds a dissemination mesh (each peer links to its top-`kDegree`
/// candidates by the policy) and returns per-peer stream arrival delay
/// from a BFS-style push from the source, using ground-truth RTT/2 per
/// overlay hop.
Samples stream_delays(underlay::Network& net, const std::vector<PeerId>& peers,
                      core::NeighborRankingPolicy& policy) {
  // Streaming meshes keep symmetric links: each peer proposes its top
  // picks plus one random partner (the standard "nearby + random" mesh
  // recipe that keeps the graph connected), and links are mutual.
  std::vector<std::vector<PeerId>> mesh(peers.size());
  Rng rng(7);
  std::vector<std::vector<PeerId>> hostcache(peers.size());
  auto link = [&](std::size_t a, PeerId b) {
    if (PeerId(std::uint32_t(a)) == b) return;
    if (std::find(mesh[a].begin(), mesh[a].end(), b) != mesh[a].end()) return;
    mesh[a].push_back(b);
    mesh[b.value()].push_back(peers[a]);
  };
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (const std::size_t c :
         rng.sample_without_replacement(peers.size(), 30)) {
      if (c != i) hostcache[i].push_back(peers[c]);
    }
    auto ranked = policy.rank(peers[i], hostcache[i]);
    ranked.resize(std::min(ranked.size(), kDegree - 1));
    for (const PeerId pick : ranked) link(i, pick);
    link(i, peers[rng.uniform(peers.size())]);
  }
  // Dijkstra over the overlay mesh with one-way latency edge weights.
  std::vector<double> arrival(peers.size(), 1e18);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  arrival[0] = 0.0;
  frontier.emplace(0.0, 0);
  while (!frontier.empty()) {
    const auto [time, index] = frontier.top();
    frontier.pop();
    if (time > arrival[index]) continue;
    for (const PeerId next : mesh[index]) {
      const double hop = net.rtt_ms(peers[index], next) / 2.0;
      if (time + hop < arrival[next.value()]) {
        arrival[next.value()] = time + hop;
        frontier.emplace(time + hop, next.value());
      }
    }
  }
  Samples delays;
  std::size_t unreached = 0;
  for (std::size_t i = 1; i < peers.size(); ++i) {
    if (arrival[i] < 1e17) {
      delays.add(arrival[i]);
    } else {
      ++unreached;
    }
  }
  if (unreached > 0) std::printf("  (%zu peers unreached by the mesh)\n", unreached);
  return delays;
}

}  // namespace

int main() {
  std::printf("latency-aware streaming mesh: 120 peers, source = peer 0\n");
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 4, 0.3);
  underlay::Network net(engine, topo, 77);
  const auto peers = net.populate(120);

  core::UnderlayServiceConfig config;
  config.pinger.jitter_sigma = 0.02;
  core::UnderlayService service(net, config);

  struct Variant {
    const char* name;
    std::unique_ptr<core::NeighborRankingPolicy> policy;
  };
  std::vector<Variant> variants;
  variants.push_back({"random mesh (no awareness)", core::make_random_policy(3)});
  service.warm_up_coordinates(peers);
  const auto overhead_after_vivaldi = service.overhead();
  variants.push_back(
      {"Vivaldi-predicted RTT (prediction method, §3.2)",
       core::make_latency_policy(service, core::LatencyMethod::kVivaldi)});
  variants.push_back(
      {"explicit ping (explicit measurement, §3.2)",
       core::make_latency_policy(service, core::LatencyMethod::kExplicitPing)});

  for (auto& variant : variants) {
    const auto before = service.overhead();
    const Samples delays = stream_delays(net, peers, *variant.policy);
    const auto after = service.overhead();
    std::printf("\n%s\n", variant.name);
    std::printf("  stream delay: median %.1f ms, p95 %.1f ms, max %.1f ms\n",
                delays.median(), delays.percentile(95), delays.max());
    std::printf("  probes spent during selection: %llu\n",
                static_cast<unsigned long long>(after.ping_probes -
                                                before.ping_probes));
  }
  std::printf(
      "\nVivaldi warm-up cost (one-off, amortized): %llu probes / %llu bytes\n",
      static_cast<unsigned long long>(overhead_after_vivaldi.ping_probes),
      static_cast<unsigned long long>(overhead_after_vivaldi.ping_bytes));
  std::printf(
      "takeaway (paper §2.2/§3.2): latency awareness cuts streaming delay\n"
      "markedly; prediction gets most of the benefit at a fraction of the\n"
      "measurement cost of pinging every candidate.\n");
  return 0;
}
