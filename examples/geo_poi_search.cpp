// Geolocation-based point-of-interest search (paper §2.4): a Globase.KOM-
// style zone-tree overlay [19] answers "which peers are within R km of
// me?" — the paper's motivating use cases are locating nearby services
// and emergency call handling [10]. The example also contrasts the three
// geolocation sources of §3.3 (GPS, ISP-provided, IP-to-location) and
// shows the UTM representation [12], plus supervisor failure + repair.
#include <cstdio>

#include "netinfo/geoprov.hpp"
#include "netinfo/ipmap.hpp"
#include "overlay/geo_overlay.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;

int main() {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(8, 0.35);
  underlay::Network net(engine, topo, 99);
  const auto peers = net.populate(120);
  std::printf("geo overlay: %zu peers across %zu ISPs\n", peers.size(),
              topo.as_count());

  // §3.3: the three geolocation sources, compared on one peer.
  netinfo::IpMappingConfig db_config;
  db_config.location_jitter_deg = 0.3;  // city-level granularity
  netinfo::IpMappingService ip_db(topo, db_config);
  netinfo::GeoProvider geo(net, ip_db);
  const PeerId subject = peers[17];
  const auto truth = net.host(subject).location;
  std::printf("\npeer 17 true position: %.4f, %.4f\n", truth.lat_deg,
              truth.lon_deg);
  const std::pair<netinfo::GeoSource, const char*> sources[] = {
      {netinfo::GeoSource::kGps, "GPS"},
      {netinfo::GeoSource::kIspProvided, "ISP-provided"},
      {netinfo::GeoSource::kIpMapping, "IP-to-location DB"}};
  for (const auto& [source, name] : sources) {
    const auto estimate = geo.locate(subject, source);
    if (!estimate) continue;
    std::printf("  %-18s -> %.4f, %.4f  (error %.2f km)\n", name,
                estimate->lat_deg, estimate->lon_deg,
                underlay::haversine_km(*estimate, truth));
  }
  std::printf("  UTM fix (as in [12]): %s\n",
              geo.locate_utm(subject).to_string().c_str());

  // The zone tree (Globase.KOM-like).
  overlay::geo::GeoOverlay overlay(net, peers, {});
  std::printf("\nzone tree: %zu zones (%zu leaves), depth %zu\n",
              overlay.zone_count(), overlay.leaf_count(),
              overlay.tree_depth());

  // Radius search: "every peer within 250 km of me".
  auto result = overlay.radius_search(subject, truth, 250.0);
  std::printf("radius search (250 km around peer 17): %zu/%zu peers found, "
              "%zu messages, %.1f ms\n",
              result.found.size(), result.expected, result.messages,
              result.duration_ms);
  for (std::size_t i = 0; i < result.found.size() && i < 5; ++i) {
    const auto& host = net.host(result.found[i]);
    std::printf("  #%zu peer %u at %.2f km\n", i + 1,
                result.found[i].value(),
                underlay::haversine_km(host.location, truth));
  }

  // Emergency-service robustness: the supervisor of the subject's zone
  // dies; the query degrades until repair re-elects (paper §2.4's
  // "routing around dead nodes" challenge).
  const PeerId supervisor = overlay.supervisor_of(subject);
  if (supervisor != subject) {
    net.set_online(supervisor, false);
    auto degraded = overlay.radius_search(subject, truth, 250.0);
    std::printf("\nsupervisor peer %u fails -> completeness %.0f%%\n",
                supervisor.value(), 100.0 * degraded.completeness());
    overlay.repair();
    auto repaired = overlay.radius_search(subject, truth, 250.0);
    std::printf("after repair()        -> completeness %.0f%%\n",
                100.0 * repaired.completeness());
  }
  std::printf(
      "\ntakeaway (paper §2.4): a location-aware overlay answers POI and\n"
      "emergency queries with a handful of tree messages instead of a\n"
      "network-wide flood, and recovers from dead supervisors by\n"
      "re-election.\n");
  return 0;
}
