// Resource-aware super-peer selection (paper §2.3 / §3.4 / §4): a hybrid
// overlay elects its super-peers three ways — randomly, from ground-truth
// resources, and from the SkyEye.KOM information-management over-overlay
// [11] that collects peer resources with real (and measured) message
// overhead. Election quality, attachment latency, stability and search
// performance are compared.
#include <cstdio>

#include "netinfo/skyeye.hpp"
#include "overlay/superpeer.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

using namespace uap2p;
using namespace uap2p::overlay::superpeer;

int main() {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net(engine, topo, 1234);
  const auto peers = net.populate(100);
  std::printf("hybrid overlay: %zu peers, electing 8 super-peers\n\n",
              peers.size());

  // Run the SkyEye over-overlay for a few minutes of simulated time so
  // its aggregation tree has the oracle view.
  netinfo::SkyEyeConfig sky_config;
  sky_config.update_period_ms = sim::seconds(30);
  netinfo::SkyEye skyeye(net, peers, sky_config);
  const auto bytes_before = net.traffic().total_bytes();
  skyeye.start();
  engine.run_until(engine.now() + sim::minutes(5));
  skyeye.stop();
  std::printf("SkyEye over-overlay: %llu reports, %llu bytes of overhead, "
              "root sees %llu peers\n",
              static_cast<unsigned long long>(skyeye.reports_sent()),
              static_cast<unsigned long long>(net.traffic().total_bytes() -
                                              bytes_before),
              static_cast<unsigned long long>(skyeye.root_view().peer_count));
  std::printf("system view: total upload %.0f Mbps, total storage %.0f GB, "
              "mean capacity %.2f\n\n",
              skyeye.root_view().total_upload_mbps,
              skyeye.root_view().total_storage_gb,
              skyeye.root_view().mean_capacity);

  struct Variant {
    const char* name;
    ElectionPolicy election;
  };
  for (const Variant variant :
       {Variant{"random election (no awareness)", ElectionPolicy::kRandom},
        Variant{"ground-truth resources (ideal)", ElectionPolicy::kGroundTruth},
        Variant{"SkyEye oracle view (deployed)", ElectionPolicy::kSkyEye}}) {
    Config config;
    config.election = variant.election;
    config.superpeer_count = 8;
    SuperPeerOverlay overlay(net, peers, config, &skyeye);

    // Publish content and search across the mesh.
    for (std::size_t i = 0; i < peers.size(); i += 9) {
      overlay.publish(peers[i], ContentId(std::uint32_t(i % 4)));
    }
    RunningStats search_latency;
    std::size_t found = 0, searches = 0;
    for (std::size_t i = 1; i < peers.size(); i += 7) {
      const auto result = overlay.search(peers[i], ContentId(std::uint32_t(i % 4)));
      ++searches;
      if (result.found) {
        ++found;
        search_latency.add(result.latency_ms);
      }
    }
    std::printf("--- %s ---\n", variant.name);
    std::printf("  mean super-peer capacity: %.2f   expected stability: %.2f\n",
                overlay.mean_superpeer_capacity(),
                overlay.expected_stability());
    std::printf("  mean client->SP RTT: %.1f ms\n",
                overlay.mean_attachment_rtt_ms());
    std::printf("  searches: %zu/%zu found, first result after %.1f ms (mean)\n\n",
                found, searches, search_latency.mean());
  }
  std::printf(
      "takeaway (paper §2.3/§3.4): resource awareness puts the right nodes\n"
      "in the super-peer role; the SkyEye over-overlay delivers nearly the\n"
      "ideal election using only its own aggregated (and paid-for)\n"
      "information.\n");
  return 0;
}
