#include "overlay/superpeer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sim/engine.hpp"

namespace uap2p::overlay::superpeer {
namespace {

struct SpFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 3, 0.3);
  underlay::Network net{engine, topo, 61};
  std::vector<PeerId> peers = net.populate(50);
};

TEST_F(SpFixture, GroundTruthElectionPicksStrongestPeers) {
  Config config;
  config.election = ElectionPolicy::kGroundTruth;
  SuperPeerOverlay overlay(net, peers, config);
  ASSERT_EQ(overlay.superpeers().size(), config.superpeer_count);
  // Every non-superpeer must be weaker than the weakest superpeer.
  double weakest_sp = 1e300;
  for (const PeerId sp : overlay.superpeers()) {
    weakest_sp =
        std::min(weakest_sp, net.host(sp).resources.capacity_score());
  }
  for (const PeerId peer : peers) {
    if (std::find(overlay.superpeers().begin(), overlay.superpeers().end(),
                  peer) != overlay.superpeers().end()) {
      continue;
    }
    EXPECT_LE(net.host(peer).resources.capacity_score(), weakest_sp + 1e-9);
  }
}

TEST_F(SpFixture, GroundTruthBeatsRandomOnCapacityAndStability) {
  Config ground;
  ground.election = ElectionPolicy::kGroundTruth;
  Config random;
  random.election = ElectionPolicy::kRandom;
  SuperPeerOverlay strong(net, peers, ground);
  SuperPeerOverlay weak(net, peers, random);
  EXPECT_GT(strong.mean_superpeer_capacity(), weak.mean_superpeer_capacity());
  EXPECT_GE(strong.expected_stability(), weak.expected_stability());
}

TEST_F(SpFixture, SkyEyeElectionMatchesGroundTruthWhenWarm) {
  netinfo::SkyEyeConfig sky_config;
  sky_config.update_period_ms = sim::seconds(10);
  sky_config.top_k = 16;
  netinfo::SkyEye skyeye(net, peers, sky_config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();

  Config sky;
  sky.election = ElectionPolicy::kSkyEye;
  sky.superpeer_count = 8;
  Config ground;
  ground.election = ElectionPolicy::kGroundTruth;
  ground.superpeer_count = 8;
  SuperPeerOverlay via_skyeye(net, peers, sky, &skyeye);
  SuperPeerOverlay via_truth(net, peers, ground);
  auto sorted = [](std::vector<PeerId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(via_skyeye.superpeers()), sorted(via_truth.superpeers()));
}

TEST_F(SpFixture, LatencyAttachmentBeatsRandom) {
  Config latency;
  latency.attachment = AttachmentPolicy::kLatency;
  Config random;
  random.attachment = AttachmentPolicy::kRandom;
  SuperPeerOverlay near(net, peers, latency);
  SuperPeerOverlay far(net, peers, random);
  EXPECT_LT(near.mean_attachment_rtt_ms(), far.mean_attachment_rtt_ms());
}

TEST_F(SpFixture, EveryClientHasASuperpeer) {
  SuperPeerOverlay overlay(net, peers, {});
  for (const PeerId peer : peers) {
    EXPECT_TRUE(overlay.superpeer_of(peer).is_valid());
  }
}

TEST_F(SpFixture, LoadAccountsForAllClients) {
  SuperPeerOverlay overlay(net, peers, {});
  const auto load = overlay.load_distribution();
  const std::size_t total =
      std::accumulate(load.begin(), load.end(), std::size_t{0});
  EXPECT_EQ(total, peers.size() - overlay.superpeers().size());
}

TEST_F(SpFixture, SearchFindsPublishedContent) {
  SuperPeerOverlay overlay(net, peers, {});
  const ContentId content(5);
  overlay.publish(peers[20], content);
  overlay.publish(peers[33], content);
  const SearchResult result = overlay.search(peers[7], content);
  EXPECT_TRUE(result.found);
  EXPECT_GE(result.providers, 1u);
  EXPECT_GT(result.latency_ms, 0.0);
  EXPECT_GT(result.messages, 0u);
}

TEST_F(SpFixture, SearchAcrossTheMesh) {
  // Publisher and searcher attached to different super-peers: the mesh
  // relay must still find it.
  Config config;
  config.superpeer_count = 10;
  SuperPeerOverlay overlay(net, peers, config);
  PeerId publisher = PeerId::invalid(), searcher = PeerId::invalid();
  for (const PeerId a : peers) {
    for (const PeerId b : peers) {
      if (overlay.superpeer_of(a).is_valid() &&
          overlay.superpeer_of(b).is_valid() &&
          overlay.superpeer_of(a) != overlay.superpeer_of(b)) {
        publisher = a;
        searcher = b;
        break;
      }
    }
    if (publisher.is_valid()) break;
  }
  ASSERT_TRUE(publisher.is_valid());
  overlay.publish(publisher, ContentId(9));
  const SearchResult result = overlay.search(searcher, ContentId(9));
  EXPECT_TRUE(result.found);
}

TEST_F(SpFixture, MissingContentNotFound) {
  SuperPeerOverlay overlay(net, peers, {});
  const SearchResult result = overlay.search(peers[4], ContentId(404));
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.providers, 0u);
}

TEST_F(SpFixture, SuperpeerSearchesItsOwnIndex) {
  SuperPeerOverlay overlay(net, peers, {});
  const PeerId sp = overlay.superpeers()[0];
  overlay.publish(sp, ContentId(12));
  const SearchResult result = overlay.search(sp, ContentId(12));
  EXPECT_TRUE(result.found);
}

}  // namespace
}  // namespace uap2p::overlay::superpeer
