// The kCustom tracker hook: any §3 collector can drive BitTorrent
// neighbor selection. Exercised here with the P4P iTracker [29].
#include <gtest/gtest.h>

#include "netinfo/p4p.hpp"
#include "overlay/bittorrent.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::bittorrent {
namespace {

struct CustomTrackerFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net{engine, topo, 101};
  std::vector<PeerId> peers = net.populate(60);
  netinfo::ITracker itracker{net};
  netinfo::P4pSelector selector{itracker};

  Config p4p_config() {
    Config config;
    config.policy = NeighborPolicy::kCustom;
    config.piece_count = 16;
    config.custom_ranker = [this](PeerId self,
                                  std::span<const PeerId> candidates) {
      return selector.rank(self, candidates);
    };
    return config;
  }
};

TEST_F(CustomTrackerFixture, P4pDrivenSwarmCompletes) {
  BitTorrentSwarm swarm(net, peers, 2, p4p_config());
  swarm.build_neighborhoods();
  const std::size_t rounds = swarm.run(3000);
  EXPECT_LT(rounds, 3000u);
  EXPECT_EQ(swarm.stats().completed, peers.size() - 2);
  EXPECT_TRUE(swarm.overlay_connected());
}

TEST_F(CustomTrackerFixture, P4pLocalizesLikeBiasedSelection) {
  BitTorrentSwarm p4p_swarm(net, peers, 2, p4p_config());
  p4p_swarm.build_neighborhoods();
  Config random_config;
  random_config.policy = NeighborPolicy::kRandom;
  random_config.piece_count = 16;
  random_config.seed = 7;
  BitTorrentSwarm random_swarm(net, peers, 2, random_config);
  random_swarm.build_neighborhoods();
  EXPECT_GT(p4p_swarm.intra_as_edge_fraction(),
            random_swarm.intra_as_edge_fraction() + 0.2);
}

TEST_F(CustomTrackerFixture, RandomRobustnessLinksKept) {
  Config config = p4p_config();
  config.external_neighbors = 2;
  BitTorrentSwarm swarm(net, peers, 2, config);
  swarm.build_neighborhoods();
  // Every peer keeps at least its configured degree's worth of links.
  for (const PeerId peer : peers) {
    EXPECT_GE(swarm.neighbors_of(peer).size(), 3u);
  }
  EXPECT_TRUE(swarm.overlay_connected());
}

}  // namespace
}  // namespace uap2p::overlay::bittorrent
