// Property suite: RoutingTable vs a brute-force Floyd-Warshall reference
// on every topology generator and on random graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "underlay/calendar_queue.hpp"
#include "underlay/hierarchy.hpp"
#include "underlay/routing.hpp"

namespace uap2p::underlay {
namespace {

constexpr double kInf = std::numeric_limits<double>::max();

/// O(V^3) reference all-pairs shortest paths over link latencies.
std::vector<std::vector<double>> floyd_warshall(const AsTopology& topo) {
  const std::size_t n = topo.router_count();
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInf));
  for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0.0;
  for (const Link& link : topo.links()) {
    const std::size_t a = link.a.value(), b = link.b.value();
    dist[a][b] = std::min(dist[a][b], link.latency_ms);
    dist[b][a] = std::min(dist[b][a], link.latency_ms);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i][k] == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (dist[k][j] == kInf) continue;
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  return dist;
}

class RoutingVsReferenceP : public ::testing::TestWithParam<int> {
 protected:
  AsTopology make_topology() const {
    TopologyConfig config;
    config.seed = 1000 + GetParam();
    switch (GetParam() % 5) {
      case 0: return AsTopology::ring(6, config);
      case 1: return AsTopology::star(7, config);
      case 2: return AsTopology::tree(9, 2, config);
      case 3: return AsTopology::mesh(8, 0.3, config);
      default: return AsTopology::transit_stub(2, 3, 0.4, config);
    }
  }
};

TEST_P(RoutingVsReferenceP, DijkstraMatchesFloydWarshall) {
  const AsTopology topo = make_topology();
  RoutingTable routing(topo);
  const auto reference = floyd_warshall(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const double expected = reference[i][j];
      const auto& info = routing.path(RouterId(i), RouterId(j));
      if (expected == kInf) {
        EXPECT_FALSE(info.reachable);
      } else {
        ASSERT_TRUE(info.reachable) << i << "->" << j;
        EXPECT_NEAR(info.latency_ms, expected, 1e-9) << i << "->" << j;
      }
    }
  }
}

TEST_P(RoutingVsReferenceP, RouterPathLatencySumsCorrectly) {
  const AsTopology topo = make_topology();
  RoutingTable routing(topo);
  Rng rng(GetParam());
  const auto n = topo.router_count();
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RouterId(std::uint32_t(rng.uniform(n)));
    const auto b = RouterId(std::uint32_t(rng.uniform(n)));
    const auto path = routing.router_path(a, b);
    if (path.empty()) continue;
    double acc = 0.0;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      double best = kInf;
      for (const auto& neighbor : topo.neighbors(path[k])) {
        if (neighbor.router == path[k + 1]) {
          best = std::min(best, topo.link(neighbor.link_index).latency_ms);
        }
      }
      ASSERT_LT(best, kInf) << "non-adjacent consecutive routers";
      acc += best;
    }
    EXPECT_NEAR(acc, routing.latency_ms(a, b), 1e-9);
  }
}

TEST_P(RoutingVsReferenceP, CrossingCountsMatchPathWalk) {
  const AsTopology topo = make_topology();
  RoutingTable routing(topo);
  Rng rng(GetParam() * 7 + 1);
  const auto n = topo.router_count();
  for (int trial = 0; trial < 15; ++trial) {
    const auto a = RouterId(std::uint32_t(rng.uniform(n)));
    const auto b = RouterId(std::uint32_t(rng.uniform(n)));
    const auto& info = routing.path(a, b);
    if (!info.reachable) continue;
    const auto path = routing.router_path(a, b);
    std::uint32_t transit = 0, peering = 0, hops = 0;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      for (const auto& neighbor : topo.neighbors(path[k])) {
        if (neighbor.router != path[k + 1]) continue;
        const Link& link = topo.link(neighbor.link_index);
        // The shortest parallel link is the one Dijkstra used.
        ++hops;
        if (link.type == LinkType::kTransit) ++transit;
        if (link.type == LinkType::kPeering) ++peering;
        break;
      }
    }
    EXPECT_EQ(info.router_hops, hops);
    EXPECT_EQ(info.transit_crossings, transit);
    EXPECT_EQ(info.peering_crossings, peering);
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, RoutingVsReferenceP,
                         ::testing::Range(0, 10));

// --- CSR core vs the retained adjacency-list reference -------------------

namespace {

void expect_bit_identical(const PathInfo& a, const PathInfo& b,
                          std::uint32_t i, std::uint32_t j) {
  EXPECT_EQ(a.reachable, b.reachable) << i << "->" << j;
  EXPECT_EQ(a.latency_ms, b.latency_ms) << i << "->" << j;  // exact, not near
  EXPECT_EQ(a.bottleneck_mbps, b.bottleneck_mbps) << i << "->" << j;
  EXPECT_EQ(a.router_hops, b.router_hops) << i << "->" << j;
  EXPECT_EQ(a.transit_crossings, b.transit_crossings) << i << "->" << j;
  EXPECT_EQ(a.peering_crossings, b.peering_crossings) << i << "->" << j;
  EXPECT_EQ(a.as_crossings, b.as_crossings) << i << "->" << j;
}

/// The pre-CSR RoutingTable implementation, retained verbatim in spirit as
/// the reference: per-source Dijkstra walking AsTopology::neighbors()
/// adjacency lists through a std::priority_queue with (distance, router)
/// ordering, then a per-destination path walk that materializes every
/// aggregate the production table now keeps in its compact rows.
struct ReferenceDijkstra {
  explicit ReferenceDijkstra(const AsTopology& topo) : topo_(topo) {}

  struct Result {
    PathInfo info;
    std::vector<AsId> as_path;
  };

  Result query(RouterId src, RouterId dst) const {
    const std::size_t n = topo_.router_count();
    std::vector<double> dist(n, kInf);
    std::vector<std::uint32_t> prev_link(
        n, std::numeric_limits<std::uint32_t>::max());
    using Item = std::pair<double, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    dist[src.value()] = 0.0;
    queue.push({0.0, src.value()});
    while (!queue.empty()) {
      const auto [d, node] = queue.top();
      queue.pop();
      if (d > dist[node]) continue;  // stale entry
      for (const auto& neighbor : topo_.neighbors(RouterId(node))) {
        const Link& link = topo_.link(neighbor.link_index);
        const double candidate = d + link.latency_ms;
        if (candidate < dist[neighbor.router.value()]) {
          dist[neighbor.router.value()] = candidate;
          prev_link[neighbor.router.value()] =
              static_cast<std::uint32_t>(neighbor.link_index);
          queue.push({candidate, neighbor.router.value()});
        }
      }
    }
    Result result;
    if (dist[dst.value()] == kInf) {
      result.info.latency_ms = kUnreachableLatency;
      return result;
    }
    result.info.reachable = true;
    result.info.latency_ms = dist[dst.value()];
    result.info.bottleneck_mbps =
        src == dst ? 0.0 : std::numeric_limits<double>::max();
    result.as_path.push_back(topo_.as_of(dst));
    for (RouterId node = dst; node != src;) {
      const Link& link = topo_.link(prev_link[node.value()]);
      const RouterId parent = link.a == node ? link.b : link.a;
      ++result.info.router_hops;
      if (link.type == LinkType::kTransit) ++result.info.transit_crossings;
      if (link.type == LinkType::kPeering) ++result.info.peering_crossings;
      if (topo_.as_of(parent) != topo_.as_of(node)) {
        ++result.info.as_crossings;
        result.as_path.push_back(topo_.as_of(parent));
      }
      result.info.bottleneck_mbps =
          std::min(result.info.bottleneck_mbps, link.bandwidth_mbps);
      node = parent;
    }
    if (src == dst) result.as_path = {topo_.as_of(src)};
    std::reverse(result.as_path.begin(), result.as_path.end());
    return result;
  }

  const AsTopology& topo_;
};

/// Every pair, both the lazy and the warmed CSR table, against the
/// adjacency-list reference. Latency / reachability / bottleneck must be
/// bit-identical (same additions in the same order); hop and crossing
/// counts and the interned AS sequence must agree exactly.
void expect_matches_reference(const AsTopology& topo) {
  const ReferenceDijkstra reference(topo);
  RoutingTable lazy(topo);
  RoutingTable warmed(topo);
  warmed.warm_all();
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const auto expected = reference.query(RouterId(i), RouterId(j));
      expect_bit_identical(lazy.path(RouterId(i), RouterId(j)), expected.info,
                           i, j);
      expect_bit_identical(warmed.path(RouterId(i), RouterId(j)),
                           expected.info, i, j);
      if (!expected.info.reachable) continue;
      const auto as_path = lazy.as_path(RouterId(i), RouterId(j));
      ASSERT_EQ(as_path.size(), expected.as_path.size()) << i << "->" << j;
      for (std::size_t k = 0; k < as_path.size(); ++k)
        EXPECT_EQ(as_path[k], expected.as_path[k]) << i << "->" << j;
    }
  }
}

}  // namespace

TEST_P(RoutingVsReferenceP, CsrMatchesAdjacencyListReference) {
  expect_matches_reference(make_topology());
}

TEST(RoutingVsReference, RandomMeshes) {
  for (int trial = 0; trial < 6; ++trial) {
    TopologyConfig config;
    config.seed = 4000 + trial;
    expect_matches_reference(
        AsTopology::mesh(6 + 3 * trial, 0.15 + 0.05 * trial, config));
  }
}

TEST(RoutingVsReference, RandomTransitStubs) {
  for (int trial = 0; trial < 4; ++trial) {
    TopologyConfig config;
    config.seed = 5000 + trial;
    expect_matches_reference(
        AsTopology::transit_stub(2 + trial % 2, 3 + trial, 0.3, config));
  }
}

TEST_P(RoutingVsReferenceP, SelfPathsAreZero) {
  const AsTopology topo = make_topology();
  RoutingTable routing(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    const PathInfo info = routing.path(RouterId(i), RouterId(i));
    EXPECT_TRUE(info.reachable);
    EXPECT_EQ(info.latency_ms, 0.0);
    EXPECT_EQ(info.router_hops, 0u);
    EXPECT_EQ(info.as_hops(), 0u);
    const auto self_as = routing.as_path(RouterId(i), RouterId(i));
    ASSERT_EQ(self_as.size(), 1u);
    EXPECT_EQ(self_as.front(), topo.as_of(RouterId(i)));
  }
}

TEST(RoutingFlatCache, UnreachablePartitionIsStableAndChecked) {
  // Two disconnected mesh islands: every cross-island pair is unreachable
  // in both directions, and the checked accessors let callers branch
  // instead of summing kUnreachableLatency.
  AsTopology topo;
  std::vector<RouterId> left, right;
  const AsId as_l = topo.add_as("left", false, {50, 8});
  const AsId as_r = topo.add_as("right", false, {10, 100});
  for (int i = 0; i < 4; ++i) left.push_back(topo.add_router(as_l, {50, 8}));
  for (int i = 0; i < 4; ++i) right.push_back(topo.add_router(as_r, {10, 100}));
  for (int i = 0; i < 3; ++i) {
    topo.connect(left[i], left[i + 1], LinkType::kInternal, 1.0, 1000);
    topo.connect(right[i], right[i + 1], LinkType::kInternal, 1.0, 1000);
  }
  RoutingTable routing(topo);
  for (const RouterId a : left) {
    for (const RouterId b : right) {
      for (int pass = 0; pass < 2; ++pass) {  // second pass hits the cache
        const PathInfo& forward = routing.path(a, b);
        const PathInfo& back = routing.path(b, a);
        EXPECT_FALSE(forward.reachable);
        EXPECT_FALSE(back.reachable);
        EXPECT_EQ(forward.latency_ms, kUnreachableLatency);
        EXPECT_EQ(routing.latency_ms(a, b), kUnreachableLatency);
        EXPECT_FALSE(forward.checked_latency_ms().has_value());
        EXPECT_EQ(forward.latency_or(-1.0), -1.0);
      }
    }
  }
  // Intra-island pairs stay reachable and checked accessors pass through.
  const PathInfo& local = routing.path(left[0], left[3]);
  ASSERT_TRUE(local.reachable);
  EXPECT_EQ(local.checked_latency_ms().value(), 3.0);
  EXPECT_EQ(local.latency_or(-1.0), 3.0);
}

TEST(RoutingFlatCache, InternedSpansSurviveStoreGrowth) {
  // as_path() hands out spans that callers may hold across further
  // lookups; growing the interned store (and the arena behind it) must not
  // move previously returned sequences.
  const AsTopology topo = AsTopology::transit_stub(3, 6, 0.4);
  RoutingTable routing(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  const auto early = routing.as_path(RouterId(0), RouterId(n - 1));
  ASSERT_FALSE(early.empty());
  const std::vector<AsId> early_copy(early.begin(), early.end());
  for (std::uint32_t i = 0; i < n; ++i)  // force store + arena growth
    for (std::uint32_t j = 0; j < n; ++j)
      (void)routing.as_path(RouterId(i), RouterId(j));
  const auto again = routing.as_path(RouterId(0), RouterId(n - 1));
  EXPECT_EQ(early.data(), again.data());  // memoized, not re-interned
  ASSERT_EQ(early.size(), early_copy.size());
  for (std::size_t k = 0; k < early.size(); ++k)
    EXPECT_EQ(early[k], early_copy[k]);
}

// --- Hierarchical warm vs flat warm: byte identity -----------------------

namespace {

/// warm_all_hierarchical's whole contract: every DestEntry row must be
/// byte-for-byte what warm_all computes — same IEEE-754 sums, same
/// canonical tie-breaks — so snapshots, the bench cache, and the oracle
/// tier can treat the warm paths as interchangeable.
void expect_hier_rows_identical(const AsTopology& topo) {
  RoutingTable flat(topo);
  flat.warm_all();
  RoutingTable hier(topo);
  hier.warm_all_hierarchical();
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t src = 0; src < n; ++src) {
    const auto flat_row = flat.row(RouterId(src));
    const auto hier_row = hier.row(RouterId(src));
    ASSERT_EQ(0, std::memcmp(flat_row.data(), hier_row.data(),
                             n * sizeof(RoutingTable::DestEntry)))
        << "row " << src << " diverges";
  }
}

}  // namespace

TEST_P(RoutingVsReferenceP, HierarchicalRowsBytesMatchFlat) {
  expect_hier_rows_identical(make_topology());
}

TEST(RoutingHierarchical, RandomTransitStubRowsBytesMatchFlat) {
  // The archetype the contraction targets, randomized across shape and
  // seed: multiple providers, varying stub fanout and peering density.
  for (int trial = 0; trial < 8; ++trial) {
    TopologyConfig config;
    config.seed = 9000 + trial;
    config.routers_per_as = 2 + trial % 3;
    expect_hier_rows_identical(AsTopology::transit_stub(
        2 + trial % 3, 2 + trial, 0.15 * (trial % 4), config));
  }
}

TEST(RoutingHierarchical, RandomMeshRowsBytesMatchFlat) {
  // Meshes have no stub structure: the plan must degrade to inner-core
  // Dijkstra (plus pendant contraction of internal routers) and still
  // reproduce the flat bytes.
  for (int trial = 0; trial < 4; ++trial) {
    TopologyConfig config;
    config.seed = 9100 + trial;
    expect_hier_rows_identical(
        AsTopology::mesh(6 + 3 * trial, 0.15 + 0.1 * trial, config));
  }
}

TEST(RoutingHierarchical, DisconnectedIslandsMatchFlat) {
  // Unreachable sweep parity: two mesh islands, cross-island rows must be
  // stamped identically by both warm paths.
  AsTopology topo;
  const AsId as_l = topo.add_as("left", true, {50, 8});
  const AsId as_r = topo.add_as("right", false, {10, 100});
  std::vector<RouterId> left, right;
  for (int i = 0; i < 4; ++i) left.push_back(topo.add_router(as_l, {50, 8}));
  for (int i = 0; i < 4; ++i) right.push_back(topo.add_router(as_r, {10, 100}));
  for (int i = 0; i < 3; ++i) {
    topo.connect(left[i], left[i + 1], LinkType::kInternal, 1.0, 1000);
    topo.connect(right[i], right[i + 1], LinkType::kInternal, 1.0, 1000);
  }
  expect_hier_rows_identical(topo);
}

TEST(RoutingHierarchical, PlanContractsTransitStub) {
  // Sanity on the plan itself: the canonical transit-stub shape must
  // actually contract (pendant internal routers + star stub groups), or
  // the "speedup" rows in BENCH_micro.json would silently measure the
  // flat path twice.
  const AsTopology topo = AsTopology::transit_stub(4, 16, 0.3);
  const auto plan = HierarchyPlan::build(topo);
  EXPECT_TRUE(plan->contracted());
  EXPECT_GT(plan->pendant_count(), 0u);
  EXPECT_GT(plan->group_count(), 0u);
  EXPECT_EQ(plan->star_group_count(), plan->group_count())
      << "default transit-stub groups should all pass the star test";
  EXPECT_LT(plan->inner_core().size(), topo.router_count() / 2)
      << "most routers should be contracted away from the Dijkstra core";
  // Contracted + core routers partition the graph.
  std::size_t grouped = 0;
  for (std::uint32_t v = 0; v < topo.router_count(); ++v) {
    grouped += plan->group_of(v) != UINT32_MAX ? 1 : 0;
  }
  EXPECT_EQ(plan->core_order().size() + plan->pendant_count(),
            topo.router_count());
  EXPECT_EQ(grouped + plan->inner_core().size() + plan->pendant_count(),
            topo.router_count());
}

TEST(CalendarQueue, SeededFarPastLapKeepsPopOrder) {
  // Regression: a queue seeded at distance >= 2 * max_weight (absolute
  // bucket >= 512) used to start its cursor at 0, leaving it lagging the
  // true bucket index by a whole lap — a push into the bucket being
  // drained then missed the pending-insert path and popped 512 buckets
  // late, out of order. With max_weight = 1.0 the bucket width is 1/256:
  // 3.0005 shares the seed's bucket, 3.01 lands two buckets later.
  detail::CalendarQueue q;
  q.reset(1.0, 8, 3.0);
  q.push(3.0, 0);
  EXPECT_EQ(0u, q.pop().node);
  q.push(3.0005, 1);
  q.push(3.01, 2);
  EXPECT_EQ(1u, q.pop().node);  // pre-fix this popped node 2 first
  EXPECT_EQ(2u, q.pop().node);
  EXPECT_EQ(0u, q.size());
}

TEST(RoutingHierarchical, FarMiniGroupSubBucketEdgesMatchFlat) {
  // Regression for the same cursor-lag bug end to end: a non-star (mini)
  // stub group whose attachment sits 3 * max_weight away from the source
  // forces phase C's run_region to seed its queue a full bucket lap past
  // 0, and the group's sub-bucket-width edges (0.125 ms vs a 100/256 ms
  // bucket) land in the very bucket being drained. The exact float tie at
  // s4 (400.125 + 0.5 == 400.5 + 0.125) then resolves by settle order, so
  // a lagged cursor flips the first-achiever parent and changes row
  // bytes. All weights are binary fractions, so the ties are exact.
  AsTopology topo;
  const AsId transit = topo.add_as("transit", true, {0, 0});
  const AsId stub = topo.add_as("stub", false, {0, 10});
  std::vector<RouterId> t, s;
  for (int i = 0; i < 4; ++i) t.push_back(topo.add_router(transit, {0, 0}));
  for (int i = 0; i < 5; ++i) s.push_back(topo.add_router(stub, {0, 10}));
  for (int i = 0; i < 3; ++i) {
    topo.connect(t[i], t[i + 1], LinkType::kInternal, 100.0, 1000);
  }
  topo.connect(t[3], s[0], LinkType::kTransit, 100.0, 1000);
  topo.connect(s[0], s[1], LinkType::kInternal, 0.125, 1000);
  topo.connect(s[0], s[2], LinkType::kInternal, 0.5, 1000);
  topo.connect(s[0], s[3], LinkType::kInternal, 0.25, 1000);
  topo.connect(s[1], s[3], LinkType::kInternal, 0.125, 1000);
  topo.connect(s[1], s[4], LinkType::kInternal, 0.5, 1000);
  topo.connect(s[2], s[4], LinkType::kInternal, 0.125, 1000);
  // The 100.25-via-s0 vs 100.125+0.125-via-s1 tie at s3 must fail the
  // star-margin test, or phase C would stream offset-invariant folds and
  // never exercise the far-seeded region Dijkstra.
  const auto plan = HierarchyPlan::build(topo);
  ASSERT_EQ(1u, plan->group_count());
  ASSERT_EQ(0u, plan->star_group_count());
  expect_hier_rows_identical(topo);
}

TEST(RoutingHierarchical, RewarmAfterMutationDropsStalePlan) {
  // Regression: the contraction plan used to be invalidated only while
  // csr_dirty_ was still set, but warm_all_hierarchical rebuilds the CSR
  // (clearing the flag) before asking for the plan — so a warm after a
  // mutation silently reused the plan baked from the old edges. Mutators
  // must drop the plan eagerly.
  AsTopology topo = AsTopology::transit_stub(2, 3, 0.4);
  {
    RoutingTable first(topo);
    first.warm_all_hierarchical();  // caches the plan on the topology
    ASSERT_NE(nullptr, topo.hierarchy_plan());
  }
  // Mutate both ways: a new router and a cross-stub shortcut that
  // reroutes traffic which previously crossed the transit core.
  const RouterId extra = topo.add_router(topo.ases()[1].id, {0, 0});
  topo.connect(extra, RouterId(0), LinkType::kInternal, 0.25, 1000);
  topo.connect(RouterId(2),
               RouterId(static_cast<std::uint32_t>(topo.router_count() - 2)),
               LinkType::kPeering, 0.5, 1000);
  expect_hier_rows_identical(topo);
}

TEST(RoutingHierarchical, ArenaPoolSizeMismatchAndTrim) {
  // The recycler keeps one retired row image; a differently sized warm
  // must release it (not strand it), and trim must be callable anytime.
  const AsTopology small = AsTopology::transit_stub(2, 2, 0.0);
  const AsTopology large = AsTopology::transit_stub(2, 4, 0.0);
  {
    RoutingTable t(small);
    t.warm_all_hierarchical();
  }  // retires small's arena to the pool
  {
    RoutingTable t(large);
    t.warm_all_hierarchical();  // mismatched take frees the small image
  }
  RoutingTable::trim_row_arena_pool();
  expect_hier_rows_identical(small);  // fresh arena path still correct
  RoutingTable::trim_row_arena_pool();
}

TEST(RoutingAlt, LowerBoundNeverExceedsTrueDistance) {
  const AsTopology topo = AsTopology::transit_stub(3, 8, 0.3);
  RoutingTable table(topo);
  table.warm_all();
  const auto landmarks = AltLandmarks::build(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = RouterId(std::uint32_t(rng.uniform(n)));
    const auto b = RouterId(std::uint32_t(rng.uniform(n)));
    const PathInfo info = table.path(a, b);
    if (!info.reachable) continue;
    const double lb = landmarks->lower_bound(a.value(), b.value());
    const double ub = landmarks->upper_bound(a.value(), b.value());
    // The float slack the point_path prune budgets for is far below 1e-6
    // at these sizes.
    EXPECT_LE(lb, info.latency_ms + 1e-6) << a.value() << "->" << b.value();
    EXPECT_GE(ub, info.latency_ms - 1e-6) << a.value() << "->" << b.value();
  }
}

TEST_P(RoutingVsReferenceP, PointPathBytesMatchWarmedPath) {
  const AsTopology topo = make_topology();
  RoutingTable warmed(topo);
  warmed.warm_all();
  RoutingTable lazy(topo);  // point_path must not warm any row
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const PathInfo expected = warmed.path(RouterId(i), RouterId(j));
      const PathInfo got = lazy.point_path(RouterId(i), RouterId(j));
      expect_bit_identical(got, expected, i, j);
    }
  }
  EXPECT_EQ(lazy.cached_sources(), 0u) << "point_path warmed a row";
}

TEST(RoutingAlt, PointPathOnRandomTransitStubs) {
  for (int trial = 0; trial < 3; ++trial) {
    TopologyConfig config;
    config.seed = 9500 + trial;
    const AsTopology topo =
        AsTopology::transit_stub(3, 5 + trial, 0.3, config);
    RoutingTable warmed(topo);
    warmed.warm_all();
    RoutingTable lazy(topo);
    const auto n = static_cast<std::uint32_t>(topo.router_count());
    Rng rng(trial);
    for (int q = 0; q < 300; ++q) {
      const auto a = RouterId(std::uint32_t(rng.uniform(n)));
      const auto b = RouterId(std::uint32_t(rng.uniform(n)));
      expect_bit_identical(lazy.point_path(a, b), warmed.path(a, b),
                           a.value(), b.value());
    }
  }
}

TEST(RoutingRandomGraphs, HandMadeMultiEdgePicksCheapest) {
  AsTopology topo;
  const AsId as = topo.add_as("x", false, {50, 8});
  const RouterId r0 = topo.add_router(as, {50, 8});
  const RouterId r1 = topo.add_router(as, {50.1, 8.1});
  topo.connect(r0, r1, LinkType::kInternal, 10.0, 100);
  topo.connect(r0, r1, LinkType::kInternal, 2.0, 100);  // parallel, cheaper
  RoutingTable routing(topo);
  EXPECT_DOUBLE_EQ(routing.latency_ms(r0, r1), 2.0);
}

}  // namespace
}  // namespace uap2p::underlay
