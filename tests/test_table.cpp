#include "common/table.hpp"

#include <gtest/gtest.h>

namespace uap2p {
namespace {

TEST(TablePrinter, AlignedOutputContainsAllCells) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, RowBuilderCommitsOnDestruction) {
  TablePrinter table({"a", "b", "c"});
  {
    auto row = table.row();
    row.cell("x").cell(3.14159, 2).cell(std::uint64_t{7});
  }
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.to_string().find("3.14"), std::string::npos);
}

TEST(TablePrinter, CsvFormat) {
  TablePrinter table({"h1", "h2"});
  table.add_row({"v1", "v2"});
  EXPECT_EQ(table.to_csv(), "h1,h2\nv1,v2\n");
}

TEST(TablePrinter, FmtPrecision) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fmt(1.0, 0), "1");
  EXPECT_EQ(TablePrinter::fmt(-2.5, 1), "-2.5");
}

TEST(TablePrinter, FmtCompactMatchesPaperStyle) {
  // The paper's Table 1 reports counts like "7.6M".
  EXPECT_EQ(TablePrinter::fmt_compact(7'600'000), "7.6M");
  EXPECT_EQ(TablePrinter::fmt_compact(75'500'000), "75.5M");
  EXPECT_EQ(TablePrinter::fmt_compact(1'500), "1.5k");
  EXPECT_EQ(TablePrinter::fmt_compact(999), "999");
}

TEST(TablePrinter, IntCellTypes) {
  TablePrinter table({"i", "u", "d"});
  {
    auto row = table.row();
    row.cell(-5).cell(std::uint64_t{18446744073709551615ull}).cell(2.0, 1);
  }
  const std::string out = table.to_string();
  EXPECT_NE(out.find("-5"), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace uap2p
