// Concurrency stress for the oracle query tier, built and run under
// ThreadSanitizer via the "parallel" label: the bounded MPMC ring under
// producer/consumer contention, rank queries racing atomic snapshot
// swaps, and exact shed-counter accounting when an overloaded service
// drops requests at admission and at the deadline. These are the races
// the OracleService design document claims are benign; TSan holds it to
// that.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "oracle/ring.hpp"
#include "oracle/service.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::oracled {
namespace {

std::shared_ptr<const underlay::SharedRouting> stress_routing() {
  static const auto routing = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(3, 5, 0.3), /*threads=*/2);
  return routing;
}

TEST(MpmcRingParallel, NoLossNoDuplicationUnderContention) {
  // 4 producers push disjoint value ranges, 4 consumers drain; every
  // value must come out exactly once. Push failures (ring momentarily
  // full) are retried, so the totals are exact, not statistical.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpmcRing<std::uint64_t> ring(256);
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::atomic<std::uint32_t>> seen(kProducers * kPerProducer);
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = p * kPerProducer + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::uint64_t value = 0;
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (!ring.try_pop(value)) {
          std::this_thread::yield();
          continue;
        }
        seen[value].fetch_add(1, std::memory_order_relaxed);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1u) << "value " << i;
  }
}

/// Client-side request pool: `count` requests with `k` candidates each,
/// contiguous arenas, reusable across submission rounds.
struct RequestPool {
  std::unique_ptr<RankRequest[]> requests;
  std::vector<Candidate> candidates;
  std::vector<std::uint32_t> ranked;
  std::size_t count;

  RequestPool(std::size_t count_, std::size_t k, std::uint32_t routers)
      : count(count_) {
    requests = std::make_unique<RankRequest[]>(count);
    candidates.resize(count * k);
    ranked.resize(count * k);
    std::uint64_t rng = 4242;
    auto next = [&rng] {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      return std::uint32_t(rng >> 33);
    };
    for (std::size_t i = 0; i < count; ++i) {
      requests[i].client_router = next() % routers;
      requests[i].candidate_count = std::uint32_t(k);
      requests[i].candidates = candidates.data() + i * k;
      requests[i].ranked = ranked.data() + i * k;
      for (std::size_t c = 0; c < k; ++c) {
        candidates[i * k + c] = {next() % 512, next() % routers};
      }
    }
  }
};

TEST(OracleServiceParallel, RankQueriesRaceSnapshotSwaps) {
  // 3 submitter threads hammer the service while the main thread
  // publishes alternating snapshots as fast as it can. Every request
  // must complete (no deadline, retry on admission shed) and every
  // completion must be a valid permutation-ranked answer; TSan checks
  // the swap itself.
  const auto routing = stress_routing();
  const auto alternate = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(3, 5, 0.3), /*threads=*/2);
  const auto routers = std::uint32_t(routing->topology().router_count());
  ServiceConfig config;
  config.workers = 2;
  config.ring_capacity = 128;
  config.max_batch = 32;
  OracleService service(routing, config);

  constexpr std::size_t kSubmitters = 3;
  constexpr std::size_t kPerSubmitter = 2000;
  std::vector<std::unique_ptr<RequestPool>> pools;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    pools.push_back(std::make_unique<RequestPool>(kPerSubmitter, 4, routers));
  }
  std::atomic<bool> swapping{true};
  std::thread swapper([&] {
    std::uint64_t round = 0;
    while (swapping.load(std::memory_order_acquire)) {
      service.publish((++round % 2 != 0) ? alternate : routing);
    }
  });
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      RequestPool& pool = *pools[s];
      for (std::size_t i = 0; i < pool.count; ++i) {
        while (!service.submit(&pool.requests[i])) {
          std::this_thread::yield();
        }
      }
      for (std::size_t i = 0; i < pool.count; ++i) {
        EXPECT_EQ(wait_terminal(pool.requests[i]), RequestState::kDone);
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  swapping.store(false, std::memory_order_release);
  swapper.join();
  service.stop();

  EXPECT_EQ(service.completed(), kSubmitters * kPerSubmitter);
  EXPECT_GT(service.swaps_observed(), 0u);
  // Both snapshots came from the same topology seed, so ranked results
  // are swap-invariant: re-rank one pool directly and compare.
  for (std::size_t i = 0; i < 50; ++i) {
    RequestPool& pool = *pools[0];
    std::vector<std::uint32_t> served(
        pool.requests[i].ranked,
        pool.requests[i].ranked + pool.requests[i].candidate_count);
    pool.requests[i].state.store(RequestState::kFree);
    rank_request(*routing, pool.requests[i]);
    const std::vector<std::uint32_t> direct(
        pool.requests[i].ranked,
        pool.requests[i].ranked + pool.requests[i].candidate_count);
    EXPECT_EQ(served, direct) << i;
  }
}

TEST(OracleServiceParallel, ShedCountersExactUnderOverload) {
  // Saturate a deliberately tiny service (1 worker, 16-slot rings, 100us
  // deadline) from 4 threads WITHOUT retrying admission sheds. After
  // stop(), the books must balance exactly:
  //   submitted == admitted + shed_admission
  //   admitted  == completed + shed_deadline
  //   client-observed done/shed == the service's own counters.
  const auto routing = stress_routing();
  const auto routers = std::uint32_t(routing->topology().router_count());
  ServiceConfig config;
  config.workers = 1;
  config.ring_capacity = 16;
  config.max_batch = 8;
  config.deadline_ns = 100 * 1000;
  OracleService service(routing, config);

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 5000;
  std::vector<std::unique_ptr<RequestPool>> pools;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    pools.push_back(std::make_unique<RequestPool>(kPerSubmitter, 4, routers));
  }
  std::atomic<std::uint64_t> client_rejected{0};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      RequestPool& pool = *pools[s];
      for (std::size_t i = 0; i < pool.count; ++i) {
        if (!service.submit(&pool.requests[i])) {
          client_rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  // Wait for in-flight work, then freeze the counters.
  for (auto& pool : pools) {
    for (std::size_t i = 0; i < pool->count; ++i) {
      wait_terminal(pool->requests[i]);
    }
  }
  service.stop();

  std::uint64_t client_done = 0;
  std::uint64_t client_shed = 0;
  for (auto& pool : pools) {
    for (std::size_t i = 0; i < pool->count; ++i) {
      switch (pool->requests[i].state.load()) {
        case RequestState::kDone: ++client_done; break;
        case RequestState::kShed: ++client_shed; break;
        case RequestState::kFree: break;  // rejected at admission
        case RequestState::kQueued: FAIL() << "request leaked in-flight";
      }
    }
  }
  EXPECT_EQ(service.submitted(), kSubmitters * kPerSubmitter);
  EXPECT_EQ(service.shed_admission(), client_rejected.load());
  EXPECT_EQ(service.admitted(),
            service.completed() + service.shed_deadline());
  EXPECT_EQ(client_done, service.completed());
  EXPECT_EQ(client_shed, service.shed_deadline());
  EXPECT_EQ(client_done + client_shed + client_rejected.load(),
            kSubmitters * kPerSubmitter);
}

TEST(OracleServiceParallel, StopDuringSubmissionLeavesNoRequestInFlight) {
  // Submitters race service.stop(): every request must end terminal
  // (done, shed, or admission-rejected kFree) — never stuck kQueued.
  const auto routing = stress_routing();
  const auto routers = std::uint32_t(routing->topology().router_count());
  ServiceConfig config;
  config.workers = 2;
  config.ring_capacity = 32;
  OracleService service(routing, config);
  constexpr std::size_t kSubmitters = 3;
  constexpr std::size_t kPerSubmitter = 3000;
  std::vector<std::unique_ptr<RequestPool>> pools;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    pools.push_back(std::make_unique<RequestPool>(kPerSubmitter, 2, routers));
  }
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      RequestPool& pool = *pools[s];
      for (std::size_t i = 0; i < pool.count; ++i) {
        if (service.submit(&pool.requests[i])) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Stop mid-flood from the main thread.
  service.stop();
  for (auto& thread : submitters) thread.join();

  std::uint64_t terminal = 0;
  for (auto& pool : pools) {
    for (std::size_t i = 0; i < pool->count; ++i) {
      const RequestState state = pool->requests[i].state.load();
      EXPECT_NE(state, RequestState::kQueued) << i;
      if (state == RequestState::kDone || state == RequestState::kShed) {
        ++terminal;
      }
    }
  }
  // Every accepted request reached a terminal state, except any swept by
  // stop() — those are kShed too, so accepted <= terminal + sweep is an
  // equality in both directions here:
  EXPECT_GE(terminal, service.completed());
  EXPECT_EQ(service.admitted(),
            service.completed() + service.shed_deadline());
}

}  // namespace
}  // namespace uap2p::oracled
