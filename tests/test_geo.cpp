#include "underlay/geo.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace uap2p::underlay {
namespace {

// Reference cities.
const GeoPoint kBerlin{52.5200, 13.4050};
const GeoPoint kParis{48.8566, 2.3522};
const GeoPoint kNewYork{40.7128, -74.0060};
const GeoPoint kSydney{-33.8688, 151.2093};
const GeoPoint kDarmstadt{49.8728, 8.6512};

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(haversine_km(kBerlin, kBerlin), 0.0);
}

TEST(Haversine, KnownCityDistances) {
  // Berlin-Paris ~878 km, Berlin-New York ~6385 km (great circle).
  EXPECT_NEAR(haversine_km(kBerlin, kParis), 878.0, 15.0);
  EXPECT_NEAR(haversine_km(kBerlin, kNewYork), 6385.0, 60.0);
  EXPECT_NEAR(haversine_km(kParis, kSydney), 16960.0, 150.0);
}

TEST(Haversine, Symmetric) {
  EXPECT_DOUBLE_EQ(haversine_km(kBerlin, kParis),
                   haversine_km(kParis, kBerlin));
}

TEST(Haversine, TriangleInequalityOnSamples) {
  const GeoPoint points[] = {kBerlin, kParis, kNewYork, kSydney, kDarmstadt};
  for (const auto& a : points) {
    for (const auto& b : points) {
      for (const auto& c : points) {
        EXPECT_LE(haversine_km(a, c),
                  haversine_km(a, b) + haversine_km(b, c) + 1e-6);
      }
    }
  }
}

TEST(PropagationDelay, FibreSpeedBounds) {
  // 1000 km at stretch 1.0: ~4.9 ms (light in fibre).
  EXPECT_NEAR(propagation_delay_ms(1000.0, 1.0), 4.9, 0.2);
  // Default stretch 1.6 scales it.
  EXPECT_NEAR(propagation_delay_ms(1000.0), 4.9 * 1.6, 0.4);
  EXPECT_DOUBLE_EQ(propagation_delay_ms(0.0), 0.0);
}

TEST(Utm, KnownReferenceConversion) {
  // Darmstadt, zone 32. Reference values computed independently with
  // Snyder's transverse Mercator series (agrees with this Krüger-series
  // implementation to the centimetre).
  const UtmCoordinate utm = to_utm(kDarmstadt);
  EXPECT_EQ(utm.zone, 32);
  EXPECT_TRUE(utm.northern);
  EXPECT_NEAR(utm.easting_m, 474936.66, 1.0);
  EXPECT_NEAR(utm.northing_m, 5524546.51, 1.0);
}

TEST(Utm, SouthernHemisphereFalseNorthing) {
  const UtmCoordinate utm = to_utm(kSydney);
  EXPECT_FALSE(utm.northern);
  EXPECT_EQ(utm.zone, 56);
  // Snyder-series reference: 334368.6 E, 6250948.3 N (incl. false
  // northing).
  EXPECT_NEAR(utm.easting_m, 334368.63, 1.0);
  EXPECT_NEAR(utm.northing_m, 6250948.35, 1.0);
}

TEST(Utm, ToStringFormat) {
  const UtmCoordinate utm = to_utm(kDarmstadt);
  const std::string text = utm.to_string();
  EXPECT_NE(text.find("32N"), std::string::npos);
  EXPECT_NE(text.find('E'), std::string::npos);
  EXPECT_NE(text.find('N'), std::string::npos);
}

TEST(Utm, PlanarDistanceApproximatesHaversineLocally) {
  // Two points ~20 km apart in the same zone: planar UTM distance should
  // match the great-circle distance to well under 1%.
  const GeoPoint a{49.87, 8.65};
  const GeoPoint b{50.05, 8.70};
  const double planar = utm_distance_m(to_utm(a), to_utm(b)) / 1000.0;
  const double sphere = haversine_km(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.01);
}

// Property sweep: round trip over a latitude/longitude grid.
class UtmRoundTripP
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(UtmRoundTripP, InverseRecoversInput) {
  const auto [lat, lon] = GetParam();
  const GeoPoint original{lat, lon};
  const GeoPoint recovered = from_utm(to_utm(original));
  EXPECT_NEAR(recovered.lat_deg, lat, 1e-6);
  EXPECT_NEAR(recovered.lon_deg, lon, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UtmRoundTripP,
    ::testing::Combine(::testing::Values(-70.0, -33.9, 0.01, 36.5, 49.87, 68.0),
                       ::testing::Values(-150.0, -74.0, -0.1, 8.65, 151.2,
                                         179.0)));

}  // namespace
}  // namespace uap2p::underlay
