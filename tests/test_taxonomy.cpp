#include "core/taxonomy.hpp"

#include <gtest/gtest.h>

#include <set>

namespace uap2p::core {
namespace {

TEST(Taxonomy, CoversAllFourInformationClasses) {
  // The survey's Figure 3: four classes of underlay information.
  std::set<InfoClass> classes;
  for (const auto& entry : taxonomy()) classes.insert(entry.info);
  EXPECT_EQ(classes.size(), 4u);
}

TEST(Taxonomy, EveryPaperTable1SystemPresent) {
  std::set<std::string> names;
  for (const auto& entry : taxonomy()) names.insert(entry.system);
  // Spot-check the representative systems of the paper's Table 1.
  for (const char* expected :
       {"Oracle", "Ono", "Vivaldi", "Globase.KOM", "GeoPeer", "SkyEye.KOM",
        "Brocade", "Plethora", "Mithos", "Genius", "eCAN", "Leopard"}) {
    EXPECT_TRUE(names.contains(expected)) << "missing " << expected;
  }
}

TEST(Taxonomy, AllCollectionTechniquesRepresented) {
  // The eight leaves of Figure 3.
  std::set<CollectionTechnique> techniques;
  for (const auto& entry : taxonomy()) techniques.insert(entry.technique);
  EXPECT_EQ(techniques.size(), 8u);
}

TEST(Taxonomy, FilterByClassNonEmptyAndConsistent) {
  for (const InfoClass info :
       {InfoClass::kIspLocation, InfoClass::kLatency, InfoClass::kGeolocation,
        InfoClass::kPeerResources}) {
    const auto entries = taxonomy_for(info);
    EXPECT_FALSE(entries.empty()) << to_string(info);
    for (const auto& entry : entries) EXPECT_EQ(entry.info, info);
  }
}

TEST(Taxonomy, EverythingIsImplemented) {
  EXPECT_EQ(implemented_count(), taxonomy().size());
  for (const auto& entry : taxonomy()) {
    EXPECT_FALSE(entry.uap2p_module.empty());
    EXPECT_FALSE(entry.reference.empty());
  }
}

TEST(Taxonomy, TechniqueNamesNonEmpty) {
  for (const auto technique :
       {CollectionTechnique::kIpToIspMapping,
        CollectionTechnique::kIspComponentInNetwork,
        CollectionTechnique::kCdnProvidedInformation,
        CollectionTechnique::kExplicitMeasurement,
        CollectionTechnique::kPredictionMethod, CollectionTechnique::kGps,
        CollectionTechnique::kIpToLocationMapping,
        CollectionTechnique::kInformationManagementOverlay}) {
    EXPECT_GT(std::string(to_string(technique)).size(), 2u);
  }
}

}  // namespace
}  // namespace uap2p::core
