#include "overlay/brocade.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "overlay/kademlia.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::brocade {
namespace {

struct BrocadeFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net{engine, topo, 73};
  std::vector<PeerId> peers = net.populate(60);
  BrocadeSystem brocade{net, peers};
};

TEST_F(BrocadeFixture, OneSupernodePerPopulatedAs) {
  EXPECT_EQ(brocade.supernode_count(), topo.as_count());
  for (std::uint32_t as = 0; as < topo.as_count(); ++as) {
    const PeerId supernode = brocade.supernode_of(AsId(as));
    ASSERT_TRUE(supernode.is_valid());
    EXPECT_EQ(net.host(supernode).as, AsId(as));
  }
}

TEST_F(BrocadeFixture, SupernodeIsStrongestInItsAs) {
  for (const PeerId peer : peers) {
    const PeerId supernode = brocade.supernode_of(net.host(peer).as);
    EXPECT_GE(net.host(supernode).resources.capacity_score(),
              net.host(peer).resources.capacity_score() - 1e-9);
  }
}

TEST_F(BrocadeFixture, IntraAsRouteIsDirect) {
  // peers[0] and peers[10] share AS 0 (round-robin over 10 ASes).
  const RouteResult result = brocade.route(peers[0], peers[10], 1000);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.overlay_hops, 1u);
  EXPECT_EQ(result.inter_as_crossings, 0u);
  EXPECT_GT(result.latency_ms, 0.0);
}

TEST_F(BrocadeFixture, InterAsRouteTunnelsThroughSupernodes) {
  const RouteResult result = brocade.route(peers[2], peers[7], 1000);
  EXPECT_TRUE(result.delivered);
  EXPECT_LE(result.overlay_hops, 3u);  // src->SN, SN->SN', SN'->dst
  EXPECT_GE(result.overlay_hops, 2u);
  EXPECT_GT(result.latency_ms, 0.0);
}

TEST_F(BrocadeFixture, FewerInterAsCrossingsThanFlatDhtLookup) {
  // Flat Kademlia: count AS-hops of lookup RPC legs + the final direct
  // send; Brocade crosses AS boundaries essentially once.
  netinfo::Oracle oracle(net);
  overlay::kademlia::KademliaSystem dht(net, peers, {}, &oracle);
  dht.join_all();

  uap2p::RunningStats flat_crossings, brocade_crossings;
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const PeerId src = peers[rng.uniform(peers.size())];
    PeerId dst = src;
    while (net.host(dst).as == net.host(src).as) {
      dst = peers[rng.uniform(peers.size())];
    }
    // Brocade path crossings.
    const RouteResult direct = brocade.route(src, dst, 500);
    ASSERT_TRUE(direct.delivered);
    brocade_crossings.add(double(direct.inter_as_crossings));
    // Flat DHT: lookup the destination's id, sum the RPC legs' AS hops.
    const auto lookup = dht.lookup(src, dht.node_id(dst));
    double crossings = lookup.mean_rpc_as_hops * double(lookup.messages_sent);
    crossings += double(net.path_between(src, dst).as_hops());
    flat_crossings.add(crossings);
  }
  // Without an oracle the dht metric is 0; recompute with oracle-backed
  // system if needed. Guard: the flat value must be meaningful.
  if (flat_crossings.mean() > 0.0) {
    EXPECT_LT(brocade_crossings.mean(), flat_crossings.mean());
  }
  EXPECT_LE(brocade_crossings.max(), 6.0);
}

TEST_F(BrocadeFixture, SupernodeFailureDegradesUntilRepair) {
  const AsId dst_as = net.host(peers[7]).as;
  const PeerId supernode = brocade.supernode_of(dst_as);
  if (supernode == peers[7]) {
    GTEST_SKIP() << "destination is its own supernode in this seed";
  }
  net.set_online(supernode, false);
  const RouteResult broken = brocade.route(peers[2], peers[7], 500);
  // The stale directory still points at the dead supernode: loss.
  EXPECT_FALSE(broken.delivered);
  brocade.repair();
  const RouteResult repaired = brocade.route(peers[2], peers[7], 500);
  EXPECT_TRUE(repaired.delivered);
}

TEST_F(BrocadeFixture, ForwardCounterAdvances) {
  const auto before = brocade.forwarded_messages();
  brocade.route(peers[3], peers[8], 500);
  EXPECT_GT(brocade.forwarded_messages(), before);
}

}  // namespace
}  // namespace uap2p::overlay::brocade
