#include "common/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace uap2p {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  PeerId id;
  EXPECT_FALSE(id.is_valid());
  EXPECT_EQ(id, PeerId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  AsId as(42);
  EXPECT_TRUE(as.is_valid());
  EXPECT_EQ(as.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(PeerId(1), PeerId(2));
  EXPECT_EQ(PeerId(7), PeerId(7));
  EXPECT_NE(PeerId(7), PeerId(8));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<AsId, PeerId>);
  static_assert(!std::is_same_v<RouterId, ContentId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<PeerId> set;
  set.insert(PeerId(1));
  set.insert(PeerId(1));
  set.insert(PeerId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(IpAddress, ToStringKnownValues) {
  EXPECT_EQ(IpAddress{0x0A000001}.to_string(), "10.0.0.1");
  EXPECT_EQ(IpAddress{0xFFFFFFFF}.to_string(), "255.255.255.255");
  EXPECT_EQ(IpAddress{0}.to_string(), "0.0.0.0");
  EXPECT_EQ(IpAddress{0xC0A80164}.to_string(), "192.168.1.100");
}

TEST(IpAddress, ParseRoundTrip) {
  for (std::uint32_t bits : {0u, 0x0A000001u, 0xC0A80101u, 0xFFFFFFFFu,
                             0x7F000001u, 0x08080808u}) {
    IpAddress original{bits};
    IpAddress parsed;
    ASSERT_TRUE(IpAddress::parse(original.to_string(), parsed));
    EXPECT_EQ(parsed, original);
  }
}

TEST(IpAddress, ParseRejectsMalformed) {
  IpAddress out;
  EXPECT_FALSE(IpAddress::parse("", out));
  EXPECT_FALSE(IpAddress::parse("1.2.3", out));
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5", out));
  EXPECT_FALSE(IpAddress::parse("256.0.0.1", out));
  EXPECT_FALSE(IpAddress::parse("a.b.c.d", out));
  EXPECT_FALSE(IpAddress::parse("1.2.3.4x", out));
  EXPECT_FALSE(IpAddress::parse("1..3.4", out));
}

TEST(IpAddress, OrderingMatchesNumeric) {
  EXPECT_LT(IpAddress{1}, IpAddress{2});
  EXPECT_LT(IpAddress{0x0A000000}, IpAddress{0x0B000000});
}

}  // namespace
}  // namespace uap2p
