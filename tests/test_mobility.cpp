#include "underlay/mobility.hpp"

#include <gtest/gtest.h>

#include "netinfo/ipmap.hpp"
#include "sim/engine.hpp"

namespace uap2p::underlay {
namespace {

struct MobilityFixture : ::testing::Test {
  sim::Engine engine;
  AsTopology topo = AsTopology::transit_stub(2, 4, 0.3);
  Network net{engine, topo, 29};
  std::vector<PeerId> peers = net.populate(20);
};

TEST_F(MobilityFixture, MoveHostUpdatesLocationAndAttachment) {
  const PeerId peer = peers[0];
  const GeoPoint far{58.0, 25.0};
  const RouterId before = net.host(peer).attachment;
  net.move_host(peer, far);
  EXPECT_DOUBLE_EQ(net.host(peer).location.lat_deg, 58.0);
  // Attachment must be the geographically nearest router.
  const RouterId after = net.host(peer).attachment;
  const double chosen = haversine_km(topo.router(after).location, far);
  for (const auto& router : topo.routers()) {
    EXPECT_LE(chosen, haversine_km(router.location, far) + 1e-9);
  }
  (void)before;
}

TEST_F(MobilityFixture, CrossAsMoveReassignsIp) {
  const PeerId peer = peers[0];
  const AsId original_as = net.host(peer).as;
  // Find a target right on top of a router in a different AS.
  GeoPoint target{};
  bool found = false;
  for (const auto& router : topo.routers()) {
    if (topo.as_of(router.id) != original_as) {
      target = router.location;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  net.move_host(peer, target);
  EXPECT_NE(net.host(peer).as, original_as);
  const auto& new_as = topo.as_info(net.host(peer).as);
  EXPECT_EQ(net.host(peer).ip.bits & 0xFFFF0000, new_as.prefix);
}

TEST_F(MobilityFixture, MoveInvalidatesIpMappingCache) {
  // The §6 mobility problem: a database lookup made before the move
  // resolves the old ISP.
  netinfo::IpMappingService service(topo, {});
  const PeerId peer = peers[0];
  const IpAddress old_ip = net.host(peer).ip;
  const auto before = service.lookup_isp(old_ip);
  GeoPoint target{};
  for (const auto& router : topo.routers()) {
    if (topo.as_of(router.id) != net.host(peer).as) {
      target = router.location;
      break;
    }
  }
  net.move_host(peer, target);
  const auto after = service.lookup_isp(net.host(peer).ip);
  ASSERT_TRUE(before && after);
  EXPECT_NE(*before, *after);
  // The stale IP still resolves to the old ISP — cached info is wrong now.
  EXPECT_EQ(*service.lookup_isp(old_ip), *before);
}

TEST_F(MobilityFixture, ProcessMovesPeersOverTime) {
  MobilityConfig config;
  config.mean_pause_ms = sim::minutes(1);
  config.speed_kmh = 900.0;  // fast movers so several legs finish
  MobilityProcess mobility(engine, net, config);
  int callbacks = 0;
  mobility.on_move([&](PeerId) { ++callbacks; });
  for (const PeerId peer : peers) mobility.add_peer(peer);
  engine.run_until(sim::hours(12));
  EXPECT_GT(mobility.completed_moves(), 20u);
  EXPECT_EQ(int(mobility.completed_moves()), callbacks);
}

TEST_F(MobilityFixture, TravelTimeScalesWithDistance) {
  // A 60 km/h mover cannot complete a 600 km leg in under 10 hours, so
  // after 1 hour of sim time no move should have completed for a peer
  // whose first waypoint is far; statistically check total moves are few.
  MobilityConfig config;
  config.mean_pause_ms = sim::seconds(1);  // move almost immediately
  config.speed_kmh = 60.0;
  MobilityProcess mobility(engine, net, config);
  for (const PeerId peer : peers) mobility.add_peer(peer);
  engine.run_until(sim::minutes(30));
  // Mean leg is several hundred km: under 30 min nearly nothing finishes.
  EXPECT_LE(mobility.completed_moves(), 3u);
}

TEST_F(MobilityFixture, StopHaltsMovement) {
  MobilityProcess mobility(engine, net);
  for (const PeerId peer : peers) mobility.add_peer(peer);
  mobility.stop();
  engine.run_until(sim::hours(24));
  EXPECT_EQ(mobility.completed_moves(), 0u);
}

TEST_F(MobilityFixture, RttChangesAfterMove) {
  const PeerId a = peers[0];
  const PeerId b = peers[1];
  const double before = net.rtt_ms(a, b);
  net.move_host(a, GeoPoint{59.5, 29.5});
  const double after = net.rtt_ms(a, b);
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace uap2p::underlay
