#include "netinfo/pinger.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct PingerFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::ring(4);
  underlay::Network net{engine, topo, 3};
  std::vector<PeerId> peers = net.populate(8);
};

TEST_F(PingerFixture, NoiselessMeasurementEqualsGroundTruth) {
  PingerConfig config;
  config.jitter_sigma = 0.0;
  Pinger pinger(net, Rng(1), config);
  for (std::size_t i = 0; i + 1 < peers.size(); ++i) {
    EXPECT_DOUBLE_EQ(pinger.measure_rtt(peers[i], peers[i + 1]),
                     net.rtt_ms(peers[i], peers[i + 1]));
  }
}

TEST_F(PingerFixture, JitteredMeasurementNearTruth) {
  PingerConfig config;
  config.jitter_sigma = 0.05;
  config.probes_per_measurement = 5;
  Pinger pinger(net, Rng(2), config);
  const double truth = net.rtt_ms(peers[0], peers[5]);
  for (int i = 0; i < 20; ++i) {
    const double measured = pinger.measure_rtt(peers[0], peers[5]);
    EXPECT_NEAR(measured, truth, truth * 0.2);
  }
}

TEST_F(PingerFixture, OverheadAccounted) {
  PingerConfig config;
  config.probes_per_measurement = 3;
  config.probe_bytes = 64;
  Pinger pinger(net, Rng(3), config);
  const auto before_bytes = net.traffic().total_bytes();
  pinger.measure_rtt(peers[0], peers[1]);
  EXPECT_EQ(pinger.probes_sent(), 3u);
  EXPECT_EQ(pinger.bytes_sent(), 3u * 64u * 2u);
  EXPECT_EQ(net.traffic().total_bytes() - before_bytes, 3u * 64u * 2u);
}

TEST_F(PingerFixture, OfflineReturnsNegative) {
  Pinger pinger(net, Rng(4), {});
  net.set_online(peers[1], false);
  EXPECT_LT(pinger.measure_rtt(peers[0], peers[1]), 0.0);
  EXPECT_LT(pinger.traceroute_hops(peers[0], peers[1]), 0);
  EXPECT_EQ(pinger.probes_sent(), 0u);
}

TEST_F(PingerFixture, TracerouteMatchesPathHops) {
  Pinger pinger(net, Rng(5), {});
  const int hops = pinger.traceroute_hops(peers[0], peers[1]);
  EXPECT_EQ(hops,
            static_cast<int>(net.path_between(peers[0], peers[1]).router_hops));
}

TEST_F(PingerFixture, LongHopProblemObservable) {
  // The paper's "long hop problem": hop count does not order pairs the
  // same way latency does. With geo-derived latencies, a single inter-AS
  // hop can cost more than several internal ones — verify at least that
  // hop count and latency are not perfectly proportional across pairs.
  Pinger pinger(net, Rng(6), {});
  bool mismatch = false;
  for (std::size_t i = 0; i < peers.size() && !mismatch; ++i) {
    for (std::size_t j = i + 1; j < peers.size() && !mismatch; ++j) {
      for (std::size_t k = 0; k < peers.size() && !mismatch; ++k) {
        for (std::size_t l = k + 1; l < peers.size(); ++l) {
          const int hops_a = pinger.traceroute_hops(peers[i], peers[j]);
          const int hops_b = pinger.traceroute_hops(peers[k], peers[l]);
          const double lat_a = net.rtt_ms(peers[i], peers[j]);
          const double lat_b = net.rtt_ms(peers[k], peers[l]);
          if (hops_a < hops_b && lat_a > lat_b) {
            mismatch = true;
            break;
          }
        }
      }
    }
  }
  EXPECT_TRUE(mismatch)
      << "expected at least one pair where fewer hops != lower latency";
}

}  // namespace
}  // namespace uap2p::netinfo
