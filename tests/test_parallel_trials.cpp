// The parallel trial harness's determinism contract (bench::run_trials +
// parallel_map): per-trial seeds derive serially from the base seed, every
// trial is self-contained, and the gathered results are identical no
// matter how many threads execute the trials. Built as its own binary
// (uap2p_parallel_tests) so the suite can also run under
// -DUAP2P_SANITIZE=thread to prove data-race freedom.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "../bench/bench_common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace uap2p {
namespace {

TEST(ParallelMap, GathersResultsInIndexOrder) {
  const auto results = parallel_map(
      257, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelMap, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_map(
      hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        return 0;
      },
      8);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(RunTrials, SeedsDeriveSeriallyFromBaseSeed) {
  // The harness must hand trial i exactly the i-th split_seed of the base
  // Rng — scheduling cannot influence seed assignment.
  Rng expected_stream(42);
  std::vector<std::uint64_t> expected(16);
  for (std::uint64_t& seed : expected) seed = expected_stream.split_seed();

  const auto seeds = bench::run_trials(
      expected.size(), /*base_seed=*/42,
      [](std::size_t, std::uint64_t seed) { return seed; }, 8);
  EXPECT_EQ(seeds, expected);
}

TEST(RunTrials, ParallelMatchesSerialBitForBit) {
  // A trial with real per-seed work: an Rng-driven accumulation whose
  // result depends on every stream draw, so any cross-trial interference
  // or reordering would change the bits.
  auto trial = [](std::size_t index, std::uint64_t seed) {
    Rng rng(seed);
    std::uint64_t acc = index;
    for (int i = 0; i < 1000; ++i) acc = acc * 31 + rng();
    return acc;
  };
  const auto serial = bench::run_trials(64, /*base_seed=*/7, trial, 1);
  const auto parallel = bench::run_trials(64, /*base_seed=*/7, trial, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(RunTrials, ConcurrentGnutellaLabsAreIndependent) {
  // Whole-simulation trials — each builds its own engine/network/overlay —
  // must give the same per-trial outcome serial and parallel. This is the
  // shape every converted bench relies on, and the interesting TSan
  // subject: four full simulations running concurrently.
  auto trial = [](std::size_t, std::uint64_t seed) {
    overlay::gnutella::Config config;
    bench::GnutellaLab lab(underlay::AsTopology::transit_stub(2, 3, 0.3), 60,
                           config, seed);
    const std::size_t successes =
        lab.run_locality_workload(/*copies=*/2, /*searches_per_as=*/2,
                                  /*download=*/false);
    return std::pair(successes, lab.system->counts().total());
  };
  const auto serial = bench::run_trials(4, /*base_seed=*/11, trial, 1);
  const auto parallel = bench::run_trials(4, /*base_seed=*/11, trial, 4);
  EXPECT_EQ(serial, parallel);
  // Different seeds really produce different simulations (the split
  // actually decorrelates trials).
  EXPECT_NE(serial[0], serial[1]);
}

TEST(RunTrials, SerialFlagForcesSingleThread) {
  bench::options().serial = true;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  bench::run_trials(
      8, /*base_seed=*/1,
      [&](std::size_t, std::uint64_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        concurrent.fetch_sub(1);
        return 0;
      },
      8);
  bench::options().serial = false;
  EXPECT_EQ(peak.load(), 1);
}

TEST(RunTrials, MetricsSnapshotsAreByteIdenticalSerialVsParallel) {
  // The observability acceptance gate in unit form: per-trial registries
  // submitted from GnutellaLab destructors merge in (group, index) order,
  // so the merged JSON must not depend on how many threads ran the trials.
  auto run_once = [](std::size_t threads) {
    bench::trial_metrics().reset();
    bench::options().collect_metrics = true;
    bench::run_trials(
        4, /*base_seed=*/11,
        [](std::size_t, std::uint64_t seed) {
          overlay::gnutella::Config config;
          bench::GnutellaLab lab(underlay::AsTopology::transit_stub(2, 3, 0.3),
                                 60, config, seed);
          return lab.run_locality_workload(/*copies=*/2, /*searches_per_as=*/2,
                                           /*download=*/false);
        },
        threads);
    bench::options().collect_metrics = false;
    const std::string json = bench::trial_metrics().merged().to_json();
    bench::trial_metrics().reset();
    return json;
  };
  const std::string serial = run_once(1);
  const std::string parallel = run_once(4);
  EXPECT_EQ(serial, parallel);
  // The snapshot really carries the overlay + engine + traffic sections.
  EXPECT_NE(serial.find("gnutella.messages.query"), std::string::npos);
  EXPECT_NE(serial.find("engine.events.executed"), std::string::npos);
  EXPECT_NE(serial.find("traffic.bytes.total"), std::string::npos);
}

TEST(Rng, SplitSeedMatchesSplit) {
  // split() must stay a pure wrapper over split_seed() so harness seeds
  // and direct Rng::split children agree.
  Rng a(123), b(123);
  const std::uint64_t seed = a.split_seed();
  Rng child = b.split();
  Rng from_seed(seed);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child(), from_seed());
}

}  // namespace
}  // namespace uap2p
