// The parallel trial harness's determinism contract (bench::run_trials +
// parallel_map): per-trial seeds derive serially from the base seed, every
// trial is self-contained, and the gathered results are identical no
// matter how many threads execute the trials. Built as its own binary
// (uap2p_parallel_tests) so the suite can also run under
// -DUAP2P_SANITIZE=thread to prove data-race freedom.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "underlay/routing.hpp"

namespace uap2p {
namespace {

TEST(ParallelMap, GathersResultsInIndexOrder) {
  const auto results = parallel_map(
      257, [](std::size_t i) { return i * i; }, 8);
  ASSERT_EQ(results.size(), 257u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelMap, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_map(
      hits.size(),
      [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        return 0;
      },
      8);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(RunTrials, SeedsDeriveSeriallyFromBaseSeed) {
  // The harness must hand trial i exactly the i-th split_seed of the base
  // Rng — scheduling cannot influence seed assignment.
  Rng expected_stream(42);
  std::vector<std::uint64_t> expected(16);
  for (std::uint64_t& seed : expected) seed = expected_stream.split_seed();

  const auto seeds = bench::run_trials(
      expected.size(), /*base_seed=*/42,
      [](std::size_t, std::uint64_t seed) { return seed; }, 8);
  EXPECT_EQ(seeds, expected);
}

TEST(RunTrials, ParallelMatchesSerialBitForBit) {
  // A trial with real per-seed work: an Rng-driven accumulation whose
  // result depends on every stream draw, so any cross-trial interference
  // or reordering would change the bits.
  auto trial = [](std::size_t index, std::uint64_t seed) {
    Rng rng(seed);
    std::uint64_t acc = index;
    for (int i = 0; i < 1000; ++i) acc = acc * 31 + rng();
    return acc;
  };
  const auto serial = bench::run_trials(64, /*base_seed=*/7, trial, 1);
  const auto parallel = bench::run_trials(64, /*base_seed=*/7, trial, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(RunTrials, ConcurrentGnutellaLabsAreIndependent) {
  // Whole-simulation trials — each builds its own engine/network/overlay —
  // must give the same per-trial outcome serial and parallel. This is the
  // shape every converted bench relies on, and the interesting TSan
  // subject: four full simulations running concurrently.
  auto trial = [](std::size_t, std::uint64_t seed) {
    overlay::gnutella::Config config;
    bench::GnutellaLab lab(underlay::AsTopology::transit_stub(2, 3, 0.3), 60,
                           config, seed);
    const std::size_t successes =
        lab.run_locality_workload(/*copies=*/2, /*searches_per_as=*/2,
                                  /*download=*/false);
    return std::pair(successes, lab.system->counts().total());
  };
  const auto serial = bench::run_trials(4, /*base_seed=*/11, trial, 1);
  const auto parallel = bench::run_trials(4, /*base_seed=*/11, trial, 4);
  EXPECT_EQ(serial, parallel);
  // Different seeds really produce different simulations (the split
  // actually decorrelates trials).
  EXPECT_NE(serial[0], serial[1]);
}

TEST(RunTrials, SerialFlagForcesSingleThread) {
  bench::options().serial = true;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  bench::run_trials(
      8, /*base_seed=*/1,
      [&](std::size_t, std::uint64_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        concurrent.fetch_sub(1);
        return 0;
      },
      8);
  bench::options().serial = false;
  EXPECT_EQ(peak.load(), 1);
}

TEST(RunTrials, MetricsSnapshotsAreByteIdenticalSerialVsParallel) {
  // The observability acceptance gate in unit form: per-trial registries
  // submitted from GnutellaLab destructors merge in (group, index) order,
  // so the merged JSON must not depend on how many threads ran the trials.
  auto run_once = [](std::size_t threads) {
    bench::trial_metrics().reset();
    bench::options().collect_metrics = true;
    bench::run_trials(
        4, /*base_seed=*/11,
        [](std::size_t, std::uint64_t seed) {
          overlay::gnutella::Config config;
          bench::GnutellaLab lab(underlay::AsTopology::transit_stub(2, 3, 0.3),
                                 60, config, seed);
          return lab.run_locality_workload(/*copies=*/2, /*searches_per_as=*/2,
                                           /*download=*/false);
        },
        threads);
    bench::options().collect_metrics = false;
    const std::string json = bench::trial_metrics().merged().to_json();
    bench::trial_metrics().reset();
    return json;
  };
  const std::string serial = run_once(1);
  const std::string parallel = run_once(4);
  EXPECT_EQ(serial, parallel);
  // The snapshot really carries the overlay + engine + traffic sections.
  EXPECT_NE(serial.find("gnutella.messages.query"), std::string::npos);
  EXPECT_NE(serial.find("engine.events.executed"), std::string::npos);
  EXPECT_NE(serial.find("traffic.bytes.total"), std::string::npos);
}

TEST(SharedRouting, ConcurrentReadersSeeIdenticalAnswers) {
  // The tentpole contract: after build(), the snapshot is pure reads.
  // Hammer the same warmed table from many threads (the TSan subject) and
  // require every thread to observe bit-identical answers to a serial
  // reference sweep.
  const auto routing = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(2, 4, 0.4));
  const auto n =
      static_cast<std::uint32_t>(routing->topology().router_count());
  // Serial reference sweep (fingerprint of every pair's summary).
  auto fingerprint = [&] {
    std::uint64_t acc = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        const underlay::PathInfo info =
            routing->path(RouterId(i), RouterId(j));
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(info.latency_ms));
        std::memcpy(&bits, &info.latency_ms, sizeof(bits));
        acc = acc * 1099511628211ull + bits;
        acc = acc * 31 + info.router_hops + info.as_crossings * 7 +
              info.transit_crossings * 11 + info.peering_crossings * 13 +
              (info.reachable ? 1 : 0);
      }
    }
    return acc;
  };
  const std::uint64_t expected = fingerprint();
  const auto sweeps = parallel_map(
      8, [&](std::size_t) { return fingerprint(); }, 8);
  for (const std::uint64_t got : sweeps) EXPECT_EQ(got, expected);
  // The AS-hop cache is warmed too — concurrent reads through the Oracle's
  // metric are pure after build().
  const std::size_t as_count = routing->topology().as_count();
  auto row_sum = [&](std::size_t from) {
    std::size_t acc = 0;
    for (std::size_t to = 0; to < as_count; ++to) {
      acc += routing->topology().as_hop_distance(AsId(std::uint32_t(from)),
                                                 AsId(std::uint32_t(to)));
    }
    return acc;
  };
  std::vector<std::size_t> serial_rows(8);
  for (std::size_t k = 0; k < serial_rows.size(); ++k)
    serial_rows[k] = row_sum(k % as_count);
  const auto hops = parallel_map(
      8, [&](std::size_t k) { return row_sum(k % as_count); }, 8);
  for (std::size_t k = 0; k < hops.size(); ++k)
    EXPECT_EQ(hops[k], serial_rows[k]);
}

TEST(SharedRouting, WarmAllOnPoolMatchesSerialWarm) {
  // warm_all(ThreadPool&) must produce the identical table to a serial
  // warm: rows are pure functions of the topology, indexed by source.
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(2, 3, 0.5);
  underlay::RoutingTable serial(topo);
  serial.warm_all(1);
  underlay::RoutingTable pooled(topo);
  {
    ThreadPool pool(4);
    pooled.warm_all(pool);
  }
  EXPECT_EQ(pooled.cached_sources(), topo.router_count());
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  const auto& serial_const = serial;
  const auto& pooled_const = pooled;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const underlay::PathInfo a = serial_const.path(RouterId(i), RouterId(j));
      const underlay::PathInfo b = pooled_const.path(RouterId(i), RouterId(j));
      EXPECT_EQ(a.latency_ms, b.latency_ms);
      EXPECT_EQ(a.bottleneck_mbps, b.bottleneck_mbps);
      EXPECT_EQ(a.router_hops, b.router_hops);
      EXPECT_EQ(a.as_crossings, b.as_crossings);
    }
  }
}

TEST(RunTrials, SharedRoutingTrialsAreByteIdenticalSerialVsParallel) {
  // The bench-adoption gate in unit form: trials that borrow one group-wide
  // SharedRouting snapshot (as bench_table1 / bench_collection_compare now
  // do) must merge byte-identical metrics no matter the thread count.
  const auto routing = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(2, 3, 0.3));
  auto run_once = [&](std::size_t threads) {
    bench::trial_metrics().reset();
    bench::options().collect_metrics = true;
    bench::run_trials(
        4, /*base_seed=*/11,
        [&](std::size_t, std::uint64_t seed) {
          overlay::gnutella::Config config;
          bench::GnutellaLab lab(routing, 60, config, seed);
          return lab.run_locality_workload(/*copies=*/2, /*searches_per_as=*/2,
                                           /*download=*/false);
        },
        threads);
    bench::options().collect_metrics = false;
    const std::string json = bench::trial_metrics().merged().to_json();
    bench::trial_metrics().reset();
    return json;
  };
  const std::string serial = run_once(1);
  const std::string parallel = run_once(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("gnutella.messages.query"), std::string::npos);
}

TEST(Rng, SplitSeedMatchesSplit) {
  // split() must stay a pure wrapper over split_seed() so harness seeds
  // and direct Rng::split children agree.
  Rng a(123), b(123);
  const std::uint64_t seed = a.split_seed();
  Rng child = b.split();
  Rng from_seed(seed);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child(), from_seed());
}

}  // namespace
}  // namespace uap2p
