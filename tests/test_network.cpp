#include "underlay/network.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::underlay {
namespace {

struct NetworkFixture : ::testing::Test {
  sim::Engine engine;
  AsTopology topo = AsTopology::ring(4);
  Network net{engine, topo, /*seed=*/5};
};

TEST_F(NetworkFixture, HostsGetIpsInsideTheirAsPrefix) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(2));
  const auto& as0 = topo.as_info(AsId(0));
  const auto& as2 = topo.as_info(AsId(2));
  EXPECT_EQ(net.host(a).ip.bits & 0xFFFF0000, as0.prefix);
  EXPECT_EQ(net.host(b).ip.bits & 0xFFFF0000, as2.prefix);
  EXPECT_NE(net.host(a).ip, net.host(b).ip);
}

TEST_F(NetworkFixture, HostIpsUniqueWithinAs) {
  const PeerId a = net.add_host_in_as(AsId(1));
  const PeerId b = net.add_host_in_as(AsId(1));
  const PeerId c = net.add_host_in_as(AsId(1));
  EXPECT_NE(net.host(a).ip, net.host(b).ip);
  EXPECT_NE(net.host(b).ip, net.host(c).ip);
}

TEST_F(NetworkFixture, PopulateRoundRobinsAses) {
  const auto peers = net.populate(8);
  ASSERT_EQ(peers.size(), 8u);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(net.host(peers[i]).as, AsId(std::uint32_t(i % 4)));
  }
}

TEST_F(NetworkFixture, MessageDeliveredWithPositiveLatency) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(1));
  bool delivered = false;
  double at = -1.0;
  net.set_handler(b, [&](const Message& msg) {
    delivered = true;
    at = engine.now();
    EXPECT_EQ(msg.src, a);
    EXPECT_EQ(msg.type, 7);
  });
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.type = 7;
  msg.size_bytes = 100;
  ASSERT_TRUE(net.send(std::move(msg)));
  engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_GT(at, 0.0);
}

TEST_F(NetworkFixture, DeliveryLatencyMatchesRttHalf) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(2));
  double at = -1.0;
  net.set_handler(b, [&](const Message&) { at = engine.now(); });
  Message msg;
  msg.src = a;
  msg.dst = b;
  msg.size_bytes = 0;  // no transmission delay
  net.send(std::move(msg));
  engine.run();
  // One-way = rtt/2 for a zero-size message on symmetric paths.
  EXPECT_NEAR(at, net.rtt_ms(a, b) / 2.0, 1e-6);
}

TEST_F(NetworkFixture, TransmissionDelayScalesWithSize) {
  HostResources slow;
  slow.upload_mbps = 1.0;  // 1 Mbit/s -> 8 ms per KB
  const PeerId a = net.add_host(topo.gateway_of(AsId(0)), slow);
  const PeerId b = net.add_host(topo.gateway_of(AsId(0)));
  double small_at = -1, big_at = -1;
  net.set_handler(b, [&](const Message& msg) {
    (msg.size_bytes < 1000 ? small_at : big_at) = engine.now();
  });
  Message small;
  small.src = a; small.dst = b; small.size_bytes = 100;
  Message big;
  big.src = a; big.dst = b; big.size_bytes = 1'000'000;
  net.send(std::move(small));
  net.send(std::move(big));
  engine.run();
  // 1 MB at 1 Mbps = 8 s of serialization.
  EXPECT_GT(big_at - small_at, 7000.0);
}

TEST_F(NetworkFixture, OfflinePeersDropTraffic) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(1));
  net.set_online(b, false);
  Message msg;
  msg.src = a;
  msg.dst = b;
  EXPECT_FALSE(net.send(std::move(msg)));
  EXPECT_EQ(net.dropped_count(), 1u);

  net.set_online(b, true);
  net.set_online(a, false);
  Message msg2;
  msg2.src = a;
  msg2.dst = b;
  EXPECT_FALSE(net.send(std::move(msg2)));
}

TEST_F(NetworkFixture, GoingOfflineMidFlightDropsDelivery) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(1));
  bool delivered = false;
  net.set_handler(b, [&](const Message&) { delivered = true; });
  Message msg;
  msg.src = a;
  msg.dst = b;
  ASSERT_TRUE(net.send(std::move(msg)));
  net.set_online(b, false);  // goes offline before delivery fires
  engine.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped_count(), 1u);
}

TEST_F(NetworkFixture, TrafficAccountingIntraVsInter) {
  const PeerId a0 = net.add_host_in_as(AsId(0));
  const PeerId b0 = net.add_host_in_as(AsId(0));
  const PeerId c1 = net.add_host_in_as(AsId(1));
  Message intra;
  intra.src = a0; intra.dst = b0; intra.size_bytes = 500;
  Message inter;
  inter.src = a0; inter.dst = c1; inter.size_bytes = 1500;
  net.send(std::move(intra));
  net.send(std::move(inter));
  EXPECT_EQ(net.traffic().total_bytes(), 2000u);
  EXPECT_EQ(net.traffic().intra_as_bytes(), 500u);
  EXPECT_NEAR(net.traffic().intra_as_fraction(), 0.25, 1e-9);
}

TEST_F(NetworkFixture, MultipleHandlersAllInvoked) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(0));
  int calls = 0;
  net.add_handler(b, [&](const Message&) { ++calls; });
  net.add_handler(b, [&](const Message&) { ++calls; });
  Message msg;
  msg.src = a;
  msg.dst = b;
  net.send(std::move(msg));
  engine.run();
  EXPECT_EQ(calls, 2);
}

TEST_F(NetworkFixture, SetHandlerReplacesAll) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(0));
  int old_calls = 0, new_calls = 0;
  net.add_handler(b, [&](const Message&) { ++old_calls; });
  net.set_handler(b, [&](const Message&) { ++new_calls; });
  Message msg;
  msg.src = a;
  msg.dst = b;
  net.send(std::move(msg));
  engine.run();
  EXPECT_EQ(old_calls, 0);
  EXPECT_EQ(new_calls, 1);
}

TEST_F(NetworkFixture, DeliveredCountByType) {
  const PeerId a = net.add_host_in_as(AsId(0));
  const PeerId b = net.add_host_in_as(AsId(0));
  for (int i = 0; i < 3; ++i) {
    Message msg;
    msg.src = a;
    msg.dst = b;
    msg.type = 42;
    net.send(std::move(msg));
  }
  engine.run();
  EXPECT_EQ(net.delivered_count(42), 3u);
  EXPECT_EQ(net.delivered_count(43), 0u);
}

TEST_F(NetworkFixture, RttSymmetricAndPositive) {
  const auto peers = net.populate(6);
  for (const PeerId a : peers) {
    for (const PeerId b : peers) {
      if (a == b) continue;
      EXPECT_GT(net.rtt_ms(a, b), 0.0);
      EXPECT_NEAR(net.rtt_ms(a, b), net.rtt_ms(b, a), 1e-9);
    }
  }
}

TEST(HostResources, CapacityScoreMonotoneInBandwidth) {
  HostResources weak, strong;
  weak.upload_mbps = 0.5;
  strong.upload_mbps = 50.0;
  EXPECT_GT(strong.capacity_score(), weak.capacity_score());
}

TEST(HostResources, CapacityScoreMonotoneInUptime) {
  HostResources brief, steady;
  brief.expected_online_ms = sim::minutes(10);
  steady.expected_online_ms = sim::hours(20);
  EXPECT_GT(steady.capacity_score(), brief.capacity_score());
}

TEST(HostResources, SampleCoversClasses) {
  Rng rng(3);
  double min_up = 1e9, max_up = 0;
  for (int i = 0; i < 500; ++i) {
    const HostResources res = sample_resources(rng);
    min_up = std::min(min_up, res.upload_mbps);
    max_up = std::max(max_up, res.upload_mbps);
    EXPECT_GT(res.upload_mbps, 0.0);
    EXPECT_GT(res.expected_online_ms, 0.0);
  }
  EXPECT_LT(min_up, 2.0);   // DSL class present
  EXPECT_GT(max_up, 20.0);  // campus class present
}

}  // namespace
}  // namespace uap2p::underlay
