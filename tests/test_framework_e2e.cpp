// Capstone end-to-end scenarios: the whole framework running together —
// collectors feeding policies feeding overlays, under churn and mobility,
// with maintenance keeping everything coherent.
#include <gtest/gtest.h>

#include "core/underlay_service.hpp"
#include "netinfo/gossip.hpp"
#include "netinfo/skyeye.hpp"
#include "overlay/geo_overlay.hpp"
#include "overlay/gnutella.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"
#include "underlay/mobility.hpp"

namespace uap2p {
namespace {

TEST(FrameworkE2E, FullStackUnderChurnStaysFunctional) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net(engine, topo, 701);
  const auto peers = net.populate(80);

  // Collection layer: service + SkyEye + background Vivaldi gossip.
  core::UnderlayServiceConfig service_config;
  service_config.pinger.jitter_sigma = 0.02;
  core::UnderlayService service(net, service_config);
  netinfo::SkyEyeConfig sky_config;
  sky_config.update_period_ms = sim::seconds(20);
  netinfo::SkyEye skyeye(net, peers, sky_config);
  service.attach_skyeye(&skyeye);
  skyeye.start();
  netinfo::VivaldiSystem vivaldi(peers.size(), {}, Rng(3));
  netinfo::Pinger pinger(net, Rng(5), {});
  netinfo::GossipConfig gossip_config;
  gossip_config.sample_period_ms = sim::seconds(10);
  netinfo::CoordinateGossip gossip(net, vivaldi, pinger, peers, gossip_config);
  gossip.start();

  // Usage layer: oracle-biased Gnutella.
  netinfo::Oracle oracle(net);
  overlay::gnutella::Config gnutella_config;
  gnutella_config.selection =
      overlay::gnutella::NeighborSelection::kOracleBiased;
  gnutella_config.oracle_at_file_exchange = true;
  overlay::gnutella::GnutellaSystem gnutella(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      gnutella_config, &oracle);
  gnutella.bootstrap();
  for (std::size_t as = 0; as < topo.as_count(); ++as) {
    for (std::size_t copy = 0; copy < 3; ++copy) {
      const std::size_t index = as + topo.as_count() * copy;
      if (index < peers.size()) {
        gnutella.share(peers[index], ContentId(std::uint32_t(as)));
      }
    }
  }

  // Stress layer: churn toggling online state.
  sim::ChurnConfig churn_config;
  churn_config.model = sim::SessionModel::kExponential;
  churn_config.mean_session = sim::minutes(40);
  churn_config.mean_downtime = sim::minutes(10);
  sim::ChurnProcess churn(engine, Rng(7), churn_config);
  churn.on_leave([&](PeerId peer) { net.set_online(peer, false); });
  churn.on_join([&](PeerId peer) { net.set_online(peer, true); });
  for (const PeerId peer : peers) churn.add_peer(peer, true);

  // Run 40 simulated minutes in 5-minute epochs; repair each epoch, then
  // issue locality-correlated searches from online peers.
  std::size_t attempts = 0, successes = 0, intra = 0, downloads = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    engine.run_until(engine.now() + sim::minutes(5));
    gnutella.repair_overlay();
    for (std::size_t as = 0; as < topo.as_count(); ++as) {
      const std::size_t index = as + topo.as_count() * (3 + std::size_t(epoch) % 3);
      if (index >= peers.size()) continue;
      const PeerId origin = peers[index];
      if (!net.is_online(origin)) continue;
      ++attempts;
      const auto outcome =
          gnutella.search(origin, ContentId(std::uint32_t(as)), true);
      successes += outcome.found;
      if (outcome.downloaded) {
        ++downloads;
        intra += outcome.download_intra_as;
      }
    }
  }
  gossip.stop();
  skyeye.stop();
  churn.stop();

  ASSERT_GT(attempts, 20u);
  // Searches keep succeeding through churn with repair.
  EXPECT_GT(double(successes) / double(attempts), 0.8);
  // ISP-awareness keeps download locality high even under churn.
  ASSERT_GT(downloads, 0u);
  EXPECT_GT(double(intra) / double(downloads), 0.6);
  // Collection layer kept working: coordinates converged and the SkyEye
  // root sees a large share of the (online) population.
  Rng eval(11);
  const Samples errors = netinfo::relative_error_samples(
      vivaldi, eval, 300, [&](PeerId a, PeerId b) {
        return net.is_online(a) && net.is_online(b) ? net.rtt_ms(a, b) : -1.0;
      });
  EXPECT_LT(errors.median(), 0.6);
  EXPECT_GT(skyeye.root_view().peer_count, peers.size() / 3);
  // The framework facade still answers everything.
  EXPECT_TRUE(service.isp_of(peers[0]).has_value());
  EXPECT_FALSE(service.top_capacity(3).empty());
}

TEST(FrameworkE2E, MobilityWithGeoReinsertKeepsSearchesComplete) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net(engine, topo, 709);
  const auto peers = net.populate(70);
  overlay::geo::GeoOverlay overlay(net, peers, {});

  underlay::MobilityConfig mobility_config;
  mobility_config.speed_kmh = 900.0;
  mobility_config.mean_pause_ms = sim::minutes(1);
  underlay::MobilityProcess mobility(engine, net, mobility_config);
  // Overlays subscribe to movement: re-register the mover.
  mobility.on_move([&](PeerId peer) { overlay.reinsert(peer); });
  for (std::size_t i = 0; i < peers.size(); i += 2) {
    mobility.add_peer(peers[i]);
  }
  engine.run_until(sim::hours(6));
  mobility.stop();
  ASSERT_GT(mobility.completed_moves(), 20u);

  // With re-registration, area searches stay fully retrievable.
  const overlay::geo::GeoRect rect{44.0, 56.0, -4.0, 24.0};
  const auto result = overlay.area_search(peers[1], rect);
  EXPECT_DOUBLE_EQ(result.completeness(), 1.0);
  // And every found peer really is inside the rect *now*.
  for (const PeerId peer : result.found) {
    EXPECT_TRUE(rect.contains(net.host(peer).location));
  }
}

}  // namespace
}  // namespace uap2p
