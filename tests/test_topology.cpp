#include "underlay/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace uap2p::underlay {
namespace {

TEST(Topology, RingShape) {
  const AsTopology topo = AsTopology::ring(5);
  EXPECT_EQ(topo.as_count(), 5u);
  EXPECT_EQ(topo.router_count(), 15u);  // 3 routers per AS by default
  // 5 peering links + 2 internal links per AS.
  std::size_t peering = 0, internal = 0, transit = 0;
  for (const Link& link : topo.links()) {
    switch (link.type) {
      case LinkType::kPeering: ++peering; break;
      case LinkType::kInternal: ++internal; break;
      case LinkType::kTransit: ++transit; break;
    }
  }
  EXPECT_EQ(peering, 5u);
  EXPECT_EQ(internal, 10u);
  EXPECT_EQ(transit, 0u);
}

TEST(Topology, RingOfTwoHasOneLink) {
  const AsTopology topo = AsTopology::ring(2);
  std::size_t peering = 0;
  for (const Link& link : topo.links()) {
    if (link.type == LinkType::kPeering) ++peering;
  }
  EXPECT_EQ(peering, 1u);
}

TEST(Topology, StarShape) {
  const AsTopology topo = AsTopology::star(6);
  std::size_t transit = 0;
  for (const Link& link : topo.links()) {
    if (link.type == LinkType::kTransit) ++transit;
  }
  EXPECT_EQ(transit, 5u);  // hub to each satellite
  EXPECT_TRUE(topo.as_info(AsId(0)).is_transit);
  EXPECT_FALSE(topo.as_info(AsId(1)).is_transit);
  // All satellites are 2 AS-hops apart, 1 from the hub.
  EXPECT_EQ(topo.as_hop_distance(AsId(1), AsId(2)), 2u);
  EXPECT_EQ(topo.as_hop_distance(AsId(0), AsId(3)), 1u);
}

TEST(Topology, TreeShapeHopDistances) {
  const AsTopology topo = AsTopology::tree(7, 2);  // complete binary tree
  // Leaves 3 and 4 share parent 1: distance 2. Leaves 3 and 5 go through
  // the root: distance 4.
  EXPECT_EQ(topo.as_hop_distance(AsId(3), AsId(4)), 2u);
  EXPECT_EQ(topo.as_hop_distance(AsId(3), AsId(5)), 4u);
  EXPECT_EQ(topo.as_hop_distance(AsId(0), AsId(6)), 2u);
}

TEST(Topology, MeshIsConnected) {
  const AsTopology topo = AsTopology::mesh(12, 0.2);
  for (std::uint32_t i = 0; i < 12; ++i) {
    for (std::uint32_t j = 0; j < 12; ++j) {
      EXPECT_NE(topo.as_hop_distance(AsId(i), AsId(j)), SIZE_MAX);
    }
  }
}

TEST(Topology, MeshEdgeProbabilityScalesDensity) {
  const AsTopology sparse = AsTopology::mesh(16, 0.05);
  const AsTopology dense = AsTopology::mesh(16, 0.8);
  EXPECT_GT(dense.link_count(), sparse.link_count());
}

TEST(Topology, TransitStubStructure) {
  const AsTopology topo = AsTopology::transit_stub(3, 4, 0.0);
  EXPECT_EQ(topo.as_count(), 3u + 12u);
  // Transit core is fully meshed with peering.
  EXPECT_EQ(topo.as_hop_distance(AsId(0), AsId(1)), 1u);
  EXPECT_EQ(topo.as_hop_distance(AsId(0), AsId(2)), 1u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(topo.as_info(AsId(i)).is_transit);
  }
  // A stub reaches its provider in 1 hop and a foreign stub in 3.
  EXPECT_EQ(topo.as_hop_distance(AsId(3), AsId(0)), 1u);
  // Stubs of different transit providers: stub -> transit -> transit -> stub.
  const AsId stub_of_0(3);
  const AsId stub_of_1(3 + 4);
  EXPECT_EQ(topo.as_hop_distance(stub_of_0, stub_of_1), 3u);
}

TEST(Topology, AsHopDistanceProperties) {
  const AsTopology topo = AsTopology::transit_stub(2, 3, 0.5);
  const auto n = static_cast<std::uint32_t>(topo.as_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(topo.as_hop_distance(AsId(i), AsId(i)), 0u);
    for (std::uint32_t j = 0; j < n; ++j) {
      EXPECT_EQ(topo.as_hop_distance(AsId(i), AsId(j)),
                topo.as_hop_distance(AsId(j), AsId(i)));
    }
  }
}

TEST(Topology, PrefixesAreUniqueAndWellFormed) {
  const AsTopology topo = AsTopology::mesh(20, 0.1);
  std::set<std::uint32_t> prefixes;
  for (const auto& as : topo.ases()) {
    EXPECT_EQ(as.prefix_len, 16);
    EXPECT_EQ(as.prefix & 0xFFFF, 0u) << "host bits must be clear";
    prefixes.insert(as.prefix);
  }
  EXPECT_EQ(prefixes.size(), topo.as_count());
}

TEST(Topology, GatewayIsFirstRouter) {
  const AsTopology topo = AsTopology::ring(4);
  for (const auto& as : topo.ases()) {
    EXPECT_EQ(topo.gateway_of(as.id), as.routers.front());
    EXPECT_TRUE(topo.router(as.routers.front()).is_gateway);
  }
}

TEST(Topology, AsNeighborsMatchesLinks) {
  const AsTopology topo = AsTopology::ring(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto neighbors = topo.as_neighbors(AsId(i));
    EXPECT_EQ(neighbors.size(), 2u);  // ring degree
  }
}

TEST(Topology, DeterministicForSameSeed) {
  TopologyConfig config;
  config.seed = 99;
  const AsTopology a = AsTopology::mesh(10, 0.3, config);
  const AsTopology b = AsTopology::mesh(10, 0.3, config);
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.link(i).a, b.link(i).a);
    EXPECT_EQ(a.link(i).b, b.link(i).b);
    EXPECT_DOUBLE_EQ(a.link(i).latency_ms, b.link(i).latency_ms);
  }
}

TEST(Topology, InterAsLatencyRespectsFloor) {
  TopologyConfig config;
  config.min_inter_as_latency_ms = 5.0;
  const AsTopology topo = AsTopology::ring(6, config);
  for (const Link& link : topo.links()) {
    if (link.type != LinkType::kInternal) {
      EXPECT_GE(link.latency_ms, 5.0);
    }
  }
}

TEST(Topology, LinkTypeNames) {
  EXPECT_STREQ(to_string(LinkType::kInternal), "internal");
  EXPECT_STREQ(to_string(LinkType::kPeering), "peering");
  EXPECT_STREQ(to_string(LinkType::kTransit), "transit");
}

// Parameterized: every generator yields a connected AS graph.
class TopologyConnectivityP : public ::testing::TestWithParam<int> {};

TEST_P(TopologyConnectivityP, AllPairsReachable) {
  AsTopology topo;
  switch (GetParam()) {
    case 0: topo = AsTopology::ring(8); break;
    case 1: topo = AsTopology::star(8); break;
    case 2: topo = AsTopology::tree(8, 2); break;
    case 3: topo = AsTopology::mesh(8, 0.1); break;
    case 4: topo = AsTopology::transit_stub(2, 3); break;
    default: FAIL();
  }
  const auto n = static_cast<std::uint32_t>(topo.as_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      EXPECT_NE(topo.as_hop_distance(AsId(i), AsId(j)), SIZE_MAX)
          << "AS " << i << " cannot reach AS " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, TopologyConnectivityP,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace uap2p::underlay
