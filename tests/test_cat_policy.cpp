// Cost-aware BitTorrent (CAT [32]) tracker policy tests.
#include <gtest/gtest.h>

#include "overlay/bittorrent.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::bittorrent {
namespace {

struct CatFixture {
  sim::Engine engine;
  underlay::AsTopology topo;
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<BitTorrentSwarm> swarm;

  explicit CatFixture(NeighborPolicy policy) {
    // Transit-stub with stub peering: cost-aware selection can exploit
    // free peering links that AS-biased selection ignores.
    topo = underlay::AsTopology::transit_stub(2, 4, 0.8);
    net = std::make_unique<underlay::Network>(engine, topo, 59);
    peers = net->populate(80);
    Config config;
    config.policy = policy;
    config.piece_count = 24;
    swarm = std::make_unique<BitTorrentSwarm>(*net, peers, 2, config);
    swarm->build_neighborhoods();
  }
};

TEST(CatPolicy, AvoidsTransitLinks) {
  CatFixture random_fixture(NeighborPolicy::kRandom);
  CatFixture cat_fixture(NeighborPolicy::kCostAware);
  random_fixture.swarm->run(2000);
  cat_fixture.swarm->run(2000);
  EXPECT_LT(cat_fixture.net->traffic().transit_link_bytes(),
            random_fixture.net->traffic().transit_link_bytes());
}

TEST(CatPolicy, UsesFreePeeringLinksMoreThanAsBias) {
  // CAT treats peering-connected neighbor ASes as cheap; AS-biased BNS
  // treats them as foreign. So CAT's edges cross ASes more than BNS's
  // while still avoiding transit.
  CatFixture cat_fixture(NeighborPolicy::kCostAware);
  CatFixture biased_fixture(NeighborPolicy::kBiased);
  EXPECT_GE(cat_fixture.swarm->inter_as_edge_count(),
            biased_fixture.swarm->inter_as_edge_count());
}

TEST(CatPolicy, SwarmStillCompletes) {
  CatFixture fixture(NeighborPolicy::kCostAware);
  const std::size_t rounds = fixture.swarm->run(3000);
  EXPECT_LT(rounds, 3000u);
  EXPECT_EQ(fixture.swarm->stats().completed, fixture.peers.size() - 2);
  EXPECT_TRUE(fixture.swarm->overlay_connected());
}

TEST(CatPolicy, CheapEdgesDominate) {
  CatFixture fixture(NeighborPolicy::kCostAware);
  // Count neighbor edges by link class of the underlying path.
  std::size_t cheap = 0, transit = 0;
  for (const PeerId peer : fixture.peers) {
    for (const PeerId other : fixture.swarm->neighbors_of(peer)) {
      if (peer.value() > other.value()) continue;
      const auto& path = fixture.net->path_between(peer, other);
      if (path.transit_crossings > 0) {
        ++transit;
      } else {
        ++cheap;
      }
    }
  }
  EXPECT_GT(cheap, transit);
}

}  // namespace
}  // namespace uap2p::overlay::bittorrent
