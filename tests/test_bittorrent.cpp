#include "overlay/bittorrent.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::overlay::bittorrent {
namespace {

struct SwarmFixture {
  sim::Engine engine;
  underlay::AsTopology topo;
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<BitTorrentSwarm> swarm;

  explicit SwarmFixture(NeighborPolicy policy, std::size_t peer_count = 64,
                        std::size_t seeds = 2) {
    topo = underlay::AsTopology::mesh(8, 0.3);
    net = std::make_unique<underlay::Network>(engine, topo, 41);
    peers = net->populate(peer_count);
    Config config;
    config.policy = policy;
    config.piece_count = 32;
    swarm = std::make_unique<BitTorrentSwarm>(*net, peers, seeds, config);
    swarm->build_neighborhoods();
  }
};

TEST(BitTorrent, EveryLeecherCompletes) {
  SwarmFixture fixture(NeighborPolicy::kRandom);
  const std::size_t rounds = fixture.swarm->run(2000);
  EXPECT_LT(rounds, 2000u) << "swarm failed to finish";
  for (const PeerId peer : fixture.peers) {
    EXPECT_TRUE(fixture.swarm->is_complete(peer));
  }
  EXPECT_EQ(fixture.swarm->stats().completed, fixture.peers.size() - 2);
}

TEST(BitTorrent, PieceAccountingConsistent) {
  SwarmFixture fixture(NeighborPolicy::kRandom);
  fixture.swarm->run(2000);
  const SwarmStats& stats = fixture.swarm->stats();
  // Every leecher downloads every piece exactly once.
  EXPECT_EQ(stats.pieces_transferred, (fixture.peers.size() - 2) * 32);
  EXPECT_LE(stats.intra_as_pieces, stats.pieces_transferred);
  EXPECT_EQ(stats.completion_rounds.count(), fixture.peers.size() - 2);
}

TEST(BitTorrent, OverlayConnectedUnderBothPolicies) {
  SwarmFixture random_fixture(NeighborPolicy::kRandom);
  SwarmFixture biased_fixture(NeighborPolicy::kBiased);
  EXPECT_TRUE(random_fixture.swarm->overlay_connected());
  EXPECT_TRUE(biased_fixture.swarm->overlay_connected());
}

TEST(BitTorrent, BiasedSelectionClustersNeighborGraph) {
  SwarmFixture random_fixture(NeighborPolicy::kRandom);
  SwarmFixture biased_fixture(NeighborPolicy::kBiased);
  // Figure 6 shape: biased overlay is AS-clustered...
  EXPECT_GT(biased_fixture.swarm->intra_as_edge_fraction(),
            random_fixture.swarm->intra_as_edge_fraction() + 0.25);
  // ...while keeping at least a spanning set of inter-AS links.
  EXPECT_GE(biased_fixture.swarm->inter_as_edge_count(),
            biased_fixture.swarm->min_inter_as_edges_for_connectivity());
  EXPECT_LT(biased_fixture.swarm->inter_as_edge_count(),
            random_fixture.swarm->inter_as_edge_count());
}

TEST(BitTorrent, BiasedSwarmLocalizesTraffic) {
  // Bindal [3]: biased neighbor selection raises the intra-AS share of
  // piece traffic substantially.
  SwarmFixture random_fixture(NeighborPolicy::kRandom);
  SwarmFixture biased_fixture(NeighborPolicy::kBiased);
  random_fixture.swarm->run(2000);
  biased_fixture.swarm->run(2000);
  EXPECT_GT(biased_fixture.swarm->stats().intra_as_piece_fraction(),
            random_fixture.swarm->stats().intra_as_piece_fraction() + 0.2);
}

TEST(BitTorrent, BiasedCompletionTimeNotMuchWorse) {
  // [3]'s headline: locality does not hurt download performance much.
  SwarmFixture random_fixture(NeighborPolicy::kRandom);
  SwarmFixture biased_fixture(NeighborPolicy::kBiased);
  random_fixture.swarm->run(2000);
  biased_fixture.swarm->run(2000);
  const double random_median =
      random_fixture.swarm->stats().completion_rounds.median();
  const double biased_median =
      biased_fixture.swarm->stats().completion_rounds.median();
  EXPECT_LT(biased_median, random_median * 2.0);
}

TEST(BitTorrent, TrafficAccountantSeesPieceBytes) {
  SwarmFixture fixture(NeighborPolicy::kRandom, 32, 2);
  fixture.swarm->run(2000);
  // At least pieces * piece_bytes must have crossed the network.
  const auto min_bytes =
      fixture.swarm->stats().pieces_transferred * std::uint64_t{256 * 1024};
  EXPECT_GE(fixture.net->traffic().total_bytes(), min_bytes);
}

TEST(BitTorrent, SeedsNeverDownload) {
  SwarmFixture fixture(NeighborPolicy::kRandom, 32, 4);
  fixture.swarm->run(2000);
  EXPECT_EQ(fixture.swarm->stats().completed, 32u - 4u);
}

TEST(BitTorrent, NeighborListsSymmetric) {
  SwarmFixture fixture(NeighborPolicy::kBiased);
  for (const PeerId peer : fixture.peers) {
    for (const PeerId other : fixture.swarm->neighbors_of(peer)) {
      const auto back = fixture.swarm->neighbors_of(other);
      EXPECT_NE(std::find(back.begin(), back.end(), peer), back.end());
    }
  }
}

TEST(BitTorrent, SingleSeedStillDistributes) {
  SwarmFixture fixture(NeighborPolicy::kRandom, 24, 1);
  const std::size_t rounds = fixture.swarm->run(4000);
  EXPECT_LT(rounds, 4000u);
  EXPECT_EQ(fixture.swarm->stats().completed, 23u);
}

}  // namespace
}  // namespace uap2p::overlay::bittorrent
