#include "overlay/geo_overlay.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.hpp"

namespace uap2p::overlay::geo {
namespace {

TEST(GeoRect, ContainsAndIntersects) {
  const GeoRect rect{40.0, 50.0, 0.0, 10.0};
  EXPECT_TRUE(rect.contains(underlay::GeoPoint{45.0, 5.0}));
  EXPECT_FALSE(rect.contains(underlay::GeoPoint{39.9, 5.0}));
  EXPECT_FALSE(rect.contains(underlay::GeoPoint{50.0, 5.0}));  // half-open
  const GeoRect overlap{45.0, 55.0, 5.0, 15.0};
  const GeoRect disjoint{60.0, 70.0, 0.0, 10.0};
  EXPECT_TRUE(rect.intersects(overlap));
  EXPECT_FALSE(rect.intersects(disjoint));
  EXPECT_TRUE(rect.contains(GeoRect{41.0, 49.0, 1.0, 9.0}));
  EXPECT_FALSE(rect.contains(overlap));
}

struct GeoFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net{engine, topo, 51};
  std::vector<PeerId> peers = net.populate(60);
  GeoOverlay overlay{net, peers, {}};
};

TEST_F(GeoFixture, TreeSplitsUnderLoad) {
  EXPECT_GT(overlay.zone_count(), 1u);
  EXPECT_GT(overlay.leaf_count(), 1u);
  EXPECT_GE(overlay.tree_depth(), 1u);
}

TEST_F(GeoFixture, EverySupervisorIsValid) {
  for (const PeerId peer : peers) {
    EXPECT_TRUE(overlay.supervisor_of(peer).is_valid());
  }
}

TEST_F(GeoFixture, AreaSearchIsComplete) {
  // Full retrievability (Globase.KOM's headline property): the search
  // returns exactly the ground-truth member set when everyone is online.
  const GeoRect rect{45.0, 55.0, 0.0, 20.0};
  const AreaSearchResult result = overlay.area_search(peers[0], rect);
  EXPECT_DOUBLE_EQ(result.completeness(), 1.0);
  auto expected = overlay.ground_truth(rect);
  auto found = result.found;
  std::sort(expected.begin(), expected.end());
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, expected);
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.duration_ms, 0.0);
}

TEST_F(GeoFixture, SearchResultsActuallyInsideRect) {
  const GeoRect rect{48.0, 52.0, 5.0, 12.0};
  const AreaSearchResult result = overlay.area_search(peers[3], rect);
  for (const PeerId peer : result.found) {
    EXPECT_TRUE(rect.contains(net.host(peer).location));
  }
}

TEST_F(GeoFixture, EmptyRegionReturnsNothing) {
  // Ocean south-west of the populated box.
  const GeoRect rect{36.0, 37.0, -11.9, -11.0};
  const AreaSearchResult result = overlay.area_search(peers[0], rect);
  EXPECT_TRUE(result.found.empty());
  EXPECT_DOUBLE_EQ(result.completeness(), 1.0);  // vacuous
}

TEST_F(GeoFixture, RadiusSearchSortedAndFiltered) {
  const underlay::GeoPoint center = net.host(peers[10]).location;
  const AreaSearchResult result =
      overlay.radius_search(peers[10], center, 300.0);
  // The origin itself is within radius 0 of itself.
  EXPECT_FALSE(result.found.empty());
  double last = -1.0;
  for (const PeerId peer : result.found) {
    const double km = underlay::haversine_km(net.host(peer).location, center);
    EXPECT_LE(km, 300.0);
    EXPECT_GE(km, last);
    last = km;
  }
  EXPECT_DOUBLE_EQ(result.completeness(), 1.0);
}

TEST_F(GeoFixture, SupervisorsHaveHighCapacity) {
  // The supervisor of a peer's zone is at least as capable as that peer,
  // unless the peer supervises itself.
  for (const PeerId peer : peers) {
    const PeerId supervisor = overlay.supervisor_of(peer);
    if (supervisor == peer) continue;
    // The supervisor is the strongest member of the zone, so it must have
    // capacity >= the zone-mate peer... but only when both share a leaf.
    if (overlay.supervisor_of(supervisor) == supervisor) {
      EXPECT_GE(net.host(supervisor).resources.capacity_score(),
                net.host(peer).resources.capacity_score() * 0.999);
    }
  }
}

TEST_F(GeoFixture, DeadSupervisorLosesQueriesUntilRepair) {
  const GeoRect rect{45.0, 55.0, 0.0, 20.0};
  const auto expected = overlay.ground_truth(rect).size();
  ASSERT_GT(expected, 0u);
  // Kill several supervisors (the paper's "routing around dead nodes"
  // challenge).
  std::vector<PeerId> killed;
  for (const PeerId peer : peers) {
    const PeerId supervisor = overlay.supervisor_of(peer);
    if (supervisor.is_valid() && net.is_online(supervisor) &&
        supervisor != peers[0]) {
      net.set_online(supervisor, false);
      killed.push_back(supervisor);
      if (killed.size() >= 4) break;
    }
  }
  const AreaSearchResult degraded = overlay.area_search(peers[0], rect);
  // Repair re-elects supervisors; search becomes complete again (minus
  // the offline peers themselves, which ground_truth also excludes).
  overlay.repair();
  const AreaSearchResult repaired = overlay.area_search(peers[0], rect);
  EXPECT_GE(repaired.completeness(), degraded.completeness());
  EXPECT_DOUBLE_EQ(repaired.completeness(), 1.0);
}

TEST_F(GeoFixture, SearchFromEveryPeerWorks) {
  const GeoRect rect{47.0, 53.0, 2.0, 18.0};
  for (std::size_t i = 0; i < peers.size(); i += 11) {
    const AreaSearchResult result = overlay.area_search(peers[i], rect);
    EXPECT_DOUBLE_EQ(result.completeness(), 1.0) << "origin " << i;
  }
}

TEST(GeoOverlaySmall, SingleZoneNoSplit) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::ring(2);
  underlay::Network net(engine, topo, 3);
  const auto peers = net.populate(4);
  GeoConfig config;
  config.max_zone_peers = 16;
  GeoOverlay overlay(net, peers, config);
  EXPECT_EQ(overlay.zone_count(), 1u);
  EXPECT_EQ(overlay.leaf_count(), 1u);
  const AreaSearchResult result =
      overlay.area_search(peers[0], config.world);
  EXPECT_EQ(result.found.size(), 4u);
}

}  // namespace
}  // namespace uap2p::overlay::geo
