#include "underlay/routing.hpp"

#include <gtest/gtest.h>

namespace uap2p::underlay {
namespace {

AsTopology two_as_line() {
  // AS0: r0 - r1, AS1: r2 - r3; peering r1 <-> r2... built manually so the
  // expected shortest paths are obvious.
  AsTopology topo;
  const AsId as0 = topo.add_as("a", false, {50.0, 8.0});
  const AsId as1 = topo.add_as("b", false, {51.0, 9.0});
  const RouterId r0 = topo.add_router(as0, {50.0, 8.0});
  const RouterId r1 = topo.add_router(as0, {50.1, 8.1});
  const RouterId r2 = topo.add_router(as1, {51.0, 9.0});
  const RouterId r3 = topo.add_router(as1, {51.1, 9.1});
  topo.connect(r0, r1, LinkType::kInternal, 1.0, 1000);
  topo.connect(r1, r2, LinkType::kPeering, 10.0, 10000);
  topo.connect(r2, r3, LinkType::kInternal, 2.0, 1000);
  return topo;
}

TEST(Routing, LatencyIsPathSum) {
  AsTopology topo = two_as_line();
  RoutingTable routing(topo);
  EXPECT_DOUBLE_EQ(routing.latency_ms(RouterId(0), RouterId(3)), 13.0);
  EXPECT_DOUBLE_EQ(routing.latency_ms(RouterId(0), RouterId(1)), 1.0);
  EXPECT_DOUBLE_EQ(routing.latency_ms(RouterId(0), RouterId(0)), 0.0);
}

TEST(Routing, PathInfoSummaries) {
  AsTopology topo = two_as_line();
  RoutingTable routing(topo);
  const PathInfo& info = routing.path(RouterId(0), RouterId(3));
  EXPECT_TRUE(info.reachable);
  EXPECT_EQ(info.router_hops, 3u);
  EXPECT_EQ(info.as_hops(), 1u);
  EXPECT_EQ(info.peering_crossings, 1u);
  EXPECT_EQ(info.transit_crossings, 0u);
  EXPECT_FALSE(info.intra_as());
  EXPECT_EQ(info.as_crossings, 1u);
  const auto as_path = routing.as_path(RouterId(0), RouterId(3));
  ASSERT_EQ(as_path.size(), 2u);
  EXPECT_EQ(as_path.front(), AsId(0));
  EXPECT_EQ(as_path.back(), AsId(1));
  EXPECT_DOUBLE_EQ(info.bottleneck_mbps, 1000.0);
}

TEST(Routing, IntraAsPath) {
  AsTopology topo = two_as_line();
  RoutingTable routing(topo);
  const PathInfo& info = routing.path(RouterId(0), RouterId(1));
  EXPECT_TRUE(info.intra_as());
  EXPECT_EQ(info.as_hops(), 0u);
  EXPECT_EQ(info.peering_crossings, 0u);
}

TEST(Routing, SelfPath) {
  AsTopology topo = two_as_line();
  RoutingTable routing(topo);
  const PathInfo& info = routing.path(RouterId(2), RouterId(2));
  EXPECT_TRUE(info.reachable);
  EXPECT_EQ(info.router_hops, 0u);
  EXPECT_TRUE(info.intra_as());
}

TEST(Routing, UnreachableIsland) {
  AsTopology topo = two_as_line();
  const AsId island = topo.add_as("island", false, {40.0, 20.0});
  const RouterId lonely = topo.add_router(island, {40.0, 20.0});
  RoutingTable routing(topo);
  const PathInfo& info = routing.path(RouterId(0), lonely);
  EXPECT_FALSE(info.reachable);
}

TEST(Routing, RouterPathEndpoints) {
  AsTopology topo = two_as_line();
  RoutingTable routing(topo);
  const auto path = routing.router_path(RouterId(0), RouterId(3));
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), RouterId(0));
  EXPECT_EQ(path.back(), RouterId(3));
  // Consecutive routers must share a link.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool adjacent = false;
    for (const auto& neighbor : topo.neighbors(path[i])) {
      adjacent |= neighbor.router == path[i + 1];
    }
    EXPECT_TRUE(adjacent);
  }
}

TEST(Routing, SymmetricOnUndirectedGraph) {
  const AsTopology topo = AsTopology::mesh(8, 0.3);
  RoutingTable routing(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; i += 3) {
    for (std::uint32_t j = 0; j < n; j += 3) {
      EXPECT_NEAR(routing.latency_ms(RouterId(i), RouterId(j)),
                  routing.latency_ms(RouterId(j), RouterId(i)), 1e-9);
    }
  }
}

TEST(Routing, TriangleInequality) {
  const AsTopology topo = AsTopology::transit_stub(2, 4, 0.3);
  RoutingTable routing(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t a = 0; a < n; a += 5) {
    for (std::uint32_t b = 0; b < n; b += 5) {
      for (std::uint32_t c = 0; c < n; c += 5) {
        EXPECT_LE(routing.latency_ms(RouterId(a), RouterId(c)),
                  routing.latency_ms(RouterId(a), RouterId(b)) +
                      routing.latency_ms(RouterId(b), RouterId(c)) + 1e-9);
      }
    }
  }
}

TEST(Routing, ShortestBeatsAnyDetour) {
  AsTopology topo = two_as_line();
  // Add a slow direct shortcut r0 <-> r3; Dijkstra must ignore it.
  topo.connect(RouterId(0), RouterId(3), LinkType::kPeering, 100.0, 10000);
  RoutingTable routing(topo);
  EXPECT_DOUBLE_EQ(routing.latency_ms(RouterId(0), RouterId(3)), 13.0);
  // Make the shortcut fast; now it must win.
  topo.connect(RouterId(0), RouterId(3), LinkType::kPeering, 5.0, 10000);
  RoutingTable fresh(topo);
  EXPECT_DOUBLE_EQ(fresh.latency_ms(RouterId(0), RouterId(3)), 5.0);
}

TEST(Routing, CacheGrowsPerSource) {
  const AsTopology topo = AsTopology::ring(4);
  RoutingTable routing(topo);
  EXPECT_EQ(routing.cached_sources(), 0u);
  (void)routing.path(RouterId(0), RouterId(5));
  EXPECT_EQ(routing.cached_sources(), 1u);
  (void)routing.path(RouterId(0), RouterId(7));
  EXPECT_EQ(routing.cached_sources(), 1u);  // same source reused
  (void)routing.path(RouterId(3), RouterId(1));
  EXPECT_EQ(routing.cached_sources(), 2u);
}

TEST(Routing, AsPathHasNoConsecutiveDuplicates) {
  const AsTopology topo = AsTopology::transit_stub(3, 3, 0.5);
  RoutingTable routing(topo);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; i += 4) {
    for (std::uint32_t j = 1; j < n; j += 4) {
      const PathInfo info = routing.path(RouterId(i), RouterId(j));
      const auto as_path = routing.as_path(RouterId(i), RouterId(j));
      if (!info.reachable) {
        EXPECT_TRUE(as_path.empty());
        continue;
      }
      // The lazily interned sequence agrees with the packed crossing count.
      ASSERT_EQ(as_path.size(), std::size_t(info.as_crossings) + 1);
      for (std::size_t k = 0; k + 1 < as_path.size(); ++k) {
        EXPECT_NE(as_path[k], as_path[k + 1]);
      }
    }
  }
}

TEST(Routing, AsPathInterningDeduplicatesStorage) {
  // Many intra-AS pairs share the single-AS sequence; interning must hand
  // back the same stable storage for all of them.
  const AsTopology topo = AsTopology::ring(3);
  RoutingTable routing(topo);
  const auto first = routing.as_path(RouterId(0), RouterId(1));
  const auto second = routing.as_path(RouterId(1), RouterId(2));
  const auto repeat = routing.as_path(RouterId(0), RouterId(1));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.data(), second.data());  // same interned sequence
  EXPECT_EQ(first.data(), repeat.data());  // pair memoized
  // Spans stay valid as the store grows across every pair in the topology.
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i)
    for (std::uint32_t j = 0; j < n; ++j)
      (void)routing.as_path(RouterId(i), RouterId(j));
  EXPECT_EQ(first.front(), topo.as_of(RouterId(0)));
}

TEST(Routing, WarmAllMatchesLazyQueries) {
  const AsTopology topo = AsTopology::transit_stub(2, 4, 0.4);
  RoutingTable lazy(topo);
  RoutingTable warmed(topo);
  warmed.warm_all();
  EXPECT_EQ(warmed.cached_sources(), topo.router_count());
  const auto& warmed_const = warmed;
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(warmed_const.warmed(RouterId(i)));
    for (std::uint32_t j = 0; j < n; ++j) {
      const PathInfo a = lazy.path(RouterId(i), RouterId(j));
      // Read through the const (shared-reader) entry point.
      const PathInfo b = warmed_const.path(RouterId(i), RouterId(j));
      EXPECT_EQ(a.reachable, b.reachable);
      EXPECT_EQ(a.latency_ms, b.latency_ms);  // bit-identical
      EXPECT_EQ(a.bottleneck_mbps, b.bottleneck_mbps);
      EXPECT_EQ(a.router_hops, b.router_hops);
      EXPECT_EQ(a.transit_crossings, b.transit_crossings);
      EXPECT_EQ(a.peering_crossings, b.peering_crossings);
      EXPECT_EQ(a.as_crossings, b.as_crossings);
    }
  }
  EXPECT_GT(warmed.row_bytes(), 0u);
}

}  // namespace
}  // namespace uap2p::underlay
