// Global operator new/delete replacement that counts allocations. Linked
// into uap2p_tests only; the library itself is untouched. See
// alloc_probe.hpp.
#include "alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

namespace uap2p::testing {
std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace uap2p::testing

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
