#include "netinfo/gmeasure.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct GmFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net{engine, topo, 811};
  std::vector<PeerId> peers = net.populate(60);
  PingerConfig ping_config{.jitter_sigma = 0.0};
  Pinger pinger{net, Rng(3), ping_config};
  GroupMeasure gm{net, pinger, peers};
};

TEST_F(GmFixture, OneGroupPerAs) {
  EXPECT_EQ(gm.group_count(), topo.as_count());
  for (const PeerId peer : peers) {
    const PeerId head = gm.head_of(peer);
    ASSERT_TRUE(head.is_valid());
    EXPECT_EQ(net.host(head).as, net.host(peer).as);
  }
}

TEST_F(GmFixture, CacheCollapsesProbeCount) {
  // Estimate every pair once: probes are bounded by group pairs, not
  // peer pairs.
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      gm.estimate_rtt(peers[i], peers[j]);
    }
  }
  const std::size_t g = gm.group_count();
  EXPECT_LE(gm.cache_misses(), g * (g - 1) / 2 + g);
  EXPECT_GT(gm.cache_hits(), gm.cache_misses() * 10);
}

TEST_F(GmFixture, RepeatEstimatesAreFree) {
  gm.estimate_rtt(peers[0], peers[1]);
  const auto probes = pinger.probes_sent();
  for (int i = 0; i < 50; ++i) gm.estimate_rtt(peers[0], peers[1]);
  EXPECT_EQ(pinger.probes_sent(), probes);
}

TEST_F(GmFixture, EstimatesCorrelateWithTruth) {
  // Group-level estimates carry the intra-group spread but must still
  // track the true RTT ordering on average: mean relative error bounded.
  Samples errors;
  for (std::size_t i = 0; i < peers.size(); i += 3) {
    for (std::size_t j = i + 1; j < peers.size(); j += 3) {
      const double estimate = gm.estimate_rtt(peers[i], peers[j]);
      if (estimate <= 0) continue;
      const double truth = net.rtt_ms(peers[i], peers[j]);
      errors.add(std::abs(estimate - truth) / truth);
    }
  }
  ASSERT_FALSE(errors.empty());
  EXPECT_LT(errors.median(), 0.5);
}

TEST_F(GmFixture, SingletonGroupIntraEstimateFails) {
  // Build a population where one AS has a single member.
  std::vector<PeerId> sparse{peers[0], peers[1], peers[2]};
  GroupMeasure lonely(net, pinger, sparse);
  EXPECT_LT(lonely.estimate_rtt(peers[0], peers[0]), 0.0);
}

}  // namespace
}  // namespace uap2p::netinfo
