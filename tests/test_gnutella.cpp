#include "overlay/gnutella.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::overlay::gnutella {
namespace {

/// [1]'s testlab scale: 5 ASes, 45 nodes, 1 ultrapeer per 2 leaves.
struct Testlab {
  sim::Engine engine;
  underlay::AsTopology topo;
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<netinfo::Oracle> oracle;
  std::unique_ptr<GnutellaSystem> system;

  explicit Testlab(NeighborSelection selection, std::size_t cache = 100,
                   bool oracle_at_exchange = false,
                   std::size_t peer_count = 45) {
    topo = underlay::AsTopology::ring(5);
    net = std::make_unique<underlay::Network>(engine, topo, 21);
    peers = net->populate(peer_count);
    oracle = std::make_unique<netinfo::Oracle>(*net);
    Config config;
    config.selection = selection;
    config.hostcache_size = cache;
    config.oracle_at_file_exchange = oracle_at_exchange;
    system = std::make_unique<GnutellaSystem>(
        *net, peers, testlab_roles(peer_count), config, oracle.get());
    system->bootstrap();
  }
};

TEST(GnutellaRoles, TestlabPattern) {
  const auto roles = testlab_roles(9, 2);
  ASSERT_EQ(roles.size(), 9u);
  EXPECT_EQ(roles[0], NodeRole::kUltrapeer);
  EXPECT_EQ(roles[1], NodeRole::kLeaf);
  EXPECT_EQ(roles[2], NodeRole::kLeaf);
  EXPECT_EQ(roles[3], NodeRole::kUltrapeer);
  const auto ups = std::count(roles.begin(), roles.end(), NodeRole::kUltrapeer);
  EXPECT_EQ(ups, 3);
}

TEST(Gnutella, BootstrapConnectsEveryNode) {
  Testlab lab(NeighborSelection::kRandom);
  for (const PeerId peer : lab.peers) {
    EXPECT_FALSE(lab.system->neighbors_of(peer).empty())
        << "peer " << peer.value() << " has no neighbors";
  }
}

TEST(Gnutella, LeavesAttachOnlyToUltrapeers) {
  Testlab lab(NeighborSelection::kRandom);
  for (const PeerId peer : lab.peers) {
    if (lab.system->role_of(peer) != NodeRole::kLeaf) continue;
    for (const PeerId up : lab.system->neighbors_of(peer)) {
      EXPECT_EQ(lab.system->role_of(up), NodeRole::kUltrapeer);
    }
  }
}

TEST(Gnutella, SearchFindsSharedContent) {
  Testlab lab(NeighborSelection::kRandom);
  const ContentId content(7);
  lab.system->share(lab.peers[10], content);
  lab.system->share(lab.peers[30], content);
  const SearchOutcome outcome = lab.system->search(lab.peers[0], content);
  EXPECT_TRUE(outcome.found);
  EXPECT_GE(outcome.result_count, 1u);
  EXPECT_GT(outcome.time_to_first_hit_ms, 0.0);
  EXPECT_TRUE(outcome.downloaded);
  EXPECT_GT(outcome.download_time_ms, 0.0);
}

TEST(Gnutella, SearchForMissingContentFails) {
  Testlab lab(NeighborSelection::kRandom);
  const SearchOutcome outcome = lab.system->search(lab.peers[0], ContentId(99));
  EXPECT_FALSE(outcome.found);
  EXPECT_EQ(outcome.result_count, 0u);
  EXPECT_FALSE(outcome.downloaded);
}

TEST(Gnutella, PingCyclesProducePongsExceedingPings) {
  Testlab lab(NeighborSelection::kRandom);
  // First cycle warms pong caches; by the second, pong caching serves
  // multiple addresses per ping ([1] Table 1: Pong is roughly 10x Ping).
  lab.system->ping_cycle();
  lab.system->ping_cycle();
  lab.system->ping_cycle();
  const MessageCounts& counts = lab.system->counts();
  EXPECT_GT(counts.ping, 0u);
  EXPECT_GT(counts.pong, counts.ping);
}

TEST(Gnutella, PongCachingSuppressesPingForwarding) {
  // Warm caches truncate the ping flood: a later cycle sends fewer pings
  // than the first (cold) one.
  Testlab lab(NeighborSelection::kRandom);
  lab.system->ping_cycle();
  const auto cold_pings = lab.system->counts().ping;
  lab.system->ping_cycle();
  lab.system->ping_cycle();
  const auto warm_pings =
      (lab.system->counts().ping - cold_pings) / 2;  // per warm cycle
  EXPECT_LT(warm_pings, cold_pings);
}

TEST(Gnutella, QueriesExceedQueryHits) {
  Testlab lab(NeighborSelection::kRandom);
  const ContentId content(3);
  lab.system->share(lab.peers[5], content);
  for (int i = 0; i < 10; ++i) {
    lab.system->search(lab.peers[static_cast<std::size_t>(i) * 4], content,
                       /*download=*/false);
  }
  const MessageCounts& counts = lab.system->counts();
  EXPECT_GT(counts.query, counts.query_hit);
  EXPECT_GT(counts.query_hit, 0u);
}

TEST(Gnutella, BiasedSelectionClustersTopology) {
  Testlab random_lab(NeighborSelection::kRandom);
  Testlab biased_lab(NeighborSelection::kOracleBiased);
  // Figure 6: biased neighbor selection clusters the overlay by AS.
  EXPECT_GT(biased_lab.system->intra_as_edge_fraction(),
            random_lab.system->intra_as_edge_fraction() + 0.2);
}

TEST(Gnutella, BiasedOverlayKeepsMinimalInterAsConnectivity) {
  Testlab biased_lab(NeighborSelection::kOracleBiased, 1000);
  // "a minimal number of inter-AS connections necessary to keep the
  // network connected" — it must not be zero (network would partition)
  // and must be far below the random case.
  Testlab random_lab(NeighborSelection::kRandom, 1000);
  EXPECT_GE(biased_lab.system->inter_as_edge_count(),
            biased_lab.system->min_inter_as_edges_for_connectivity());
  EXPECT_LT(biased_lab.system->inter_as_edge_count(),
            random_lab.system->inter_as_edge_count());
}

TEST(Gnutella, BiasedFloodsCostFewerMessages) {
  // [1]'s Table 1 shape: every message type shrinks under the oracle.
  Testlab random_lab(NeighborSelection::kRandom, 100);
  Testlab biased_lab(NeighborSelection::kOracleBiased, 100);
  auto run_workload = [](Testlab& lab) {
    // Locality-correlated workload ([25]): each AS has its own popular
    // content, shared by 4 local peers and searched by 3 other locals.
    // Peers are AS-round-robin over 5 ASes.
    for (std::uint32_t as = 0; as < 5; ++as) {
      for (std::size_t copy = 0; copy < 4; ++copy) {
        lab.system->share(lab.peers[as + 5 * copy], ContentId(as));
      }
    }
    lab.system->ping_cycle();
    for (std::uint32_t as = 0; as < 5; ++as) {
      for (std::size_t searcher = 4; searcher < 7; ++searcher) {
        lab.system->search(lab.peers[as + 5 * searcher], ContentId(as),
                           /*download=*/false);
      }
    }
    return lab.system->counts();
  };
  const MessageCounts random_counts = run_workload(random_lab);
  const MessageCounts biased_counts = run_workload(biased_lab);
  // Dynamic querying terminates locality-biased searches in early waves.
  EXPECT_LT(biased_counts.query, random_counts.query);
  EXPECT_LT(biased_counts.total(), random_counts.total());
}

TEST(Gnutella, NoLostSearchesUnderBias) {
  // [1]: "whether biased neighbor selection leads to any unsuccessful
  // content search which was otherwise successful" — it must not.
  Testlab biased_lab(NeighborSelection::kOracleBiased, 1000);
  const ContentId content(17);
  // One provider per AS, like the testlab's uniform file distribution.
  for (std::size_t i = 0; i < 5; ++i) {
    biased_lab.system->share(biased_lab.peers[i], content);
  }
  std::size_t successes = 0;
  for (std::size_t i = 5; i < biased_lab.peers.size(); i += 4) {
    if (biased_lab.system->search(biased_lab.peers[i], content, false).found) {
      ++successes;
    }
  }
  EXPECT_EQ(successes, 10u);  // every search succeeds
}

TEST(Gnutella, OracleAtFileExchangeLocalizesDownloads) {
  Testlab bootstrap_only(NeighborSelection::kOracleBiased, 1000, false);
  Testlab both_stages(NeighborSelection::kOracleBiased, 1000, true);
  auto run = [](Testlab& lab) {
    const ContentId content(23);
    // Replicate content in every AS so a local provider always exists.
    for (std::size_t i = 0; i < 10; ++i) lab.system->share(lab.peers[i], content);
    int intra = 0, total = 0;
    for (std::size_t i = 10; i < lab.peers.size(); ++i) {
      const SearchOutcome outcome = lab.system->search(lab.peers[i], content);
      if (!outcome.downloaded) continue;
      ++total;
      intra += outcome.download_intra_as ? 1 : 0;
    }
    return total == 0 ? 0.0 : double(intra) / total;
  };
  const double without = run(bootstrap_only);
  const double with = run(both_stages);
  // [1]: 7-10% intra-AS without the second consultation, ~40% with it.
  EXPECT_GT(with, without);
}

TEST(Gnutella, PongsFeedHostcaches) {
  Testlab lab(NeighborSelection::kRandom, 10);  // tiny caches
  lab.system->ping_cycle();
  // After a ping cycle, hostcaches have been refreshed with pong entries;
  // providers_of is unrelated — instead check message counters moved and
  // another cycle still works (stability smoke).
  const auto first = lab.system->counts().pong;
  lab.system->ping_cycle();
  EXPECT_GT(lab.system->counts().pong, first);
}

TEST(Gnutella, MessageCountsAccumulate) {
  MessageCounts a{1, 2, 3, 4};
  MessageCounts b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.ping, 11u);
  EXPECT_EQ(a.pong, 22u);
  EXPECT_EQ(a.query, 33u);
  EXPECT_EQ(a.query_hit, 44u);
  EXPECT_EQ(a.total(), 110u);
}

}  // namespace
}  // namespace uap2p::overlay::gnutella
