// Cross-module integration scenarios: the full stack (underlay -> netinfo
// collectors -> overlays -> core policies) wired together the way the
// examples and benches use it.
#include <gtest/gtest.h>

#include "core/underlay_service.hpp"
#include "netinfo/skyeye.hpp"
#include "overlay/bittorrent.hpp"
#include "overlay/gnutella.hpp"
#include "sim/churn.hpp"
#include "sim/engine.hpp"

namespace uap2p {
namespace {

TEST(Integration, IspAwareGnutellaReducesTransitBytes) {
  // End-to-end Table 2 story: same workload, unbiased vs oracle-biased,
  // compared on the transit bytes the ISP pays for.
  auto run = [](bool biased) {
    sim::Engine engine;
    underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 3, 0.4);
    underlay::Network net(engine, topo, 81);
    auto peers = net.populate(60);
    netinfo::Oracle oracle(net);
    overlay::gnutella::Config config;
    config.selection = biased
                           ? overlay::gnutella::NeighborSelection::kOracleBiased
                           : overlay::gnutella::NeighborSelection::kRandom;
    config.hostcache_size = 100;
    config.oracle_at_file_exchange = biased;
    overlay::gnutella::GnutellaSystem system(
        net, peers, overlay::gnutella::testlab_roles(peers.size()), config,
        &oracle);
    system.bootstrap();
    const ContentId content(1);
    for (std::size_t i = 0; i < peers.size(); i += 6) {
      system.share(peers[i], content);
    }
    system.ping_cycle();
    for (std::size_t i = 1; i < peers.size(); i += 3) {
      system.search(peers[i], content, /*download=*/true);
    }
    return net.traffic().transit_link_bytes();
  };
  const auto unbiased_transit = run(false);
  const auto biased_transit = run(true);
  EXPECT_LT(biased_transit, unbiased_transit);
}

TEST(Integration, GnutellaSurvivesChurn) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::ring(5);
  underlay::Network net(engine, topo, 91);
  auto peers = net.populate(45);
  overlay::gnutella::Config config;
  overlay::gnutella::GnutellaSystem system(
      net, peers, overlay::gnutella::testlab_roles(peers.size()), config);
  system.bootstrap();
  const ContentId content(2);
  for (std::size_t i = 0; i < peers.size(); i += 5) {
    system.share(peers[i], content);
  }
  // Wire churn to network online flags.
  sim::ChurnConfig churn_config;
  churn_config.model = sim::SessionModel::kExponential;
  churn_config.mean_session = sim::minutes(30);
  churn_config.mean_downtime = sim::minutes(10);
  sim::ChurnProcess churn(engine, Rng(5), churn_config);
  churn.on_leave([&](PeerId peer) { net.set_online(peer, false); });
  churn.on_join([&](PeerId peer) { net.set_online(peer, true); });
  for (const PeerId peer : peers) churn.add_peer(peer, true);

  int successes = 0, attempts = 0;
  for (int round = 0; round < 10; ++round) {
    engine.run_until(engine.now() + sim::minutes(5));
    const PeerId origin = peers[static_cast<std::size_t>(round) * 4 + 1];
    if (!net.is_online(origin)) continue;
    ++attempts;
    successes += system.search(origin, content, /*download=*/false).found;
  }
  ASSERT_GT(attempts, 3);
  // Searches may degrade under churn, but the overlay must not collapse.
  EXPECT_GT(successes, attempts / 2);
}

TEST(Integration, CompositePolicyBalancesCostAndDelay) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net(engine, topo, 101);
  auto peers = net.populate(40);
  core::UnderlayServiceConfig service_config;
  service_config.pinger.jitter_sigma = 0.0;
  core::UnderlayService service(net, service_config);

  auto isp_policy = core::make_isp_policy(service);
  auto latency_policy =
      core::make_latency_policy(service, core::LatencyMethod::kExplicitPing);
  auto composite = core::make_composite_policy(
      service, core::CompositeWeights{1.0, 1.0, 0.0, 0.0},
      core::LatencyMethod::kExplicitPing, netinfo::GeoSource::kIspProvided);

  auto top_k_metrics = [&](core::NeighborRankingPolicy& policy) {
    double hops = 0.0, rtt = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < peers.size(); i += 4) {
      const auto ranked = policy.rank(peers[i], peers);
      for (std::size_t k = 0; k < 5 && k < ranked.size(); ++k) {
        hops += double(service.as_hops(peers[i], ranked[k]));
        rtt += net.rtt_ms(peers[i], ranked[k]);
        ++n;
      }
    }
    return std::pair{hops / n, rtt / n};
  };
  const auto [isp_hops, isp_rtt] = top_k_metrics(*isp_policy);
  const auto [lat_hops, lat_rtt] = top_k_metrics(*latency_policy);
  const auto [mix_hops, mix_rtt] = top_k_metrics(*composite);
  // Pure policies win their own dimension; the composite sits between.
  EXPECT_LE(isp_hops, mix_hops + 1e-9);
  EXPECT_LE(lat_rtt, mix_rtt + 1e-9);
  EXPECT_LE(mix_hops, lat_hops + 1e-9);
  EXPECT_LE(mix_rtt, isp_rtt + 1e-9);
}

TEST(Integration, SkyEyeDrivenSwarmSeeding) {
  // Resource awareness feeding a distribution swarm: seeding from the
  // SkyEye-reported strongest peers must beat seeding from the weakest.
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net(engine, topo, 111);
  auto peers = net.populate(48);
  netinfo::SkyEyeConfig sky_config;
  sky_config.update_period_ms = sim::seconds(10);
  netinfo::SkyEye skyeye(net, peers, sky_config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  const auto top = skyeye.query_top_capacity(2);
  ASSERT_EQ(top.size(), 2u);
  // Reorder peers so the SkyEye-selected strong peers are the seeds.
  std::vector<PeerId> strong_first = peers;
  for (std::size_t i = 0; i < 2; ++i) {
    auto it = std::find(strong_first.begin(), strong_first.end(), top[i].peer);
    std::iter_swap(strong_first.begin() + i, it);
  }
  overlay::bittorrent::Config config;
  config.piece_count = 16;
  overlay::bittorrent::BitTorrentSwarm swarm(net, strong_first, 2, config);
  swarm.build_neighborhoods();
  const std::size_t rounds = swarm.run(2000);
  EXPECT_LT(rounds, 2000u);
  EXPECT_EQ(swarm.stats().completed, peers.size() - 2);
}

}  // namespace
}  // namespace uap2p
