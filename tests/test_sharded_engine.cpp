// Sharded engine (sim::EngineGroup) + cross-shard mailbox tests. These
// live in the parallel-labeled binary so the tsan preset runs them: the
// shard windows of run_until/step execute on pool workers, and any
// cross-shard state leak (network lanes, overlay counters, mailbox
// drains) is a data race TSan can see.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "obs/metrics.hpp"
#include "overlay/gnutella.hpp"
#include "sim/sharded_engine.hpp"
#include "underlay/network.hpp"

namespace uap2p {
namespace {

TEST(ShardedEngine, ClocksAlignAfterRunUntil) {
  sim::EngineGroup group(4);
  std::atomic<int> fired{0};
  for (std::size_t s = 0; s < group.size(); ++s) {
    group.shard(s).schedule_at(10.0 * double(s + 1), [&] { ++fired; });
  }
  // No mailbox -> infinite lookahead -> one window to the target.
  EXPECT_EQ(group.run_until(100.0), 4u);
  EXPECT_EQ(fired.load(), 4);
  for (std::size_t s = 0; s < group.size(); ++s) {
    EXPECT_DOUBLE_EQ(group.shard(s).now(), 100.0);
  }
  EXPECT_EQ(group.next_event_time(), sim::Engine::kNoEventTime);
}

TEST(ShardedEngine, StepRunsOneWindowAtATime) {
  sim::EngineGroup group(2);
  std::atomic<int> fired{0};
  group.shard(0).schedule_at(5.0, [&] { ++fired; });
  group.shard(1).schedule_at(7.0, [&] { ++fired; });
  // Without a mailbox each step's window reaches exactly the earliest
  // pending event, so the two events fire on separate steps.
  EXPECT_EQ(group.step(), 1u);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(group.step(), 1u);
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(group.step(), 0u);
}

TEST(ShardedEngine, SingleShardMatchesPlainEngine) {
  sim::Engine plain;
  sim::EngineGroup group(1);
  std::uint64_t a = 0, b = 0;
  for (int i = 0; i < 100; ++i) {
    plain.schedule(double(i % 13), [&a, i] { a += std::uint64_t(i); });
    group.shard(0).schedule(double(i % 13), [&b, i] { b += std::uint64_t(i); });
  }
  EXPECT_EQ(plain.run_until(20.0), group.run_until(20.0));
  EXPECT_EQ(a, b);
  const sim::EngineStats ps = plain.stats();
  const sim::EngineStats gs = group.stats();
  EXPECT_EQ(ps.scheduled, gs.scheduled);
  EXPECT_EQ(ps.executed, gs.executed);
  EXPECT_EQ(ps.inline_callbacks, gs.inline_callbacks);
  EXPECT_EQ(ps.spilled_callbacks, gs.spilled_callbacks);
}

// Ping-pong stress through the Network's cross-shard mailbox: every
// delivery's handler replies with a decremented type until it hits zero,
// so messages bounce between shards and every bounce crosses the
// exchange path. Deterministic delivery totals prove nothing is lost or
// duplicated; TSan proves the lanes don't race.
TEST(ShardedEngine, CrossShardMailboxStress) {
  sim::EngineGroup group(4);
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(group, topo, /*seed=*/17);
  const std::vector<PeerId> peers = net.populate(32);
  std::atomic<std::uint64_t> handled{0};
  for (const PeerId peer : peers) {
    net.set_handler(peer, [&, peer](const underlay::Message& msg) {
      ++handled;
      if (msg.type > 0) {
        underlay::Message reply;
        reply.src = peer;
        reply.dst = msg.src;
        reply.type = msg.type - 1;
        net.send(std::move(reply));
      }
    });
  }
  constexpr int kHops = 8;
  constexpr std::size_t kPairs = 16;
  for (std::size_t i = 0; i < kPairs; ++i) {
    underlay::Message msg;
    msg.src = peers[i];
    msg.dst = peers[i + kPairs];
    msg.type = kHops;
    ASSERT_TRUE(net.send(std::move(msg)));
  }
  net.run_until(sim::seconds(300));
  // Each seed message triggers kHops replies: kHops + 1 deliveries total.
  EXPECT_EQ(handled.load(), kPairs * (kHops + 1));
  std::uint64_t delivered = 0;
  for (int type = 0; type <= kHops; ++type) {
    delivered += net.delivered_count(type);
    EXPECT_EQ(net.delivered_count(type), kPairs);
  }
  EXPECT_EQ(delivered, kPairs * (kHops + 1));
  EXPECT_EQ(net.dropped_count(), 0u);
  // All clocks aligned at the barrier.
  for (std::size_t s = 0; s < group.size(); ++s) {
    EXPECT_DOUBLE_EQ(group.shard(s).now(), sim::seconds(300));
  }
}

/// One small Gnutella flood scenario; returns behavioral observables that
/// must not depend on the shard count.
struct GnutellaRun {
  overlay::gnutella::MessageCounts counts;
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  std::size_t results = 0;
  std::string comparable_json;
};

GnutellaRun run_gnutella(std::size_t shards, bool matrix = false) {
  sim::EngineGroup engines(shards);
  const underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engines, topo, /*seed=*/99);
  const std::vector<PeerId> peers = net.populate(60);
  if (matrix) net.enable_traffic_matrix();
  overlay::gnutella::Config config;
  config.seed = 7;
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      config);
  system.bootstrap();
  system.share(peers[3], ContentId(1));
  system.ping_cycle();
  GnutellaRun out;
  out.results =
      system.search(peers[40], ContentId(1), /*download=*/false).result_count;
  out.counts = system.counts();
  const sim::EngineStats stats = engines.stats();
  out.scheduled = stats.scheduled;
  out.executed = stats.executed;
  obs::MetricsRegistry reg;
  engines.export_comparable_metrics(reg);
  if (matrix) net.export_traffic(reg);
  out.comparable_json = reg.to_json();
  return out;
}

TEST(ShardedEngine, GnutellaShardedMatchesSerial) {
  const GnutellaRun serial = run_gnutella(1);
  const GnutellaRun sharded = run_gnutella(4);
  EXPECT_EQ(serial.results, sharded.results);
  EXPECT_EQ(serial.counts.ping, sharded.counts.ping);
  EXPECT_EQ(serial.counts.pong, sharded.counts.pong);
  EXPECT_EQ(serial.counts.query, sharded.counts.query);
  EXPECT_EQ(serial.counts.query_hit, sharded.counts.query_hit);
  EXPECT_EQ(serial.scheduled, sharded.scheduled);
  EXPECT_EQ(serial.executed, sharded.executed);
  // The comparable export (the five behavioral engine counters) is the
  // piece of the --metrics snapshot the CTest gate byte-compares.
  EXPECT_EQ(serial.comparable_json, sharded.comparable_json);
  EXPECT_GT(serial.counts.total(), 0u);
}

TEST(ShardedEngine, GnutellaMatrixExportMatchesSerial) {
  // Cost-observatory identity: with the per-AS-pair matrix armed, the
  // lane-merged traffic export (pair counters, per-AS bill gauges, and
  // the windowed transit series) must be byte-identical between one
  // shard and four. This is the in-process half of the
  // sharded-serial-identical CTest gates.
  const GnutellaRun serial = run_gnutella(1, /*matrix=*/true);
  const GnutellaRun sharded = run_gnutella(4, /*matrix=*/true);
  EXPECT_EQ(serial.comparable_json, sharded.comparable_json);
  EXPECT_NE(serial.comparable_json.find("traffic.pair."), std::string::npos);
  EXPECT_NE(serial.comparable_json.find("transit_bytes"), std::string::npos);
}

TEST(ShardedEngine, ExportRollupShape) {
  sim::EngineGroup group(3);
  for (std::size_t s = 0; s < group.size(); ++s) {
    group.shard(s).schedule_at(1.0 + double(s), [] {});
  }
  group.run_until(10.0);
  obs::MetricsRegistry full;
  group.export_metrics(full);
  const std::string json = full.to_json();
  // Rollup + one structural pair per shard, in shard-id order.
  EXPECT_NE(json.find("engine.events.executed"), std::string::npos);
  EXPECT_NE(json.find("engine.queue.high_water"), std::string::npos);
  for (int s = 0; s < 3; ++s) {
    const std::string key = "engine.shard" + std::to_string(s);
    EXPECT_NE(json.find(key + ".queue.high_water"), std::string::npos);
    EXPECT_NE(json.find(key + ".slab.slots"), std::string::npos);
  }
  obs::MetricsRegistry comparable;
  group.export_comparable_metrics(comparable);
  EXPECT_EQ(comparable.counter_count(), 5u);
  EXPECT_EQ(comparable.to_json().find("engine.shard"), std::string::npos);
  EXPECT_EQ(comparable.to_json().find("queue.high_water"), std::string::npos);
}

}  // namespace
}  // namespace uap2p
