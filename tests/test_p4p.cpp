#include "netinfo/p4p.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct P4pFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.0);
  underlay::Network net{engine, topo, 19};
  std::vector<PeerId> peers = net.populate(40);
  ITracker itracker{net};
};

TEST_F(P4pFixture, PidsAreStableAndPartitionByAs) {
  for (const PeerId a : peers) {
    for (const PeerId b : peers) {
      const bool same_as = net.host(a).as == net.host(b).as;
      EXPECT_EQ(itracker.pid_of(a) == itracker.pid_of(b), same_as);
    }
  }
}

TEST_F(P4pFixture, PidsAreOpaque) {
  // PID values must not simply equal AS indices (the ISP hides topology).
  std::size_t identical = 0;
  for (const auto& as : topo.ases()) {
    const PeerId sample = [&] {
      for (const PeerId peer : peers) {
        if (net.host(peer).as == as.id) return peer;
      }
      return PeerId::invalid();
    }();
    if (sample.is_valid() && itracker.pid_of(sample) == as.id.value())
      ++identical;
  }
  EXPECT_LT(identical, topo.as_count());
}

TEST_F(P4pFixture, IntraPidDistanceIsMinimal) {
  const Pid pid = itracker.pid_of(peers[0]);
  EXPECT_DOUBLE_EQ(itracker.p_distance(pid, pid), 0.0);
  for (const PeerId other : peers) {
    const Pid other_pid = itracker.pid_of(other);
    if (other_pid == pid) continue;
    EXPECT_GT(itracker.p_distance(pid, other_pid), 0.0);
  }
}

TEST_F(P4pFixture, TransitCostsDominatePeering) {
  // transit_stub(2,4,0): stub->its transit = 1 transit crossing; stubs of
  // the same provider = 2 transit crossings; the two transits peer (no
  // transit crossing between them). p-distance must order accordingly.
  const PeerId transit0 = peers[0];   // AS 0 (transit)
  const PeerId transit1 = peers[1];   // AS 1 (transit)
  const PeerId stub_a = peers[2];     // AS 2 (stub of transit 0)
  const PeerId stub_b = peers[6];     // AS 6 (stub of transit 1)
  const auto d = [&](PeerId x, PeerId y) {
    return itracker.p_distance(itracker.pid_of(x), itracker.pid_of(y));
  };
  EXPECT_LT(d(transit0, transit1), d(stub_a, transit0));
  EXPECT_LT(d(stub_a, transit0), d(stub_a, stub_b));
}

TEST_F(P4pFixture, RankPutsSamePidFirst) {
  P4pSelector selector(itracker);
  const auto ranked = selector.rank(peers[0], peers);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(itracker.pid_of(ranked.front()), itracker.pid_of(peers[0]));
  const Pid home = itracker.pid_of(peers[0]);
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_LE(itracker.p_distance(home, itracker.pid_of(ranked[i])),
              itracker.p_distance(home, itracker.pid_of(ranked[i + 1])));
  }
}

TEST_F(P4pFixture, SelectReturnsDistinctPeers) {
  P4pSelector selector(itracker);
  const auto chosen = selector.select(peers[3], peers, 10);
  EXPECT_EQ(chosen.size(), 10u);
  std::set<PeerId> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 10u);
  for (const PeerId peer : chosen) EXPECT_NE(peer, peers[3]);
}

TEST_F(P4pFixture, SelectPrefersCheapPidsStatistically) {
  P4pSelector selector(itracker);
  const Pid home = itracker.pid_of(peers[0]);
  double mean_distance = 0.0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    for (const PeerId peer : selector.select(peers[0], peers, 5)) {
      mean_distance += itracker.p_distance(home, itracker.pid_of(peer));
    }
  }
  mean_distance /= kTrials * 5;
  // Uniform selection baseline.
  double uniform = 0.0;
  int count = 0;
  for (const PeerId peer : peers) {
    if (peer == peers[0]) continue;
    uniform += itracker.p_distance(home, itracker.pid_of(peer));
    ++count;
  }
  uniform /= count;
  EXPECT_LT(mean_distance, uniform);
}

TEST_F(P4pFixture, SelectKeepsSomeFarPeers) {
  // Proportional weighting must not starve distant PIDs entirely.
  P4pSelector selector(itracker);
  const Pid home = itracker.pid_of(peers[0]);
  bool saw_far = false;
  for (int trial = 0; trial < 40 && !saw_far; ++trial) {
    for (const PeerId peer : selector.select(peers[0], peers, 5)) {
      if (itracker.p_distance(home, itracker.pid_of(peer)) > 4.0) {
        saw_far = true;
      }
    }
  }
  EXPECT_TRUE(saw_far);
}

TEST_F(P4pFixture, ViewFetchCountedOncePerSelector) {
  const auto before = itracker.view_fetches();
  P4pSelector first(itracker);
  P4pSelector second(itracker);
  (void)first.rank(peers[0], peers);
  (void)first.rank(peers[1], peers);  // no further fetches per query
  EXPECT_EQ(itracker.view_fetches(), before + 2);
}

}  // namespace
}  // namespace uap2p::netinfo
