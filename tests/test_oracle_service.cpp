// Unit tests for the oracle query tier: the log-linear latency histogram
// (obs/latency.hpp), the bounded MPMC ring (oracle/ring.hpp), the
// deterministic ranking functions, and the OracleService lifecycle —
// submit/complete accounting, admission and deadline shedding, snapshot
// publication, and metrics export. Concurrency-stress coverage lives in
// test_oracled_parallel.cpp under the TSan "parallel" label; these tests
// pin the single-threaded contracts the service builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "oracle/ring.hpp"
#include "oracle/service.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::oracled {
namespace {

using obs::LatencyHistogram;

// --- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_of(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper_ns(v), v);
  }
}

TEST(LatencyHistogram, BucketUpperBoundsContainValue) {
  // Every recorded value must land in a bucket whose reconstructed upper
  // bound is >= the value and within the ~3% relative-error contract.
  for (std::uint64_t v : {37ull, 100ull, 1000ull, 4097ull, 65535ull,
                          1000000ull, 123456789ull, 987654321012ull}) {
    const std::size_t bucket = LatencyHistogram::bucket_of(v);
    const std::uint64_t upper = LatencyHistogram::bucket_upper_ns(bucket);
    EXPECT_GE(upper, v) << v;
    EXPECT_LE(double(upper - v), double(v) * 0.04) << v;
    if (bucket + 1 < LatencyHistogram::kBuckets) {
      // Bound tightness: the next bucket starts above this value.
      EXPECT_GT(LatencyHistogram::bucket_upper_ns(bucket + 1), upper);
    }
  }
}

TEST(LatencyHistogram, HugeValuesClampIntoTopBucket) {
  LatencyHistogram h;
  h.record(~0ull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_ns(), ~0ull);
  EXPECT_EQ(h.p99_ns(), ~0ull);  // capped at observed max
}

TEST(LatencyHistogram, PercentilesOnUniformRamp) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);  // 1..1000 us
  EXPECT_EQ(h.count(), 1000u);
  // p50 must bound the 500th sample (500us) within bucket resolution.
  EXPECT_GE(h.p50_ns(), 500000u);
  EXPECT_LE(h.p50_ns(), 520000u);
  EXPECT_GE(h.p99_ns(), 990000u);
  EXPECT_LE(h.p99_ns(), 1000000u + 32000u);
  EXPECT_EQ(h.percentile_ns(100.0), 1000000u);
  EXPECT_EQ(h.min_ns(), 1000u);
  EXPECT_NEAR(h.mean_ns(), 500500.0, 1.0);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.record(v * 17);
    combined.record(v * 17);
  }
  for (std::uint64_t v = 1; v <= 300; ++v) {
    b.record(v * 9901);
    combined.record(v * 9901);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min_ns(), combined.min_ns());
  EXPECT_EQ(a.max_ns(), combined.max_ns());
  for (double q : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.percentile_ns(q), combined.percentile_ns(q)) << q;
  }
}

TEST(LatencyHistogram, EmptyIsAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50_ns(), 0u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

// --- MpmcRing ------------------------------------------------------------

TEST(MpmcRing, FifoWithinCapacity) {
  MpmcRing<int> ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "ring must shed at capacity";
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpmcRing, WrapsAroundManyTimes) {
  MpmcRing<std::uint64_t> ring(4);
  for (std::uint64_t round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    std::uint64_t out = 0;
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

// --- Ranking -------------------------------------------------------------

std::shared_ptr<const underlay::SharedRouting> test_routing() {
  static const auto routing = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(3, 5, 0.3), /*threads=*/1);
  return routing;
}

struct RequestArena {
  std::vector<Candidate> candidates;
  std::vector<std::uint32_t> ranked;
  RankRequest request;

  RequestArena(std::uint32_t client, std::vector<Candidate> cands)
      : candidates(std::move(cands)), ranked(candidates.size(), 0) {
    request.client_router = client;
    request.candidate_count = std::uint32_t(candidates.size());
    request.candidates = candidates.data();
    request.ranked = ranked.data();
  }
};

TEST(RankRequestTest, OrdersByAsCrossingsThenLatencyThenPeer) {
  const auto routing = test_routing();
  const auto routers = std::uint32_t(routing->topology().router_count());
  std::vector<Candidate> cands;
  for (std::uint32_t i = 0; i < routers; ++i) cands.push_back({i, i});
  RequestArena arena(0, cands);
  rank_request(*routing, arena.request);

  const auto& table = routing->table();
  auto key = [&](std::uint32_t peer) {
    const auto info = table.path(RouterId(0), RouterId(peer));
    return std::tuple(info.reachable ? std::uint64_t(info.as_crossings)
                                     : ~0ull,
                      info.reachable ? info.latency_ms : 0.0, peer);
  };
  for (std::size_t i = 1; i < arena.ranked.size(); ++i) {
    EXPECT_LE(key(arena.ranked[i - 1]), key(arena.ranked[i])) << i;
  }
  // First-ranked candidate shares the client's AS (self-route, 0 hops).
  EXPECT_EQ(arena.ranked[0], 0u);
}

TEST(RankRequestTest, OutOfRangeRoutersRankLast) {
  const auto routing = test_routing();
  RequestArena arena(
      0, {{10, 0xfffffff0u}, {11, 0}, {12, 0xfffffff1u}, {13, 1}});
  rank_request(*routing, arena.request);
  // The two resolvable candidates come first, the unknowns after, by id.
  EXPECT_TRUE((arena.ranked[0] == 11 && arena.ranked[1] == 13) ||
              (arena.ranked[0] == 13 && arena.ranked[1] == 11));
  EXPECT_EQ(arena.ranked[2], 10u);
  EXPECT_EQ(arena.ranked[3], 12u);
}

TEST(RankRequestTest, UnknownClientDegradesToPeerIdOrder) {
  const auto routing = test_routing();
  RequestArena arena(0xffffff00u, {{5, 0}, {1, 1}, {9, 2}});
  rank_request(*routing, arena.request);
  EXPECT_EQ(arena.ranked[0], 1u);
  EXPECT_EQ(arena.ranked[1], 5u);
  EXPECT_EQ(arena.ranked[2], 9u);
}

TEST(RankBatchTest, MatchesPerRequestRanking) {
  const auto routing = test_routing();
  const auto routers = std::uint32_t(routing->topology().router_count());
  std::vector<std::unique_ptr<RequestArena>> arenas;
  std::vector<RankRequest*> batch;
  std::uint64_t rng = 99;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return std::uint32_t(rng >> 33);
  };
  for (int i = 0; i < 64; ++i) {
    std::vector<Candidate> cands;
    for (int c = 0; c < 6; ++c) {
      cands.push_back({next() % 1000, next() % routers});
    }
    arenas.push_back(std::make_unique<RequestArena>(next() % routers, cands));
    batch.push_back(&arenas.back()->request);
  }
  rank_batch(*routing, batch);
  for (auto& arena : arenas) {
    const std::vector<std::uint32_t> batched = arena->ranked;
    std::fill(arena->ranked.begin(), arena->ranked.end(), 0);
    rank_request(*routing, arena->request);
    EXPECT_EQ(batched, arena->ranked);
  }
}

// --- OracleService -------------------------------------------------------

TEST(OracleServiceTest, CompletesSubmittedRequests) {
  const auto routing = test_routing();
  ServiceConfig config;
  config.workers = 2;
  config.ring_capacity = 64;
  OracleService service(routing, config);
  std::vector<std::unique_ptr<RequestArena>> arenas;
  for (std::uint32_t i = 0; i < 100; ++i) {
    arenas.push_back(std::make_unique<RequestArena>(
        i % 10, std::vector<Candidate>{{i, i % 20}, {i + 1, (i + 5) % 20}}));
  }
  for (auto& arena : arenas) {
    while (!service.submit(&arena->request)) {
    }
  }
  for (auto& arena : arenas) {
    EXPECT_EQ(wait_terminal(arena->request), RequestState::kDone);
    EXPECT_GE(arena->request.done_ns, arena->request.enqueue_ns);
  }
  service.stop();
  EXPECT_EQ(service.completed(), 100u);
  EXPECT_EQ(service.shed_deadline(), 0u);
  EXPECT_EQ(service.admitted(),
            service.completed() + service.shed_deadline());
}

TEST(OracleServiceTest, ResultsMatchDirectRanking) {
  const auto routing = test_routing();
  OracleService service(routing, {});
  RequestArena served(3, {{7, 4}, {8, 11}, {9, 0}, {10, 19}});
  RequestArena direct(3, {{7, 4}, {8, 11}, {9, 0}, {10, 19}});
  ASSERT_TRUE(service.submit(&served.request));
  EXPECT_EQ(wait_terminal(served.request), RequestState::kDone);
  rank_request(*routing, direct.request);
  EXPECT_EQ(served.ranked, direct.ranked);
}

TEST(OracleServiceTest, SubmitAfterStopIsShedAtAdmission) {
  const auto routing = test_routing();
  OracleService service(routing, {});
  service.stop();
  RequestArena arena(0, {{1, 1}});
  EXPECT_FALSE(service.submit(&arena.request));
  EXPECT_EQ(arena.request.state.load(), RequestState::kFree);
  EXPECT_EQ(service.shed_admission(), 1u);
  EXPECT_EQ(service.submitted(), 1u);
  EXPECT_EQ(service.admitted(), 0u);
}

TEST(OracleServiceTest, ExpiredDeadlineShedsInsteadOfRanking) {
  const auto routing = test_routing();
  ServiceConfig config;
  config.workers = 1;
  config.deadline_ns = 1;  // everything a worker picks up is already late
  OracleService service(routing, config);
  RequestArena arena(0, {{1, 1}, {2, 2}});
  ASSERT_TRUE(service.submit(&arena.request));
  EXPECT_EQ(wait_terminal(arena.request), RequestState::kShed);
  service.stop();
  EXPECT_EQ(service.shed_deadline(), 1u);
  EXPECT_EQ(service.completed(), 0u);
}

TEST(OracleServiceTest, PublishSwapsSnapshotForSubsequentRequests) {
  const auto routing = test_routing();
  OracleService service(routing, {});
  EXPECT_EQ(service.snapshot().get(), routing.get());
  auto replacement = underlay::SharedRouting::build(
      underlay::AsTopology::transit_stub(3, 5, 0.3), /*threads=*/1);
  service.publish(replacement);
  EXPECT_EQ(service.snapshot().get(), replacement.get());
  // A request served after the swap still ranks identically: the
  // replacement was built from the same topology.
  RequestArena served(1, {{5, 2}, {6, 7}});
  RequestArena direct(1, {{5, 2}, {6, 7}});
  ASSERT_TRUE(service.submit(&served.request));
  EXPECT_EQ(wait_terminal(served.request), RequestState::kDone);
  rank_request(*routing, direct.request);
  EXPECT_EQ(served.ranked, direct.ranked);
}

TEST(OracleServiceTest, RejectsBadConfig) {
  const auto routing = test_routing();
  ServiceConfig config;
  config.ring_capacity = 100;  // not a power of two
  EXPECT_THROW(OracleService(routing, config), std::invalid_argument);
  EXPECT_THROW(OracleService(nullptr, ServiceConfig{}), std::invalid_argument);
}

TEST(OracleServiceTest, ExportsMetrics) {
  const auto routing = test_routing();
  OracleService service(routing, {});
  RequestArena arena(0, {{1, 1}});
  ASSERT_TRUE(service.submit(&arena.request));
  wait_terminal(arena.request);
  service.stop();
  obs::MetricsRegistry registry;
  service.export_metrics(registry);
  EXPECT_EQ(registry.counter("oracled.submitted").value(), 1u);
  EXPECT_EQ(registry.counter("oracled.completed").value(), 1u);
  EXPECT_EQ(registry.counter("oracled.shed_admission").value(), 0u);
  EXPECT_EQ(registry.counter("oracled.shed_deadline").value(), 0u);
}

TEST(SharedRoutingSlotTest, GenerationTracksPublishes) {
  const auto routing = test_routing();
  underlay::SharedRoutingSlot slot(routing);
  EXPECT_EQ(slot.generation(), 1u);
  EXPECT_EQ(slot.get().get(), routing.get());
  slot.publish(routing);
  EXPECT_EQ(slot.generation(), 2u);
  underlay::SharedRoutingSlot empty;
  EXPECT_EQ(empty.generation(), 0u);
  EXPECT_EQ(empty.get(), nullptr);
}

}  // namespace
}  // namespace uap2p::oracled
