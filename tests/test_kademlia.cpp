#include "overlay/kademlia.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.hpp"

namespace uap2p::overlay::kademlia {
namespace {

TEST(XorMetric, Properties) {
  EXPECT_EQ(xor_distance(5, 5), 0u);
  EXPECT_EQ(xor_distance(0b1010, 0b0110), 0b1100u);
  // Symmetry and the XOR triangle equality d(a,c) <= d(a,b) ^ ... holds as
  // d(a,c) = d(a,b) ^ d(b,c); verify unidirectional triangle inequality.
  const NodeId a = 0x123456789abcdef0, b = 0xfedcba9876543210, c = 0x5a5a5a5a;
  EXPECT_EQ(xor_distance(a, b), xor_distance(b, a));
  EXPECT_LE(xor_distance(a, c), xor_distance(a, b) + xor_distance(b, c));
}

TEST(XorMetric, BucketIndex) {
  const NodeId self = 0;
  EXPECT_EQ(bucket_index(self, 1), 0);
  EXPECT_EQ(bucket_index(self, 2), 1);
  EXPECT_EQ(bucket_index(self, 3), 1);
  EXPECT_EQ(bucket_index(self, 0x8000000000000000ull), 63);
  EXPECT_EQ(bucket_index(0xff, 0xfe), 0);  // differ only in lowest bit
}

struct KademliaFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 3, 0.3);
  underlay::Network net{engine, topo, 31};
  std::vector<PeerId> peers = net.populate(40);
  netinfo::Oracle oracle{net};

  std::unique_ptr<KademliaSystem> make(BucketPolicy policy) {
    Config config;
    config.policy = policy;
    auto system = std::make_unique<KademliaSystem>(
        net, peers, config, policy == BucketPolicy::kProximity ? &oracle
                                                               : nullptr);
    system->join_all();
    return system;
  }
};

TEST_F(KademliaFixture, NodeIdsUnique) {
  auto system = make(BucketPolicy::kVanilla);
  std::set<NodeId> ids;
  for (const PeerId peer : peers) ids.insert(system->node_id(peer));
  EXPECT_EQ(ids.size(), peers.size());
}

TEST_F(KademliaFixture, JoinPopulatesRoutingTables) {
  auto system = make(BucketPolicy::kVanilla);
  for (const PeerId peer : peers) {
    EXPECT_GE(system->routing_table(peer).size(), 3u)
        << "peer " << peer.value();
  }
}

TEST_F(KademliaFixture, LookupFindsGloballyClosestNodes) {
  auto system = make(BucketPolicy::kVanilla);
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId target = rng();
    const LookupResult result = system->lookup(peers[trial], target);
    EXPECT_TRUE(result.converged);
    ASSERT_FALSE(result.closest.empty());
    // Brute-force the true closest node.
    NodeId best = 0;
    std::uint64_t best_distance = UINT64_MAX;
    for (const PeerId peer : peers) {
      const std::uint64_t distance =
          xor_distance(system->node_id(peer), target);
      if (distance < best_distance && peer != peers[trial]) {
        best_distance = distance;
        best = system->node_id(peer);
      }
    }
    EXPECT_EQ(result.closest.front().id, best)
        << "lookup must terminate at the globally closest node";
  }
}

TEST_F(KademliaFixture, LookupResultsSortedByDistance) {
  auto system = make(BucketPolicy::kVanilla);
  const LookupResult result = system->lookup(peers[0], 0xdeadbeefcafef00dull);
  for (std::size_t i = 0; i + 1 < result.closest.size(); ++i) {
    EXPECT_LE(xor_distance(result.closest[i].id, 0xdeadbeefcafef00dull),
              xor_distance(result.closest[i + 1].id, 0xdeadbeefcafef00dull));
  }
}

TEST_F(KademliaFixture, StoreThenFindValue) {
  auto system = make(BucketPolicy::kVanilla);
  const Key key = 0x1122334455667788ull;
  system->store(peers[3], key, "hello-dht");
  const LookupResult result = system->find_value(peers[17], key);
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, "hello-dht");
}

TEST_F(KademliaFixture, FindMissingValueReturnsNothing) {
  auto system = make(BucketPolicy::kVanilla);
  const LookupResult result = system->find_value(peers[0], 0x999999ull);
  EXPECT_FALSE(result.value.has_value());
}

TEST_F(KademliaFixture, StoreReplicatesToMultipleNodes) {
  auto system = make(BucketPolicy::kVanilla);
  const Key key = 0xabcdefull;
  system->store(peers[0], key, "replicated");
  // Every peer must be able to retrieve it, whichever replica answers.
  for (std::size_t i = 5; i < peers.size(); i += 7) {
    const LookupResult result = system->find_value(peers[i], key);
    EXPECT_TRUE(result.value.has_value()) << "from peer " << i;
  }
}

TEST_F(KademliaFixture, LookupSurvivesOfflineNodes) {
  auto system = make(BucketPolicy::kVanilla);
  // Take a third of the network offline.
  for (std::size_t i = 0; i < peers.size(); i += 3) {
    if (i != 1) net.set_online(peers[i], false);
  }
  const LookupResult result = system->lookup(peers[1], 0x7777777777ull);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.closest.empty());
  // All returned contacts must be online responders.
  for (const Contact& contact : result.closest) {
    EXPECT_TRUE(net.is_online(contact.peer));
  }
}

TEST_F(KademliaFixture, ProximityPolicyRaisesIntraAsContacts) {
  auto vanilla = make(BucketPolicy::kVanilla);
  auto proximity = make(BucketPolicy::kProximity);
  // Exercise both with identical lookup workloads to churn the tables.
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const NodeId target = rng();
    vanilla->lookup(peers[i % peers.size()], target);
    proximity->lookup(peers[i % peers.size()], target);
  }
  EXPECT_GT(proximity->intra_as_contact_fraction(),
            vanilla->intra_as_contact_fraction());
}

TEST_F(KademliaFixture, ProximityLookupsStillCorrect) {
  // Kaune [17]: proximity must not break routing correctness.
  auto system = make(BucketPolicy::kProximity);
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const NodeId target = rng();
    const LookupResult result = system->lookup(peers[trial * 3], target);
    EXPECT_TRUE(result.converged);
    NodeId best = 0;
    std::uint64_t best_distance = UINT64_MAX;
    for (const PeerId peer : peers) {
      const std::uint64_t distance =
          xor_distance(system->node_id(peer), target);
      if (distance < best_distance && peer != peers[trial * 3]) {
        best_distance = distance;
        best = system->node_id(peer);
      }
    }
    ASSERT_FALSE(result.closest.empty());
    EXPECT_EQ(result.closest.front().id, best);
  }
}

TEST_F(KademliaFixture, LookupCountsMessagesAndHops) {
  auto system = make(BucketPolicy::kVanilla);
  const LookupResult result = system->lookup(peers[2], 0x4242424242ull);
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_GT(result.hops, 0u);
  EXPECT_GT(result.duration_ms, 0.0);
  EXPECT_GT(system->total_rpcs(), 0u);
}

}  // namespace
}  // namespace uap2p::overlay::kademlia
