#include "underlay/cost.hpp"

#include <gtest/gtest.h>

#include "underlay/network.hpp"

namespace uap2p::underlay {
namespace {

TEST(CostCurves, TransitCostProportionalToTraffic) {
  // Figure 2: "transit traffic costs per Mbps are almost fixed resulting
  // in a proportional increase of costs with more traffic."
  const double c100 = cost_curves::transit_monthly_usd(100.0);
  const double c200 = cost_curves::transit_monthly_usd(200.0);
  EXPECT_DOUBLE_EQ(c200, 2.0 * c100);
  EXPECT_DOUBLE_EQ(cost_curves::transit_usd_per_mbps(100.0),
                   cost_curves::transit_usd_per_mbps(10000.0));
}

TEST(CostCurves, PeeringCostIndependentOfTraffic) {
  // Figure 2: peering cost is "just that of maintaining the direct link".
  const double low = cost_curves::peering_monthly_usd(2);
  EXPECT_DOUBLE_EQ(low, cost_curves::peering_monthly_usd(2));
  // Cost per Mbps inversely proportional to traffic.
  const double per_mbps_10 = cost_curves::peering_usd_per_mbps(10.0, 2);
  const double per_mbps_1000 = cost_curves::peering_usd_per_mbps(1000.0, 2);
  EXPECT_NEAR(per_mbps_10 / per_mbps_1000, 100.0, 1e-9);
}

TEST(CostCurves, CrossoverExistsAndIsConsistent) {
  const Pricing pricing;
  const double crossover = cost_curves::crossover_mbps(1, pricing);
  EXPECT_GT(crossover, 0.0);
  // At the crossover the two monthly bills match.
  EXPECT_NEAR(cost_curves::transit_monthly_usd(crossover, pricing),
              cost_curves::peering_monthly_usd(1, pricing), 1e-6);
  // Below crossover transit is cheaper; above, peering wins.
  EXPECT_LT(cost_curves::transit_monthly_usd(crossover * 0.5, pricing),
            cost_curves::peering_monthly_usd(1, pricing));
  EXPECT_GT(cost_curves::transit_monthly_usd(crossover * 2.0, pricing),
            cost_curves::peering_monthly_usd(1, pricing));
}

TEST(CostCurves, ZeroAndNegativeTrafficSafe) {
  EXPECT_DOUBLE_EQ(cost_curves::transit_monthly_usd(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cost_curves::transit_monthly_usd(-5.0), 0.0);
  EXPECT_GT(cost_curves::transit_usd_per_mbps(0.0), 0.0);
}

PathInfo intra_path() {
  PathInfo path;
  path.reachable = true;  // as_crossings == 0 -> intra_as()
  return path;
}

PathInfo transit_path(std::uint32_t crossings) {
  PathInfo path;
  path.reachable = true;
  path.as_crossings = 1;
  path.transit_crossings = crossings;
  return path;
}

TEST(TrafficAccountant, SplitsIntraAndInter) {
  TrafficAccountant accountant;
  accountant.record(intra_path(), 1000, 0.0);
  accountant.record(transit_path(1), 3000, 0.0);
  EXPECT_EQ(accountant.total_bytes(), 4000u);
  EXPECT_EQ(accountant.intra_as_bytes(), 1000u);
  EXPECT_EQ(accountant.inter_as_bytes(), 3000u);
  EXPECT_DOUBLE_EQ(accountant.intra_as_fraction(), 0.25);
  EXPECT_EQ(accountant.message_count(), 2u);
}

TEST(TrafficAccountant, TransitBytesScaleWithCrossings) {
  TrafficAccountant accountant;
  accountant.record(transit_path(3), 100, 0.0);
  EXPECT_EQ(accountant.transit_link_bytes(), 300u);
}

TEST(TrafficAccountant, UnreachableIgnored) {
  TrafficAccountant accountant;
  PathInfo unreachable;
  accountant.record(unreachable, 5000, 0.0);
  EXPECT_EQ(accountant.total_bytes(), 0u);
  EXPECT_EQ(accountant.message_count(), 0u);
}

TEST(TrafficAccountant, BilledRateUsesPercentile) {
  Pricing pricing;
  pricing.sample_window_ms = 1000.0;  // 1-second windows for the test
  TrafficAccountant accountant(pricing);
  // 100 windows of 1 MB transit each, except 3 windows bursting 100x.
  for (int window = 0; window < 100; ++window) {
    const std::uint64_t bytes = (window < 3) ? 100'000'000 : 1'000'000;
    accountant.record(transit_path(1), bytes, window * 1000.0);
  }
  // 95th percentile must ignore the 3 burst windows: 1 MB / 1 s = 8 Mbps.
  EXPECT_NEAR(accountant.billed_transit_mbps(), 8.0, 0.01);
  EXPECT_NEAR(accountant.estimated_transit_usd_month(),
              8.0 * pricing.transit_usd_per_mbps_month, 0.2);
}

TEST(TrafficAccountant, ResetClearsEverything) {
  TrafficAccountant accountant;
  accountant.record(transit_path(1), 100, 0.0);
  accountant.reset();
  EXPECT_EQ(accountant.total_bytes(), 0u);
  EXPECT_EQ(accountant.transit_link_bytes(), 0u);
  EXPECT_DOUBLE_EQ(accountant.billed_transit_mbps(), 0.0);
}

TEST(TrafficAccountant, LocalityShiftReducesBill) {
  // The paper's central economic claim: moving traffic from transit to
  // intra-AS/peering lowers the transit bill at equal total volume.
  Pricing pricing;
  pricing.sample_window_ms = 1000.0;
  TrafficAccountant remote(pricing), local(pricing);
  for (int window = 0; window < 50; ++window) {
    remote.record(transit_path(1), 1'000'000, window * 1000.0);
    // Same volume but 80% stays local.
    local.record(intra_path(), 800'000, window * 1000.0);
    local.record(transit_path(1), 200'000, window * 1000.0);
  }
  EXPECT_EQ(remote.total_bytes(), local.total_bytes());
  EXPECT_LT(local.estimated_transit_usd_month(),
            0.3 * remote.estimated_transit_usd_month());
}

}  // namespace
}  // namespace uap2p::underlay
