// Randomized stress: the event engine against a sorted reference, with a
// cancel storm and re-entrant scheduling mixed in.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace uap2p::sim {
namespace {

class EngineStressP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStressP, ExecutionOrderMatchesSortedReference) {
  Rng rng(GetParam());
  Engine engine;
  struct Planned {
    double when;
    int id;
  };
  std::vector<Planned> planned;
  std::vector<int> executed;
  for (int i = 0; i < 500; ++i) {
    const double when = rng.uniform_real(0.0, 1000.0);
    planned.push_back({when, i});
    engine.schedule(when, [&executed, i] { executed.push_back(i); });
  }
  engine.run();
  std::stable_sort(planned.begin(), planned.end(),
                   [](const Planned& a, const Planned& b) {
                     return a.when < b.when;  // ties keep insertion order
                   });
  ASSERT_EQ(executed.size(), planned.size());
  for (std::size_t i = 0; i < planned.size(); ++i) {
    EXPECT_EQ(executed[i], planned[i].id) << "at position " << i;
  }
}

TEST_P(EngineStressP, CancelStormNeverExecutesCancelled) {
  Rng rng(GetParam() ^ 0xdead);
  Engine engine;
  std::vector<EventHandle> handles;
  std::vector<bool> cancelled(400, false);
  std::vector<bool> ran(400, false);
  for (int i = 0; i < 400; ++i) {
    handles.push_back(engine.schedule(rng.uniform_real(0.0, 100.0),
                                      [&ran, i] { ran[i] = true; }));
  }
  for (int i = 0; i < 400; ++i) {
    if (rng.bernoulli(0.5)) {
      handles[i].cancel();
      cancelled[i] = true;
    }
  }
  engine.run();
  for (int i = 0; i < 400; ++i) {
    EXPECT_EQ(ran[i], !cancelled[i]) << "event " << i;
  }
}

TEST_P(EngineStressP, ReentrantSchedulingKeepsClockMonotone) {
  Rng rng(GetParam() ^ 0xbeef);
  Engine engine;
  double last_time = -1.0;
  int spawned = 0;
  std::function<void()> spawner = [&] {
    EXPECT_GE(engine.now(), last_time);
    last_time = engine.now();
    if (spawned < 300) {
      ++spawned;
      engine.schedule(rng.uniform_real(0.0, 10.0), spawner);
      if (rng.bernoulli(0.3)) {
        ++spawned;
        engine.schedule(rng.uniform_real(0.0, 10.0), spawner);
      }
    }
  };
  engine.schedule(0.0, spawner);
  engine.run();
  EXPECT_GE(spawned, 300);
  EXPECT_GE(engine.executed(), 300u);
}

TEST_P(EngineStressP, RunUntilChunksEqualFullRun) {
  // Running in arbitrary run_until increments must execute the same set
  // in the same order as a single run().
  Rng rng(GetParam() ^ 0x5eed);
  std::vector<int> chunked, full;
  for (int mode = 0; mode < 2; ++mode) {
    Rng local(42);
    Engine engine;
    auto& out = mode == 0 ? full : chunked;
    for (int i = 0; i < 200; ++i) {
      engine.schedule(local.uniform_real(0.0, 500.0),
                      [&out, i] { out.push_back(i); });
    }
    if (mode == 0) {
      engine.run();
    } else {
      double t = 0.0;
      while (t < 600.0) {
        t += rng.uniform_real(1.0, 50.0);
        engine.run_until(t);
      }
      engine.run();
    }
  }
  EXPECT_EQ(chunked, full);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStressP,
                         ::testing::Values(3ull, 99ull, 2024ull));

}  // namespace
}  // namespace uap2p::sim
