#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace uap2p::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(30.0, [&] { order.push_back(3); });
  engine.schedule(10.0, [&] { order.push_back(1); });
  engine.schedule(20.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 30.0);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesOnlyThroughEvents) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  double seen = -1.0;
  engine.schedule(42.0, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Engine, EventsScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) engine.schedule(1.0, chain);
  };
  engine.schedule(1.0, chain);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  EventHandle handle = engine.schedule(5.0, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine engine;
  int count = 0;
  EventHandle handle = engine.schedule(1.0, [&] { ++count; });
  engine.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or double-count
  EXPECT_EQ(count, 1);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule(10.0, [&] { fired.push_back(10.0); });
  engine.schedule(20.0, [&] { fired.push_back(20.0); });
  engine.schedule(30.0, [&] { fired.push_back(30.0); });
  const auto ran = engine.run_until(20.0);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(fired, (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 20.0);
  engine.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(100.0);
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(Engine, RunWithLimitStopsEarly) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10; ++i) engine.schedule(double(i), [&] { ++count; });
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(engine.run(), 7u);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  engine.schedule(10.0, [&] {
    bool inner_ran = false;
    engine.schedule(-5.0, [&] { inner_ran = true; });
    // Inner event runs after this callback, still at t = 10.
    EXPECT_FALSE(inner_ran);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, ExecutedCountsOnlyFiredEvents) {
  Engine engine;
  engine.schedule(1.0, [] {});
  EventHandle cancelled = engine.schedule(2.0, [] {});
  cancelled.cancel();
  engine.run();
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(Engine, CancelledTombstoneDoesNotBlockRunUntil) {
  Engine engine;
  EventHandle early = engine.schedule(1.0, [] {});
  early.cancel();
  bool ran = false;
  engine.schedule(5.0, [&] { ran = true; });
  engine.run_until(10.0);
  EXPECT_TRUE(ran);
}

// --- Generation-counter cancellation across slab recycling ---------------

TEST(Engine, StaleHandleCannotCancelRecycledSlot) {
  // After A fires its slot returns to the free list; B reuses it under a
  // new generation. A's handle must have no power over B.
  Engine engine;
  bool a_ran = false, b_ran = false;
  EventHandle a = engine.schedule(1.0, [&] { a_ran = true; });
  engine.run();
  ASSERT_TRUE(a_ran);
  EventHandle b = engine.schedule(1.0, [&] { b_ran = true; });
  a.cancel();  // stale: generation mismatch, must be a no-op
  EXPECT_TRUE(b.pending());
  engine.run();
  EXPECT_TRUE(b_ran);
}

TEST(Engine, CancelThenReuseDoesNotKillNewEvent) {
  // Cancelling frees the slot immediately; the next schedule may reuse it.
  // A second cancel through the stale handle must not touch the new event.
  Engine engine;
  bool b_ran = false;
  EventHandle a = engine.schedule(5.0, [] {});
  a.cancel();
  EventHandle b = engine.schedule(5.0, [&] { b_ran = true; });
  a.cancel();  // stale again
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  engine.run();
  EXPECT_TRUE(b_ran);
  EXPECT_FALSE(b.pending());
}

TEST(Engine, PendingIsCorrectAcrossSlabRecycling) {
  Engine engine;
  std::vector<EventHandle> first, second;
  for (int i = 0; i < 32; ++i) {
    first.push_back(engine.schedule(double(i), [] {}));
  }
  engine.run();
  const std::size_t slab = engine.slab_size();
  for (int i = 0; i < 32; ++i) {
    second.push_back(engine.schedule(double(i), [] {}));
  }
  EXPECT_EQ(engine.slab_size(), slab);  // slots were recycled, not grown
  for (const auto& handle : first) EXPECT_FALSE(handle.pending());
  for (const auto& handle : second) EXPECT_TRUE(handle.pending());
  engine.run();
  for (const auto& handle : second) EXPECT_FALSE(handle.pending());
}

TEST(Engine, RunUntilExecutesRescheduledBoundaryEvent) {
  // A cancelled event's recycled slot re-scheduled exactly at the
  // run_until boundary must fire in that run.
  Engine engine;
  EventHandle a = engine.schedule(20.0, [] {});
  a.cancel();
  bool ran = false;
  engine.schedule(20.0, [&] { ran = true; });
  const auto executed = engine.run_until(20.0);
  EXPECT_EQ(executed, 1u);
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(engine.now(), 20.0);
}

TEST(Engine, ReentrantScheduleFromCallbackUsesBoundedSlab) {
  // Callbacks run in place, so the firing slot is protected while its own
  // callback executes: a re-entrant schedule() lands on a different slot,
  // and the freed one is recycled at the next link. A self-perpetuating
  // chain therefore ping-pongs between two slots and never grows the slab.
  Engine engine;
  int fired = 0;
  std::function<void()> repeat = [&] {
    if (++fired < 5) engine.schedule(1.0, repeat);
  };
  engine.schedule(1.0, repeat);
  engine.run();
  EXPECT_EQ(fired, 5);
  EXPECT_LE(engine.slab_size(), 2u);
}

TEST(Engine, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

}  // namespace
}  // namespace uap2p::sim
