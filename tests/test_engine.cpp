#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace uap2p::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(30.0, [&] { order.push_back(3); });
  engine.schedule(10.0, [&] { order.push_back(1); });
  engine.schedule(20.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 30.0);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesOnlyThroughEvents) {
  Engine engine;
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
  double seen = -1.0;
  engine.schedule(42.0, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Engine, EventsScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) engine.schedule(1.0, chain);
  };
  engine.schedule(1.0, chain);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  EventHandle handle = engine.schedule(5.0, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelAfterFireIsNoop) {
  Engine engine;
  int count = 0;
  EventHandle handle = engine.schedule(1.0, [&] { ++count; });
  engine.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash or double-count
  EXPECT_EQ(count, 1);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule(10.0, [&] { fired.push_back(10.0); });
  engine.schedule(20.0, [&] { fired.push_back(20.0); });
  engine.schedule(30.0, [&] { fired.push_back(30.0); });
  const auto ran = engine.run_until(20.0);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(fired, (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 20.0);
  engine.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(100.0);
  EXPECT_DOUBLE_EQ(engine.now(), 100.0);
}

TEST(Engine, RunWithLimitStopsEarly) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10; ++i) engine.schedule(double(i), [&] { ++count; });
  EXPECT_EQ(engine.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(engine.run(), 7u);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  engine.schedule(10.0, [&] {
    bool inner_ran = false;
    engine.schedule(-5.0, [&] { inner_ran = true; });
    // Inner event runs after this callback, still at t = 10.
    EXPECT_FALSE(inner_ran);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, ExecutedCountsOnlyFiredEvents) {
  Engine engine;
  engine.schedule(1.0, [] {});
  EventHandle cancelled = engine.schedule(2.0, [] {});
  cancelled.cancel();
  engine.run();
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(Engine, CancelledTombstoneDoesNotBlockRunUntil) {
  Engine engine;
  EventHandle early = engine.schedule(1.0, [] {});
  early.cancel();
  bool ran = false;
  engine.schedule(5.0, [&] { ran = true; });
  engine.run_until(10.0);
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace uap2p::sim
