#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace uap2p {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBound1AlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(17);
  double acc = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform01();
  EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / kN, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(31);
  double acc = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) acc += rng.exponential(3.0);
  EXPECT_NEAR(acc / kN, 3.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.pareto(1.8, 2.0), 2.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[X] = alpha * xmin / (alpha - 1) for alpha > 1.
  Rng rng(41);
  const double alpha = 2.5, xmin = 1.0;
  double acc = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) acc += rng.pareto(alpha, xmin);
  EXPECT_NEAR(acc / kN, alpha * xmin / (alpha - 1.0), 0.05);
}

TEST(Rng, ZipfInRangeAndSkewed) {
  Rng rng(43);
  constexpr std::size_t kN = 50;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t v = rng.zipf(kN, 1.0);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Rank 0 must dominate rank kN-1 heavily under s = 1.
  EXPECT_GT(counts[0], counts[kN - 1] * 5);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(100, 30);
    ASSERT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (const auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullPermutation) {
  Rng rng(53);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(59);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// Property sweep: Lemire uniform stays unbiased across bucket counts.
class RngUniformP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformP, RoughlyUniformHistogram) {
  const std::uint64_t buckets = GetParam();
  Rng rng(61 + buckets);
  std::vector<int> counts(buckets, 0);
  const int per_bucket = 2000;
  const int total = static_cast<int>(buckets) * per_bucket;
  for (int i = 0; i < total; ++i) ++counts[rng.uniform(buckets)];
  for (const int c : counts) {
    EXPECT_GT(c, per_bucket * 0.8);
    EXPECT_LT(c, per_bucket * 1.2);
  }
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngUniformP,
                         ::testing::Values(2, 3, 5, 10, 17, 64));

}  // namespace
}  // namespace uap2p
