// Edge-case tests for the trace-consuming tool layer: the shared
// streaming JSONL reader (obs/jsonl.hpp), the structural diff
// (obs/diff.hpp), and the folded event profile (obs/prof.hpp). The
// interesting inputs are the imperfect ones: truncated final lines,
// files of unequal length, same-timestamp permutations (legal under the
// determinism contract — must NOT diverge), empty traces, and ring-sink
// dumps whose head wrapped away.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/diff.hpp"
#include "obs/jsonl.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"

namespace uap2p::obs {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + "/uap2p_trace_tools." + name;
}

/// Writes `content` verbatim (no newline appended).
void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
}

/// Writes records through the real sink, so tests exercise the actual
/// wire format end-to-end.
std::string write_trace(const char* name,
                        const std::vector<TraceRecord>& records) {
  const std::string path = temp_path(name);
  JsonlTraceSink sink(path);
  for (const TraceRecord& rec : records) sink.record(rec);
  return path;
}

std::string jsonl_line(const TraceRecord& rec) {
  std::FILE* file = std::tmpfile();
  {
    JsonlTraceSink sink(file);
    sink.record(rec);
  }
  std::fseek(file, 0, SEEK_SET);
  char buf[256] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, file);
  std::fclose(file);
  return std::string(buf, n);
}

TEST(TraceReader, RoundTripsSinkOutput) {
  const std::string path = write_trace(
      "roundtrip",
      {{1.5, TraceKind::kEventScheduled, 3, -1, 42, 7.25},
       {7.25, TraceKind::kEventFired, 3, -1, 42, 0.0},
       {8.0, TraceKind::kMsgSent, 4, 9, 102, 64.0}});
  TraceReader reader(path);
  ASSERT_TRUE(reader.ok());
  TraceRecord rec;
  ASSERT_EQ(reader.next(rec), TraceReader::Status::kRecord);
  EXPECT_DOUBLE_EQ(rec.t, 1.5);
  EXPECT_EQ(rec.kind, TraceKind::kEventScheduled);
  EXPECT_EQ(rec.a, 3);
  EXPECT_EQ(rec.tag, 42u);
  EXPECT_DOUBLE_EQ(rec.value, 7.25);
  ASSERT_EQ(reader.next(rec), TraceReader::Status::kRecord);
  EXPECT_EQ(rec.kind, TraceKind::kEventFired);
  ASSERT_EQ(reader.next(rec), TraceReader::Status::kRecord);
  EXPECT_EQ(rec.kind, TraceKind::kMsgSent);
  EXPECT_EQ(rec.b, 9);
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kEof);
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kEof) << "sticky EOF";
}

TEST(TraceReader, TruncatedFinalLine) {
  const std::string full =
      jsonl_line({1.0, TraceKind::kEventFired, 0, -1, 1, 0.0});
  const std::string path = temp_path("truncated");
  write_file(path, full + "{\"t\": 2.0, \"ki");  // writer died mid-record
  TraceReader reader(path);
  TraceRecord rec;
  ASSERT_EQ(reader.next(rec), TraceReader::Status::kRecord);
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kTruncated);
  EXPECT_EQ(reader.line_number(), 2u);
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kTruncated) << "sticky";
}

TEST(TraceReader, CompleteFinalLineWithoutNewlineIsARecord) {
  const std::string full =
      jsonl_line({1.0, TraceKind::kChurnJoin, 5, -1, 0, 0.0});
  const std::string path = temp_path("no_newline");
  write_file(path, full.substr(0, full.size() - 1));  // strip only the \n
  TraceReader reader(path);
  TraceRecord rec;
  ASSERT_EQ(reader.next(rec), TraceReader::Status::kRecord);
  EXPECT_EQ(rec.kind, TraceKind::kChurnJoin);
  EXPECT_EQ(rec.a, 5);
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kEof);
}

TEST(TraceReader, EmptyFileIsCleanEof) {
  const std::string path = temp_path("empty");
  write_file(path, "");
  TraceReader reader(path);
  TraceRecord rec;
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kEof);
}

TEST(TraceReader, MalformedCompleteLineIsAnError) {
  const std::string path = temp_path("malformed");
  write_file(path, "{\"t\": 1.0, \"kind\": \"no_such_kind\"}\n");
  TraceReader reader(path);
  TraceRecord rec;
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kError);
  EXPECT_NE(reader.error().find("no_such_kind"), std::string::npos);
}

TEST(TraceReader, MissingFileReportsError) {
  TraceReader reader(temp_path("does_not_exist"));
  EXPECT_FALSE(reader.ok());
  TraceRecord rec;
  EXPECT_EQ(reader.next(rec), TraceReader::Status::kError);
}

TEST(ParseTraceLine, FieldOrderIndependent) {
  TraceRecord rec;
  std::string error;
  ASSERT_TRUE(parse_trace_line(
      R"({"value": 3.5, "kind": "msg_dropped", "b": 2, "a": 1, "t": 9.0, "tag": 7})",
      rec, error))
      << error;
  EXPECT_EQ(rec.kind, TraceKind::kMsgDropped);
  EXPECT_DOUBLE_EQ(rec.t, 9.0);
  EXPECT_EQ(rec.a, 1);
  EXPECT_EQ(rec.b, 2);
  EXPECT_EQ(rec.tag, 7u);
  EXPECT_DOUBLE_EQ(rec.value, 3.5);
}

TEST(TraceDiff, IdenticalFilesAndEmptyFiles) {
  const std::vector<TraceRecord> records = {
      {0.0, TraceKind::kEventScheduled, 2, -1, 1, 4.0},
      {4.0, TraceKind::kEventFired, 2, -1, 1, 0.0},
      {4.0, TraceKind::kMsgSent, 0, 1, 102, 64.0}};
  const std::string a = write_trace("ident_a", records);
  const std::string b = write_trace("ident_b", records);
  EXPECT_TRUE(diff_traces(a, b).identical());

  const std::string ea = temp_path("empty_a");
  const std::string eb = temp_path("empty_b");
  write_file(ea, "");
  write_file(eb, "");
  EXPECT_TRUE(diff_traces(ea, eb).identical());

  const DiffResult mixed = diff_traces(ea, a);
  EXPECT_EQ(mixed.outcome, DiffResult::Outcome::kDiverged);
  EXPECT_EQ(mixed.kind, "event_scheduled");
}

TEST(TraceDiff, EqualTimestampPermutationIsNotADivergence) {
  // Same four records at t=2.0 in different within-t orders: legal under
  // the determinism contract's divergence-tolerance rule.
  const TraceRecord w = {2.0, TraceKind::kMsgSent, 0, 1, 102, 64.0};
  const TraceRecord x = {2.0, TraceKind::kMsgSent, 1, 2, 102, 64.0};
  const TraceRecord y = {2.0, TraceKind::kMsgDelivered, 0, 1, 102, 64.0};
  const TraceRecord z = {2.0, TraceKind::kChurnLeave, 7, -1, 0, 0.0};
  const std::string a = write_trace("perm_a", {w, x, y, z});
  const std::string b = write_trace("perm_b", {z, y, x, w});
  const DiffResult result = diff_traces(a, b);
  EXPECT_TRUE(result.identical()) << result.message;
}

TEST(TraceDiff, EventTagDriftIsMaskedButMsgTagIsNot) {
  // Same-t engine events whose slot/sequence tags differ: masked.
  const std::string a = write_trace(
      "tags_a", {{1.0, TraceKind::kEventFired, 3, -1, /*tag=*/100, 0.0}});
  const std::string b = write_trace(
      "tags_b", {{1.0, TraceKind::kEventFired, 3, -1, /*tag=*/200, 0.0}});
  EXPECT_TRUE(diff_traces(a, b).identical());
  DiffOptions strict;
  strict.mask_event_tags = false;
  EXPECT_EQ(diff_traces(a, b, strict).outcome,
            DiffResult::Outcome::kDiverged);

  // A message-type tag difference is semantic and always flagged.
  const std::string c = write_trace(
      "tags_c", {{1.0, TraceKind::kMsgSent, 0, 1, /*type=*/102, 64.0}});
  const std::string d = write_trace(
      "tags_d", {{1.0, TraceKind::kMsgSent, 0, 1, /*type=*/103, 64.0}});
  EXPECT_EQ(diff_traces(c, d).outcome, DiffResult::Outcome::kDiverged);
}

TEST(TraceDiff, FirstDivergenceIsPinpointed) {
  std::vector<TraceRecord> base, changed;
  for (int i = 0; i < 10; ++i) {
    const TraceRecord rec = {static_cast<double>(i), TraceKind::kMsgSent,
                             i, i + 1, 102, 64.0};
    base.push_back(rec);
    changed.push_back(rec);
  }
  changed[6].kind = TraceKind::kMsgDropped;  // node 6 drops instead of sends
  const std::string a = write_trace("pin_a", base);
  const std::string b = write_trace("pin_b", changed);
  const DiffResult result = diff_traces(a, b);
  ASSERT_EQ(result.outcome, DiffResult::Outcome::kDiverged);
  EXPECT_DOUBLE_EQ(result.t, 6.0);
  EXPECT_EQ(result.kind, "msg_sent");  // msg_sent sorts before msg_dropped
  EXPECT_EQ(result.node, 6);
  EXPECT_EQ(result.record_index, 6u);
  EXPECT_NE(result.message.find("first divergence at t=6.0"),
            std::string::npos)
      << result.message;
  EXPECT_NE(result.message.find("kind=msg_sent"), std::string::npos);
  // The ±context window shows surrounding records from the file.
  EXPECT_NE(result.message.find("\"t\": 5."), std::string::npos)
      << result.message;
  EXPECT_NE(result.message.find("\"t\": 7."), std::string::npos)
      << result.message;
}

TEST(TraceDiff, UnequalLengthDivergesAtFirstExtraRecord) {
  std::vector<TraceRecord> shorter;
  for (int i = 0; i < 5; ++i) {
    shorter.push_back({static_cast<double>(i), TraceKind::kEventFired, 1,
                       -1, static_cast<std::uint64_t>(i), 0.0});
  }
  std::vector<TraceRecord> longer = shorter;
  longer.push_back({9.0, TraceKind::kChurnLeave, 3, -1, 0, 0.0});
  const std::string a = write_trace("len_a", shorter);
  const std::string b = write_trace("len_b", longer);
  const DiffResult result = diff_traces(a, b);
  ASSERT_EQ(result.outcome, DiffResult::Outcome::kDiverged);
  EXPECT_DOUBLE_EQ(result.t, 9.0);
  EXPECT_EQ(result.kind, "churn_leave");
  EXPECT_EQ(result.record_index, 5u);
}

TEST(TraceDiff, TruncatedTailComparesUpToTruncation) {
  const std::vector<TraceRecord> records = {
      {0.0, TraceKind::kEventFired, 1, -1, 1, 0.0},
      {1.0, TraceKind::kEventFired, 2, -1, 2, 0.0},
      {2.0, TraceKind::kEventFired, 3, -1, 3, 0.0}};
  const std::string a = write_trace("trunc_a", records);
  // B: first two records complete, third cut mid-write.
  const std::string full =
      jsonl_line(records[0]) + jsonl_line(records[1]) + "{\"t\": 2.0, \"k";
  const std::string b = temp_path("trunc_b");
  write_file(b, full);
  const DiffResult result = diff_traces(a, b);
  EXPECT_TRUE(result.identical()) << result.message;
  EXPECT_TRUE(result.b_truncated);
  EXPECT_FALSE(result.a_truncated);
}

TEST(TraceProfile, TimeWeightedFoldByOrigin) {
  // flooding: two spans of 4ms and 6ms; maintenance: one span of 10ms;
  // plus one cancelled churn event (2ms until cancellation).
  const std::string path = write_trace(
      "prof_fold",
      {{0.0, TraceKind::kEventScheduled, origin::kFlooding, -1, 1, 4.0},
       {0.0, TraceKind::kEventScheduled, origin::kMaintenance, -1, 2, 10.0},
       {0.0, TraceKind::kEventScheduled, origin::kChurn, -1, 3, 50.0},
       {0.0, TraceKind::kEventScheduled, origin::kFlooding, -1, 4, 6.0},
       {2.0, TraceKind::kEventCancelled, origin::kChurn, -1, 3, 0.0},
       {4.0, TraceKind::kEventFired, origin::kFlooding, -1, 1, 0.0},
       {6.0, TraceKind::kEventFired, origin::kFlooding, -1, 4, 0.0},
       {10.0, TraceKind::kEventFired, origin::kMaintenance, -1, 2, 0.0}});
  TraceProfile profile;
  std::string error;
  ASSERT_TRUE(profile_trace(path, profile, error)) << error;
  EXPECT_TRUE(profile.time_weighted);
  EXPECT_EQ(profile.fired, 3u);
  EXPECT_EQ(profile.cancelled, 1u);
  EXPECT_EQ(profile.orphans, 0u);
  ASSERT_EQ(profile.entries.size(), 3u);  // lexicographic order
  EXPECT_EQ(profile.entries[0].stack, "sim;churn;cancelled");
  EXPECT_EQ(profile.entries[0].weight, 2000u);  // µs
  EXPECT_EQ(profile.entries[1].stack, "sim;flooding");
  EXPECT_EQ(profile.entries[1].weight, 10000u);
  EXPECT_EQ(profile.entries[2].stack, "sim;maintenance");
  EXPECT_EQ(profile.entries[2].weight, 10000u);
  EXPECT_EQ(profile.total_weight, 22000u);
  double percent_sum = 0;
  for (std::size_t i = 0; i < profile.entries.size(); ++i) {
    percent_sum += profile.percent(i);
  }
  EXPECT_NEAR(percent_sum, 100.0, 1e-9);
}

TEST(TraceProfile, ZeroDelaySpansFallBackToCounts) {
  const std::string path = write_trace(
      "prof_counts",
      {{1.0, TraceKind::kEventScheduled, origin::kGossip, -1, 1, 1.0},
       {1.0, TraceKind::kEventFired, origin::kGossip, -1, 1, 0.0},
       {1.0, TraceKind::kEventScheduled, origin::kGossip, -1, 2, 1.0},
       {1.0, TraceKind::kEventFired, origin::kGossip, -1, 2, 0.0}});
  TraceProfile profile;
  std::string error;
  ASSERT_TRUE(profile_trace(path, profile, error)) << error;
  EXPECT_FALSE(profile.time_weighted);
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries[0].stack, "sim;gossip");
  EXPECT_EQ(profile.entries[0].weight, 2u);  // counts, not µs
}

TEST(TraceProfile, RingWrappedHeadYieldsOrphans) {
  // A ring that only kept the tail of a run: fired records whose
  // scheduled partners were overwritten must count as orphans, not
  // corrupt the fold.
  RingTraceSink ring(3);
  ring.record({0.0, TraceKind::kEventScheduled, origin::kChurn, -1, 1, 8.0});
  ring.record({0.0, TraceKind::kEventScheduled, origin::kChurn, -1, 2, 9.0});
  ring.record({5.0, TraceKind::kEventScheduled, origin::kFlooding, -1, 3,
               6.0});
  ring.record({6.0, TraceKind::kEventFired, origin::kFlooding, -1, 3, 0.0});
  ring.record({8.0, TraceKind::kEventFired, origin::kChurn, -1, 1, 0.0});
  // Retained: {scheduled tag 3, fired tag 3, fired tag 1 (orphan)}.
  ASSERT_EQ(ring.size(), 3u);
  const std::string path = temp_path("ring_dump");
  {
    JsonlTraceSink sink(path);
    ring.dump(sink);
  }
  TraceProfile profile;
  std::string error;
  ASSERT_TRUE(profile_trace(path, profile, error)) << error;
  EXPECT_EQ(profile.fired, 2u);
  EXPECT_EQ(profile.orphans, 1u);
  // The orphan is counted but its span is unknowable, so only the
  // complete flooding span carries weight.
  ASSERT_EQ(profile.entries.size(), 1u);
  EXPECT_EQ(profile.entries[0].stack, "sim;flooding");
  EXPECT_EQ(profile.entries[0].weight, 1000u);  // 1ms span
}

TEST(TraceProfile, EmptyTraceIsAnEmptyProfile) {
  const std::string path = temp_path("prof_empty");
  write_file(path, "");
  TraceProfile profile;
  std::string error;
  ASSERT_TRUE(profile_trace(path, profile, error)) << error;
  EXPECT_TRUE(profile.entries.empty());
  EXPECT_EQ(profile.total_weight, 0u);
}

}  // namespace
}  // namespace uap2p::obs
