// Gnutella property sweeps: TTL monotonicity, flood termination, degree
// invariants, dynamic-querying cost ordering.
#include <gtest/gtest.h>

#include <algorithm>

#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::gnutella {
namespace {

struct Lab {
  sim::Engine engine;
  underlay::AsTopology topo;
  std::unique_ptr<underlay::Network> net;
  std::vector<PeerId> peers;
  std::unique_ptr<netinfo::Oracle> oracle;
  std::unique_ptr<GnutellaSystem> system;

  explicit Lab(Config config, std::size_t peer_count = 60,
               std::uint64_t seed = 303) {
    topo = underlay::AsTopology::mesh(6, 0.4);
    net = std::make_unique<underlay::Network>(engine, topo, seed);
    peers = net->populate(peer_count);
    oracle = std::make_unique<netinfo::Oracle>(*net);
    system = std::make_unique<GnutellaSystem>(
        *net, peers, testlab_roles(peer_count, 2, topo.as_count()), config,
        oracle.get());
    system->bootstrap();
  }
};

class QueryTtlP : public ::testing::TestWithParam<int> {};

TEST_P(QueryTtlP, LargerTtlNeverFindsFewerProviders) {
  // Single full-TTL flood (dynamic querying off) with increasing TTL:
  // the provider set found is monotone in TTL.
  Config config;
  config.dynamic_querying = false;
  config.query_ttl = GetParam();
  Lab lab(config);
  const ContentId content(5);
  for (std::size_t i = 0; i < lab.peers.size(); i += 12) {
    lab.system->share(lab.peers[i], content);
  }
  const auto outcome = lab.system->search(lab.peers[1], content, false);

  Config bigger = config;
  bigger.query_ttl = GetParam() + 1;
  Lab bigger_lab(bigger);
  for (std::size_t i = 0; i < bigger_lab.peers.size(); i += 12) {
    bigger_lab.system->share(bigger_lab.peers[i], content);
  }
  const auto bigger_outcome =
      bigger_lab.system->search(bigger_lab.peers[1], content, false);
  EXPECT_GE(bigger_outcome.result_count, outcome.result_count);
}

INSTANTIATE_TEST_SUITE_P(Ttls, QueryTtlP, ::testing::Values(1, 2, 3));

TEST(GnutellaInvariants, DegreeBoundsHold) {
  Config config;
  config.max_ultrapeer_degree = 5;
  config.max_leaves = 6;
  config.leaf_attachments = 2;
  Lab lab(config, 90);
  for (const PeerId peer : lab.peers) {
    const auto neighbors = lab.system->neighbors_of(peer);
    if (lab.system->role_of(peer) == NodeRole::kUltrapeer) {
      std::size_t ups = 0, leaves = 0;
      for (const PeerId n : neighbors) {
        (lab.system->role_of(n) == NodeRole::kUltrapeer ? ups : leaves)++;
      }
      EXPECT_LE(ups, config.max_ultrapeer_degree);
      EXPECT_LE(leaves, config.max_leaves);
    } else {
      EXPECT_LE(neighbors.size(), config.leaf_attachments);
    }
  }
}

TEST(GnutellaInvariants, EdgesAreMutual) {
  Lab lab(Config{}, 75);
  for (const PeerId peer : lab.peers) {
    for (const PeerId other : lab.system->neighbors_of(peer)) {
      const auto back = lab.system->neighbors_of(other);
      EXPECT_NE(std::find(back.begin(), back.end(), peer), back.end());
    }
  }
}

TEST(GnutellaInvariants, FloodTerminates) {
  // A ping cycle and a search must quiesce: after the run the engine has
  // no gnutella events left (queued() counts only cancelled stubs or
  // unrelated timers; here there are none).
  Lab lab(Config{});
  lab.system->ping_cycle();
  const ContentId content(6);
  lab.system->share(lab.peers[7], content);
  lab.system->search(lab.peers[3], content, false);
  EXPECT_EQ(lab.engine.run(), 0u) << "events leaked past quiesce horizon";
}

TEST(GnutellaInvariants, DuplicateSuppressionBoundsQueryCount) {
  // A single full flood sends at most one query per directed UP edge plus
  // one per matching leaf — duplicates are never forwarded.
  Config config;
  config.dynamic_querying = false;
  Lab lab(config);
  const ContentId content(8);
  lab.system->share(lab.peers[11], content);
  const auto before = lab.system->counts().query;
  lab.system->search(lab.peers[2], content, false);
  const auto sent = lab.system->counts().query - before;
  std::size_t directed_up_edges = 0;
  for (const PeerId peer : lab.peers) {
    if (lab.system->role_of(peer) != NodeRole::kUltrapeer) continue;
    for (const PeerId n : lab.system->neighbors_of(peer)) {
      if (lab.system->role_of(n) == NodeRole::kUltrapeer) ++directed_up_edges;
    }
  }
  EXPECT_LE(sent, directed_up_edges + lab.peers.size());
}

TEST(GnutellaDynamicQuerying, CheaperWhenContentIsEverywhere) {
  // With copies at every ultrapeer, the expanding ring stops at wave 1;
  // a full-TTL flood costs strictly more.
  Config dynamic;
  dynamic.dynamic_querying = true;
  Config full;
  full.dynamic_querying = false;
  Lab dynamic_lab(dynamic);
  Lab full_lab(full);
  const ContentId content(9);
  for (auto* lab : {&dynamic_lab, &full_lab}) {
    for (const PeerId peer : lab->peers) {
      if (lab->system->role_of(peer) == NodeRole::kUltrapeer) {
        lab->system->share(peer, content);
      }
    }
  }
  const auto d = dynamic_lab.system->search(dynamic_lab.peers[1], content,
                                            false);
  const auto f = full_lab.system->search(full_lab.peers[1], content, false);
  EXPECT_TRUE(d.found);
  EXPECT_TRUE(f.found);
  EXPECT_LT(dynamic_lab.system->counts().query,
            full_lab.system->counts().query);
}

TEST(GnutellaHostcache, NeverExceedsConfiguredSize) {
  Config config;
  config.hostcache_size = 12;
  Lab lab(config);
  for (int cycle = 0; cycle < 4; ++cycle) lab.system->ping_cycle();
  // Hostcache is internal; probe it indirectly: bootstrap a second system
  // with the same config — no crash and bounded behaviour is the check
  // here, plus message counts keep growing (caches keep being refreshed).
  EXPECT_GT(lab.system->counts().pong, 0u);
}

}  // namespace
}  // namespace uap2p::overlay::gnutella
