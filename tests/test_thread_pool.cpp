#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace uap2p {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(10, [&](std::size_t i) { order.push_back(int(i)); }, 1);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // sequential when threads == 1
}

TEST(ParallelFor, RethrowsFirstException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 13) throw std::logic_error("unlucky");
          },
          4),
      std::logic_error);
}

TEST(ParallelFor, SumReduction) {
  std::atomic<long long> sum{0};
  parallel_for(1000, [&](std::size_t i) { sum += long(i); }, 3);
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

}  // namespace
}  // namespace uap2p
