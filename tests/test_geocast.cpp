#include <gtest/gtest.h>

#include "overlay/geo_overlay.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::geo {
namespace {

struct GeocastFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net{engine, topo, 53};
  std::vector<PeerId> peers = net.populate(60);
  GeoOverlay overlay{net, peers, {}};
};

TEST_F(GeocastFixture, FullCoverageWhenAllOnline) {
  const GeoRect rect{45.0, 55.0, 0.0, 20.0};
  const auto result = overlay.geocast(peers[0], rect);
  EXPECT_GT(result.expected, 0u);
  EXPECT_EQ(result.delivered, result.expected);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.duration_ms, 0.0);
}

TEST_F(GeocastFixture, EmptyRegionDeliversNothing) {
  const GeoRect rect{36.0, 36.5, -11.9, -11.5};
  const auto result = overlay.geocast(peers[0], rect);
  EXPECT_EQ(result.delivered, 0u);
  EXPECT_EQ(result.expected, 0u);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);  // vacuous
}

TEST_F(GeocastFixture, OfflineMembersNotCounted) {
  const GeoRect rect{45.0, 55.0, 0.0, 20.0};
  const auto members = overlay.ground_truth(rect);
  ASSERT_GE(members.size(), 3u);
  // Take two members offline (not the origin).
  int killed = 0;
  for (const PeerId member : members) {
    if (member == peers[0]) continue;
    net.set_online(member, false);
    if (++killed == 2) break;
  }
  const auto result = overlay.geocast(peers[0], rect);
  // Offline members are excluded from both delivery and ground truth.
  EXPECT_EQ(result.delivered, result.expected);
}

TEST_F(GeocastFixture, GeocastCheaperThanUnicastFanout) {
  // Routing through the tree must cost fewer messages than the origin
  // contacting all recipients directly after a full-area discovery
  // (discovery alone costs the same tree traversal, plus N unicasts).
  const GeoRect rect{45.0, 55.0, 0.0, 20.0};
  const auto search = overlay.area_search(peers[0], rect);
  const auto cast = overlay.geocast(peers[0], rect);
  EXPECT_LE(cast.messages, search.messages + search.found.size());
}

TEST_F(GeocastFixture, WholeWorldGeocastReachesEveryone) {
  GeoConfig config;
  const auto result = overlay.geocast(peers[5], config.world);
  EXPECT_EQ(result.expected, peers.size());
  EXPECT_EQ(result.delivered, peers.size());
}

}  // namespace
}  // namespace uap2p::overlay::geo
