// Steady-state allocation behaviour of the slab-backed engine: after
// warm-up, schedule -> run of small-capture events must not touch the
// allocator at all (slab slots and priority-queue storage are recycled).
#include <gtest/gtest.h>

#include <cstdint>

#include "alloc_probe.hpp"
#include "sim/engine.hpp"

namespace uap2p::sim {
namespace {

TEST(EngineAllocation, SteadyStateScheduleRunIsAllocationFree) {
  Engine engine;
  std::uint64_t fired = 0;
  auto fill_and_run = [&] {
    for (int i = 0; i < 256; ++i) {
      engine.schedule(double(i % 17), [&fired] { ++fired; });
    }
    engine.run();
  };
  // Warm-up: grows the slab and the queue's backing vector to their
  // steady-state footprint.
  for (int round = 0; round < 3; ++round) fill_and_run();
  const std::size_t slab = engine.slab_size();

  const std::uint64_t before = testing::allocation_count();
  for (int round = 0; round < 10; ++round) fill_and_run();
  const std::uint64_t after = testing::allocation_count();

  EXPECT_EQ(after - before, 0u) << "steady-state schedule/run allocated";
  EXPECT_EQ(engine.slab_size(), slab) << "slab grew instead of recycling";
  EXPECT_EQ(fired, 13u * 256u);
}

TEST(EngineAllocation, CancellationIsAllocationFree) {
  Engine engine;
  std::vector<EventHandle> handles(128);
  auto churn = [&] {
    for (int i = 0; i < 128; ++i) {
      handles[i] = engine.schedule(double(i), [] {});
    }
    for (int i = 0; i < 128; i += 2) handles[i].cancel();
    engine.run();
  };
  churn();  // warm-up
  const std::uint64_t before = testing::allocation_count();
  for (int round = 0; round < 5; ++round) churn();
  EXPECT_EQ(testing::allocation_count() - before, 0u);
}

TEST(EngineAllocation, InlineCapacityBoundaryStaysInline) {
  // A capture of exactly kInlineCapacity bytes must stay in the slot.
  struct Capture {
    unsigned char bytes[detail::EventCallback::kInlineCapacity - 8];
    std::uint64_t* counter;
  };
  static_assert(sizeof(Capture) <= detail::EventCallback::kInlineCapacity);
  Engine engine;
  std::uint64_t fired = 0;
  Capture capture{};
  capture.counter = &fired;
  engine.schedule(1.0, [capture] { ++*capture.counter; });  // warm slab+queue
  engine.run();
  const std::uint64_t before = testing::allocation_count();
  for (int i = 0; i < 64; ++i) {
    engine.schedule(1.0, [capture] { ++*capture.counter; });
    engine.run();
  }
  EXPECT_EQ(testing::allocation_count() - before, 0u);
  EXPECT_EQ(fired, 65u);
}

TEST(EngineAllocation, OversizedCapturesSpillButStillRun) {
  struct Big {
    unsigned char bytes[128] = {};
    std::uint64_t* counter = nullptr;
  };
  static_assert(sizeof(Big) > detail::EventCallback::kInlineCapacity);
  Engine engine;
  std::uint64_t fired = 0;
  Big big;
  big.counter = &fired;
  engine.schedule(1.0, [big] { ++*big.counter; });
  engine.run();
  EXPECT_EQ(fired, 1u);  // correctness of the heap-fallback path
}

}  // namespace
}  // namespace uap2p::sim
