#include "core/underlay_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.hpp"

namespace uap2p::core {
namespace {

struct ServiceFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 3, 0.3);
  underlay::Network net{engine, topo, 71};
  std::vector<PeerId> peers = net.populate(24);
  UnderlayService service{net};
};

TEST_F(ServiceFixture, IspLookupMatchesGroundTruthWithPerfectDb) {
  for (const PeerId peer : peers) {
    const auto isp = service.isp_of(peer);
    ASSERT_TRUE(isp.has_value());
    EXPECT_EQ(*isp, net.host(peer).as);
  }
}

TEST_F(ServiceFixture, AsHopsZeroWithinAs) {
  // Peers are AS-round-robin; peer 0 and peer topo.as_count() share AS 0.
  const auto as_count = topo.as_count();
  EXPECT_EQ(service.as_hops(peers[0], peers[as_count]), 0u);
  EXPECT_GT(service.as_hops(peers[0], peers[1]), 0u);
}

TEST_F(ServiceFixture, ExplicitPingMatchesNetworkRtt) {
  UnderlayServiceConfig config;
  config.pinger.jitter_sigma = 0.0;
  UnderlayService exact(net, config);
  EXPECT_DOUBLE_EQ(
      exact.rtt_ms(peers[0], peers[5], LatencyMethod::kExplicitPing),
      net.rtt_ms(peers[0], peers[5]));
}

TEST_F(ServiceFixture, VivaldiPredictsAfterWarmUp) {
  service.warm_up_coordinates(peers);
  // Median relative error over sampled pairs must be far below the
  // "no information" level of 1.0.
  Rng rng(3);
  Samples errors;
  for (int i = 0; i < 200; ++i) {
    const PeerId a = peers[rng.uniform(peers.size())];
    const PeerId b = peers[rng.uniform(peers.size())];
    if (a == b) continue;
    const double truth = net.rtt_ms(a, b);
    const double estimate = service.rtt_ms(a, b, LatencyMethod::kVivaldi);
    errors.add(std::abs(estimate - truth) / truth);
  }
  EXPECT_LT(errors.median(), 0.45);
}

TEST_F(ServiceFixture, GeoSourcesDiverge) {
  // GPS is meters-accurate; IP mapping returns the AS centroid.
  const auto gps = service.location(peers[0], netinfo::GeoSource::kGps);
  const auto isp = service.location(peers[0], netinfo::GeoSource::kIspProvided);
  const auto ipdb = service.location(peers[0], netinfo::GeoSource::kIpMapping);
  ASSERT_TRUE(gps && isp && ipdb);
  const double gps_error =
      underlay::haversine_km(*gps, net.host(peers[0]).location);
  const double ipdb_error =
      underlay::haversine_km(*ipdb, net.host(peers[0]).location);
  EXPECT_LT(gps_error, 0.1);             // within 100 m
  EXPECT_DOUBLE_EQ(
      underlay::haversine_km(*isp, net.host(peers[0]).location), 0.0);
  EXPECT_GE(ipdb_error, gps_error);      // centroid is coarser
}

TEST_F(ServiceFixture, OverheadAccountingAdvances) {
  const auto before = service.overhead();
  (void)service.rtt_ms(peers[0], peers[1], LatencyMethod::kExplicitPing);
  (void)service.as_hops(peers[0], peers[1]);
  (void)service.isp_of(peers[2]);
  service.warm_up_coordinates(peers);
  const auto after = service.overhead();
  EXPECT_GT(after.ping_probes, before.ping_probes);
  EXPECT_GT(after.ping_bytes, before.ping_bytes);
  EXPECT_GT(after.mapping_queries, before.mapping_queries);
  EXPECT_GT(after.vivaldi_updates, before.vivaldi_updates);
}

TEST_F(ServiceFixture, TopCapacityEmptyWithoutSkyEye) {
  EXPECT_TRUE(service.top_capacity(5).empty());
}

TEST_F(ServiceFixture, TopCapacityWithSkyEye) {
  netinfo::SkyEyeConfig sky_config;
  sky_config.update_period_ms = sim::seconds(10);
  netinfo::SkyEye skyeye(net, peers, sky_config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  service.attach_skyeye(&skyeye);
  const auto top = service.top_capacity(4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_GE(top[0].capacity, top[3].capacity);
}

TEST_F(ServiceFixture, RandomPolicyPermutesCandidates) {
  auto policy = make_random_policy(5);
  EXPECT_EQ(policy->name(), "random");
  const auto ranked = policy->rank(peers[0], peers);
  EXPECT_EQ(ranked.size(), peers.size() - 1);  // querier excluded
  for (const PeerId peer : ranked) EXPECT_NE(peer, peers[0]);
}

TEST_F(ServiceFixture, IspPolicyRanksSameAsFirst) {
  auto policy = make_isp_policy(service);
  const auto ranked = policy->rank(peers[0], peers);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(net.host(ranked.front()).as, net.host(peers[0]).as);
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_LE(service.as_hops(peers[0], ranked[i]),
              service.as_hops(peers[0], ranked[i + 1]));
  }
}

TEST_F(ServiceFixture, LatencyPolicyRanksByRtt) {
  UnderlayServiceConfig config;
  config.pinger.jitter_sigma = 0.0;
  UnderlayService exact(net, config);
  auto policy = make_latency_policy(exact, LatencyMethod::kExplicitPing);
  const auto ranked = policy->rank(peers[0], peers);
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_LE(net.rtt_ms(peers[0], ranked[i]),
              net.rtt_ms(peers[0], ranked[i + 1]) + 1e-9);
  }
}

TEST_F(ServiceFixture, GeoPolicyRanksByDistance) {
  auto policy = make_geo_policy(service, netinfo::GeoSource::kIspProvided);
  const auto ranked = policy->rank(peers[0], peers);
  const auto origin = net.host(peers[0]).location;
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_LE(underlay::haversine_km(origin, net.host(ranked[i]).location),
              underlay::haversine_km(origin, net.host(ranked[i + 1]).location) +
                  1e-9);
  }
}

TEST_F(ServiceFixture, ResourcePolicyRanksByCapacity) {
  auto policy = make_resource_policy(service);
  const auto ranked = policy->rank(peers[0], peers);
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_GE(net.host(ranked[i]).resources.capacity_score(),
              net.host(ranked[i + 1]).resources.capacity_score() - 1e-9);
  }
}

TEST_F(ServiceFixture, CompositePolicyPureWeightsMatchSinglePolicies) {
  UnderlayServiceConfig config;
  config.pinger.jitter_sigma = 0.0;
  UnderlayService exact(net, config);
  CompositeWeights isp_only{1.0, 0.0, 0.0, 0.0};
  auto composite = make_composite_policy(exact, isp_only,
                                         LatencyMethod::kExplicitPing,
                                         netinfo::GeoSource::kIspProvided);
  auto pure = make_isp_policy(exact);
  const auto a = composite->rank(peers[3], peers);
  const auto b = pure->rank(peers[3], peers);
  // Same hop-class grouping even if tie order differs.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(exact.as_hops(peers[3], a[i]), exact.as_hops(peers[3], b[i]));
  }
}

TEST_F(ServiceFixture, CompositePolicyBlendsDimensions) {
  CompositeWeights blend{1.0, 0.0, 0.0, 1.0};
  auto policy = make_composite_policy(service, blend,
                                      LatencyMethod::kVivaldi,
                                      netinfo::GeoSource::kIspProvided);
  const auto ranked = policy->rank(peers[0], peers);
  EXPECT_EQ(ranked.size(), peers.size() - 1);
  EXPECT_EQ(policy->name(), "composite");
}

TEST(InfoClassNames, AllDistinct) {
  EXPECT_STREQ(to_string(InfoClass::kIspLocation), "ISP-location");
  EXPECT_STREQ(to_string(InfoClass::kLatency), "Latency");
  EXPECT_STREQ(to_string(InfoClass::kGeolocation), "Geolocation");
  EXPECT_STREQ(to_string(InfoClass::kPeerResources), "Peer Resources");
}

}  // namespace
}  // namespace uap2p::core
