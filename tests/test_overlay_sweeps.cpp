// Parameter sweeps over the remaining overlays: super-peer counts,
// BitTorrent piece granularity, geo zone capacity. Invariants must hold
// across the whole configuration space, not just the defaults.
#include <gtest/gtest.h>

#include <numeric>

#include "overlay/bittorrent.hpp"
#include "overlay/geo_overlay.hpp"
#include "overlay/superpeer.hpp"
#include "sim/engine.hpp"

namespace uap2p {
namespace {

class SuperpeerCountP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuperpeerCountP, ElectionAndSearchInvariants) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net(engine, topo, 901);
  const auto peers = net.populate(60);
  overlay::superpeer::Config config;
  config.superpeer_count = GetParam();
  overlay::superpeer::SuperPeerOverlay overlay(net, peers, config);
  ASSERT_EQ(overlay.superpeers().size(), GetParam());
  // Load covers all clients regardless of superpeer count.
  const auto load = overlay.load_distribution();
  EXPECT_EQ(std::accumulate(load.begin(), load.end(), std::size_t{0}),
            peers.size() - GetParam());
  // A published item is findable from an arbitrary client.
  overlay.publish(peers[31], ContentId(1));
  EXPECT_TRUE(overlay.search(peers[17], ContentId(1)).found);
}

INSTANTIATE_TEST_SUITE_P(Counts, SuperpeerCountP,
                         ::testing::Values(1, 2, 8, 20));

struct BtParam {
  std::size_t pieces;
  std::size_t neighbors;
  std::size_t slots;
};

class BtSweepP : public ::testing::TestWithParam<BtParam> {};

TEST_P(BtSweepP, SwarmCompletesAcrossConfigurations) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net(engine, topo, 907);
  const auto peers = net.populate(40);
  overlay::bittorrent::Config config;
  config.piece_count = GetParam().pieces;
  config.max_neighbors = GetParam().neighbors;
  config.upload_slots = GetParam().slots;
  overlay::bittorrent::BitTorrentSwarm swarm(net, peers, 2, config);
  swarm.build_neighborhoods();
  const std::size_t rounds = swarm.run(4000);
  EXPECT_LT(rounds, 4000u)
      << "pieces=" << GetParam().pieces << " nbrs=" << GetParam().neighbors;
  EXPECT_EQ(swarm.stats().completed, peers.size() - 2);
  EXPECT_EQ(swarm.stats().pieces_transferred,
            (peers.size() - 2) * GetParam().pieces);
}

INSTANTIATE_TEST_SUITE_P(Configs, BtSweepP,
                         ::testing::Values(BtParam{8, 4, 2},
                                           BtParam{32, 8, 3},
                                           BtParam{64, 6, 2},
                                           BtParam{16, 12, 5}));

class GeoCapacityP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GeoCapacityP, FullRetrievabilityAtAnyZoneCapacity) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(5, 0.4);
  underlay::Network net(engine, topo, 911);
  const auto peers = net.populate(70);
  overlay::geo::GeoConfig config;
  config.max_zone_peers = GetParam();
  overlay::geo::GeoOverlay overlay(net, peers, config);
  const overlay::geo::GeoRect rect{44.0, 56.0, -4.0, 24.0};
  const auto result = overlay.area_search(peers[3], rect);
  EXPECT_DOUBLE_EQ(result.completeness(), 1.0)
      << "max_zone_peers=" << GetParam()
      << " zones=" << overlay.zone_count();
  // Smaller capacity => deeper tree.
  if (GetParam() <= 2) {
    EXPECT_GT(overlay.tree_depth(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, GeoCapacityP,
                         ::testing::Values(2, 4, 16, 64));

}  // namespace
}  // namespace uap2p
