#include "netinfo/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace uap2p::netinfo {
namespace {

TEST(Matrix, IdentityAndMultiply) {
  Matrix id = Matrix::identity(3);
  Matrix m(3, 3);
  int value = 1;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = value++;
  const Matrix product = id * m;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(product(r, c), m(r, c));
}

TEST(Matrix, TransposeTimesVector) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  const auto y = m.transpose_times({1.0, 1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
}

TEST(Matrix, TransposedShape) {
  Matrix m(2, 4, 1.5);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(3, 1), 1.5);
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 2.0;
  m(1, 1) = -5.0;
  m(2, 2) = 1.0;
  const EigenResult eigen = symmetric_eigen(m);
  // Sorted by |eigenvalue|: -5, 2, 1.
  EXPECT_NEAR(eigen.eigenvalues[0], -5.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[2], 1.0, 1e-12);
}

TEST(SymmetricEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
  Matrix m(2, 2);
  m(0, 0) = 2; m(0, 1) = 1; m(1, 0) = 1; m(1, 1) = 2;
  const EigenResult eigen = symmetric_eigen(m);
  EXPECT_NEAR(eigen.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eigen.eigenvalues[1], 1.0, 1e-12);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(eigen.eigenvectors(0, 0)), inv_sqrt2, 1e-10);
  EXPECT_NEAR(std::abs(eigen.eigenvectors(1, 0)), inv_sqrt2, 1e-10);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  // A = V diag(lambda) V^T must reproduce the input.
  Rng rng(5);
  const std::size_t n = 6;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r; c < n; ++c) {
      a(r, c) = a(c, r) = rng.uniform_real(-3.0, 3.0);
    }
  }
  const EigenResult eigen = symmetric_eigen(a);
  Matrix reconstructed(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += eigen.eigenvectors(r, k) * eigen.eigenvalues[k] *
               eigen.eigenvectors(c, k);
      }
      reconstructed(r, c) = acc;
    }
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-8);
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  Rng rng(9);
  const std::size_t n = 5;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r; c < n; ++c) a(r, c) = a(c, r) = rng.uniform01();
  const EigenResult eigen = symmetric_eigen(a);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k)
        dot += eigen.eigenvectors(k, i) * eigen.eigenvectors(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(L2Distance, BasicProperties) {
  EXPECT_DOUBLE_EQ(l2_distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(l2_distance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(l2_distance({-1}, {1}), 2.0);
}

}  // namespace
}  // namespace uap2p::netinfo
