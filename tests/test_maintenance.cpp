// Maintenance paths added for churn/mobility: Gnutella overlay repair,
// Kademlia bucket refresh, and the ICS latency method on the facade.
#include <gtest/gtest.h>

#include "core/underlay_service.hpp"
#include "overlay/gnutella.hpp"
#include "overlay/kademlia.hpp"
#include "sim/engine.hpp"

namespace uap2p {
namespace {

TEST(GnutellaRepair, RestoresDegreeAfterMassFailure) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net(engine, topo, 601);
  const auto peers = net.populate(90);
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      overlay::gnutella::Config{});
  system.bootstrap();

  // Kill a third of the network.
  for (std::size_t i = 0; i < peers.size(); i += 3) {
    net.set_online(peers[i], false);
  }
  const std::size_t recreated = system.repair_overlay();
  EXPECT_GT(recreated, 0u);
  // No online node keeps an offline neighbor.
  for (const PeerId peer : peers) {
    if (!net.is_online(peer)) continue;
    for (const PeerId neighbor : system.neighbors_of(peer)) {
      EXPECT_TRUE(net.is_online(neighbor))
          << peer.value() << " still linked to dead " << neighbor.value();
    }
  }
}

TEST(GnutellaRepair, SearchWorksAfterRepair) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::ring(5);
  underlay::Network net(engine, topo, 607);
  const auto peers = net.populate(45);
  overlay::gnutella::GnutellaSystem system(
      net, peers, overlay::gnutella::testlab_roles(peers.size()),
      overlay::gnutella::Config{});
  system.bootstrap();
  const ContentId content(3);
  system.share(peers[20], content);
  system.share(peers[40], content);
  // Kill the searcher's ultrapeers' world: a quarter of all peers.
  for (std::size_t i = 0; i < peers.size(); i += 4) {
    if (i != 1 && i != 20 && i != 40) net.set_online(peers[i], false);
  }
  system.repair_overlay();
  const auto outcome = system.search(peers[1], content, false);
  EXPECT_TRUE(outcome.found);
}

TEST(KademliaRefresh, RepopulatesAfterChurn) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(5, 0.4);
  underlay::Network net(engine, topo, 613);
  const auto peers = net.populate(40);
  overlay::kademlia::KademliaSystem dht(net, peers, {});
  dht.join_all();
  const std::size_t refreshed = dht.refresh_buckets(peers[5]);
  EXPECT_GT(refreshed, 0u);
  // Refresh must leave the table at least as informed (weak check: the
  // node can still resolve the true closest node afterwards).
  Rng rng(3);
  const auto target = rng();
  const auto result = dht.lookup(peers[5], target);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.closest.empty());
}

TEST(ServiceIcs, MatchesGroundTruthShape) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 4, 0.3);
  underlay::Network net(engine, topo, 617);
  const auto peers = net.populate(80);
  core::UnderlayServiceConfig config;
  config.pinger.jitter_sigma = 0.0;
  core::UnderlayService service(net, config);

  EXPECT_LT(service.rtt_ms(peers[3], peers[4], core::LatencyMethod::kIcs),
            0.0)
      << "kIcs must fail before setup_ics";
  EXPECT_FALSE(service.ics_ready());

  // Beacons: one per AS (first 15 peers are AS-round-robin).
  service.setup_ics(std::span<const PeerId>(peers.data(), 15));
  ASSERT_TRUE(service.ics_ready());

  Samples errors;
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    const PeerId a = peers[15 + rng.uniform(peers.size() - 15)];
    const PeerId b = peers[15 + rng.uniform(peers.size() - 15)];
    if (a == b) continue;
    const double truth = net.rtt_ms(a, b);
    const double estimate = service.rtt_ms(a, b, core::LatencyMethod::kIcs);
    errors.add(std::abs(estimate - truth) / truth);
  }
  EXPECT_LT(errors.median(), 0.5);
}

TEST(ServiceIcs, EmbeddingCostIsChargedOncePerHost) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(4, 0.5);
  underlay::Network net(engine, topo, 619);
  const auto peers = net.populate(30);
  core::UnderlayService service(net);
  service.setup_ics(std::span<const PeerId>(peers.data(), 6));
  const auto after_setup = service.overhead().ping_probes;
  (void)service.rtt_ms(peers[10], peers[11], core::LatencyMethod::kIcs);
  const auto after_first = service.overhead().ping_probes;
  EXPECT_GT(after_first, after_setup);  // two embeddings paid
  (void)service.rtt_ms(peers[10], peers[11], core::LatencyMethod::kIcs);
  EXPECT_EQ(service.overhead().ping_probes, after_first);  // cached
}

}  // namespace
}  // namespace uap2p
