// Concurrency contract of the snapshot subsystem (TSan-checked via the
// "parallel" label): many threads may open the same snapshot file at once
// (the verified-identity cache is shared process state), and a
// snapshot-backed SharedRouting is immutable after load, so parallel
// trials may query the mmapped rows freely.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "underlay/routing.hpp"
#include "underlay/snapshot.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {
namespace {

std::string write_snapshot(const AsTopology& topo, const std::string& name) {
  const std::string path = testing::TempDir() + "uap2p_" + name + ".uap2psnap";
  RoutingTable table(topo);
  table.warm_all();
  std::string error;
  EXPECT_TRUE(snapshot::write(topo, table, path, &error)) << error;
  return path;
}

TEST(SnapshotParallel, ConcurrentOpensOfOneFile) {
  const AsTopology topo = AsTopology::mesh(10, 0.5);
  const std::string path = write_snapshot(topo, "parallel_open");

  constexpr std::size_t kThreads = 8;
  std::vector<std::size_t> sizes(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Every thread maps and validates independently; the first
        // content verification for this identity races benignly (each
        // verifier computes the same answer) behind the cache mutex.
        std::string error;
        const auto snap = snapshot::MappedSnapshot::open(path, &error);
        ASSERT_NE(snap, nullptr) << error;
        sizes[t] = snap->file_bytes();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(sizes[t], sizes[0]);
}

TEST(SnapshotParallel, ConcurrentReadersOnLoadedSharedRouting) {
  const AsTopology topo = AsTopology::transit_stub(3, 5, 0.3);
  const std::string path = write_snapshot(topo, "parallel_readers");

  std::string error;
  const auto routing = SharedRouting::load(topo, path, /*threads=*/1, &error);
  ASSERT_NE(routing, nullptr) << error;
  ASSERT_TRUE(routing->snapshot_backed());

  // A fresh (non-snapshot) build of the same topology gives the expected
  // answers; every reader thread must agree with it byte-for-byte.
  const auto reference = SharedRouting::build(topo, /*threads=*/1);
  const auto n = static_cast<std::uint32_t>(topo.router_count());

  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stride the pair space differently per thread so accesses overlap
      // on some rows and diverge on others.
      for (std::uint32_t s = std::uint32_t(t) % n; s < n; s += 3) {
        for (std::uint32_t d = 0; d < n; d += 2) {
          const PathInfo got = routing->path(RouterId(s), RouterId(d));
          const PathInfo want = reference->path(RouterId(s), RouterId(d));
          ASSERT_EQ(got.latency_ms, want.latency_ms)
              << "path(" << s << "," << d << ") diverged";
          ASSERT_EQ(got.bottleneck_mbps, want.bottleneck_mbps);
          ASSERT_EQ(got.router_hops, want.router_hops);
          ASSERT_EQ(got.transit_crossings, want.transit_crossings);
          ASSERT_EQ(got.peering_crossings, want.peering_crossings);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace uap2p::underlay
