#include "netinfo/vivaldi.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace uap2p::netinfo {
namespace {

/// Synthetic ground truth: peers on a 2-D grid, RTT = Euclidean distance
/// (perfectly embeddable, so Vivaldi must converge to low error).
struct GridTruth {
  std::size_t side;
  double spacing;
  [[nodiscard]] double rtt(PeerId a, PeerId b) const {
    const double ax = double(a.value() % side), ay = double(a.value() / side);
    const double bx = double(b.value() % side), by = double(b.value() / side);
    return spacing * std::hypot(ax - bx, ay - by) + 2.0;  // +2ms access
  }
};

VivaldiConfig test_config() {
  VivaldiConfig config;
  config.dimensions = 2;
  config.use_height = true;
  return config;
}

TEST(VivaldiCoord, DistanceWithHeights) {
  VivaldiCoord a{{0.0, 0.0}, 3.0};
  VivaldiCoord b{{3.0, 4.0}, 2.0};
  EXPECT_DOUBLE_EQ(VivaldiCoord::distance(a, b), 5.0 + 3.0 + 2.0);
}

TEST(VivaldiCoord, DistanceSymmetric) {
  VivaldiCoord a{{1.0, -2.0}, 0.5};
  VivaldiCoord b{{-3.0, 7.0}, 1.5};
  EXPECT_DOUBLE_EQ(VivaldiCoord::distance(a, b),
                   VivaldiCoord::distance(b, a));
}

TEST(Vivaldi, InitialErrorIsConfigured) {
  VivaldiSystem system(10, test_config(), Rng(1));
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(system.error_estimate(PeerId(i)), 1.0);
  }
}

TEST(Vivaldi, UpdateMovesCoordinates) {
  VivaldiSystem system(2, test_config(), Rng(2));
  const double before = system.estimate_rtt(PeerId(0), PeerId(1));
  system.update(PeerId(0), PeerId(1), 50.0);
  system.update(PeerId(1), PeerId(0), 50.0);
  const double after = system.estimate_rtt(PeerId(0), PeerId(1));
  EXPECT_NE(before, after);
  EXPECT_EQ(system.update_count(), 2u);
}

TEST(Vivaldi, ConvergesOnGrid) {
  const GridTruth truth{4, 20.0};
  const std::size_t n = truth.side * truth.side;
  VivaldiSystem system(n, test_config(), Rng(3));
  Rng rng(4);
  // Gossip rounds.
  for (int round = 0; round < 600; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto j = PeerId(std::uint32_t(rng.uniform(n)));
      if (j == PeerId(i)) continue;
      system.update(PeerId(i), j, truth.rtt(PeerId(i), j));
    }
  }
  Rng eval_rng(5);
  const Samples errors = relative_error_samples(
      system, eval_rng, 400,
      [&](PeerId a, PeerId b) { return truth.rtt(a, b); });
  EXPECT_LT(errors.median(), 0.12)
      << "median relative error after convergence";
  EXPECT_LT(system.median_error(), 0.3);
}

TEST(Vivaldi, ErrorEstimateDropsWithTraining) {
  const GridTruth truth{3, 30.0};
  const std::size_t n = 9;
  VivaldiSystem system(n, test_config(), Rng(6));
  Rng rng(7);
  const double initial = system.median_error();
  for (int round = 0; round < 200; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto j = PeerId(std::uint32_t(rng.uniform(n)));
      if (j == PeerId(i)) continue;
      system.update(PeerId(i), j, truth.rtt(PeerId(i), j));
    }
  }
  EXPECT_LT(system.median_error(), initial * 0.5);
}

TEST(Vivaldi, HeightsStayAboveMinimum) {
  VivaldiConfig config = test_config();
  config.min_height = 0.25;
  VivaldiSystem system(5, config, Rng(8));
  Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    const auto a = PeerId(std::uint32_t(rng.uniform(5)));
    const auto b = PeerId(std::uint32_t(rng.uniform(5)));
    if (a == b) continue;
    system.update(a, b, rng.uniform_real(1.0, 100.0));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_GE(system.coordinate(PeerId(i)).height, 0.25);
  }
}

TEST(Vivaldi, IgnoresInvalidSamples) {
  VivaldiSystem system(3, test_config(), Rng(10));
  system.update(PeerId(0), PeerId(0), 50.0);  // self
  system.update(PeerId(0), PeerId(1), -1.0);  // negative rtt
  system.update(PeerId(0), PeerId(1), 0.0);   // zero rtt
  EXPECT_EQ(system.update_count(), 0u);
}

TEST(Vivaldi, EstimateIsSymmetric) {
  VivaldiSystem system(4, test_config(), Rng(11));
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const auto a = PeerId(std::uint32_t(rng.uniform(4)));
    const auto b = PeerId(std::uint32_t(rng.uniform(4)));
    if (a == b) continue;
    system.update(a, b, 30.0);
  }
  EXPECT_DOUBLE_EQ(system.estimate_rtt(PeerId(0), PeerId(3)),
                   system.estimate_rtt(PeerId(3), PeerId(0)));
}

TEST(Vivaldi, ErrorEstimateClamped) {
  VivaldiSystem system(2, test_config(), Rng(13));
  // Wildly inconsistent samples cannot push the error past the clamp.
  Rng rng(14);
  for (int i = 0; i < 500; ++i) {
    system.update(PeerId(0), PeerId(1), rng.uniform_real(1.0, 10000.0));
  }
  EXPECT_LE(system.error_estimate(PeerId(0)), 2.0);
  EXPECT_GT(system.error_estimate(PeerId(0)), 0.0);
}

// Ablation-style sweep: more dimensions can only help on a 2-D metric.
class VivaldiDimsP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VivaldiDimsP, ConvergesAtAnyDimension) {
  const GridTruth truth{3, 25.0};
  VivaldiConfig config = test_config();
  config.dimensions = GetParam();
  VivaldiSystem system(9, config, Rng(15));
  Rng rng(16);
  for (int round = 0; round < 400; ++round) {
    for (std::uint32_t i = 0; i < 9; ++i) {
      const auto j = PeerId(std::uint32_t(rng.uniform(9)));
      if (j == PeerId(i)) continue;
      system.update(PeerId(i), j, truth.rtt(PeerId(i), j));
    }
  }
  Rng eval_rng(17);
  const Samples errors = relative_error_samples(
      system, eval_rng, 200,
      [&](PeerId a, PeerId b) { return truth.rtt(a, b); });
  EXPECT_LT(errors.median(), 0.2) << "dims=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Dims, VivaldiDimsP, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace uap2p::netinfo
