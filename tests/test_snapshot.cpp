// Persistent warmed-routing snapshots (underlay/snapshot.hpp): round-trip
// byte-identity against a fresh warm-all, deterministic serialization
// regardless of as-path query order, and rejection of corrupted /
// truncated / version-skewed / wrong-topology files with a working
// fresh-build fallback after every rejection.
#include "underlay/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "underlay/hierarchy.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "uap2p_" + name + ".uap2psnap";
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), std::streamsize(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Writes a warmed snapshot of `topo` to `path` and returns the table it
/// was serialized from (for byte comparisons).
RoutingTable write_snapshot(const AsTopology& topo, const std::string& path) {
  RoutingTable table(topo);
  table.warm_all();
  std::string error;
  EXPECT_TRUE(snapshot::write(topo, table, path, &error)) << error;
  return table;
}

void expect_rows_identical(const AsTopology& topo, const RoutingTable& a,
                           const RoutingTable& b) {
  const std::size_t n = topo.router_count();
  for (std::size_t src = 0; src < n; ++src) {
    const auto id = RouterId(static_cast<std::uint32_t>(src));
    const auto ra = a.row(id);
    const auto rb = b.row(id);
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_EQ(std::memcmp(ra.data(), rb.data(), ra.size_bytes()), 0)
        << "source row " << src << " differs";
  }
}

TEST(Snapshot, RoundTripByteIdentity60Routers) {
  const AsTopology topo = AsTopology::mesh(20, 0.4);
  const std::string path = temp_path("roundtrip60");
  RoutingTable fresh = write_snapshot(topo, path);

  std::string error;
  const auto snap = snapshot::MappedSnapshot::open(
      path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  RoutingTable loaded(topo);
  ASSERT_TRUE(snapshot::attach(*snap, topo, loaded, &error)) << error;
  EXPECT_EQ(loaded.cached_sources(), topo.router_count());
  expect_rows_identical(topo, fresh, loaded);
}

TEST(Snapshot, RoundTripByteIdentity200Routers) {
  // The snapshot-roundtrip gate's shape: 4 transit + 64 stub ASes, 204
  // routers, all link types in play.
  const AsTopology topo = AsTopology::transit_stub(4, 16, 0.3);
  const std::string path = temp_path("roundtrip200");
  RoutingTable fresh = write_snapshot(topo, path);

  std::string error;
  const auto snap = snapshot::MappedSnapshot::open(
      path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  RoutingTable loaded(topo);
  ASSERT_TRUE(snapshot::attach(*snap, topo, loaded, &error)) << error;
  expect_rows_identical(topo, fresh, loaded);

  // Loaded tables answer queries through the mapped image.
  const auto last = RouterId(std::uint32_t(topo.router_count() - 1));
  EXPECT_EQ(fresh.path(RouterId(0), last).router_hops,
            loaded.path(RouterId(0), last).router_hops);
  EXPECT_DOUBLE_EQ(fresh.latency_ms(RouterId(0), last),
                   loaded.latency_ms(RouterId(0), last));
}

TEST(Snapshot, SerializationIndependentOfAsPathQueryOrder) {
  // The as-path intern table fills lazily in query order; the snapshot
  // must not depend on it. Two tables warmed identically but queried in
  // opposite orders have to serialize to byte-identical files.
  const AsTopology topo = AsTopology::mesh(10, 0.5);
  const auto n = static_cast<std::uint32_t>(topo.router_count());

  RoutingTable forward(topo);
  forward.warm_all();
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::uint32_t d = 0; d < n; ++d)
      (void)forward.as_path(RouterId(s), RouterId(d));

  RoutingTable backward(topo);
  backward.warm_all();
  for (std::uint32_t s = n; s-- > 0;)
    for (std::uint32_t d = n; d-- > 0;)
      (void)backward.as_path(RouterId(s), RouterId(d));

  const std::string path_f = temp_path("order_forward");
  const std::string path_b = temp_path("order_backward");
  std::string error;
  ASSERT_TRUE(snapshot::write(topo, forward, path_f, &error)) << error;
  ASSERT_TRUE(snapshot::write(topo, backward, path_b, &error)) << error;
  EXPECT_EQ(read_file(path_f), read_file(path_b));
}

TEST(Snapshot, LoadedTableAnswersAsPathsIdentically) {
  const AsTopology topo = AsTopology::mesh(12, 0.4);
  const auto n = static_cast<std::uint32_t>(topo.router_count());
  const std::string path = temp_path("aspaths");

  RoutingTable fresh(topo);
  fresh.warm_all();
  for (std::uint32_t s = 0; s < n; ++s)
    for (std::uint32_t d = 0; d < n; ++d)
      (void)fresh.as_path(RouterId(s), RouterId(d));
  std::string error;
  ASSERT_TRUE(snapshot::write(topo, fresh, path, &error)) << error;

  const auto snap = snapshot::MappedSnapshot::open(
      path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  EXPECT_EQ(snap->as_path_pairs().size(), std::size_t(n) * n);
  RoutingTable loaded(topo);
  ASSERT_TRUE(snapshot::attach(*snap, topo, loaded, &error)) << error;
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint32_t d = 0; d < n; ++d) {
      const auto want = fresh.as_path(RouterId(s), RouterId(d));
      const auto got = loaded.as_path(RouterId(s), RouterId(d));
      ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
          << "as_path(" << s << "," << d << ") differs";
    }
  }
}

TEST(Snapshot, RejectsFlippedPayloadByte) {
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  const std::string path = temp_path("corrupt_src");
  write_snapshot(topo, path);

  std::vector<char> bytes = read_file(path);
  // Flip one byte in the middle of the row image (well past header and
  // CSR sections).
  bytes[bytes.size() / 2] = char(bytes[bytes.size() / 2] ^ 0x40);
  const std::string corrupt = temp_path("corrupt_flipped");
  write_file(corrupt, bytes);

  std::string error;
  EXPECT_EQ(snapshot::MappedSnapshot::open(
                corrupt, &error, snapshot::MappedSnapshot::Verify::kAlways),
            nullptr);
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(Snapshot, RejectsTruncatedFile) {
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  const std::string path = temp_path("trunc_src");
  write_snapshot(topo, path);

  std::vector<char> bytes = read_file(path);
  for (const std::size_t keep :
       {std::size_t(10), std::size_t(100), bytes.size() - 1}) {
    std::vector<char> cut(bytes.begin(), bytes.begin() + std::ptrdiff_t(keep));
    const std::string truncated =
        temp_path("trunc_" + std::to_string(keep));
    write_file(truncated, cut);
    std::string error;
    EXPECT_EQ(snapshot::MappedSnapshot::open(
                  truncated, &error, snapshot::MappedSnapshot::Verify::kAlways),
              nullptr)
        << "accepted a file truncated to " << keep << " bytes";
    EXPECT_FALSE(error.empty());
  }
}

TEST(Snapshot, RejectsVersionSkew) {
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  const std::string path = temp_path("skew_src");
  write_snapshot(topo, path);

  std::vector<char> bytes = read_file(path);
  // Header layout: magic (8) then version (4). Pretend a future format.
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, snapshot::kFormatVersion);
  version = snapshot::kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  const std::string skewed = temp_path("skew_bumped");
  write_file(skewed, bytes);

  std::string error;
  EXPECT_EQ(snapshot::MappedSnapshot::open(
                skewed, &error, snapshot::MappedSnapshot::Verify::kAlways),
            nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(Snapshot, RejectsBadMagic) {
  const std::string garbage = temp_path("bad_magic");
  write_file(garbage, std::vector<char>(4096, char(0x5a)));
  std::string error;
  EXPECT_EQ(snapshot::MappedSnapshot::open(
                garbage, &error, snapshot::MappedSnapshot::Verify::kAlways),
            nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(Snapshot, AttachRejectsWrongTopology) {
  // Same generator, different seed: the CSR bytes differ, so attach must
  // refuse — a snapshot is keyed to one exact topology.
  const AsTopology topo = AsTopology::mesh(10, 0.5);
  const std::string path = temp_path("wrong_topo");
  write_snapshot(topo, path);

  TopologyConfig other_config;
  other_config.seed = 99;
  const AsTopology other = AsTopology::mesh(10, 0.5, other_config);
  std::string error;
  const auto snap = snapshot::MappedSnapshot::open(
      path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  RoutingTable table(other);
  EXPECT_FALSE(snapshot::attach(*snap, other, table, &error));
  EXPECT_FALSE(error.empty());

  // The rejected table is still usable as a fresh fallback.
  table.warm_all();
  EXPECT_EQ(table.cached_sources(), other.router_count());
}

TEST(Snapshot, SharedRoutingLoadFallsBackCleanly) {
  const AsTopology topo = AsTopology::mesh(10, 0.5);
  std::string error;
  // Missing file: load fails with an error, build still works.
  EXPECT_EQ(SharedRouting::load(topo, temp_path("does_not_exist"), 0, &error),
            nullptr);
  EXPECT_FALSE(error.empty());
  const auto built = SharedRouting::build(topo);
  ASSERT_NE(built, nullptr);
  EXPECT_FALSE(built->snapshot_backed());

  // With a real snapshot, load succeeds and serves identical paths.
  const std::string path = temp_path("shared_load");
  ASSERT_TRUE(snapshot::write(built->topology(), built->table(), path, &error))
      << error;
  const auto loaded = SharedRouting::load(topo, path, 0, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_TRUE(loaded->snapshot_backed());
  const auto last = RouterId(std::uint32_t(topo.router_count() - 1));
  EXPECT_DOUBLE_EQ(built->path(RouterId(0), last).latency_ms,
                   loaded->path(RouterId(0), last).latency_ms);
}

TEST(Snapshot, InspectReportsSectionsAndChecksums) {
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  const std::string path = temp_path("inspect");
  write_snapshot(topo, path);

  std::string error;
  const auto info = snapshot::inspect(path, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->header.magic, snapshot::kMagic);
  EXPECT_EQ(info->header.version, snapshot::kFormatVersion);
  EXPECT_EQ(info->header.router_count, topo.router_count());
  EXPECT_EQ(info->sections.size(), std::size_t(9));
  EXPECT_TRUE(info->checksums_ok);
  for (const auto& section : info->sections) EXPECT_TRUE(section.hash_ok);
}

TEST(Snapshot, WriteRefusesUnwarmedTable) {
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  RoutingTable cold(topo);
  std::string error;
  EXPECT_FALSE(snapshot::write(topo, cold, temp_path("unwarmed"), &error));
  EXPECT_FALSE(error.empty());
}

TEST(Snapshot, V2RoundTripAdoptsLandmarks) {
  // A hierarchically warmed table with landmark tables writes the three
  // v2 sections; SharedRouting::load adopts the landmarks verbatim
  // instead of re-running the K landmark Dijkstras.
  const AsTopology topo = AsTopology::transit_stub(3, 6, 0.3);
  const std::string path = temp_path("v2_landmarks");
  RoutingTable table(topo);
  table.warm_all_hierarchical();
  const AltLandmarks& built = table.ensure_landmarks();
  std::string error;
  ASSERT_TRUE(snapshot::write(topo, table, path, &error)) << error;

  const auto snap = snapshot::MappedSnapshot::open(
      path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  EXPECT_EQ(snap->header().version, snapshot::kFormatVersion);
  EXPECT_EQ(snap->sections().size(), std::size_t(12));
  ASSERT_EQ(snap->landmark_ids().size(), built.count());
  ASSERT_EQ(snap->landmark_dists().size(),
            std::size_t(built.count()) * topo.router_count());
  EXPECT_FALSE(snap->core_order().empty());

  const auto shared = SharedRouting::load(topo, path, 1, &error);
  ASSERT_NE(shared, nullptr) << error;
  const auto adopted = shared->table().landmarks();
  ASSERT_NE(adopted, nullptr);
  ASSERT_EQ(adopted->count(), built.count());
  ASSERT_EQ(adopted->router_count(), built.router_count());
  EXPECT_EQ(std::memcmp(adopted->ids().data(), built.ids().data(),
                        built.ids().size_bytes()),
            0);
  EXPECT_EQ(std::memcmp(adopted->dists().data(), built.dists().data(),
                        built.dists().size_bytes()),
            0);
  const auto last = std::uint32_t(topo.router_count() - 1);
  EXPECT_DOUBLE_EQ(adopted->lower_bound(0, last), built.lower_bound(0, last));
  EXPECT_DOUBLE_EQ(adopted->upper_bound(0, last), built.upper_bound(0, last));
}

TEST(Snapshot, FlatWarmedWriteCarriesNoV2Sections) {
  // A flat-warmed table has neither landmarks nor a hierarchy plan, so a
  // v2 writer emits exactly the v1 section set (only the header version
  // differs) and a load simply finds no landmarks to adopt.
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  const std::string path = temp_path("v2_flat");
  write_snapshot(topo, path);

  std::string error;
  const auto snap = snapshot::MappedSnapshot::open(
      path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  EXPECT_EQ(snap->sections().size(), std::size_t(9));
  EXPECT_TRUE(snap->landmark_ids().empty());
  EXPECT_TRUE(snap->landmark_dists().empty());
  EXPECT_TRUE(snap->core_order().empty());
  RoutingTable loaded(topo);
  ASSERT_TRUE(snapshot::attach(*snap, topo, loaded, &error)) << error;
  EXPECT_EQ(loaded.landmarks(), nullptr);
}

TEST(Snapshot, AcceptsOlderFormatVersion) {
  // Loaders accept every version back to kMinFormatVersion: rewrite a
  // fresh file's header as v1 (re-sealing header_hash, which covers the
  // version field) and check that open/attach/load all still work, with
  // the landmark tables rebuilt rather than adopted.
  const AsTopology topo = AsTopology::mesh(8, 0.5);
  const std::string path = temp_path("v1_src");
  write_snapshot(topo, path);

  std::vector<char> bytes = read_file(path);
  // Header layout: version u32 at offset 8, section_count u32 at 12,
  // header_hash u64 at 56 — the hash of header + section table with the
  // hash field itself zeroed, which content_hash reproduces because the
  // two regions are contiguous in the file.
  std::uint32_t version = snapshot::kMinFormatVersion;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + 12, sizeof(section_count));
  const std::size_t sealed_bytes =
      sizeof(snapshot::Header) + section_count * sizeof(snapshot::SectionRecord);
  ASSERT_LE(sealed_bytes, bytes.size());
  std::memset(bytes.data() + 56, 0, sizeof(std::uint64_t));
  const std::uint64_t header_hash =
      snapshot::content_hash(bytes.data(), sealed_bytes);
  std::memcpy(bytes.data() + 56, &header_hash, sizeof(header_hash));
  const std::string old_path = temp_path("v1_patched");
  write_file(old_path, bytes);

  std::string error;
  const auto snap = snapshot::MappedSnapshot::open(
      old_path, &error, snapshot::MappedSnapshot::Verify::kAlways);
  ASSERT_NE(snap, nullptr) << error;
  EXPECT_EQ(snap->header().version, snapshot::kMinFormatVersion);
  EXPECT_TRUE(snap->landmark_ids().empty());

  RoutingTable loaded(topo);
  ASSERT_TRUE(snapshot::attach(*snap, topo, loaded, &error)) << error;
  EXPECT_EQ(loaded.cached_sources(), topo.router_count());
  EXPECT_EQ(loaded.landmarks(), nullptr);

  const auto shared = SharedRouting::load(topo, old_path, 1, &error);
  ASSERT_NE(shared, nullptr) << error;
  EXPECT_TRUE(shared->snapshot_backed());
  // load() rebuilds the landmark tables an old-format file cannot carry.
  EXPECT_NE(shared->table().landmarks(), nullptr);
}

TEST(Snapshot, ContentHashIsStableAndSensitive) {
  const std::vector<std::uint8_t> data(1027, 0xab);
  const std::uint64_t h1 = snapshot::content_hash(data.data(), data.size());
  const std::uint64_t h2 = snapshot::content_hash(data.data(), data.size());
  EXPECT_EQ(h1, h2);
  std::vector<std::uint8_t> tweaked = data;
  tweaked[1000] ^= 1;
  EXPECT_NE(snapshot::content_hash(tweaked.data(), tweaked.size()), h1);
  // Length-sensitive too (same bytes, one fewer).
  EXPECT_NE(snapshot::content_hash(data.data(), data.size() - 1), h1);
}

}  // namespace
}  // namespace uap2p::underlay
