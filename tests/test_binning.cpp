#include "netinfo/binning.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

TEST(Bin, ToStringFormat) {
  Bin bin;
  bin.order = {2, 0, 1};
  bin.levels = {0, 0, 1};
  EXPECT_EQ(bin.to_string(), "2-0-1:001");
}

TEST(Bin, SimilarityIdentity) {
  Bin bin;
  bin.order = {1, 0, 2};
  bin.levels = {0, 1, 2};
  EXPECT_DOUBLE_EQ(Bin::similarity(bin, bin), 1.0);
}

TEST(Bin, SimilarityPrefixWeighted) {
  Bin a, b;
  a.order = {0, 1, 2};
  a.levels = {0, 0, 0};
  b.order = {0, 2, 1};  // shares only the first landmark position
  b.levels = {0, 0, 0};
  const double partial = Bin::similarity(a, b);
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, 1.0);
  // Same order but one differing level scores between the two.
  Bin c = a;
  c.levels = {0, 1, 0};
  EXPECT_GT(Bin::similarity(a, c), partial);
  EXPECT_LT(Bin::similarity(a, c), 1.0);
}

TEST(Bin, SimilarityEmptyOrMismatched) {
  Bin empty;
  Bin sized;
  sized.order = {0};
  sized.levels = {0};
  EXPECT_DOUBLE_EQ(Bin::similarity(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(Bin::similarity(empty, sized), 0.0);
}

struct BinningFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 4, 0.0);
  underlay::Network net{engine, topo, 23};
  std::vector<PeerId> peers = net.populate(60);

  std::vector<PeerId> landmarks() {
    // One landmark per transit AS: peers 0, 1, 2 (round-robin).
    return {peers[0], peers[1], peers[2]};
  }
};

TEST_F(BinningFixture, BinsAreCachedAndStable) {
  BinningSystem binning(net, landmarks());
  const Bin first = binning.bin_of(peers[10]);
  const auto probes = binning.pinger().probes_sent();
  const Bin second = binning.bin_of(peers[10]);
  EXPECT_EQ(first, second);
  EXPECT_EQ(binning.pinger().probes_sent(), probes);  // cache hit: no probes
}

TEST_F(BinningFixture, MeasurementCostIsLandmarkCount) {
  BinningSystem binning(net, landmarks());
  const auto before = binning.pinger().probes_sent();
  binning.bin_of(peers[20]);
  // 3 landmarks x 3 probes per measurement.
  EXPECT_EQ(binning.pinger().probes_sent() - before, 9u);
}

TEST_F(BinningFixture, SameAsPeersShareBinsMoreOftenThanFarPeers) {
  BinningSystem binning(net, landmarks());
  const std::size_t as_count = topo.as_count();
  int same_as_match = 0, same_as_total = 0;
  int far_match = 0, far_total = 0;
  for (std::size_t i = 3; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      const bool equal =
          binning.bin_of(peers[i]).order == binning.bin_of(peers[j]).order;
      if (net.host(peers[i]).as == net.host(peers[j]).as) {
        ++same_as_total;
        same_as_match += equal;
      } else if (i % as_count != j % as_count) {
        ++far_total;
        far_match += equal;
      }
    }
  }
  ASSERT_GT(same_as_total, 0);
  ASSERT_GT(far_total, 0);
  EXPECT_GT(double(same_as_match) / same_as_total,
            double(far_match) / far_total);
}

TEST_F(BinningFixture, RankPrefersLowRttPeers) {
  BinningSystem binning(net, landmarks());
  const PeerId querier = peers[15];
  const auto ranked = binning.rank(querier, peers);
  ASSERT_GE(ranked.size(), 10u);
  // Binning is coarse, so compare the mean RTT of the top third against
  // the bottom third rather than element-wise.
  double top = 0.0, bottom = 0.0;
  const std::size_t third = ranked.size() / 3;
  for (std::size_t i = 0; i < third; ++i) {
    top += net.rtt_ms(querier, ranked[i]);
    bottom += net.rtt_ms(querier, ranked[ranked.size() - 1 - i]);
  }
  EXPECT_LT(top, bottom);
}

TEST_F(BinningFixture, OfflineLandmarkDegradesGracefully) {
  BinningSystem binning(net, landmarks());
  net.set_online(peers[1], false);  // landmark 1 unreachable
  const Bin bin = binning.bin_of(peers[30]);
  ASSERT_EQ(bin.order.size(), 3u);
  // The dead landmark sorts last (infinite RTT).
  EXPECT_EQ(bin.order.back(), 1);
}

}  // namespace
}  // namespace uap2p::netinfo
