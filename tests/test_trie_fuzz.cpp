// Randomized differential test: PrefixTrie vs a linear-scan reference.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "netinfo/ipmap.hpp"

namespace uap2p::netinfo {
namespace {

struct ReferenceEntry {
  std::uint32_t prefix;
  int len;
  AsId value;
};

/// Linear longest-prefix match over the same insertions.
std::optional<AsId> reference_lookup(const std::vector<ReferenceEntry>& table,
                                     IpAddress ip) {
  int best_len = -1;
  AsId best = AsId::invalid();
  for (const auto& entry : table) {
    const std::uint32_t mask =
        entry.len == 0 ? 0u : (entry.len == 32 ? 0xFFFFFFFFu
                                               : ~0u << (32 - entry.len));
    if ((ip.bits & mask) == (entry.prefix & mask) && entry.len > best_len) {
      best_len = entry.len;
      best = entry.value;
    }
  }
  if (best_len < 0) return std::nullopt;
  return best;
}

class TrieFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieFuzzP, MatchesLinearReference) {
  Rng rng(GetParam());
  PrefixTrie trie;
  std::vector<ReferenceEntry> reference;
  // Insert ~200 random prefixes of random lengths; later duplicates
  // overwrite in both structures.
  for (int i = 0; i < 200; ++i) {
    const int len = int(rng.uniform(33));  // 0..32
    const std::uint32_t mask =
        len == 0 ? 0u : (len == 32 ? 0xFFFFFFFFu : ~0u << (32 - len));
    const std::uint32_t prefix = std::uint32_t(rng()) & mask;
    const AsId value{std::uint32_t(i)};
    trie.insert(prefix, len, {value, {}});
    // Overwrite semantics in the reference: remove an exact duplicate.
    std::erase_if(reference, [&](const ReferenceEntry& e) {
      return e.len == len && (e.prefix & mask) == prefix;
    });
    reference.push_back({prefix, len, value});
  }
  // Probe random addresses plus the prefixes themselves.
  for (int i = 0; i < 2000; ++i) {
    const IpAddress probe{std::uint32_t(rng())};
    const auto got = trie.lookup(probe);
    const auto expected = reference_lookup(reference, probe);
    ASSERT_EQ(got.has_value(), expected.has_value())
        << "probe " << probe.to_string();
    if (got) {
      EXPECT_EQ(got->isp, *expected) << "probe " << probe.to_string();
    }
  }
  for (const auto& entry : reference) {
    const IpAddress probe{entry.prefix};
    const auto got = trie.lookup(probe);
    const auto expected = reference_lookup(reference, probe);
    ASSERT_EQ(got.has_value(), expected.has_value());
    if (got) {
      EXPECT_EQ(got->isp, *expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieFuzzP,
                         ::testing::Values(1ull, 42ull, 777ull, 31337ull));

}  // namespace
}  // namespace uap2p::netinfo
