// Parameterized Kademlia sweep: lookup correctness and cost bounds must
// hold across (k, alpha) combinations and population sizes.
#include <gtest/gtest.h>

#include <set>

#include "common/stats.hpp"
#include "overlay/kademlia.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::kademlia {
namespace {

struct SweepParam {
  std::size_t k;
  std::size_t alpha;
  std::size_t peers;
};

class KademliaSweepP : public ::testing::TestWithParam<SweepParam> {
 protected:
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net{engine, topo, 211};
  std::vector<PeerId> peers = net.populate(GetParam().peers);
  std::unique_ptr<KademliaSystem> dht;

  void SetUp() override {
    Config config;
    config.k = GetParam().k;
    config.alpha = GetParam().alpha;
    dht = std::make_unique<KademliaSystem>(net, peers, config);
    dht->join_all();
  }

  NodeId brute_force_closest(NodeId target, PeerId exclude) {
    NodeId best = 0;
    std::uint64_t best_distance = UINT64_MAX;
    for (const PeerId peer : peers) {
      if (peer == exclude) continue;
      const std::uint64_t d = xor_distance(dht->node_id(peer), target);
      if (d < best_distance) {
        best_distance = d;
        best = dht->node_id(peer);
      }
    }
    return best;
  }
};

TEST_P(KademliaSweepP, LookupsFindTheGlobalClosest) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const PeerId origin = peers[rng.uniform(peers.size())];
    const NodeId target = rng();
    const LookupResult result = dht->lookup(origin, target);
    ASSERT_TRUE(result.converged);
    ASSERT_FALSE(result.closest.empty());
    EXPECT_EQ(result.closest.front().id, brute_force_closest(target, origin))
        << "k=" << GetParam().k << " alpha=" << GetParam().alpha;
  }
}

TEST_P(KademliaSweepP, LookupCostIsLogarithmicish) {
  Rng rng(19);
  uap2p::RunningStats messages;
  for (int trial = 0; trial < 10; ++trial) {
    const LookupResult result =
        dht->lookup(peers[rng.uniform(peers.size())], rng());
    messages.add(double(result.messages_sent));
  }
  // Generous bound: a lookup must not degenerate to flooding the network.
  EXPECT_LT(messages.mean(), double(peers.size()) / 2.0);
  EXPECT_GE(messages.mean(), 1.0);
}

TEST_P(KademliaSweepP, StoreFindRoundTripAcrossParameters) {
  const Key key = 0x5151515151ull;
  dht->store(peers[0], key, "sweep-value");
  const auto result = dht->find_value(peers[peers.size() - 1], key);
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, "sweep-value");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KademliaSweepP,
    ::testing::Values(SweepParam{4, 1, 30}, SweepParam{4, 3, 30},
                      SweepParam{8, 3, 30}, SweepParam{8, 3, 60},
                      SweepParam{16, 5, 60}, SweepParam{2, 2, 24}));

TEST(KademliaChurn, LookupsSucceedWhileNodesDie) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(5, 0.4);
  underlay::Network net(engine, topo, 223);
  const auto peers = net.populate(50);
  KademliaSystem dht(net, peers, {});
  dht.join_all();
  Rng rng(23);
  // Progressive die-off: kill 10% before each lookup batch.
  std::vector<PeerId> alive = peers;
  for (int wave = 0; wave < 4; ++wave) {
    for (int kills = 0; kills < 5 && alive.size() > 10; ++kills) {
      const std::size_t victim = rng.uniform(alive.size());
      net.set_online(alive[victim], false);
      alive.erase(alive.begin() + std::ptrdiff_t(victim));
    }
    for (int trial = 0; trial < 3; ++trial) {
      const PeerId origin = alive[rng.uniform(alive.size())];
      const LookupResult result = dht.lookup(origin, rng());
      EXPECT_TRUE(result.converged);
      for (const Contact& contact : result.closest) {
        EXPECT_TRUE(net.is_online(contact.peer));
      }
    }
  }
}

TEST(KademliaInvariants, BucketsNeverExceedK) {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(4, 0.5);
  underlay::Network net(engine, topo, 227);
  const auto peers = net.populate(40);
  Config config;
  config.k = 4;
  KademliaSystem dht(net, peers, config);
  dht.join_all();
  Rng rng(29);
  for (int i = 0; i < 20; ++i) {
    dht.lookup(peers[rng.uniform(peers.size())], rng());
  }
  for (const PeerId peer : peers) {
    const auto table = dht.routing_table(peer);
    // Bucket size bound implies a global bound: 64 buckets x k.
    EXPECT_LE(table.size(), 64u * config.k);
    // No self-references and no duplicates.
    std::set<NodeId> seen;
    for (const Contact& contact : table) {
      EXPECT_NE(contact.id, dht.node_id(peer));
      EXPECT_TRUE(seen.insert(contact.id).second);
    }
  }
}

}  // namespace
}  // namespace uap2p::overlay::kademlia
