// Steady-state allocation behaviour of the Gnutella flood path: once the
// overlay, the per-node flood tables, the network's in-flight message
// pool, and the traffic accountant's billing windows are warm, a full
// query flood (Query out, QueryHit back, route-back delivery) must not
// touch the global allocator at all. This is the overlay-level
// counterpart of test_engine_alloc.cpp and guards the flat-table rewrite
// of GnutellaSystem.
#include <gtest/gtest.h>

#include <cstdint>

#include "alloc_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"
#include "underlay/network.hpp"

namespace uap2p {
namespace {

TEST(GnutellaAllocation, SteadyStateQueryFloodIsAllocationFree) {
  sim::Engine engine;
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 21);
  const auto peers = net.populate(180);
  overlay::gnutella::Config config;
  config.dynamic_querying = false;  // always flood at full TTL
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      config);
  system.bootstrap();
  for (std::size_t i = 0; i < 3; ++i) {
    system.share(peers[i * 7 + 1], ContentId(5));
  }
  system.ping_cycle();

  std::size_t origin = 0;
  auto do_search = [&] {
    origin = (origin + 37) % peers.size();
    return system
        .search(peers[origin], ContentId(5), /*download=*/false)
        .result_count;
  };

  // Warm-up: grows flood tables, fan-out scratch, the engine slab, the
  // in-flight message pool, and per-type delivery counters to their
  // steady-state footprint. Rotate far enough that every measured origin
  // has floods behind it.
  for (int i = 0; i < 8; ++i) {
    ASSERT_GT(do_search(), 0u);
  }
  // Billing windows grow with simulated time; pre-size them past the end
  // of the measured region (each search quiesces for 30 simulated
  // seconds, so 16 more searches stay well under an hour).
  net.traffic().reserve_windows(engine.now() + sim::hours(1));

  const std::uint64_t before = testing::allocation_count();
  std::size_t results = 0;
  for (int i = 0; i < 16; ++i) results += do_search();
  const std::uint64_t after = testing::allocation_count();

  EXPECT_EQ(after - before, 0u) << "steady-state query flood allocated";
  EXPECT_GT(results, 0u);
}

TEST(GnutellaAllocation, SteadyStateFloodWithObsEnabledIsAllocationFree) {
  // Same regime as above, but with the full observability surface armed:
  // registry counters bound on the network and overlay, and a ring trace
  // sink attached to engine, network, and overlay. Counters are pointer
  // increments and the ring buffer is preallocated, so the flood must
  // still never touch the global allocator.
  sim::Engine engine;
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 21);
  const auto peers = net.populate(180);
  overlay::gnutella::Config config;
  config.dynamic_querying = false;
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      config);
  obs::MetricsRegistry registry;
  obs::RingTraceSink ring(1 << 16);
  net.set_metrics(&registry);
  system.bind_metrics(registry);
  engine.set_trace(&ring);
  net.set_trace(&ring);
  system.set_trace(&ring);
  system.bootstrap();
  for (std::size_t i = 0; i < 3; ++i) {
    system.share(peers[i * 7 + 1], ContentId(5));
  }
  system.ping_cycle();

  std::size_t origin = 0;
  auto do_search = [&] {
    origin = (origin + 37) % peers.size();
    return system
        .search(peers[origin], ContentId(5), /*download=*/false)
        .result_count;
  };
  for (int i = 0; i < 8; ++i) {
    ASSERT_GT(do_search(), 0u);
  }
  net.traffic().reserve_windows(engine.now() + sim::hours(1));

  const std::uint64_t before = testing::allocation_count();
  std::size_t results = 0;
  for (int i = 0; i < 16; ++i) results += do_search();
  const std::uint64_t after = testing::allocation_count();

  EXPECT_EQ(after - before, 0u) << "flood with obs armed allocated";
  EXPECT_GT(results, 0u);
  EXPECT_GT(registry.counter("net.messages.sent").value(), 0u);
  EXPECT_GT(ring.total_recorded(), 0u);
}

TEST(GnutellaAllocation, WindowedMatrixSteadyStateIsAllocationFree) {
  // The cost-observatory regime: per-AS-pair matrix armed, per-window
  // billing series growing with simulated time — and NO manual
  // reserve_windows call. Network::run_until forwards each quiesce
  // horizon (plus an hour of lookahead) to every lane accountant, so
  // once the pair cells exist the measured floods must never touch the
  // allocator: window growth happens in run_until's cold path, inside
  // capacity reserved a simulated hour ahead.
  sim::Engine engine;
  const underlay::AsTopology topo =
      underlay::AsTopology::transit_stub(3, 5, 0.3);
  underlay::Network net(engine, topo, 21);
  const auto peers = net.populate(180);
  net.enable_traffic_matrix();
  overlay::gnutella::Config config;
  config.dynamic_querying = false;
  overlay::gnutella::GnutellaSystem system(
      net, peers,
      overlay::gnutella::testlab_roles(peers.size(), 2, topo.as_count()),
      config);
  system.bootstrap();
  for (std::size_t i = 0; i < 3; ++i) {
    system.share(peers[i * 7 + 1], ContentId(5));
  }
  system.ping_cycle();

  std::size_t origin = 0;
  auto do_search = [&] {
    origin = (origin + 37) % peers.size();
    return system
        .search(peers[origin], ContentId(5), /*download=*/false)
        .result_count;
  };
  // Warm-up populates every active AS pair's cell and triggers the
  // automatic horizon reserve; 16 measured searches advance 8 simulated
  // minutes, well inside the hour of lookahead.
  for (int i = 0; i < 8; ++i) {
    ASSERT_GT(do_search(), 0u);
  }

  const std::uint64_t before = testing::allocation_count();
  std::size_t results = 0;
  for (int i = 0; i < 16; ++i) results += do_search();
  const std::uint64_t after = testing::allocation_count();

  EXPECT_EQ(after - before, 0u) << "windowed matrix steady state allocated";
  EXPECT_GT(results, 0u);
  EXPECT_GT(net.traffic().matrix().pair_count(), 0u);
}

}  // namespace
}  // namespace uap2p
