#include "netinfo/cdn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct CdnFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.0);
  underlay::Network net{engine, topo, 13};
  std::vector<PeerId> peers = net.populate(20);
};

TEST_F(CdnFixture, ReplicasSpreadOverDistinctAses) {
  CdnConfig config;
  config.replica_count = 6;
  SimulatedCdn cdn(net, config);
  ASSERT_EQ(cdn.replica_count(), 6u);
  std::set<std::uint32_t> ases;
  for (std::size_t i = 0; i < cdn.replica_count(); ++i) {
    ases.insert(net.host(cdn.replica(i)).as.value());
  }
  EXPECT_EQ(ases.size(), 6u);
}

TEST_F(CdnFixture, ReplicaCountCappedByAsCount) {
  CdnConfig config;
  config.replica_count = 500;
  SimulatedCdn cdn(net, config);
  EXPECT_EQ(cdn.replica_count(), topo.as_count());
}

TEST_F(CdnFixture, NoiselessRedirectionPicksNearestReplica) {
  CdnConfig config;
  config.replica_count = 6;
  config.load_noise_sigma = 0.0;
  SimulatedCdn cdn(net, config);
  for (const PeerId peer : peers) {
    const std::size_t choice = cdn.redirect(peer);
    const double chosen_rtt = net.rtt_ms(peer, cdn.replica(choice));
    for (std::size_t i = 0; i < cdn.replica_count(); ++i) {
      EXPECT_LE(chosen_rtt, net.rtt_ms(peer, cdn.replica(i)) + 1e-9);
    }
  }
}

TEST_F(CdnFixture, RatioMapsSumToOne) {
  SimulatedCdn cdn(net, {});
  CdnInference inference(cdn, net.host_count());
  for (int i = 0; i < 40; ++i) inference.sample(peers[0]);
  const auto ratios = inference.ratio_map(peers[0]);
  double sum = 0.0;
  for (double r : ratios) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(inference.sample_count(peers[0]), 40u);
}

TEST_F(CdnFixture, EmptyRatioMapHasZeroSimilarity) {
  SimulatedCdn cdn(net, {});
  CdnInference inference(cdn, net.host_count());
  inference.sample(peers[0]);
  EXPECT_DOUBLE_EQ(inference.similarity(peers[0], peers[1]), 0.0);
}

TEST_F(CdnFixture, SameAsPeersMoreSimilarThanFarPeers) {
  // The Ono hypothesis: redirection similarity correlates with proximity.
  // peers are AS-round-robin over 10 ASes (2 transit + 8 stubs), so
  // peers[i] and peers[i + 10] share an AS.
  SimulatedCdn cdn(net, {});
  CdnInference inference(cdn, net.host_count());
  inference.warm_up(peers);
  double same_as_total = 0.0;
  double cross_total = 0.0;
  int same_n = 0, cross_n = 0;
  const std::size_t as_count = topo.as_count();
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      const double sim = inference.similarity(peers[i], peers[j]);
      if (net.host(peers[i]).as == net.host(peers[j]).as) {
        same_as_total += sim;
        ++same_n;
      } else if ((i % as_count) / 5 != (j % as_count) / 5) {
        // Different transit subtree: genuinely far.
        cross_total += sim;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same_as_total / same_n, cross_total / cross_n);
}

TEST_F(CdnFixture, RankPutsSameAsPeerAheadOfFarPeer) {
  SimulatedCdn cdn(net, {});
  CdnInference inference(cdn, net.host_count());
  inference.warm_up(peers);
  const PeerId querier = peers[2];
  const PeerId local = peers[2 + topo.as_count()];  // same AS
  // A peer in the other transit subtree.
  const PeerId remote = peers[7];
  const std::vector<PeerId> candidates{remote, local};
  const auto ranked = inference.rank(querier, candidates);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], local);
}

TEST_F(CdnFixture, RedirectCounterAdvances) {
  SimulatedCdn cdn(net, {});
  EXPECT_EQ(cdn.redirect_count(), 0u);
  cdn.redirect(peers[0]);
  cdn.redirect(peers[1]);
  EXPECT_EQ(cdn.redirect_count(), 2u);
}

TEST_F(CdnFixture, SimilarityIsSymmetricAndBounded) {
  SimulatedCdn cdn(net, {});
  CdnInference inference(cdn, net.host_count());
  inference.warm_up(peers);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      const double s = inference.similarity(peers[i], peers[j]);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-9);
      EXPECT_DOUBLE_EQ(s, inference.similarity(peers[j], peers[i]));
    }
  }
}

}  // namespace
}  // namespace uap2p::netinfo
