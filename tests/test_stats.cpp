#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace uap2p {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(Samples, PercentileExact) {
  Samples samples;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) samples.add(v);
  EXPECT_DOUBLE_EQ(samples.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(samples.percentile(50), 30.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(samples.percentile(25), 20.0);
  // Interpolated.
  EXPECT_DOUBLE_EQ(samples.percentile(10), 14.0);
}

TEST(Samples, MedianOfUnsortedInput) {
  Samples samples;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) samples.add(v);
  EXPECT_DOUBLE_EQ(samples.median(), 3.0);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 5.0);
}

TEST(Samples, ValuesKeepInsertionOrderAfterPercentile) {
  // percentile()/min()/max() sort a separate scratch copy; values() must
  // keep exposing samples in insertion order (callers iterate it to pair
  // samples with the sequence that produced them).
  Samples samples;
  const std::vector<double> inserted = {5.0, 1.0, 4.0, 2.0, 3.0};
  for (double v : inserted) samples.add(v);
  EXPECT_DOUBLE_EQ(samples.percentile(90), 4.6);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_EQ(samples.values(), inserted);
}

TEST(Samples, AddAfterPercentileStillWorks) {
  Samples samples;
  samples.add(1.0);
  EXPECT_DOUBLE_EQ(samples.median(), 1.0);
  samples.add(100.0);
  samples.add(2.0);
  EXPECT_DOUBLE_EQ(samples.median(), 2.0);
}

TEST(Samples, StddevMatchesFormula) {
  Samples samples;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) samples.add(v);
  EXPECT_NEAR(samples.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Samples, EmptyIsSafe) {
  Samples samples;
  EXPECT_EQ(samples.mean(), 0.0);
  EXPECT_EQ(samples.percentile(50), 0.0);
  EXPECT_TRUE(samples.empty());
}

TEST(Histogram, BucketsAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);
  hist.add(9.5);
  hist.add(-5.0);   // clamps into bucket 0
  hist.add(100.0);  // clamps into bucket 9
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(9), 2u);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bucket_lo(5), 5.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram hist(0.0, 2.0, 2);
  hist.add(0.5);
  hist.add(0.6);
  hist.add(1.5);
  const std::string render = hist.render(10);
  EXPECT_NE(render.find("2"), std::string::npos);
  EXPECT_NE(render.find("#"), std::string::npos);
}

TEST(BillingPercentile, StandardNinetyFifth) {
  // 100 samples 1..100: the 95th percentile interpolates to 95.05.
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  EXPECT_NEAR(billing_percentile(samples), 95.05, 1e-9);
}

TEST(BillingPercentile, BurstsAboveTheCutoffAreFree) {
  // The classic property of 95th-percentile billing: short bursts (under
  // 5% of windows) do not raise the bill.
  std::vector<double> steady(100, 10.0);
  std::vector<double> bursty = steady;
  for (int i = 0; i < 4; ++i) bursty[i] = 1000.0;  // 4% of windows burst
  EXPECT_DOUBLE_EQ(billing_percentile(steady), billing_percentile(bursty));
}

TEST(BillingPercentile, EmptyAndSingle) {
  EXPECT_EQ(billing_percentile({}), 0.0);
  EXPECT_DOUBLE_EQ(billing_percentile({7.0}), 7.0);
}

}  // namespace
}  // namespace uap2p
