#include "sim/churn.hpp"

#include <gtest/gtest.h>

namespace uap2p::sim {
namespace {

TEST(Churn, InitialStateRespected) {
  Engine engine;
  ChurnProcess churn(engine, Rng(1), {});
  churn.add_peer(PeerId(0), true);
  churn.add_peer(PeerId(1), false);
  EXPECT_TRUE(churn.is_online(PeerId(0)));
  EXPECT_FALSE(churn.is_online(PeerId(1)));
  EXPECT_EQ(churn.online_count(), 1u);
}

TEST(Churn, PeersToggleOverTime) {
  Engine engine;
  ChurnConfig config;
  config.model = SessionModel::kExponential;
  config.mean_session = minutes(10);
  config.mean_downtime = minutes(5);
  ChurnProcess churn(engine, Rng(7), config);
  int joins = 0, leaves = 0;
  churn.on_join([&](PeerId) { ++joins; });
  churn.on_leave([&](PeerId) { ++leaves; });
  for (std::uint32_t i = 0; i < 20; ++i) churn.add_peer(PeerId(i), true);
  engine.run_until(hours(8));
  EXPECT_GT(joins, 20);
  EXPECT_GT(leaves, 20);
  // Callback counts can differ by at most the population size.
  EXPECT_LE(std::abs(joins - leaves), 20);
}

TEST(Churn, SteadyStateOnlineFractionMatchesTheory) {
  // Expected online fraction = session / (session + downtime) = 2/3.
  Engine engine;
  ChurnConfig config;
  config.model = SessionModel::kExponential;
  config.mean_session = minutes(20);
  config.mean_downtime = minutes(10);
  ChurnProcess churn(engine, Rng(11), config);
  constexpr std::uint32_t kPeers = 200;
  for (std::uint32_t i = 0; i < kPeers; ++i) churn.add_peer(PeerId(i), true);
  // Sample after a long warm-up.
  engine.run_until(hours(24));
  const double fraction = double(churn.online_count()) / kPeers;
  EXPECT_NEAR(fraction, 2.0 / 3.0, 0.12);
}

TEST(Churn, ParetoSessionsAreHeavyTailed) {
  Engine engine;
  ChurnConfig config;
  config.model = SessionModel::kPareto;
  config.pareto_alpha = 1.5;
  config.mean_session = minutes(30);
  ChurnProcess churn(engine, Rng(13), config);
  for (std::uint32_t i = 0; i < 100; ++i) churn.add_peer(PeerId(i), true);
  int leaves = 0;
  churn.on_leave([&](PeerId) { ++leaves; });
  engine.run_until(hours(2));
  // Heavy tail: some peers leave quickly, others outlast the horizon.
  EXPECT_GT(leaves, 10);
  EXPECT_GT(churn.online_count(), 0u);
}

TEST(Churn, StopFreezesState) {
  Engine engine;
  ChurnConfig config;
  config.model = SessionModel::kExponential;
  config.mean_session = minutes(1);
  config.mean_downtime = minutes(1);
  ChurnProcess churn(engine, Rng(17), config);
  for (std::uint32_t i = 0; i < 10; ++i) churn.add_peer(PeerId(i), true);
  churn.stop();
  int events = 0;
  churn.on_leave([&](PeerId) { ++events; });
  churn.on_join([&](PeerId) { ++events; });
  engine.run_until(hours(10));
  EXPECT_EQ(events, 0);
  EXPECT_EQ(churn.online_count(), 10u);
}

TEST(Churn, OfflinePeerEventuallyRejoins) {
  Engine engine;
  ChurnConfig config;
  config.model = SessionModel::kExponential;
  config.mean_downtime = minutes(2);
  ChurnProcess churn(engine, Rng(19), config);
  churn.add_peer(PeerId(0), false);
  bool joined = false;
  churn.on_join([&](PeerId peer) { joined |= (peer == PeerId(0)); });
  engine.run_until(hours(2));
  EXPECT_TRUE(joined);
}

}  // namespace
}  // namespace uap2p::sim
