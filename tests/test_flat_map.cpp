// Flat hash containers (common/flat_map.hpp): growth, reference
// stability, backward-shift erase, and the epoch-reset contract that the
// overlay flood path depends on (clear() is O(1) and steady-state
// insert-after-clear cycles never touch the allocator).
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "alloc_probe.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"

namespace uap2p {
namespace {

TEST(FlatMap, InsertFindGrow) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(42u), nullptr);

  // Push well past several growth thresholds and mirror against the
  // standard map.
  std::unordered_map<std::uint64_t, int> mirror;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng() % 2048;
    const int value = i;
    map.insert_or_assign(key, value);
    mirror[key] = value;
  }
  EXPECT_EQ(map.size(), mirror.size());
  for (const auto& [key, value] : mirror) {
    const int* found = map.find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(*found, value);
  }
  EXPECT_FALSE(map.contains(999999u));
}

TEST(FlatMap, TryEmplaceKeepsExisting) {
  FlatMap<std::uint32_t, int> map;
  auto [first, inserted] = map.try_emplace(7u, 1);
  EXPECT_TRUE(inserted);
  auto [second, inserted_again] = map.try_emplace(7u, 2);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(first, second);
  EXPECT_EQ(*second, 1);
}

TEST(FlatMap, ReferencesSurviveClearAndErase) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(64);  // no growth below: references must stay valid
  int* a = map.try_emplace(1u, 10).first;
  int* b = map.try_emplace(2u, 20).first;
  map.erase(1u);
  EXPECT_EQ(map.find(2u), b);  // slots never move on erase
  map.clear();
  int* a2 = map.try_emplace(1u, 30).first;
  EXPECT_EQ(a2, a);  // same home slot recycled across the epoch bump
  EXPECT_EQ(*a2, 30);
}

TEST(FlatMap, EraseBackwardShiftKeepsChainsIntact) {
  // Force colliding probe chains by using many keys in a small table,
  // then erase from the middle of chains and verify every survivor is
  // still reachable.
  FlatMap<std::uint64_t, std::uint64_t> map;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 200; ++k) {
    map.insert_or_assign(k, k * 3);
    keys.push_back(k);
  }
  Rng rng(23);
  std::unordered_map<std::uint64_t, std::uint64_t> mirror;
  for (const std::uint64_t k : keys) mirror[k] = k * 3;
  for (int round = 0; round < 150; ++round) {
    const std::uint64_t victim = rng() % 200;
    EXPECT_EQ(map.erase(victim), mirror.erase(victim) > 0);
    for (const auto& [key, value] : mirror) {
      const std::uint64_t* found = map.find(key);
      ASSERT_NE(found, nullptr) << "lost key " << key << " erasing " << victim;
      EXPECT_EQ(*found, value);
    }
  }
  EXPECT_EQ(map.size(), mirror.size());
}

TEST(FlatMap, EpochClearRetiresEverythingInO1) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 100; ++k) map.insert_or_assign(k, 1);
  const std::size_t capacity = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), capacity);  // storage retained
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_FALSE(map.contains(k));
  // Slots recycle in place across epochs.
  for (std::uint64_t k = 0; k < 100; ++k) map.insert_or_assign(k, 2);
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(*map.find(50u), 2);
}

TEST(FlatMap, SteadyStateClearInsertCycleIsAllocationFree) {
  FlatMap<std::uint64_t, std::uint32_t> map;
  auto fill = [&] {
    for (std::uint64_t k = 0; k < 500; ++k) {
      map.try_emplace(k * 0x10001, std::uint32_t(k));
    }
  };
  fill();  // warm-up grows to steady-state capacity
  map.clear();
  const std::uint64_t before = testing::allocation_count();
  for (int round = 0; round < 50; ++round) {
    fill();
    map.clear();
  }
  EXPECT_EQ(testing::allocation_count() - before, 0u);
}

TEST(FlatSet, InsertContainsClear) {
  FlatSet<std::uint32_t> set;
  EXPECT_TRUE(set.insert(5u));
  EXPECT_FALSE(set.insert(5u));  // duplicate
  EXPECT_TRUE(set.contains(5u));
  EXPECT_FALSE(set.contains(6u));
  set.clear();
  EXPECT_FALSE(set.contains(5u));
  EXPECT_TRUE(set.insert(5u));
}

TEST(ChunkedStore, AddressesStableAcrossGrowth) {
  ChunkedStore<std::uint64_t, 64> store;
  std::vector<std::uint64_t*> addresses;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    addresses.push_back(&store.push(i));
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(addresses[i], &store[i]);  // growth never relocated
    EXPECT_EQ(store[i], i);
  }
}

TEST(ChunkedStore, ClearRecyclesChunkStorage) {
  ChunkedStore<std::uint64_t, 64> store;
  for (std::uint64_t i = 0; i < 300; ++i) store.push(i);
  const std::uint64_t* address_of_first = &store[0];
  store.clear();
  EXPECT_TRUE(store.empty());
  const std::uint64_t before = testing::allocation_count();
  // Refill to the high-water mark: the chunks are retained, so the store
  // must not allocate.
  for (std::uint64_t i = 0; i < 300; ++i) store.push(i * 2);
  EXPECT_EQ(testing::allocation_count() - before, 0u);
  EXPECT_EQ(&store[0], address_of_first);
  EXPECT_EQ(store[100], 200u);
}

TEST(SlotPool, RecyclesReleasedSlotsWithoutAllocating) {
  SlotPool<std::uint64_t, 64> pool;
  std::vector<std::uint32_t> live;
  for (int i = 0; i < 200; ++i) live.push_back(pool.acquire());
  for (const std::uint32_t slot : live) pool.release(slot);
  const std::size_t high_water = pool.slot_count();
  const std::uint64_t before = testing::allocation_count();
  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint32_t>& again = live;
    for (std::uint32_t& slot : again) {
      slot = pool.acquire();
      pool[slot] = slot;
    }
    for (const std::uint32_t slot : again) {
      EXPECT_EQ(pool[slot], slot);
      pool.release(slot);
    }
  }
  EXPECT_EQ(testing::allocation_count() - before, 0u);
  EXPECT_EQ(pool.slot_count(), high_water);
}

}  // namespace
}  // namespace uap2p
