// Allocation-counting test hook.
//
// alloc_probe.cpp replaces the global operator new/delete for the whole
// test binary with counting wrappers around malloc/free. Tests diff
// allocation_count() around a code region to assert it is allocation-free
// (e.g. the engine's steady-state schedule -> run cycle).
#pragma once

#include <cstdint>

namespace uap2p::testing {

/// Total number of successful global operator new calls (all threads)
/// since process start. Monotonic; diff across a region to count its
/// allocations.
std::uint64_t allocation_count();

}  // namespace uap2p::testing
