// TrafficMatrix contract tests: opt-in recording, per-pair accumulation,
// window alignment of the per-AS billing series, deterministic sorted
// export, and the lane-merge identity the sharded gates rely on (split
// recording merged in lane order must export byte-identically to serial).
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "underlay/cost.hpp"
#include "underlay/network.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {
namespace {

PathInfo transit_path(std::uint32_t transit, std::uint32_t peering) {
  PathInfo path;
  path.reachable = true;
  path.transit_crossings = transit;
  path.peering_crossings = peering;
  path.as_crossings = transit + peering;
  return path;
}

TEST(TrafficMatrix, DisabledMatrixCostsNothingAndRecordsNothing) {
  TrafficAccountant accountant;
  EXPECT_FALSE(accountant.matrix().enabled());
  accountant.record(transit_path(1, 0), 100, 0.0, /*src_as=*/0, /*dst_as=*/1);
  EXPECT_EQ(accountant.total_bytes(), 100u);  // scalar totals still counted
  EXPECT_EQ(accountant.matrix().pair_count(), 0u);
}

TEST(TrafficMatrix, RecordAccumulatesPairCellsAndWindowSeries) {
  TrafficMatrix matrix;
  matrix.enable(/*as_count=*/4, /*window_ms=*/1000.0);
  matrix.record(0, 2, transit_path(2, 1), 100, /*now=*/0.0);
  matrix.record(0, 2, transit_path(2, 1), 50, /*now=*/2500.0);
  matrix.record(2, 0, transit_path(1, 0), 10, /*now=*/100.0);

  ASSERT_EQ(matrix.pair_count(), 2u);
  const TrafficMatrix::PairCell* cell = matrix.cell(0, 2);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->bytes, 150u);
  EXPECT_EQ(cell->messages, 2u);
  EXPECT_EQ(cell->transit_link_bytes, 300u);  // bytes x transit crossings
  EXPECT_EQ(cell->peering_link_bytes, 150u);
  EXPECT_EQ(matrix.cell(2, 0)->transit_link_bytes, 10u);
  EXPECT_EQ(matrix.cell(1, 3), nullptr);  // untouched pair costs nothing

  const Pricing pricing;
  EXPECT_GT(matrix.billed_transit_mbps(0, pricing), 0.0);
  EXPECT_GT(matrix.billed_transit_mbps(2, pricing), 0.0);
  EXPECT_EQ(matrix.billed_transit_mbps(3, pricing), 0.0);
}

TEST(TrafficMatrix, ExportIsSortedAndWindowAligned) {
  TrafficMatrix matrix;
  matrix.enable(3, 1000.0);
  // Register pairs out of (src, dst) order; export must sort them.
  matrix.record(2, 1, transit_path(1, 0), 7, 0.0);
  matrix.record(0, 1, transit_path(1, 0), 5, 1500.0);

  obs::MetricsRegistry registry;
  matrix.export_metrics(registry, Pricing{});
  const std::string json = registry.to_json();
  EXPECT_LT(json.find("traffic.pair.0.1.bytes"),
            json.find("traffic.pair.2.1.bytes"))
      << json;
  // AS 0's transit landed in window 1: [1000, 2000) with value 5.
  EXPECT_NE(json.find("\"name\": \"traffic.as.0.transit_bytes\", "
                      "\"window_ms\": 1000, \"windows\": [{\"start\": 0, "
                      "\"end\": 1000, \"value\": 0}, {\"start\": 1000, "
                      "\"end\": 2000, \"value\": 5}]"),
            std::string::npos)
      << json;
  // Exports are idempotent sets: a second export must not change bytes.
  obs::MetricsRegistry again;
  matrix.export_metrics(again, Pricing{});
  matrix.export_metrics(again, Pricing{});
  EXPECT_EQ(json, again.to_json());
}

TEST(TrafficMatrix, LaneMergeExportsByteIdenticalToSerial) {
  // The sharded-identity property in miniature: the same records split
  // across two lane accountants (in a different interleaving) and merged
  // in lane order must export byte-identically to one serial accountant.
  const Pricing pricing;
  auto record_all = [](TrafficAccountant& acc, int lane) {
    if (lane != 1) {
      acc.record(transit_path(2, 0), 100, 0.0, 0, 1);
      acc.record(transit_path(1, 1), 40, 400000.0, 1, 2);
    }
    if (lane != 0) {
      acc.record(transit_path(2, 0), 60, 200.0, 0, 1);
      acc.record(transit_path(0, 0), 9, 100.0, 2, 2);
    }
  };

  TrafficAccountant serial;
  serial.enable_matrix(3);
  serial.set_peering_links(2);
  record_all(serial, /*lane=*/-1);

  TrafficAccountant lane0, lane1;
  lane0.enable_matrix(3);
  lane1.enable_matrix(3);
  lane0.set_peering_links(2);
  lane1.set_peering_links(2);
  record_all(lane0, 0);
  record_all(lane1, 1);
  TrafficAccountant merged = lane0;  // export_traffic copies lane 0
  merged.merge_from(lane1);

  obs::MetricsRegistry serial_reg, merged_reg;
  serial.export_metrics(serial_reg);
  merged.export_metrics(merged_reg);
  EXPECT_EQ(serial_reg.to_json(), merged_reg.to_json());
}

TEST(TrafficMatrix, NetworkSendFeedsTheMatrix) {
  // End to end through Network: AS-attributed send() records must land in
  // the lane matrix with the topology's AS ids.
  sim::Engine engine;
  const AsTopology topo = AsTopology::transit_stub(2, 3, 0.3);
  Network net(engine, topo, /*seed=*/5);
  const auto peers = net.populate(12);
  net.enable_traffic_matrix();
  ASSERT_TRUE(net.traffic().matrix().enabled());

  Message msg;
  msg.src = peers[0];
  msg.dst = peers[peers.size() - 1];
  msg.size_bytes = 1000;
  net.send(std::move(msg));
  engine.run();

  const TrafficMatrix& matrix = net.traffic().matrix();
  ASSERT_EQ(matrix.pair_count(), 1u);
  const auto cells = matrix.sorted_cells();
  EXPECT_EQ(cells[0].src_as, net.host(peers[0]).as.value());
  EXPECT_EQ(cells[0].dst_as, net.host(peers.back()).as.value());
  EXPECT_EQ(cells[0].bytes, 1000u);
  EXPECT_EQ(cells[0].messages, 1u);
}

}  // namespace
}  // namespace uap2p::underlay
