// Concurrency contract of the hierarchical warm path (TSan-checked via
// the "parallel" label): once the shared views are built — CSR and
// hierarchy plan, both lazy — a topology may back many RoutingTables
// warming hierarchically at once, each with its own row arena; the
// process-global arena recycler is hit concurrently by their
// constructors and destructors. Every warm must still be byte-identical
// to a serial flat warm_all.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "underlay/hierarchy.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay {
namespace {

void expect_rows_match(const AsTopology& topo, const RoutingTable& got,
                       const RoutingTable& want) {
  const std::size_t n = topo.router_count();
  for (std::size_t src = 0; src < n; ++src) {
    const auto id = RouterId(static_cast<std::uint32_t>(src));
    const auto a = got.row(id);
    const auto b = want.row(id);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0)
        << "source row " << src << " differs from the flat warm";
  }
}

TEST(HierarchyParallel, ConcurrentTablesShareOnePlan) {
  const AsTopology topo = AsTopology::transit_stub(4, 8, 0.3);
  // Build the lazy shared views before fanning out, per the topology's
  // threading contract (same rule as csr()).
  (void)topo.csr();
  (void)topo.hierarchy_plan();

  RoutingTable reference(topo);
  reference.warm_all(/*threads=*/1);

  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Construct, warm, compare, and destroy inside the thread: the
      // destructor retires the row arena to the process-global recycler
      // while sibling threads are allocating theirs.
      RoutingTable table(topo);
      table.warm_all_hierarchical(/*threads=*/1);
      expect_rows_match(topo, table, reference);
    });
  }
  for (std::thread& thread : threads) thread.join();
}

TEST(HierarchyParallel, InternallyThreadedWarmMatchesFlat) {
  const AsTopology topo = AsTopology::transit_stub(3, 10, 0.3);
  RoutingTable reference(topo);
  reference.warm_all(/*threads=*/1);

  // The per-source fold itself runs on a pool: every worker streams the
  // shared plan's baked trees into its own rows concurrently.
  RoutingTable hier(topo);
  hier.warm_all_hierarchical(/*threads=*/4);
  expect_rows_match(topo, hier, reference);
}

TEST(HierarchyParallel, SequentialRebuildsRecycleTheArena) {
  // Back-to-back warms of the same size (the oracle snapshot-refresh
  // loop) route through the arena recycler: each table after the first
  // adopts the previous one's pages. Rows must stay byte-identical — the
  // recycled arena is dirty memory, every entry must be overwritten.
  const AsTopology topo = AsTopology::transit_stub(3, 8, 0.3);
  RoutingTable reference(topo);
  reference.warm_all(/*threads=*/1);
  for (int round = 0; round < 3; ++round) {
    RoutingTable table(topo);
    table.warm_all_hierarchical(/*threads=*/2);
    expect_rows_match(topo, table, reference);
  }
}

}  // namespace
}  // namespace uap2p::underlay
