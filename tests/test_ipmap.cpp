#include "netinfo/ipmap.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "underlay/network.hpp"

namespace uap2p::netinfo {
namespace {

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie trie;
  trie.insert(0x0A000000, 8, {AsId(1), {}});   // 10.0.0.0/8
  trie.insert(0x0A010000, 16, {AsId(2), {}});  // 10.1.0.0/16
  trie.insert(0x0A010100, 24, {AsId(3), {}});  // 10.1.1.0/24

  IpAddress ip;
  ASSERT_TRUE(IpAddress::parse("10.2.3.4", ip));
  EXPECT_EQ(trie.lookup(ip)->isp, AsId(1));
  ASSERT_TRUE(IpAddress::parse("10.1.2.3", ip));
  EXPECT_EQ(trie.lookup(ip)->isp, AsId(2));
  ASSERT_TRUE(IpAddress::parse("10.1.1.200", ip));
  EXPECT_EQ(trie.lookup(ip)->isp, AsId(3));
}

TEST(PrefixTrie, MissReturnsNullopt) {
  PrefixTrie trie;
  trie.insert(0x0A000000, 8, {AsId(1), {}});
  IpAddress ip;
  ASSERT_TRUE(IpAddress::parse("11.0.0.1", ip));
  EXPECT_FALSE(trie.lookup(ip).has_value());
}

TEST(PrefixTrie, DefaultRouteCoversEverything) {
  PrefixTrie trie;
  trie.insert(0, 0, {AsId(9), {}});  // 0.0.0.0/0
  IpAddress ip;
  ASSERT_TRUE(IpAddress::parse("203.0.113.7", ip));
  EXPECT_EQ(trie.lookup(ip)->isp, AsId(9));
}

TEST(PrefixTrie, ReinsertOverwrites) {
  PrefixTrie trie;
  trie.insert(0x0A000000, 8, {AsId(1), {}});
  trie.insert(0x0A000000, 8, {AsId(2), {}});
  EXPECT_EQ(trie.entry_count(), 1u);
  IpAddress ip{0x0A000001};
  EXPECT_EQ(trie.lookup(ip)->isp, AsId(2));
}

TEST(PrefixTrie, HostRouteSlash32) {
  PrefixTrie trie;
  trie.insert(0x0A000000, 8, {AsId(1), {}});
  trie.insert(0x0A000001, 32, {AsId(7), {}});
  EXPECT_EQ(trie.lookup(IpAddress{0x0A000001})->isp, AsId(7));
  EXPECT_EQ(trie.lookup(IpAddress{0x0A000002})->isp, AsId(1));
}

struct IpMapFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 3);
  underlay::Network net{engine, topo, 7};
  std::vector<PeerId> peers = net.populate(16);
};

TEST_F(IpMapFixture, PerfectDatabaseResolvesGroundTruth) {
  IpMappingService service(topo, {});
  for (const PeerId peer : peers) {
    const auto isp = service.lookup_isp(net.host(peer).ip);
    ASSERT_TRUE(isp.has_value());
    EXPECT_EQ(*isp, net.host(peer).as);
  }
}

TEST_F(IpMapFixture, LocationIsRegionCentroid) {
  IpMappingService service(topo, {});
  for (const PeerId peer : peers) {
    const auto location = service.lookup_location(net.host(peer).ip);
    ASSERT_TRUE(location.has_value());
    const auto& as_location = topo.as_info(net.host(peer).as).location;
    EXPECT_DOUBLE_EQ(location->lat_deg, as_location.lat_deg);
    EXPECT_DOUBLE_EQ(location->lon_deg, as_location.lon_deg);
  }
}

TEST_F(IpMapFixture, ErrorRateProducesWrongAnswers) {
  IpMappingConfig config;
  config.error_rate = 0.5;
  IpMappingService service(topo, config);
  int wrong = 0;
  for (const PeerId peer : peers) {
    const auto isp = service.lookup_isp(net.host(peer).ip);
    ASSERT_TRUE(isp.has_value());
    if (*isp != net.host(peer).as) ++wrong;
  }
  EXPECT_GT(wrong, 2);            // some wrong at 50% error
  EXPECT_LT(wrong, (int)peers.size());  // not all wrong
}

TEST_F(IpMapFixture, ErrorsAreDeterministicPerIp) {
  IpMappingConfig config;
  config.error_rate = 0.5;
  IpMappingService service(topo, config);
  for (const PeerId peer : peers) {
    const auto first = service.lookup_isp(net.host(peer).ip);
    const auto second = service.lookup_isp(net.host(peer).ip);
    EXPECT_EQ(first, second) << "stale database rows must be stable";
  }
}

TEST_F(IpMapFixture, JitterStaysBounded) {
  IpMappingConfig config;
  config.location_jitter_deg = 0.5;
  IpMappingService service(topo, config);
  for (const PeerId peer : peers) {
    const auto location = service.lookup_location(net.host(peer).ip);
    ASSERT_TRUE(location.has_value());
    const auto& centroid = topo.as_info(net.host(peer).as).location;
    EXPECT_LE(std::abs(location->lat_deg - centroid.lat_deg), 0.5);
    EXPECT_LE(std::abs(location->lon_deg - centroid.lon_deg), 0.5);
  }
}

TEST_F(IpMapFixture, QueryCounterAdvances) {
  IpMappingService service(topo, {});
  EXPECT_EQ(service.query_count(), 0u);
  (void)service.lookup_isp(net.host(peers[0]).ip);
  (void)service.lookup_location(net.host(peers[1]).ip);
  EXPECT_EQ(service.query_count(), 2u);
  EXPECT_EQ(service.database_size(), topo.as_count());
}

TEST_F(IpMapFixture, UnknownIpMisses) {
  IpMappingService service(topo, {});
  IpAddress outside;
  ASSERT_TRUE(IpAddress::parse("203.0.113.1", outside));
  EXPECT_FALSE(service.lookup_isp(outside).has_value());
}

}  // namespace
}  // namespace uap2p::netinfo
