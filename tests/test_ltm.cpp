// Location-aware topology matching (LTM [21]) on the Gnutella overlay.
#include <gtest/gtest.h>

#include "overlay/gnutella.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::gnutella {
namespace {

struct LtmFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(3, 4, 0.3);
  underlay::Network net{engine, topo, 89};
  std::vector<PeerId> peers = net.populate(90);
  GnutellaSystem system{net, peers,
                        testlab_roles(peers.size(), 2, topo.as_count()),
                        Config{}};
  netinfo::PingerConfig ping_config{.jitter_sigma = 0.0};
  netinfo::Pinger pinger{net, Rng(3), ping_config};

  LtmFixture() { system.bootstrap(); }
};

TEST_F(LtmFixture, RoundsReduceMeanEdgeRtt) {
  const double before = system.mean_edge_rtt_ms();
  std::size_t total_rewired = 0;
  for (int round = 0; round < 6; ++round) {
    total_rewired += system.ltm_round(pinger);
  }
  EXPECT_GT(total_rewired, 0u);
  EXPECT_LT(system.mean_edge_rtt_ms(), before);
}

TEST_F(LtmFixture, ConvergesToNoMoreRewires) {
  for (int round = 0; round < 30; ++round) {
    if (system.ltm_round(pinger) == 0) break;
  }
  // After convergence-ish, further rounds do little.
  EXPECT_LE(system.ltm_round(pinger), 2u);
}

TEST_F(LtmFixture, SearchStillWorksAfterOptimization) {
  for (int round = 0; round < 6; ++round) system.ltm_round(pinger);
  const ContentId content(9);
  for (std::size_t i = 0; i < peers.size(); i += 10) {
    system.share(peers[i], content);
  }
  std::size_t found = 0;
  for (std::size_t i = 1; i < peers.size(); i += 9) {
    found += system.search(peers[i], content, false).found;
  }
  EXPECT_GE(found, 8u);
}

TEST_F(LtmFixture, MeasurementOverheadIsPaid) {
  const auto before = pinger.probes_sent();
  system.ltm_round(pinger);
  EXPECT_GT(pinger.probes_sent(), before);
}

TEST_F(LtmFixture, GraphStaysSymmetric) {
  for (int round = 0; round < 5; ++round) system.ltm_round(pinger);
  for (const PeerId peer : peers) {
    if (system.role_of(peer) != NodeRole::kUltrapeer) continue;
    for (const PeerId other : system.neighbors_of(peer)) {
      if (system.role_of(other) != NodeRole::kUltrapeer) continue;
      const auto back = system.neighbors_of(other);
      EXPECT_NE(std::find(back.begin(), back.end(), peer), back.end())
          << "edge " << peer.value() << "<->" << other.value()
          << " became one-sided";
    }
  }
}

}  // namespace
}  // namespace uap2p::overlay::gnutella
