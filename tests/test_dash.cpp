// Dashboard renderer round-trip: record AS-attributed traffic into a
// TrafficAccountant, export the registry to JSON, render it with
// obs::dash, and check dash.json reproduces the per-AS bills the
// cost_curves closed forms give for the measured billed rates. Also pins
// renderer determinism (same snapshots -> same bytes) and error paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/dash.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "underlay/cost.hpp"

namespace uap2p::obs {
namespace {

using underlay::PathInfo;
using underlay::Pricing;
using underlay::TrafficAccountant;

PathInfo path_with(std::uint32_t transit, std::uint32_t peering) {
  PathInfo path;
  path.reachable = true;
  path.transit_crossings = transit;
  path.peering_crossings = peering;
  path.as_crossings = transit + peering;
  return path;
}

/// A small deterministic workload: AS 0 ships transit-heavy traffic to
/// AS 1 across several billing windows, AS 2 stays local.
std::string snapshot_json() {
  TrafficAccountant accountant;
  accountant.enable_matrix(3);
  accountant.set_peering_links(2);
  const double window = accountant.pricing().sample_window_ms;
  for (int w = 0; w < 4; ++w) {
    accountant.record(path_with(2, 0), 1'000'000 * (w + 1),
                      window * w + 10.0, 0, 1);
    accountant.record(path_with(0, 0), 500, window * w + 20.0, 2, 2);
  }
  MetricsRegistry registry;
  accountant.export_metrics(registry);
  return registry.to_json();
}

TEST(Dash, RoundTripReproducesPerAsBills) {
  const std::string snapshot = snapshot_json();

  dash::Output output;
  std::string error;
  ASSERT_TRUE(dash::render({snapshot}, dash::Options{}, output, &error))
      << error;

  json::Value root;
  ASSERT_TRUE(json::parse(output.json, root, &error)) << error;
  ASSERT_EQ(root.type, json::Value::Type::kObject);

  // The measured per-AS bill in dash.json must be the closed-form
  // transit_monthly_usd of the billed rate the registry carried.
  const json::Value* bills = json::field(root, "as_bills",
                                         json::Value::Type::kArray);
  ASSERT_NE(bills, nullptr);
  ASSERT_EQ(bills->array.size(), 1u);  // only AS 0 crossed transit
  const json::Value& bill = bills->array[0];
  EXPECT_EQ(json::field(bill, "as", json::Value::Type::kNumber)->number, 0.0);
  const double mbps =
      json::field(bill, "billed_transit_mbps", json::Value::Type::kNumber)
          ->number;
  const double usd =
      json::field(bill, "transit_usd_month", json::Value::Type::kNumber)
          ->number;
  EXPECT_GT(mbps, 0.0);
  EXPECT_DOUBLE_EQ(usd, underlay::cost_curves::transit_monthly_usd(mbps, {}));

  const json::Value* pairs =
      json::field(root, "pairs", json::Value::Type::kArray);
  ASSERT_NE(pairs, nullptr);
  ASSERT_EQ(pairs->array.size(), 2u);  // (0,1) and (2,2), sorted
  EXPECT_EQ(json::field(pairs->array[0], "src_as",
                        json::Value::Type::kNumber)->number, 0.0);
  EXPECT_EQ(json::field(pairs->array[1], "src_as",
                        json::Value::Type::kNumber)->number, 2.0);

  // Crossover in dash.json matches the closed form for the exported
  // peering-link count.
  const json::Value* summary =
      json::field(root, "summary", json::Value::Type::kObject);
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(
      json::field(*summary, "closed_form_crossover_mbps",
                  json::Value::Type::kNumber)->number,
      underlay::cost_curves::crossover_mbps(2, {}));

  // The HTML embeds all four panels.
  for (const char* panel :
       {"Per-AS transit bills", "AS-pair traffic matrix",
        "Cost per Mbps", "Transit traffic over sim time"}) {
    EXPECT_NE(output.html.find(panel), std::string::npos) << panel;
  }
}

TEST(Dash, RenderIsByteDeterministic) {
  const std::string snapshot = snapshot_json();
  dash::Output first, second;
  std::string error;
  ASSERT_TRUE(dash::render({snapshot}, dash::Options{}, first, &error));
  ASSERT_TRUE(dash::render({snapshot}, dash::Options{}, second, &error));
  EXPECT_EQ(first.html, second.html);
  EXPECT_EQ(first.json, second.json);
}

TEST(Dash, LaterSnapshotsWin) {
  // --metrics-every snapshots are cumulative; the renderer must read the
  // sequence and keep the last value per metric.
  MetricsRegistry early;
  early.counter("traffic.bytes.total").set(100);
  MetricsRegistry late;
  late.counter("traffic.bytes.total").set(250);

  dash::Output output;
  std::string error;
  ASSERT_TRUE(dash::render({early.to_json(), late.to_json()}, dash::Options{},
                           output, &error))
      << error;
  json::Value root;
  ASSERT_TRUE(json::parse(output.json, root, &error)) << error;
  const json::Value* summary =
      json::field(root, "summary", json::Value::Type::kObject);
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(json::field(*summary, "total_bytes",
                        json::Value::Type::kNumber)->number, 250.0);
}

TEST(Dash, RejectsGarbageAndOldSchemas) {
  dash::Output output;
  std::string error;
  EXPECT_FALSE(dash::render({"{not json"}, dash::Options{}, output, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(dash::render({"{\"schema_version\": 1}"}, dash::Options{},
                            output, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace uap2p::obs
