#include "netinfo/gossip.hpp"

#include "netinfo/skyeye.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct GossipFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::transit_stub(2, 4, 0.3);
  underlay::Network net{engine, topo, 229};
  std::vector<PeerId> peers = net.populate(50);
  VivaldiSystem vivaldi{peers.size(), {}, Rng(1)};
  PingerConfig ping_config{.jitter_sigma = 0.0};
  Pinger pinger{net, Rng(2), ping_config};
};

TEST_F(GossipFixture, BackgroundGossipConvergesCoordinates) {
  GossipConfig config;
  config.sample_period_ms = sim::seconds(5);
  config.samples_per_tick = 2;
  CoordinateGossip gossip(net, vivaldi, pinger, peers, config);
  gossip.start();
  engine.run_until(sim::minutes(30));
  gossip.stop();
  EXPECT_GT(gossip.samples_taken(), 5000u);
  Rng eval(3);
  const Samples errors = relative_error_samples(
      vivaldi, eval, 500, [&](PeerId a, PeerId b) { return net.rtt_ms(a, b); });
  EXPECT_LT(errors.median(), 0.35);
}

TEST_F(GossipFixture, ProbesAreCharged) {
  CoordinateGossip gossip(net, vivaldi, pinger, peers, {});
  gossip.start();
  engine.run_until(sim::minutes(2));
  gossip.stop();
  EXPECT_GT(pinger.probes_sent(), 0u);
  EXPECT_GT(net.traffic().total_bytes(), 0u);
}

TEST_F(GossipFixture, StopHaltsSampling) {
  CoordinateGossip gossip(net, vivaldi, pinger, peers, {});
  gossip.start();
  engine.run_until(sim::minutes(1));
  gossip.stop();
  const auto samples = gossip.samples_taken();
  engine.run_until(sim::minutes(30));
  EXPECT_EQ(gossip.samples_taken(), samples);
}

TEST_F(GossipFixture, OfflinePeersSkipTheirTicks) {
  for (std::size_t i = 0; i < peers.size(); i += 2) {
    net.set_online(peers[i], false);
  }
  CoordinateGossip gossip(net, vivaldi, pinger, peers, {});
  gossip.start();
  engine.run_until(sim::minutes(5));
  gossip.stop();
  // Offline peers never moved their coordinate (no self-updates).
  for (std::size_t i = 0; i < peers.size(); i += 2) {
    const auto& coord = vivaldi.coordinate(peers[i]);
    for (const double x : coord.position) EXPECT_DOUBLE_EQ(x, 0.0);
  }
}

TEST_F(GossipFixture, RemoteSkyEyeQueryAnswersWithLatency) {
  SkyEyeConfig sky_config;
  sky_config.update_period_ms = sim::seconds(10);
  SkyEye skyeye(net, peers, sky_config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  const auto result = skyeye.query_remote(peers[30], 4);
  EXPECT_TRUE(result.answered);
  EXPECT_EQ(result.entries.size(), 4u);
  EXPECT_GT(result.latency_ms, 0.0);
  // Root self-query is free.
  const auto self_result = skyeye.query_remote(skyeye.root(), 4);
  EXPECT_TRUE(self_result.answered);
  EXPECT_DOUBLE_EQ(self_result.latency_ms, 0.0);
}

TEST_F(GossipFixture, RemoteQueryFailsWhenRootOffline) {
  SkyEyeConfig sky_config;
  SkyEye skyeye(net, peers, sky_config);
  net.set_online(skyeye.root(), false);
  const auto result = skyeye.query_remote(peers[10], 4);
  EXPECT_FALSE(result.answered);
}

}  // namespace
}  // namespace uap2p::netinfo
