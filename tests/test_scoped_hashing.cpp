// Geographically scoped hashing (Leopard [33]) on the geo overlay.
#include <gtest/gtest.h>

#include "overlay/geo_overlay.hpp"
#include "sim/engine.hpp"

namespace uap2p::overlay::geo {
namespace {

struct ScopedFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(6, 0.4);
  underlay::Network net{engine, topo, 83};
  std::vector<PeerId> peers = net.populate(80);
  GeoOverlay overlay{net, peers, {}};

  GeoRect scope_around(PeerId peer, double degrees) {
    const auto& location = net.host(peer).location;
    return GeoRect{location.lat_deg - degrees, location.lat_deg + degrees,
                   location.lon_deg - degrees, location.lon_deg + degrees};
  }
};

TEST_F(ScopedFixture, PutThenGetFromInsideScope) {
  const PeerId provider = peers[10];
  const GeoRect scope = scope_around(provider, 3.0);
  const auto put = overlay.scoped_put(provider, ContentId(1), scope);
  EXPECT_GT(put.zones_stored, 0u);
  EXPECT_GT(put.messages, 0u);
  // The provider itself is inside the scope: lookup must succeed.
  const auto get = overlay.scoped_get(provider, ContentId(1));
  EXPECT_TRUE(get.found);
  ASSERT_FALSE(get.providers.empty());
  EXPECT_EQ(get.providers.front(), provider);
  EXPECT_GT(get.messages, 0u);
}

TEST_F(ScopedFixture, NearbyPeerFindsContentAtLowTreeLevel) {
  const PeerId provider = peers[10];
  overlay.scoped_put(provider, ContentId(2), scope_around(provider, 5.0));
  // The geographically nearest other peer resolves with few level climbs.
  PeerId nearest = PeerId::invalid();
  double best = 1e18;
  for (const PeerId other : peers) {
    if (other == provider) continue;
    const double km = underlay::haversine_km(net.host(other).location,
                                             net.host(provider).location);
    if (km < best) {
      best = km;
      nearest = other;
    }
  }
  const auto get = overlay.scoped_get(nearest, ContentId(2));
  EXPECT_TRUE(get.found);
  EXPECT_LE(get.tree_levels_climbed, overlay.tree_depth());
}

TEST_F(ScopedFixture, FarPeerClimbsHigherThanNearPeer) {
  const PeerId provider = peers[10];
  overlay.scoped_put(provider, ContentId(3), scope_around(provider, 2.0));
  // Nearest vs farthest peer: the far one needs more tree levels (it may
  // even miss if the root zone does not store it — Leopard's scoping).
  PeerId nearest = PeerId::invalid(), farthest = PeerId::invalid();
  double best = 1e18, worst = -1.0;
  for (const PeerId other : peers) {
    if (other == provider) continue;
    const double km = underlay::haversine_km(net.host(other).location,
                                             net.host(provider).location);
    if (km < best) { best = km; nearest = other; }
    if (km > worst) { worst = km; farthest = other; }
  }
  const auto near_get = overlay.scoped_get(nearest, ContentId(3));
  const auto far_get = overlay.scoped_get(farthest, ContentId(3));
  ASSERT_TRUE(near_get.found);
  if (far_get.found) {
    EXPECT_GE(far_get.tree_levels_climbed, near_get.tree_levels_climbed);
  }
}

TEST_F(ScopedFixture, MissingContentReportsNotFound) {
  const auto get = overlay.scoped_get(peers[0], ContentId(99));
  EXPECT_FALSE(get.found);
  EXPECT_TRUE(get.providers.empty());
}

TEST_F(ScopedFixture, MultipleProvidersAggregate) {
  const GeoRect wide{40.0, 58.0, -8.0, 28.0};
  overlay.scoped_put(peers[5], ContentId(4), wide);
  overlay.scoped_put(peers[6], ContentId(4), wide);
  // Search from a peer that is actually inside the scope (a peer outside
  // it correctly misses — that is Leopard's scoping).
  PeerId searcher = PeerId::invalid();
  for (const PeerId peer : peers) {
    if (peer != peers[5] && peer != peers[6] &&
        wide.contains(net.host(peer).location)) {
      searcher = peer;
      break;
    }
  }
  ASSERT_TRUE(searcher.is_valid());
  const auto get = overlay.scoped_get(searcher, ContentId(4));
  ASSERT_TRUE(get.found);
  EXPECT_GE(get.providers.size(), 1u);
}

TEST_F(ScopedFixture, OutOfScopePeerMisses) {
  // Leopard scoping: content published into a small scope is invisible to
  // queries from far outside it.
  const PeerId provider = peers[12];
  overlay.scoped_put(provider, ContentId(6), scope_around(provider, 0.5));
  PeerId far = PeerId::invalid();
  double worst = -1.0;
  for (const PeerId other : peers) {
    const double km = underlay::haversine_km(net.host(other).location,
                                             net.host(provider).location);
    if (km > worst) {
      worst = km;
      far = other;
    }
  }
  const auto get = overlay.scoped_get(far, ContentId(6));
  EXPECT_FALSE(get.found);
}

TEST_F(ScopedFixture, DuplicatePutIsIdempotent) {
  const GeoRect scope = scope_around(peers[8], 4.0);
  overlay.scoped_put(peers[8], ContentId(5), scope);
  overlay.scoped_put(peers[8], ContentId(5), scope);
  const auto get = overlay.scoped_get(peers[8], ContentId(5));
  ASSERT_TRUE(get.found);
  EXPECT_EQ(get.providers.size(), 1u);
}

}  // namespace
}  // namespace uap2p::overlay::geo
