#include "netinfo/oracle.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct OracleFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::star(5);
  underlay::Network net{engine, topo, 11};
  // 3 peers per AS, round-robin: peer i is in AS i % 5.
  std::vector<PeerId> peers = net.populate(15);

  [[nodiscard]] std::vector<PeerId> all_but(PeerId querier) const {
    std::vector<PeerId> result;
    for (const PeerId peer : peers) {
      if (peer != querier) result.push_back(peer);
    }
    return result;
  }
};

TEST_F(OracleFixture, SameAsCandidatesRankFirst) {
  Oracle oracle(net, {});
  const PeerId querier = peers[1];  // AS 1
  const auto ranked = oracle.rank(querier, all_but(querier));
  ASSERT_EQ(ranked.size(), peers.size() - 1);
  // First two must be the other AS-1 peers (peers 6 and 11).
  EXPECT_EQ(net.host(ranked[0]).as, net.host(querier).as);
  EXPECT_EQ(net.host(ranked[1]).as, net.host(querier).as);
  EXPECT_NE(net.host(ranked[2]).as, net.host(querier).as);
}

TEST_F(OracleFixture, RankIsMonotoneInAsHops) {
  Oracle oracle(net, {});
  const PeerId querier = peers[2];
  const auto ranked = oracle.rank(querier, all_but(querier));
  for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
    EXPECT_LE(oracle.as_hops(querier, ranked[i]),
              oracle.as_hops(querier, ranked[i + 1]));
  }
}

TEST_F(OracleFixture, StarHubIsOneHopFromEveryone) {
  Oracle oracle(net, {});
  const PeerId hub_peer = peers[0];   // AS 0 = hub
  const PeerId leaf_peer = peers[1];  // AS 1
  EXPECT_EQ(oracle.as_hops(hub_peer, leaf_peer), 1u);
  // Two satellite ASes are 2 hops apart via the hub.
  EXPECT_EQ(oracle.as_hops(peers[1], peers[2]), 2u);
  EXPECT_EQ(oracle.as_hops(peers[1], peers[6]), 0u);  // same AS
}

TEST_F(OracleFixture, OfflineCandidatesDropped) {
  Oracle oracle(net, {});
  const PeerId querier = peers[0];
  net.set_online(peers[5], false);
  const auto ranked = oracle.rank(querier, all_but(querier));
  EXPECT_EQ(ranked.size(), peers.size() - 2);
  for (const PeerId peer : ranked) EXPECT_NE(peer, peers[5]);
}

TEST_F(OracleFixture, SelfExcluded) {
  Oracle oracle(net, {});
  const PeerId querier = peers[3];
  std::vector<PeerId> with_self = all_but(querier);
  with_self.push_back(querier);
  const auto ranked = oracle.rank(querier, with_self);
  for (const PeerId peer : ranked) EXPECT_NE(peer, querier);
}

TEST_F(OracleFixture, ListSizeCapEnforced) {
  OracleConfig config;
  config.max_list_size = 5;
  Oracle oracle(net, config);
  const auto ranked = oracle.rank(peers[0], all_but(peers[0]));
  EXPECT_LE(ranked.size(), 5u);
}

TEST_F(OracleFixture, BestPrefersSameAs) {
  Oracle oracle(net, {});
  const PeerId querier = peers[4];  // AS 4; same-AS peers: 9 and 14
  const PeerId best = oracle.best(querier, all_but(querier));
  EXPECT_EQ(net.host(best).as, net.host(querier).as);
}

TEST_F(OracleFixture, BestReturnsInvalidWhenNoCandidates) {
  Oracle oracle(net, {});
  const PeerId best = oracle.best(peers[0], {});
  EXPECT_FALSE(best.is_valid());
}

TEST_F(OracleFixture, QueryAccountingAdvances) {
  Oracle oracle(net, {});
  EXPECT_EQ(oracle.query_count(), 0u);
  (void)oracle.rank(peers[0], all_but(peers[0]));
  (void)oracle.best(peers[1], all_but(peers[1]));
  EXPECT_EQ(oracle.query_count(), 2u);
  EXPECT_GT(oracle.ranked_candidates(), 0u);
}

TEST_F(OracleFixture, TieShufflingPreservesRankGroups) {
  // With shuffling on, repeated queries may reorder within a hop class but
  // never across classes.
  Oracle oracle(net, {});
  const PeerId querier = peers[1];
  for (int trial = 0; trial < 5; ++trial) {
    const auto ranked = oracle.rank(querier, all_but(querier));
    std::size_t last_hops = 0;
    for (const PeerId peer : ranked) {
      const std::size_t hops = oracle.as_hops(querier, peer);
      EXPECT_GE(hops, last_hops);
      last_hops = hops;
    }
  }
}

TEST_F(OracleFixture, DeterministicWithoutShuffle) {
  OracleConfig config;
  config.shuffle_ties = false;
  Oracle oracle(net, config);
  const auto first = oracle.rank(peers[0], all_but(peers[0]));
  const auto second = oracle.rank(peers[0], all_but(peers[0]));
  EXPECT_EQ(first, second);
}


TEST_F(OracleFixture, DishonestOracleInvertsRankings) {
  // §6 "ISP Internal Information": a malicious/self-interested oracle.
  OracleConfig config;
  config.dishonest_rate = 1.0;
  config.shuffle_ties = false;
  Oracle dishonest(net, config);
  const PeerId querier = peers[1];
  const auto ranked = dishonest.rank(querier, all_but(querier));
  ASSERT_FALSE(ranked.empty());
  // The worst candidate (max AS hops) now comes first.
  std::size_t max_hops = 0;
  for (const PeerId peer : ranked) {
    max_hops = std::max(max_hops, dishonest.as_hops(querier, peer));
  }
  EXPECT_EQ(dishonest.as_hops(querier, ranked.front()), max_hops);
  EXPECT_EQ(dishonest.as_hops(querier, ranked.back()), 0u);  // same AS last
}

TEST_F(OracleFixture, PartiallyDishonestOracleSometimesLies) {
  OracleConfig config;
  config.dishonest_rate = 0.5;
  Oracle sometimes(net, config);
  const PeerId querier = peers[2];
  int honest = 0, dishonest = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto ranked = sometimes.rank(querier, all_but(querier));
    if (sometimes.as_hops(querier, ranked.front()) == 0) {
      ++honest;
    } else {
      ++dishonest;
    }
  }
  EXPECT_GT(honest, 5);
  EXPECT_GT(dishonest, 5);
}

}  // namespace
}  // namespace uap2p::netinfo
