// uap2p::obs contract tests: registry semantics (interned handles, no-op
// unbound handles, stable addresses), deterministic merge in submission
// order, byte-deterministic JSON export, and the two trace sinks. Built
// as its own binary (uap2p_obs_tests, label "obs") so the asan preset can
// run exactly this suite without the counting operator new of
// alloc_probe.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace uap2p::obs {
namespace {

TEST(MetricsRegistry, CounterRegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter a = registry.counter("msgs");
  Counter b = registry.counter("msgs");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  EXPECT_EQ(registry.counter_count(), 1u);
}

TEST(MetricsRegistry, UnboundHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Stat stat;
  Histo histo;
  EXPECT_FALSE(counter.bound());
  counter.inc();
  counter.set(9);
  gauge.set(1.5);
  stat.add(2.0);
  histo.observe(3.0);
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsRegistry, HandlesSurviveFurtherRegistrations) {
  // Entries live in a ChunkedStore: registering hundreds more metrics must
  // not invalidate previously handed-out handles.
  MetricsRegistry registry;
  Counter first = registry.counter("first");
  first.inc();
  for (int i = 0; i < 500; ++i) {
    registry.counter("filler." + std::to_string(i)).inc();
  }
  first.inc();
  EXPECT_EQ(first.value(), 2u);
  EXPECT_EQ(registry.counter("first").value(), 2u);
}

TEST(MetricsRegistry, HandlesSurviveRegistryMove) {
  MetricsRegistry registry;
  Counter counter = registry.counter("moved");
  counter.inc(5);
  MetricsRegistry moved = std::move(registry);
  counter.inc(5);
  EXPECT_EQ(moved.counter("moved").value(), 10u);
}

TEST(MetricsRegistry, MergeSemanticsPerKind) {
  MetricsRegistry a;
  a.counter("c").inc(10);
  a.gauge("g").set(1.0);
  a.stat("s").add(1.0);
  a.stat("s").add(3.0);
  a.histogram("h", 0.0, 10.0, 5).observe(1.0);

  MetricsRegistry b;
  b.counter("c").inc(32);
  b.gauge("g").set(2.5);
  b.stat("s").add(5.0);
  b.histogram("h", 0.0, 10.0, 5).observe(9.0);
  b.counter("only_b").inc(1);

  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 42u);       // counters add
  EXPECT_EQ(a.counter("only_b").value(), 1u);   // new names registered
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"name\": \"g\", \"value\": 2.5"), std::string::npos)
      << "gauge merge must be last-set-wins:\n" << json;
  // Welford merge over {1,3} + {5}: count 3, mean 3.
  EXPECT_NE(json.find("\"name\": \"s\", \"count\": 3, \"mean\": 3"),
            std::string::npos)
      << json;
  // Histogram buckets add element-wise: 2 total.
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos) << json;
}

TEST(MetricsRegistry, MergeOfUnsetGaugeDoesNotClobber) {
  MetricsRegistry a;
  a.gauge("g").set(7.0);
  MetricsRegistry b;
  b.gauge("g");  // registered but never set
  a.merge(b);
  EXPECT_NE(a.to_json().find("\"name\": \"g\", \"value\": 7"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonIsByteDeterministic) {
  auto build = [] {
    MetricsRegistry registry;
    registry.counter("z").inc(3);
    registry.counter("a").inc(1);
    registry.gauge("mid").set(0.123456789012345);
    registry.stat("s").add(2.0);
    registry.histogram("h", 0.0, 1.0, 4).observe(0.6);
    return registry.to_json();
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  // Registration order, not name order, fixes entry order.
  EXPECT_LT(first.find("\"z\""), first.find("\"a\""));
}

TEST(MetricsRegistry, MergeOrderInvarianceForCommutativeKinds) {
  // Counters and histograms commute; merging the same per-trial registries
  // in the same (group, index) order from different "schedules" must give
  // identical bytes — the property the serial-vs-parallel bench gate
  // checks end to end.
  std::vector<MetricsRegistry> trials;
  for (int t = 0; t < 4; ++t) {
    MetricsRegistry registry;
    registry.counter("events").inc(std::uint64_t(t) * 17 + 1);
    registry.stat("latency").add(double(t) + 0.5);
    trials.push_back(std::move(registry));
  }
  MetricsRegistry merged_once;
  for (const MetricsRegistry& trial : trials) merged_once.merge(trial);
  MetricsRegistry merged_twice;
  for (const MetricsRegistry& trial : trials) merged_twice.merge(trial);
  EXPECT_EQ(merged_once.to_json(), merged_twice.to_json());
}

TEST(JsonlTraceSink, WritesOneParseableRecordPerLine) {
  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  {
    JsonlTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.record({1.5, TraceKind::kMsgSent, 3, 7, 100, 23.0});
    sink.record({2.5, TraceKind::kEventFired, -1, -1, 42, 0.0});
    EXPECT_EQ(sink.records_written(), 2u);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof line, file), nullptr);
  EXPECT_NE(std::string(line).find("\"kind\": \"msg_sent\""),
            std::string::npos);
  EXPECT_NE(std::string(line).find("\"t\": 1.5"), std::string::npos);
  ASSERT_NE(std::fgets(line, sizeof line, file), nullptr);
  EXPECT_NE(std::string(line).find("\"kind\": \"event_fired\""),
            std::string::npos);
  EXPECT_EQ(std::fgets(line, sizeof line, file), nullptr);
  std::fclose(file);
  std::remove(path.c_str());
}

TEST(RingTraceSink, KeepsTheLastCapacityRecordsInOrder) {
  RingTraceSink ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.record({double(i), TraceKind::kOverlay, i, -1, 0, 0.0});
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).a, std::int32_t(6 + i)) << "oldest-first order";
  }
}

TEST(TraceKindName, CoversEveryKind) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kEventScheduled),
               "event_scheduled");
  EXPECT_STREQ(trace_kind_name(TraceKind::kMsgDropped), "msg_dropped");
  EXPECT_STREQ(trace_kind_name(TraceKind::kChurnJoin), "churn_join");
  EXPECT_STREQ(trace_kind_name(TraceKind::kChurnLeave), "churn_leave");
}


TEST(TimeSeries, WindowAlignmentBySimTime) {
  MetricsRegistry registry;
  TimeSeries ts = registry.time_series("ts", 100.0);
  EXPECT_TRUE(ts.bound());
  EXPECT_EQ(ts.window_ms(), 100.0);
  ts.add_at(0.0, 1.0);
  ts.add_at(99.9, 2.0);    // same window as t=0
  ts.add_at(100.0, 5.0);   // exactly on the boundary -> window 1
  ts.add_at(250.0, 7.0);   // window 2
  ASSERT_EQ(ts.window_count(), 3u);
  EXPECT_EQ(ts.window_value(0), 3.0);
  EXPECT_EQ(ts.window_value(1), 5.0);
  EXPECT_EQ(ts.window_value(2), 7.0);
  EXPECT_EQ(registry.time_series_count(), 1u);
}

TEST(TimeSeries, RegistrationIsIdempotentAndUnboundIsNoOp) {
  MetricsRegistry registry;
  TimeSeries a = registry.time_series("ts", 50.0);
  TimeSeries b = registry.time_series("ts", 50.0);
  a.add_at(10.0, 2.0);
  b.add_at(20.0, 3.0);
  EXPECT_EQ(a.window_value(0), 5.0);
  EXPECT_EQ(registry.time_series_count(), 1u);
  TimeSeries unbound;
  EXPECT_FALSE(unbound.bound());
  unbound.add_at(0.0, 1.0);  // must not crash
  EXPECT_EQ(unbound.window_count(), 0u);
}

TEST(TimeSeries, SetWindowOverwritesForIdempotentExports) {
  // export_metrics-style producers re-set every window from their own
  // accumulators; calling export twice must not double anything.
  MetricsRegistry registry;
  TimeSeries ts = registry.time_series("ts", 100.0);
  ts.set_window(2, 8.0);  // extends with zero-filled gap windows
  ts.set_window(2, 9.0);
  ASSERT_EQ(ts.window_count(), 3u);
  EXPECT_EQ(ts.window_value(0), 0.0);
  EXPECT_EQ(ts.window_value(1), 0.0);
  EXPECT_EQ(ts.window_value(2), 9.0);
}

TEST(TimeSeries, MergeAddsElementwiseAndKeepsLongestLength) {
  MetricsRegistry a;
  TimeSeries sa = a.time_series("bytes", 100.0);
  sa.add_at(0.0, 1.0);
  sa.add_at(150.0, 2.0);  // a has 2 windows
  MetricsRegistry b;
  TimeSeries sb = b.time_series("bytes", 100.0);
  sb.add_at(50.0, 10.0);
  sb.add_at(420.0, 40.0);  // b has 5 windows
  a.merge(b);
  TimeSeries merged = a.time_series("bytes", 100.0);
  ASSERT_EQ(merged.window_count(), 5u);
  EXPECT_EQ(merged.window_value(0), 11.0);
  EXPECT_EQ(merged.window_value(1), 2.0);
  EXPECT_EQ(merged.window_value(2), 0.0);
  EXPECT_EQ(merged.window_value(4), 40.0);
}

TEST(TimeSeries, JsonCarriesExplicitWindowBounds) {
  MetricsRegistry registry;
  TimeSeries ts = registry.time_series("net.bytes", 250.0);
  ts.add_at(0.0, 3.0);
  ts.add_at(260.0, 4.0);  // partial second window still gets full bounds
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"time_series\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"net.bytes\", \"window_ms\": 250"),
            std::string::npos)
      << json;
  EXPECT_NE(
      json.find("{\"start\": 0, \"end\": 250, \"value\": 3}, "
                "{\"start\": 250, \"end\": 500, \"value\": 4}"),
      std::string::npos)
      << json;
  // Byte determinism extends to the new section.
  EXPECT_EQ(json, registry.to_json());
}

TEST(MetricsRegistry, HistogramJsonCarriesBucketBounds) {
  MetricsRegistry registry;
  Histo histo = registry.histogram("h", 0.0, 10.0, 5);
  histo.observe(1.0);
  histo.observe(9.5);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"bucket_width\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("{\"lo\": 0, \"hi\": 2, \"count\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"lo\": 8, \"hi\": 10, \"count\": 1}"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace uap2p::obs
