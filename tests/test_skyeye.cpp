#include "netinfo/skyeye.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace uap2p::netinfo {
namespace {

struct SkyEyeFixture : ::testing::Test {
  sim::Engine engine;
  underlay::AsTopology topo = underlay::AsTopology::mesh(5, 0.4);
  underlay::Network net{engine, topo, 17};
  std::vector<PeerId> peers = net.populate(30);
};

TEST_F(SkyEyeFixture, TreeParentStructure) {
  SkyEyeConfig config;
  config.branching = 3;
  SkyEye skyeye(net, peers, config);
  EXPECT_FALSE(skyeye.parent_index(0).has_value());
  EXPECT_EQ(skyeye.parent_index(1).value(), 0u);
  EXPECT_EQ(skyeye.parent_index(3).value(), 0u);
  EXPECT_EQ(skyeye.parent_index(4).value(), 1u);
  EXPECT_EQ(skyeye.parent_index(12).value(), 3u);
  EXPECT_EQ(skyeye.tree_size(), 30u);
  EXPECT_EQ(skyeye.root(), peers[0]);
}

TEST_F(SkyEyeFixture, RootViewEmptyBeforeStart) {
  SkyEye skyeye(net, peers, {});
  EXPECT_EQ(skyeye.root_view().peer_count, 0u);
}

TEST_F(SkyEyeFixture, AggregationCoversWholePopulation) {
  SkyEyeConfig config;
  config.branching = 4;
  config.update_period_ms = sim::seconds(10);
  SkyEye skyeye(net, peers, config);
  skyeye.start();
  // Depth of a 30-node 4-ary tree is 3; a handful of periods suffices for
  // reports to propagate leaf -> root.
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  EXPECT_EQ(skyeye.root_view().peer_count, peers.size());
  EXPECT_GT(skyeye.reports_sent(), 0u);
}

TEST_F(SkyEyeFixture, AggregateTotalsMatchGroundTruth) {
  SkyEyeConfig config;
  config.update_period_ms = sim::seconds(10);
  SkyEye skyeye(net, peers, config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  double expected_upload = 0.0;
  for (const PeerId peer : peers) {
    expected_upload += net.host(peer).resources.upload_mbps;
  }
  EXPECT_NEAR(skyeye.root_view().total_upload_mbps, expected_upload, 1e-6);
}

TEST_F(SkyEyeFixture, TopCapacityIsActuallyTheTop) {
  SkyEyeConfig config;
  config.top_k = 8;
  config.update_period_ms = sim::seconds(10);
  SkyEye skyeye(net, peers, config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  const auto top = skyeye.query_top_capacity(3);
  ASSERT_EQ(top.size(), 3u);
  // Compare against brute-force ground truth.
  std::vector<double> all;
  for (const PeerId peer : peers) {
    all.push_back(net.host(peer).resources.capacity_score());
  }
  std::sort(all.rbegin(), all.rend());
  EXPECT_NEAR(top[0].capacity, all[0], 1e-9);
  EXPECT_NEAR(top[1].capacity, all[1], 1e-9);
  EXPECT_NEAR(top[2].capacity, all[2], 1e-9);
  // Descending order.
  EXPECT_GE(top[0].capacity, top[1].capacity);
  EXPECT_GE(top[1].capacity, top[2].capacity);
}

TEST_F(SkyEyeFixture, ReportsCostMeasurableTraffic) {
  SkyEye skyeye(net, peers, {});
  const auto before = net.traffic().total_bytes();
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  EXPECT_GT(net.traffic().total_bytes(), before);
}

TEST_F(SkyEyeFixture, OfflineSubtreeAgesOut) {
  SkyEyeConfig config;
  config.update_period_ms = sim::seconds(10);
  config.staleness_limit_ms = sim::seconds(30);
  SkyEye skyeye(net, peers, config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  ASSERT_EQ(skyeye.root_view().peer_count, peers.size());
  // Knock out an entire first-level subtree (index 1 and descendants).
  for (std::size_t i = 1; i < peers.size(); i += 1) {
    std::size_t walk = i;
    bool under_one = false;
    while (walk != 0) {
      if (walk == 1) { under_one = true; break; }
      walk = skyeye.parent_index(walk).value();
    }
    if (under_one || i == 1) net.set_online(peers[i], false);
  }
  engine.run_until(engine.now() + sim::minutes(2));
  skyeye.stop();
  EXPECT_LT(skyeye.root_view().peer_count, peers.size());
  EXPECT_GT(skyeye.root_view().peer_count, 0u);
}

TEST_F(SkyEyeFixture, QueryFiltersOfflinePeers) {
  SkyEyeConfig config;
  config.update_period_ms = sim::seconds(10);
  SkyEye skyeye(net, peers, config);
  skyeye.start();
  engine.run_until(sim::minutes(2));
  skyeye.stop();
  const auto top_before = skyeye.query_top_capacity(1);
  ASSERT_FALSE(top_before.empty());
  net.set_online(top_before[0].peer, false);
  const auto top_after = skyeye.query_top_capacity(1);
  if (!top_after.empty()) {
    EXPECT_NE(top_after[0].peer, top_before[0].peer);
  }
}

TEST(SkyEyeMerge, MergeViewsAggregates) {
  SystemView a, b;
  a.peer_count = 2;
  a.mean_capacity = 4.0;
  a.total_upload_mbps = 10.0;
  a.top_capacity = {{PeerId(0), 5.0}, {PeerId(1), 3.0}};
  b.peer_count = 1;
  b.mean_capacity = 1.0;
  b.total_upload_mbps = 2.0;
  b.top_capacity = {{PeerId(2), 1.0}};
  merge_views(a, b, 2);
  EXPECT_EQ(a.peer_count, 3u);
  EXPECT_DOUBLE_EQ(a.total_upload_mbps, 12.0);
  EXPECT_NEAR(a.mean_capacity, 3.0, 1e-9);
  ASSERT_EQ(a.top_capacity.size(), 2u);  // capped at top_k
  EXPECT_EQ(a.top_capacity[0].peer, PeerId(0));
}

TEST(SkyEyeMerge, MergeWithEmptyIsNoop) {
  SystemView a, empty;
  a.peer_count = 1;
  a.mean_capacity = 2.0;
  merge_views(a, empty, 4);
  EXPECT_EQ(a.peer_count, 1u);
  EXPECT_DOUBLE_EQ(a.mean_capacity, 2.0);
}

}  // namespace
}  // namespace uap2p::netinfo
