// Locks the ICS implementation to the worked examples of Lim et al. [20]
// as reprinted in the survey (Figure 4 sidebar, Examples 4 and 5): four
// beacon nodes in two ASes with intra-AS RTT 1 and inter-AS RTT 3.
#include "netinfo/ics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace uap2p::netinfo {
namespace {

/// The Example 1/4 beacon distance matrix: hosts 1,2 in one AS, 3,4 in
/// another; intra-AS distance 1, inter-AS distance 3.
Matrix example_matrix() {
  Matrix d(4, 4);
  const double values[4][4] = {{0, 1, 3, 3},
                               {1, 0, 3, 3},
                               {3, 3, 0, 1},
                               {3, 3, 1, 0}};
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) d(r, c) = values[r][c];
  return d;
}

IcsModel example_model_n2() {
  IcsConfig config;
  config.min_dimensions = 2;
  config.max_dimensions = 2;  // the paper's n = 2 case
  return IcsModel::build(example_matrix(), config);
}

TEST(IcsPaperExample4, ScaleFactorIsExactly0p6) {
  // "By Eq. (11), the scaling factor alpha is 0.6."
  const IcsModel model = example_model_n2();
  EXPECT_EQ(model.dimensions(), 2u);
  EXPECT_NEAR(model.scale(), 0.6, 1e-9);
}

TEST(IcsPaperExample4, BeaconCoordinatesMatchUpToSign) {
  // c̄1 = c̄2 = [-2.1, 1.5], c̄3 = c̄4 = [-2.1, -1.5]. Eigenvector signs
  // are arbitrary, so compare coordinates component-wise by magnitude and
  // the full pairwise distance structure exactly.
  const IcsModel model = example_model_n2();
  const auto& c1 = model.beacon_coordinate(0);
  const auto& c2 = model.beacon_coordinate(1);
  const auto& c3 = model.beacon_coordinate(2);
  const auto& c4 = model.beacon_coordinate(3);
  ASSERT_EQ(c1.size(), 2u);
  EXPECT_NEAR(std::abs(c1[0]), 2.1, 1e-9);
  EXPECT_NEAR(std::abs(c1[1]), 1.5, 1e-9);
  EXPECT_NEAR(l2_distance(c1, c2), 0.0, 1e-9);
  EXPECT_NEAR(l2_distance(c3, c4), 0.0, 1e-9);
}

TEST(IcsPaperExample4, InterAsEmbeddedDistanceIsExactly3) {
  // "The distances between two hosts in different ASs is exactly 3."
  const IcsModel model = example_model_n2();
  for (const auto& [i, j] : {std::pair{0, 2}, {0, 3}, {1, 2}, {1, 3}}) {
    EXPECT_NEAR(l2_distance(model.beacon_coordinate(i),
                            model.beacon_coordinate(j)),
                3.0, 1e-9);
  }
}

TEST(IcsPaperExample4, FourDimensionalCase) {
  // "When n = 4, alpha = 0.5927, L2(c̄1, c̄2) = L2(c̄3, c̄4) = 0.8383, and
  //  L2(c̄1, c̄3) = ... = 3.0224."
  IcsConfig config;
  config.min_dimensions = 4;
  config.max_dimensions = 4;
  const IcsModel model = IcsModel::build(example_matrix(), config);
  EXPECT_EQ(model.dimensions(), 4u);
  EXPECT_NEAR(model.scale(), 0.5927, 5e-5);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(0),
                          model.beacon_coordinate(1)),
              0.8383, 5e-5);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(2),
                          model.beacon_coordinate(3)),
              0.8383, 5e-5);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(0),
                          model.beacon_coordinate(2)),
              3.0224, 5e-5);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(1),
                          model.beacon_coordinate(3)),
              3.0224, 5e-5);
}

TEST(IcsPaperExample5, HostAEmbedding) {
  // Host A measures l_a = [1, 1, 4, 4]: x_a = [-3, 1.8] (up to sign), and
  // estimated distances 0.94 to beacons 1/2 and 3.42 to beacons 3/4.
  const IcsModel model = example_model_n2();
  const auto xa = model.embed({1.0, 1.0, 4.0, 4.0});
  ASSERT_EQ(xa.size(), 2u);
  EXPECT_NEAR(std::abs(xa[0]), 3.0, 1e-9);
  EXPECT_NEAR(std::abs(xa[1]), 1.8, 1e-9);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(0), xa), 0.9487, 5e-4);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(1), xa), 0.9487, 5e-4);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(2), xa), 3.4205, 5e-4);
  EXPECT_NEAR(l2_distance(model.beacon_coordinate(3), xa), 3.4205, 5e-4);
}

TEST(IcsPaperExample5, HostBFarFromAllBeacons) {
  // Host B: l_b = [10, 10, 10, 10] -> x_b = [-12, 0];
  // L2(c̄i, x_b) = 10.01 for all beacons.
  const IcsModel model = example_model_n2();
  const auto xb = model.embed({10.0, 10.0, 10.0, 10.0});
  EXPECT_NEAR(std::abs(xb[0]), 12.0, 1e-9);
  EXPECT_NEAR(std::abs(xb[1]), 0.0, 1e-9);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(l2_distance(model.beacon_coordinate(i), xb), 10.01, 5e-3);
  }
}

TEST(Ics, DimensionSelectionByVariation) {
  // With the example matrix, singular values are 7, 5, 1, 1, so squared
  // variation is 49, 25, 1, 1: two components cover 74/76 = 97.4%.
  IcsConfig config;
  config.variation_threshold = 0.95;
  config.min_dimensions = 1;
  const IcsModel model = IcsModel::build(example_matrix(), config);
  EXPECT_EQ(model.dimensions(), 2u);
  EXPECT_NEAR(model.variation_covered(), 74.0 / 76.0, 1e-9);
}

TEST(Ics, HandlesAsymmetricInputBySymmetrizing) {
  Matrix d = example_matrix();
  d(0, 1) = 1.2;  // asymmetric measurement (the paper's §6 challenge)
  d(1, 0) = 0.8;
  IcsConfig config;
  config.min_dimensions = 2;
  config.max_dimensions = 2;
  const IcsModel model = IcsModel::build(d, config);
  // Symmetrized back to 1.0, so the example numbers still hold.
  EXPECT_NEAR(model.scale(), 0.6, 1e-9);
}

TEST(Ics, PerfectEmbeddingForEuclideanBeacons) {
  // Beacons placed on a line at 0, 10, 20, 30, 40: RTT matrix is exactly
  // Euclidean. Estimates between embedded hosts must correlate strongly
  // with true distances (PCA on a distance matrix is not exact MDS, so we
  // check rank order, not equality).
  const std::size_t m = 5;
  Matrix d(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j)
      d(i, j) = std::abs(double(i) - double(j)) * 10.0;
  IcsConfig config;
  const IcsModel model = IcsModel::build(d, config);
  // Adjacent beacons must embed closer than distant ones.
  const double near = l2_distance(model.beacon_coordinate(0),
                                  model.beacon_coordinate(1));
  const double far = l2_distance(model.beacon_coordinate(0),
                                 model.beacon_coordinate(4));
  EXPECT_LT(near, far);
}

TEST(Ics, EmbedRejectsNothingAndIsLinear) {
  const IcsModel model = example_model_n2();
  const auto x1 = model.embed({1, 2, 3, 4});
  const auto x2 = model.embed({2, 4, 6, 8});
  for (std::size_t k = 0; k < x1.size(); ++k) {
    EXPECT_NEAR(x2[k], 2.0 * x1[k], 1e-9);
  }
}

}  // namespace
}  // namespace uap2p::netinfo
