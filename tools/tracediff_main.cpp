// uap2p_tracediff — structural regression diff of two --trace JSONL files
// from the same seed (see src/obs/diff.hpp for the tolerance rules).
//
// Usage: uap2p_tracediff [--context=K] [--strict-tags] a.jsonl b.jsonl
//
// Exit codes: 0 identical (same-t reordering tolerated), 1 diverged
// (stderr names the first divergent record's sim-time, kind, and node),
// 2 usage or I/O error. The tracediff-self-check CTest gate asserts both
// directions: identical seed -> exit 0 and empty output; perturbed seed
// -> exit 1 with a "first divergence at t=..." report.
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/diff.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--context=K] [--strict-tags] <a.jsonl> <b.jsonl>\n"
               "  --context=K     records of context around the divergence "
               "(default 3)\n"
               "  --strict-tags   also compare engine-internal event tags\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uap2p::obs::DiffOptions options;
  std::string paths[2];
  int path_count = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--context=", 10) == 0) {
      options.context = static_cast<std::size_t>(std::strtoul(
          arg + 10, nullptr, 10));
    } else if (std::strcmp(arg, "--strict-tags") == 0) {
      options.mask_event_tags = false;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (path_count < 2) {
      paths[path_count++] = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path_count != 2) return usage(argv[0]);

  const uap2p::obs::DiffResult result =
      uap2p::obs::diff_traces(paths[0], paths[1], options);
  switch (result.outcome) {
    case uap2p::obs::DiffResult::Outcome::kIdentical:
      if (result.a_truncated || result.b_truncated) {
        std::fprintf(stderr,
                     "note: %s%s%s ended with a truncated record; compared "
                     "up to the truncation\n",
                     result.a_truncated ? "A" : "",
                     result.a_truncated && result.b_truncated ? " and " : "",
                     result.b_truncated ? "B" : "");
      }
      return 0;
    case uap2p::obs::DiffResult::Outcome::kDiverged:
      std::fprintf(stderr, "%s", result.message.c_str());
      return 1;
    case uap2p::obs::DiffResult::Outcome::kError:
      std::fprintf(stderr, "error: %s\n", result.message.c_str());
      return 2;
  }
  return 2;
}
