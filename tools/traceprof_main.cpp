// uap2p_traceprof — folded-stack engine event profile from a --trace
// JSONL file (see src/obs/prof.hpp). stdout is flamegraph.pl-ready:
//
//   bench_table1_gnutella --trace=t.jsonl
//   uap2p_traceprof t.jsonl > folded.txt && flamegraph.pl folded.txt
//
// Usage: uap2p_traceprof [--summary] [--self-check] <trace.jsonl>
//   --summary     also print a per-origin percentage table to stderr
//   --self-check  verify the fold's invariants (non-empty, positive
//                 weights, percentages summing to ~100) and report; the
//                 traceprof-smoke CTest gate runs this mode
//
// Exit codes: 0 ok, 1 empty profile or failed self-check, 2 usage/I/O.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/prof.hpp"

int main(int argc, char** argv) {
  bool summary = false;
  bool self_check = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--summary") == 0) {
      summary = true;
    } else if (std::strcmp(arg, "--self-check") == 0) {
      self_check = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--summary] [--self-check] <trace.jsonl>\n",
                   argv[0]);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--summary] [--self-check] <trace.jsonl>\n",
                 argv[0]);
    return 2;
  }

  uap2p::obs::TraceProfile profile;
  std::string error;
  if (!uap2p::obs::profile_trace(path, profile, error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }

  uap2p::obs::write_folded(profile, stdout);
  if (summary || self_check) {
    uap2p::obs::write_summary(profile, stderr);
  }

  if (profile.entries.empty()) {
    std::fprintf(stderr,
                 "error: no engine event records in %s — was the trace "
                 "recorded with the engine's sink attached?\n",
                 path.c_str());
    return 1;
  }
  if (self_check) {
    double percent_sum = 0.0;
    bool weights_ok = true;
    for (std::size_t i = 0; i < profile.entries.size(); ++i) {
      percent_sum += profile.percent(i);
      weights_ok = weights_ok && profile.entries[i].weight > 0;
    }
    const bool sum_ok = std::fabs(percent_sum - 100.0) < 0.5;
    if (!weights_ok || !sum_ok) {
      std::fprintf(stderr,
                   "self-check FAILED: weights_ok=%d percent_sum=%.4f\n",
                   weights_ok ? 1 : 0, percent_sum);
      return 1;
    }
    std::fprintf(stderr, "self-check ok: %zu stacks, percentages sum to "
                 "%.2f%%\n",
                 profile.entries.size(), percent_sum);
  }
  return 0;
}
