// uap2p_oracled — the oracle query service as a command-line daemon
// harness (src/oracle/service.hpp, DESIGN.md "Oracle service").
//
//   uap2p_oracled gen-requests --out=FILE --requests=N [--candidates=K]
//                 [--peers=N] [--seed=S] [topology flags]
//   uap2p_oracled serve --requests=FILE --out=FILE [--workers=N]
//                 [--ring=N] [--batch=N] [--swap-every=N] [topology flags]
//
// Topology flags match uap2p_snapshot (defaults in brackets):
//   --generator=transit-stub|mesh|ring|star|tree   [transit-stub]
//   --topo-seed=N [1]  --routers-per-as=N [3]
//   --transit=N [3] --stubs=N [5] --peering=P [0.3]
//   --ases=N [60] --edge-prob=P [0.1] --branching=N [2]
//
// `gen-requests` writes a deterministic request file (splitmix64 over
// --seed; no std::random distribution, so the bytes are identical on any
// platform). `serve` warms a SharedRouting for the same topology, starts
// an OracleService, pushes every request through the worker pool, and
// writes one line of ranked peer ids per request in input order. Ranking
// is a pure function of (snapshot, request), so the output is
// byte-identical for any --workers value — and for any --swap-every
// cadence, which republishes an identically-built snapshot mid-serve to
// exercise the swap path. The oracled-smoke CTest gate byte-diffs both
// against a committed golden.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "oracle/service.hpp"
#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

using namespace uap2p;
using namespace uap2p::underlay;
using namespace uap2p::oracled;

namespace {

struct Args {
  std::string command;
  std::string out;
  std::string requests_file;
  std::size_t requests = 256;
  std::size_t candidates = 8;
  std::size_t peers = 4096;
  std::uint64_t seed = 42;
  std::size_t workers = 2;
  std::size_t ring = 1024;
  std::size_t batch = 64;
  std::size_t swap_every = 0;
  // Topology flags (uap2p_snapshot's vocabulary).
  std::string generator = "transit-stub";
  std::uint64_t topo_seed = 1;
  std::size_t routers_per_as = 3;
  std::size_t transit = 3;
  std::size_t stubs = 5;
  double peering = 0.3;
  std::size_t ases = 60;
  double edge_prob = 0.1;
  std::size_t branching = 2;
};

bool parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto value = [&](std::string_view prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? argv[i] + prefix.size() : nullptr;
    };
    if (const char* v = value("--out=")) args.out = v;
    else if (const char* v = value("--requests=")) {
      // gen-requests counts; serve takes a file path.
      if (args.command == "serve") args.requests_file = v;
      else args.requests = std::strtoull(v, nullptr, 10);
    }
    else if (const char* v = value("--candidates=")) args.candidates = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--peers=")) args.peers = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--seed=")) args.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--workers=")) args.workers = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--ring=")) args.ring = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--batch=")) args.batch = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--swap-every=")) args.swap_every = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--generator=")) args.generator = v;
    else if (const char* v = value("--topo-seed=")) args.topo_seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--routers-per-as=")) args.routers_per_as = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--transit=")) args.transit = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--stubs=")) args.stubs = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--peering=")) args.peering = std::strtod(v, nullptr);
    else if (const char* v = value("--ases=")) args.ases = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--edge-prob=")) args.edge_prob = std::strtod(v, nullptr);
    else if (const char* v = value("--branching=")) args.branching = std::strtoull(v, nullptr, 10);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return args.command == "gen-requests" || args.command == "serve";
}

AsTopology make_topology(const Args& args) {
  TopologyConfig config;
  config.seed = args.topo_seed;
  config.routers_per_as = args.routers_per_as;
  if (args.generator == "transit-stub") {
    return AsTopology::transit_stub(args.transit, args.stubs, args.peering,
                                    config);
  }
  if (args.generator == "mesh") {
    return AsTopology::mesh(args.ases, args.edge_prob, config);
  }
  if (args.generator == "ring") return AsTopology::ring(args.ases, config);
  if (args.generator == "star") return AsTopology::star(args.ases, config);
  if (args.generator == "tree") {
    return AsTopology::tree(args.ases, args.branching, config);
  }
  std::fprintf(stderr, "unknown generator: %s\n", args.generator.c_str());
  std::exit(2);
}

/// Platform-stable generator for the request fixture (std:: distributions
/// are not byte-stable across standard libraries).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int cmd_gen_requests(const Args& args) {
  const AsTopology topo = make_topology(args);
  const std::uint64_t routers = topo.router_count();
  std::FILE* out = std::fopen(args.out.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    return 1;
  }
  std::fprintf(out, "# uap2p_oracled requests v1\n");
  std::uint64_t state = args.seed;
  for (std::size_t r = 0; r < args.requests; ++r) {
    const std::uint64_t client = splitmix64(state) % routers;
    std::fprintf(out, "%llu %zu", (unsigned long long)client, args.candidates);
    for (std::size_t c = 0; c < args.candidates; ++c) {
      const std::uint64_t peer = splitmix64(state) % args.peers;
      const std::uint64_t router = splitmix64(state) % routers;
      std::fprintf(out, " %llu:%llu", (unsigned long long)peer,
                   (unsigned long long)router);
    }
    std::fputc('\n', out);
  }
  std::fclose(out);
  std::printf("wrote %zu requests (%zu candidates each, %llu routers) to %s\n",
              args.requests, args.candidates, (unsigned long long)routers,
              args.out.c_str());
  return 0;
}

struct ParsedRequests {
  // RankRequest carries an atomic (not movable), so the arena is a fixed
  // array sized once after parsing.
  std::unique_ptr<RankRequest[]> requests;
  std::size_t count = 0;
  std::vector<Candidate> candidates;  ///< One arena; requests point into it.
  std::vector<std::uint32_t> ranked;  ///< Output arena.
};

bool load_requests(const std::string& path, ParsedRequests& parsed) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  struct Raw {
    std::uint32_t client;
    std::size_t first;
    std::uint32_t count;
  };
  std::vector<Raw> raw;
  char line[1 << 16];
  while (std::fgets(line, sizeof line, in) != nullptr) {
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    char* cursor = line;
    const unsigned long long client = std::strtoull(cursor, &cursor, 10);
    const unsigned long long count = std::strtoull(cursor, &cursor, 10);
    Raw r{std::uint32_t(client), parsed.candidates.size(), std::uint32_t(count)};
    for (unsigned long long c = 0; c < count; ++c) {
      const unsigned long long peer = std::strtoull(cursor, &cursor, 10);
      if (*cursor != ':') {
        std::fprintf(stderr, "malformed request line: %s", line);
        std::fclose(in);
        return false;
      }
      ++cursor;
      const unsigned long long router = std::strtoull(cursor, &cursor, 10);
      parsed.candidates.push_back(
          Candidate{std::uint32_t(peer), std::uint32_t(router)});
    }
    raw.push_back(r);
  }
  std::fclose(in);
  // The candidate arena is final; now the pointers are stable.
  parsed.ranked.assign(parsed.candidates.size(), 0);
  parsed.count = raw.size();
  parsed.requests = std::make_unique<RankRequest[]>(parsed.count);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    RankRequest& req = parsed.requests[i];
    req.client_router = raw[i].client;
    req.candidate_count = raw[i].count;
    req.candidates = parsed.candidates.data() + raw[i].first;
    req.ranked = parsed.ranked.data() + raw[i].first;
  }
  return true;
}

int cmd_serve(const Args& args) {
  if (args.requests_file.empty()) {
    std::fprintf(stderr, "serve needs --requests=FILE\n");
    return 2;
  }
  ParsedRequests parsed;
  if (!load_requests(args.requests_file, parsed)) return 1;

  const AsTopology topo = make_topology(args);
  auto snapshot = SharedRouting::build(topo, /*threads=*/0);
  // A second, identically-built snapshot lets --swap-every exercise the
  // publication path on every cadence tick without mid-serve warm-up cost;
  // the ranked output must stay byte-identical through every swap.
  std::shared_ptr<const SharedRouting> alternate;
  if (args.swap_every != 0) {
    alternate = SharedRouting::build(make_topology(args), /*threads=*/0);
  }

  ServiceConfig config;
  config.workers = args.workers;
  config.ring_capacity = args.ring;
  config.max_batch = args.batch;
  OracleService service(snapshot, config);

  std::size_t swaps = 0;
  for (std::size_t i = 0; i < parsed.count; ++i) {
    RankRequest* req = &parsed.requests[i];
    while (!service.submit(req)) {
      // Ring full (tiny --ring values): the service is draining; retry.
      std::this_thread::yield();
    }
    if (args.swap_every != 0 && (i + 1) % args.swap_every == 0) {
      service.publish((++swaps % 2 != 0) ? alternate : snapshot);
    }
  }
  for (std::size_t i = 0; i < parsed.count; ++i) {
    wait_terminal(parsed.requests[i]);
  }
  service.stop();

  std::FILE* out = std::fopen(args.out.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < parsed.count; ++i) {
    const RankRequest& req = parsed.requests[i];
    if (req.state.load(std::memory_order_acquire) != RequestState::kDone) {
      std::fprintf(out, "SHED\n");
      continue;
    }
    for (std::uint32_t i = 0; i < req.candidate_count; ++i) {
      std::fprintf(out, i == 0 ? "%u" : " %u", req.ranked[i]);
    }
    std::fputc('\n', out);
  }
  std::fclose(out);
  std::fprintf(stderr,
               "served %zu requests (%llu completed, %llu shed, %llu swaps "
               "observed) with %zu workers\n",
               parsed.count,
               (unsigned long long)service.completed(),
               (unsigned long long)(service.shed_admission() +
                                    service.shed_deadline()),
               (unsigned long long)service.swaps_observed(), args.workers);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: uap2p_oracled <gen-requests|serve> --out=FILE "
                 "[--requests=N|FILE] [service/topology flags]\n");
    return 2;
  }
  if (args.out.empty()) {
    std::fprintf(stderr, "missing --out=\n");
    return 2;
  }
  if (args.command == "gen-requests") return cmd_gen_requests(args);
  return cmd_serve(args);
}
