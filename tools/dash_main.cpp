// uap2p_dash: cost-observatory dashboard renderer.
//
//   uap2p_dash --out=<dir> [--title=<text>] [--top-k=<n>]
//              <metrics1.json> [metrics2.json ...]
//
// Reads one or more --metrics snapshots (schema_version >= 2, in order —
// snapshots are cumulative, so a --metrics-every sequence ends with the
// most complete one) and writes <dir>/dash.html (self-contained HTML/SVG
// dashboard) plus <dir>/dash.json (machine-readable). Output is
// deterministic: same inputs, same bytes (CI relies on this).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/dash.hpp"
#include "obs/json.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: uap2p_dash --out=<dir> [--title=<text>] "
               "[--top-k=<n>] <metrics.json> [more.json ...]\n");
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  uap2p::obs::dash::Options options;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(6);
    } else if (arg.rfind("--title=", 0) == 0) {
      options.title = arg.substr(8);
    } else if (arg.rfind("--top-k=", 0) == 0) {
      const long k = std::strtol(arg.c_str() + 8, nullptr, 10);
      if (k <= 0) return usage();
      options.heatmap_axis_cap = static_cast<std::size_t>(k);
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_dir.empty() || inputs.empty()) return usage();

  std::vector<std::string> texts;
  texts.reserve(inputs.size());
  std::string error;
  for (const std::string& path : inputs) {
    std::string text;
    if (!uap2p::obs::json::read_file(path, text, &error)) {
      std::fprintf(stderr, "uap2p_dash: %s\n", error.c_str());
      return 1;
    }
    texts.push_back(std::move(text));
  }

  uap2p::obs::dash::Output output;
  if (!uap2p::obs::dash::render(texts, options, output, &error)) {
    std::fprintf(stderr, "uap2p_dash: %s\n", error.c_str());
    return 1;
  }
  const std::string html_path = out_dir + "/dash.html";
  const std::string json_path = out_dir + "/dash.json";
  if (!write_file(html_path, output.html) ||
      !write_file(json_path, output.json)) {
    std::fprintf(stderr, "uap2p_dash: cannot write into %s\n",
                 out_dir.c_str());
    return 1;
  }
  std::printf("uap2p_dash: wrote %s and %s (%zu snapshot(s))\n",
              html_path.c_str(), json_path.c_str(), texts.size());
  return 0;
}
