// uap2p_snapshot — write / inspect / verify persistent warmed-routing
// snapshots (underlay/snapshot.hpp, DESIGN.md "Snapshot format").
//
//   uap2p_snapshot write  --out=FILE  [topology flags]
//   uap2p_snapshot info   --file=FILE
//   uap2p_snapshot verify --file=FILE [topology flags]
//
// Topology flags (defaults in brackets):
//   --generator=transit-stub|mesh|ring|star|tree   [transit-stub]
//   --seed=N [1]  --routers-per-as=N [3]
//   --transit=N [3] --stubs=N [5] --peering=P [0.3]   (transit-stub)
//   --ases=N [60] --edge-prob=P [0.1]                 (mesh/ring/star/tree)
//   --branching=N [2]                                 (tree)
//
// `write` generates the topology, batch-warms all-pairs routing (via the
// hierarchical path, landmarks included), and serializes it. `info` dumps
// the header, section table, and recomputed
// checksums. `verify` regenerates the topology from the flags, recomputes
// the full warm-up from scratch, and byte-compares every per-source row
// against the snapshot — the strong form of the round-trip guarantee the
// snapshot-roundtrip CTest gate relies on.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "underlay/routing.hpp"
#include "underlay/snapshot.hpp"
#include "underlay/topology.hpp"

using namespace uap2p;
using namespace uap2p::underlay;

namespace {

struct Args {
  std::string command;
  std::string file;
  std::string generator = "transit-stub";
  std::uint64_t seed = 1;
  std::size_t routers_per_as = 3;
  std::size_t transit = 3;
  std::size_t stubs = 5;
  double peering = 0.3;
  std::size_t ases = 60;
  double edge_prob = 0.1;
  std::size_t branching = 2;
};

bool parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto value = [&](std::string_view prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? argv[i] + prefix.size() : nullptr;
    };
    if (const char* v = value("--out=")) args.file = v;
    else if (const char* v = value("--file=")) args.file = v;
    else if (const char* v = value("--generator=")) args.generator = v;
    else if (const char* v = value("--seed=")) args.seed = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--routers-per-as=")) args.routers_per_as = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--transit=")) args.transit = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--stubs=")) args.stubs = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--peering=")) args.peering = std::strtod(v, nullptr);
    else if (const char* v = value("--ases=")) args.ases = std::strtoull(v, nullptr, 10);
    else if (const char* v = value("--edge-prob=")) args.edge_prob = std::strtod(v, nullptr);
    else if (const char* v = value("--branching=")) args.branching = std::strtoull(v, nullptr, 10);
    else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return args.command == "write" || args.command == "info" ||
         args.command == "verify";
}

AsTopology make_topology(const Args& args) {
  TopologyConfig config;
  config.seed = args.seed;
  config.routers_per_as = args.routers_per_as;
  if (args.generator == "transit-stub") {
    return AsTopology::transit_stub(args.transit, args.stubs, args.peering,
                                    config);
  }
  if (args.generator == "mesh") {
    return AsTopology::mesh(args.ases, args.edge_prob, config);
  }
  if (args.generator == "ring") return AsTopology::ring(args.ases, config);
  if (args.generator == "star") return AsTopology::star(args.ases, config);
  if (args.generator == "tree") {
    return AsTopology::tree(args.ases, args.branching, config);
  }
  std::fprintf(stderr, "unknown generator: %s\n", args.generator.c_str());
  std::exit(2);
}

int cmd_write(const Args& args) {
  const AsTopology topo = make_topology(args);
  RoutingTable table(topo);
  // Hierarchical warm (byte-identical to warm_all; `verify` recomputes
  // the flat warm and diffs, so the claim is checked end to end) plus the
  // ALT landmark tables, so the file carries the v2 sections and a load
  // skips the landmark Dijkstras too.
  table.warm_all_hierarchical();
  table.ensure_landmarks();
  std::string error;
  if (!snapshot::write(topo, table, args.file, &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu ASes, %zu routers, %zu links, %zu row bytes\n",
              args.file.c_str(), topo.as_count(), topo.router_count(),
              topo.link_count(), table.row_bytes());
  return 0;
}

int cmd_info(const Args& args) {
  std::string error;
  const auto info = snapshot::inspect(args.file, &error);
  if (!info.has_value()) {
    std::fprintf(stderr, "inspect failed: %s\n", error.c_str());
    return 1;
  }
  const snapshot::Header& h = info->header;
  std::printf("snapshot %s\n", args.file.c_str());
  std::printf("  magic           0x%016" PRIx64 "\n", h.magic);
  std::printf("  format version  %u\n", h.version);
  std::printf("  routers         %" PRIu64 "\n", h.router_count);
  std::printf("  directed edges  %" PRIu64 "\n", h.edge_count);
  std::printf("  as-path pairs   %" PRIu64 "\n", h.pair_count);
  std::printf("  max edge weight %.6f ms\n", h.max_weight);
  std::printf("  content hash    0x%016" PRIx64 "\n", h.content_hash);
  std::printf("  header hash     0x%016" PRIx64 "\n", h.header_hash);
  std::printf("  sections        %u\n", h.section_count);
  for (const snapshot::SectionInfo& s : info->sections) {
    std::printf("    %-14s offset %10" PRIu64 "  %12" PRIu64
                " bytes  hash 0x%016" PRIx64 " %s\n",
                snapshot::to_string(static_cast<snapshot::SectionId>(s.record.id)),
                s.record.offset, s.record.size, s.record.hash,
                s.hash_ok ? "ok" : "MISMATCH");
  }
  std::printf("  checksums       %s\n", info->checksums_ok ? "ok" : "MISMATCH");
  return info->checksums_ok ? 0 : 1;
}

int cmd_verify(const Args& args) {
  std::string error;
  const auto snap = snapshot::MappedSnapshot::open(
      args.file, &error, snapshot::MappedSnapshot::Verify::kAlways);
  if (snap == nullptr) {
    std::fprintf(stderr, "verify failed: %s\n", error.c_str());
    return 1;
  }
  const AsTopology topo = make_topology(args);
  RoutingTable fresh(topo);
  if (!snapshot::attach(*snap, topo, fresh, &error)) {
    // attach only compares the CSR; a mismatch means the flags describe a
    // different topology than the snapshot was written from.
    std::fprintf(stderr, "verify failed: %s\n", error.c_str());
    return 1;
  }
  // Recompute every row from scratch and byte-compare against the mapped
  // image: the recompute-and-diff form of the round-trip guarantee.
  RoutingTable recomputed(topo);
  recomputed.warm_all();
  const std::size_t n = topo.router_count();
  for (std::size_t src = 0; src < n; ++src) {
    const auto id = RouterId(static_cast<std::uint32_t>(src));
    const auto stored = fresh.row(id);
    const auto live = recomputed.row(id);
    if (std::memcmp(stored.data(), live.data(), stored.size_bytes()) != 0) {
      std::fprintf(stderr,
                   "verify failed: source row %zu differs from a fresh "
                   "warm-all\n",
                   src);
      return 1;
    }
  }
  std::printf("verify ok: %zu rows (%zu entries each) byte-identical to a "
              "fresh warm-all\n",
              n, n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: uap2p_snapshot <write|info|verify> "
                 "[--out=|--file=FILE] [topology flags]\n");
    return 2;
  }
  if (args.file.empty()) {
    std::fprintf(stderr, "missing --out=/--file=\n");
    return 2;
  }
  if (args.command == "write") return cmd_write(args);
  if (args.command == "info") return cmd_info(args);
  return cmd_verify(args);
}
