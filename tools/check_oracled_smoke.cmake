# oracled-smoke: proves the oracle query service end-to-end with
# uap2p_oracled against a committed fixture and golden.
#
#  1. Serve the committed request fixture with the default 2-worker pool
#     and byte-diff the ranked output against the committed golden.
#  2. Serve it again with 4 workers AND a snapshot republish every 64
#     requests (--swap-every): ranking is a pure function of (snapshot,
#     request), so the output must stay byte-identical through every
#     worker interleaving and swap.
#
# Usage: cmake -DORACLED_TOOL=<uap2p_oracled> -DFIXTURE=<requests.txt>
#        -DGOLDEN=<ranked.txt> -DWORKDIR=<dir> -P check_oracled_smoke.cmake
foreach(var ORACLED_TOOL FIXTURE GOLDEN WORKDIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

# The fixture was generated for the default transit-stub topology; the
# serve runs must describe the same one (these are uap2p_oracled's
# defaults, spelled out so a default drift fails loudly here).
set(topo_flags --generator=transit-stub --transit=3 --stubs=5
    --peering=0.3 --topo-seed=1 --routers-per-as=3)

set(out_serial "${WORKDIR}/oracled_ranked_serial.txt")
execute_process(
  COMMAND "${ORACLED_TOOL}" serve "--requests=${FIXTURE}"
          "--out=${out_serial}" --workers=2 ${topo_flags}
  OUTPUT_VARIABLE serve_out ERROR_VARIABLE serve_err
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "oracled serve failed (rc=${serve_rc}):\n"
    "${serve_out}${serve_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${out_serial}" "${GOLDEN}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "ranked output differs from golden ${GOLDEN}.\n"
    "If the ranking contract changed intentionally, regenerate with:\n"
    "  uap2p_oracled serve --requests=${FIXTURE} --out=${GOLDEN}")
endif()

set(out_swapped "${WORKDIR}/oracled_ranked_swapped.txt")
execute_process(
  COMMAND "${ORACLED_TOOL}" serve "--requests=${FIXTURE}"
          "--out=${out_swapped}" --workers=4 --swap-every=64 ${topo_flags}
  OUTPUT_VARIABLE swap_out ERROR_VARIABLE swap_err
  RESULT_VARIABLE swap_rc)
if(NOT swap_rc EQUAL 0)
  message(FATAL_ERROR "oracled serve --swap-every failed (rc=${swap_rc}):\n"
    "${swap_out}${swap_err}")
endif()
if(NOT "${swap_err}" MATCHES "swaps")
  message(FATAL_ERROR "serve did not report swap activity:\n${swap_err}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${out_swapped}" "${GOLDEN}"
  RESULT_VARIABLE swap_diff_rc)
if(NOT swap_diff_rc EQUAL 0)
  message(FATAL_ERROR
    "ranked output changed under --workers=4 --swap-every=64: the service "
    "leaked scheduling or swap timing into results")
endif()

message(STATUS "oracled-smoke ok: golden match with 2 workers, and "
  "byte-identical under 4 workers + snapshot swaps")
