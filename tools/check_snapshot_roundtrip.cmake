# snapshot-roundtrip: proves the persistent warmed-routing snapshot cycle
# end-to-end on a ~200-router transit-stub underlay with uap2p_snapshot.
#
#  1. `write` warms all-pairs routing and serializes it.
#  2. `info` re-reads the file and recomputes every section checksum.
#  3. `verify` mmap-loads the snapshot, attaches it to a fresh table, then
#     recomputes the whole warm-up from scratch and byte-compares every
#     per-source row — the byte-identity guarantee the bench cache relies
#     on.
#
# (Corruption/truncation/version-skew rejection is covered byte-by-byte in
# tests/test_snapshot.cpp, where flipping bits is easy; CMake has no
# binary editing primitives.)
#
# Usage: cmake -DSNAPSHOT_TOOL=<uap2p_snapshot> -DWORKDIR=<dir>
#        -P check_snapshot_roundtrip.cmake
foreach(var SNAPSHOT_TOOL WORKDIR)
  if(NOT ${var})
    message(FATAL_ERROR "pass -D${var}=...")
  endif()
endforeach()

set(topo_flags --generator=transit-stub --transit=4 --stubs=16
    --peering=0.3 --seed=7)
set(snap "${WORKDIR}/roundtrip.uap2psnap")

execute_process(
  COMMAND "${SNAPSHOT_TOOL}" write "--out=${snap}" ${topo_flags}
  OUTPUT_VARIABLE write_out ERROR_VARIABLE write_err
  RESULT_VARIABLE write_rc)
if(NOT write_rc EQUAL 0)
  message(FATAL_ERROR "snapshot write failed (rc=${write_rc}):\n"
    "${write_out}${write_err}")
endif()
if(NOT "${write_out}" MATCHES "204 routers")
  message(FATAL_ERROR "expected a 204-router topology, got:\n${write_out}")
endif()

execute_process(
  COMMAND "${SNAPSHOT_TOOL}" info "--file=${snap}"
  OUTPUT_VARIABLE info_out ERROR_VARIABLE info_err
  RESULT_VARIABLE info_rc)
if(NOT info_rc EQUAL 0)
  message(FATAL_ERROR "snapshot info failed (rc=${info_rc}):\n"
    "${info_out}${info_err}")
endif()
if(NOT "${info_out}" MATCHES "checksums       ok")
  message(FATAL_ERROR "info did not report clean checksums:\n${info_out}")
endif()

execute_process(
  COMMAND "${SNAPSHOT_TOOL}" verify "--file=${snap}" ${topo_flags}
  OUTPUT_VARIABLE verify_out ERROR_VARIABLE verify_err
  RESULT_VARIABLE verify_rc)
if(NOT verify_rc EQUAL 0)
  message(FATAL_ERROR "snapshot verify failed (rc=${verify_rc}):\n"
    "${verify_out}${verify_err}")
endif()
if(NOT "${verify_out}" MATCHES "byte-identical to a fresh warm-all")
  message(FATAL_ERROR
    "verify did not report byte-identity:\n${verify_out}")
endif()

message(STATUS "snapshot-roundtrip ok: write/info/verify clean on "
  "204 routers")
