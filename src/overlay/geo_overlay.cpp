#include "overlay/geo_overlay.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "netinfo/msg_types.hpp"

namespace uap2p::overlay::geo {
namespace {
constexpr int kMaxDepth = 16;  // guards against co-located peer clusters
constexpr sim::SimTime kQuiesceHorizonMs = sim::seconds(20);
}  // namespace

struct GeoOverlay::Zone {
  GeoRect box;
  Zone* parent = nullptr;
  std::unique_ptr<Zone> children[4];
  std::vector<std::pair<PeerId, underlay::GeoPoint>> members;  // leaves only
  PeerId supervisor = PeerId::invalid();
  int depth = 0;
  // Geographically-scoped content registry (Leopard [33]); logically the
  // zone's state, physically held by whoever supervises the zone.
  std::unordered_map<std::uint32_t, std::vector<PeerId>> scoped_store;

  [[nodiscard]] bool is_leaf() const { return children[0] == nullptr; }
};

struct GeoOverlay::SearchState {
  std::uint64_t id = 0;
  PeerId origin = PeerId::invalid();
  GeoRect rect;
  std::vector<PeerId> found;
  std::size_t messages = 0;
  std::size_t delivered = 0;
  sim::SimTime last_activity = 0.0;
  std::vector<PeerId> scoped_providers;
  bool scoped_found = false;
  std::size_t scoped_levels = 0;
  bool geocast = false;
  std::uint32_t payload_bytes = 0;
  sim::SimTime started = 0.0;
};

namespace {
struct SearchPayload {
  std::uint64_t search_id;
  PeerId origin;
  GeoRect rect;
  GeoOverlay::Zone* zone;  // sim-local tree node the message targets
  bool descending;
  bool geocast = false;
  std::uint32_t payload_bytes = 0;
};
struct CastPayload {
  std::uint64_t search_id;
};
struct ScopedPutPayload {
  std::uint64_t op_id;
  std::uint32_t content;
  PeerId provider;
  GeoRect scope;
  GeoOverlay::Zone* zone;
  bool descending;
};
struct ScopedGetPayload {
  std::uint64_t op_id;
  std::uint32_t content;
  PeerId origin;
  GeoOverlay::Zone* zone;
};
struct ScopedGetReply {
  std::uint64_t op_id;
  std::vector<PeerId> providers;
  std::size_t levels;
};
struct ReplyPayload {
  std::uint64_t search_id;
  std::vector<PeerId> members;
};
}  // namespace

GeoOverlay::GeoOverlay(underlay::Network& network, std::vector<PeerId> peers,
                       GeoConfig config)
    : network_(network),
      config_(config),
      rng_(config.seed),
      peers_(std::move(peers)) {
  root_ = std::make_unique<Zone>();
  root_->box = config_.world;
  for (const PeerId peer : peers_) {
    underlay::GeoPoint location = network_.host(peer).location;
    // Clamp onto the world box border (paper: peers are assumed to be in
    // the service region; stragglers snap to the edge).
    location.lat_deg = std::clamp(location.lat_deg, config_.world.lat_lo,
                                  std::nextafter(config_.world.lat_hi, -1e9));
    location.lon_deg = std::clamp(location.lon_deg, config_.world.lon_lo,
                                  std::nextafter(config_.world.lon_hi, -1e9));
    insert(*root_, peer, location);
    network_.add_handler(peer, [this, peer](const underlay::Message& msg) {
      on_message(peer, msg);
    });
  }
  // Elect supervisors bottom-up over the whole tree.
  std::vector<Zone*> stack{root_.get()};
  std::vector<Zone*> order;
  while (!stack.empty()) {
    Zone* zone = stack.back();
    stack.pop_back();
    order.push_back(zone);
    if (!zone->is_leaf()) {
      for (auto& child : zone->children) stack.push_back(child.get());
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    elect_supervisor(**it);
  }
}

GeoOverlay::~GeoOverlay() = default;

void GeoOverlay::insert(Zone& zone, PeerId peer,
                        const underlay::GeoPoint& location) {
  if (zone.is_leaf()) {
    zone.members.emplace_back(peer, location);
    if (zone.members.size() > config_.max_zone_peers &&
        zone.depth < kMaxDepth) {
      split(zone);
    }
    return;
  }
  for (auto& child : zone.children) {
    if (child->box.contains(location)) {
      insert(*child, peer, location);
      return;
    }
  }
  // Numerically on a boundary: put it in the first child (deterministic).
  insert(*zone.children[0], peer, location);
}

void GeoOverlay::split(Zone& zone) {
  const double lat_mid = 0.5 * (zone.box.lat_lo + zone.box.lat_hi);
  const double lon_mid = 0.5 * (zone.box.lon_lo + zone.box.lon_hi);
  const GeoRect quadrants[4] = {
      {zone.box.lat_lo, lat_mid, zone.box.lon_lo, lon_mid},
      {zone.box.lat_lo, lat_mid, lon_mid, zone.box.lon_hi},
      {lat_mid, zone.box.lat_hi, zone.box.lon_lo, lon_mid},
      {lat_mid, zone.box.lat_hi, lon_mid, zone.box.lon_hi},
  };
  for (int q = 0; q < 4; ++q) {
    zone.children[q] = std::make_unique<Zone>();
    zone.children[q]->box = quadrants[q];
    zone.children[q]->parent = &zone;
    zone.children[q]->depth = zone.depth + 1;
  }
  auto members = std::move(zone.members);
  zone.members.clear();
  for (const auto& [peer, location] : members) {
    insert(zone, peer, location);
  }
}

void GeoOverlay::elect_supervisor(Zone& zone) {
  if (zone.is_leaf()) {
    PeerId best = PeerId::invalid();
    double best_capacity = -1.0;
    for (const auto& [peer, location] : zone.members) {
      if (!network_.is_online(peer)) continue;
      const double capacity = network_.host(peer).resources.capacity_score();
      if (capacity > best_capacity) {
        best_capacity = capacity;
        best = peer;
      }
    }
    zone.supervisor = best;
    return;
  }
  // Interior zones are supervised by the strongest child supervisor.
  PeerId best = PeerId::invalid();
  double best_capacity = -1.0;
  for (const auto& child : zone.children) {
    const PeerId candidate = child->supervisor;
    if (!candidate.is_valid() || !network_.is_online(candidate)) continue;
    const double capacity =
        network_.host(candidate).resources.capacity_score();
    if (capacity > best_capacity) {
      best_capacity = capacity;
      best = candidate;
    }
  }
  zone.supervisor = best;
}

GeoOverlay::Zone* GeoOverlay::leaf_for(const underlay::GeoPoint& point) {
  Zone* zone = root_.get();
  while (!zone->is_leaf()) {
    Zone* next = nullptr;
    for (auto& child : zone->children) {
      if (child->box.contains(point)) {
        next = child.get();
        break;
      }
    }
    zone = next != nullptr ? next : zone->children[0].get();
  }
  return zone;
}

void GeoOverlay::deliver_to_supervisor(Zone& from, Zone& to,
                                       std::uint64_t search_id, PeerId origin,
                                       const GeoRect& rect, bool descending,
                                       bool geocast,
                                       std::uint32_t payload_bytes) {
  if (!to.supervisor.is_valid()) return;  // dead zone: query lost until repair
  underlay::Message msg;
  msg.src = from.supervisor.is_valid() ? from.supervisor : origin;
  msg.dst = to.supervisor;
  msg.type = msg::kGeoSearch;
  msg.size_bytes = geocast ? config_.search_bytes + payload_bytes
                           : config_.search_bytes;
  msg.payload =
      SearchPayload{search_id, origin, rect, &to, descending, geocast,
                    payload_bytes};
  if (network_.send(std::move(msg)) && active_ && active_->id == search_id) {
    ++active_->messages;
  }
}

void GeoOverlay::route_search(Zone& zone, std::uint64_t search_id,
                              PeerId origin, const GeoRect& rect,
                              bool descending, bool geocast,
                              std::uint32_t payload_bytes) {
  if (!descending) {
    // Ascend until the zone encloses the query (or we hit the root).
    if (!zone.box.contains(rect) && zone.parent != nullptr) {
      deliver_to_supervisor(zone, *zone.parent, search_id, origin, rect,
                            /*descending=*/false, geocast, payload_bytes);
      return;
    }
    descending = true;  // this zone covers the rect: fan out below
  }
  if (zone.is_leaf()) {
    if (geocast) {
      // Deliver the payload to every matching member of this leaf.
      for (const auto& [peer, location] : zone.members) {
        if (!rect.contains(location) || !network_.is_online(peer)) continue;
        underlay::Message msg;
        msg.src = zone.supervisor;
        msg.dst = peer;
        msg.type = msg::kGeoCastDeliver;
        msg.size_bytes = payload_bytes;
        msg.payload = CastPayload{search_id};
        if (network_.send(std::move(msg)) && active_ &&
            active_->id == search_id) {
          ++active_->messages;
        }
      }
      return;
    }
    // Reply to the origin with matching members.
    ReplyPayload reply;
    reply.search_id = search_id;
    for (const auto& [peer, location] : zone.members) {
      if (rect.contains(location) && network_.is_online(peer)) {
        reply.members.push_back(peer);
      }
    }
    underlay::Message msg;
    msg.src = zone.supervisor;
    msg.dst = origin;
    msg.type = msg::kGeoSearchReply;
    msg.size_bytes = config_.reply_base_bytes +
                     static_cast<std::uint32_t>(reply.members.size()) *
                         config_.reply_entry_bytes;
    msg.payload = std::move(reply);
    if (network_.send(std::move(msg)) && active_ && active_->id == search_id) {
      ++active_->messages;
    }
    return;
  }
  for (auto& child : zone.children) {
    if (!child->box.intersects(rect)) continue;
    if (child->supervisor == zone.supervisor && child->supervisor.is_valid()) {
      // Same supervisor handles the child zone locally, no message needed.
      route_search(*child, search_id, origin, rect, /*descending=*/true,
                   geocast, payload_bytes);
    } else {
      deliver_to_supervisor(zone, *child, search_id, origin, rect,
                            /*descending=*/true, geocast, payload_bytes);
    }
  }
}

void GeoOverlay::on_message(PeerId self, const underlay::Message& msg) {
  if (msg.type == msg::kGeoScopedPut) {
    const auto* payload = payload_cast<ScopedPutPayload>(&msg.payload);
    if (payload == nullptr) return;
    if (payload->zone->supervisor != self) return;
    auto& providers = payload->zone->scoped_store[payload->content];
    if (std::find(providers.begin(), providers.end(), payload->provider) ==
        providers.end()) {
      providers.push_back(payload->provider);
    }
    return;
  }
  if (msg.type == msg::kGeoScopedGet) {
    const auto* payload = payload_cast<ScopedGetPayload>(&msg.payload);
    if (payload == nullptr) return;
    Zone* zone = payload->zone;
    // Climb locally while this peer supervises the ancestors too.
    std::size_t climbed = 0;
    while (true) {
      auto hit = zone->scoped_store.find(payload->content);
      if (hit != zone->scoped_store.end() && !hit->second.empty()) {
        underlay::Message reply;
        reply.src = self;
        reply.dst = payload->origin;
        reply.type = msg::kGeoScopedGetReply;
        reply.size_bytes = config_.reply_base_bytes +
                           std::uint32_t(hit->second.size()) *
                               config_.reply_entry_bytes;
        reply.payload = ScopedGetReply{payload->op_id, hit->second, climbed};
        if (network_.send(std::move(reply)) && active_ &&
            active_->id == payload->op_id) {
          ++active_->messages;
        }
        return;
      }
      if (zone->parent == nullptr) {
        // Root miss: negative reply.
        underlay::Message reply;
        reply.src = self;
        reply.dst = payload->origin;
        reply.type = msg::kGeoScopedGetReply;
        reply.size_bytes = config_.reply_base_bytes;
        reply.payload = ScopedGetReply{payload->op_id, {}, climbed};
        if (network_.send(std::move(reply)) && active_ &&
            active_->id == payload->op_id) {
          ++active_->messages;
        }
        return;
      }
      Zone* parent = zone->parent;
      ++climbed;
      if (parent->supervisor == self) {
        zone = parent;  // same supervisor: free local climb
        continue;
      }
      if (!parent->supervisor.is_valid()) return;  // lost until repair
      underlay::Message forward;
      forward.src = self;
      forward.dst = parent->supervisor;
      forward.type = msg::kGeoScopedGet;
      forward.size_bytes = config_.search_bytes;
      forward.payload = ScopedGetPayload{payload->op_id, payload->content,
                                         payload->origin, parent};
      if (network_.send(std::move(forward)) && active_ &&
          active_->id == payload->op_id) {
        ++active_->messages;
      }
      return;
    }
  }
  if (msg.type == msg::kGeoScopedGetReply) {
    const auto* payload = payload_cast<ScopedGetReply>(&msg.payload);
    if (payload == nullptr) return;
    if (!active_ || active_->id != payload->op_id || self != active_->origin)
      return;
    active_->scoped_found = !payload->providers.empty();
    active_->scoped_providers = payload->providers;
    active_->scoped_levels += payload->levels;
    return;
  }
  if (msg.type == msg::kGeoSearch) {
    const auto* payload = payload_cast<SearchPayload>(&msg.payload);
    if (payload == nullptr) return;
    if (payload->zone->supervisor != self) return;  // stale after repair
    route_search(*payload->zone, payload->search_id, payload->origin,
                 payload->rect, payload->descending, payload->geocast,
                 payload->payload_bytes);
  } else if (msg.type == msg::kGeoCastDeliver) {
    const auto* payload = payload_cast<CastPayload>(&msg.payload);
    if (payload == nullptr) return;
    if (active_ && active_->id == payload->search_id) {
      ++active_->delivered;
      active_->last_activity = network_.engine().now();
    }
  } else if (msg.type == msg::kGeoSearchReply) {
    const auto* payload = payload_cast<ReplyPayload>(&msg.payload);
    if (payload == nullptr) return;
    if (!active_ || active_->id != payload->search_id || self != active_->origin)
      return;
    active_->last_activity = network_.engine().now();
    for (const PeerId peer : payload->members) {
      if (std::find(active_->found.begin(), active_->found.end(), peer) ==
          active_->found.end()) {
        active_->found.push_back(peer);
      }
    }
  }
}

AreaSearchResult GeoOverlay::area_search(PeerId origin, const GeoRect& rect) {
  active_ = std::make_unique<SearchState>();
  active_->id = next_search_++;
  active_->origin = origin;
  active_->rect = rect;
  active_->started = network_.engine().now();

  // The origin submits the query to its leaf-zone supervisor.
  Zone* leaf = leaf_for(network_.host(origin).location);
  if (leaf->supervisor == origin) {
    route_search(*leaf, active_->id, origin, rect, /*descending=*/false);
  } else if (leaf->supervisor.is_valid()) {
    underlay::Message msg;
    msg.src = origin;
    msg.dst = leaf->supervisor;
    msg.type = msg::kGeoSearch;
    msg.size_bytes = config_.search_bytes;
    msg.payload = SearchPayload{active_->id, origin, rect, leaf,
                                /*descending=*/false};
    if (network_.send(std::move(msg))) ++active_->messages;
  }
  network_.engine().run_until(network_.engine().now() + kQuiesceHorizonMs);

  AreaSearchResult result;
  result.found = active_->found;
  result.messages = active_->messages;
  result.duration_ms = active_->last_activity > 0.0
                           ? active_->last_activity - active_->started
                           : network_.engine().now() - active_->started;
  result.expected = ground_truth(rect).size();
  active_.reset();
  return result;
}

namespace {
/// Walks the tree collecting leaf zones intersecting `rect`.
void collect_leaves(GeoOverlay::Zone* zone, const GeoRect& rect,
                    std::vector<GeoOverlay::Zone*>& out) {
  if (!zone->box.intersects(rect)) return;
  if (zone->is_leaf()) {
    out.push_back(zone);
    return;
  }
  for (auto& child : zone->children) collect_leaves(child.get(), rect, out);
}
}  // namespace

GeoOverlay::ScopedPutResult GeoOverlay::scoped_put(PeerId provider,
                                                   ContentId content,
                                                   const GeoRect& scope) {
  // Publication rides one message per target leaf supervisor (the tree
  // fan-out is identical to geocast; we charge the direct legs).
  ScopedPutResult result;
  std::vector<Zone*> leaves;
  collect_leaves(root_.get(), scope, leaves);
  for (Zone* leaf : leaves) {
    if (!leaf->supervisor.is_valid()) continue;  // empty zone: nothing there
    underlay::Message msg;
    msg.src = provider;
    msg.dst = leaf->supervisor;
    msg.type = msg::kGeoScopedPut;
    msg.size_bytes = config_.search_bytes;
    msg.payload = ScopedPutPayload{next_search_++, content.value(), provider,
                                   scope, leaf, true};
    if (network_.send(std::move(msg))) {
      ++result.messages;
      ++result.zones_stored;
    }
  }
  network_.engine().run_until(network_.engine().now() + kQuiesceHorizonMs);
  return result;
}

GeoOverlay::ScopedGetResult GeoOverlay::scoped_get(PeerId origin,
                                                   ContentId content) {
  active_ = std::make_unique<SearchState>();
  active_->id = next_search_++;
  active_->origin = origin;
  active_->started = network_.engine().now();

  Zone* leaf = leaf_for(network_.host(origin).location);
  if (leaf->supervisor.is_valid()) {
    underlay::Message msg;
    msg.src = origin;
    msg.dst = leaf->supervisor;
    msg.type = msg::kGeoScopedGet;
    msg.size_bytes = config_.search_bytes;
    msg.payload = ScopedGetPayload{active_->id, content.value(), origin, leaf};
    if (network_.send(std::move(msg))) ++active_->messages;
  }
  network_.engine().run_until(network_.engine().now() + kQuiesceHorizonMs);

  ScopedGetResult result;
  result.found = active_->scoped_found;
  result.providers = active_->scoped_providers;
  result.tree_levels_climbed = active_->scoped_levels;
  result.messages = active_->messages;
  result.duration_ms = network_.engine().now() - active_->started;
  active_.reset();
  return result;
}

GeoOverlay::GeocastResult GeoOverlay::geocast(PeerId origin,
                                              const GeoRect& rect,
                                              std::uint32_t payload_bytes) {
  active_ = std::make_unique<SearchState>();
  active_->id = next_search_++;
  active_->origin = origin;
  active_->rect = rect;
  active_->geocast = true;
  active_->payload_bytes = payload_bytes;
  active_->started = network_.engine().now();

  Zone* leaf = leaf_for(network_.host(origin).location);
  if (leaf->supervisor == origin) {
    route_search(*leaf, active_->id, origin, rect, /*descending=*/false,
                 /*geocast=*/true, payload_bytes);
  } else if (leaf->supervisor.is_valid()) {
    underlay::Message msg;
    msg.src = origin;
    msg.dst = leaf->supervisor;
    msg.type = msg::kGeoSearch;
    msg.size_bytes = config_.search_bytes + payload_bytes;
    msg.payload = SearchPayload{active_->id,          origin, rect, leaf,
                                /*descending=*/false, true,   payload_bytes};
    if (network_.send(std::move(msg))) ++active_->messages;
  }
  network_.engine().run_until(network_.engine().now() + kQuiesceHorizonMs);

  GeocastResult result;
  result.delivered = active_->delivered;
  result.messages = active_->messages;
  result.duration_ms = active_->delivered > 0
                           ? active_->last_activity - active_->started
                           : 0.0;
  result.expected = ground_truth(rect).size();
  active_.reset();
  return result;
}

AreaSearchResult GeoOverlay::radius_search(PeerId origin,
                                           const underlay::GeoPoint& center,
                                           double radius_km) {
  // Bounding box around the circle, then post-filter by haversine.
  const double lat_delta = radius_km / 111.32;
  const double lon_delta =
      radius_km /
      (111.32 * std::max(0.05, std::cos(center.lat_deg * 3.14159265 / 180.0)));
  GeoRect rect{center.lat_deg - lat_delta, center.lat_deg + lat_delta,
               center.lon_deg - lon_delta, center.lon_deg + lon_delta};
  AreaSearchResult result = area_search(origin, rect);
  std::erase_if(result.found, [&](PeerId peer) {
    return underlay::haversine_km(network_.host(peer).location, center) >
           radius_km;
  });
  std::sort(result.found.begin(), result.found.end(),
            [&](PeerId a, PeerId b) {
              return underlay::haversine_km(network_.host(a).location, center) <
                     underlay::haversine_km(network_.host(b).location, center);
            });
  std::size_t expected = 0;
  for (const PeerId peer : peers_) {
    if (network_.is_online(peer) &&
        underlay::haversine_km(network_.host(peer).location, center) <=
            radius_km) {
      ++expected;
    }
  }
  result.expected = expected;
  return result;
}

void GeoOverlay::reinsert(PeerId peer) {
  // Remove from whichever leaf currently registers the peer.
  std::vector<Zone*> stack{root_.get()};
  Zone* old_leaf = nullptr;
  while (!stack.empty()) {
    Zone* zone = stack.back();
    stack.pop_back();
    if (zone->is_leaf()) {
      const auto before = zone->members.size();
      std::erase_if(zone->members,
                    [peer](const auto& member) { return member.first == peer; });
      if (zone->members.size() != before) {
        old_leaf = zone;
        break;
      }
    } else {
      for (auto& child : zone->children) stack.push_back(child.get());
    }
  }
  // Insert at the current location (clamped like the constructor does).
  underlay::GeoPoint location = network_.host(peer).location;
  location.lat_deg = std::clamp(location.lat_deg, config_.world.lat_lo,
                                std::nextafter(config_.world.lat_hi, -1e9));
  location.lon_deg = std::clamp(location.lon_deg, config_.world.lon_lo,
                                std::nextafter(config_.world.lon_hi, -1e9));
  insert(*root_, peer, location);
  Zone* new_leaf = leaf_for(location);
  // Refresh supervision where membership changed.
  if (old_leaf != nullptr) elect_supervisor(*old_leaf);
  elect_supervisor(*new_leaf);
  for (Zone* zone = new_leaf->parent; zone != nullptr; zone = zone->parent) {
    elect_supervisor(*zone);
  }
}

void GeoOverlay::repair() {
  std::vector<Zone*> stack{root_.get()};
  std::vector<Zone*> order;
  while (!stack.empty()) {
    Zone* zone = stack.back();
    stack.pop_back();
    order.push_back(zone);
    if (!zone->is_leaf()) {
      for (auto& child : zone->children) stack.push_back(child.get());
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Zone& zone = **it;
    if (!zone.supervisor.is_valid() || !network_.is_online(zone.supervisor)) {
      elect_supervisor(zone);
    }
  }
}

std::size_t GeoOverlay::zone_count() const {
  std::size_t count = 0;
  std::vector<const Zone*> stack{root_.get()};
  while (!stack.empty()) {
    const Zone* zone = stack.back();
    stack.pop_back();
    ++count;
    if (!zone->is_leaf()) {
      for (const auto& child : zone->children) stack.push_back(child.get());
    }
  }
  return count;
}

std::size_t GeoOverlay::leaf_count() const {
  std::size_t count = 0;
  std::vector<const Zone*> stack{root_.get()};
  while (!stack.empty()) {
    const Zone* zone = stack.back();
    stack.pop_back();
    if (zone->is_leaf()) {
      ++count;
    } else {
      for (const auto& child : zone->children) stack.push_back(child.get());
    }
  }
  return count;
}

std::size_t GeoOverlay::tree_depth() const {
  std::size_t depth = 0;
  std::vector<const Zone*> stack{root_.get()};
  while (!stack.empty()) {
    const Zone* zone = stack.back();
    stack.pop_back();
    depth = std::max(depth, static_cast<std::size_t>(zone->depth));
    if (!zone->is_leaf()) {
      for (const auto& child : zone->children) stack.push_back(child.get());
    }
  }
  return depth;
}

PeerId GeoOverlay::supervisor_of(PeerId peer) const {
  const underlay::GeoPoint location = network_.host(peer).location;
  const Zone* zone = root_.get();
  while (!zone->is_leaf()) {
    const Zone* next = nullptr;
    for (const auto& child : zone->children) {
      if (child->box.contains(location)) {
        next = child.get();
        break;
      }
    }
    zone = next != nullptr ? next : zone->children[0].get();
  }
  return zone->supervisor;
}

std::vector<PeerId> GeoOverlay::ground_truth(const GeoRect& rect) const {
  std::vector<PeerId> result;
  std::vector<const Zone*> stack{root_.get()};
  while (!stack.empty()) {
    const Zone* zone = stack.back();
    stack.pop_back();
    if (!zone->box.intersects(rect)) continue;
    if (zone->is_leaf()) {
      for (const auto& [peer, location] : zone->members) {
        if (rect.contains(location) && network_.is_online(peer)) {
          result.push_back(peer);
        }
      }
    } else {
      for (const auto& child : zone->children) stack.push_back(child.get());
    }
  }
  return result;
}

}  // namespace uap2p::overlay::geo
