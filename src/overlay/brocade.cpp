#include "overlay/brocade.hpp"

#include <cassert>

namespace uap2p::overlay::brocade {
namespace {
// Message tags local to Brocade (distinct from msg_types ranges).
constexpr int kBrocadeForward = 600;
constexpr int kBrocadeDeliver = 601;

struct ForwardPayload {
  std::uint64_t route_id;
  PeerId final_dst;
  std::uint32_t bytes;
};
}  // namespace

BrocadeSystem::BrocadeSystem(underlay::Network& network,
                             std::vector<PeerId> peers, Config config)
    : network_(network), config_(config), peers_(std::move(peers)) {
  supernode_of_as_.assign(network_.topology().as_count(), PeerId::invalid());
  elect();
  for (const PeerId peer : peers_) {
    network_.add_handler(peer, [this, peer](const underlay::Message& msg) {
      on_message(peer, msg);
    });
  }
}

void BrocadeSystem::elect() {
  std::fill(supernode_of_as_.begin(), supernode_of_as_.end(),
            PeerId::invalid());
  std::vector<double> best(supernode_of_as_.size(), -1.0);
  for (const PeerId peer : peers_) {
    if (!network_.is_online(peer)) continue;
    const auto& host = network_.host(peer);
    const double capacity = host.resources.capacity_score();
    if (capacity > best[host.as.value()]) {
      best[host.as.value()] = capacity;
      supernode_of_as_[host.as.value()] = peer;
    }
  }
}

void BrocadeSystem::repair() { elect(); }

PeerId BrocadeSystem::supernode_of(AsId as) const {
  return supernode_of_as_[as.value()];
}

std::size_t BrocadeSystem::supernode_count() const {
  std::size_t count = 0;
  for (const PeerId supernode : supernode_of_as_) {
    if (supernode.is_valid()) ++count;
  }
  return count;
}

bool BrocadeSystem::send_leg(PeerId from, PeerId to, std::uint32_t bytes) {
  if (active_) {
    active_->crossings += network_.path_between(from, to).as_hops();
  }
  underlay::Message msg;
  msg.src = from;
  msg.dst = to;
  msg.type = to == active_->dst ? kBrocadeDeliver : kBrocadeForward;
  msg.size_bytes = bytes + config_.header_bytes;
  msg.payload = ForwardPayload{active_->id, active_->dst, bytes};
  return network_.send(std::move(msg));
}

void BrocadeSystem::on_message(PeerId self, const underlay::Message& msg) {
  if (msg.type != kBrocadeForward && msg.type != kBrocadeDeliver) return;
  const auto* payload = payload_cast<ForwardPayload>(&msg.payload);
  if (payload == nullptr || !active_ || active_->id != payload->route_id) {
    return;
  }
  ++active_->hops;
  if (msg.type == kBrocadeDeliver || self == payload->final_dst) {
    active_->delivered = true;
    active_->delivered_at = network_.engine().now();
    return;
  }
  ++forwarded_;
  // We are a supernode on the path. If the destination is in our AS (we
  // are its home supernode), deliver; else tunnel to its home supernode.
  const AsId dst_as = network_.host(payload->final_dst).as;
  const PeerId dst_supernode = supernode_of_as_[dst_as.value()];
  const PeerId next =
      (self == dst_supernode || !dst_supernode.is_valid())
          ? payload->final_dst
          : dst_supernode;
  send_leg(self, next, payload->bytes);
}

RouteResult BrocadeSystem::route(PeerId src, PeerId dst, std::uint32_t bytes) {
  RouteResult result;
  const sim::SimTime start = network_.engine().now();
  active_ = ActiveRoute{next_route_++, dst, start, false, 0, 0};

  const AsId src_as = network_.host(src).as;
  const AsId dst_as = network_.host(dst).as;
  PeerId first_hop;
  if (src_as == dst_as) {
    first_hop = dst;  // intra-domain: no tunneling needed
  } else {
    const PeerId local_supernode = supernode_of_as_[src_as.value()];
    first_hop = (local_supernode.is_valid() && local_supernode != src)
                    ? local_supernode
                    : supernode_of_as_[dst_as.value()];
    if (!first_hop.is_valid()) first_hop = dst;  // degraded: direct
  }
  send_leg(src, first_hop, bytes);
  network_.engine().run_until(network_.engine().now() +
                              config_.delivery_timeout_ms);

  result.delivered = active_->delivered;
  result.overlay_hops = active_->hops;
  result.inter_as_crossings = active_->crossings;
  if (result.delivered) result.latency_ms = active_->delivered_at - start;
  active_.reset();
  return result;
}

}  // namespace uap2p::overlay::brocade
