#include "overlay/kademlia.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "netinfo/msg_types.hpp"

namespace uap2p::overlay::kademlia {

int bucket_index(NodeId self, NodeId other) {
  const std::uint64_t distance = xor_distance(self, other);
  assert(distance != 0);
  return 63 - std::countl_zero(distance);
}

KademliaSystem::KademliaSystem(underlay::Network& network,
                               std::vector<PeerId> peers, Config config,
                               const netinfo::Oracle* oracle)
    : network_(network), config_(config), oracle_(oracle), rng_(config.seed) {
  assert(config_.policy == BucketPolicy::kVanilla || oracle_ != nullptr);
  nodes_.reserve(peers.size());
  for (const PeerId peer : peers) {
    Node node;
    node.peer = peer;
    // Unique random 64-bit id.
    do {
      node.id = rng_();
    } while (node.id == 0 ||
             std::any_of(nodes_.begin(), nodes_.end(),
                         [&](const Node& n) { return n.id == node.id; }));
    node.buckets.resize(64);
    ids_[peer.value()] = node.id;
    index_of_[peer.value()] = nodes_.size();
    nodes_.push_back(std::move(node));
    network_.add_handler(peer, [this, peer](const underlay::Message& msg) {
      on_message(peer, msg);
    });
  }
}

double KademliaSystem::proximity_cost(PeerId a, PeerId b) const {
  // AS-hop distance from the oracle; ties broken upstream by insertion
  // order. Lower = closer in the underlay.
  return oracle_ ? static_cast<double>(oracle_->as_hops(a, b)) : 0.0;
}

void KademliaSystem::observe(Node& self, const Contact& contact) {
  if (contact.id == self.id || !contact.peer.is_valid()) return;
  Bucket& bucket = self.buckets[bucket_index(self.id, contact.id)];
  auto existing = std::find_if(
      bucket.contacts.begin(), bucket.contacts.end(),
      [&](const Contact& c) { return c.id == contact.id; });
  if (existing != bucket.contacts.end()) {
    // Move to tail (most recently seen).
    std::rotate(existing, existing + 1, bucket.contacts.end());
    return;
  }
  if (bucket.contacts.size() < config_.k) {
    bucket.contacts.push_back(contact);
    return;
  }
  if (config_.policy == BucketPolicy::kProximity) {
    // Kaune [17]: replace the underlay-farthest contact if the newcomer is
    // strictly closer in the underlay.
    auto farthest = std::max_element(
        bucket.contacts.begin(), bucket.contacts.end(),
        [&](const Contact& x, const Contact& y) {
          return proximity_cost(self.peer, x.peer) <
                 proximity_cost(self.peer, y.peer);
        });
    if (proximity_cost(self.peer, contact.peer) <
        proximity_cost(self.peer, farthest->peer)) {
      *farthest = contact;
    }
  }
  // Vanilla: full bucket keeps its long-lived entries (the least-recently
  // seen ping check degenerates to "keep old" when nodes rarely die).
}

std::vector<Contact> KademliaSystem::closest_contacts(
    const Node& self, NodeId target, std::size_t count) const {
  std::vector<Contact> all;
  for (const Bucket& bucket : self.buckets) {
    all.insert(all.end(), bucket.contacts.begin(), bucket.contacts.end());
  }
  std::sort(all.begin(), all.end(), [target](const Contact& a,
                                             const Contact& b) {
    return xor_distance(a.id, target) < xor_distance(b.id, target);
  });
  if (all.size() > count) all.resize(count);
  return all;
}

void KademliaSystem::on_message(PeerId self_peer,
                                const underlay::Message& msg) {
  Node& self = node(self_peer);
  switch (msg.type) {
    case msg::kKademliaFindNode: {
      const auto* payload = payload_cast<FindNodePayload>(&msg.payload);
      if (payload == nullptr) return;
      const NodeId sender_id = ids_.at(msg.src.value());
      observe(self, Contact{sender_id, msg.src});
      FindNodeReply reply;
      reply.rpc_id = payload->rpc_id;
      reply.responder_id = self.id;
      if (payload->want_value) {
        auto it = self.storage.find(payload->key);
        if (it != self.storage.end()) reply.value = it->second;
      }
      if (!reply.value) {
        reply.contacts = closest_contacts(self, payload->target, config_.k);
        // Never hand back the asker itself.
        std::erase_if(reply.contacts, [&](const Contact& c) {
          return c.peer == msg.src;
        });
      }
      underlay::Message out;
      out.src = self_peer;
      out.dst = msg.src;
      out.type = msg::kKademliaFindNodeReply;
      out.size_bytes =
          config_.find_node_bytes +
          static_cast<std::uint32_t>(reply.contacts.size()) *
              config_.contact_bytes;
      out.payload = std::move(reply);
      network_.send(std::move(out));
      break;
    }
    case msg::kKademliaFindNodeReply: {
      const auto* reply = payload_cast<FindNodeReply>(&msg.payload);
      if (reply == nullptr || !active_ || self_peer != active_->origin) return;
      auto timeout = active_->timeouts.find(reply->rpc_id);
      if (timeout == active_->timeouts.end()) return;  // stale / timed out
      timeout->second.cancel();
      active_->timeouts.erase(timeout);
      assert(active_->in_flight > 0);
      --active_->in_flight;

      observe(node(self_peer), Contact{reply->responder_id, msg.src});
      for (auto& entry : active_->shortlist) {
        if (entry.contact.peer == msg.src) entry.responded = true;
      }
      if (reply->value) {
        active_->value = reply->value;
        active_->done = true;
        return;
      }
      for (const Contact& contact : reply->contacts) {
        observe(node(self_peer), contact);
        insert_into_shortlist(*active_, contact);
      }
      ++active_->hops;
      issue_queries(*active_);
      finish_if_converged(*active_);
      break;
    }
    case msg::kKademliaStore: {
      const auto* payload = payload_cast<StorePayload>(&msg.payload);
      if (payload == nullptr) return;
      observe(self, Contact{ids_.at(msg.src.value()), msg.src});
      self.storage[payload->key] = payload->value;
      break;
    }
    default:
      break;
  }
}

void KademliaSystem::insert_into_shortlist(ActiveLookup& lookup,
                                           const Contact& contact) {
  if (!contact.peer.is_valid() || contact.peer == lookup.origin) return;
  for (const auto& entry : lookup.shortlist) {
    if (entry.contact.id == contact.id) return;
  }
  auto position = std::lower_bound(
      lookup.shortlist.begin(), lookup.shortlist.end(), contact,
      [&](const ShortlistEntry& entry, const Contact& c) {
        return xor_distance(entry.contact.id, lookup.target) <
               xor_distance(c.id, lookup.target);
      });
  lookup.shortlist.insert(position, ShortlistEntry{contact});
}

void KademliaSystem::issue_queries(ActiveLookup& lookup) {
  if (lookup.done) return;
  // Candidate window: the k closest live entries. Vanilla Kademlia
  // queries them in XOR order; the proximity variant ([17]) orders the
  // *unqueried* window entries by underlay distance — every one of them
  // is eventually queried, so convergence is unaffected, but the early
  // RPCs (which dominate when results arrive fast) go to nearby peers.
  std::vector<ShortlistEntry*> window;
  for (auto& entry : lookup.shortlist) {
    if (window.size() >= config_.k) break;
    if (!entry.failed) window.push_back(&entry);
  }
  if (config_.policy == BucketPolicy::kProximity) {
    std::stable_sort(window.begin(), window.end(),
                     [&](const ShortlistEntry* a, const ShortlistEntry* b) {
                       return proximity_cost(lookup.origin, a->contact.peer) <
                              proximity_cost(lookup.origin, b->contact.peer);
                     });
  }
  for (ShortlistEntry* slot : window) {
    ShortlistEntry& entry = *slot;
    if (lookup.in_flight >= config_.alpha) break;
    if (entry.queried || entry.failed) continue;
    entry.queried = true;
    ++lookup.in_flight;
    ++lookup.messages;
    ++rpcs_;
    rpc_metric_.inc();
    if (oracle_ != nullptr) {
      lookup.rpc_as_hops_sum += proximity_cost(lookup.origin, entry.contact.peer);
    }

    const std::uint64_t rpc_id = next_rpc_++;
    FindNodePayload payload{rpc_id, lookup.target, lookup.want_value,
                            lookup.key};
    underlay::Message out;
    out.src = lookup.origin;
    out.dst = entry.contact.peer;
    out.type = msg::kKademliaFindNode;
    out.size_bytes = config_.find_node_bytes;
    out.payload = payload;
    network_.send(std::move(out));

    const PeerId queried_peer = entry.contact.peer;
    // The timeout lives on the origin's engine: issue_queries runs either
    // in driver code (initial queries) or in the origin's reply handler —
    // in sharded mode that is the origin's shard — and handle_response
    // cancels from the same place, so the handle never crosses shards.
    lookup.timeouts[rpc_id] = network_.engine_for(lookup.origin).schedule(
        config_.rpc_timeout_ms, [this, rpc_id, queried_peer] {
          if (!active_ || !active_->timeouts.contains(rpc_id)) return;
          active_->timeouts.erase(rpc_id);
          --active_->in_flight;
          timeout_metric_.inc();
          for (auto& e : active_->shortlist) {
            if (e.contact.peer == queried_peer) e.failed = true;
          }
          issue_queries(*active_);
          finish_if_converged(*active_);
        });
  }
}

void KademliaSystem::finish_if_converged(ActiveLookup& lookup) {
  if (lookup.done) return;
  if (lookup.in_flight > 0) return;
  // Converged when every live entry among the k closest has been queried.
  std::size_t considered = 0;
  for (const auto& entry : lookup.shortlist) {
    if (entry.failed) continue;
    if (++considered > config_.k) break;
    if (!entry.queried) {
      issue_queries(lookup);
      return;
    }
  }
  lookup.done = true;
}

LookupResult KademliaSystem::run_lookup(PeerId origin, NodeId target,
                                        bool want_value, Key key) {
  assert(!active_ && "one lookup at a time");
  underlay::ScopedOrigin trace_origin(network_, obs::origin::kLookup);
  ActiveLookup lookup;
  lookup.origin = origin;
  lookup.target = target;
  lookup.want_value = want_value;
  lookup.key = key;
  lookup.started = network_.engine().now();
  for (const Contact& contact :
       closest_contacts(node(origin), target, config_.k)) {
    insert_into_shortlist(lookup, contact);
  }
  active_ = std::move(lookup);
  issue_queries(*active_);
  finish_if_converged(*active_);

  // Drain until the lookup settles; the timeout chain guarantees progress.
  if (sim::EngineGroup* group = network_.group()) {
    // Sharded: advance one conservative window at a time so the done flag
    // is re-checked at every barrier. The window semantics are identical
    // for every shard count (including one), which is what makes
    // --shards=1 and --shards=4 runs of this loop byte-comparable.
    while (!active_->done) {
      if (group->step() == 0) break;  // every shard idle: no progress
    }
  } else {
    while (!active_->done) {
      if (network_.engine().run(512) == 0) break;  // queue drained
    }
  }

  LookupResult result;
  result.converged = active_->done;
  result.messages_sent = active_->messages;
  result.hops = active_->hops;
  result.duration_ms = network_.engine().now() - active_->started;
  result.mean_rpc_as_hops =
      active_->messages > 0
          ? active_->rpc_as_hops_sum / double(active_->messages)
          : 0.0;
  result.value = active_->value;
  for (const auto& entry : active_->shortlist) {
    if (entry.failed || !entry.responded) continue;
    result.closest.push_back(entry.contact);
    if (result.closest.size() >= config_.k) break;
  }
  for (auto& [rpc, handle] : active_->timeouts) handle.cancel();
  active_.reset();
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay,
                    static_cast<std::int32_t>(origin.value()), -1,
                    obs::op::kLookup,
                    static_cast<double>(result.messages_sent)});
  }
  return result;
}

void KademliaSystem::join_all() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) {
      // Seed with a random already-joined node.
      const std::size_t seed_index = rng_.uniform(i);
      observe(nodes_[i],
              Contact{nodes_[seed_index].id, nodes_[seed_index].peer});
      // Self-lookup populates buckets along the path (standard join).
      lookup(nodes_[i].peer, nodes_[i].id);
    }
  }
}

LookupResult KademliaSystem::lookup(PeerId origin, NodeId target) {
  return run_lookup(origin, target, /*want_value=*/false, /*key=*/0);
}

std::size_t KademliaSystem::refresh_buckets(PeerId peer) {
  const Node& self = node(peer);
  std::size_t refreshed = 0;
  for (int bucket = 0; bucket < 64; ++bucket) {
    if (self.buckets[std::size_t(bucket)].contacts.empty()) continue;
    // A random id whose XOR distance from self has its top bit at
    // `bucket`: flip that bit and randomize everything below it.
    const std::uint64_t top = 1ull << bucket;
    const std::uint64_t low_mask = top - 1;
    const NodeId target = (self.id ^ top) ^ (rng_() & low_mask);
    lookup(peer, target);
    ++refreshed;
  }
  return refreshed;
}

LookupResult KademliaSystem::store(PeerId origin, Key key, std::string value) {
  LookupResult result = run_lookup(origin, key, /*want_value=*/false, key);
  for (const Contact& contact : result.closest) {
    underlay::Message out;
    out.src = origin;
    out.dst = contact.peer;
    out.type = msg::kKademliaStore;
    out.size_bytes = config_.store_bytes;
    out.payload = StorePayload{key, value};
    network_.send(std::move(out));
  }
  // Also store locally if the origin is among the k closest.
  const std::uint64_t own_distance = xor_distance(node_id(origin), key);
  if (result.closest.size() < config_.k ||
      own_distance < xor_distance(result.closest.back().id, key)) {
    node(origin).storage[key] = value;
  }
  network_.run_until(network_.engine().now() + sim::seconds(5));
  return result;
}

LookupResult KademliaSystem::find_value(PeerId origin, Key key) {
  // Check local storage first.
  auto& self = node(origin);
  auto it = self.storage.find(key);
  if (it != self.storage.end()) {
    LookupResult result;
    result.converged = true;
    result.value = it->second;
    return result;
  }
  return run_lookup(origin, key, /*want_value=*/true, key);
}

std::vector<Contact> KademliaSystem::routing_table(PeerId peer) const {
  const Node& self = nodes_[index_of_.at(peer.value())];
  std::vector<Contact> all;
  for (const Bucket& bucket : self.buckets)
    all.insert(all.end(), bucket.contacts.begin(), bucket.contacts.end());
  return all;
}

double KademliaSystem::intra_as_contact_fraction() const {
  std::size_t total = 0;
  std::size_t intra = 0;
  for (const Node& self : nodes_) {
    const AsId my_as = network_.host(self.peer).as;
    for (const Bucket& bucket : self.buckets) {
      for (const Contact& contact : bucket.contacts) {
        ++total;
        if (network_.host(contact.peer).as == my_as) ++intra;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(intra) /
                                static_cast<double>(total);
}

}  // namespace uap2p::overlay::kademlia
