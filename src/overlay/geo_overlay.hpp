// Location-based overlay modelled on Globase.KOM (Kovacevic et al. [19];
// paper §2.4/§4): a hierarchical tree of geographic zones with supervisor
// peers, supporting fully retrievable location-based search.
//
// The world (a configurable bounding box) is split into a quadtree; a
// zone splits when it holds more than `max_zone_peers` members. Each zone
// elects as supervisor its highest-capacity member (peer-resource
// awareness feeding geolocation awareness, as the survey suggests
// combining them). An area search routes from the origin's leaf zone up
// to the smallest zone enclosing the query rectangle, then fans out down
// to every intersecting leaf; leaf supervisors reply to the origin with
// their matching members. All routing rides real Network messages.
//
// The paper's §2.4 challenges are observable here: "routing around dead
// nodes" (offline supervisors drop queries until repair() re-elects) and
// "operating in low density environments" (sparse zones make deep,
// lopsided trees).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "underlay/geo.hpp"
#include "underlay/network.hpp"

namespace uap2p::overlay::geo {

/// Axis-aligned geographic rectangle (degrees).
struct GeoRect {
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;

  [[nodiscard]] bool contains(const underlay::GeoPoint& p) const {
    return p.lat_deg >= lat_lo && p.lat_deg < lat_hi && p.lon_deg >= lon_lo &&
           p.lon_deg < lon_hi;
  }
  [[nodiscard]] bool contains(const GeoRect& other) const {
    return other.lat_lo >= lat_lo && other.lat_hi <= lat_hi &&
           other.lon_lo >= lon_lo && other.lon_hi <= lon_hi;
  }
  [[nodiscard]] bool intersects(const GeoRect& other) const {
    return !(other.lat_hi <= lat_lo || other.lat_lo >= lat_hi ||
             other.lon_hi <= lon_lo || other.lon_lo >= lon_hi);
  }
};

struct GeoConfig {
  GeoRect world{35.0, 62.0, -12.0, 32.0};  ///< Continental default box.
  std::size_t max_zone_peers = 8;
  std::uint32_t search_bytes = 64;
  std::uint32_t reply_base_bytes = 32;
  std::uint32_t reply_entry_bytes = 12;
  std::uint64_t seed = 41;
};

struct AreaSearchResult {
  std::vector<PeerId> found;
  std::size_t expected = 0;       ///< Ground-truth member count in the rect.
  std::size_t messages = 0;       ///< Routing + reply messages.
  sim::SimTime duration_ms = 0.0;
  [[nodiscard]] double completeness() const {
    return expected == 0 ? 1.0
                         : static_cast<double>(found.size()) /
                               static_cast<double>(expected);
  }
};

class GeoOverlay {
 public:
  /// Opaque tree node; defined in the implementation file. Public only so
  /// in-flight search payloads can carry a target-zone handle.
  struct Zone;

  /// Builds the zone tree over `peers` using their (GPS-accurate) host
  /// locations. Peers outside the world box are clamped onto its border.
  GeoOverlay(underlay::Network& network, std::vector<PeerId> peers,
             GeoConfig config = {});
  ~GeoOverlay();
  GeoOverlay(const GeoOverlay&) = delete;
  GeoOverlay& operator=(const GeoOverlay&) = delete;

  /// All peers inside `rect`, retrieved via tree routing. Drains the
  /// engine until replies settle.
  AreaSearchResult area_search(PeerId origin, const GeoRect& rect);

  /// Convenience point-of-interest search: peers within `radius_km` of
  /// `center`, sorted by distance (an emergency-service / POI lookup,
  /// paper §2.4).
  AreaSearchResult radius_search(PeerId origin,
                                 const underlay::GeoPoint& center,
                                 double radius_km);

  /// Geocast (GeoPeer [2]: "information dissemination based on
  /// geographical information"): delivers a payload to every online peer
  /// inside `rect`, routed through the zone tree. Returns coverage stats.
  struct GeocastResult {
    std::size_t delivered = 0;
    std::size_t expected = 0;
    std::size_t messages = 0;
    sim::SimTime duration_ms = 0.0;
    [[nodiscard]] double coverage() const {
      return expected == 0 ? 1.0
                           : static_cast<double>(delivered) /
                                 static_cast<double>(expected);
    }
  };
  GeocastResult geocast(PeerId origin, const GeoRect& rect,
                        std::uint32_t payload_bytes = 256);

  /// Geographically scoped hashing (Leopard, Yu et al. [33]; paper §4):
  /// content is published *into a geographic scope* — it is stored at the
  /// supervisors of every leaf zone intersecting the scope rectangle, so
  /// lookups from inside the scope resolve at the nearest zone level
  /// (locality-aware, no global hot spot). A lookup walks up from the
  /// querier's leaf until a zone that stores the content is found.
  struct ScopedPutResult {
    std::size_t zones_stored = 0;
    std::size_t messages = 0;
  };
  ScopedPutResult scoped_put(PeerId provider, ContentId content,
                             const GeoRect& scope);

  struct ScopedGetResult {
    bool found = false;
    std::vector<PeerId> providers;
    std::size_t tree_levels_climbed = 0;
    std::size_t messages = 0;
    sim::SimTime duration_ms = 0.0;
  };
  ScopedGetResult scoped_get(PeerId origin, ContentId content);

  /// Re-elects supervisors of zones whose supervisor went offline.
  void repair();

  /// Mobility support (§6): re-registers `peer` at its current host
  /// location — removes it from its old zone and inserts it at the new
  /// one (splitting/electing as needed). Call after Network::move_host;
  /// stale registrations otherwise make area searches miss movers.
  void reinsert(PeerId peer);

  [[nodiscard]] std::size_t zone_count() const;
  [[nodiscard]] std::size_t leaf_count() const;
  [[nodiscard]] std::size_t tree_depth() const;
  [[nodiscard]] PeerId supervisor_of(PeerId peer) const;
  /// Ground truth for tests: members whose location is inside `rect`.
  [[nodiscard]] std::vector<PeerId> ground_truth(const GeoRect& rect) const;

 private:
  struct SearchState;

  void insert(Zone& zone, PeerId peer, const underlay::GeoPoint& location);
  void split(Zone& zone);
  void elect_supervisor(Zone& zone);
  Zone* leaf_for(const underlay::GeoPoint& point);
  void on_message(PeerId self, const underlay::Message& msg);
  void route_search(Zone& zone, std::uint64_t search_id, PeerId origin,
                    const GeoRect& rect, bool descending,
                    bool geocast = false, std::uint32_t payload_bytes = 0);
  void deliver_to_supervisor(Zone& from, Zone& to, std::uint64_t search_id,
                             PeerId origin, const GeoRect& rect,
                             bool descending, bool geocast = false,
                             std::uint32_t payload_bytes = 0);

  underlay::Network& network_;
  GeoConfig config_;
  Rng rng_;
  std::unique_ptr<Zone> root_;
  std::vector<PeerId> peers_;
  std::uint64_t next_search_ = 1;
  std::unique_ptr<SearchState> active_;
};

}  // namespace uap2p::overlay::geo
