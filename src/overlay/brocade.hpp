// Brocade — "Landmark routing on overlay networks" (Zhao et al. [36];
// paper Table 1, ISP-location row).
//
// Brocade's observation: flat DHT routing wastes wide-area hops because
// consecutive overlay hops criss-cross autonomous systems. It layers a
// *secondary overlay of supernodes* — well-provisioned nodes near the
// network access points — over the flat overlay: a message first hops to
// the local supernode (intra-domain), tunnels supernode-to-supernode
// across the backbone once, and is delivered intra-domain on the far
// side. Here each AS elects its highest-capacity gateway-near peer as
// supernode; supernodes know the AS→supernode directory (Brocade's
// "cover set" mapping, which in the original is itself a small DHT).
//
// End-to-end routing therefore crosses AS boundaries exactly once, vs.
// once-per-overlay-hop for flat DHT routing — the comparison the
// Brocade test and ablation bench quantify.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "underlay/network.hpp"

namespace uap2p::overlay::brocade {

struct Config {
  std::uint32_t header_bytes = 48;  ///< Tunnel header per forwarded leg.
  /// Max time to wait for an end-to-end delivery before reporting loss.
  sim::SimTime delivery_timeout_ms = sim::seconds(20);
};

struct RouteResult {
  bool delivered = false;
  sim::SimTime latency_ms = -1.0;
  std::size_t overlay_hops = 0;      ///< Legs traversed (<= 3).
  std::size_t inter_as_crossings = 0;  ///< AS-boundary crossings, summed
                                       ///< over the legs' underlay paths.
};

class BrocadeSystem {
 public:
  /// Elects one supernode per AS (the highest-capacity online peer of
  /// that AS) and registers forwarding handlers.
  BrocadeSystem(underlay::Network& network, std::vector<PeerId> peers,
                Config config = {});

  /// Routes `bytes` from `src` to `dst` through the supernode tier.
  /// Intra-AS pairs short-circuit to a direct send. Drains the engine.
  RouteResult route(PeerId src, PeerId dst, std::uint32_t bytes);

  /// Re-elects supernodes (after churn).
  void repair();

  [[nodiscard]] PeerId supernode_of(AsId as) const;
  [[nodiscard]] std::size_t supernode_count() const;
  [[nodiscard]] std::uint64_t forwarded_messages() const { return forwarded_; }

 private:
  void elect();
  void on_message(PeerId self, const underlay::Message& msg);
  bool send_leg(PeerId from, PeerId to, std::uint32_t bytes);

  underlay::Network& network_;
  Config config_;
  std::vector<PeerId> peers_;
  std::vector<PeerId> supernode_of_as_;  // indexed by AS
  std::uint64_t forwarded_ = 0;

  struct ActiveRoute {
    std::uint64_t id = 0;
    PeerId dst = PeerId::invalid();
    sim::SimTime started = 0.0;
    bool delivered = false;
    sim::SimTime delivered_at = 0.0;
    std::size_t hops = 0;
    std::size_t crossings = 0;
  };
  std::optional<ActiveRoute> active_;
  std::uint64_t next_route_ = 1;
};

}  // namespace uap2p::overlay::brocade
