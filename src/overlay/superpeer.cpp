#include "overlay/superpeer.hpp"

#include <algorithm>
#include <cassert>

#include "netinfo/msg_types.hpp"

namespace uap2p::overlay::superpeer {
namespace {
constexpr sim::SimTime kQuiesceHorizonMs = sim::seconds(10);
// Reuses the gnutella HTTP tag space is avoided; superpeer queries use the
// gnutella Query range offset by 80 to stay distinct.
constexpr int kSpQuery = 180;
constexpr int kSpRelay = 181;
constexpr int kSpReply = 182;

struct QueryPayload {
  std::uint64_t search_id;
  PeerId origin;
  std::uint32_t content;
};
struct ReplyPayload {
  std::uint64_t search_id;
  std::vector<PeerId> providers;
};
}  // namespace

SuperPeerOverlay::SuperPeerOverlay(underlay::Network& network,
                                   std::vector<PeerId> peers, Config config,
                                   const netinfo::SkyEye* skyeye)
    : network_(network),
      config_(config),
      rng_(config.seed),
      peers_(std::move(peers)) {
  assert(config_.superpeer_count >= 1 &&
         config_.superpeer_count <= peers_.size());
  assert(config_.election != ElectionPolicy::kSkyEye || skyeye != nullptr);
  elect(skyeye);
  attach_clients();
  for (const PeerId peer : peers_) {
    network_.add_handler(peer, [this, peer](const underlay::Message& msg) {
      on_message(peer, msg);
    });
  }
}

void SuperPeerOverlay::elect(const netinfo::SkyEye* skyeye) {
  switch (config_.election) {
    case ElectionPolicy::kRandom: {
      const auto sample = rng_.sample_without_replacement(
          peers_.size(), config_.superpeer_count);
      for (const std::size_t index : sample)
        superpeers_.push_back(peers_[index]);
      break;
    }
    case ElectionPolicy::kGroundTruth: {
      std::vector<PeerId> sorted = peers_;
      std::sort(sorted.begin(), sorted.end(), [&](PeerId a, PeerId b) {
        return network_.host(a).resources.capacity_score() >
               network_.host(b).resources.capacity_score();
      });
      sorted.resize(config_.superpeer_count);
      superpeers_ = std::move(sorted);
      break;
    }
    case ElectionPolicy::kSkyEye: {
      for (const auto& entry :
           skyeye->query_top_capacity(config_.superpeer_count)) {
        superpeers_.push_back(entry.peer);
      }
      // SkyEye may know fewer candidates than requested (cold start /
      // churn); pad with the best remaining peers by ground truth so the
      // overlay still forms (a real deployment would use any cached list).
      std::vector<PeerId> rest;
      for (const PeerId peer : peers_) {
        if (std::find(superpeers_.begin(), superpeers_.end(), peer) ==
            superpeers_.end()) {
          rest.push_back(peer);
        }
      }
      std::sort(rest.begin(), rest.end(), [&](PeerId a, PeerId b) {
        return network_.host(a).resources.capacity_score() >
               network_.host(b).resources.capacity_score();
      });
      for (const PeerId peer : rest) {
        if (superpeers_.size() >= config_.superpeer_count) break;
        superpeers_.push_back(peer);
      }
      break;
    }
  }
}

void SuperPeerOverlay::attach_clients() {
  for (const PeerId peer : peers_) {
    if (std::find(superpeers_.begin(), superpeers_.end(), peer) !=
        superpeers_.end()) {
      continue;
    }
    PeerId chosen = PeerId::invalid();
    if (config_.attachment == AttachmentPolicy::kLatency) {
      double best = std::numeric_limits<double>::max();
      for (const PeerId sp : superpeers_) {
        const double rtt = network_.rtt_ms(peer, sp);
        if (rtt < best) {
          best = rtt;
          chosen = sp;
        }
      }
    } else {
      chosen = superpeers_[rng_.uniform(superpeers_.size())];
    }
    attachment_[peer.value()] = chosen;
  }
}

void SuperPeerOverlay::publish(PeerId peer, ContentId content) {
  const PeerId sp = superpeer_of(peer);
  index_[sp.value()][content.value()].push_back(peer);
}

PeerId SuperPeerOverlay::superpeer_of(PeerId client) const {
  auto it = attachment_.find(client.value());
  if (it != attachment_.end()) return it->second;
  // Super-peers index their own content.
  if (std::find(superpeers_.begin(), superpeers_.end(), client) !=
      superpeers_.end()) {
    return client;
  }
  return PeerId::invalid();
}

void SuperPeerOverlay::on_message(PeerId self, const underlay::Message& msg) {
  if (msg.type == kSpQuery || msg.type == kSpRelay) {
    const auto* payload = payload_cast<QueryPayload>(&msg.payload);
    if (payload == nullptr) return;
    // Answer from the local index.
    auto sp_index = index_.find(self.value());
    if (sp_index != index_.end()) {
      auto hit = sp_index->second.find(payload->content);
      if (hit != sp_index->second.end() && !hit->second.empty()) {
        underlay::Message reply;
        reply.src = self;
        reply.dst = payload->origin;
        reply.type = kSpReply;
        reply.size_bytes = config_.reply_bytes;
        reply.payload = ReplyPayload{payload->search_id, hit->second};
        if (network_.send(std::move(reply)) && active_) ++active_->messages;
      }
    }
    // First-hop super-peer relays across the mesh exactly once.
    if (msg.type == kSpQuery) {
      for (const PeerId other : superpeers_) {
        if (other == self) continue;
        underlay::Message relay;
        relay.src = self;
        relay.dst = other;
        relay.type = kSpRelay;
        relay.size_bytes = config_.query_bytes;
        relay.payload = *payload;
        if (network_.send(std::move(relay)) && active_) ++active_->messages;
      }
    }
  } else if (msg.type == kSpReply) {
    const auto* payload = payload_cast<ReplyPayload>(&msg.payload);
    if (payload == nullptr) return;
    if (!active_ || active_->id != payload->search_id ||
        self != active_->origin) {
      return;
    }
    if (active_->first_reply < 0.0) {
      active_->first_reply = network_.engine().now() - active_->started;
    }
    for (const PeerId provider : payload->providers) {
      active_->providers.insert(provider.value());
    }
  }
}

SearchResult SuperPeerOverlay::search(PeerId origin, ContentId content) {
  SearchResult result;
  const PeerId sp = superpeer_of(origin);
  if (!sp.is_valid() || !network_.is_online(sp)) return result;

  active_ = ActiveSearch{next_search_++, origin, {}, network_.engine().now(),
                         -1.0, 0};
  underlay::Message msg;
  msg.src = origin;
  msg.dst = sp;
  msg.type = kSpQuery;
  msg.size_bytes = config_.query_bytes;
  msg.payload = QueryPayload{active_->id, origin, content.value()};
  if (origin == sp) {
    // A super-peer searching consults itself directly.
    on_message(origin, msg);
  } else if (network_.send(std::move(msg))) {
    ++active_->messages;
  }
  network_.engine().run_until(network_.engine().now() + kQuiesceHorizonMs);

  result.found = !active_->providers.empty();
  result.providers = active_->providers.size();
  result.latency_ms = active_->first_reply;
  result.messages = active_->messages;
  active_.reset();
  return result;
}

double SuperPeerOverlay::mean_superpeer_capacity() const {
  if (superpeers_.empty()) return 0.0;
  double acc = 0.0;
  for (const PeerId sp : superpeers_)
    acc += network_.host(sp).resources.capacity_score();
  return acc / static_cast<double>(superpeers_.size());
}

double SuperPeerOverlay::expected_stability() const {
  if (superpeers_.empty()) return 0.0;
  double acc = 0.0;
  for (const PeerId sp : superpeers_) {
    const double online = network_.host(sp).resources.expected_online_ms;
    acc += online / (online + sim::minutes(10));  // vs mean downtime
  }
  return acc / static_cast<double>(superpeers_.size());
}

double SuperPeerOverlay::mean_attachment_rtt_ms() {
  if (attachment_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [client, sp] : attachment_) {
    acc += network_.rtt_ms(PeerId(client), sp);
  }
  return acc / static_cast<double>(attachment_.size());
}

std::vector<std::size_t> SuperPeerOverlay::load_distribution() const {
  std::vector<std::size_t> load(superpeers_.size(), 0);
  for (const auto& [client, sp] : attachment_) {
    for (std::size_t i = 0; i < superpeers_.size(); ++i) {
      if (superpeers_[i] == sp) {
        ++load[i];
        break;
      }
    }
  }
  return load;
}

}  // namespace uap2p::overlay::superpeer
