#include "overlay/bittorrent.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "netinfo/msg_types.hpp"

namespace uap2p::overlay::bittorrent {

BitTorrentSwarm::BitTorrentSwarm(underlay::Network& network,
                                 std::vector<PeerId> peers,
                                 std::size_t initial_seeds, Config config)
    : network_(network), config_(config), rng_(config.seed) {
  assert(initial_seeds >= 1 && initial_seeds <= peers.size());
  piece_owners_.assign(config_.piece_count, 0);
  nodes_.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    Node node;
    node.peer = peers[i];
    node.seed = i < initial_seeds;
    node.bitfield.assign(config_.piece_count, node.seed);
    node.have_count = node.seed ? config_.piece_count : 0;
    if (node.seed) {
      for (auto& owners : piece_owners_) ++owners;
    }
    nodes_.push_back(std::move(node));
  }
}

void BitTorrentSwarm::build_neighborhoods() {
  // Tracker view: peers grouped by AS for the biased policy.
  std::vector<std::vector<std::size_t>> by_as(network_.topology().as_count());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    by_as[network_.host(nodes_[i].peer).as.value()].push_back(i);
  }

  auto link = [&](std::size_t a, std::size_t b) {
    if (a == b) return false;
    auto& na = nodes_[a].neighbors;
    if (std::find(na.begin(), na.end(), b) != na.end()) return false;
    if (na.size() >= config_.max_neighbors + 2) return false;
    if (nodes_[b].neighbors.size() >= config_.max_neighbors + 2) return false;
    na.push_back(b);
    nodes_[b].neighbors.push_back(a);
    return true;
  };

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& me = nodes_[i];
    const AsId my_as = network_.host(me.peer).as;
    if (config_.policy == NeighborPolicy::kCustom) {
      assert(config_.custom_ranker);
      std::vector<PeerId> all_peers;
      all_peers.reserve(nodes_.size());
      for (const Node& node : nodes_) all_peers.push_back(node.peer);
      const auto ranked = config_.custom_ranker(me.peer, all_peers);
      const std::size_t ranked_target =
          config_.max_neighbors > config_.external_neighbors
              ? config_.max_neighbors - config_.external_neighbors
              : config_.max_neighbors;
      std::size_t links = 0;
      for (const PeerId pick : ranked) {
        if (links >= ranked_target) break;
        // Map the peer back to its swarm index.
        for (std::size_t j = 0; j < nodes_.size(); ++j) {
          if (nodes_[j].peer == pick) {
            if (link(i, j)) ++links;
            break;
          }
        }
      }
      std::size_t random_links = 0;
      std::size_t attempts = 0;
      while (random_links < config_.external_neighbors &&
             attempts < nodes_.size() * 4) {
        ++attempts;
        if (link(i, rng_.uniform(nodes_.size()))) ++random_links;
      }
    } else if (config_.policy == NeighborPolicy::kCostAware) {
      // CAT [32]: order all candidates by path cost — transit crossings
      // weigh heavily (they are billed), peering crossings mildly, then
      // keep a couple of random links for robustness.
      std::vector<std::size_t> order(nodes_.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::vector<double> cost(nodes_.size(), 0.0);
      for (std::size_t j = 0; j < nodes_.size(); ++j) {
        if (j == i) { cost[j] = 1e18; continue; }
        const auto& path = network_.path_between(me.peer, nodes_[j].peer);
        cost[j] = path.reachable
                      ? 4.0 * path.transit_crossings + 1.0 * path.peering_crossings
                      : 1e9;
        cost[j] += rng_.uniform01() * 0.01;  // stable random tie-break
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return cost[a] < cost[b];
      });
      const std::size_t cheap_target =
          config_.max_neighbors > config_.external_neighbors
              ? config_.max_neighbors - config_.external_neighbors
              : config_.max_neighbors;
      std::size_t links = 0;
      for (const std::size_t j : order) {
        if (links >= cheap_target) break;
        if (link(i, j)) ++links;
      }
      std::size_t random_links = 0;
      std::size_t attempts = 0;
      while (random_links < config_.external_neighbors &&
             attempts < nodes_.size() * 4) {
        ++attempts;
        if (link(i, rng_.uniform(nodes_.size()))) ++random_links;
      }
    } else if (config_.policy == NeighborPolicy::kBiased) {
      // [3]: fill with same-AS peers first, then exactly a few external.
      const std::size_t internal_target =
          config_.max_neighbors > config_.external_neighbors
              ? config_.max_neighbors - config_.external_neighbors
              : 0;
      auto& local = by_as[my_as.value()];
      auto order = rng_.sample_without_replacement(local.size(), local.size());
      std::size_t internal_links = 0;
      for (const std::size_t slot : order) {
        if (internal_links >= internal_target) break;
        if (link(i, local[slot])) ++internal_links;
      }
      std::size_t external_links = 0;
      std::size_t attempts = 0;
      while (external_links < config_.external_neighbors &&
             attempts < nodes_.size() * 4) {
        ++attempts;
        const std::size_t other = rng_.uniform(nodes_.size());
        if (network_.host(nodes_[other].peer).as == my_as) continue;
        if (link(i, other)) ++external_links;
      }
    } else {
      std::size_t attempts = 0;
      while (me.neighbors.size() < config_.max_neighbors &&
             attempts < nodes_.size() * 4) {
        ++attempts;
        link(i, rng_.uniform(nodes_.size()));
      }
    }
  }
  for (Node& node : nodes_) {
    node.received_from.assign(node.neighbors.size(), 0);
  }
}

std::size_t BitTorrentSwarm::pick_rarest(const Node& me,
                                         const Node& uploader) const {
  std::size_t best = SIZE_MAX;
  std::size_t best_rarity = SIZE_MAX;
  for (std::size_t piece = 0; piece < config_.piece_count; ++piece) {
    if (me.bitfield[piece] || !uploader.bitfield[piece]) continue;
    if (piece_owners_[piece] < best_rarity) {
      best_rarity = piece_owners_[piece];
      best = piece;
    }
  }
  return best;
}

void BitTorrentSwarm::transfer_piece(std::size_t from, std::size_t to,
                                     std::size_t piece, unsigned round) {
  Node& uploader = nodes_[from];
  Node& downloader = nodes_[to];
  // Request + piece ride the network for latency/billing realism.
  underlay::Message request;
  request.src = downloader.peer;
  request.dst = uploader.peer;
  request.type = msg::kBtRequest;
  request.size_bytes = config_.request_bytes;
  network_.send(std::move(request));

  underlay::Message data;
  data.src = uploader.peer;
  data.dst = downloader.peer;
  data.type = msg::kBtPiece;
  data.size_bytes = config_.piece_bytes;
  network_.send(std::move(data));

  downloader.bitfield[piece] = true;
  ++downloader.have_count;
  ++piece_owners_[piece];
  ++stats_.pieces_transferred;
  piece_metric_.inc();
  if (network_.host(uploader.peer).as == network_.host(downloader.peer).as) {
    ++stats_.intra_as_pieces;
    intra_piece_metric_.inc();
  }
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay,
                    static_cast<std::int32_t>(downloader.peer.value()),
                    static_cast<std::int32_t>(uploader.peer.value()),
                    obs::op::kPieceTransfer, static_cast<double>(piece)});
  }
  // Tit-for-tat accounting.
  for (std::size_t slot = 0; slot < downloader.neighbors.size(); ++slot) {
    if (downloader.neighbors[slot] == from) {
      downloader.received_from[slot] += config_.piece_bytes;
    }
  }
  // Have gossip to all neighbors.
  for (const std::size_t neighbor : downloader.neighbors) {
    underlay::Message have;
    have.src = downloader.peer;
    have.dst = nodes_[neighbor].peer;
    have.type = msg::kBtHave;
    have.size_bytes = config_.have_bytes;
    network_.send(std::move(have));
  }
  if (downloader.have_count == config_.piece_count && !downloader.seed) {
    downloader.seed = true;
    downloader.completed_round = round;
    ++stats_.completed;
    stats_.completion_rounds.add(static_cast<double>(round));
  }
}

void BitTorrentSwarm::rechoke(std::size_t index, unsigned round) {
  Node& me = nodes_[index];
  me.unchoked.clear();
  // Interested neighbors: those missing a piece we have.
  std::vector<std::size_t> interested;
  for (std::size_t slot = 0; slot < me.neighbors.size(); ++slot) {
    const Node& other = nodes_[me.neighbors[slot]];
    if (other.have_count >= config_.piece_count) continue;
    for (std::size_t piece = 0; piece < config_.piece_count; ++piece) {
      if (me.bitfield[piece] && !other.bitfield[piece]) {
        interested.push_back(slot);
        break;
      }
    }
  }
  if (interested.empty()) return;

  if (me.seed) {
    // Seeds rotate service round-robin over interested peers.
    for (std::size_t n = 0; n < config_.upload_slots + 1 &&
                            n < interested.size();
         ++n) {
      me.unchoked.push_back(
          me.neighbors[interested[(round + n) % interested.size()]]);
    }
    return;
  }
  // Tit-for-tat: top slots by bytes received from them recently.
  std::sort(interested.begin(), interested.end(),
            [&](std::size_t a, std::size_t b) {
              return me.received_from[a] > me.received_from[b];
            });
  for (std::size_t n = 0; n < config_.upload_slots && n < interested.size();
       ++n) {
    me.unchoked.push_back(me.neighbors[interested[n]]);
  }
  // Optimistic unchoke: one random interested peer outside the top slots.
  if (interested.size() > config_.upload_slots) {
    const std::size_t extra =
        config_.upload_slots +
        rng_.uniform(interested.size() - config_.upload_slots);
    me.unchoked.push_back(me.neighbors[interested[extra]]);
  }
  // Rate window decays so choking adapts.
  for (auto& bytes : me.received_from) bytes /= 2;
}

void BitTorrentSwarm::run_round(unsigned round) {
  sim::OriginScope origin(network_.engine(), obs::origin::kTransfer);
  if (round % config_.rechoke_every == 0) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) rechoke(i, round);
  }
  // Each uploader serves one piece per unchoked slot per round.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& uploader = nodes_[i];
    for (const std::size_t downloader_index : uploader.unchoked) {
      Node& downloader = nodes_[downloader_index];
      if (downloader.have_count >= config_.piece_count) continue;
      const std::size_t piece = pick_rarest(downloader, uploader);
      if (piece == SIZE_MAX) continue;
      transfer_piece(i, downloader_index, piece, round);
    }
  }
}

std::size_t BitTorrentSwarm::run(std::size_t max_rounds) {
  std::size_t leechers = 0;
  for (const Node& node : nodes_) {
    if (!node.seed) ++leechers;
  }
  std::size_t rounds = 0;
  for (unsigned round = 0; round < max_rounds; ++round) {
    if (stats_.completed >= leechers) break;
    run_round(round);
    ++rounds;
    network_.engine().run_until(network_.engine().now() + config_.round_ms);
  }
  return rounds;
}

double BitTorrentSwarm::intra_as_edge_fraction() const {
  std::size_t total = 0;
  std::size_t intra = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::size_t j : nodes_[i].neighbors) {
      if (j <= i) continue;
      ++total;
      if (network_.host(nodes_[i].peer).as == network_.host(nodes_[j].peer).as)
        ++intra;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(intra) /
                                static_cast<double>(total);
}

std::size_t BitTorrentSwarm::inter_as_edge_count() const {
  std::size_t inter = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::size_t j : nodes_[i].neighbors) {
      if (j <= i) continue;
      if (network_.host(nodes_[i].peer).as != network_.host(nodes_[j].peer).as)
        ++inter;
    }
  }
  return inter;
}

std::size_t BitTorrentSwarm::min_inter_as_edges_for_connectivity() const {
  std::vector<bool> present(network_.topology().as_count(), false);
  for (const Node& node : nodes_) {
    present[network_.host(node.peer).as.value()] = true;
  }
  const auto count = static_cast<std::size_t>(
      std::count(present.begin(), present.end(), true));
  return count == 0 ? 0 : count - 1;
}

bool BitTorrentSwarm::overlay_connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> visited(nodes_.size(), false);
  std::vector<std::size_t> stack{0};
  visited[0] = true;
  std::size_t seen = 1;
  while (!stack.empty()) {
    const std::size_t current = stack.back();
    stack.pop_back();
    for (const std::size_t next : nodes_[current].neighbors) {
      if (!visited[next]) {
        visited[next] = true;
        ++seen;
        stack.push_back(next);
      }
    }
  }
  return seen == nodes_.size();
}

std::vector<PeerId> BitTorrentSwarm::neighbors_of(PeerId peer) const {
  for (const Node& node : nodes_) {
    if (node.peer == peer) {
      std::vector<PeerId> result;
      result.reserve(node.neighbors.size());
      for (const std::size_t index : node.neighbors)
        result.push_back(nodes_[index].peer);
      return result;
    }
  }
  return {};
}

bool BitTorrentSwarm::is_complete(PeerId peer) const {
  for (const Node& node : nodes_) {
    if (node.peer == peer) return node.have_count == config_.piece_count;
  }
  return false;
}

}  // namespace uap2p::overlay::bittorrent
