// Resource-aware super-peer overlay (paper §2.3 / §4: "different roles in
// the network are taken by appropriate nodes" [11]).
//
// A hybrid two-tier system: elected super-peers form a full mesh and index
// the content of their attached clients; a client search goes to its
// super-peer, which answers from its own index and relays one hop across
// the mesh. Election can use ground-truth resources, the SkyEye oracle
// view (the realistic deployment), or random choice (the baseline that
// Table 2's "Peer Resources" column is measured against). Clients attach
// to the lowest-latency super-peer — or a random one for the baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "netinfo/skyeye.hpp"
#include "underlay/network.hpp"

namespace uap2p::overlay::superpeer {

enum class ElectionPolicy {
  kRandom,       ///< Baseline: any peer may become a super-peer.
  kGroundTruth,  ///< Ideal: exact resource knowledge.
  kSkyEye,       ///< Realistic: the SkyEye root view's top-capacity list.
};

enum class AttachmentPolicy {
  kRandom,   ///< Clients pick an arbitrary super-peer.
  kLatency,  ///< Clients pick the lowest-RTT super-peer.
};

struct Config {
  std::size_t superpeer_count = 8;
  ElectionPolicy election = ElectionPolicy::kGroundTruth;
  AttachmentPolicy attachment = AttachmentPolicy::kLatency;
  std::uint32_t query_bytes = 64;
  std::uint32_t reply_bytes = 96;
  std::uint64_t seed = 57;
};

struct SearchResult {
  bool found = false;
  std::size_t providers = 0;
  sim::SimTime latency_ms = -1.0;
  std::size_t messages = 0;
};

class SuperPeerOverlay {
 public:
  /// Elects super-peers from `peers` and attaches the rest as clients.
  /// `skyeye` is required for ElectionPolicy::kSkyEye.
  SuperPeerOverlay(underlay::Network& network, std::vector<PeerId> peers,
                   Config config, const netinfo::SkyEye* skyeye = nullptr);

  /// Publishes that `peer` offers `content`; indexed at its super-peer.
  void publish(PeerId peer, ContentId content);

  /// Client search: one hop to the super-peer, one relay across the mesh.
  /// Drains the engine until replies settle.
  SearchResult search(PeerId origin, ContentId content);

  [[nodiscard]] const std::vector<PeerId>& superpeers() const {
    return superpeers_;
  }
  [[nodiscard]] PeerId superpeer_of(PeerId client) const;
  /// Mean capacity score of the elected super-peers (election quality).
  [[nodiscard]] double mean_superpeer_capacity() const;
  /// Expected fraction of an hour a random super-peer stays online
  /// (stability proxy built from expected_online_ms).
  [[nodiscard]] double expected_stability() const;
  /// Mean client→super-peer RTT (ms).
  [[nodiscard]] double mean_attachment_rtt_ms();
  /// Clients per super-peer (load balance check).
  [[nodiscard]] std::vector<std::size_t> load_distribution() const;

 private:
  void elect(const netinfo::SkyEye* skyeye);
  void attach_clients();
  void on_message(PeerId self, const underlay::Message& msg);

  underlay::Network& network_;
  Config config_;
  Rng rng_;
  std::vector<PeerId> peers_;
  std::vector<PeerId> superpeers_;
  std::unordered_map<std::uint32_t, PeerId> attachment_;  // client -> SP
  // Per-super-peer index: content -> providers.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint32_t, std::vector<PeerId>>>
      index_;

  struct ActiveSearch {
    std::uint64_t id = 0;
    PeerId origin = PeerId::invalid();
    std::unordered_set<std::uint32_t> providers;
    sim::SimTime started = 0.0;
    sim::SimTime first_reply = -1.0;
    std::size_t messages = 0;
  };
  std::optional<ActiveSearch> active_;
  std::uint64_t next_search_ = 1;
};

}  // namespace uap2p::overlay::superpeer
