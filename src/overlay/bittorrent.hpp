// BitTorrent-style content distribution swarm with biased neighbor
// selection (Bindal et al. [3]; paper §4 and Figure 6).
//
// A tracker hands each joining peer a neighbor set: uniformly random
// (classic BitTorrent) or biased — mostly peers from the same AS plus a
// configurable few external ones, [3]'s "k internal + m external" rule
// that keeps the swarm connected across ASes with the minimal number of
// inter-AS links (Figure 6b).
//
// The swarm itself is a round-based chunk-level model of the real
// protocol: rarest-first piece selection, tit-for-tat rechoking with an
// optimistic unchoke slot, Have gossip, and seeds that serve round-robin.
// Piece transfers ride real Network messages, so the inter-AS byte split
// and the transit bill come from the same TrafficAccountant every other
// experiment uses.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "underlay/network.hpp"

namespace uap2p::overlay::bittorrent {

enum class NeighborPolicy {
  kRandom,     ///< Tracker returns a uniform random subset.
  kBiased,     ///< Same-AS preferred, `external_neighbors` cross-AS ([3]).
  kCostAware,  ///< CAT [32]: candidates ranked by the monetary cost of the
               ///< path (paid transit crossings first criterion), so
               ///< peering-reachable ASes count as nearly local.
  kCustom,     ///< Tracker delegates to Config::custom_ranker — the hook
               ///< through which any §3 collector (P4P iTracker, Ono,
               ///< core policies) can drive neighbor selection.
};

/// Best-first ranking of `candidates` for `self` (see kCustom).
using TrackerRanker =
    std::function<std::vector<PeerId>(PeerId self,
                                      std::span<const PeerId> candidates)>;

struct Config {
  std::size_t piece_count = 64;
  std::uint32_t piece_bytes = 256 * 1024;
  std::size_t max_neighbors = 8;
  std::size_t upload_slots = 3;       ///< Tit-for-tat slots (+1 optimistic).
  unsigned rechoke_every = 3;         ///< Rounds between rechokes.
  sim::SimTime round_ms = sim::seconds(1);
  NeighborPolicy policy = NeighborPolicy::kRandom;
  std::size_t external_neighbors = 1; ///< Cross-AS links under kBiased.
  /// Required when policy == kCustom; ignored otherwise. Random links
  /// (`external_neighbors` of them) are still added for robustness.
  TrackerRanker custom_ranker;
  std::uint32_t have_bytes = 9;
  std::uint32_t request_bytes = 17;
  std::uint64_t seed = 123;
};

struct SwarmStats {
  std::size_t completed = 0;
  Samples completion_rounds;          ///< Per-leecher rounds to finish.
  std::uint64_t pieces_transferred = 0;
  std::uint64_t intra_as_pieces = 0;
  [[nodiscard]] double intra_as_piece_fraction() const {
    return pieces_transferred == 0
               ? 0.0
               : static_cast<double>(intra_as_pieces) /
                     static_cast<double>(pieces_transferred);
  }
};

class BitTorrentSwarm {
 public:
  /// `initial_seeds` peers start with the full content; the rest join as
  /// leechers.
  BitTorrentSwarm(underlay::Network& network, std::vector<PeerId> peers,
                  std::size_t initial_seeds, Config config);

  /// Tracker phase: assigns every peer its neighbor set.
  void build_neighborhoods();

  /// Runs up to `max_rounds` swarm rounds on the engine; stops early when
  /// every leecher completed. Returns the number of rounds executed.
  std::size_t run(std::size_t max_rounds);

  [[nodiscard]] const SwarmStats& stats() const { return stats_; }
  /// Overlay graph metrics (Figure 6).
  [[nodiscard]] double intra_as_edge_fraction() const;
  [[nodiscard]] std::size_t inter_as_edge_count() const;
  [[nodiscard]] std::size_t min_inter_as_edges_for_connectivity() const;
  /// True when the neighbor graph is connected (sanity invariant: biased
  /// selection must not partition the swarm).
  [[nodiscard]] bool overlay_connected() const;
  [[nodiscard]] std::vector<PeerId> neighbors_of(PeerId peer) const;
  [[nodiscard]] bool is_complete(PeerId peer) const;

  /// Observability ---------------------------------------------------------
  /// Binds "bt.*" counters in `registry` (nullptr detaches); counters
  /// count from bind time onward.
  void set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
      piece_metric_ = {};
      intra_piece_metric_ = {};
      return;
    }
    piece_metric_ = registry->counter("bt.pieces.transferred");
    intra_piece_metric_ = registry->counter("bt.pieces.intra_as");
  }
  /// Emits a kOverlay op::kPieceTransfer record per piece transfer.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  struct Node {
    PeerId peer;
    std::vector<std::size_t> neighbors;      // indices into nodes_
    std::vector<bool> bitfield;
    std::size_t have_count = 0;
    bool seed = false;
    std::size_t completed_round = 0;
    std::vector<std::size_t> unchoked;       // neighbor indices unchoked BY us
    std::vector<std::uint64_t> received_from;  // bytes per neighbor slot
    std::size_t optimistic = SIZE_MAX;       // neighbor slot
  };

  void rechoke(std::size_t index, unsigned round);
  void run_round(unsigned round);
  [[nodiscard]] std::size_t pick_rarest(const Node& me,
                                        const Node& uploader) const;
  void transfer_piece(std::size_t from, std::size_t to, std::size_t piece,
                      unsigned round);

  underlay::Network& network_;
  Config config_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<std::size_t> piece_owners_;  // global rarity counter
  SwarmStats stats_;
  obs::Counter piece_metric_;
  obs::Counter intra_piece_metric_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace uap2p::overlay::bittorrent
