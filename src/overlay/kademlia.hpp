// Kademlia DHT with optional proximity neighbor selection.
//
// Implements the full Kademlia machinery — 64-bit XOR metric, k-buckets,
// iterative alpha-parallel FIND_NODE lookups with RPC timeouts, STORE /
// FIND_VALUE replication to the k closest nodes — plus the
// locality extension of Kaune et al. [17] ("Embracing the peer next
// door", paper §4): bucket maintenance prefers contacts that are close in
// the underlay (AS-hop distance via the oracle), which is routing-safe
// because any contact with the right prefix keeps lookups correct, and
// cuts the inter-AS traffic of lookups.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "netinfo/oracle.hpp"
#include "underlay/network.hpp"

namespace uap2p::overlay::kademlia {

/// 64-bit overlay identifier (enough key space for simulated populations).
using NodeId = std::uint64_t;
using Key = std::uint64_t;

/// XOR distance, the Kademlia metric.
[[nodiscard]] constexpr std::uint64_t xor_distance(NodeId a, NodeId b) {
  return a ^ b;
}
/// Index of the highest set bit of the distance = bucket index (0..63);
/// distance 0 is invalid (a node never buckets itself).
[[nodiscard]] int bucket_index(NodeId self, NodeId other);

enum class BucketPolicy {
  kVanilla,    ///< Classic Kademlia: full bucket rejects newcomers (LRS).
  kProximity,  ///< Kaune [17]: evict the underlay-farthest contact when a
               ///< closer-in-the-underlay candidate appears.
};

struct Config {
  std::size_t k = 8;          ///< Bucket size and replication factor.
  std::size_t alpha = 3;      ///< Lookup parallelism.
  BucketPolicy policy = BucketPolicy::kVanilla;
  sim::SimTime rpc_timeout_ms = sim::seconds(2);
  std::uint32_t find_node_bytes = 40;
  std::uint32_t contact_bytes = 20;  ///< Per contact in a reply.
  std::uint32_t store_bytes = 256;
  std::uint64_t seed = 77;
};

struct Contact {
  NodeId id = 0;
  PeerId peer = PeerId::invalid();
};

struct LookupResult {
  bool converged = false;
  std::vector<Contact> closest;       ///< k closest found, XOR-ascending.
  std::size_t messages_sent = 0;      ///< FIND_NODE RPCs issued.
  std::size_t hops = 0;               ///< Iterations until convergence.
  sim::SimTime duration_ms = 0.0;
  /// Mean AS-hop distance between the origin and the peers it queried —
  /// the lookup-traffic locality metric of Kaune [17] (0 when no oracle).
  double mean_rpc_as_hops = 0.0;
  std::optional<std::string> value;   ///< For find_value lookups.
};

class KademliaSystem {
 public:
  KademliaSystem(underlay::Network& network, std::vector<PeerId> peers,
                 Config config, const netinfo::Oracle* oracle = nullptr);

  /// Sequentially joins every node: seeds its routing table with an
  /// already-joined node and self-lookups to populate buckets. Drains the
  /// engine; returns when the overlay is formed.
  void join_all();

  /// Iterative node lookup from `origin` toward `target`.
  LookupResult lookup(PeerId origin, NodeId target);

  /// Stores `value` under `key` on the k closest nodes (lookup + STOREs).
  LookupResult store(PeerId origin, Key key, std::string value);

  /// Bucket maintenance: for each non-empty bucket of `peer`, looks up a
  /// random id inside that bucket's range (the standard Kademlia refresh;
  /// repopulates buckets after churn). Returns the number of lookups run.
  std::size_t refresh_buckets(PeerId peer);

  /// Value lookup; stops early when any queried node returns the value.
  LookupResult find_value(PeerId origin, Key key);

  [[nodiscard]] NodeId node_id(PeerId peer) const {
    return ids_.at(peer.value());
  }
  /// All contacts currently in `peer`'s buckets.
  [[nodiscard]] std::vector<Contact> routing_table(PeerId peer) const;
  /// Fraction of routing-table entries pointing into the owner's AS.
  [[nodiscard]] double intra_as_contact_fraction() const;
  [[nodiscard]] std::uint64_t total_rpcs() const { return rpcs_; }

  /// Observability ---------------------------------------------------------
  /// Binds "kad.*" counters in `registry` (nullptr detaches); counters
  /// count from bind time onward.
  void set_metrics(obs::MetricsRegistry* registry) {
    if (registry == nullptr) {
      rpc_metric_ = {};
      timeout_metric_ = {};
      return;
    }
    rpc_metric_ = registry->counter("kad.rpcs");
    timeout_metric_ = registry->counter("kad.rpc_timeouts");
  }
  /// Emits a kOverlay op::kLookup record per completed lookup.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  struct Bucket {
    std::vector<Contact> contacts;  // oldest first (vanilla LRS order)
  };
  struct Node {
    PeerId peer;
    NodeId id = 0;
    std::vector<Bucket> buckets;  // 64
    std::unordered_map<Key, std::string> storage;
  };

  struct FindNodePayload {
    std::uint64_t rpc_id;
    NodeId target;
    bool want_value = false;
    Key key = 0;
  };
  struct FindNodeReply {
    std::uint64_t rpc_id;
    NodeId responder_id;
    std::vector<Contact> contacts;
    std::optional<std::string> value;
  };
  struct StorePayload {
    Key key;
    std::string value;
  };

  struct ShortlistEntry {
    Contact contact;
    bool queried = false;
    bool responded = false;
    bool failed = false;
  };
  struct ActiveLookup {
    std::uint64_t lookup_id = 0;
    PeerId origin = PeerId::invalid();
    NodeId target = 0;
    bool want_value = false;
    Key key = 0;
    std::vector<ShortlistEntry> shortlist;  // XOR-ascending by contact.id
    std::size_t in_flight = 0;
    std::size_t messages = 0;
    std::size_t hops = 0;
    double rpc_as_hops_sum = 0.0;
    bool done = false;
    std::optional<std::string> value;
    sim::SimTime started = 0.0;
    std::unordered_map<std::uint64_t, sim::EventHandle> timeouts;  // rpc_id
  };

  Node& node(PeerId peer) { return nodes_[index_of_.at(peer.value())]; }
  void observe(Node& self, const Contact& contact);
  [[nodiscard]] std::vector<Contact> closest_contacts(const Node& self,
                                                      NodeId target,
                                                      std::size_t count) const;
  void on_message(PeerId self, const underlay::Message& msg);
  void insert_into_shortlist(ActiveLookup& lookup, const Contact& contact);
  void issue_queries(ActiveLookup& lookup);
  void finish_if_converged(ActiveLookup& lookup);
  LookupResult run_lookup(PeerId origin, NodeId target, bool want_value,
                          Key key);
  [[nodiscard]] double proximity_cost(PeerId a, PeerId b) const;

  underlay::Network& network_;
  Config config_;
  const netinfo::Oracle* oracle_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint32_t, std::size_t> index_of_;
  std::unordered_map<std::uint32_t, NodeId> ids_;
  std::uint64_t next_rpc_ = 1;
  std::uint64_t rpcs_ = 0;
  obs::Counter rpc_metric_;
  obs::Counter timeout_metric_;
  obs::TraceSink* trace_ = nullptr;
  std::optional<ActiveLookup> active_;
};

}  // namespace uap2p::overlay::kademlia
