#include "overlay/gnutella.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "netinfo/msg_types.hpp"

namespace uap2p::overlay::gnutella {
namespace {
/// How long to let a flood settle before reading results. Generous: the
/// deepest TTL-4 flood over continental latencies finishes well within it.
constexpr sim::SimTime kQuiesceHorizonMs = sim::seconds(30);
}  // namespace

MessageCounts& MessageCounts::operator+=(const MessageCounts& other) {
  ping += other.ping;
  pong += other.pong;
  query += other.query;
  query_hit += other.query_hit;
  return *this;
}

std::vector<NodeRole> testlab_roles(std::size_t peer_count,
                                    std::size_t leaves_per_up,
                                    std::size_t as_count) {
  std::vector<NodeRole> roles(peer_count, NodeRole::kLeaf);
  const std::size_t group = leaves_per_up + 1;
  if (as_count == 0) {
    for (std::size_t i = 0; i < peer_count; i += group)
      roles[i] = NodeRole::kUltrapeer;
  } else {
    // AS-round-robin layout: peer i sits in AS i % as_count at position
    // i / as_count; promote every `group`-th position within each AS.
    for (std::size_t i = 0; i < peer_count; ++i) {
      if ((i / as_count) % group == 0) roles[i] = NodeRole::kUltrapeer;
    }
  }
  return roles;
}

GnutellaSystem::GnutellaSystem(underlay::Network& network,
                               std::vector<PeerId> peers,
                               std::vector<NodeRole> roles, Config config,
                               const netinfo::Oracle* oracle)
    : network_(network),
      config_(config),
      oracle_(oracle),
      rng_(config.seed) {
  assert(peers.size() == roles.size());
  assert(config_.selection == NeighborSelection::kRandom || oracle_ != nullptr);
  bind_metrics(own_metrics_);
  if (sim::EngineGroup* group = network_.group();
      group != nullptr && group->size() > 1) {
    shard_lanes_.resize(group->size() - 1);
    for (ShardCounters& lane : shard_lanes_) {
      lane.ping = lane.side.counter("gnutella.messages.ping");
      lane.pong = lane.side.counter("gnutella.messages.pong");
      lane.query = lane.side.counter("gnutella.messages.query");
      lane.query_hit = lane.side.counter("gnutella.messages.query_hit");
    }
  }
  nodes_.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    Node node;
    node.peer = peers[i];
    node.role = roles[i];
    node.cache_rng = Rng(config_.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    index_of_[peers[i].value()] = nodes_.size();
    nodes_.push_back(std::move(node));
    network_.add_handler(peers[i], [this, peer = peers[i]](
                                       const underlay::Message& msg) {
      on_message(peer, msg);
    });
  }
}

void GnutellaSystem::add_to_hostcache(Node& node, PeerId peer) {
  if (peer == node.peer) return;
  if (std::find(node.hostcache.begin(), node.hostcache.end(), peer) !=
      node.hostcache.end()) {
    return;
  }
  if (node.hostcache.size() < config_.hostcache_size) {
    node.hostcache.push_back(peer);
  } else if (!node.hostcache.empty()) {
    node.hostcache[node.cache_rng.uniform(node.hostcache.size())] = peer;
  }
}

std::vector<PeerId> GnutellaSystem::selection_order(const Node& joining,
                                                    bool ups_only) {
  std::vector<PeerId> candidates;
  candidates.reserve(joining.hostcache.size());
  for (const PeerId candidate : joining.hostcache) {
    if (ups_only && node(candidate).role != NodeRole::kUltrapeer) continue;
    if (!network_.is_online(candidate)) continue;
    candidates.push_back(candidate);
  }
  if (config_.selection == NeighborSelection::kOracleBiased) {
    return oracle_->rank(joining.peer, candidates);
  }
  // Unbiased: uniformly random order.
  for (std::size_t i = candidates.size(); i > 1; --i) {
    std::swap(candidates[i - 1], candidates[rng_.uniform(i)]);
  }
  return candidates;
}

void GnutellaSystem::connect_ultrapeer(Node& joining) {
  const auto order = selection_order(joining, /*ups_only=*/true);
  auto try_connect = [&](PeerId candidate) {
    Node& other = node(candidate);
    if (other.up_neighbors.size() >= config_.max_ultrapeer_degree) return false;
    if (std::find(joining.up_neighbors.begin(), joining.up_neighbors.end(),
                  candidate) != joining.up_neighbors.end()) {
      return false;
    }
    joining.up_neighbors.push_back(candidate);
    other.up_neighbors.push_back(joining.peer);
    return true;
  };
  // Under biased selection, hold back slots for external (other-AS)
  // candidates so the clustered overlay stays connected (Fig. 6).
  const std::size_t reserved =
      config_.selection == NeighborSelection::kOracleBiased
          ? std::min(config_.min_external_ultrapeer_links,
                     config_.max_ultrapeer_degree)
          : 0;
  for (const PeerId candidate : order) {
    if (joining.up_neighbors.size() + reserved >=
        config_.max_ultrapeer_degree) {
      break;
    }
    try_connect(candidate);
  }
  if (reserved > 0) {
    const AsId my_as = network_.host(joining.peer).as;
    std::size_t externals = 0;
    for (const PeerId neighbor : joining.up_neighbors) {
      if (network_.host(neighbor).as != my_as) ++externals;
    }
    // The oracle ranks by AS hops, so walking the order finds the
    // *nearest* external ASes first — minimal links, minimal distance.
    for (const PeerId candidate : order) {
      if (externals >= reserved ||
          joining.up_neighbors.size() >= config_.max_ultrapeer_degree) {
        break;
      }
      if (network_.host(candidate).as == my_as) continue;
      if (try_connect(candidate)) ++externals;
    }
    // Any still-unused slots go to the best-ranked remaining candidates.
    for (const PeerId candidate : order) {
      if (joining.up_neighbors.size() >= config_.max_ultrapeer_degree) break;
      try_connect(candidate);
    }
  }
}

void GnutellaSystem::attach_leaf(Node& joining) {
  for (const PeerId candidate : selection_order(joining, /*ups_only=*/true)) {
    if (joining.ultrapeers.size() >= config_.leaf_attachments) break;
    Node& up = node(candidate);
    if (up.leaves.size() >= config_.max_leaves) continue;
    if (std::find(joining.ultrapeers.begin(), joining.ultrapeers.end(),
                  candidate) != joining.ultrapeers.end()) {
      continue;
    }
    joining.ultrapeers.push_back(candidate);
    up.leaves.push_back(joining.peer);
  }
}

void GnutellaSystem::bootstrap() {
  // [1]'s testlab: "The Hostcache of each node is filled with a random
  // subset of the network nodes' IP addresses."
  const std::size_t cache =
      std::min(config_.hostcache_size, nodes_.size() - 1);
  for (Node& node : nodes_) {
    const auto sample =
        rng_.sample_without_replacement(nodes_.size(), cache + 1);
    node.hostcache.clear();
    for (const std::size_t index : sample) {
      if (nodes_[index].peer == node.peer) continue;
      if (node.hostcache.size() >= cache) break;
      node.hostcache.push_back(nodes_[index].peer);
    }
  }
  // Ultrapeers mesh first (random join order), then leaves attach.
  auto order = rng_.sample_without_replacement(nodes_.size(), nodes_.size());
  for (const std::size_t index : order) {
    if (nodes_[index].role == NodeRole::kUltrapeer)
      connect_ultrapeer(nodes_[index]);
  }
  for (const std::size_t index : order) {
    if (nodes_[index].role == NodeRole::kLeaf) attach_leaf(nodes_[index]);
  }
}

void GnutellaSystem::share(PeerId peer, ContentId content) {
  node(peer).shared.insert(content.value());
}

void GnutellaSystem::begin_flood_cycle() {
  // Guids are monotonic and the engine quiesces between flood cycles, so
  // no in-flight message can reference a guid from a previous cycle;
  // epoch-bumping every node's table is a safe O(nodes) reset that keeps
  // all slot capacity for the next flood.
  for (Node& me : nodes_) me.flood_state.clear();
}

void GnutellaSystem::bind_metrics(obs::MetricsRegistry& registry) {
  // Move the current values into the target registry, so counts() stays
  // exact across a rebind (e.g. GnutellaLab attaching its per-trial
  // registry after construction). Zeroing the old slots first makes the
  // migration correct even when the target is the registry already bound.
  const MessageCounts current = counts();
  ping_count_.set(0);
  pong_count_.set(0);
  query_count_.set(0);
  query_hit_count_.set(0);
  ping_count_ = registry.counter("gnutella.messages.ping");
  pong_count_ = registry.counter("gnutella.messages.pong");
  query_count_ = registry.counter("gnutella.messages.query");
  query_hit_count_ = registry.counter("gnutella.messages.query_hit");
  ping_count_.inc(current.ping);
  pong_count_.inc(current.pong);
  query_count_.inc(current.query);
  query_hit_count_.inc(current.query_hit);
}

void GnutellaSystem::send_typed(PeerId from, PeerId to, int type,
                                std::uint32_t bytes, Payload payload) {
  // Shard windows > 0 count into their private lane; shard 0 and driver
  // code share the main counters (only ever touched by one thread at a
  // time — shard 0's during windows, the coordinator between them).
  const int lane = sim::current_shard();
  if (lane <= 0 || shard_lanes_.empty()) {
    switch (type) {
      case msg::kGnutellaPing: ping_count_.inc(); break;
      case msg::kGnutellaPong: pong_count_.inc(); break;
      case msg::kGnutellaQuery: query_count_.inc(); break;
      case msg::kGnutellaQueryHit: query_hit_count_.inc(); break;
      default: break;
    }
  } else {
    ShardCounters& counters = shard_lanes_[static_cast<std::size_t>(lane) - 1];
    switch (type) {
      case msg::kGnutellaPing: counters.ping.inc(); break;
      case msg::kGnutellaPong: counters.pong.inc(); break;
      case msg::kGnutellaQuery: counters.query.inc(); break;
      case msg::kGnutellaQueryHit: counters.query_hit.inc(); break;
      default: break;
    }
  }
  underlay::Message msg;
  msg.src = from;
  msg.dst = to;
  msg.type = type;
  msg.size_bytes = bytes;
  msg.payload = std::move(payload);
  network_.send(std::move(msg));
}

void GnutellaSystem::on_message(PeerId self, const underlay::Message& msg) {
  switch (msg.type) {
    case msg::kGnutellaPing:
      handle_ping(self, msg.src, *payload_cast<PingPayload>(&msg.payload));
      break;
    case msg::kGnutellaPong:
      handle_pong(self, *payload_cast<PongPayload>(&msg.payload));
      break;
    case msg::kGnutellaQuery:
      handle_query(self, msg.src, *payload_cast<QueryPayload>(&msg.payload));
      break;
    case msg::kGnutellaQueryHit:
      handle_query_hit(self,
                       *payload_cast<QueryHitPayload>(&msg.payload));
      break;
    case msg::kGnutellaHttpData: {
      if (search_active_ && active_search_.origin == self) {
        active_search_.download_done_at = network_.engine().now();
      }
      break;
    }
    case msg::kGnutellaHttpRequest: {
      // Serve the file: one data message of the full content size.
      underlay::Message data;
      data.src = self;
      data.dst = msg.src;
      data.type = msg::kGnutellaHttpData;
      data.size_bytes = config_.file_bytes;
      network_.send(std::move(data));
      break;
    }
    default:
      break;  // not ours
  }
}

void GnutellaSystem::cache_pong(Node& me, PeerId about) {
  if (about == me.peer) return;
  const sim::SimTime now = network_.engine().now();
  for (auto& [peer, seen] : me.pong_cache) {
    if (peer == about) {
      seen = now;
      return;
    }
  }
  me.pong_cache.emplace_back(about, now);
  if (me.pong_cache.size() > config_.pong_cache_capacity) {
    // Drop the stalest entry.
    auto oldest = std::min_element(
        me.pong_cache.begin(), me.pong_cache.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    me.pong_cache.erase(oldest);
  }
}

void GnutellaSystem::handle_ping(PeerId self, PeerId from,
                                 const PingPayload& ping) {
  Node& me = node(self);
  // One probe both detects duplicate flood copies and records the reverse
  // path (the previous hop) for routing Pongs back.
  if (!me.flood_state.try_emplace(ping.guid, from).second) return;
  // Answer with a Pong about ourselves, routed back hop-by-hop.
  send_typed(self, from, msg::kGnutellaPong, config_.pong_bytes,
             PongPayload{ping.guid, self});
  // Pong caching (0.6): serve fresh cached addresses too, and suppress
  // forwarding when the cache alone satisfies the ping.
  const sim::SimTime now = network_.engine().now();
  std::size_t served = 0;
  for (const auto& [peer, seen] : me.pong_cache) {
    if (served + 1 >= config_.pongs_per_ping) break;
    if (now - seen > config_.pong_cache_ttl_ms) continue;
    if (peer == from) continue;
    send_typed(self, from, msg::kGnutellaPong, config_.pong_bytes,
               PongPayload{ping.guid, peer});
    ++served;
  }
  const bool satisfied = served + 1 >= config_.pongs_per_ping;
  if (me.role == NodeRole::kUltrapeer && ping.ttl > 1 && !satisfied) {
    for (const PeerId next : me.up_neighbors) {
      if (next == from) continue;
      send_typed(self, next, msg::kGnutellaPing, config_.ping_bytes,
                 PingPayload{ping.guid, ping.ttl - 1});
    }
  }
}

void GnutellaSystem::handle_pong(PeerId self, const PongPayload& pong) {
  Node& me = node(self);
  // Every node a Pong transits learns the address (hostcache + cache).
  add_to_hostcache(me, pong.about);
  cache_pong(me, pong.about);
  const PeerId* route = me.flood_state.find(pong.guid);
  // No entry or the origin marker: the Pong is consumed here.
  if (route == nullptr || !route->is_valid()) return;
  send_typed(self, *route, msg::kGnutellaPong, config_.pong_bytes, pong);
}

void GnutellaSystem::handle_query(PeerId self, PeerId from,
                                  const QueryPayload& query) {
  Node& me = node(self);
  if (!me.flood_state.try_emplace(query.guid, from).second) return;
  // Local hit?
  if (me.shared.contains(query.content)) {
    send_typed(self, from, msg::kGnutellaQueryHit, config_.queryhit_bytes,
               QueryHitPayload{query.guid, self, query.content});
  }
  if (me.role != NodeRole::kUltrapeer) return;
  // Perfect-QRT leaf forwarding: only leaves that actually share it.
  for (const PeerId leaf : me.leaves) {
    if (leaf == from) continue;
    if (node(leaf).shared.contains(query.content)) {
      send_typed(self, leaf, msg::kGnutellaQuery, config_.query_bytes,
                 QueryPayload{query.guid, 1, query.content});
    }
  }
  if (query.ttl > 1) {
    for (const PeerId next : me.up_neighbors) {
      if (next == from) continue;
      send_typed(self, next, msg::kGnutellaQuery, config_.query_bytes,
                 QueryPayload{query.guid, query.ttl - 1, query.content});
    }
  }
}

void GnutellaSystem::handle_query_hit(PeerId self, const QueryHitPayload& hit) {
  Node& me = node(self);
  const PeerId* route = me.flood_state.find(hit.guid);
  if (route == nullptr || !route->is_valid()) {
    // We are the search origin; collect the result.
    if (search_active_ && active_search_.owns(hit.guid)) {
      if (active_search_.first_hit < 0.0) {
        active_search_.first_hit =
            network_.engine().now() - active_search_.started;
      }
      if (std::find(active_search_.providers.begin(),
                    active_search_.providers.end(),
                    hit.provider) == active_search_.providers.end()) {
        active_search_.providers.push_back(hit.provider);
      }
    }
    return;
  }
  send_typed(self, *route, msg::kGnutellaQueryHit, config_.queryhit_bytes,
             hit);
}

void GnutellaSystem::collect_shard_metrics(obs::MetricsRegistry& into) const {
  for (const ShardCounters& lane : shard_lanes_) into.merge(lane.side);
}

void GnutellaSystem::ping_cycle() {
  underlay::ScopedOrigin trace_origin(network_, obs::origin::kMaintenance);
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay, -1, -1,
                    obs::op::kPingCycle, 0.0});
  }
  begin_flood_cycle();
  for (Node& me : nodes_) {
    if (!network_.is_online(me.peer)) continue;
    const std::uint64_t guid = next_guid_++;
    me.flood_state.try_emplace(guid, PeerId::invalid());
    if (me.role == NodeRole::kUltrapeer) {
      for (const PeerId next : me.up_neighbors) {
        send_typed(me.peer, next, msg::kGnutellaPing, config_.ping_bytes,
                   PingPayload{guid, config_.ping_ttl});
      }
    } else {
      for (const PeerId up : me.ultrapeers) {
        send_typed(me.peer, up, msg::kGnutellaPing, config_.ping_bytes,
                   PingPayload{guid, 1});
      }
    }
  }
  network_.run_until(network_.engine().now() + kQuiesceHorizonMs);
}

SearchOutcome GnutellaSystem::search(PeerId origin, ContentId content,
                                     bool download) {
  underlay::ScopedOrigin trace_origin(network_, obs::origin::kFlooding);
  Node& me = node(origin);
  SearchOutcome outcome;
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay,
                    static_cast<std::int32_t>(origin.value()), -1,
                    obs::op::kSearchStart,
                    static_cast<double>(content.value())});
  }
  begin_flood_cycle();
  active_search_.guids.clear();
  active_search_.providers.clear();
  active_search_.origin = origin;
  active_search_.started = network_.engine().now();
  active_search_.first_hit = -1.0;
  active_search_.download_done_at = -1.0;
  search_active_ = true;

  // Dynamic querying: expanding-ring waves, stopping as soon as enough
  // providers answered. Without it, a single full-TTL flood is issued.
  const int first_ttl = config_.dynamic_querying ? 1 : config_.query_ttl;
  for (int ttl = first_ttl; ttl <= config_.query_ttl; ++ttl) {
    const std::uint64_t guid = next_guid_++;
    me.flood_state.try_emplace(guid, PeerId::invalid());
    active_search_.guids.push_back(guid);
    if (me.role == NodeRole::kUltrapeer) {
      if (ttl == first_ttl) {
        // Check own leaves once (we are their proxy).
        for (const PeerId leaf : me.leaves) {
          if (node(leaf).shared.contains(content.value())) {
            send_typed(origin, leaf, msg::kGnutellaQuery, config_.query_bytes,
                       QueryPayload{guid, 1, content.value()});
          }
        }
      }
      for (const PeerId next : me.up_neighbors) {
        send_typed(origin, next, msg::kGnutellaQuery, config_.query_bytes,
                   QueryPayload{guid, ttl, content.value()});
      }
    } else {
      for (const PeerId up : me.ultrapeers) {
        send_typed(origin, up, msg::kGnutellaQuery, config_.query_bytes,
                   QueryPayload{guid, ttl, content.value()});
      }
    }
    network_.run_until(network_.engine().now() + kQuiesceHorizonMs);
    if (active_search_.providers.size() >= config_.desired_results) break;
  }

  outcome.found = !active_search_.providers.empty();
  outcome.result_count = active_search_.providers.size();
  outcome.time_to_first_hit_ms = active_search_.first_hit;

  if (download && outcome.found) {
    // Pick the provider: randomly ([1]'s default "chooses a node randomly
    // and initiates an HTTP session"), or oracle-ranked when the second
    // consultation stage is enabled.
    PeerId provider = PeerId::invalid();
    if (config_.oracle_at_file_exchange && oracle_ != nullptr) {
      provider = oracle_->best(origin, active_search_.providers);
    }
    if (!provider.is_valid()) {
      provider = active_search_.providers[rng_.uniform(
          active_search_.providers.size())];
    }
    outcome.provider = provider;
    outcome.download_intra_as =
        network_.host(origin).as == network_.host(provider).as;
    underlay::ScopedOrigin download_origin(network_, obs::origin::kTransfer);
    const sim::SimTime before = network_.engine().now();
    underlay::Message request;
    request.src = origin;
    request.dst = provider;
    request.type = msg::kGnutellaHttpRequest;
    request.size_bytes = config_.http_request_bytes;
    if (network_.send(std::move(request))) {
      network_.run_until(network_.engine().now() + kQuiesceHorizonMs);
      if (active_search_.download_done_at >= 0.0) {
        outcome.downloaded = true;
        outcome.download_time_ms = active_search_.download_done_at - before;
      }
    }
  }
  search_active_ = false;
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay,
                    static_cast<std::int32_t>(origin.value()),
                    outcome.provider.is_valid()
                        ? static_cast<std::int32_t>(outcome.provider.value())
                        : -1,
                    obs::op::kSearchDone,
                    static_cast<double>(outcome.result_count)});
  }
  return outcome;
}

std::size_t GnutellaSystem::repair_overlay() {
  // Pass 1: drop every link whose far end is offline.
  for (Node& me : nodes_) {
    auto offline = [&](PeerId peer) { return !network_.is_online(peer); };
    std::erase_if(me.up_neighbors, offline);
    std::erase_if(me.leaves, offline);
    std::erase_if(me.ultrapeers, offline);
  }
  // Pass 2: online nodes refill from their hostcaches.
  std::size_t recreated = 0;
  for (Node& me : nodes_) {
    if (!network_.is_online(me.peer)) continue;
    if (me.role == NodeRole::kUltrapeer) {
      const std::size_t before = me.up_neighbors.size();
      if (before < config_.max_ultrapeer_degree) connect_ultrapeer(me);
      recreated += me.up_neighbors.size() - before;
    } else {
      const std::size_t before = me.ultrapeers.size();
      if (before < config_.leaf_attachments) attach_leaf(me);
      recreated += me.ultrapeers.size() - before;
    }
  }
  if (trace_ != nullptr) {
    trace_->record({network_.engine().now(), obs::TraceKind::kOverlay, -1, -1,
                    obs::op::kRepair, static_cast<double>(recreated)});
  }
  return recreated;
}

std::size_t GnutellaSystem::ltm_round(netinfo::Pinger& pinger,
                                      double cut_factor) {
  underlay::ScopedOrigin trace_origin(network_, obs::origin::kMaintenance);
  std::size_t rewired = 0;
  for (Node& me : nodes_) {
    if (me.role != NodeRole::kUltrapeer) continue;
    if (me.up_neighbors.size() < 2) continue;
    if (!network_.is_online(me.peer)) continue;
    // Measure all UP links (paid probes).
    double best = 1e300, worst = -1.0;
    PeerId worst_neighbor = PeerId::invalid();
    for (const PeerId neighbor : me.up_neighbors) {
      const double rtt = pinger.measure_rtt(me.peer, neighbor);
      if (rtt < 0) continue;
      best = std::min(best, rtt);
      if (rtt > worst) {
        worst = rtt;
        worst_neighbor = neighbor;
      }
    }
    if (!worst_neighbor.is_valid() || worst < best * cut_factor) continue;
    // Look for a strictly better replacement in the hostcache.
    PeerId replacement = PeerId::invalid();
    double replacement_rtt = worst;
    for (const PeerId candidate : me.hostcache) {
      Node& other = node(candidate);
      if (other.role != NodeRole::kUltrapeer) continue;
      if (other.up_neighbors.size() >= config_.max_ultrapeer_degree) continue;
      if (std::find(me.up_neighbors.begin(), me.up_neighbors.end(),
                    candidate) != me.up_neighbors.end()) {
        continue;
      }
      const double rtt = pinger.measure_rtt(me.peer, candidate);
      if (rtt > 0 && rtt < replacement_rtt) {
        replacement_rtt = rtt;
        replacement = candidate;
      }
    }
    if (!replacement.is_valid()) continue;
    // Cut the slow link, keep both graphs consistent, add the fast one.
    Node& old = node(worst_neighbor);
    std::erase(me.up_neighbors, worst_neighbor);
    std::erase(old.up_neighbors, me.peer);
    me.up_neighbors.push_back(replacement);
    node(replacement).up_neighbors.push_back(me.peer);
    ++rewired;
    if (trace_ != nullptr) {
      trace_->record({network_.engine().now(), obs::TraceKind::kOverlay,
                      static_cast<std::int32_t>(me.peer.value()),
                      static_cast<std::int32_t>(replacement.value()),
                      obs::op::kLtmRewire, replacement_rtt});
    }
  }
  return rewired;
}

double GnutellaSystem::mean_edge_rtt_ms() const {
  RunningStats rtt;
  // const_cast-free: rtt_ms needs a non-const Network (routing cache);
  // GnutellaSystem holds a non-const reference already.
  for (const Node& me : nodes_) {
    for (const PeerId other : me.up_neighbors) {
      if (me.peer < other) rtt.add(network_.rtt_ms(me.peer, other));
    }
    for (const PeerId leaf : me.leaves) {
      rtt.add(network_.rtt_ms(me.peer, leaf));
    }
  }
  return rtt.mean();
}

double GnutellaSystem::intra_as_edge_fraction() const {
  std::size_t total = 0;
  std::size_t intra = 0;
  for (const Node& me : nodes_) {
    const AsId my_as = network_.host(me.peer).as;
    for (const PeerId other : me.up_neighbors) {
      if (other < me.peer) continue;  // count each UP-UP edge once
      ++total;
      if (network_.host(other).as == my_as) ++intra;
    }
    for (const PeerId leaf : me.leaves) {
      ++total;
      if (network_.host(leaf).as == my_as) ++intra;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(intra) /
                                static_cast<double>(total);
}

std::size_t GnutellaSystem::edge_count() const {
  std::size_t total = 0;
  for (const Node& me : nodes_) {
    for (const PeerId other : me.up_neighbors) {
      if (me.peer < other) ++total;
    }
    total += me.leaves.size();
  }
  return total;
}

std::size_t GnutellaSystem::inter_as_edge_count() const {
  std::size_t inter = 0;
  for (const Node& me : nodes_) {
    const AsId my_as = network_.host(me.peer).as;
    for (const PeerId other : me.up_neighbors) {
      if (other < me.peer) continue;
      if (network_.host(other).as != my_as) ++inter;
    }
    for (const PeerId leaf : me.leaves) {
      if (network_.host(leaf).as != my_as) ++inter;
    }
  }
  return inter;
}

std::size_t GnutellaSystem::min_inter_as_edges_for_connectivity() const {
  // Count distinct ASes that host at least one overlay node; a spanning
  // tree over them needs exactly count-1 inter-AS edges.
  std::unordered_set<std::uint32_t> ases;
  for (const Node& me : nodes_) ases.insert(network_.host(me.peer).as.value());
  return ases.empty() ? 0 : ases.size() - 1;
}

std::vector<PeerId> GnutellaSystem::neighbors_of(PeerId peer) const {
  const Node& me = node(peer);
  std::vector<PeerId> result = me.up_neighbors;
  result.insert(result.end(), me.leaves.begin(), me.leaves.end());
  result.insert(result.end(), me.ultrapeers.begin(), me.ultrapeers.end());
  return result;
}

NodeRole GnutellaSystem::role_of(PeerId peer) const { return node(peer).role; }

std::vector<PeerId> GnutellaSystem::providers_of(ContentId content) const {
  std::vector<PeerId> result;
  for (const Node& me : nodes_) {
    if (me.shared.contains(content.value())) result.push_back(me.peer);
  }
  return result;
}

}  // namespace uap2p::overlay::gnutella
