// Gnutella-style unstructured overlay with optional oracle-biased neighbor
// selection — the system behind [1]'s Table 1 and Figure 5 (reprinted as
// the survey's Figure 5 and Table 1).
//
// Protocol model (Gnutella 0.6 ultrapeer/leaf):
//  * Ultrapeers keep a bounded number of ultrapeer neighbors and leaves;
//    leaves attach to a small number of ultrapeers.
//  * Ping floods among ultrapeers with a TTL; every node reached answers
//    with a Pong routed back hop-by-hop along the reverse path (each hop
//    is one counted Pong message, as in the real protocol). Pongs feed the
//    receiving node's hostcache.
//  * Query floods among ultrapeers with a TTL; ultrapeers forward a query
//    to exactly those of their leaves that share matching content (a
//    perfect-recall Query-Routing-Table abstraction). QueryHits route back
//    along the reverse path.
//  * File exchange happens outside the overlay via HTTP-like request/data
//    messages (the "localization of content exchange" stage of [1]).
//
// Neighbor selection: when joining, a node submits its hostcache to the
// ISP oracle and connects to the top-ranked candidates (biased), or picks
// uniformly at random (unbiased). Optionally the oracle is consulted a
// second time at the file-exchange stage over the QueryHit set — the
// variant that lifts intra-AS exchanges from ~7% to ~40% in [1].
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "netinfo/oracle.hpp"
#include "netinfo/pinger.hpp"
#include "underlay/network.hpp"

namespace uap2p::overlay::gnutella {

enum class NodeRole { kUltrapeer, kLeaf };

enum class NeighborSelection {
  kRandom,        ///< Uniform choice from the hostcache (unbiased Gnutella).
  kOracleBiased,  ///< Hostcache ranked by the ISP oracle ([1]).
};

struct Config {
  std::size_t max_ultrapeer_degree = 6;   ///< UP-UP connections per UP.
  std::size_t max_leaves = 8;             ///< Leaves accepted per UP.
  std::size_t leaf_attachments = 2;       ///< UPs each leaf connects to.
  int ping_ttl = 2;
  int query_ttl = 4;
  std::size_t hostcache_size = 100;       ///< [1] evaluates 100 and 1000.
  /// Pong caching (Gnutella 0.6): a pinged node answers with its own Pong
  /// plus up to this many fresh cached Pongs, and suppresses forwarding
  /// the Ping when the cache alone satisfies it.
  std::size_t pongs_per_ping = 8;
  sim::SimTime pong_cache_ttl_ms = sim::seconds(120);
  std::size_t pong_cache_capacity = 64;
  /// Dynamic querying (expanding ring): search in TTL-escalating waves and
  /// stop as soon as `desired_results` providers answered. This is the
  /// mechanism through which locality reduces Query/QueryHit counts in
  /// [1]'s Table 1 — local hits terminate the search in the first wave.
  bool dynamic_querying = true;
  std::size_t desired_results = 3;
  NeighborSelection selection = NeighborSelection::kRandom;
  /// Under biased selection, each ultrapeer reserves this many connection
  /// slots for candidates from a different AS — the "minimal number of
  /// inter-AS connections necessary to keep the network connected" of the
  /// survey's Figure 6 discussion.
  std::size_t min_external_ultrapeer_links = 1;
  /// Consult the oracle again when picking the download source among the
  /// QueryHits (the second consultation stage of [1]).
  bool oracle_at_file_exchange = false;
  std::uint32_t ping_bytes = 23;       ///< Header-only descriptor.
  std::uint32_t pong_bytes = 37;       ///< Header + pong payload.
  std::uint32_t query_bytes = 64;
  std::uint32_t queryhit_bytes = 120;
  std::uint32_t http_request_bytes = 256;
  std::uint32_t file_bytes = 1 << 20;  ///< Content size for downloads.
  std::uint64_t seed = 99;
};

/// Per-type message counters ([1]'s Table 1 rows). Counted at send time,
/// per transmission (each routed hop of a Pong/QueryHit counts once).
struct MessageCounts {
  std::uint64_t ping = 0;
  std::uint64_t pong = 0;
  std::uint64_t query = 0;
  std::uint64_t query_hit = 0;

  MessageCounts& operator+=(const MessageCounts& other);
  [[nodiscard]] std::uint64_t total() const {
    return ping + pong + query + query_hit;
  }
};

/// Outcome of one search + optional download.
struct SearchOutcome {
  bool found = false;
  std::size_t result_count = 0;
  sim::SimTime time_to_first_hit_ms = -1.0;
  /// Filled when a download was performed.
  bool downloaded = false;
  bool download_intra_as = false;
  PeerId provider = PeerId::invalid();
  sim::SimTime download_time_ms = -1.0;
};

/// The whole overlay (all nodes share this object; per-node state lives in
/// internal structs). Single-threaded, driven by the shared sim Engine.
class GnutellaSystem {
 public:
  /// `roles[i]` assigns peers[i]'s role. The oracle may be null for
  /// kRandom selection.
  GnutellaSystem(underlay::Network& network, std::vector<PeerId> peers,
                 std::vector<NodeRole> roles, Config config,
                 const netinfo::Oracle* oracle = nullptr);

  /// Joins all nodes: fills hostcaches with random subsets of the
  /// population ([1]'s testlab setup) and connects neighbors according to
  /// the configured selection policy. Synchronous (graph construction);
  /// message exchange starts with ping_cycle()/search().
  void bootstrap();

  /// Declares that `peer` shares `content`.
  void share(PeerId peer, ContentId content);

  /// One keepalive round: every online ultrapeer floods one Ping. Runs the
  /// engine until the flood quiesces.
  void ping_cycle();

  /// Floods a query from `origin`; runs the engine until the flood
  /// quiesces; optionally downloads from one QueryHit provider.
  SearchOutcome search(PeerId origin, ContentId content,
                       bool download = true);

  /// Location-aware topology matching (LTM, Liu et al. [21]; paper
  /// Table 1): each ultrapeer measures its UP links, cuts its slowest one
  /// when it exceeds `cut_factor` x its best link's RTT, and reconnects
  /// to the lowest-RTT known candidate with spare capacity. One call is
  /// one optimization round; returns the number of links rewired.
  /// Measurement cost is paid through the supplied pinger.
  std::size_t ltm_round(netinfo::Pinger& pinger, double cut_factor = 3.0);

  /// Mean RTT over all overlay edges (the metric LTM optimizes).
  [[nodiscard]] double mean_edge_rtt_ms() const;

  /// Churn repair: drops overlay links to offline peers and refills from
  /// hostcaches (ultrapeers re-mesh, leaves re-attach) using the
  /// configured selection policy. Returns the number of links re-created.
  std::size_t repair_overlay();

  /// Topology metrics (Fig. 5/6) -------------------------------------
  /// Fraction of overlay edges whose endpoints share an AS.
  [[nodiscard]] double intra_as_edge_fraction() const;
  [[nodiscard]] std::size_t edge_count() const;
  [[nodiscard]] std::size_t inter_as_edge_count() const;
  /// Minimum number of inter-AS edges that keep the AS-quotient graph of
  /// the overlay connected (spanning-tree bound, Fig. 6 discussion).
  [[nodiscard]] std::size_t min_inter_as_edges_for_connectivity() const;

  /// Table 1 per-type counts, re-derived from the "gnutella.messages.*"
  /// registry counters (same values the --metrics snapshot exports).
  [[nodiscard]] const MessageCounts& counts() const {
    counts_.ping = ping_count_.value();
    counts_.pong = pong_count_.value();
    counts_.query = query_count_.value();
    counts_.query_hit = query_hit_count_.value();
    for (const ShardCounters& lane : shard_lanes_) {
      counts_.ping += lane.ping.value();
      counts_.pong += lane.pong.value();
      counts_.query += lane.query.value();
      counts_.query_hit += lane.query_hit.value();
    }
    return counts_;
  }
  [[nodiscard]] const underlay::Network& network() const { return network_; }
  [[nodiscard]] std::vector<PeerId> neighbors_of(PeerId peer) const;
  [[nodiscard]] NodeRole role_of(PeerId peer) const;
  /// All peers currently sharing `content`.
  [[nodiscard]] std::vector<PeerId> providers_of(ContentId content) const;

  /// Observability ---------------------------------------------------------
  /// Re-homes the "gnutella.messages.*" counters into `registry` (the
  /// system always counts into an internal registry otherwise). Current
  /// values carry over, so counts() is exact across a rebind. Only lane 0
  /// rebinds; per-shard lanes always count into private side registries.
  void bind_metrics(obs::MetricsRegistry& registry);
  /// Merges the per-shard "gnutella.messages.*" side counters (lanes
  /// 1..K-1, present only when the network runs a multi-shard group) into
  /// `into`. Call once after the run; a no-op in serial mode.
  void collect_shard_metrics(obs::MetricsRegistry& into) const;
  /// Emits kOverlay records (search start/done, ping cycles, LTM rewires,
  /// churn repair); nullptr disables.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

 private:
  struct Node {
    PeerId peer;
    NodeRole role = NodeRole::kLeaf;
    std::vector<PeerId> up_neighbors;   // UP-UP links (UPs only)
    std::vector<PeerId> leaves;         // attached leaves (UPs only)
    std::vector<PeerId> ultrapeers;     // attachments (leaves only)
    std::vector<PeerId> hostcache;
    // Merged flood dedup + reverse-path state: guid -> previous hop, with
    // PeerId::invalid() marking "this node originated the flood". One flat
    // probe answers both "seen before?" and "route back where?"; reset per
    // flood cycle by an O(1) epoch bump (capacity retained), so a
    // steady-state flood never touches the allocator.
    FlatMap<std::uint64_t, PeerId> flood_state;
    FlatSet<std::uint32_t> shared;  // ContentId values
    // Pong cache: (address, last-seen sim time), oldest first.
    std::vector<std::pair<PeerId, sim::SimTime>> pong_cache;
    // Hostcache eviction draws. Per-node (not the shared rng_) so the
    // eviction stream is a function of the node's own pong sequence only
    // — the property that keeps sharded runs identical to serial ones,
    // where interleaving across nodes would otherwise reorder draws.
    Rng cache_rng;
  };

  struct PingPayload {
    std::uint64_t guid;
    int ttl;
  };
  struct PongPayload {
    std::uint64_t guid;
    PeerId about;
  };
  struct QueryPayload {
    std::uint64_t guid;
    int ttl;
    std::uint32_t content;
  };
  struct QueryHitPayload {
    std::uint64_t guid;
    PeerId provider;
    std::uint32_t content;
  };
  struct HttpRequestPayload {
    std::uint32_t content;
  };

  Node& node(PeerId peer) { return nodes_[index_of_.at(peer.value())]; }
  const Node& node(PeerId peer) const {
    return nodes_[index_of_.at(peer.value())];
  }

  void connect_ultrapeer(Node& joining);
  void attach_leaf(Node& joining);
  [[nodiscard]] std::vector<PeerId> selection_order(const Node& joining,
                                                    bool ups_only);
  void add_to_hostcache(Node& node, PeerId peer);
  void cache_pong(Node& node, PeerId about);

  void on_message(PeerId self, const underlay::Message& msg);
  void handle_ping(PeerId self, PeerId from, const PingPayload& ping);
  void handle_pong(PeerId self, const PongPayload& pong);
  void handle_query(PeerId self, PeerId from, const QueryPayload& query);
  void handle_query_hit(PeerId self, const QueryHitPayload& hit);

  void send_typed(PeerId from, PeerId to, int type, std::uint32_t bytes,
                  Payload payload);
  /// Epoch-resets every node's flood_state before a new flood cycle. Safe
  /// because the engine quiesces between floods and guids never repeat.
  void begin_flood_cycle();

  underlay::Network& network_;
  Config config_;
  const netinfo::Oracle* oracle_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint32_t, std::size_t> index_of_;
  // Per-type counters live in a metrics registry (the internal one until
  // bind_metrics re-homes them); counts_ is the cache counts() refreshes
  // from the counters so the legacy API keeps returning a reference.
  obs::MetricsRegistry own_metrics_;
  obs::Counter ping_count_;
  obs::Counter pong_count_;
  obs::Counter query_count_;
  obs::Counter query_hit_count_;
  /// Per-shard counter lane (shards 1..K-1; shard 0 and the driver use the
  /// counters above). Each lane's counters live in a private registry so
  /// parallel windows never write a shared slot; collect_shard_metrics
  /// folds them back.
  struct ShardCounters {
    obs::MetricsRegistry side;
    obs::Counter ping;
    obs::Counter pong;
    obs::Counter query;
    obs::Counter query_hit;
  };
  std::vector<ShardCounters> shard_lanes_;
  mutable MessageCounts counts_;
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t next_guid_ = 1;

  // Search in flight (one at a time; searches are issued sequentially and
  // the engine is drained between them). A plain member rather than an
  // optional so the guid/provider vectors keep their capacity from search
  // to search — steady-state searches allocate nothing.
  struct ActiveSearch {
    std::vector<std::uint64_t> guids;  // one per expanding-ring wave
    PeerId origin = PeerId::invalid();
    sim::SimTime started = 0.0;
    sim::SimTime first_hit = -1.0;
    sim::SimTime download_done_at = -1.0;
    std::vector<PeerId> providers;

    [[nodiscard]] bool owns(std::uint64_t guid) const {
      return std::find(guids.begin(), guids.end(), guid) != guids.end();
    }
  };
  ActiveSearch active_search_;
  bool search_active_ = false;
};

/// Builds the role vector of [1]'s testlab: one ultrapeer for every
/// `leaves_per_up` leaves. When `as_count` is given, peers are assumed
/// AS-round-robin ordered (as Network::populate produces) and the pattern
/// is applied per AS — this guarantees every AS gets its share of
/// ultrapeers even when as_count and the group size are not coprime.
std::vector<NodeRole> testlab_roles(std::size_t peer_count,
                                    std::size_t leaves_per_up = 2,
                                    std::size_t as_count = 0);

}  // namespace uap2p::overlay::gnutella
