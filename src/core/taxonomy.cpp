#include "core/taxonomy.hpp"

#include <algorithm>
#include <array>

namespace uap2p::core {

const char* to_string(CollectionTechnique technique) {
  switch (technique) {
    case CollectionTechnique::kIpToIspMapping: return "IP-to-ISP mapping";
    case CollectionTechnique::kIspComponentInNetwork:
      return "ISP component in network";
    case CollectionTechnique::kCdnProvidedInformation:
      return "CDN-provided information";
    case CollectionTechnique::kExplicitMeasurement:
      return "explicit measurement";
    case CollectionTechnique::kPredictionMethod: return "prediction method";
    case CollectionTechnique::kGps: return "GPS";
    case CollectionTechnique::kIpToLocationMapping:
      return "IP-to-location mapping";
    case CollectionTechnique::kInformationManagementOverlay:
      return "information management overlay";
  }
  return "?";
}

namespace {

const std::array<TaxonomyEntry, 24> kTaxonomy = {{
    // ISP-location (paper Table 1, first row).
    {"BNS (biased neighbor selection)", "[3]", InfoClass::kIspLocation,
     CollectionTechnique::kIspComponentInNetwork, "overlay/bittorrent", true},
    {"Oracle", "[1]", InfoClass::kIspLocation,
     CollectionTechnique::kIspComponentInNetwork, "netinfo/oracle", true},
    {"P4P", "[29]", InfoClass::kIspLocation,
     CollectionTechnique::kIspComponentInNetwork, "netinfo/p4p", true},
    {"Ono", "[5]", InfoClass::kIspLocation,
     CollectionTechnique::kCdnProvidedInformation, "netinfo/cdn", true},
    {"TSO", "[31]", InfoClass::kIspLocation,
     CollectionTechnique::kIpToIspMapping, "netinfo/ipmap", true},
    {"CAT (cost-aware BitTorrent)", "[32]", InfoClass::kIspLocation,
     CollectionTechnique::kIspComponentInNetwork, "overlay/bittorrent", true},
    {"LTM (location-aware topology matching)", "[21]",
     InfoClass::kIspLocation, CollectionTechnique::kExplicitMeasurement,
     "netinfo/pinger", true},
    {"Brocade", "[36]", InfoClass::kIspLocation,
     CollectionTechnique::kPredictionMethod, "overlay/brocade", true},
    {"Plethora", "[9]", InfoClass::kIspLocation,
     CollectionTechnique::kIpToIspMapping, "netinfo/ipmap", true},
    {"Mithos", "[28]", InfoClass::kIspLocation,
     CollectionTechnique::kPredictionMethod, "netinfo/vivaldi", true},
    {"MBC (measurement-based construction)", "[35]",
     InfoClass::kIspLocation, CollectionTechnique::kExplicitMeasurement,
     "netinfo/pinger", true},
    {"Proximity in Kademlia", "[17]", InfoClass::kIspLocation,
     CollectionTechnique::kIspComponentInNetwork, "overlay/kademlia", true},
    // Latency.
    {"Vivaldi", "[7]", InfoClass::kLatency,
     CollectionTechnique::kPredictionMethod, "netinfo/vivaldi", true},
    {"ICS (Lim et al. coordinate system)", "[20]", InfoClass::kLatency,
     CollectionTechnique::kPredictionMethod, "netinfo/ics", true},
    {"gMeasure", "[34]", InfoClass::kLatency,
     CollectionTechnique::kExplicitMeasurement, "netinfo/gmeasure", true},
    {"Genius", "[23]", InfoClass::kLatency,
     CollectionTechnique::kPredictionMethod, "netinfo/vivaldi", true},
    {"eCAN", "[30]", InfoClass::kLatency,
     CollectionTechnique::kPredictionMethod, "netinfo/ics", true},
    {"Leopard", "[33]", InfoClass::kLatency,
     CollectionTechnique::kPredictionMethod,
     "overlay/geo_overlay (scoped hashing)", true},
    {"Landmark-based proximity", "[26]", InfoClass::kLatency,
     CollectionTechnique::kPredictionMethod, "netinfo/binning", true},
    {"Hop-based proximity", "[8]", InfoClass::kLatency,
     CollectionTechnique::kExplicitMeasurement, "netinfo/pinger", true},
    // Geolocation.
    {"Globase.KOM", "[18][19]", InfoClass::kGeolocation,
     CollectionTechnique::kGps, "overlay/geo_overlay", true},
    {"GeoPeer", "[2]", InfoClass::kGeolocation,
     CollectionTechnique::kIpToLocationMapping, "netinfo/geoprov", true},
    // Peer resources.
    {"SkyEye.KOM", "[11]", InfoClass::kPeerResources,
     CollectionTechnique::kInformationManagementOverlay, "netinfo/skyeye",
     true},
    {"Bandwidth-aware scheduling", "[6]", InfoClass::kPeerResources,
     CollectionTechnique::kInformationManagementOverlay, "overlay/superpeer",
     true},
}};

}  // namespace

std::span<const TaxonomyEntry> taxonomy() { return kTaxonomy; }

std::vector<TaxonomyEntry> taxonomy_for(InfoClass info) {
  std::vector<TaxonomyEntry> result;
  for (const auto& entry : kTaxonomy) {
    if (entry.info == info) result.push_back(entry);
  }
  return result;
}

std::size_t implemented_count() {
  return static_cast<std::size_t>(
      std::count_if(kTaxonomy.begin(), kTaxonomy.end(),
                    [](const TaxonomyEntry& e) { return e.implemented; }));
}

}  // namespace uap2p::core
