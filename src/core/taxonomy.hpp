// Runtime registry of the survey's taxonomy (Figure 3 and Table 1).
//
// Each entry classifies one surveyed system by the underlay information it
// uses and the collection technique it relies on, and records which uap2p
// module implements that technique (or its representative). The Fig. 3 /
// Table 1 bench prints this registry, so the taxonomy ships as executable
// documentation rather than prose.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/underlay_service.hpp"

namespace uap2p::core {

/// Collection techniques, the leaves of the paper's Figure 3.
enum class CollectionTechnique {
  kIpToIspMapping,
  kIspComponentInNetwork,
  kCdnProvidedInformation,
  kExplicitMeasurement,
  kPredictionMethod,
  kGps,
  kIpToLocationMapping,
  kInformationManagementOverlay,
};

[[nodiscard]] const char* to_string(CollectionTechnique technique);

struct TaxonomyEntry {
  std::string system;            ///< Surveyed system name (paper Table 1).
  std::string reference;         ///< Citation tag in the paper.
  InfoClass info;                ///< Which underlay information it uses.
  CollectionTechnique technique; ///< How that information is collected.
  std::string uap2p_module;      ///< Implementing/representative module.
  bool implemented;              ///< True if runnable in this repo.
};

/// The full registry (paper Table 1 plus the collection-side systems of
/// §3); stable order, grouped by InfoClass.
[[nodiscard]] std::span<const TaxonomyEntry> taxonomy();

/// Entries for one information class.
[[nodiscard]] std::vector<TaxonomyEntry> taxonomy_for(InfoClass info);

/// Count of entries whose technique is implemented in this repo.
[[nodiscard]] std::size_t implemented_count();

}  // namespace uap2p::core
