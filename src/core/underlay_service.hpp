// The underlay-awareness framework — the "general architecture for
// underlay awareness in which different underlay information can be
// collected and used" that the paper's conclusion names as the definitive
// next step (§7).
//
// UnderlayService is a facade over every collector in src/netinfo, keyed
// by the survey's four information classes (§2): ISP-location, latency,
// geolocation and peer resources. Overlays consume it through
// NeighborRankingPolicy objects, so switching a P2P system from unbiased
// to ISP-/latency-/geo-/resource-aware neighbor selection is a one-line
// policy swap — which is exactly how the Table 2 impact bench varies one
// awareness dimension at a time.
#pragma once

#include <memory>
#include <unordered_map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "netinfo/cdn.hpp"
#include "netinfo/geoprov.hpp"
#include "netinfo/ics.hpp"
#include "netinfo/ipmap.hpp"
#include "netinfo/oracle.hpp"
#include "netinfo/pinger.hpp"
#include "netinfo/skyeye.hpp"
#include "netinfo/vivaldi.hpp"
#include "underlay/network.hpp"

namespace uap2p::core {

/// The survey's four classes of underlay information (§2, Figure 3).
enum class InfoClass { kIspLocation, kLatency, kGeolocation, kPeerResources };

[[nodiscard]] const char* to_string(InfoClass info);

/// How latency estimates are obtained (§3.2's two branches).
enum class LatencyMethod {
  kExplicitPing,  ///< Measure now (accurate, costs probes).
  kVivaldi,       ///< Predict from decentralized coordinates.
  kIcs,           ///< Predict from landmark coordinates (Lim et al. [20]);
                  ///< requires setup_ics() first.
};

struct UnderlayServiceConfig {
  netinfo::PingerConfig pinger;
  netinfo::VivaldiConfig vivaldi;
  netinfo::IpMappingConfig ip_mapping;
  netinfo::OracleConfig oracle;
  netinfo::GeoProviderConfig geo;
  /// Vivaldi warm-up: gossip rounds x samples per peer when
  /// warm_up_coordinates() is called.
  unsigned vivaldi_rounds = 24;
  std::uint64_t seed = 1234;
};

/// One-stop access to collected underlay information. Owns the collectors
/// (except SkyEye, which needs a peer list and is attached explicitly).
class UnderlayService {
 public:
  UnderlayService(underlay::Network& network, UnderlayServiceConfig config = {});

  /// ISP-location (§3.1): via the IP-to-ISP database, not ground truth.
  [[nodiscard]] std::optional<AsId> isp_of(PeerId peer) const;
  /// AS-hop distance between two peers as the oracle reports it.
  [[nodiscard]] std::size_t as_hops(PeerId a, PeerId b) const;
  [[nodiscard]] const netinfo::Oracle& oracle() const { return oracle_; }

  /// Latency (§3.2): measure or predict.
  [[nodiscard]] double rtt_ms(PeerId a, PeerId b, LatencyMethod method);
  /// Feeds Vivaldi with `rounds` gossip rounds over `peers` (each peer
  /// samples a few random others per round through the pinger, paying
  /// measurement overhead).
  void warm_up_coordinates(std::span<const PeerId> peers);
  [[nodiscard]] const netinfo::VivaldiSystem& vivaldi() const {
    return *vivaldi_;
  }

  /// Builds the ICS model from `beacons` (pairwise pings, S1-S5 of [20]).
  /// Hosts are embedded lazily on first kIcs estimate (H1-H3, m probes
  /// each, charged to the pinger).
  void setup_ics(std::span<const PeerId> beacons,
                 netinfo::IcsConfig config = {});
  [[nodiscard]] bool ics_ready() const { return ics_.has_value(); }

  /// Geolocation (§3.3).
  [[nodiscard]] std::optional<underlay::GeoPoint> location(
      PeerId peer, netinfo::GeoSource source) const;
  [[nodiscard]] double geo_distance_km(PeerId a, PeerId b,
                                       netinfo::GeoSource source) const;

  /// Peer resources (§3.4): requires an attached SkyEye over-overlay.
  void attach_skyeye(const netinfo::SkyEye* skyeye) { skyeye_ = skyeye; }
  [[nodiscard]] std::vector<netinfo::CapacityEntry> top_capacity(
      std::size_t k) const;

  /// Collection overhead so far (the open issue §5.4 asks to quantify):
  /// bytes spent on measurement probes and oracle/database queries.
  struct OverheadReport {
    std::uint64_t ping_probes = 0;
    std::uint64_t ping_bytes = 0;
    std::uint64_t oracle_queries = 0;
    std::uint64_t mapping_queries = 0;
    std::uint64_t vivaldi_updates = 0;
  };
  [[nodiscard]] OverheadReport overhead() const;

  [[nodiscard]] underlay::Network& network() { return network_; }

 private:
  underlay::Network& network_;
  UnderlayServiceConfig config_;
  Rng rng_;
  netinfo::IpMappingService ip_mapping_;
  netinfo::Oracle oracle_;
  netinfo::Pinger pinger_;
  netinfo::GeoProvider geo_;
  std::unique_ptr<netinfo::VivaldiSystem> vivaldi_;
  const netinfo::SkyEye* skyeye_ = nullptr;
  std::optional<netinfo::IcsModel> ics_;
  std::vector<PeerId> ics_beacons_;
  std::unordered_map<std::uint32_t, std::vector<double>> ics_coords_;
  const std::vector<double>& ics_embedding(PeerId peer);
};

/// A neighbor-selection policy: given a querier and candidates, returns
/// the candidates best-first. This is the seam between collection (§3)
/// and usage (§4).
class NeighborRankingPolicy {
 public:
  virtual ~NeighborRankingPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<PeerId> rank(
      PeerId querier, std::span<const PeerId> candidates) = 0;
};

/// Factory helpers, one per awareness dimension plus the baseline.
std::unique_ptr<NeighborRankingPolicy> make_random_policy(std::uint64_t seed);
std::unique_ptr<NeighborRankingPolicy> make_isp_policy(UnderlayService& service);
std::unique_ptr<NeighborRankingPolicy> make_latency_policy(
    UnderlayService& service, LatencyMethod method);
std::unique_ptr<NeighborRankingPolicy> make_geo_policy(
    UnderlayService& service, netinfo::GeoSource source);
std::unique_ptr<NeighborRankingPolicy> make_resource_policy(
    UnderlayService& service);
/// Weighted blend of normalized scores across the four dimensions.
struct CompositeWeights {
  double isp = 1.0;
  double latency = 1.0;
  double geo = 0.0;
  double resources = 0.0;
};
std::unique_ptr<NeighborRankingPolicy> make_composite_policy(
    UnderlayService& service, CompositeWeights weights, LatencyMethod method,
    netinfo::GeoSource source);

}  // namespace uap2p::core
