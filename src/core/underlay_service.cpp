#include "core/underlay_service.hpp"

#include <algorithm>
#include <cassert>

namespace uap2p::core {

const char* to_string(InfoClass info) {
  switch (info) {
    case InfoClass::kIspLocation: return "ISP-location";
    case InfoClass::kLatency: return "Latency";
    case InfoClass::kGeolocation: return "Geolocation";
    case InfoClass::kPeerResources: return "Peer Resources";
  }
  return "?";
}

UnderlayService::UnderlayService(underlay::Network& network,
                                 UnderlayServiceConfig config)
    : network_(network),
      config_(config),
      rng_(config.seed),
      ip_mapping_(network.topology(), config.ip_mapping),
      oracle_(network, config.oracle),
      pinger_(network, Rng(config.seed ^ 0x51ed), config.pinger),
      geo_(network, ip_mapping_, config.geo) {
  vivaldi_ = std::make_unique<netinfo::VivaldiSystem>(
      network.host_count() + 1024, config_.vivaldi,
      Rng(config.seed ^ 0x7a11));
}

std::optional<AsId> UnderlayService::isp_of(PeerId peer) const {
  return ip_mapping_.lookup_isp(network_.host(peer).ip);
}

std::size_t UnderlayService::as_hops(PeerId a, PeerId b) const {
  return oracle_.as_hops(a, b);
}

double UnderlayService::rtt_ms(PeerId a, PeerId b, LatencyMethod method) {
  switch (method) {
    case LatencyMethod::kExplicitPing:
      return pinger_.measure_rtt(a, b);
    case LatencyMethod::kVivaldi:
      return vivaldi_->estimate_rtt(a, b);
    case LatencyMethod::kIcs: {
      if (!ics_) return -1.0;
      return netinfo::IcsModel::estimate_rtt(ics_embedding(a),
                                             ics_embedding(b));
    }
  }
  return -1.0;
}

void UnderlayService::setup_ics(std::span<const PeerId> beacons,
                                netinfo::IcsConfig config) {
  assert(beacons.size() >= 2);
  ics_beacons_.assign(beacons.begin(), beacons.end());
  ics_coords_.clear();
  const std::size_t m = ics_beacons_.size();
  netinfo::Matrix rtts(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      const double rtt = pinger_.measure_rtt(ics_beacons_[i], ics_beacons_[j]);
      rtts(i, j) = rtt < 0 ? 1e6 : rtt;
      rtts(j, i) = rtts(i, j);
    }
  }
  ics_ = netinfo::IcsModel::build(rtts, config);
}

const std::vector<double>& UnderlayService::ics_embedding(PeerId peer) {
  auto it = ics_coords_.find(peer.value());
  if (it != ics_coords_.end()) return it->second;
  std::vector<double> to_beacons(ics_beacons_.size());
  for (std::size_t b = 0; b < ics_beacons_.size(); ++b) {
    const double rtt = pinger_.measure_rtt(peer, ics_beacons_[b]);
    to_beacons[b] = rtt < 0 ? 1e6 : rtt;
  }
  return ics_coords_.emplace(peer.value(), ics_->embed(to_beacons))
      .first->second;
}

void UnderlayService::warm_up_coordinates(std::span<const PeerId> peers) {
  // Each round, every peer samples a handful of random others. Real
  // deployments sample overlay neighbors; random gossip converges the
  // same way and keeps this module overlay-agnostic.
  constexpr unsigned kSamplesPerRound = 4;
  for (unsigned round = 0; round < config_.vivaldi_rounds; ++round) {
    for (const PeerId self : peers) {
      for (unsigned s = 0; s < kSamplesPerRound; ++s) {
        const PeerId other = peers[rng_.uniform(peers.size())];
        if (other == self) continue;
        const double rtt = pinger_.measure_rtt(self, other);
        if (rtt > 0.0) vivaldi_->update(self, other, rtt);
      }
    }
  }
}

std::optional<underlay::GeoPoint> UnderlayService::location(
    PeerId peer, netinfo::GeoSource source) const {
  return geo_.locate(peer, source);
}

double UnderlayService::geo_distance_km(PeerId a, PeerId b,
                                        netinfo::GeoSource source) const {
  return geo_.distance_km(a, b, source);
}

std::vector<netinfo::CapacityEntry> UnderlayService::top_capacity(
    std::size_t k) const {
  if (skyeye_ == nullptr) return {};
  return skyeye_->query_top_capacity(k);
}

UnderlayService::OverheadReport UnderlayService::overhead() const {
  OverheadReport report;
  report.ping_probes = pinger_.probes_sent();
  report.ping_bytes = pinger_.bytes_sent();
  report.oracle_queries = oracle_.query_count();
  report.mapping_queries = ip_mapping_.query_count();
  report.vivaldi_updates = vivaldi_->update_count();
  return report;
}

namespace {

/// Shared scaffolding: rank by ascending score with deterministic ties.
template <typename ScoreFn>
std::vector<PeerId> rank_by_score(PeerId querier,
                                  std::span<const PeerId> candidates,
                                  ScoreFn&& score) {
  struct Scored {
    PeerId peer;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const PeerId candidate : candidates) {
    if (candidate == querier) continue;
    scored.push_back(Scored{candidate, score(candidate)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  std::vector<PeerId> result;
  result.reserve(scored.size());
  for (const Scored& s : scored) result.push_back(s.peer);
  return result;
}

class RandomPolicy final : public NeighborRankingPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  std::vector<PeerId> rank(PeerId querier,
                           std::span<const PeerId> candidates) override {
    std::vector<PeerId> result(candidates.begin(), candidates.end());
    std::erase(result, querier);
    for (std::size_t i = result.size(); i > 1; --i) {
      std::swap(result[i - 1], result[rng_.uniform(i)]);
    }
    return result;
  }

 private:
  Rng rng_;
};

class IspPolicy final : public NeighborRankingPolicy {
 public:
  explicit IspPolicy(UnderlayService& service) : service_(service) {}
  [[nodiscard]] std::string name() const override { return "isp-location"; }
  std::vector<PeerId> rank(PeerId querier,
                           std::span<const PeerId> candidates) override {
    return rank_by_score(querier, candidates, [&](PeerId c) {
      return static_cast<double>(service_.as_hops(querier, c));
    });
  }

 private:
  UnderlayService& service_;
};

class LatencyPolicy final : public NeighborRankingPolicy {
 public:
  LatencyPolicy(UnderlayService& service, LatencyMethod method)
      : service_(service), method_(method) {}
  [[nodiscard]] std::string name() const override {
    return method_ == LatencyMethod::kExplicitPing ? "latency-ping"
                                                   : "latency-vivaldi";
  }
  std::vector<PeerId> rank(PeerId querier,
                           std::span<const PeerId> candidates) override {
    return rank_by_score(querier, candidates, [&](PeerId c) {
      const double rtt = service_.rtt_ms(querier, c, method_);
      return rtt < 0.0 ? 1e12 : rtt;
    });
  }

 private:
  UnderlayService& service_;
  LatencyMethod method_;
};

class GeoPolicy final : public NeighborRankingPolicy {
 public:
  GeoPolicy(UnderlayService& service, netinfo::GeoSource source)
      : service_(service), source_(source) {}
  [[nodiscard]] std::string name() const override { return "geolocation"; }
  std::vector<PeerId> rank(PeerId querier,
                           std::span<const PeerId> candidates) override {
    return rank_by_score(querier, candidates, [&](PeerId c) {
      const double km = service_.geo_distance_km(querier, c, source_);
      return km < 0.0 ? 1e12 : km;
    });
  }

 private:
  UnderlayService& service_;
  netinfo::GeoSource source_;
};

class ResourcePolicy final : public NeighborRankingPolicy {
 public:
  explicit ResourcePolicy(UnderlayService& service) : service_(service) {}
  [[nodiscard]] std::string name() const override { return "peer-resources"; }
  std::vector<PeerId> rank(PeerId querier,
                           std::span<const PeerId> candidates) override {
    return rank_by_score(querier, candidates, [&](PeerId c) {
      // Negative capacity: strongest first.
      return -service_.network().host(c).resources.capacity_score();
    });
  }

 private:
  UnderlayService& service_;
};

class CompositePolicy final : public NeighborRankingPolicy {
 public:
  CompositePolicy(UnderlayService& service, CompositeWeights weights,
                  LatencyMethod method, netinfo::GeoSource source)
      : service_(service), weights_(weights), method_(method),
        source_(source) {}
  [[nodiscard]] std::string name() const override { return "composite"; }
  std::vector<PeerId> rank(PeerId querier,
                           std::span<const PeerId> candidates) override {
    // Normalize each dimension over the candidate set so weights are
    // comparable, then blend.
    struct Raw {
      PeerId peer;
      double isp, latency, geo, resources;
    };
    std::vector<Raw> raw;
    raw.reserve(candidates.size());
    for (const PeerId c : candidates) {
      if (c == querier) continue;
      Raw r{c, 0, 0, 0, 0};
      if (weights_.isp > 0)
        r.isp = static_cast<double>(service_.as_hops(querier, c));
      if (weights_.latency > 0) {
        const double rtt = service_.rtt_ms(querier, c, method_);
        r.latency = rtt < 0.0 ? 1e12 : rtt;
      }
      if (weights_.geo > 0) {
        const double km = service_.geo_distance_km(querier, c, source_);
        r.geo = km < 0.0 ? 1e12 : km;
      }
      if (weights_.resources > 0)
        r.resources = -service_.network().host(c).resources.capacity_score();
      raw.push_back(r);
    }
    auto normalize = [&](auto member) {
      double lo = 1e300, hi = -1e300;
      for (const Raw& r : raw) {
        lo = std::min(lo, r.*member);
        hi = std::max(hi, r.*member);
      }
      const double span = hi - lo;
      return [lo, span, member](const Raw& r) {
        return span <= 0.0 ? 0.0 : (r.*member - lo) / span;
      };
    };
    auto isp_norm = normalize(&Raw::isp);
    auto lat_norm = normalize(&Raw::latency);
    auto geo_norm = normalize(&Raw::geo);
    auto res_norm = normalize(&Raw::resources);
    std::vector<PeerId> cands;
    cands.reserve(raw.size());
    std::stable_sort(raw.begin(), raw.end(), [&](const Raw& a, const Raw& b) {
      const double sa = weights_.isp * isp_norm(a) +
                        weights_.latency * lat_norm(a) +
                        weights_.geo * geo_norm(a) +
                        weights_.resources * res_norm(a);
      const double sb = weights_.isp * isp_norm(b) +
                        weights_.latency * lat_norm(b) +
                        weights_.geo * geo_norm(b) +
                        weights_.resources * res_norm(b);
      return sa < sb;
    });
    for (const Raw& r : raw) cands.push_back(r.peer);
    return cands;
  }

 private:
  UnderlayService& service_;
  CompositeWeights weights_;
  LatencyMethod method_;
  netinfo::GeoSource source_;
};

}  // namespace

std::unique_ptr<NeighborRankingPolicy> make_random_policy(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}
std::unique_ptr<NeighborRankingPolicy> make_isp_policy(
    UnderlayService& service) {
  return std::make_unique<IspPolicy>(service);
}
std::unique_ptr<NeighborRankingPolicy> make_latency_policy(
    UnderlayService& service, LatencyMethod method) {
  return std::make_unique<LatencyPolicy>(service, method);
}
std::unique_ptr<NeighborRankingPolicy> make_geo_policy(
    UnderlayService& service, netinfo::GeoSource source) {
  return std::make_unique<GeoPolicy>(service, source);
}
std::unique_ptr<NeighborRankingPolicy> make_resource_policy(
    UnderlayService& service) {
  return std::make_unique<ResourcePolicy>(service);
}
std::unique_ptr<NeighborRankingPolicy> make_composite_policy(
    UnderlayService& service, CompositeWeights weights, LatencyMethod method,
    netinfo::GeoSource source) {
  return std::make_unique<CompositePolicy>(service, weights, method, source);
}

}  // namespace uap2p::core
