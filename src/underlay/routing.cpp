#include "underlay/routing.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace uap2p::underlay {
namespace {
constexpr sim::SimTime kUnreachable = std::numeric_limits<sim::SimTime>::max();

std::uint64_t pair_key(RouterId src, RouterId dst) {
  return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
}
}  // namespace

const RoutingTable::SourceState& RoutingTable::run_dijkstra(RouterId src) {
  auto it = sources_.find(src.value());
  if (it != sources_.end()) return it->second;

  const std::size_t n = topology_.router_count();
  SourceState state;
  state.dist.assign(n, kUnreachable);
  state.prev_router.assign(n, RouterId::invalid());
  state.prev_link.assign(n, UINT32_MAX);
  state.dist[src.value()] = 0.0;

  using Entry = std::pair<sim::SimTime, std::uint32_t>;  // (dist, router)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.emplace(0.0, src.value());
  while (!frontier.empty()) {
    const auto [dist, router] = frontier.top();
    frontier.pop();
    if (dist > state.dist[router]) continue;  // stale entry
    for (const auto& neighbor : topology_.neighbors(RouterId(router))) {
      const Link& link = topology_.link(neighbor.link_index);
      const sim::SimTime candidate = dist + link.latency_ms;
      if (candidate < state.dist[neighbor.router.value()]) {
        state.dist[neighbor.router.value()] = candidate;
        state.prev_router[neighbor.router.value()] = RouterId(router);
        state.prev_link[neighbor.router.value()] = neighbor.link_index;
        frontier.emplace(candidate, neighbor.router.value());
      }
    }
  }
  return sources_.emplace(src.value(), std::move(state)).first->second;
}

sim::SimTime RoutingTable::latency_ms(RouterId src, RouterId dst) {
  return path(src, dst).latency_ms;
}

const PathInfo& RoutingTable::path(RouterId src, RouterId dst) {
  const std::uint64_t key = pair_key(src, dst);
  auto it = path_cache_.find(key);
  if (it != path_cache_.end()) return it->second;
  const SourceState& state = run_dijkstra(src);
  return path_cache_.emplace(key, summarize(state, src, dst)).first->second;
}

PathInfo RoutingTable::summarize(const SourceState& state, RouterId src,
                                 RouterId dst) {
  PathInfo info;
  if (state.dist[dst.value()] == kUnreachable) {
    info.latency_ms = kUnreachable;
    return info;
  }
  info.reachable = true;
  info.latency_ms = state.dist[dst.value()];
  info.bottleneck_mbps = std::numeric_limits<double>::max();
  // Walk predecessors dst -> src, then reverse the AS path.
  std::vector<AsId> reversed_as{topology_.as_of(dst)};
  RouterId current = dst;
  while (current != src) {
    const std::uint32_t link_index = state.prev_link[current.value()];
    assert(link_index != UINT32_MAX);
    const Link& link = topology_.link(link_index);
    info.bottleneck_mbps = std::min(info.bottleneck_mbps, link.bandwidth_mbps);
    ++info.router_hops;
    if (link.type == LinkType::kTransit) ++info.transit_crossings;
    if (link.type == LinkType::kPeering) ++info.peering_crossings;
    current = state.prev_router[current.value()];
    const AsId as = topology_.as_of(current);
    if (reversed_as.back() != as) reversed_as.push_back(as);
  }
  if (src == dst) info.bottleneck_mbps = 0.0;
  info.as_path.assign(reversed_as.rbegin(), reversed_as.rend());
  return info;
}

std::vector<RouterId> RoutingTable::router_path(RouterId src, RouterId dst) {
  const SourceState& state = run_dijkstra(src);
  if (state.dist[dst.value()] == kUnreachable) return {};
  std::vector<RouterId> reversed{dst};
  RouterId current = dst;
  while (current != src) {
    current = state.prev_router[current.value()];
    reversed.push_back(current);
  }
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace uap2p::underlay
