#include "underlay/routing.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace uap2p::underlay {

const RoutingTable::SourceState& RoutingTable::run_dijkstra(RouterId src) {
  assert(src.value() < sources_.size());
  std::optional<SourceState>& cached = sources_[src.value()];
  if (cached.has_value()) return *cached;

  const std::size_t n = topology_.router_count();
  SourceState& state = cached.emplace();
  ++cached_sources_;
  state.dist.assign(n, kUnreachableLatency);
  state.prev_router.assign(n, RouterId::invalid());
  state.prev_link.assign(n, UINT32_MAX);
  state.dist[src.value()] = 0.0;

  assert(frontier_.empty());  // drained by the previous run
  frontier_.emplace(0.0, src.value());
  while (!frontier_.empty()) {
    const auto [dist, router] = frontier_.top();
    frontier_.pop();
    if (dist > state.dist[router]) continue;  // stale entry
    for (const auto& neighbor : topology_.neighbors(RouterId(router))) {
      const Link& link = topology_.link(neighbor.link_index);
      const sim::SimTime candidate = dist + link.latency_ms;
      if (candidate < state.dist[neighbor.router.value()]) {
        state.dist[neighbor.router.value()] = candidate;
        state.prev_router[neighbor.router.value()] = RouterId(router);
        state.prev_link[neighbor.router.value()] = neighbor.link_index;
        frontier_.emplace(candidate, neighbor.router.value());
      }
    }
  }
  return state;
}

const PathInfo& RoutingTable::path_miss(std::uint64_t key, RouterId src,
                                        RouterId dst) {
  const SourceState& state = run_dijkstra(src);
  return cache_insert(key, summarize(state, src, dst));
}

const PathInfo& RoutingTable::cache_insert(std::uint64_t key, PathInfo info) {
  const PathInfo* stored = &values_.push(std::move(info));
  cache_.insert_or_assign(key, stored);
  memo_key_ = key;
  memo_value_ = stored;
  return *stored;
}

PathInfo RoutingTable::summarize(const SourceState& state, RouterId src,
                                 RouterId dst) {
  PathInfo info;
  if (state.dist[dst.value()] == kUnreachableLatency) {
    info.latency_ms = kUnreachableLatency;
    return info;
  }
  info.reachable = true;
  info.latency_ms = state.dist[dst.value()];
  info.bottleneck_mbps = std::numeric_limits<double>::max();
  // Walk predecessors dst -> src, then reverse the AS path.
  scratch_as_.clear();
  scratch_as_.push_back(topology_.as_of(dst));
  RouterId current = dst;
  while (current != src) {
    const std::uint32_t link_index = state.prev_link[current.value()];
    assert(link_index != UINT32_MAX);
    const Link& link = topology_.link(link_index);
    info.bottleneck_mbps = std::min(info.bottleneck_mbps, link.bandwidth_mbps);
    ++info.router_hops;
    if (link.type == LinkType::kTransit) ++info.transit_crossings;
    if (link.type == LinkType::kPeering) ++info.peering_crossings;
    current = state.prev_router[current.value()];
    const AsId as = topology_.as_of(current);
    if (scratch_as_.back() != as) scratch_as_.push_back(as);
  }
  if (src == dst) info.bottleneck_mbps = 0.0;
  info.as_path.assign(scratch_as_.rbegin(), scratch_as_.rend());
  return info;
}

std::vector<RouterId> RoutingTable::router_path(RouterId src, RouterId dst) {
  const SourceState& state = run_dijkstra(src);
  if (state.dist[dst.value()] == kUnreachableLatency) return {};
  std::vector<RouterId> reversed{dst};
  RouterId current = dst;
  while (current != src) {
    current = state.prev_router[current.value()];
    reversed.push_back(current);
  }
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace uap2p::underlay
