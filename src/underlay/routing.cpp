#include "underlay/routing.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "common/thread_pool.hpp"
#include "underlay/calendar_queue.hpp"
#include "underlay/hierarchy.hpp"
#include "underlay/snapshot.hpp"

namespace uap2p::underlay {

namespace {

using detail::CalendarQueue;
using detail::enc;

/// Reusable per-thread Dijkstra scratch. thread_local (not per-table) so a
/// fresh RoutingTable pays no scratch allocation after the first run on a
/// thread, and warm_all workers each get their own.
struct DijkstraScratch {
  std::vector<sim::SimTime> dist;
  CalendarQueue queue;
};

DijkstraScratch& scratch() {
  thread_local DijkstraScratch instance;
  return instance;
}

}  // namespace

void RoutingTable::compute_row(std::uint32_t src) {
  const AsTopology::RouterCsr& graph = topology_.csr();
  const std::size_t n = topology_.router_count();
  SourceRow& out = rows_[src];
  if (out.entries == nullptr) {
    // Value-initialized so the 4 trailing padding bytes of every entry are
    // zero bits: serialized rows (underlay/snapshot.hpp) must be
    // byte-deterministic, and assignment below only covers the fields.
    out.owned.reset(new DestEntry[n]());
    out.entries = out.owned.get();
  }
  DestEntry* const row = out.entries;

  DijkstraScratch& s = scratch();
  s.dist.assign(n, kUnreachableLatency);
  s.queue.reset(graph.max_weight, graph.heads.size());
  sim::SimTime* const dist = s.dist.data();
  const std::uint32_t* const offsets = graph.offsets.data();
  const std::uint32_t* const heads = graph.heads.data();
  const sim::SimTime* const weights = graph.weights.data();
  const std::uint32_t* const links = graph.links.data();
  const double* const bandwidths = graph.bandwidths.data();
  const std::uint8_t* const types = graph.types.data();
  const std::uint32_t* const router_as = graph.router_as.data();

  dist[src] = 0.0;
  // Identity for the bottleneck min-fold while children derive from the
  // source; reset to the reported 0 after the run.
  row[src] = DestEntry{0.0, std::numeric_limits<double>::max(), UINT32_MAX,
                       0,   0,
                       0,   0,
                       0};
  s.queue.seed(src);
  std::size_t settled = 0;

  while (s.queue.size() != 0) {
    const CalendarQueue::Slot top = s.queue.pop();
    const std::uint32_t node = top.node;
    const sim::SimTime node_dist = dist[node];
    if (enc(node_dist) < top.key) continue;  // stale entry
    ++settled;
    // The popped router is settled, so its aggregates are final: fold them
    // forward into each improved neighbor's row entry right here. A later
    // improvement of the neighbor overwrites the whole entry, keeping row
    // and dist consistent.
    const DestEntry parent = row[node];
    const std::uint32_t parent_as = router_as[node];
    const std::uint32_t end = offsets[node + 1];
    for (std::uint32_t e = offsets[node]; e < end; ++e) {
      const std::uint32_t next = heads[e];
      const sim::SimTime candidate = node_dist + weights[e];
      if (candidate < dist[next]) {
        dist[next] = candidate;
        DestEntry& entry = row[next];
        entry.latency = candidate;
        entry.bottleneck = std::min(parent.bottleneck, bandwidths[e]);
        entry.prev_link = links[e];
        entry.router_hops = static_cast<std::uint16_t>(parent.router_hops + 1);
        const auto type = static_cast<LinkType>(types[e]);
        entry.transit = static_cast<std::uint16_t>(
            parent.transit + (type == LinkType::kTransit ? 1 : 0));
        entry.peering = static_cast<std::uint16_t>(
            parent.peering + (type == LinkType::kPeering ? 1 : 0));
        entry.as_crossings = static_cast<std::uint16_t>(
            parent.as_crossings + (router_as[next] != parent_as ? 1 : 0));
        s.queue.push(candidate, next);
      }
    }
  }

  if (settled < n) {
    // Disconnected topology: stamp the rows relaxation never touched.
    for (std::size_t i = 0; i < n; ++i) {
      if (dist[i] == kUnreachableLatency) {
        row[i] =
            DestEntry{kUnreachableLatency, 0.0, UINT32_MAX, 0, 0, 0, 0, 0};
      }
    }
  }
  row[src].bottleneck = 0.0;  // self-paths report no bandwidth constraint
}

std::span<const AsId> RoutingTable::as_path(RouterId src, RouterId dst) {
  const DestEntry* row = ensure_row(src.value());
  if (row[dst.value()].latency == kUnreachableLatency) return {};
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
  if (const std::uint32_t* found = pair_paths_.find(key)) {
    const InternedPath& path = interned_[*found];
    return {path.data, path.size};
  }
  // Walk predecessors dst -> src, then reverse into src-first order.
  scratch_as_.clear();
  scratch_as_.push_back(topology_.as_of(dst));
  RouterId current = dst;
  while (current != src) {
    current = prev_router_of(row[current.value()], current);
    const AsId as = topology_.as_of(current);
    if (scratch_as_.back() != as) scratch_as_.push_back(as);
  }
  std::reverse(scratch_as_.begin(), scratch_as_.end());
  const std::uint32_t id = intern(scratch_as_);
  pair_paths_.insert_or_assign(key, id);
  pair_keys_.push_back(key);
  const InternedPath& path = interned_[id];
  return {path.data, path.size};
}

std::uint32_t RoutingTable::intern(std::span<const AsId> sequence) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a over AS ids
  for (const AsId as : sequence) {
    hash ^= as.value();
    hash *= 1099511628211ull;
  }
  const std::uint32_t* head = intern_heads_.find(hash);
  if (head != nullptr) {
    for (std::uint32_t id = *head; id != UINT32_MAX; id = interned_[id].next) {
      const InternedPath& path = interned_[id];
      if (path.size == sequence.size() &&
          std::equal(sequence.begin(), sequence.end(), path.data)) {
        return id;
      }
    }
  }
  if (arena_.empty() ||
      arena_.back().capacity() - arena_.back().size() < sequence.size()) {
    arena_.emplace_back();
    arena_.back().reserve(std::max(kArenaBlock, sequence.size()));
  }
  std::vector<AsId>& block = arena_.back();
  const AsId* data = block.data() + block.size();
  block.insert(block.end(), sequence.begin(), sequence.end());
  const auto id = static_cast<std::uint32_t>(interned_.size());
  interned_.push_back(InternedPath{data,
                                   static_cast<std::uint32_t>(sequence.size()),
                                   head != nullptr ? *head : UINT32_MAX});
  intern_heads_.insert_or_assign(hash, id);
  return id;
}

std::vector<RouterId> RoutingTable::router_path(RouterId src, RouterId dst) {
  const DestEntry* row = ensure_row(src.value());
  if (row[dst.value()].latency == kUnreachableLatency) return {};
  std::vector<RouterId> reversed{dst};
  RouterId current = dst;
  while (current != src) {
    current = prev_router_of(row[current.value()], current);
    reversed.push_back(current);
  }
  return {reversed.rbegin(), reversed.rend()};
}

void RoutingTable::warm_all(std::size_t threads) {
  const std::size_t n = topology_.router_count();
  (void)topology_.csr();  // build once before workers share it read-only
  parallel_for(
      n,
      [this](std::size_t src) {
        if (rows_[src].entries == nullptr) {
          compute_row(static_cast<std::uint32_t>(src));
        }
      },
      threads);
  cached_sources_ = n;
}

void RoutingTable::warm_all(ThreadPool& pool) {
  const std::size_t n = topology_.router_count();
  (void)topology_.csr();
  const std::size_t lanes = std::min(pool.thread_count(), n);
  if (lanes <= 1 || ThreadPool::on_worker_thread()) {
    // Nested parallelism degrades to inline, mirroring parallel_for.
    for (std::size_t src = 0; src < n; ++src) {
      if (rows_[src].entries == nullptr) {
        compute_row(static_cast<std::uint32_t>(src));
      }
    }
  } else {
    std::vector<std::future<void>> done;
    done.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      done.push_back(pool.submit([this, lane, lanes, n] {
        for (std::size_t src = lane; src < n; src += lanes) {
          if (rows_[src].entries == nullptr) {
            compute_row(static_cast<std::uint32_t>(src));
          }
        }
      }));
    }
    for (auto& future : done) future.get();
  }
  cached_sources_ = n;
}

void RoutingTable::adopt_rows(std::span<const DestEntry> image) {
  const std::size_t n = topology_.router_count();
  assert(image.size() == n * n);
  assert(cached_sources_ == 0 && "adopt_rows wants a fresh table");
  for (std::size_t src = 0; src < n; ++src) {
    // The table never writes through an adopted row (compute_row is gated
    // on a null entries pointer), so shedding const here is safe even for
    // a PROT_READ mapping.
    rows_[src].entries = const_cast<DestEntry*>(image.data() + src * n);
    rows_[src].owned.reset();
  }
  cached_sources_ = n;
}

std::vector<std::uint64_t> RoutingTable::materialized_pair_keys() const {
  std::vector<std::uint64_t> keys = pair_keys_;
  std::sort(keys.begin(), keys.end());  // (src, dst) order, query-order-free
  return keys;
}

void RoutingTable::materialize_pairs(std::span<const std::uint64_t> keys) {
  for (const std::uint64_t key : keys) {
    (void)as_path(RouterId(static_cast<std::uint32_t>(key >> 32)),
                  RouterId(static_cast<std::uint32_t>(key)));
  }
}

std::size_t RoutingTable::row_bytes() const {
  std::size_t total = 0;
  for (const SourceRow& row : rows_) {
    if (row.entries != nullptr) {
      total += topology_.router_count() * sizeof(DestEntry);
    }
  }
  return total;
}

SharedRouting::SharedRouting(AsTopology topology)
    : topology_(std::move(topology)), table_(topology_) {}

std::shared_ptr<const SharedRouting> SharedRouting::build(AsTopology topology,
                                                          std::size_t threads) {
  std::shared_ptr<SharedRouting> shared(
      new SharedRouting(std::move(topology)));
  shared->topology_.warm_as_hops(threads);
  // The hierarchical warm is byte-identical to warm_all (gated by the
  // routing property suite and the snapshot-roundtrip verify), so every
  // SharedRouting consumer — benches, the oracle tier, snapshot writes —
  // rides the contracted path for free.
  shared->table_.warm_all_hierarchical(threads);
  shared->table_.ensure_landmarks();
  return shared;
}

}  // namespace uap2p::underlay
