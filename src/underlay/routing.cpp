#include "underlay/routing.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace uap2p::underlay {

const RoutingTable::SourceState& RoutingTable::run_dijkstra(RouterId src) {
  assert(src.value() < sources_.size());
  std::optional<SourceState>& cached = sources_[src.value()];
  if (cached.has_value()) return *cached;

  const std::size_t n = topology_.router_count();
  SourceState& state = cached.emplace();
  ++cached_sources_;
  state.dist.assign(n, kUnreachableLatency);
  state.prev_router.assign(n, RouterId::invalid());
  state.prev_link.assign(n, UINT32_MAX);
  state.dist[src.value()] = 0.0;

  assert(frontier_.empty());  // drained by the previous run
  frontier_.emplace(0.0, src.value());
  while (!frontier_.empty()) {
    const auto [dist, router] = frontier_.top();
    frontier_.pop();
    if (dist > state.dist[router]) continue;  // stale entry
    for (const auto& neighbor : topology_.neighbors(RouterId(router))) {
      const Link& link = topology_.link(neighbor.link_index);
      const sim::SimTime candidate = dist + link.latency_ms;
      if (candidate < state.dist[neighbor.router.value()]) {
        state.dist[neighbor.router.value()] = candidate;
        state.prev_router[neighbor.router.value()] = RouterId(router);
        state.prev_link[neighbor.router.value()] = neighbor.link_index;
        frontier_.emplace(candidate, neighbor.router.value());
      }
    }
  }
  return state;
}

const PathInfo& RoutingTable::path_miss(std::uint64_t key, RouterId src,
                                        RouterId dst) {
  const SourceState& state = run_dijkstra(src);
  return cache_insert(key, summarize(state, src, dst));
}

const PathInfo& RoutingTable::cache_insert(std::uint64_t key, PathInfo info) {
  // Grow at 70% load so probe sequences stay short.
  if (cache_slots_.empty() ||
      value_count_ + 1 > cache_slots_.size() * 7 / 10) {
    grow_cache();
  }
  if (value_count_ % kValuesPerChunk == 0) {
    value_chunks_.emplace_back();
    value_chunks_.back().reserve(kValuesPerChunk);  // data pointer is final
  }
  ++value_count_;
  value_chunks_.back().push_back(std::move(info));
  const PathInfo* stored = &value_chunks_.back().back();

  const std::size_t mask = cache_slots_.size() - 1;
  std::size_t i = probe_start(key, mask);
  while (cache_slots_[i].value != nullptr) i = (i + 1) & mask;
  cache_slots_[i] = CacheSlot{key, stored};
  memo_key_ = key;
  memo_value_ = stored;
  return *stored;
}

void RoutingTable::grow_cache() {
  const std::size_t new_capacity =
      cache_slots_.empty() ? 64 : cache_slots_.size() * 2;
  std::vector<CacheSlot> old = std::move(cache_slots_);
  cache_slots_.assign(new_capacity, CacheSlot{});
  const std::size_t mask = new_capacity - 1;
  for (const CacheSlot& slot : old) {
    if (slot.value == nullptr) continue;
    std::size_t i = probe_start(slot.key, mask);
    while (cache_slots_[i].value != nullptr) i = (i + 1) & mask;
    cache_slots_[i] = slot;
  }
}

PathInfo RoutingTable::summarize(const SourceState& state, RouterId src,
                                 RouterId dst) {
  PathInfo info;
  if (state.dist[dst.value()] == kUnreachableLatency) {
    info.latency_ms = kUnreachableLatency;
    return info;
  }
  info.reachable = true;
  info.latency_ms = state.dist[dst.value()];
  info.bottleneck_mbps = std::numeric_limits<double>::max();
  // Walk predecessors dst -> src, then reverse the AS path.
  scratch_as_.clear();
  scratch_as_.push_back(topology_.as_of(dst));
  RouterId current = dst;
  while (current != src) {
    const std::uint32_t link_index = state.prev_link[current.value()];
    assert(link_index != UINT32_MAX);
    const Link& link = topology_.link(link_index);
    info.bottleneck_mbps = std::min(info.bottleneck_mbps, link.bandwidth_mbps);
    ++info.router_hops;
    if (link.type == LinkType::kTransit) ++info.transit_crossings;
    if (link.type == LinkType::kPeering) ++info.peering_crossings;
    current = state.prev_router[current.value()];
    const AsId as = topology_.as_of(current);
    if (scratch_as_.back() != as) scratch_as_.push_back(as);
  }
  if (src == dst) info.bottleneck_mbps = 0.0;
  info.as_path.assign(scratch_as_.rbegin(), scratch_as_.rend());
  return info;
}

std::vector<RouterId> RoutingTable::router_path(RouterId src, RouterId dst) {
  const SourceState& state = run_dijkstra(src);
  if (state.dist[dst.value()] == kUnreachableLatency) return {};
  std::vector<RouterId> reversed{dst};
  RouterId current = dst;
  while (current != src) {
    current = state.prev_router[current.value()];
    reversed.push_back(current);
  }
  return {reversed.rbegin(), reversed.rend()};
}

}  // namespace uap2p::underlay
