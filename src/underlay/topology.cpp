#include "underlay/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>

namespace uap2p::underlay {

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kInternal: return "internal";
    case LinkType::kPeering: return "peering";
    case LinkType::kTransit: return "transit";
  }
  return "?";
}

AsId AsTopology::add_as(std::string name, bool is_transit, GeoPoint location) {
  AutonomousSystem as;
  as.id = AsId(static_cast<std::uint32_t>(ases_.size()));
  as.name = std::move(name);
  as.is_transit = is_transit;
  as.location = location;
  ases_.push_back(std::move(as));
  assign_prefix(ases_.back().id);
  as_hop_cache_.clear();
  return ases_.back().id;
}

void AsTopology::assign_prefix(AsId as) {
  // Deterministic /16 allocation: 10.x.0.0/16 for the first 256 ASes, then
  // (11+k).x.0.0/16 blocks. Gives IP-to-ISP mapping services a realistic
  // longest-prefix-match structure.
  const std::uint32_t index = as.value();
  const std::uint32_t first_octet = 10 + index / 256;
  const std::uint32_t second_octet = index % 256;
  ases_[index].prefix = (first_octet << 24) | (second_octet << 16);
  ases_[index].prefix_len = 16;
}

RouterId AsTopology::add_router(AsId as, GeoPoint location) {
  assert(as.value() < ases_.size());
  Router router;
  router.id = RouterId(static_cast<std::uint32_t>(routers_.size()));
  router.as = as;
  router.location = location;
  router.is_gateway = ases_[as.value()].routers.empty();
  ases_[as.value()].routers.push_back(router.id);
  routers_.push_back(router);
  adjacency_.emplace_back();
  return router.id;
}

void AsTopology::connect(RouterId a, RouterId b, LinkType type,
                         sim::SimTime latency_ms, double bandwidth_mbps) {
  assert(a.value() < routers_.size() && b.value() < routers_.size());
  assert(a != b);
  const auto index = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{a, b, latency_ms, bandwidth_mbps, type});
  adjacency_[a.value()].push_back(Neighbor{b, index});
  adjacency_[b.value()].push_back(Neighbor{a, index});
  as_hop_cache_.clear();
}

void AsTopology::connect_ases(AsId a, AsId b, LinkType type) {
  assert(type != LinkType::kInternal);
  const auto& as_a = ases_[a.value()];
  const auto& as_b = ases_[b.value()];
  sim::SimTime latency = 10.0;
  if (config_.latency_from_geo) {
    latency = propagation_delay_ms(haversine_km(as_a.location, as_b.location));
  }
  latency = std::max(latency, config_.min_inter_as_latency_ms);
  connect(gateway_of(a), gateway_of(b), type, latency,
          config_.inter_as_bandwidth_mbps);
}

void AsTopology::build_internal_routers(AsId as, Rng& rng) {
  const GeoPoint center = ases_[as.value()].location;
  // Routers are scattered within ~30 km of the AS location; the gateway is
  // the first one. Internal structure is a star on the gateway (a stub
  // ISP's access network) with latency jittered around the configured mean.
  std::vector<RouterId> routers;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.routers_per_as);
       ++i) {
    GeoPoint location = center;
    location.lat_deg += rng.uniform_real(-0.25, 0.25);
    location.lon_deg += rng.uniform_real(-0.25, 0.25);
    routers.push_back(add_router(as, location));
  }
  for (std::size_t i = 1; i < routers.size(); ++i) {
    const sim::SimTime latency =
        config_.internal_latency_ms * rng.uniform_real(0.5, 1.5);
    connect(routers.front(), routers[i], LinkType::kInternal, latency,
            config_.internal_bandwidth_mbps);
  }
}

AsTopology AsTopology::with_ases(std::size_t n_ases,
                                 const TopologyConfig& config,
                                 const std::string& prefix_name) {
  assert(n_ases > 0);
  AsTopology topo(config);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < n_ases; ++i) {
    // ASes scatter over a continent-sized box (roughly Europe).
    GeoPoint location{rng.uniform_real(36.0, 60.0),
                      rng.uniform_real(-10.0, 30.0)};
    const AsId as =
        topo.add_as(prefix_name + std::to_string(i), false, location);
    topo.build_internal_routers(as, rng);
  }
  return topo;
}

AsTopology AsTopology::ring(std::size_t n_ases, const TopologyConfig& config) {
  AsTopology topo = with_ases(n_ases, config, "ring-as-");
  for (std::size_t i = 0; i < n_ases && n_ases > 1; ++i) {
    const auto next = (i + 1) % n_ases;
    if (n_ases == 2 && i == 1) break;  // avoid a duplicate link
    topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(next)),
                      LinkType::kPeering);
  }
  return topo;
}

AsTopology AsTopology::star(std::size_t n_ases, const TopologyConfig& config) {
  AsTopology topo = with_ases(n_ases, config, "star-as-");
  topo.ases_[0].is_transit = true;  // hub acts as the transit provider
  for (std::size_t i = 1; i < n_ases; ++i) {
    topo.connect_ases(AsId(0), AsId(std::uint32_t(i)), LinkType::kTransit);
  }
  return topo;
}

AsTopology AsTopology::tree(std::size_t n_ases, std::size_t branching,
                            const TopologyConfig& config) {
  assert(branching >= 1);
  AsTopology topo = with_ases(n_ases, config, "tree-as-");
  for (std::size_t i = 1; i < n_ases; ++i) {
    const std::size_t parent = (i - 1) / branching;
    topo.ases_[parent].is_transit = true;  // inner nodes carry transit
    topo.connect_ases(AsId(std::uint32_t(parent)), AsId(std::uint32_t(i)),
                      LinkType::kTransit);
  }
  return topo;
}

AsTopology AsTopology::mesh(std::size_t n_ases, double edge_probability,
                            const TopologyConfig& config) {
  AsTopology topo = with_ases(n_ases, config, "mesh-as-");
  Rng rng(config.seed ^ 0xabcdef);
  // Spanning ring guarantees connectivity.
  for (std::size_t i = 0; i < n_ases && n_ases > 1; ++i) {
    const auto next = (i + 1) % n_ases;
    if (n_ases == 2 && i == 1) break;
    topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(next)),
                      LinkType::kPeering);
  }
  for (std::size_t i = 0; i + 2 < n_ases + 1; ++i) {
    for (std::size_t j = i + 2; j < n_ases; ++j) {
      if (i == 0 && j == n_ases - 1) continue;  // ring already links these
      if (rng.bernoulli(edge_probability)) {
        topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(j)),
                          LinkType::kPeering);
      }
    }
  }
  return topo;
}

AsTopology AsTopology::transit_stub(std::size_t n_transit,
                                    std::size_t stubs_per_transit,
                                    double stub_peering_probability,
                                    const TopologyConfig& config) {
  assert(n_transit > 0);
  AsTopology topo(config);
  Rng rng(config.seed);
  // Transit ASes sit on a wide backbone ellipse.
  for (std::size_t i = 0; i < n_transit; ++i) {
    const double angle = 2.0 * 3.14159265358979 * double(i) / double(n_transit);
    GeoPoint location{48.0 + 8.0 * std::sin(angle), 10.0 + 18.0 * std::cos(angle)};
    const AsId as = topo.add_as("transit-" + std::to_string(i), true, location);
    topo.build_internal_routers(as, rng);
  }
  // Full peering mesh between transit ASes.
  for (std::size_t i = 0; i < n_transit; ++i)
    for (std::size_t j = i + 1; j < n_transit; ++j)
      topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(j)),
                        LinkType::kPeering);
  // Stubs cluster geographically around their provider.
  std::vector<std::vector<AsId>> stubs_of(n_transit);
  for (std::size_t t = 0; t < n_transit; ++t) {
    const GeoPoint hub = topo.ases_[t].location;
    for (std::size_t s = 0; s < stubs_per_transit; ++s) {
      GeoPoint location{hub.lat_deg + rng.uniform_real(-2.0, 2.0),
                        hub.lon_deg + rng.uniform_real(-3.0, 3.0)};
      const AsId stub = topo.add_as(
          "stub-" + std::to_string(t) + "-" + std::to_string(s), false,
          location);
      topo.build_internal_routers(stub, rng);
      topo.connect_ases(AsId(std::uint32_t(t)), stub, LinkType::kTransit);
      stubs_of[t].push_back(stub);
    }
  }
  // Peering agreements between stubs of the same provider (the paper's
  // "closely located ISPs are motivated to peer").
  for (const auto& group : stubs_of) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (rng.bernoulli(stub_peering_probability)) {
          topo.connect_ases(group[i], group[j], LinkType::kPeering);
        }
      }
    }
  }
  return topo;
}

std::vector<std::size_t>& AsTopology::as_bfs(AsId from) const {
  if (as_hop_cache_.size() != ases_.size()) {
    as_hop_cache_.assign(ases_.size(), {});
  }
  auto& dist = as_hop_cache_[from.value()];
  if (!dist.empty()) return dist;

  dist.assign(ases_.size(), SIZE_MAX);
  dist[from.value()] = 0;
  std::deque<AsId> frontier{from};
  while (!frontier.empty()) {
    const AsId current = frontier.front();
    frontier.pop_front();
    for (const AsId next : as_neighbors(current)) {
      if (dist[next.value()] == SIZE_MAX) {
        dist[next.value()] = dist[current.value()] + 1;
        frontier.push_back(next);
      }
    }
  }
  return dist;
}

std::size_t AsTopology::as_hop_distance(AsId from, AsId to) const {
  assert(from.value() < ases_.size() && to.value() < ases_.size());
  return as_bfs(from)[to.value()];
}

std::vector<AsId> AsTopology::as_neighbors(AsId as) const {
  std::vector<AsId> result;
  for (const RouterId router : ases_[as.value()].routers) {
    for (const Neighbor& neighbor : adjacency_[router.value()]) {
      const AsId other = as_of(neighbor.router);
      if (other != as && std::find(result.begin(), result.end(), other) ==
                             result.end()) {
        result.push_back(other);
      }
    }
  }
  return result;
}

}  // namespace uap2p::underlay
