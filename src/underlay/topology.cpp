#include "underlay/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/thread_pool.hpp"
#include "underlay/hierarchy.hpp"

namespace uap2p::underlay {

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kInternal: return "internal";
    case LinkType::kPeering: return "peering";
    case LinkType::kTransit: return "transit";
  }
  return "?";
}

AsId AsTopology::add_as(std::string name, bool is_transit, GeoPoint location) {
  AutonomousSystem as;
  as.id = AsId(static_cast<std::uint32_t>(ases_.size()));
  as.name = std::move(name);
  as.is_transit = is_transit;
  as.location = location;
  ases_.push_back(std::move(as));
  assign_prefix(ases_.back().id);
  as_hop_cache_.clear();
  as_csr_dirty_ = true;
  return ases_.back().id;
}

void AsTopology::assign_prefix(AsId as) {
  // Deterministic /16 allocation: 10.x.0.0/16 for the first 256 ASes, then
  // (11+k).x.0.0/16 blocks. Gives IP-to-ISP mapping services a realistic
  // longest-prefix-match structure.
  const std::uint32_t index = as.value();
  const std::uint32_t first_octet = 10 + index / 256;
  const std::uint32_t second_octet = index % 256;
  ases_[index].prefix = (first_octet << 24) | (second_octet << 16);
  ases_[index].prefix_len = 16;
}

RouterId AsTopology::add_router(AsId as, GeoPoint location) {
  assert(as.value() < ases_.size());
  Router router;
  router.id = RouterId(static_cast<std::uint32_t>(routers_.size()));
  router.as = as;
  router.location = location;
  router.is_gateway = ases_[as.value()].routers.empty();
  ases_[as.value()].routers.push_back(router.id);
  routers_.push_back(router);
  adjacency_.emplace_back();
  csr_dirty_ = true;
  hier_plan_ = nullptr;
  return router.id;
}

void AsTopology::connect(RouterId a, RouterId b, LinkType type,
                         sim::SimTime latency_ms, double bandwidth_mbps) {
  assert(a.value() < routers_.size() && b.value() < routers_.size());
  assert(a != b);
  const auto index = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{a, b, latency_ms, bandwidth_mbps, type});
  adjacency_[a.value()].push_back(Neighbor{b, index});
  adjacency_[b.value()].push_back(Neighbor{a, index});
  as_hop_cache_.clear();
  csr_dirty_ = true;
  as_csr_dirty_ = true;
  hier_plan_ = nullptr;
}

void AsTopology::connect_ases(AsId a, AsId b, LinkType type) {
  assert(type != LinkType::kInternal);
  const auto& as_a = ases_[a.value()];
  const auto& as_b = ases_[b.value()];
  sim::SimTime latency = 10.0;
  if (config_.latency_from_geo) {
    latency = propagation_delay_ms(haversine_km(as_a.location, as_b.location));
  }
  latency = std::max(latency, config_.min_inter_as_latency_ms);
  connect(gateway_of(a), gateway_of(b), type, latency,
          config_.inter_as_bandwidth_mbps);
}

void AsTopology::build_internal_routers(AsId as, Rng& rng) {
  const GeoPoint center = ases_[as.value()].location;
  // Routers are scattered within ~30 km of the AS location; the gateway is
  // the first one. Internal structure is a star on the gateway (a stub
  // ISP's access network) with latency jittered around the configured mean.
  std::vector<RouterId> routers;
  for (std::size_t i = 0; i < std::max<std::size_t>(1, config_.routers_per_as);
       ++i) {
    GeoPoint location = center;
    location.lat_deg += rng.uniform_real(-0.25, 0.25);
    location.lon_deg += rng.uniform_real(-0.25, 0.25);
    routers.push_back(add_router(as, location));
  }
  for (std::size_t i = 1; i < routers.size(); ++i) {
    const sim::SimTime latency =
        config_.internal_latency_ms * rng.uniform_real(0.5, 1.5);
    connect(routers.front(), routers[i], LinkType::kInternal, latency,
            config_.internal_bandwidth_mbps);
  }
}

AsTopology AsTopology::with_ases(std::size_t n_ases,
                                 const TopologyConfig& config,
                                 const std::string& prefix_name) {
  assert(n_ases > 0);
  AsTopology topo(config);
  Rng rng(config.seed);
  for (std::size_t i = 0; i < n_ases; ++i) {
    // ASes scatter over a continent-sized box (roughly Europe).
    GeoPoint location{rng.uniform_real(36.0, 60.0),
                      rng.uniform_real(-10.0, 30.0)};
    const AsId as =
        topo.add_as(prefix_name + std::to_string(i), false, location);
    topo.build_internal_routers(as, rng);
  }
  return topo;
}

AsTopology AsTopology::ring(std::size_t n_ases, const TopologyConfig& config) {
  AsTopology topo = with_ases(n_ases, config, "ring-as-");
  for (std::size_t i = 0; i < n_ases && n_ases > 1; ++i) {
    const auto next = (i + 1) % n_ases;
    if (n_ases == 2 && i == 1) break;  // avoid a duplicate link
    topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(next)),
                      LinkType::kPeering);
  }
  return topo;
}

AsTopology AsTopology::star(std::size_t n_ases, const TopologyConfig& config) {
  AsTopology topo = with_ases(n_ases, config, "star-as-");
  topo.ases_[0].is_transit = true;  // hub acts as the transit provider
  for (std::size_t i = 1; i < n_ases; ++i) {
    topo.connect_ases(AsId(0), AsId(std::uint32_t(i)), LinkType::kTransit);
  }
  return topo;
}

AsTopology AsTopology::tree(std::size_t n_ases, std::size_t branching,
                            const TopologyConfig& config) {
  assert(branching >= 1);
  AsTopology topo = with_ases(n_ases, config, "tree-as-");
  for (std::size_t i = 1; i < n_ases; ++i) {
    const std::size_t parent = (i - 1) / branching;
    topo.ases_[parent].is_transit = true;  // inner nodes carry transit
    topo.connect_ases(AsId(std::uint32_t(parent)), AsId(std::uint32_t(i)),
                      LinkType::kTransit);
  }
  return topo;
}

AsTopology AsTopology::mesh(std::size_t n_ases, double edge_probability,
                            const TopologyConfig& config) {
  AsTopology topo = with_ases(n_ases, config, "mesh-as-");
  Rng rng(config.seed ^ 0xabcdef);
  // Spanning ring guarantees connectivity.
  for (std::size_t i = 0; i < n_ases && n_ases > 1; ++i) {
    const auto next = (i + 1) % n_ases;
    if (n_ases == 2 && i == 1) break;
    topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(next)),
                      LinkType::kPeering);
  }
  for (std::size_t i = 0; i + 2 < n_ases + 1; ++i) {
    for (std::size_t j = i + 2; j < n_ases; ++j) {
      if (i == 0 && j == n_ases - 1) continue;  // ring already links these
      if (rng.bernoulli(edge_probability)) {
        topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(j)),
                          LinkType::kPeering);
      }
    }
  }
  return topo;
}

AsTopology AsTopology::transit_stub(std::size_t n_transit,
                                    std::size_t stubs_per_transit,
                                    double stub_peering_probability,
                                    const TopologyConfig& config) {
  assert(n_transit > 0);
  AsTopology topo(config);
  Rng rng(config.seed);
  // Transit ASes sit on a wide backbone ellipse.
  for (std::size_t i = 0; i < n_transit; ++i) {
    const double angle = 2.0 * 3.14159265358979 * double(i) / double(n_transit);
    GeoPoint location{48.0 + 8.0 * std::sin(angle), 10.0 + 18.0 * std::cos(angle)};
    const AsId as = topo.add_as("transit-" + std::to_string(i), true, location);
    topo.build_internal_routers(as, rng);
  }
  // Full peering mesh between transit ASes.
  for (std::size_t i = 0; i < n_transit; ++i)
    for (std::size_t j = i + 1; j < n_transit; ++j)
      topo.connect_ases(AsId(std::uint32_t(i)), AsId(std::uint32_t(j)),
                        LinkType::kPeering);
  // Stubs cluster geographically around their provider.
  std::vector<std::vector<AsId>> stubs_of(n_transit);
  for (std::size_t t = 0; t < n_transit; ++t) {
    const GeoPoint hub = topo.ases_[t].location;
    for (std::size_t s = 0; s < stubs_per_transit; ++s) {
      GeoPoint location{hub.lat_deg + rng.uniform_real(-2.0, 2.0),
                        hub.lon_deg + rng.uniform_real(-3.0, 3.0)};
      const AsId stub = topo.add_as(
          "stub-" + std::to_string(t) + "-" + std::to_string(s), false,
          location);
      topo.build_internal_routers(stub, rng);
      topo.connect_ases(AsId(std::uint32_t(t)), stub, LinkType::kTransit);
      stubs_of[t].push_back(stub);
    }
  }
  // Peering agreements between stubs of the same provider (the paper's
  // "closely located ISPs are motivated to peer").
  for (const auto& group : stubs_of) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      for (std::size_t j = i + 1; j < group.size(); ++j) {
        if (rng.bernoulli(stub_peering_probability)) {
          topo.connect_ases(group[i], group[j], LinkType::kPeering);
        }
      }
    }
  }
  return topo;
}

const AsTopology::RouterCsr& AsTopology::csr() const {
  if (!csr_dirty_) return csr_;
  const std::size_t n = routers_.size();
  std::size_t edges = 0;
  for (const auto& list : adjacency_) edges += list.size();
  csr_.offsets.assign(n + 1, 0);
  csr_.heads.clear();
  csr_.heads.reserve(edges);
  csr_.weights.clear();
  csr_.weights.reserve(edges);
  csr_.links.clear();
  csr_.links.reserve(edges);
  csr_.bandwidths.clear();
  csr_.bandwidths.reserve(edges);
  csr_.types.clear();
  csr_.types.reserve(edges);
  csr_.router_as.resize(n);
  csr_.max_weight = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    csr_.offsets[r] = static_cast<std::uint32_t>(csr_.heads.size());
    csr_.router_as[r] = routers_[r].as.value();
    for (const Neighbor& neighbor : adjacency_[r]) {
      const Link& link = links_[neighbor.link_index];
      csr_.heads.push_back(neighbor.router.value());
      csr_.weights.push_back(link.latency_ms);
      csr_.links.push_back(neighbor.link_index);
      csr_.bandwidths.push_back(link.bandwidth_mbps);
      csr_.types.push_back(static_cast<std::uint8_t>(link.type));
      csr_.max_weight = std::max(csr_.max_weight, link.latency_ms);
    }
  }
  csr_.offsets[n] = static_cast<std::uint32_t>(csr_.heads.size());
  csr_dirty_ = false;
  return csr_;
}

std::shared_ptr<const HierarchyPlan> AsTopology::hierarchy_plan() const {
  // The plan bakes edge payloads, so the mutators drop it eagerly (the
  // CSR-dirty flag alone is not a safe staleness signal here: any csr()
  // call — warm_all_hierarchical makes one before asking for the plan —
  // clears it without touching the plan). This check only backstops the
  // default-constructed state.
  if (csr_dirty_) hier_plan_ = nullptr;
  (void)csr();
  if (hier_plan_ == nullptr) hier_plan_ = HierarchyPlan::build(*this);
  return hier_plan_;
}

const AsTopology::AsCsr& AsTopology::as_csr() const {
  if (!as_csr_dirty_) return as_csr_;
  const std::size_t n = ases_.size();
  as_csr_.offsets.assign(n + 1, 0);
  as_csr_.heads.clear();
  // Per-source stamp dedup (an AS may reach the same neighbor over several
  // links); discovery order is preserved, matching the historical
  // as_neighbors result.
  std::vector<std::uint32_t> seen(n, UINT32_MAX);
  for (std::size_t a = 0; a < n; ++a) {
    as_csr_.offsets[a] = static_cast<std::uint32_t>(as_csr_.heads.size());
    for (const RouterId router : ases_[a].routers) {
      for (const Neighbor& neighbor : adjacency_[router.value()]) {
        const AsId other = routers_[neighbor.router.value()].as;
        if (other.value() == a || seen[other.value()] == a) continue;
        seen[other.value()] = static_cast<std::uint32_t>(a);
        as_csr_.heads.push_back(other);
      }
    }
  }
  as_csr_.offsets[n] = static_cast<std::uint32_t>(as_csr_.heads.size());
  as_csr_dirty_ = false;
  return as_csr_;
}

void AsTopology::fill_as_row(std::vector<std::size_t>& dist, AsId from) const {
  // Callers build as_csr_ before any concurrent fill; this reads it only.
  const AsCsr& graph = as_csr_;
  dist.assign(ases_.size(), SIZE_MAX);
  dist[from.value()] = 0;
  std::vector<std::uint32_t> queue;
  queue.reserve(ases_.size());
  queue.push_back(from.value());
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t current = queue[head];
    const std::size_t next_dist = dist[current] + 1;
    for (std::uint32_t e = graph.offsets[current];
         e < graph.offsets[current + 1]; ++e) {
      const std::uint32_t other = graph.heads[e].value();
      if (dist[other] == SIZE_MAX) {
        dist[other] = next_dist;
        queue.push_back(other);
      }
    }
  }
}

std::vector<std::size_t>& AsTopology::as_bfs(AsId from) const {
  if (as_hop_cache_.size() != ases_.size()) {
    as_hop_cache_.assign(ases_.size(), {});
  }
  auto& dist = as_hop_cache_[from.value()];
  if (!dist.empty()) return dist;
  (void)as_csr();
  fill_as_row(dist, from);
  return dist;
}

std::size_t AsTopology::as_hop_distance(AsId from, AsId to) const {
  assert(from.value() < ases_.size() && to.value() < ases_.size());
  return as_bfs(from)[to.value()];
}

void AsTopology::warm_as_hops(std::size_t threads) const {
  (void)as_csr();  // build once, before workers share it read-only
  if (as_hop_cache_.size() != ases_.size()) {
    as_hop_cache_.assign(ases_.size(), {});
  }
  parallel_for(
      ases_.size(),
      [this](std::size_t a) {
        auto& dist = as_hop_cache_[a];
        if (dist.empty()) fill_as_row(dist, AsId(static_cast<std::uint32_t>(a)));
      },
      threads);
}

std::span<const AsId> AsTopology::as_neighbors(AsId as) const {
  const AsCsr& graph = as_csr();
  const std::uint32_t begin = graph.offsets[as.value()];
  const std::uint32_t end = graph.offsets[as.value() + 1];
  return {graph.heads.data() + begin, end - begin};
}

}  // namespace uap2p::underlay
