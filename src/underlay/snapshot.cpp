#include "underlay/snapshot.hpp"

#include "underlay/hierarchy.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_set>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define UAP2P_SNAPSHOT_MMAP 1
#endif

namespace uap2p::underlay::snapshot {

// The format stores raw little-endian PODs; a big-endian host would need
// a byte-swapping load path nobody has asked for yet.
static_assert(std::endian::native == std::endian::little,
              "snapshot files are little-endian");

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kLaneSeed = 0x9e3779b97f4a7c15ull;
constexpr std::size_t kAlign = 64;
constexpr std::size_t kMaxSections = 64;

/// Streaming form of content_hash: 64-byte blocks feed eight independent
/// FNV-1a chains (one 8-byte word each); finish() folds the lanes and
/// FNV-steps any buffered tail byte-wise. One-shot and chunked updates
/// over the same bytes produce the same digest.
class Hasher {
 public:
  Hasher() {
    for (std::size_t i = 0; i < 8; ++i) lane_[i] = kFnvOffset + kLaneSeed * i;
  }

  void update(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    if (buffered_ != 0) {
      const std::size_t take = std::min(size, kAlign - buffered_);
      std::memcpy(buffer_ + buffered_, p, take);
      buffered_ += take;
      p += take;
      size -= take;
      if (buffered_ == kAlign) {
        consume(buffer_);
        buffered_ = 0;
      }
    }
    for (; size >= kAlign; p += kAlign, size -= kAlign) consume(p);
    if (size != 0) {
      std::memcpy(buffer_, p, size);
      buffered_ = size;
    }
  }

  [[nodiscard]] std::uint64_t finish() const {
    std::uint64_t hash = kFnvOffset;
    for (const std::uint64_t lane : lane_) hash = (hash ^ lane) * kFnvPrime;
    for (std::size_t i = 0; i < buffered_; ++i) {
      hash = (hash ^ static_cast<std::uint8_t>(buffer_[i])) * kFnvPrime;
    }
    return hash;
  }

 private:
  void consume(const std::byte* block) {
    for (std::size_t l = 0; l < 8; ++l) {
      std::uint64_t word;
      std::memcpy(&word, block + 8 * l, sizeof(word));
      lane_[l] = (lane_[l] ^ word) * kFnvPrime;
    }
  }

  std::uint64_t lane_[8];
  std::byte buffer_[kAlign];
  std::size_t buffered_ = 0;
};

[[nodiscard]] std::uint64_t fold_section_hashes(
    std::span<const SectionRecord> table) {
  std::uint64_t hash = kFnvOffset;
  for (const SectionRecord& record : table) {
    hash = (hash ^ record.hash) * kFnvPrime;
  }
  return hash;
}

/// Hash of header + section table with header_hash itself zeroed.
[[nodiscard]] std::uint64_t header_table_hash(
    Header header, std::span<const SectionRecord> table) {
  header.header_hash = 0;
  Hasher hasher;
  hasher.update(&header, sizeof(header));
  hasher.update(table.data(), table.size_bytes());
  return hasher.finish();
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

[[nodiscard]] std::size_t align_up(std::size_t offset) {
  return (offset + kAlign - 1) & ~(kAlign - 1);
}

/// Process-wide registry of file identities whose section contents have
/// already been hash-verified; an unchanged (path, size, mtime) pair is
/// trusted on re-open (the expensive part of open() is re-reading a
/// multi-hundred-MB image at memory bandwidth just to re-hash it).
class VerifiedIdentities {
 public:
  [[nodiscard]] bool contains(const std::string& key) {
    std::lock_guard lock(mutex_);
    return keys_.contains(key);
  }
  void insert(const std::string& key) {
    std::lock_guard lock(mutex_);
    keys_.insert(key);
  }

 private:
  std::mutex mutex_;
  std::unordered_set<std::string> keys_;
};

VerifiedIdentities& verified_identities() {
  static VerifiedIdentities instance;
  return instance;
}

[[nodiscard]] std::string identity_key(const std::string& path) {
#if defined(UAP2P_SNAPSHOT_MMAP)
  struct stat info;
  if (::stat(path.c_str(), &info) == 0) {
    return path + "|" + std::to_string(info.st_size) + "|" +
           std::to_string(info.st_mtim.tv_sec) + "." +
           std::to_string(info.st_mtim.tv_nsec);
  }
#endif
  return {};  // unknown identity: never remembered as verified
}

struct SectionSpec {
  SectionId id;
  const void* data;
  std::size_t size;
};

}  // namespace

const char* to_string(SectionId id) {
  switch (id) {
    case SectionId::kCsrOffsets: return "csr-offsets";
    case SectionId::kCsrHeads: return "csr-heads";
    case SectionId::kCsrWeights: return "csr-weights";
    case SectionId::kCsrLinks: return "csr-links";
    case SectionId::kCsrBandwidths: return "csr-bandwidths";
    case SectionId::kCsrTypes: return "csr-types";
    case SectionId::kCsrRouterAs: return "csr-router-as";
    case SectionId::kDestRows: return "dest-rows";
    case SectionId::kAsPathPairs: return "as-path-pairs";
    case SectionId::kLandmarkIds: return "landmark-ids";
    case SectionId::kLandmarkDists: return "landmark-dists";
    case SectionId::kCoreOrder: return "core-order";
  }
  return "?";
}

std::uint64_t content_hash(const void* data, std::size_t size) {
  Hasher hasher;
  hasher.update(data, size);
  return hasher.finish();
}

bool write(const AsTopology& topology, const RoutingTable& table,
           const std::string& path, std::string* error) {
  const std::size_t n = topology.router_count();
  if (table.cached_sources() != n) {
    set_error(error, "routing table is not fully warmed (" +
                         std::to_string(table.cached_sources()) + "/" +
                         std::to_string(n) + " sources)");
    return false;
  }
  const AsTopology::RouterCsr& csr = topology.csr();
  const std::vector<std::uint64_t> pairs = table.materialized_pair_keys();

  std::vector<SectionSpec> specs = {
      {SectionId::kCsrOffsets, csr.offsets.data(),
       csr.offsets.size() * sizeof(std::uint32_t)},
      {SectionId::kCsrHeads, csr.heads.data(),
       csr.heads.size() * sizeof(std::uint32_t)},
      {SectionId::kCsrWeights, csr.weights.data(),
       csr.weights.size() * sizeof(double)},
      {SectionId::kCsrLinks, csr.links.data(),
       csr.links.size() * sizeof(std::uint32_t)},
      {SectionId::kCsrBandwidths, csr.bandwidths.data(),
       csr.bandwidths.size() * sizeof(double)},
      {SectionId::kCsrTypes, csr.types.data(),
       csr.types.size() * sizeof(std::uint8_t)},
      {SectionId::kCsrRouterAs, csr.router_as.data(),
       csr.router_as.size() * sizeof(std::uint32_t)},
      {SectionId::kDestRows, nullptr, n * n * sizeof(RoutingTable::DestEntry)},
      {SectionId::kAsPathPairs, pairs.data(),
       pairs.size() * sizeof(std::uint64_t)},
  };
  // v2 optional sections: only emitted when the table was warmed through
  // the hierarchical path. A flat-warmed table writes a file whose section
  // set matches v1 exactly (apart from the header version).
  const std::shared_ptr<const AltLandmarks> landmarks = table.landmarks();
  if (landmarks != nullptr && landmarks->count() > 0) {
    specs.push_back({SectionId::kLandmarkIds, landmarks->ids().data(),
                     landmarks->ids().size() * sizeof(std::uint32_t)});
    specs.push_back({SectionId::kLandmarkDists, landmarks->dists().data(),
                     landmarks->dists().size() * sizeof(double)});
  }
  const std::shared_ptr<const HierarchyPlan> plan = table.hierarchy();
  if (plan != nullptr && !plan->core_order().empty()) {
    specs.push_back({SectionId::kCoreOrder, plan->core_order().data(),
                     plan->core_order().size() * sizeof(std::uint32_t)});
  }
  const std::size_t kSectionCount = specs.size();

  // Lay the sections out and hash them (rows are hashed per source row so
  // the O(N²) image never needs a contiguous staging copy).
  std::vector<SectionRecord> records(kSectionCount);
  std::size_t offset =
      align_up(sizeof(Header) + kSectionCount * sizeof(SectionRecord));
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    records[i].id = static_cast<std::uint32_t>(specs[i].id);
    records[i].offset = offset;
    records[i].size = specs[i].size;
    if (specs[i].id == SectionId::kDestRows) {
      Hasher hasher;
      for (std::size_t src = 0; src < n; ++src) {
        const auto row = table.row(RouterId(static_cast<std::uint32_t>(src)));
        hasher.update(row.data(), row.size_bytes());
      }
      records[i].hash = hasher.finish();
    } else {
      records[i].hash = content_hash(specs[i].data, specs[i].size);
    }
    offset = align_up(offset + specs[i].size);
  }

  Header header;
  header.section_count = kSectionCount;
  header.router_count = n;
  header.edge_count = csr.heads.size();
  header.pair_count = pairs.size();
  header.max_weight = csr.max_weight;
  header.content_hash = fold_section_hashes(records);
  header.header_hash = header_table_hash(header, records);

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    set_error(error, "cannot open " + tmp + " for writing");
    return false;
  }
  const std::byte padding[kAlign] = {};
  std::size_t written = 0;
  auto emit = [&](const void* data, std::size_t size) {
    written += size;
    return size == 0 || std::fwrite(data, 1, size, file) == size;
  };
  auto pad_to = [&](std::size_t target) {
    return emit(padding, target - written);
  };
  bool ok = emit(&header, sizeof(header)) &&
            emit(records.data(), records.size() * sizeof(SectionRecord));
  for (std::size_t i = 0; ok && i < kSectionCount; ++i) {
    ok = pad_to(records[i].offset);
    if (!ok) break;
    if (specs[i].id == SectionId::kDestRows) {
      for (std::size_t src = 0; ok && src < n; ++src) {
        const auto row = table.row(RouterId(static_cast<std::uint32_t>(src)));
        ok = emit(row.data(), row.size_bytes());
      }
    } else {
      ok = emit(specs[i].data, specs[i].size);
    }
  }
  ok = ok && std::fflush(file) == 0;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    set_error(error, "short write to " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "cannot rename " + tmp + " to " + path);
    std::remove(tmp.c_str());
    return false;
  }
  // The freshly written identity is verified by construction.
  if (const std::string key = identity_key(path); !key.empty()) {
    verified_identities().insert(key);
  }
  return true;
}

// --- MappedSnapshot ------------------------------------------------------

MappedSnapshot::~MappedSnapshot() {
#if defined(UAP2P_SNAPSHOT_MMAP)
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

const Header& MappedSnapshot::header() const {
  return *reinterpret_cast<const Header*>(data_);
}

std::span<const SectionRecord> MappedSnapshot::sections() const {
  return {reinterpret_cast<const SectionRecord*>(data_ + sizeof(Header)),
          header().section_count};
}

std::span<const std::byte> MappedSnapshot::section(SectionId id) const {
  for (const SectionRecord& record : sections()) {
    if (record.id == static_cast<std::uint32_t>(id)) {
      return {data_ + record.offset, record.size};
    }
  }
  return {};
}

template <typename T>
std::span<const T> MappedSnapshot::typed(SectionId id) const {
  const std::span<const std::byte> raw = section(id);
  return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
}

std::span<const std::uint32_t> MappedSnapshot::csr_offsets() const {
  return typed<std::uint32_t>(SectionId::kCsrOffsets);
}
std::span<const std::uint32_t> MappedSnapshot::csr_heads() const {
  return typed<std::uint32_t>(SectionId::kCsrHeads);
}
std::span<const double> MappedSnapshot::csr_weights() const {
  return typed<double>(SectionId::kCsrWeights);
}
std::span<const std::uint32_t> MappedSnapshot::csr_links() const {
  return typed<std::uint32_t>(SectionId::kCsrLinks);
}
std::span<const double> MappedSnapshot::csr_bandwidths() const {
  return typed<double>(SectionId::kCsrBandwidths);
}
std::span<const std::uint8_t> MappedSnapshot::csr_types() const {
  return typed<std::uint8_t>(SectionId::kCsrTypes);
}
std::span<const std::uint32_t> MappedSnapshot::csr_router_as() const {
  return typed<std::uint32_t>(SectionId::kCsrRouterAs);
}
std::span<const RoutingTable::DestEntry> MappedSnapshot::dest_rows() const {
  return typed<RoutingTable::DestEntry>(SectionId::kDestRows);
}
std::span<const std::uint64_t> MappedSnapshot::as_path_pairs() const {
  return typed<std::uint64_t>(SectionId::kAsPathPairs);
}
std::span<const std::uint32_t> MappedSnapshot::landmark_ids() const {
  return typed<std::uint32_t>(SectionId::kLandmarkIds);
}
std::span<const double> MappedSnapshot::landmark_dists() const {
  return typed<double>(SectionId::kLandmarkDists);
}
std::span<const std::uint32_t> MappedSnapshot::core_order() const {
  return typed<std::uint32_t>(SectionId::kCoreOrder);
}

std::unique_ptr<MappedSnapshot> MappedSnapshot::open(const std::string& path,
                                                     std::string* error,
                                                     Verify verify) {
  // Capture the identity before reading, so a file replaced mid-open can
  // at worst fail verification, never be wrongly remembered as clean.
  const std::string identity = identity_key(path);

  std::unique_ptr<MappedSnapshot> snap(new MappedSnapshot);
#if defined(UAP2P_SNAPSHOT_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    set_error(error, "cannot open " + path);
    return nullptr;
  }
  struct stat info;
  if (::fstat(fd, &info) != 0 || info.st_size < 0) {
    ::close(fd);
    set_error(error, "cannot stat " + path);
    return nullptr;
  }
  snap->size_ = static_cast<std::size_t>(info.st_size);
  if (snap->size_ > 0) {
    void* mapping =
        ::mmap(nullptr, snap->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      snap->data_ = static_cast<const std::byte*>(mapping);
      snap->mmapped_ = true;
    }
  }
  if (!snap->mmapped_) {
    auto* buffer = new std::byte[snap->size_];
    std::size_t done = 0;
    while (done < snap->size_) {
      const ::ssize_t got =
          ::pread(fd, buffer + done, snap->size_ - done, ::off_t(done));
      if (got <= 0) break;
      done += static_cast<std::size_t>(got);
    }
    snap->data_ = buffer;
    if (done != snap->size_) {
      ::close(fd);
      set_error(error, "short read from " + path);
      return nullptr;
    }
  }
  ::close(fd);
#else
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    set_error(error, "cannot open " + path);
    return nullptr;
  }
  std::fseek(file, 0, SEEK_END);
  snap->size_ = static_cast<std::size_t>(std::ftell(file));
  std::fseek(file, 0, SEEK_SET);
  auto* buffer = new std::byte[snap->size_];
  const bool read_ok =
      std::fread(buffer, 1, snap->size_, file) == snap->size_;
  std::fclose(file);
  snap->data_ = buffer;
  if (!read_ok) {
    set_error(error, "short read from " + path);
    return nullptr;
  }
#endif

  // Structural validation: every check below guards the one after it.
  if (snap->size_ < sizeof(Header)) {
    set_error(error, path + ": truncated (no header)");
    return nullptr;
  }
  const Header& header = snap->header();
  if (header.magic != kMagic) {
    set_error(error, path + ": bad magic (not a uap2p snapshot)");
    return nullptr;
  }
  if (header.version > kFormatVersion || header.version < kMinFormatVersion) {
    set_error(error, path + ": format version " +
                         std::to_string(header.version) + ", supported " +
                         std::to_string(kMinFormatVersion) + ".." +
                         std::to_string(kFormatVersion));
    return nullptr;
  }
  if (header.section_count == 0 || header.section_count > kMaxSections ||
      snap->size_ <
          sizeof(Header) + header.section_count * sizeof(SectionRecord)) {
    set_error(error, path + ": truncated section table");
    return nullptr;
  }
  const std::span<const SectionRecord> table = snap->sections();
  if (header.header_hash != header_table_hash(header, table)) {
    set_error(error, path + ": header checksum mismatch");
    return nullptr;
  }
  if (header.content_hash != fold_section_hashes(table)) {
    set_error(error, path + ": content checksum fold mismatch");
    return nullptr;
  }
  for (const SectionRecord& record : table) {
    if (record.offset % kAlign != 0 || record.offset > snap->size_ ||
        record.size > snap->size_ - record.offset) {
      set_error(error, path + ": section " +
                           to_string(static_cast<SectionId>(record.id)) +
                           " out of bounds (truncated?)");
      return nullptr;
    }
  }

  // Content verification (the memory-bandwidth-bound part; see the header
  // comment for the once-per-identity policy).
  const bool need_content_hash =
      verify == Verify::kAlways || identity.empty() ||
      !verified_identities().contains(identity);
  if (need_content_hash) {
    for (const SectionRecord& record : table) {
      if (content_hash(snap->data_ + record.offset, record.size) !=
          record.hash) {
        set_error(error, path + ": checksum mismatch in section " +
                             to_string(static_cast<SectionId>(record.id)));
        return nullptr;
      }
    }
    if (!identity.empty()) verified_identities().insert(identity);
  }
  return snap;
}

// --- attach / load -------------------------------------------------------

namespace {

template <typename T>
[[nodiscard]] bool same_bytes(std::span<const T> stored,
                              const std::vector<T>& live) {
  return stored.size() == live.size() &&
         (stored.empty() ||
          std::memcmp(stored.data(), live.data(), stored.size_bytes()) == 0);
}

}  // namespace

bool attach(const MappedSnapshot& snap, const AsTopology& topology,
            RoutingTable& table, std::string* error) {
  const Header& header = snap.header();
  const std::size_t n = topology.router_count();
  const AsTopology::RouterCsr& csr = topology.csr();
  if (header.router_count != n || header.edge_count != csr.heads.size()) {
    set_error(error, "snapshot is for a different topology (" +
                         std::to_string(header.router_count) + " routers / " +
                         std::to_string(header.edge_count) + " edges, live " +
                         std::to_string(n) + " / " +
                         std::to_string(csr.heads.size()) + ")");
    return false;
  }
  // Byte-compare the whole stored CSR against the live topology's: this
  // is what keys a snapshot file to one exact (generator, params, seed) —
  // any other topology differs somewhere in these sections.
  const bool csr_matches =
      same_bytes(snap.csr_offsets(), csr.offsets) &&
      same_bytes(snap.csr_heads(), csr.heads) &&
      same_bytes(snap.csr_weights(), csr.weights) &&
      same_bytes(snap.csr_links(), csr.links) &&
      same_bytes(snap.csr_bandwidths(), csr.bandwidths) &&
      same_bytes(snap.csr_types(), csr.types) &&
      same_bytes(snap.csr_router_as(), csr.router_as) &&
      header.max_weight == csr.max_weight;
  if (!csr_matches) {
    set_error(error, "snapshot CSR does not byte-match the live topology "
                     "(different generator parameters or seed?)");
    return false;
  }
  const auto rows = snap.dest_rows();
  if (rows.size() != n * n) {
    set_error(error, "snapshot row image has " + std::to_string(rows.size()) +
                         " entries, expected " + std::to_string(n * n));
    return false;
  }
  const auto pairs = snap.as_path_pairs();
  for (const std::uint64_t key : pairs) {
    if ((key >> 32) >= n || (key & 0xFFFFFFFFull) >= n) {
      set_error(error, "snapshot as-path pair key out of range");
      return false;
    }
  }
  // v2 optional sections. A v1 file simply has none; a v2 file that
  // carries them must be internally consistent with the router count, or
  // it is corrupt (our writer cannot produce such a file).
  const auto lm_ids = snap.landmark_ids();
  const auto lm_dists = snap.landmark_dists();
  if (lm_ids.empty() != lm_dists.empty() ||
      lm_dists.size() != lm_ids.size() * n) {
    set_error(error, "snapshot landmark sections are inconsistent (" +
                         std::to_string(lm_ids.size()) + " ids, " +
                         std::to_string(lm_dists.size()) + " distances)");
    return false;
  }
  for (const std::uint32_t id : lm_ids) {
    if (id >= n) {
      set_error(error, "snapshot landmark id " + std::to_string(id) +
                           " out of range");
      return false;
    }
  }
  const auto core = snap.core_order();
  for (std::size_t i = 0; i < core.size(); ++i) {
    if (core[i] >= n || (i > 0 && core[i] <= core[i - 1])) {
      set_error(error, "snapshot core order is not ascending in [0, n)");
      return false;
    }
  }
  table.adopt_rows(rows);
  // Stored keys are sorted by (src, dst), so the rebuilt intern table is
  // deterministic regardless of the query order that built the snapshot.
  table.materialize_pairs(pairs);
  if (!lm_ids.empty()) {
    table.adopt_landmarks(AltLandmarks::adopt(lm_ids, lm_dists, n));
  }
  return true;
}

std::optional<Info> inspect(const std::string& path, std::string* error) {
  const std::unique_ptr<MappedSnapshot> snap =
      MappedSnapshot::open(path, error, MappedSnapshot::Verify::kAlways);
  if (snap == nullptr) return std::nullopt;
  Info info;
  info.header = snap->header();
  info.checksums_ok = true;  // open(kAlways) re-hashed every section
  for (const SectionRecord& record : snap->sections()) {
    info.sections.push_back(SectionInfo{record, true});
  }
  return info;
}

}  // namespace uap2p::underlay::snapshot

namespace uap2p::underlay {

SharedRouting::~SharedRouting() = default;

std::shared_ptr<const SharedRouting> SharedRouting::load(
    AsTopology topology, const std::string& snapshot_path, std::size_t threads,
    std::string* error) {
  std::unique_ptr<snapshot::MappedSnapshot> mapped =
      snapshot::MappedSnapshot::open(snapshot_path, error);
  if (mapped == nullptr) return nullptr;
  std::shared_ptr<SharedRouting> shared(new SharedRouting(std::move(topology)));
  if (!snapshot::attach(*mapped, shared->topology_, shared->table_, error)) {
    return nullptr;
  }
  shared->mapped_ = std::move(mapped);
  shared->topology_.warm_as_hops(threads);
  // attach() adopts persisted landmark tables (v2 files); a v1 snapshot
  // carries none, so rebuild them here — K Dijkstras, noise next to the
  // row image the snapshot just saved us — so load and build hand the
  // oracle tier tables in the same state either way.
  if (shared->table_.landmarks() == nullptr) {
    shared->table_.ensure_landmarks();
  }
  return shared;
}

}  // namespace uap2p::underlay
