#include "underlay/mobility.hpp"

namespace uap2p::underlay {

MobilityProcess::MobilityProcess(sim::Engine& engine, Network& network,
                                 MobilityConfig config)
    : engine_(engine), network_(network), config_(config), rng_(config.seed) {}

void MobilityProcess::add_peer(PeerId peer) {
  if (pending_.size() <= peer.value()) pending_.resize(peer.value() + 1);
  schedule_next(peer);
}

void MobilityProcess::schedule_next(PeerId peer) {
  if (stopped_) return;
  sim::OriginScope origin(engine_, obs::origin::kMobility);
  const sim::SimTime pause = rng_.exponential(config_.mean_pause_ms);
  pending_[peer.value()] = engine_.schedule(pause, [this, peer] {
    if (stopped_) return;
    const GeoPoint from = network_.host(peer).location;
    const GeoPoint to{
        rng_.uniform_real(config_.lat_lo, config_.lat_hi),
        rng_.uniform_real(config_.lon_lo, config_.lon_hi)};
    const double km = haversine_km(from, to);
    const sim::SimTime travel = sim::hours(km / config_.speed_kmh);
    pending_[peer.value()] = engine_.schedule(travel, [this, peer, to] {
      if (stopped_) return;
      network_.move_host(peer, to);
      ++moves_;
      if (on_move_) on_move_(peer);
      schedule_next(peer);
    });
  });
}

void MobilityProcess::stop() {
  stopped_ = true;
  for (auto& handle : pending_) handle.cancel();
}

}  // namespace uap2p::underlay
