#include "underlay/geo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numbers>

namespace uap2p::underlay {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kDeg2Rad = kPi / 180.0;
constexpr double kEarthRadiusKm = 6371.0;

// WGS84 ellipsoid.
constexpr double kA = 6378137.0;             // semi-major axis, metres
constexpr double kF = 1.0 / 298.257223563;   // flattening
constexpr double kK0 = 0.9996;               // UTM scale on central meridian
constexpr double kFalseEasting = 500000.0;   // metres
constexpr double kFalseNorthing = 10000000.0;  // metres (southern hemisphere)

// Third flattening and Krüger alpha/beta series coefficients (order 6),
// precomputed for WGS84. See Karney, "Transverse Mercator with an accuracy
// of a few nanometers" (2011), Eq. 35/36 truncations.
constexpr double kN = kF / (2.0 - kF);
const double kN2 = kN * kN, kN3 = kN2 * kN, kN4 = kN3 * kN, kN5 = kN4 * kN,
             kN6 = kN5 * kN;
const double kAHat =
    kA / (1.0 + kN) * (1.0 + kN2 / 4.0 + kN4 / 64.0 + kN6 / 256.0);

const double kAlpha[6] = {
    kN / 2.0 - 2.0 / 3.0 * kN2 + 5.0 / 16.0 * kN3 + 41.0 / 180.0 * kN4 -
        127.0 / 288.0 * kN5 + 7891.0 / 37800.0 * kN6,
    13.0 / 48.0 * kN2 - 3.0 / 5.0 * kN3 + 557.0 / 1440.0 * kN4 +
        281.0 / 630.0 * kN5 - 1983433.0 / 1935360.0 * kN6,
    61.0 / 240.0 * kN3 - 103.0 / 140.0 * kN4 + 15061.0 / 26880.0 * kN5 +
        167603.0 / 181440.0 * kN6,
    49561.0 / 161280.0 * kN4 - 179.0 / 168.0 * kN5 +
        6601661.0 / 7257600.0 * kN6,
    34729.0 / 80640.0 * kN5 - 3418889.0 / 1995840.0 * kN6,
    212378941.0 / 319334400.0 * kN6};

const double kBeta[6] = {
    kN / 2.0 - 2.0 / 3.0 * kN2 + 37.0 / 96.0 * kN3 - 1.0 / 360.0 * kN4 -
        81.0 / 512.0 * kN5 + 96199.0 / 604800.0 * kN6,
    1.0 / 48.0 * kN2 + 1.0 / 15.0 * kN3 - 437.0 / 1440.0 * kN4 +
        46.0 / 105.0 * kN5 - 1118711.0 / 3870720.0 * kN6,
    17.0 / 480.0 * kN3 - 37.0 / 840.0 * kN4 - 209.0 / 4480.0 * kN5 +
        5569.0 / 90720.0 * kN6,
    4397.0 / 161280.0 * kN4 - 11.0 / 504.0 * kN5 - 830251.0 / 7257600.0 * kN6,
    4583.0 / 161280.0 * kN5 - 108847.0 / 3991680.0 * kN6,
    20648693.0 / 638668800.0 * kN6};

const double kE2 = kF * (2.0 - kF);           // first eccentricity squared
const double kE = std::sqrt(kE2);

int utm_zone_for(double lon_deg) {
  // Normalize to [-180, 180) then map to zones 1..60.
  double lon = std::fmod(lon_deg + 180.0, 360.0);
  if (lon < 0) lon += 360.0;
  int zone = static_cast<int>(lon / 6.0) + 1;
  return std::clamp(zone, 1, 60);
}

double zone_central_meridian_deg(int zone) { return (zone - 1) * 6.0 - 177.0; }

}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDeg2Rad, lat2 = b.lat_deg * kDeg2Rad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDeg2Rad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDeg2Rad;
  const double s = std::sin(dlat / 2.0), t = std::sin(dlon / 2.0);
  const double h = s * s + std::cos(lat1) * std::cos(lat2) * t * t;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_delay_ms(double distance_km, double path_stretch) {
  constexpr double kFibreKmPerMs = 299792.458 / 1.468 / 1000.0;  // ≈ 204.2
  return distance_km * path_stretch / kFibreKmPerMs;
}

std::string UtmCoordinate::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%d%c %07.0fE %07.0fN", zone,
                northern ? 'N' : 'S', easting_m, northing_m);
  return buf;
}

UtmCoordinate to_utm(const GeoPoint& point) {
  const double lat = std::clamp(point.lat_deg, -80.0, 84.0) * kDeg2Rad;
  const int zone = utm_zone_for(point.lon_deg);
  const double lon0 = zone_central_meridian_deg(zone) * kDeg2Rad;
  double lon = point.lon_deg * kDeg2Rad - lon0;
  // Wrap the longitude difference into [-pi, pi).
  lon = std::remainder(lon, 2.0 * kPi);

  // Conformal latitude.
  const double sin_lat = std::sin(lat);
  const double t = std::sinh(std::atanh(sin_lat) - kE * std::atanh(kE * sin_lat));
  const double xi_prime = std::atan2(t, std::cos(lon));
  const double eta_prime = std::asinh(std::sin(lon) / std::hypot(t, std::cos(lon)));

  double xi = xi_prime, eta = eta_prime;
  for (int j = 0; j < 6; ++j) {
    const double arg = 2.0 * (j + 1);
    xi += kAlpha[j] * std::sin(arg * xi_prime) * std::cosh(arg * eta_prime);
    eta += kAlpha[j] * std::cos(arg * xi_prime) * std::sinh(arg * eta_prime);
  }

  UtmCoordinate utm;
  utm.zone = zone;
  utm.northern = point.lat_deg >= 0.0;
  utm.easting_m = kFalseEasting + kK0 * kAHat * eta;
  utm.northing_m = kK0 * kAHat * xi + (utm.northern ? 0.0 : kFalseNorthing);
  return utm;
}

GeoPoint from_utm(const UtmCoordinate& utm) {
  const double x = utm.easting_m - kFalseEasting;
  const double y = utm.northing_m - (utm.northern ? 0.0 : kFalseNorthing);
  const double xi = y / (kK0 * kAHat);
  const double eta = x / (kK0 * kAHat);

  double xi_prime = xi, eta_prime = eta;
  for (int j = 0; j < 6; ++j) {
    const double arg = 2.0 * (j + 1);
    xi_prime -= kBeta[j] * std::sin(arg * xi) * std::cosh(arg * eta);
    eta_prime -= kBeta[j] * std::cos(arg * xi) * std::sinh(arg * eta);
  }

  const double chi = std::asin(std::sin(xi_prime) / std::cosh(eta_prime));
  // Newton-iterate latitude from conformal latitude.
  double lat = chi;
  for (int i = 0; i < 6; ++i) {
    const double sin_lat = std::sin(lat);
    const double target =
        std::atanh(std::sin(chi)) + kE * std::atanh(kE * sin_lat);
    // Solve atanh(sin(lat)) = target.
    lat = std::asin(std::tanh(target));
  }
  const double lon = std::atan2(std::sinh(eta_prime), std::cos(xi_prime));

  GeoPoint out;
  out.lat_deg = lat / kDeg2Rad;
  out.lon_deg = lon / kDeg2Rad + zone_central_meridian_deg(utm.zone);
  if (out.lon_deg >= 180.0) out.lon_deg -= 360.0;
  if (out.lon_deg < -180.0) out.lon_deg += 360.0;
  return out;
}

double utm_distance_m(const UtmCoordinate& a, const UtmCoordinate& b) {
  assert(a.zone == b.zone && a.northern == b.northern);
  return std::hypot(a.easting_m - b.easting_m, a.northing_m - b.northing_m);
}

}  // namespace uap2p::underlay
