// Per-(src-AS, dst-AS) traffic attribution (paper §2.1, Figure 2).
//
// The scalar TrafficAccountant answers "how much did this run bill";
// the matrix answers "*which AS pairs* carried it and *when*": bytes,
// messages and billed transit-link bytes per ordered AS pair, split by
// locality class, plus a per-source-AS transit byte series sampled at the
// 5-minute billing window. The 95th percentile over that series is the
// *measured* per-AS billed rate — the live counterpart to Figure 2's
// closed-form crossover, rendered by tools/uap2p_dash.
//
// Memory is O(active AS pairs) for the cells (a pair that never
// exchanged a message costs no cell) plus O(AS count x elapsed windows)
// doubles for the window series. The *index* over pairs is dense — a
// flat as_count^2 array of 32-bit cell slots — for topologies up to
// kDenseAsLimit ASes (<= 256 KiB), turning the per-message pair lookup
// into one multiply-add; larger topologies fall back to a FlatMap over
// packed pair keys. The matrix is opt-in: a disabled matrix costs one
// predicted branch per recorded message in TrafficAccountant::record.
//
// Determinism: cells accumulate commutatively (sums of integer byte
// counts), the window series add element-wise, and exports sort by
// (src, dst) — so per-shard lane matrices merged in lane order export
// byte-identically to the serial run (enforced by the sharded-identity
// gates together with the rest of the metrics snapshot).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "underlay/routing.hpp"

namespace uap2p::underlay {

struct Pricing;

class TrafficMatrix {
 public:
  /// One ordered (src AS, dst AS) cell. Byte counts stay integral so
  /// lane merges are exact.
  struct PairCell {
    std::uint32_t src_as = 0;
    std::uint32_t dst_as = 0;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
    std::uint64_t transit_link_bytes = 0;
    std::uint64_t peering_link_bytes = 0;
  };

  TrafficMatrix() = default;

  /// Arms the matrix for `as_count` ASes with billing windows of
  /// `window_ms`. Until enabled, record() is a no-op.
  void enable(std::uint32_t as_count, sim::SimTime window_ms);
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint32_t as_count() const { return as_count_; }
  [[nodiscard]] sim::SimTime window_ms() const { return window_ms_; }

  /// Records one message of `bytes` bytes from `src_as` to `dst_as` along
  /// `path` at sim time `now`. Transit-link bytes are attributed to the
  /// *source* AS's billing series (the AS whose provider invoices grow).
  /// Inline: this sits on the per-message send path of the flood benches,
  /// whose acceptance keeps the armed matrix within 5% of obs-off.
  void record(std::uint32_t src_as, std::uint32_t dst_as,
              const PathInfo& path, std::uint64_t bytes, sim::SimTime now) {
    assert(enabled_ && src_as < as_count_ && dst_as < as_count_);
    PairCell& cell = cell_for(src_as, dst_as);
    cell.bytes += bytes;
    ++cell.messages;
    const std::uint64_t transit = bytes * path.transit_crossings;
    cell.transit_link_bytes += transit;
    cell.peering_link_bytes += bytes * path.peering_crossings;
    if (transit > 0) {
      std::vector<double>& series = as_window_transit_bytes_[src_as];
      const auto window = static_cast<std::size_t>(now / window_ms_);
      if (series.size() <= window) [[unlikely]]
        series.resize(window + 1, 0.0);
      series[window] += static_cast<double>(transit);
    }
  }

  /// Pre-sizes pair cells and every AS's window series so steady-state
  /// record() calls stay allocation-free through `horizon`.
  void reserve(std::size_t expected_pairs, sim::SimTime horizon);
  void reserve_windows(sim::SimTime horizon);

  /// Element-wise merge (cells by pair key, series by window index).
  void merge_from(const TrafficMatrix& other);
  void reset();

  [[nodiscard]] std::size_t pair_count() const { return cells_.size(); }
  /// nullptr when the pair never exchanged a message.
  [[nodiscard]] const PairCell* cell(std::uint32_t src_as,
                                     std::uint32_t dst_as) const;
  /// Cells sorted by (src_as, dst_as) — the export order.
  [[nodiscard]] std::vector<PairCell> sorted_cells() const;

  /// Measured billed rate for one AS: the pricing's percentile over its
  /// per-window transit rates (Mbps). 0 when the AS never crossed transit.
  [[nodiscard]] double billed_transit_mbps(std::uint32_t src_as,
                                           const Pricing& pricing) const;

  /// Exports pair cells ("traffic.pair.<s>.<d>.*" counters, sorted) and,
  /// for every AS with transit traffic, the billed-rate gauges and the
  /// "traffic.as.<n>.transit_bytes" time series (idempotent set).
  void export_metrics(obs::MetricsRegistry& registry,
                      const Pricing& pricing) const;

 private:
  static std::uint64_t pair_key(std::uint32_t s, std::uint32_t d) {
    return (static_cast<std::uint64_t>(s) << 32) | d;
  }

  /// Above this AS count the dense slot index would outgrow 256 KiB, so
  /// enable() keeps the FlatMap path instead.
  static constexpr std::uint32_t kDenseAsLimit = 256;
  static constexpr std::uint32_t kNoCell = 0xffffffffu;

  /// The pair's cell, creating it on first traffic. Hot path: one
  /// multiply-add into the dense slot table for small topologies.
  PairCell& cell_for(std::uint32_t src_as, std::uint32_t dst_as) {
    if (!dense_slots_.empty()) {
      std::uint32_t& slot =
          dense_slots_[std::size_t(src_as) * as_count_ + dst_as];
      if (slot == kNoCell) [[unlikely]] {
        slot = static_cast<std::uint32_t>(cells_.size());
        cells_.push_back(PairCell{src_as, dst_as, 0, 0, 0, 0});
      }
      return cells_[slot];
    }
    auto [slot, inserted] = pair_index_.try_emplace(pair_key(src_as, dst_as));
    if (inserted) {
      *slot = static_cast<std::uint32_t>(cells_.size());
      cells_.push_back(PairCell{src_as, dst_as, 0, 0, 0, 0});
    }
    return cells_[*slot];
  }

  bool enabled_ = false;
  std::uint32_t as_count_ = 0;
  sim::SimTime window_ms_ = sim::minutes(5);
  /// as_count^2 slot table (kNoCell = untouched pair) when
  /// as_count <= kDenseAsLimit; empty otherwise.
  std::vector<std::uint32_t> dense_slots_;
  FlatMap<std::uint64_t, std::uint32_t> pair_index_;  // key -> cells_ index
  std::vector<PairCell> cells_;
  /// Transit-link bytes per billing window, per source AS (indexed by AS).
  std::vector<std::vector<double>> as_window_transit_bytes_;
};

}  // namespace uap2p::underlay
