// Persistent warmed-routing snapshots (DESIGN.md "Snapshot format").
//
// A snapshot serializes an AsTopology's RouterCsr plus every warmed
// per-source DestEntry row (and the sorted keys of any materialized
// as-paths) into one fixed-width-record file: a 64-byte header, a section
// table, then 64-byte-aligned little-endian POD sections, each carrying
// its own 64-bit content hash. Loading mmaps the file and adopts the row
// image in place — zero Dijkstra, zero copies of the O(N²) rows — after
// byte-comparing the stored CSR against the live topology's, which pins
// the file to one exact (generator, params, seed).
//
// Verification policy: header + section table + bounds are checked on
// every open. Section *content* hashes cover every payload byte, but
// re-hashing a multi-hundred-MB row image runs at memory bandwidth
// (~40 ms for 3000 routers on a 9 GB/s core — slower than the whole rest
// of the load path), so open() verifies content once per file identity
// (path, size, mtime) per process and skips the re-hash for later opens
// of the unchanged file; any rewrite changes the identity and forces a
// fresh verify. Verify::kAlways (the CLI `verify`/`info` path and the
// corruption tests) re-hashes unconditionally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "underlay/routing.hpp"
#include "underlay/topology.hpp"

namespace uap2p::underlay::snapshot {

/// "UAP2PSNP" little-endian.
inline constexpr std::uint64_t kMagic = 0x504e535032504155ull;
/// Bump on any layout change; loaders reject *newer* versions (no
/// migration — a snapshot is a cache, the fallback is a fresh warm) but
/// keep accepting every older version whose sections are a subset of the
/// current layout. v2 added the optional hierarchical-preprocessing
/// sections (landmark tables + contraction order); v1 files still load,
/// they just carry no landmarks to adopt.
inline constexpr std::uint32_t kFormatVersion = 2;
/// Oldest version open() accepts.
inline constexpr std::uint32_t kMinFormatVersion = 1;

enum class SectionId : std::uint32_t {
  kCsrOffsets = 1,    ///< u32[router_count + 1]
  kCsrHeads = 2,      ///< u32[edge_count]
  kCsrWeights = 3,    ///< f64[edge_count]
  kCsrLinks = 4,      ///< u32[edge_count]
  kCsrBandwidths = 5, ///< f64[edge_count]
  kCsrTypes = 6,      ///< u8[edge_count]
  kCsrRouterAs = 7,   ///< u32[router_count]
  kDestRows = 8,      ///< DestEntry[router_count²], source-major
  kAsPathPairs = 9,   ///< u64[pair_count], sorted (src << 32 | dst)
  // v2 optional sections (hierarchical preprocessing, DESIGN.md
  // "Hierarchical routing"):
  kLandmarkIds = 10,   ///< u32[landmark_count]: ALT landmark router ids
  kLandmarkDists = 11, ///< f64[landmark_count * router_count], row-major
  kCoreOrder = 12,     ///< u32[core_count]: non-contracted routers, ascending
};

[[nodiscard]] const char* to_string(SectionId id);

/// 64-byte file header; every field little-endian.
struct Header {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t section_count = 0;
  std::uint64_t router_count = 0;
  std::uint64_t edge_count = 0;  ///< Directed CSR edge entries.
  std::uint64_t pair_count = 0;  ///< Materialized as-path pair keys.
  double max_weight = 0.0;       ///< RouterCsr::max_weight.
  std::uint64_t content_hash = 0;  ///< Fold of the per-section hashes.
  std::uint64_t header_hash = 0;   ///< Hash of header + section table,
                                   ///< computed with this field zeroed.
};
static_assert(sizeof(Header) == 64, "fixed 64-byte header");

/// One section-table record (32 bytes).
struct SectionRecord {
  std::uint32_t id = 0;        ///< SectionId.
  std::uint32_t reserved = 0;  ///< Zero; room for per-section flags.
  std::uint64_t offset = 0;    ///< Absolute file offset, 64-byte aligned.
  std::uint64_t size = 0;      ///< Payload bytes (padding excluded).
  std::uint64_t hash = 0;      ///< content_hash() of the payload.
};
static_assert(sizeof(SectionRecord) == 32, "fixed 32-byte record");

/// 8-lane word-striped FNV-1a variant: same avalanche shape as FNV but
/// with eight independent multiply chains, so it runs at memory bandwidth
/// instead of multiply latency. Deterministic across platforms (input
/// read as little-endian 64-bit words plus a byte-wise tail).
[[nodiscard]] std::uint64_t content_hash(const void* data, std::size_t size);

/// Serializes `topology`'s CSR plus every row of `table` (which must be
/// fully warmed) to `path`, atomically (write to <path>.tmp, rename).
/// Returns false with `error` set on I/O failure or an unwarmed table.
bool write(const AsTopology& topology, const RoutingTable& table,
           const std::string& path, std::string* error = nullptr);

/// A checksum-verified read-only mapping of a snapshot file. Owns the
/// mmap region (heap fallback when mmap is unavailable); every span
/// points into it, so keep the object alive as long as any consumer —
/// RoutingTable::adopt_rows consumers included — can read it.
class MappedSnapshot {
 public:
  enum class Verify {
    kOncePerIdentity,  ///< Skip content re-hash for an unchanged file.
    kAlways,           ///< Re-hash every section on this open.
  };

  /// Maps and validates `path`. Null (with `error` describing the reject)
  /// on I/O failure, bad magic, version skew, truncation, out-of-bounds
  /// sections, or checksum mismatch.
  [[nodiscard]] static std::unique_ptr<MappedSnapshot> open(
      const std::string& path, std::string* error = nullptr,
      Verify verify = Verify::kOncePerIdentity);
  ~MappedSnapshot();

  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  [[nodiscard]] const Header& header() const;
  [[nodiscard]] std::span<const SectionRecord> sections() const;
  /// Raw payload bytes of `id`; empty when the section is absent.
  [[nodiscard]] std::span<const std::byte> section(SectionId id) const;

  /// Typed views over the CSR and row sections.
  [[nodiscard]] std::span<const std::uint32_t> csr_offsets() const;
  [[nodiscard]] std::span<const std::uint32_t> csr_heads() const;
  [[nodiscard]] std::span<const double> csr_weights() const;
  [[nodiscard]] std::span<const std::uint32_t> csr_links() const;
  [[nodiscard]] std::span<const double> csr_bandwidths() const;
  [[nodiscard]] std::span<const std::uint8_t> csr_types() const;
  [[nodiscard]] std::span<const std::uint32_t> csr_router_as() const;
  [[nodiscard]] std::span<const RoutingTable::DestEntry> dest_rows() const;
  [[nodiscard]] std::span<const std::uint64_t> as_path_pairs() const;
  /// v2 optional sections; empty spans when absent (v1 files, or a table
  /// that was warmed without hierarchical preprocessing).
  [[nodiscard]] std::span<const std::uint32_t> landmark_ids() const;
  [[nodiscard]] std::span<const double> landmark_dists() const;
  [[nodiscard]] std::span<const std::uint32_t> core_order() const;

  [[nodiscard]] std::size_t file_bytes() const { return size_; }

 private:
  MappedSnapshot() = default;
  template <typename T>
  [[nodiscard]] std::span<const T> typed(SectionId id) const;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;  ///< False on the heap-read fallback.
};

/// Attaches a verified snapshot to a freshly constructed `table` over
/// `topology`: byte-compares the stored CSR sections against
/// topology.csr() (count mismatch or any differing byte rejects — this is
/// what keys a snapshot to one exact topology), adopts the mapped row
/// image, and re-materializes the stored as-path pairs in sorted order.
/// On false, `table` keeps only the (idempotent) CSR build. `snap` must
/// outlive `table`.
bool attach(const MappedSnapshot& snap, const AsTopology& topology,
            RoutingTable& table, std::string* error = nullptr);

/// Header/section dump for `uap2p_snapshot info`.
struct SectionInfo {
  SectionRecord record;
  bool hash_ok = false;
};
struct Info {
  Header header;
  std::vector<SectionInfo> sections;
  bool checksums_ok = false;  ///< Every section hash recomputed clean.
};
[[nodiscard]] std::optional<Info> inspect(const std::string& path,
                                          std::string* error = nullptr);

}  // namespace uap2p::underlay::snapshot
