#include "underlay/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace uap2p::underlay {

double HostResources::capacity_score() const {
  // Geometric blend; upload bandwidth and uptime dominate because a
  // super-peer must relay traffic and stay reachable.
  const double uptime_hours = expected_online_ms / sim::hours(1);
  return std::pow(upload_mbps, 0.40) * std::pow(std::max(0.1, uptime_hours), 0.35) *
         std::pow(cpu_score, 0.15) * std::pow(std::max(0.1, memory_gb), 0.10);
}

HostResources sample_resources(Rng& rng) {
  HostResources res;
  const double roll = rng.uniform01();
  if (roll < 0.10) {
    // Well-provisioned host (campus / server).
    res.upload_mbps = rng.uniform_real(20.0, 100.0);
    res.download_mbps = res.upload_mbps;
    res.cpu_score = rng.uniform_real(2.0, 8.0);
    res.memory_gb = rng.uniform_real(8.0, 32.0);
    res.disk_gb = rng.uniform_real(500.0, 4000.0);
    res.expected_online_ms = sim::hours(rng.uniform_real(8.0, 24.0));
  } else if (roll < 0.40) {
    // Cable-class.
    res.upload_mbps = rng.uniform_real(2.0, 10.0);
    res.download_mbps = rng.uniform_real(16.0, 50.0);
    res.cpu_score = rng.uniform_real(1.0, 3.0);
    res.memory_gb = rng.uniform_real(2.0, 8.0);
    res.disk_gb = rng.uniform_real(100.0, 1000.0);
    res.expected_online_ms = sim::hours(rng.uniform_real(2.0, 8.0));
  } else {
    // DSL-class.
    res.upload_mbps = rng.uniform_real(0.25, 2.0);
    res.download_mbps = rng.uniform_real(2.0, 16.0);
    res.cpu_score = rng.uniform_real(0.5, 2.0);
    res.memory_gb = rng.uniform_real(1.0, 4.0);
    res.disk_gb = rng.uniform_real(40.0, 500.0);
    res.expected_online_ms = sim::hours(rng.uniform_real(0.5, 4.0));
  }
  return res;
}

void Network::init_lanes(std::size_t count, const Pricing& pricing) {
  std::size_t peering_links = 0;
  for (const Link& link : topology_->links())
    if (link.type == LinkType::kPeering) ++peering_links;
  lanes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    lanes_.emplace_back();
    lanes_.back().traffic = TrafficAccountant(pricing);
    lanes_.back().traffic.set_peering_links(peering_links);
  }
  outboxes_.resize(count * count);
}

void Network::enable_traffic_matrix() {
  for (DeliveryLane& lane : lanes_)
    lane.traffic.enable_matrix(
        static_cast<std::uint32_t>(topology_->as_count()));
}

Network::Network(sim::Engine& engine, const AsTopology& topology,
                 std::uint64_t seed, Pricing pricing)
    : engine_(engine),
      topology_(&topology),
      owned_routing_(std::make_unique<RoutingTable>(topology)),
      rng_(seed),
      hosts_per_as_(topology.as_count(), 0) {
  init_lanes(1, pricing);
}

Network::Network(sim::Engine& engine,
                 std::shared_ptr<const SharedRouting> routing,
                 std::uint64_t seed, Pricing pricing)
    : engine_(engine),
      shared_routing_(std::move(routing)),
      topology_(&shared_routing_->topology()),
      rng_(seed),
      hosts_per_as_(topology_->as_count(), 0) {
  init_lanes(1, pricing);
}

Network::Network(sim::EngineGroup& group, const AsTopology& topology,
                 std::uint64_t seed, Pricing pricing)
    : engine_(group.shard(0)),
      group_(&group),
      topology_(&topology),
      owned_routing_(std::make_unique<RoutingTable>(topology)),
      rng_(seed),
      hosts_per_as_(topology.as_count(), 0) {
  init_lanes(group.size(), pricing);
  // Lazy path fills are not thread-safe; with parallel windows ahead,
  // warm the whole table up front (itself parallel).
  if (group.size() > 1) owned_routing_->warm_all();
  group.set_mailbox(this);
}

Network::Network(sim::EngineGroup& group,
                 std::shared_ptr<const SharedRouting> routing,
                 std::uint64_t seed, Pricing pricing)
    : engine_(group.shard(0)),
      group_(&group),
      shared_routing_(std::move(routing)),
      topology_(&shared_routing_->topology()),
      rng_(seed),
      hosts_per_as_(topology_->as_count(), 0) {
  init_lanes(group.size(), pricing);
  group.set_mailbox(this);
}

Network::~Network() {
  if (group_ != nullptr) group_->set_mailbox(nullptr);
}

PeerId Network::add_host(RouterId attachment, HostResources resources) {
  Host host;
  host.id = PeerId(static_cast<std::uint32_t>(hosts_.size()));
  host.attachment = attachment;
  host.as = topology_->as_of(attachment);
  // IPs count up from .0.2 inside the AS prefix (gateway-style offsets).
  const auto& as = topology_->as_info(host.as);
  host.ip = IpAddress{as.prefix + 2 + hosts_per_as_[host.as.value()]++};
  const auto& router = topology_->router(attachment);
  host.location = GeoPoint{router.location.lat_deg + rng_.uniform_real(-0.1, 0.1),
                           router.location.lon_deg + rng_.uniform_real(-0.1, 0.1)};
  host.resources = resources;
  host.access_latency_ms = rng_.uniform_real(1.0, 12.0);
  hosts_.push_back(host);
  handlers_.emplace_back();
  shard_of_.push_back(host.as.value() %
                      static_cast<std::uint32_t>(lanes_.size()));
  lookahead_dirty_ = true;
  return host.id;
}

PeerId Network::add_host_in_as(AsId as, HostResources resources) {
  const auto& routers = topology_->as_info(as).routers;
  const RouterId router = routers[rng_.uniform(routers.size())];
  return add_host(router, resources);
}

std::vector<PeerId> Network::populate(std::size_t count) {
  std::vector<PeerId> peers;
  peers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const AsId as(static_cast<std::uint32_t>(i % topology_->as_count()));
    peers.push_back(add_host_in_as(as, sample_resources(rng_)));
  }
  return peers;
}

void Network::set_handler(PeerId peer, Handler handler) {
  handlers_[peer.value()].clear();
  if (handler) handlers_[peer.value()].push_back(std::move(handler));
}

void Network::add_handler(PeerId peer, Handler handler) {
  if (handler) handlers_[peer.value()].push_back(std::move(handler));
}

void Network::set_online(PeerId peer, bool online) {
  hosts_[peer.value()].online = online;
}

bool Network::is_online(PeerId peer) const {
  return hosts_[peer.value()].online;
}

void Network::move_host(PeerId peer, const GeoPoint& location) {
  Host& host = hosts_[peer.value()];
  host.location = location;
  // Re-attach to the geographically nearest router.
  RouterId best = host.attachment;
  double best_km = std::numeric_limits<double>::max();
  for (const auto& router : topology_->routers()) {
    const double km = haversine_km(router.location, location);
    if (km < best_km) {
      best_km = km;
      best = router.id;
    }
  }
  if (best != host.attachment) {
    host.attachment = best;
    const AsId new_as = topology_->as_of(best);
    if (new_as != host.as) {
      host.as = new_as;
      const auto& as = topology_->as_info(new_as);
      host.ip = IpAddress{as.prefix + 2 + hosts_per_as_[new_as.value()]++};
      shard_of_[peer.value()] =
          new_as.value() % static_cast<std::uint32_t>(lanes_.size());
    }
  }
  // A new access link (cellular handover / new DSLAM).
  host.access_latency_ms = rng_.uniform_real(1.0, 12.0);
  lookahead_dirty_ = true;
}

namespace {

// Cold outlined trace emission: keeps the TraceRecord construction out of
// the send/delivery hot paths so the disabled case is a single predicted
// branch with no code-size cost (the flood bench gates this; see
// BM_ObsOverhead).
[[gnu::noinline]] void emit_msg_trace(obs::TraceSink* trace, double now,
                                      obs::TraceKind kind, PeerId src,
                                      PeerId dst, int type, double value) {
  trace->record({now, kind, static_cast<std::int32_t>(src.value()),
                 static_cast<std::int32_t>(dst.value()),
                 static_cast<std::uint64_t>(type), value});
}

}  // namespace

void Network::drop_at_send(DeliveryLane& lane, const Message& msg,
                           sim::SimTime now) {
  ++lane.dropped;
  lane.dropped_metric.inc();
  if (lane.trace != nullptr) {
    emit_msg_trace(lane.trace, now, obs::TraceKind::kMsgDropped, msg.src,
                   msg.dst, msg.type, static_cast<double>(msg.size_bytes));
  }
}

bool Network::send(Message msg) {
  assert(msg.src.value() < hosts_.size() && msg.dst.value() < hosts_.size());
  const Host& src = hosts_[msg.src.value()];
  const Host& dst = hosts_[msg.dst.value()];
  // The lane of the calling context: the current shard's inside a window,
  // lane 0 in driver code and in legacy mode. Accounting and trace
  // emission at send time go here; delivery state goes to the
  // destination's lane.
  const int ctx = group_ != nullptr ? sim::current_shard() : -1;
  DeliveryLane& lane = lanes_[ctx < 0 ? 0 : static_cast<std::size_t>(ctx)];
  sim::Engine& src_engine = group_ != nullptr ? group_->current() : engine_;
  const sim::SimTime now = src_engine.now();
  if (!src.online || !dst.online) {
    drop_at_send(lane, msg, now);
    return false;
  }
  const PathInfo path = route(src.attachment, dst.attachment);
  if (!path.reachable) {
    drop_at_send(lane, msg, now);
    return false;
  }
  lane.traffic.record(path, msg.size_bytes, now,
                      static_cast<std::uint32_t>(src.as.value()),
                      static_cast<std::uint32_t>(dst.as.value()));
  lane.sent_count.inc();
  lane.bytes_sent.inc(msg.size_bytes);
  if (lane.trace != nullptr) [[unlikely]] {
    emit_msg_trace(lane.trace, now, obs::TraceKind::kMsgSent, msg.src,
                   msg.dst, msg.type, static_cast<double>(msg.size_bytes));
    emit_msg_trace(lane.trace, now, obs::TraceKind::kMsgHop, msg.src,
                   msg.dst, msg.type,
                   static_cast<double>(path.router_hops));
  }

  const double transmission_ms =
      src.resources.upload_mbps > 0.0
          ? static_cast<double>(msg.size_bytes) * 8.0 /
                (src.resources.upload_mbps * 1e6) * 1000.0
          : 0.0;
  const sim::SimTime delay = src.access_latency_ms + path.latency_ms +
                             dst.access_latency_ms + transmission_ms;
  if (group_ == nullptr) {
    const std::uint32_t slot = lane.in_flight.acquire();
    lane.in_flight[slot] = std::move(msg);
    engine_.schedule(delay, [this, slot] { deliver(0, slot); });
    return true;
  }
  const std::uint32_t dshard = shard_of_[msg.dst.value()];
  if (ctx < 0 || static_cast<std::uint32_t>(ctx) == dshard) {
    // Same shard (or driver phase, when no window is running and every
    // engine is at barrier time): schedule directly on the destination's
    // engine, exactly like the legacy path.
    DeliveryLane& dlane = lanes_[dshard];
    const std::uint32_t slot = dlane.in_flight.acquire();
    dlane.in_flight[slot] = std::move(msg);
    group_->shard(dshard).schedule(
        delay, [this, dshard, slot] { deliver(dshard, slot); });
    return true;
  }
  // Cross-shard: park the message for the barrier exchange. The scheduled
  // trace record is emitted here, at send time on the sender's lane —
  // where the serial run emits it — because schedule_import at the
  // barrier deliberately skips it.
  const sim::SimTime when = now + delay;
  const std::uint8_t origin = src_engine.origin();
  if (lane.trace != nullptr) [[unlikely]] {
    lane.trace->record({now, obs::TraceKind::kEventScheduled,
                        static_cast<std::int32_t>(origin), -1, 0, when});
  }
  outboxes_[static_cast<std::size_t>(ctx) * lanes_.size() + dshard]
      .push_back(Parcel{when, origin, std::move(msg)});
  return true;
}

void Network::deliver(std::uint32_t lane_idx, std::uint32_t slot) {
  DeliveryLane& lane = lanes_[lane_idx];
  const Message& delivered = lane.in_flight[slot];
  const PeerId dst_id = delivered.dst;
  const sim::SimTime now =
      group_ != nullptr ? group_->current().now() : engine_.now();
  if (!hosts_[dst_id.value()].online) {
    ++lane.dropped;
    lane.dropped_metric.inc();
    if (lane.trace != nullptr) {
      emit_msg_trace(lane.trace, now, obs::TraceKind::kMsgDropped,
                     delivered.src, dst_id, delivered.type,
                     static_cast<double>(delivered.size_bytes));
    }
  } else {
    const auto index = static_cast<std::size_t>(std::max(0, delivered.type));
    if (lane.delivered_by_type.size() <= index)
      lane.delivered_by_type.resize(index + 1, 0);
    ++lane.delivered_by_type[index];
    lane.delivered_count.inc();
    if (lane.trace != nullptr) [[unlikely]] {
      emit_msg_trace(lane.trace, now, obs::TraceKind::kMsgDelivered,
                     delivered.src, dst_id, delivered.type,
                     static_cast<double>(delivered.size_bytes));
    }
    // Handlers may send() recursively; slot addresses are stable, so
    // `delivered` stays valid while new in-flight slots are acquired.
    for (const auto& handler : handlers_[dst_id.value()]) handler(delivered);
  }
  lane.in_flight[slot].payload.reset();  // free heap payloads promptly
  lane.in_flight.release(slot);
}

void Network::exchange() {
  assert(group_ != nullptr);
  // Canonical ingestion order: (timestamp, source shard, send order).
  // Event tags — the same-timestamp tie-break inside each destination
  // engine — are assigned in this order, so the run is reproducible for
  // a fixed shard count; per-timestamp record multisets match the serial
  // run's regardless of shard count (DESIGN.md "Sharded engine").
  exchange_refs_.clear();
  for (std::uint32_t box = 0; box < outboxes_.size(); ++box) {
    for (std::uint32_t idx = 0; idx < outboxes_[box].size(); ++idx) {
      exchange_refs_.push_back(ParcelRef{outboxes_[box][idx].when, box, idx});
    }
  }
  if (exchange_refs_.empty()) return;
  std::stable_sort(
      exchange_refs_.begin(), exchange_refs_.end(),
      [](const ParcelRef& a, const ParcelRef& b) { return a.when < b.when; });
  const std::size_t shard_count = lanes_.size();
  for (const ParcelRef& ref : exchange_refs_) {
    Parcel& parcel = outboxes_[ref.box][ref.idx];
    const std::uint32_t dshard = ref.box % shard_count;
    DeliveryLane& dlane = lanes_[dshard];
    const std::uint32_t slot = dlane.in_flight.acquire();
    dlane.in_flight[slot] = std::move(parcel.msg);
    group_->shard(dshard).schedule_import(
        parcel.when, parcel.origin,
        [this, dshard, slot] { deliver(dshard, slot); });
  }
  for (auto& box : outboxes_) box.clear();  // keeps capacity
}

sim::SimTime Network::lookahead_ms() const {
  if (!lookahead_dirty_) return lookahead_cache_;
  double min_link = std::numeric_limits<double>::infinity();
  for (const Link& link : topology_->links()) {
    if (topology_->as_of(link.a) != topology_->as_of(link.b))
      min_link = std::min(min_link, link.latency_ms);
  }
  double min_access = std::numeric_limits<double>::infinity();
  for (const Host& host : hosts_)
    min_access = std::min(min_access, host.access_latency_ms);
  lookahead_cache_ = min_link + 2.0 * min_access;
  lookahead_dirty_ = false;
  return lookahead_cache_;
}

std::uint64_t Network::run_until(sim::SimTime until) {
  // Forward the horizon to every lane's accountant so billing-window
  // growth happens here (cold path) and record() stays allocation-free
  // through the run. The horizon is quantized up to the next whole
  // simulated hour: reserve_windows sizes capacity to the target exactly,
  // so an unquantized `until + slack` would creep forward with every
  // quiesce-horizon-at-a-time caller (overlay floods advance 30 s per
  // call) and reallocate at each new billing window. Rounding up means
  // the target — and hence capacity — changes once per simulated hour.
  const double hour = sim::hours(1);
  const sim::SimTime horizon = hour * (std::floor(until / hour) + 1.0);
  for (DeliveryLane& lane : lanes_)
    lane.traffic.reserve_windows(horizon);
  return group_ != nullptr ? group_->run_until(until)
                           : engine_.run_until(until);
}

void Network::set_origin(std::uint8_t origin) {
  if (group_ != nullptr) {
    group_->set_origin(origin);
  } else {
    engine_.set_origin(origin);
  }
}

sim::SimTime Network::rtt_ms(PeerId a, PeerId b) {
  const Host& ha = hosts_[a.value()];
  const Host& hb = hosts_[b.value()];
  const PathInfo forward = route(ha.attachment, hb.attachment);
  const PathInfo back = route(hb.attachment, ha.attachment);
  // Summing kUnreachableLatency overflows to +inf; report the sentinel
  // unchanged when either direction has no route.
  if (!forward.reachable || !back.reachable) return kUnreachableLatency;
  return 2.0 * (ha.access_latency_ms + hb.access_latency_ms) +
         forward.latency_ms + back.latency_ms;
}

PathInfo Network::path_between(PeerId a, PeerId b) {
  return route(hosts_[a.value()].attachment, hosts_[b.value()].attachment);
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    DeliveryLane& lane = lanes_[i];
    if (registry == nullptr) {
      lane.sent_count = {};
      lane.delivered_count = {};
      lane.dropped_metric = {};
      lane.bytes_sent = {};
      continue;
    }
    obs::MetricsRegistry& reg = i == 0 ? *registry : lane.side;
    lane.sent_count = reg.counter("net.messages.sent");
    lane.delivered_count = reg.counter("net.messages.delivered");
    lane.dropped_metric = reg.counter("net.messages.dropped");
    lane.bytes_sent = reg.counter("net.bytes.sent");
  }
}

void Network::merge_side_metrics(obs::MetricsRegistry& into) const {
  for (std::size_t i = 1; i < lanes_.size(); ++i) into.merge(lanes_[i].side);
}

void Network::export_traffic(obs::MetricsRegistry& registry) const {
  TrafficAccountant merged = lanes_[0].traffic;
  for (std::size_t i = 1; i < lanes_.size(); ++i)
    merged.merge_from(lanes_[i].traffic);
  merged.export_metrics(registry);
}

void Network::set_trace(obs::TraceSink* trace) {
  for (DeliveryLane& lane : lanes_) lane.trace = trace;
}

void Network::set_trace_mux(obs::ShardedTraceMux* mux) {
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    lanes_[i].trace = mux != nullptr ? mux->lane(i + 1) : nullptr;
}

std::uint64_t Network::delivered_count(int type) const {
  const auto index = static_cast<std::size_t>(std::max(0, type));
  std::uint64_t total = 0;
  for (const DeliveryLane& lane : lanes_) {
    if (index < lane.delivered_by_type.size())
      total += lane.delivered_by_type[index];
  }
  return total;
}

std::uint64_t Network::dropped_count() const {
  std::uint64_t total = 0;
  for (const DeliveryLane& lane : lanes_) total += lane.dropped;
  return total;
}

}  // namespace uap2p::underlay
