#include "underlay/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uap2p::underlay {

double HostResources::capacity_score() const {
  // Geometric blend; upload bandwidth and uptime dominate because a
  // super-peer must relay traffic and stay reachable.
  const double uptime_hours = expected_online_ms / sim::hours(1);
  return std::pow(upload_mbps, 0.40) * std::pow(std::max(0.1, uptime_hours), 0.35) *
         std::pow(cpu_score, 0.15) * std::pow(std::max(0.1, memory_gb), 0.10);
}

HostResources sample_resources(Rng& rng) {
  HostResources res;
  const double roll = rng.uniform01();
  if (roll < 0.10) {
    // Well-provisioned host (campus / server).
    res.upload_mbps = rng.uniform_real(20.0, 100.0);
    res.download_mbps = res.upload_mbps;
    res.cpu_score = rng.uniform_real(2.0, 8.0);
    res.memory_gb = rng.uniform_real(8.0, 32.0);
    res.disk_gb = rng.uniform_real(500.0, 4000.0);
    res.expected_online_ms = sim::hours(rng.uniform_real(8.0, 24.0));
  } else if (roll < 0.40) {
    // Cable-class.
    res.upload_mbps = rng.uniform_real(2.0, 10.0);
    res.download_mbps = rng.uniform_real(16.0, 50.0);
    res.cpu_score = rng.uniform_real(1.0, 3.0);
    res.memory_gb = rng.uniform_real(2.0, 8.0);
    res.disk_gb = rng.uniform_real(100.0, 1000.0);
    res.expected_online_ms = sim::hours(rng.uniform_real(2.0, 8.0));
  } else {
    // DSL-class.
    res.upload_mbps = rng.uniform_real(0.25, 2.0);
    res.download_mbps = rng.uniform_real(2.0, 16.0);
    res.cpu_score = rng.uniform_real(0.5, 2.0);
    res.memory_gb = rng.uniform_real(1.0, 4.0);
    res.disk_gb = rng.uniform_real(40.0, 500.0);
    res.expected_online_ms = sim::hours(rng.uniform_real(0.5, 4.0));
  }
  return res;
}

Network::Network(sim::Engine& engine, const AsTopology& topology,
                 std::uint64_t seed, Pricing pricing)
    : engine_(engine),
      topology_(&topology),
      owned_routing_(std::make_unique<RoutingTable>(topology)),
      traffic_(pricing),
      rng_(seed),
      hosts_per_as_(topology.as_count(), 0) {}

Network::Network(sim::Engine& engine,
                 std::shared_ptr<const SharedRouting> routing,
                 std::uint64_t seed, Pricing pricing)
    : engine_(engine),
      shared_routing_(std::move(routing)),
      topology_(&shared_routing_->topology()),
      traffic_(pricing),
      rng_(seed),
      hosts_per_as_(topology_->as_count(), 0) {}

PeerId Network::add_host(RouterId attachment, HostResources resources) {
  Host host;
  host.id = PeerId(static_cast<std::uint32_t>(hosts_.size()));
  host.attachment = attachment;
  host.as = topology_->as_of(attachment);
  // IPs count up from .0.2 inside the AS prefix (gateway-style offsets).
  const auto& as = topology_->as_info(host.as);
  host.ip = IpAddress{as.prefix + 2 + hosts_per_as_[host.as.value()]++};
  const auto& router = topology_->router(attachment);
  host.location = GeoPoint{router.location.lat_deg + rng_.uniform_real(-0.1, 0.1),
                           router.location.lon_deg + rng_.uniform_real(-0.1, 0.1)};
  host.resources = resources;
  host.access_latency_ms = rng_.uniform_real(1.0, 12.0);
  hosts_.push_back(host);
  handlers_.emplace_back();
  return host.id;
}

PeerId Network::add_host_in_as(AsId as, HostResources resources) {
  const auto& routers = topology_->as_info(as).routers;
  const RouterId router = routers[rng_.uniform(routers.size())];
  return add_host(router, resources);
}

std::vector<PeerId> Network::populate(std::size_t count) {
  std::vector<PeerId> peers;
  peers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const AsId as(static_cast<std::uint32_t>(i % topology_->as_count()));
    peers.push_back(add_host_in_as(as, sample_resources(rng_)));
  }
  return peers;
}

void Network::set_handler(PeerId peer, Handler handler) {
  handlers_[peer.value()].clear();
  if (handler) handlers_[peer.value()].push_back(std::move(handler));
}

void Network::add_handler(PeerId peer, Handler handler) {
  if (handler) handlers_[peer.value()].push_back(std::move(handler));
}

void Network::set_online(PeerId peer, bool online) {
  hosts_[peer.value()].online = online;
}

bool Network::is_online(PeerId peer) const {
  return hosts_[peer.value()].online;
}

void Network::move_host(PeerId peer, const GeoPoint& location) {
  Host& host = hosts_[peer.value()];
  host.location = location;
  // Re-attach to the geographically nearest router.
  RouterId best = host.attachment;
  double best_km = std::numeric_limits<double>::max();
  for (const auto& router : topology_->routers()) {
    const double km = haversine_km(router.location, location);
    if (km < best_km) {
      best_km = km;
      best = router.id;
    }
  }
  if (best != host.attachment) {
    host.attachment = best;
    const AsId new_as = topology_->as_of(best);
    if (new_as != host.as) {
      host.as = new_as;
      const auto& as = topology_->as_info(new_as);
      host.ip = IpAddress{as.prefix + 2 + hosts_per_as_[new_as.value()]++};
    }
  }
  // A new access link (cellular handover / new DSLAM).
  host.access_latency_ms = rng_.uniform_real(1.0, 12.0);
}

namespace {

// Cold outlined trace emission: keeps the TraceRecord construction out of
// the send/delivery hot paths so the disabled case is a single predicted
// branch with no code-size cost (the flood bench gates this; see
// BM_ObsOverhead).
[[gnu::noinline]] void emit_msg_trace(obs::TraceSink* trace, double now,
                                      obs::TraceKind kind, PeerId src,
                                      PeerId dst, int type, double value) {
  trace->record({now, kind, static_cast<std::int32_t>(src.value()),
                 static_cast<std::int32_t>(dst.value()),
                 static_cast<std::uint64_t>(type), value});
}

}  // namespace

bool Network::send(Message msg) {
  assert(msg.src.value() < hosts_.size() && msg.dst.value() < hosts_.size());
  const Host& src = hosts_[msg.src.value()];
  const Host& dst = hosts_[msg.dst.value()];
  if (!src.online || !dst.online) {
    ++dropped_;
    dropped_metric_.inc();
    if (trace_ != nullptr) {
      emit_msg_trace(trace_, engine_.now(), obs::TraceKind::kMsgDropped,
                     msg.src, msg.dst, msg.type,
                     static_cast<double>(msg.size_bytes));
    }
    return false;
  }
  const PathInfo path = route(src.attachment, dst.attachment);
  if (!path.reachable) {
    ++dropped_;
    dropped_metric_.inc();
    if (trace_ != nullptr) {
      emit_msg_trace(trace_, engine_.now(), obs::TraceKind::kMsgDropped,
                     msg.src, msg.dst, msg.type,
                     static_cast<double>(msg.size_bytes));
    }
    return false;
  }
  traffic_.record(path, msg.size_bytes, engine_.now());
  sent_count_.inc();
  bytes_sent_.inc(msg.size_bytes);
  if (trace_ != nullptr) [[unlikely]] {
    emit_msg_trace(trace_, engine_.now(), obs::TraceKind::kMsgSent, msg.src,
                   msg.dst, msg.type, static_cast<double>(msg.size_bytes));
    emit_msg_trace(trace_, engine_.now(), obs::TraceKind::kMsgHop, msg.src,
                   msg.dst, msg.type,
                   static_cast<double>(path.router_hops));
  }

  const double transmission_ms =
      src.resources.upload_mbps > 0.0
          ? static_cast<double>(msg.size_bytes) * 8.0 /
                (src.resources.upload_mbps * 1e6) * 1000.0
          : 0.0;
  const sim::SimTime delay = src.access_latency_ms + path.latency_ms +
                             dst.access_latency_ms + transmission_ms;
  const std::uint32_t slot = in_flight_.acquire();
  in_flight_[slot] = std::move(msg);
  engine_.schedule(delay, [this, slot] {
    const Message& delivered = in_flight_[slot];
    const PeerId dst_id = delivered.dst;
    if (!hosts_[dst_id.value()].online) {
      ++dropped_;
      dropped_metric_.inc();
      if (trace_ != nullptr) {
        emit_msg_trace(trace_, engine_.now(), obs::TraceKind::kMsgDropped,
                       delivered.src, dst_id, delivered.type,
                       static_cast<double>(delivered.size_bytes));
      }
    } else {
      const auto index = static_cast<std::size_t>(std::max(0, delivered.type));
      if (delivered_by_type_.size() <= index)
        delivered_by_type_.resize(index + 1, 0);
      ++delivered_by_type_[index];
      delivered_count_.inc();
      if (trace_ != nullptr) [[unlikely]] {
        emit_msg_trace(trace_, engine_.now(), obs::TraceKind::kMsgDelivered,
                       delivered.src, dst_id, delivered.type,
                       static_cast<double>(delivered.size_bytes));
      }
      // Handlers may send() recursively; slot addresses are stable, so
      // `delivered` stays valid while new in-flight slots are acquired.
      for (const auto& handler : handlers_[dst_id.value()]) handler(delivered);
    }
    in_flight_[slot].payload.reset();  // free heap payloads promptly
    in_flight_.release(slot);
  });
  return true;
}

sim::SimTime Network::rtt_ms(PeerId a, PeerId b) {
  const Host& ha = hosts_[a.value()];
  const Host& hb = hosts_[b.value()];
  const PathInfo forward = route(ha.attachment, hb.attachment);
  const PathInfo back = route(hb.attachment, ha.attachment);
  // Summing kUnreachableLatency overflows to +inf; report the sentinel
  // unchanged when either direction has no route.
  if (!forward.reachable || !back.reachable) return kUnreachableLatency;
  return 2.0 * (ha.access_latency_ms + hb.access_latency_ms) +
         forward.latency_ms + back.latency_ms;
}

PathInfo Network::path_between(PeerId a, PeerId b) {
  return route(hosts_[a.value()].attachment, hosts_[b.value()].attachment);
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    sent_count_ = {};
    delivered_count_ = {};
    dropped_metric_ = {};
    bytes_sent_ = {};
    return;
  }
  sent_count_ = registry->counter("net.messages.sent");
  delivered_count_ = registry->counter("net.messages.delivered");
  dropped_metric_ = registry->counter("net.messages.dropped");
  bytes_sent_ = registry->counter("net.bytes.sent");
}

std::uint64_t Network::delivered_count(int type) const {
  const auto index = static_cast<std::size_t>(std::max(0, type));
  return index < delivered_by_type_.size() ? delivered_by_type_[index] : 0;
}

}  // namespace uap2p::underlay
