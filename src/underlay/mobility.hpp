// Mobility process (paper §6 "Mobile Support"): a random-waypoint model
// driving Network::move_host. Mobile peers invalidate the underlay
// information collectors cached about them — ISP-location and latency
// "no longer apply because of continuous variation" — which the mobility
// ablation bench quantifies.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "underlay/geo.hpp"
#include "underlay/network.hpp"

namespace uap2p::underlay {

struct MobilityConfig {
  /// Mean pause time at a waypoint before the next move.
  sim::SimTime mean_pause_ms = sim::minutes(5);
  /// Movement speed in km/h (vehicular default).
  double speed_kmh = 60.0;
  /// Waypoints are drawn uniformly from this box.
  double lat_lo = 36.0, lat_hi = 60.0;
  double lon_lo = -10.0, lon_hi = 30.0;
  std::uint64_t seed = 67;
};

/// Moves registered peers between random waypoints. Movement is
/// discretized: the peer "arrives" after travel time and is re-attached
/// at the destination (a handover), which matches how IP-level mobility
/// appears to overlays — sudden address/attachment changes.
class MobilityProcess {
 public:
  MobilityProcess(sim::Engine& engine, Network& network,
                  MobilityConfig config = {});

  /// Registers a peer as mobile; first move is scheduled after a pause.
  void add_peer(PeerId peer);

  /// Invoked after each completed move (overlays re-register here).
  void on_move(std::function<void(PeerId)> callback) {
    on_move_ = std::move(callback);
  }

  [[nodiscard]] std::uint64_t completed_moves() const { return moves_; }
  void stop();

 private:
  void schedule_next(PeerId peer);

  sim::Engine& engine_;
  Network& network_;
  MobilityConfig config_;
  Rng rng_;
  std::function<void(PeerId)> on_move_;
  std::vector<sim::EventHandle> pending_;
  std::uint64_t moves_ = 0;
  bool stopped_ = false;
};

}  // namespace uap2p::underlay
